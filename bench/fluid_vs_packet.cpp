// Ideal-case (fluid) prediction vs packet-level measurement for 2PA on
// both paper topologies — the Sec.-III "evaluate against the ideal case"
// exercise. The fluid column uses the per-packet airtime model; the
// measured column is the discrete-event simulator.
#include <iostream>

#include "bench_util.hpp"
#include "net/fluid.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 200.0;

  SimConfig cfg;
  cfg.sim_seconds = args.seconds;
  cfg.seed = args.seed;
  cfg.alpha = args.alpha;
  MacConfig mac;

  std::cout << "Ideal (fluid) vs measured (packet) — 2PA-C, T = " << args.seconds
            << " s\n";
  std::cout << "Per-packet airtime: "
            << per_packet_airtime(cfg.payload_bytes, mac, cfg.channel_bps, cfg.cw_min) /
                   1000
            << " us  =>  "
            << strformat("%.0f", effective_packet_rate(cfg.payload_bytes, mac,
                                                       cfg.channel_bps, cfg.cw_min))
            << " pkt/s per unit share\n\n";

  for (const Scenario& sc : {scenario1(), scenario2()}) {
    FlowSet flows(sc.topo, sc.flow_specs);
    const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
    Allocation alloc = make_subflow_allocation(flows, r.target_subflow_share);

    const FluidPrediction p = fluid_predict(flows, alloc, cfg.cbr_pps,
                                            cfg.payload_bytes, mac, cfg.channel_bps,
                                            cfg.cw_min);
    std::cout << sc.name << ":\n";
    TextTable t({"flow", "fluid pkt/s", "measured pkt/s", "measured/fluid"});
    for (FlowId f = 0; f < flows.flow_count(); ++f) {
      const double measured =
          static_cast<double>(r.end_to_end_per_flow[f]) / args.seconds;
      t.add_row({flows.flow(f).name(), strformat("%.1f", p.flow_rate[f]),
                 strformat("%.1f", measured),
                 strformat("%.2f", measured / p.flow_rate[f])});
    }
    t.add_row({"total", strformat("%.1f", p.total_flow_rate),
               strformat("%.1f", static_cast<double>(r.total_end_to_end) / args.seconds),
               ""});
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Ratios between flows should match the fluid prediction; absolute\n"
               "levels fall below it in saturated cliques (collisions, throttling).\n";
  return 0;
}
