// Observability overhead tracker: wall-clock cost of the trace layer on a
// real simulation (scenario 1, 2PA-C), measured in three modes:
//
//   off       cfg.trace == nullptr — the default every golden runs with;
//             the only instrumentation cost left is one pointer test per
//             would-be event.
//   filtered  a sink is attached but the runtime category mask rejects
//             everything except kMeta — adds the mask test.
//   on        a sink is attached with every category enabled, recording to
//             memory — the full record cost minus disk I/O noise.
//
// Modes alternate within every round and the best round per mode is kept,
// so unrelated machine load hits all modes alike. The run *guards* the
// zero-overhead claim: `filtered` must be within --tolerance (default 1%)
// of `off`, else exit 1. The enabled cost is recorded (not guarded) in the
// JSON output (default BENCH_trace.json).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "obs/trace.hpp"

using namespace e2efa;

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  double seconds = 3.0;
  int rounds = 12;  // best-of-12: rides out bursty machine load
  double tolerance = 0.01;
  std::string out = "BENCH_trace.json";
};

[[noreturn]] void usage(const char* prog, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--seconds T] [--rounds N] [--tolerance F] [--out PATH]\n"
               "  --seconds T    simulated seconds per run (default 3)\n"
               "  --rounds N     A/B rounds, best kept per mode (default 12)\n"
               "  --tolerance F  max allowed filtered-vs-off slowdown (default 0.01)\n"
               "  --out PATH     JSON output (default BENCH_trace.json)\n",
               prog);
  std::exit(2);
}

double parse_positive_double(const char* prog, const std::string& key,
                             const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0' || v <= 0.0)
    usage(prog, key + ": expected a positive number, got '" + text + "'");
  return v;
}

Options parse_options(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "micro_trace";
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") usage(prog, "");
    if (i + 1 >= argc) usage(prog, key + ": missing value");
    const char* val = argv[++i];
    if (key == "--seconds") {
      o.seconds = parse_positive_double(prog, key, val);
    } else if (key == "--rounds") {
      o.rounds = static_cast<int>(parse_positive_double(prog, key, val));
    } else if (key == "--tolerance") {
      o.tolerance = parse_positive_double(prog, key, val);
    } else if (key == "--out") {
      o.out = val;
    } else {
      usage(prog, "unknown flag '" + key + "'");
    }
  }
  return o;
}

enum class Mode { kOff, kFiltered, kOn };

/// One timed run; returns (wall seconds, records emitted).
std::pair<double, std::uint64_t> timed_run(const Scenario& sc, double seconds,
                                           Mode mode) {
  SimConfig cfg;
  cfg.sim_seconds = seconds;
  cfg.seed = 1;
  TraceSink sink;
  if (mode == Mode::kFiltered) sink.set_filter(0);  // kMeta only
  if (mode != Mode::kOff) cfg.trace = &sink;
  const auto t0 = Clock::now();
  run_scenario(sc, Protocol::k2paCentralized, cfg);
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  return {dt, sink.recorded()};
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const Scenario sc = scenario1();

  // Warm-up run (page-in, allocator steady state) before any timing.
  timed_run(sc, std::min(opt.seconds, 1.0), Mode::kOff);

  double best_off = 1e300, best_filtered = 1e300, best_on = 1e300;
  std::uint64_t on_records = 0;
  for (int r = 0; r < opt.rounds; ++r) {
    best_off = std::min(best_off, timed_run(sc, opt.seconds, Mode::kOff).first);
    best_filtered =
        std::min(best_filtered, timed_run(sc, opt.seconds, Mode::kFiltered).first);
    const auto [dt, n] = timed_run(sc, opt.seconds, Mode::kOn);
    best_on = std::min(best_on, dt);
    on_records = n;
  }

  const double filtered_overhead = best_filtered / best_off - 1.0;
  const double on_overhead = best_on / best_off - 1.0;
  std::printf("off       %8.2f ms\n", best_off * 1e3);
  std::printf("filtered  %8.2f ms  (%+.2f%% vs off, guarded < %.2f%%)\n",
              best_filtered * 1e3, filtered_overhead * 1e2, opt.tolerance * 1e2);
  std::printf("on        %8.2f ms  (%+.2f%% vs off, %llu records)\n",
              best_on * 1e3, on_overhead * 1e2,
              static_cast<unsigned long long>(on_records));

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", opt.out.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f,
               "[\n"
               "  {\"name\": \"trace_off\", \"seconds\": %.6f},\n"
               "  {\"name\": \"trace_filtered\", \"seconds\": %.6f, "
               "\"overhead_vs_off\": %.4f},\n"
               "  {\"name\": \"trace_on\", \"seconds\": %.6f, "
               "\"overhead_vs_off\": %.4f, \"records\": %llu}\n"
               "]\n",
               best_off, best_filtered, filtered_overhead, best_on, on_overhead,
               static_cast<unsigned long long>(on_records));
  std::fclose(f);
  std::printf("wrote %s\n", opt.out.c_str());

  if (filtered_overhead > opt.tolerance) {
    std::fprintf(stderr,
                 "FAIL: filtered-trace overhead %.2f%% exceeds tolerance %.2f%%\n",
                 filtered_overhead * 1e2, opt.tolerance * 1e2);
    return 1;
  }
  return 0;
}
