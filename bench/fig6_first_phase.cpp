// Reproduces the Fig.-6 first-phase example (Sec. IV-A/B): the centralized
// global LP and its solution, side by side with the distributed result and
// the analytic bounds.
//
// Paper reference: centralized (B/3, B/3, 2B/3, B/8, 3B/4);
//                  distributed (B/3, B/5, B/4, B/4, B/2); basic shares B/8.
#include <iostream>

#include "alloc/centralized.hpp"
#include "alloc/distributed.hpp"
#include "alloc/schedulability.hpp"
#include "contention/cliques.hpp"
#include "net/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  const Scenario sc = scenario2();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);

  std::cout << "Fig. 6 — first phase: centralized vs distributed (Table I topology)\n\n";

  std::cout << "Global maximal cliques:\n";
  const auto cliques = maximal_cliques(graph);
  for (std::size_t k = 0; k < cliques.size(); ++k) {
    std::vector<std::string> names;
    for (int v : cliques[k]) names.push_back(flows.subflow(v).name());
    std::cout << "  O" << k + 1 << " = {" << join(names, ", ") << "}\n";
  }

  std::cout << "\nCentralized LP constraints (dedup):\n";
  const auto c = centralized_allocate(graph);
  for (const auto& row : c.constraint_rows) {
    std::vector<std::string> terms;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] == 0) continue;
      terms.push_back(row[i] == 1 ? strformat("r%zu", i + 1)
                                  : strformat("%dr%zu", row[i], i + 1));
    }
    std::cout << "  " << join(terms, " + ") << " <= B\n";
  }
  std::cout << "  r_i >= " << format_share_of_b(c.basic[0]) << " for all i\n\n";

  const auto d = distributed_allocate(sc.topo, flows, graph);

  TextTable t({"Flow", "hops", "basic", "centralized r^", "distributed r^"});
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    t.add_row({flows.flow(f).name(), std::to_string(flows.flow(f).length()),
               format_share_of_b(c.basic[f]),
               format_share_of_b(c.allocation.flow_share[f]),
               format_share_of_b(d.allocation.flow_share[f])});
  }
  t.print(std::cout);

  std::cout << "\nTotal effective throughput: centralized "
            << strformat("%.4f", c.allocation.total_effective) << "B, distributed "
            << strformat("%.4f", d.allocation.total_effective)
            << "B (distributed <= centralized, paper Sec. IV-B)\n";
  const auto sched = check_schedulable(graph, c.allocation.subflow_share);
  std::cout << "Centralized optimum schedulable: " << (sched.schedulable ? "yes" : "no")
            << " (time " << strformat("%.3f", sched.time_needed) << ")\n";
  return 0;
}
