// Microbenchmarks: maximal-clique enumeration (Bron–Kerbosch) and related
// contention-graph machinery on chains and random flow sets.
#include <benchmark/benchmark.h>

#include "contention/cliques.hpp"
#include "contention/coloring.hpp"
#include "net/scenarios.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace e2efa {
namespace {

/// Random connected topology with `nf` min-hop routed flows.
struct RandomNet {
  RandomNet(int nodes, int nf, std::uint64_t seed) {
    Rng rng(seed);
    // Constant node density (~5 neighbors each) so placements stay connected.
    const double side = 200.0 * std::sqrt(static_cast<double>(nodes));
    topo = std::make_unique<Topology>(make_random(nodes, side, side, rng));
    std::vector<Flow> specs;
    for (int i = 0; i < nf; ++i) {
      NodeId a, b;
      do {
        a = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)));
        b = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)));
      } while (a == b);
      specs.push_back(make_routed_flow(*topo, a, b, 1.0 + rng.uniform01()));
    }
    flows = std::make_unique<FlowSet>(*topo, specs);
    graph = std::make_unique<ContentionGraph>(*topo, *flows);
  }
  std::unique_ptr<Topology> topo;
  std::unique_ptr<FlowSet> flows;
  std::unique_ptr<ContentionGraph> graph;
};

void BM_MaximalCliquesChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  Topology topo = make_chain(hops + 1);
  Flow f;
  for (int i = 0; i <= hops; ++i) f.path.push_back(i);
  FlowSet flows(topo, {f});
  ContentionGraph g(topo, flows);
  for (auto _ : state) benchmark::DoNotOptimize(maximal_cliques(g));
  state.SetComplexityN(hops);
}
BENCHMARK(BM_MaximalCliquesChain)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_MaximalCliquesRandom(benchmark::State& state) {
  RandomNet net(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 3, 7);
  for (auto _ : state) benchmark::DoNotOptimize(maximal_cliques(*net.graph));
}
BENCHMARK(BM_MaximalCliquesRandom)->Arg(12)->Arg(24)->Arg(48);

// Before/after pair for the scaling rework: the dense-matrix enumerator the
// seed shipped (O(V^2) setup, per-call allocation) vs the vertex-seeded
// bitset engine behind maximal_cliques. Same outputs — scale_parity_test
// asserts element-wise equality — so the delta is pure enumeration cost.
void BM_MaximalCliquesDenseReference(benchmark::State& state) {
  RandomNet net(static_cast<int>(state.range(0)), 3 * static_cast<int>(state.range(0)), 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(maximal_cliques_reference(*net.graph));
}
BENCHMARK(BM_MaximalCliquesDenseReference)->Arg(24)->Arg(48)->Arg(96);

void BM_MaximalCliquesSparseSeeded(benchmark::State& state) {
  RandomNet net(static_cast<int>(state.range(0)), 3 * static_cast<int>(state.range(0)), 7);
  for (auto _ : state) benchmark::DoNotOptimize(maximal_cliques(*net.graph));
}
BENCHMARK(BM_MaximalCliquesSparseSeeded)->Arg(24)->Arg(48)->Arg(96);

// Scratch reuse in the hot path: a long-lived CliqueEnumerator (what the
// incremental store holds) vs a fresh engine per run, which re-allocates
// frames, bitset rows, and relabel maps every call.
void BM_EnumeratorPooledScratch(benchmark::State& state) {
  RandomNet net(static_cast<int>(state.range(0)), 3 * static_cast<int>(state.range(0)), 7);
  std::vector<int> all;
  for (int v = 0; v < net.graph->vertex_count(); ++v) all.push_back(v);
  CliqueEnumerator engine(*net.graph);
  std::vector<std::vector<int>> out;
  for (auto _ : state) {
    out.clear();
    engine.enumerate(all, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EnumeratorPooledScratch)->Arg(24)->Arg(48)->Arg(96);

void BM_EnumeratorFreshScratch(benchmark::State& state) {
  RandomNet net(static_cast<int>(state.range(0)), 3 * static_cast<int>(state.range(0)), 7);
  std::vector<int> all;
  for (int v = 0; v < net.graph->vertex_count(); ++v) all.push_back(v);
  std::vector<std::vector<int>> out;
  for (auto _ : state) {
    out.clear();
    CliqueEnumerator engine(*net.graph);
    engine.enumerate(all, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EnumeratorFreshScratch)->Arg(24)->Arg(48)->Arg(96);

void BM_IndependentSetsRandom(benchmark::State& state) {
  RandomNet net(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 3, 7);
  for (auto _ : state) benchmark::DoNotOptimize(maximal_independent_sets(*net.graph));
}
BENCHMARK(BM_IndependentSetsRandom)->Arg(12)->Arg(24);

void BM_ContentionGraphBuild(benchmark::State& state) {
  RandomNet net(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 3, 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(ContentionGraph(*net.topo, *net.flows));
}
BENCHMARK(BM_ContentionGraphBuild)->Arg(12)->Arg(24)->Arg(48);

void BM_GreedyColoring(benchmark::State& state) {
  RandomNet net(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 3, 7);
  for (auto _ : state) benchmark::DoNotOptimize(greedy_coloring(*net.graph));
}
BENCHMARK(BM_GreedyColoring)->Arg(24)->Arg(48);

}  // namespace
}  // namespace e2efa
