// Reproduces Fig. 3 and the virtual-length analysis (Sec. II-D): chain
// subflow contention graphs are 3-colorable, so a flow longer than three
// hops is entitled to the same end-to-end throughput as a 3-hop flow.
// Also demonstrates shortcut detection (Fig. 3(a) vs 3(b)).
#include <iostream>

#include "alloc/centralized.hpp"
#include "contention/coloring.hpp"
#include "net/scenarios.hpp"
#include "topology/builders.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  std::cout << "Fig. 3 — intra-flow spatial reuse and the virtual length v = min(l, 3)\n\n";

  TextTable t({"hops l", "virtual length v", "chromatic colors (greedy)",
               "canonical coloring", "single-flow allocation r^"});
  for (int l = 1; l <= 12; ++l) {
    Topology topo = make_chain(l + 1);
    Flow f;
    for (int i = 0; i <= l; ++i) f.path.push_back(i);
    FlowSet flows(topo, {f});
    ContentionGraph g(topo, flows);

    const auto greedy = greedy_coloring(g);
    const auto canonical = chain_coloring(l);
    if (!is_proper_coloring(g, canonical)) {
      std::cerr << "canonical coloring improper at l=" << l << "\n";
      return 1;
    }
    std::vector<std::string> cells;
    for (int c : canonical) cells.push_back(std::to_string(c + 1));

    const auto alloc = centralized_allocate(g);
    t.add_row({std::to_string(l), std::to_string(virtual_length(l)),
               std::to_string(color_count(greedy)), join(cells, ""),
               format_share_of_b(alloc.allocation.flow_share[0])});
  }
  t.print(std::cout);

  std::cout << "\nThe 6-hop example of Fig. 3(c)/(d): non-contending sets "
               "{F1.1,F1.4}, {F1.2,F1.5}, {F1.3,F1.6} (colors 1,2,3 above).\n";

  // Shortcut example: triangle route 0-1-2 with 0-2 in range.
  Topology tri({{0, 0}, {200, 0}, {200, 200}}, 300.0);
  Flow f;
  f.path = {0, 1, 2};
  FlowSet fs(tri, {f});
  std::cout << "\nShortcut detection (Fig. 3(a)): route 0->1->2 with 0-2 in range: "
            << (fs.has_shortcut(0) ? "shortcut detected" : "no shortcut") << "\n";
  Topology line = make_chain(3);
  FlowSet fs2(line, {f});
  std::cout << "Same route on a straight line (Fig. 3(b)): "
            << (fs2.has_shortcut(0) ? "shortcut detected" : "no shortcut") << "\n";
  return 0;
}
