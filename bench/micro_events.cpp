// Scheduler-core microbenchmark: events/sec of the pooled event engine on
// MAC/PHY-shaped workloads, measured against an inline copy of the seed
// engine (std::function handlers in a hash map + binary heap + lazy-cancel
// hash set) so the speedup is re-measured — not asserted — on every run.
//
// Emits machine-readable JSON (default BENCH_events.json): one record per
// (engine, workload) with {"name", "events_per_sec", "ns_per_event"}.
// Seed-engine baselines are prefixed "seed_". Both engines run the same
// workloads alternately, best-of-`rounds`, so the ratio is robust to other
// load on the machine.
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace seedengine {
using e2efa::TimeNs;

/// The pre-rewrite event engine, kept verbatim (minus docs) as the
/// benchmark baseline.
class Simulator {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  TimeNs now() const { return now_; }

  EventId schedule_at(TimeNs t, std::function<void()> fn) {
    const EventId id = next_id_++;
    heap_.push({t, id});
    handlers_.emplace(id, std::move(fn));
    return id;
  }

  EventId schedule_in(TimeNs delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool cancel(EventId id) {
    const auto it = handlers_.find(id);
    if (it == handlers_.end()) return false;
    handlers_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  std::uint64_t run_until(TimeNs t_end) {
    std::uint64_t count = 0;
    while (!heap_.empty() && heap_.top().time <= t_end) {
      const Entry e = heap_.top();
      heap_.pop();
      const auto c = cancelled_.find(e.id);
      if (c != cancelled_.end()) {
        cancelled_.erase(c);
        continue;
      }
      const auto h = handlers_.find(e.id);
      auto fn = std::move(h->second);
      handlers_.erase(h);
      now_ = e.time;
      fn();
      ++count;
    }
    if (heap_.empty() || now_ < t_end) now_ = std::max(now_, t_end);
    return count;
  }

  std::uint64_t run() {
    std::uint64_t count = 0;
    while (!heap_.empty()) count += run_until(heap_.top().time);
    return count;
  }

 private:
  struct Entry {
    TimeNs time;
    EventId id;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : id > o.id;
    }
  };

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace seedengine

namespace {

using Clock = std::chrono::steady_clock;

// The workloads below schedule small function objects — the event shapes
// the product code actually produces ([this]-captured ticks and guard
// timers, frame-carrying end-of-reception closures) — identically on both
// engines: the seed engine wraps them in std::function exactly as the old
// MAC/PHY did.

/// Bulk schedule of n empty events, then one drain.
template <class Sim>
double bench_schedule_drain(int n, int reps) {
  const auto t0 = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    Sim sim;
    for (int i = 0; i < n; ++i) sim.schedule_at(i, [] {});
    sim.run();
  }
  return reps * n / std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Self-rescheduling chain: each event schedules its successor (a CBR tick
/// or backoff countdown; the closure is one `this` pointer).
template <class Sim>
struct CascadeCtx {
  Sim* sim;
  int count = 0;
  int n;
  struct Tick {
    CascadeCtx* c;
    void operator()() const {
      if (++c->count < c->n) c->sim->schedule_in(1, Tick{c});
    }
  };
};

template <class Sim>
double bench_cascade(int n, int reps) {
  const auto t0 = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    Sim sim;
    CascadeCtx<Sim> ctx{&sim, 0, n};
    sim.schedule_in(1, typename CascadeCtx<Sim>::Tick{&ctx});
    sim.run();
  }
  return reps * n / std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The MAC timeout pattern: every step cancels the previous guard timer and
/// arms a new one, so half the scheduled events die un-fired.
template <class Sim>
struct TimerCtx {
  Sim* sim;
  std::uint64_t pending = 0;
  int count = 0;
  int n;
  struct Step {
    TimerCtx* c;
    void operator()() const {
      if (c->pending) c->sim->cancel(c->pending);
      if (++c->count < c->n) {
        c->pending = c->sim->schedule_at(c->sim->now() + 1000, [] {});
        c->sim->schedule_in(7, Step{c});
      }
    }
  };
};

template <class Sim>
double bench_timer_mix(int n, int reps) {
  const auto t0 = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    Sim sim;
    TimerCtx<Sim> ctx{&sim, 0, 0, n};
    sim.schedule_in(7, typename TimerCtx<Sim>::Step{&ctx});
    sim.run();
  }
  return reps * n / std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The PHY shape: each "transmission" fans out four end-of-frame events
/// whose closures carry frame-sized state (~40 bytes).
template <class Sim>
struct FanCtx {
  Sim* sim;
  int fired = 0;
  int n;
  long long sink = 0;
  struct FrameEnd {
    FanCtx* ctx;
    long long end;
    unsigned long long tx_id;
    int r;
    char body[12];
    void operator()() const {
      ++ctx->fired;
      ctx->sink += end + r;
    }
  };
  struct Tx {
    FanCtx* c;
    void operator()() const {
      if (c->fired >= c->n) return;
      for (int k = 0; k < 4; ++k)
        c->sim->schedule_at(c->sim->now() + 2048,
                            FrameEnd{c, c->sim->now() + 2048, 1, k, {}});
      c->sim->schedule_in(2048, Tx{c});
    }
  };
};

template <class Sim>
double bench_phy_fanout(int n, int reps) {
  const auto t0 = Clock::now();
  long long sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Sim sim;
    FanCtx<Sim> ctx{&sim, 0, n, 0};
    sim.schedule_in(1, typename FanCtx<Sim>::Tx{&ctx});
    sim.run();
    sink += ctx.sink;
  }
  if (sink == 42) std::printf("~");  // defeat whole-benchmark elision
  return reps * n / std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Options {
  int events = 10'000;
  int reps = 150;
  int rounds = 5;
  std::string out = "BENCH_events.json";
};

[[noreturn]] void usage(const char* prog, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--events N] [--reps N] [--rounds N] [--out PATH]\n",
               prog);
  std::exit(2);
}

int parse_positive(const char* prog, const std::string& key, const char* text) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v <= 0 || v > 100'000'000)
    usage(prog, key + ": expected a positive integer, got '" + text + "'");
  return static_cast<int>(v);
}

Options parse_options(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "micro_events";
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") usage(prog, "");
    if (i + 1 >= argc) usage(prog, key + ": missing value");
    const char* val = argv[++i];
    if (key == "--events") o.events = parse_positive(prog, key, val);
    else if (key == "--reps") o.reps = parse_positive(prog, key, val);
    else if (key == "--rounds") o.rounds = parse_positive(prog, key, val);
    else if (key == "--out") o.out = val;
    else usage(prog, "unknown flag '" + key + "'");
  }
  return o;
}

struct Result {
  std::string name;
  double events_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  struct Workload {
    const char* name;
    double (*seed)(int, int);
    double (*pooled)(int, int);
  };
  const Workload workloads[] = {
      {"schedule_drain", bench_schedule_drain<seedengine::Simulator>,
       bench_schedule_drain<e2efa::Simulator>},
      {"cascade", bench_cascade<seedengine::Simulator>,
       bench_cascade<e2efa::Simulator>},
      {"timer_mix", bench_timer_mix<seedengine::Simulator>,
       bench_timer_mix<e2efa::Simulator>},
      {"phy_fanout", bench_phy_fanout<seedengine::Simulator>,
       bench_phy_fanout<e2efa::Simulator>},
  };

  // Alternate engines within every round and keep the best round per
  // (engine, workload): slowdowns from unrelated machine load hit both
  // engines alike instead of biasing the ratio.
  std::vector<Result> results;
  for (const Workload& w : workloads) {
    double seed_best = 0.0, pooled_best = 0.0;
    for (int r = 0; r < opt.rounds; ++r) {
      seed_best = std::max(seed_best, w.seed(opt.events, opt.reps));
      pooled_best = std::max(pooled_best, w.pooled(opt.events, opt.reps));
    }
    results.push_back({w.name, pooled_best});
    results.push_back({std::string("seed_") + w.name, seed_best});
    std::printf("%-16s %8.2f M events/s   (seed engine %8.2f, %.2fx)\n",
                w.name, pooled_best / 1e6, seed_best / 1e6,
                pooled_best / seed_best);
  }

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", opt.out.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"events_per_sec\": %.0f, "
                 "\"ns_per_event\": %.3f}%s\n",
                 results[i].name.c_str(), results[i].events_per_sec,
                 1e9 / results[i].events_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", opt.out.c_str());
  return 0;
}
