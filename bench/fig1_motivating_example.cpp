// Reproduces the Fig.-1 motivating example and the Sec.-III-B worked
// comparison: subflow-level (two-tier) allocation vs end-to-end 2PA
// allocation vs the strict-fairness optimum on the two-flow topology.
//
// Paper reference values:
//   two-tier (single-hop objective): (r1.1, r1.2, r2.1, r2.2) =
//     (3B/4, B/4, 3B/8, 3B/8); end-to-end (B/4, 3B/8); total 5B/8;
//     total single-hop 7B/4.
//   2PA basic-fairness optimum: (r̂1, r̂2) = (B/2, B/4); total 3B/4.
//   strict fairness: (B/3, B/3); total 2B/3.
#include <iostream>

#include "alloc/centralized.hpp"
#include "alloc/schedulability.hpp"
#include "alloc/two_tier.hpp"
#include "net/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  const Scenario sc = scenario1();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);

  std::cout << "Fig. 1 — fair bandwidth allocation among multi-hop flows\n\n";
  std::cout << "Subflow contention graph edges: ";
  {
    std::vector<std::string> edges;
    for (int a = 0; a < graph.vertex_count(); ++a)
      for (int b = a + 1; b < graph.vertex_count(); ++b)
        if (graph.contend(a, b))
          edges.push_back(flows.subflow(a).name() + "-" + flows.subflow(b).name());
    std::cout << join(edges, ", ") << "\n";
  }

  const auto basic = basic_shares(flows);
  std::cout << "Basic shares (paper: B/4 each): " << format_share_of_b(basic[0]) << ", "
            << format_share_of_b(basic[1]) << "\n\n";

  const auto tt = two_tier_allocate(graph);
  const auto c = centralized_allocate(graph);
  const auto strict = fairness_bound_shares(graph);

  TextTable t({"Strategy", "r1.1", "r1.2", "r2.1", "r2.2", "u1", "u2",
               "total effective", "total single-hop"});
  auto fmt = format_share_of_b;
  {
    const Allocation& a = tt.allocation;
    double single = 0;
    for (double s : a.subflow_share) single += s;
    t.add_row({"two-tier (prev. work)", fmt(a.subflow_share[0], 64), fmt(a.subflow_share[1], 64),
               fmt(a.subflow_share[2], 64), fmt(a.subflow_share[3], 64),
               fmt(a.end_to_end[0], 64), fmt(a.end_to_end[1], 64),
               fmt(a.total_effective, 64), fmt(single, 64)});
  }
  {
    const Allocation& a = c.allocation;
    double single = 0;
    for (double s : a.subflow_share) single += s;
    t.add_row({"2PA (basic fairness)", fmt(a.subflow_share[0], 64), fmt(a.subflow_share[1], 64),
               fmt(a.subflow_share[2], 64), fmt(a.subflow_share[3], 64),
               fmt(a.end_to_end[0], 64), fmt(a.end_to_end[1], 64),
               fmt(a.total_effective, 64), fmt(single, 64)});
  }
  {
    t.add_row({"strict fairness bound", fmt(strict[0], 64), fmt(strict[0], 64),
               fmt(strict[1], 64), fmt(strict[1], 64), fmt(strict[0], 64),
               fmt(strict[1], 64), fmt(strict[0] + strict[1], 64), "-"});
  }
  t.print(std::cout);

  const auto sched = check_schedulable(graph, c.allocation.subflow_share);
  std::cout << "\n2PA optimum schedulable: " << (sched.schedulable ? "yes" : "no")
            << " (needs " << strformat("%.3f", sched.time_needed) << " of the period)\n";
  std::cout << "\nPaper conclusions: 2PA's 3B/4 beats two-tier's 5B/8 end-to-end even\n"
               "though two-tier wins on raw single-hop throughput (7B/4 vs 3B/2) —\n"
               "single-hop throughput delivered into a full relay queue is waste.\n";
  return 0;
}
