// City-scale sweep: wall-clock and peak RSS of every phase-1 scaling layer
// (spatial-grid neighbor build, sparse contention graph, clique
// enumeration, incremental clique deltas, distributed solve) plus a short
// packet-level simulation, at 50 / 200 / 1k / 5k / 10k nodes with 10
// flows per node (100k flows at the top point). Results go to
// BENCH_scale.json; the 1k-node point is *guarded* against regression.
//
// Per-size figures (seconds unless noted):
//
//   gen_s         generate_scenario: placement, grid-backed connectivity
//                 check, bounded-BFS routing (max_hops = 4).
//   neighbor_s    Topology reconstruction alone — the grid-backed
//                 neighbor/interference list build the spatial index
//                 replaced an all-pairs double loop with.
//   contention_s  FlowSet + sparse ContentionGraph (endpoint-incidence
//                 rule over interference lists, no pairwise scan).
//   clique_s      CliqueStore construction = full Bron–Kerbosch over the
//                 active graph (the from-scratch cost a re-solve used to
//                 pay every epoch).
//   delta_mean_s  mean cost of one fault-shaped delta: suspend one flow's
//                 subflows, re-derive only the dirtied clique
//                 neighborhood, heal it again (2 updates per round).
//   solve_s       distributed phase 1, sampled: knowledge build (steps
//                 1-2, all nodes — shared state) plus steps 3-5 for
//                 kSolveSample sources spread over the flow id space:
//                 local cliques per path node, constraint accumulation,
//                 and the source's *pass-1* local LP (maximize total
//                 share over clique rows + basic-share floors). The
//                 balanced (lexicographic max-min) refinement is
//                 excluded: it solves one LP per free variable per
//                 level — O(vars²) dense simplex solves, hours at the
//                 ~1000-variable local problems city-scale density
//                 produces — and is the offline oracle's tie-breaking
//                 post-pass, not part of the scaling path this sweep
//                 measures. In deployment every source solves
//                 concurrently, so the scaling figure is the per-source
//                 mean (solve_per_flow_s), not a serialized sum over
//                 100k flows — which is why the sweep samples instead of
//                 calling distributed_allocate outright.
//   sim_s         run_scenario, plain 802.11 DCF for sim_seconds of
//                 simulated time: exercises the event engine / channel /
//                 MAC path at scale without re-paying the solve that
//                 solve_s already measures.
//   peak_rss_mb   VmHWM from /proc/self/status (high-water mark, so the
//                 figure is cumulative across earlier sizes).
//
// Guard (same idiom as micro_events / micro_ctrl): at the default sizes,
// the 1k-node point's scalable-path total (neighbor_s + contention_s +
// clique_s + delta_total_s — the layers the scaling rework owns) must
// stay within --tolerance (default 10%) of the recorded baseline;
// --nodes N measures a custom point and skips the guard. A full (non
// --quick) run additionally checks the nodes-vs-time growth between 1k
// and 10k stays sub-quadratic for the neighbor build and the clique
// layers.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "alloc/knowledge.hpp"
#include "contention/clique_store.hpp"
#include "contention/cliques.hpp"
#include "contention/contention_graph.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "net/runner.hpp"
#include "net/scenario_gen.hpp"

using namespace e2efa;

namespace {

struct SizeSpec {
  int nodes;
  int flows;
  double sim_seconds;  ///< Simulated horizon of the packet-sim phase.
};

// 10 flows per node throughout; the packet-sim horizon shrinks as the
// event population grows so every point stays a "short" sim.
constexpr SizeSpec kSizes[] = {
    {50, 500, 2.0}, {200, 2000, 1.0}, {1000, 10000, 0.5},
    {5000, 50000, 0.2}, {10000, 100000, 0.1},
};
constexpr int kQuickSizes = 3;  ///< --quick stops after the 1k point.
constexpr int kGuardNodes = 1000;

// Captured on the reference machine at the default sizes (single run,
// Release). The guard watches the scalable phase-1 path only — the packet
// sim is event-count-bound and too seed-sensitive to gate on.
constexpr double kBaselineGuardTotalS = 20.94;

// Delta cost is bounded by the dirty neighborhood N[Δ] — constant in
// network size once degree saturates — so a handful of rounds averages
// out the noise without dominating the point's wall-clock.
constexpr int kDeltaRounds = 5;
// Default number of sources sampled by the solve phase. Per-source cost
// is dominated by deriving each path node's local cliques plus one pass-1
// simplex solve (~1000 variables at saturated density — fractions of a
// second each), so eight sources report a stable mean without the phase
// dominating the point's wall-clock.
constexpr int kSolveSample = 8;

struct Options {
  bool quick = false;
  int nodes = 0;  ///< > 0: single custom point (guard skipped).
  int solve_sample = kSolveSample;
  double tolerance = 0.10;
  std::string out = "BENCH_scale.json";
};

[[noreturn]] void usage(const char* prog, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--quick] [--nodes N] [--solve-sample N]\n"
               "          [--tolerance F] [--out PATH]\n"
               "  --quick           stop after the 1k-node point (CI mode;\n"
               "                    the 1k guard still runs)\n"
               "  --nodes N         single custom point with N nodes and\n"
               "                    10 N flows (baseline guard skipped)\n"
               "  --solve-sample N  sources sampled by the solve phase\n"
               "                    (default %d)\n"
               "  --tolerance F     max allowed regression vs baseline "
               "(default 0.10)\n"
               "  --out PATH        JSON output (default BENCH_scale.json)\n",
               prog, kSolveSample);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "scale_sweep";
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") usage(prog, "");
    if (key == "--quick") {
      o.quick = true;
      continue;
    }
    if (i + 1 >= argc) usage(prog, key + ": missing value");
    const char* val = argv[++i];
    if (key == "--nodes") {
      o.nodes = std::atoi(val);
      if (o.nodes < 10) usage(prog, "--nodes: expected an integer >= 10");
    } else if (key == "--solve-sample") {
      o.solve_sample = std::atoi(val);
      if (o.solve_sample < 1)
        usage(prog, "--solve-sample: expected an integer >= 1");
    } else if (key == "--tolerance") {
      errno = 0;
      char* end = nullptr;
      o.tolerance = std::strtod(val, &end);
      if (errno != 0 || end == val || *end != '\0' || o.tolerance <= 0.0)
        usage(prog, "--tolerance: expected a positive number");
    } else if (key == "--out") {
      o.out = val;
    } else {
      usage(prog, "unknown flag '" + key + "'");
    }
  }
  return o;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set (VmHWM) in MiB, from /proc/self/status; 0 when the
/// file is unavailable (non-Linux).
double peak_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr)
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  std::fclose(f);
  return static_cast<double>(kb) / 1024.0;
}

struct PointResult {
  int nodes = 0;
  int flows = 0;
  int subflows = 0;
  std::int64_t contention_edges = 0;
  int clique_count = 0;
  double gen_s = 0.0;
  double neighbor_s = 0.0;
  double contention_s = 0.0;
  double clique_s = 0.0;
  double delta_total_s = 0.0;
  double delta_mean_s = 0.0;
  double delta_removed_mean = 0.0;
  double delta_added_mean = 0.0;
  double solve_s = 0.0;
  int solve_flows = 0;
  double solve_per_flow_s = 0.0;
  double sim_seconds = 0.0;
  double sim_s = 0.0;
  double rss_mb = 0.0;
  /// The layers the scaling rework owns: grid-backed neighbor build,
  /// sparse contention graph, from-scratch clique enumeration, and the
  /// incremental deltas. The solve phase is excluded — its cost is the
  /// (sampled) local LP, which the incremental machinery feeds but does
  /// not control.
  double guard_total_s() const {
    return neighbor_s + contention_s + clique_s + delta_total_s;
  }
};

/// Progress marker: large points run for minutes, so each phase reports as
/// it completes.
void phase_done(const char* name, double seconds) {
  std::printf("  %s %.3fs", name, seconds);
  std::fflush(stdout);
}

PointResult measure(const SizeSpec& spec, int solve_sample) {
  PointResult r;
  r.nodes = spec.nodes;
  r.flows = spec.flows;
  r.sim_seconds = spec.sim_seconds;
  std::printf("%6d nodes %7d flows:", spec.nodes, spec.flows);
  std::fflush(stdout);

  GenConfig gen;
  gen.min_nodes = gen.max_nodes = spec.nodes;
  gen.min_flows = gen.max_flows = spec.flows;
  // The synthetic-scale settings tools/fuzz.cpp uses: denser placement
  // (mean degree ~12) keeps large random geometric graphs connected, and
  // bounded-hop routing keeps per-flow setup cost local.
  gen.density_m = 130.0;
  gen.max_hops = 4;
  gen.p_faults = 0.0;
  gen.p_loss = 0.0;

  double t0 = now_s();
  const Scenario sc = generate_scenario(/*seed=*/1, gen);
  r.gen_s = now_s() - t0;
  phase_done("gen", r.gen_s);

  // Re-run the Topology constructor on the same placement to time the
  // grid-backed neighbor/interference build in isolation (gen_s above
  // already paid it once inside make_random).
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(sc.topo.node_count()));
  for (NodeId v = 0; v < sc.topo.node_count(); ++v) pts.push_back(sc.topo.position(v));
  t0 = now_s();
  const Topology rebuilt(std::move(pts), sc.topo.tx_range(), sc.topo.interference_range());
  r.neighbor_s = now_s() - t0;
  phase_done("nbr", r.neighbor_s);

  t0 = now_s();
  const FlowSet flows(sc.topo, sc.flow_specs);
  const ContentionGraph g(sc.topo, flows);
  r.contention_s = now_s() - t0;
  phase_done("graph", r.contention_s);
  r.subflows = flows.subflow_count();
  for (int v = 0; v < g.vertex_count(); ++v)
    r.contention_edges += static_cast<std::int64_t>(g.neighbors_of(v).size());
  r.contention_edges /= 2;

  t0 = now_s();
  CliqueStore store(g);
  r.clique_s = now_s() - t0;
  r.clique_count = store.clique_count();
  phase_done("cliques", r.clique_s);

  // Fault-shaped deltas: round k suspends flow (k * stride) — all of its
  // subflows leave the active set — then heals it, exactly the toggle
  // pattern the runner's epoch machinery feeds the store.
  std::vector<int> suspend;
  std::int64_t removed = 0, added = 0;
  t0 = now_s();
  for (int round = 0; round < kDeltaRounds; ++round) {
    const FlowId f = static_cast<FlowId>(
        (static_cast<std::int64_t>(round) * 7919) % flows.flow_count());
    suspend.clear();
    for (int h = 0; h < flows.flow(f).length(); ++h)
      suspend.push_back(flows.subflow_index(f, h));
    const CliqueStore::UpdateStats down = store.update({}, suspend);
    const CliqueStore::UpdateStats up = store.update(suspend, {});
    removed += down.removed + up.removed;
    added += down.added + up.added;
  }
  r.delta_total_s = now_s() - t0;
  r.delta_mean_s = r.delta_total_s / (2.0 * kDeltaRounds);
  r.delta_removed_mean = static_cast<double>(removed) / (2.0 * kDeltaRounds);
  r.delta_added_mean = static_cast<double>(added) / (2.0 * kDeltaRounds);
  phase_done("deltas", r.delta_total_s);

  // Distributed phase 1, sampled. Steps 1-2 (overhear + exchange) build
  // the shared knowledge state for every node; then kSolveSample sources
  // spread over the flow id space run steps 3-5 — local cliques of each
  // path node derived lazily (and cached: sampled paths overlap), then
  // the source's pass-1 local LP (see the solve_s note in the file-top
  // comment for why the balanced refinement is excluded).
  // distributed_allocate would serialize work that deployment runs
  // concurrently per source, so the per-source mean is the scaling
  // figure.
  t0 = now_s();
  const std::vector<std::vector<int>> own = overheard_subflow_sets(sc.topo, flows);
  const std::vector<std::vector<int>> knowledge = exchanged_knowledge(sc.topo, own);
  const double knowledge_s = now_s() - t0;
  std::vector<std::vector<std::vector<int>>> node_cliques(
      static_cast<std::size_t>(sc.topo.node_count()));
  std::vector<char> node_done(static_cast<std::size_t>(sc.topo.node_count()), 0);
  r.solve_flows = std::min(solve_sample, flows.flow_count());
  double share_sum = 0.0;
  for (int i = 0; i < r.solve_flows; ++i) {
    const FlowId fid = static_cast<FlowId>(
        static_cast<std::int64_t>(i) * flows.flow_count() / r.solve_flows);
    const Flow& fl = flows.flow(fid);
    std::set<std::vector<int>> cliques;
    for (int h = 0; h < fl.length(); ++h) {
      const NodeId v = fl.path[static_cast<std::size_t>(h)];
      if (node_done[static_cast<std::size_t>(v)] == 0) {
        node_cliques[static_cast<std::size_t>(v)] =
            maximal_cliques_in_subset(g, knowledge[static_cast<std::size_t>(v)]);
        node_done[static_cast<std::size_t>(v)] = 1;
      }
      for (const auto& c : node_cliques[static_cast<std::size_t>(v)]) cliques.insert(c);
    }
    // Pass-1 local LP: variables are the flows in any accumulated
    // clique; objective maximizes total share; floors are the local
    // basic shares from the source's two-hop knowledge; one <=1 row per
    // distinct clique (rows deduplicated after flow-level projection).
    std::set<FlowId> vars_set;
    vars_set.insert(fid);
    for (const auto& c : cliques)
      for (int s : c) vars_set.insert(flows.subflow(s).flow);
    const std::vector<FlowId> vars(vars_set.begin(), vars_set.end());
    const int k = static_cast<int>(vars.size());
    double denom = 0.0;
    {
      std::set<FlowId> known;
      for (int s : knowledge[static_cast<std::size_t>(fl.source())])
        known.insert(flows.subflow(s).flow);
      for (FlowId j : known)
        denom += flows.flow(j).weight * virtual_length(flows.flow(j).length());
    }
    LpProblem p(k);
    for (int v = 0; v < k; ++v) {
      p.set_objective(v, 1.0);
      p.set_lower_bound(
          v, flows.flow(vars[static_cast<std::size_t>(v)]).weight / denom);
    }
    std::set<std::vector<double>> rows;
    for (const auto& c : cliques) {
      std::vector<double> row(static_cast<std::size_t>(k), 0.0);
      for (int s : c) {
        const FlowId j = flows.subflow(s).flow;
        const auto pos =
            std::lower_bound(vars.begin(), vars.end(), j) - vars.begin();
        row[static_cast<std::size_t>(pos)] += 1.0;
      }
      rows.insert(std::move(row));
    }
    for (const auto& row : rows)
      p.add_constraint(std::vector<double>(row), Relation::kLessEq, 1.0);
    const LpSolution sol = solve_lp(p);
    const auto fpos =
        std::lower_bound(vars.begin(), vars.end(), fid) - vars.begin();
    share_sum += sol.status == LpStatus::kOptimal
                     ? sol.x[static_cast<std::size_t>(fpos)]
                     : fl.weight / denom;  // local basic share fallback
  }
  r.solve_s = now_s() - t0;
  r.solve_per_flow_s = (r.solve_s - knowledge_s) / r.solve_flows;
  phase_done("solve", r.solve_s);
  if (share_sum <= 0.0) std::abort();  // keep the solves live

  SimConfig cfg;
  cfg.sim_seconds = spec.sim_seconds;
  cfg.seed = 1;
  t0 = now_s();
  const RunResult run = run_scenario(sc, Protocol::k80211, cfg);
  r.sim_s = now_s() - t0;
  phase_done("sim", r.sim_s);
  std::printf("\n");
  if (run.sim_seconds <= 0.0) std::abort();

  r.rss_mb = peak_rss_mb();
  return r;
}

/// log-log slope of t(nodes) between two points; < 2 means sub-quadratic.
/// Sub-millisecond timings are clamped first — at 1k nodes some phases
/// finish in microseconds and their ratio would be pure noise.
double growth_exponent(const PointResult& a, const PointResult& b, double ta,
                       double tb) {
  const double lo = std::max(ta, 1e-3);
  const double hi = std::max(tb, 1e-3);
  return std::log(hi / lo) /
         std::log(static_cast<double>(b.nodes) / static_cast<double>(a.nodes));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  std::vector<SizeSpec> sizes;
  if (opt.nodes > 0) {
    sizes.push_back({opt.nodes, 10 * opt.nodes, 0.2});
  } else {
    const int count = opt.quick ? kQuickSizes
                                : static_cast<int>(std::size(kSizes));
    sizes.assign(kSizes, kSizes + count);
  }

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", opt.out.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "[\n");

  bool failed = false;
  std::vector<PointResult> results;
  for (const SizeSpec& spec : sizes) {
    const PointResult r = measure(spec, opt.solve_sample);
    results.push_back(r);
    std::printf(
        "        -> %d subflows, %lld contention edges, %d cliques, "
        "delta %.5fs mean, peak rss %.1f MB\n",
        r.subflows, static_cast<long long>(r.contention_edges),
        r.clique_count, r.delta_mean_s, r.rss_mb);
    std::fflush(stdout);
    std::fprintf(
        f,
        "  {\"name\": \"scale_%d\", \"nodes\": %d, \"flows\": %d, "
        "\"subflows\": %d, \"contention_edges\": %lld, \"clique_count\": %d, "
        "\"gen_s\": %.6f, \"neighbor_s\": %.6f, \"contention_s\": %.6f, "
        "\"clique_s\": %.6f, \"delta_total_s\": %.6f, \"delta_mean_s\": %.8f, "
        "\"delta_removed_mean\": %.2f, \"delta_added_mean\": %.2f, "
        "\"solve_s\": %.6f, \"solve_flows\": %d, \"solve_per_flow_s\": %.6f, "
        "\"sim_seconds\": %.2f, \"sim_s\": %.6f, "
        "\"peak_rss_mb\": %.1f},\n",
        r.nodes, r.nodes, r.flows, r.subflows,
        static_cast<long long>(r.contention_edges), r.clique_count, r.gen_s,
        r.neighbor_s, r.contention_s, r.clique_s, r.delta_total_s,
        r.delta_mean_s, r.delta_removed_mean, r.delta_added_mean, r.solve_s,
        r.solve_flows, r.solve_per_flow_s, r.sim_seconds, r.sim_s, r.rss_mb);
    std::fflush(f);
  }

  // --- 1k-point regression guard (default sizes only). -------------------
  const bool guard = opt.nodes == 0;
  double guard_total = 0.0;
  if (guard) {
    for (const PointResult& r : results)
      if (r.nodes == kGuardNodes) guard_total = r.guard_total_s();
    if (guard_total > kBaselineGuardTotalS * (1.0 + opt.tolerance)) {
      std::fprintf(stderr,
                   "FAIL: 1k-node scalable-path total %.2f s exceeds baseline "
                   "%.2f s by more than %.0f%%\n",
                   guard_total, kBaselineGuardTotalS, opt.tolerance * 1e2);
      failed = true;
    }
  }

  // --- Sub-quadratic growth check (full sweep only). ---------------------
  double nbr_exp = 0.0, clique_exp = 0.0;
  const bool full = guard && !opt.quick;
  if (full) {
    const PointResult& a = results[2];  // 1k
    const PointResult& b = results.back();  // 10k
    nbr_exp = growth_exponent(a, b, a.neighbor_s, b.neighbor_s);
    clique_exp = growth_exponent(a, b, a.clique_s + a.contention_s,
                                 b.clique_s + b.contention_s);
    std::printf("growth exponents 1k -> 10k: neighbor build %.2f, "
                "contention+cliques %.2f (quadratic = 2.00)\n",
                nbr_exp, clique_exp);
    if (nbr_exp >= 2.0 || clique_exp >= 2.0) {
      std::fprintf(stderr,
                   "FAIL: nodes-vs-wall-clock growth is not sub-quadratic "
                   "(neighbor %.2f, contention+cliques %.2f)\n",
                   nbr_exp, clique_exp);
      failed = true;
    }
  }

  std::fprintf(f,
               "  {\"name\": \"scale_guard\", \"guarded\": %s, "
               "\"guard_total_s\": %.6f, \"baseline_s\": %.6f, "
               "\"tolerance\": %.2f, \"neighbor_exponent\": %.3f, "
               "\"clique_exponent\": %.3f}\n]\n",
               guard ? "true" : "false", guard_total, kBaselineGuardTotalS,
               opt.tolerance, nbr_exp, clique_exp);
  std::fclose(f);
  std::printf("wrote %s%s\n", opt.out.c_str(),
              guard ? "" : " (custom --nodes point: baseline guard skipped)");
  return failed ? 1 : 0;
}
