// Reproduces the Fig.-5 pentagon example (Sec. III): the Prop.-1 upper
// bound can be unachievable. For C5, ω_Ω = 2 gives the bound B/2 per flow
// (total 5B/2), but no feasible schedule attains it — the fractional limit
// is 2B/5 per flow. The paper's remedy: keep the LP shares as
// allocated-share *weights* for phase 2.
#include <iostream>

#include "alloc/centralized.hpp"
#include "alloc/schedulability.hpp"
#include "contention/cliques.hpp"
#include "net/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  const AbstractExample ex = pentagon_example();
  FlowSet flows(ex.scenario.topo, ex.scenario.flow_specs);
  ContentionGraph graph(flows, ex.edges);

  std::cout << "Fig. 5 — pentagon contention graph: unachievable upper bound\n\n";
  std::cout << "Maximal cliques: " << maximal_cliques(graph).size()
            << " (the five ring edges); weighted clique number omega = "
            << weighted_clique_number(graph) << "\n";
  std::cout << "Prop. 1 upper bound: total " << format_share_of_b(fairness_upper_bound(graph))
            << ", per-flow " << format_share_of_b(fairness_bound_shares(graph)[0]) << "\n\n";

  TextTable t({"Per-flow demand", "schedule time needed", "schedulable?"});
  for (double d : {0.5, 0.45, 0.4, 0.35, 0.25}) {
    const auto r = check_schedulable(graph, std::vector<double>(5, d));
    t.add_row({format_share_of_b(d), strformat("%.3f", r.time_needed),
               r.schedulable ? "yes" : "NO"});
  }
  t.print(std::cout);

  const auto sched = check_schedulable(graph, std::vector<double>(5, 0.4));
  std::cout << "\nWitness schedule at the fractional limit (2B/5 per flow):\n";
  for (const auto& e : sched.schedule) {
    std::vector<std::string> names;
    for (int v : e.independent_set) names.push_back(flows.subflow(v).name());
    std::cout << "  {" << join(names, ", ") << "} active "
              << strformat("%.3f", e.fraction) << " of the period\n";
  }

  const auto lp = centralized_allocate(graph);
  std::cout << "\nLP optimum (used as allocated-share weights when unschedulable): ";
  std::vector<std::string> shares;
  for (double s : lp.allocation.flow_share) shares.push_back(format_share_of_b(s));
  std::cout << join(shares, ", ") << "\n";
  const auto at_lp = check_schedulable(graph, lp.allocation.subflow_share);
  std::cout << "Schedulable at the LP optimum: " << (at_lp.schedulable ? "yes" : "NO (paper's point)")
            << " — needs " << strformat("%.3f", at_lp.time_needed) << " of the period\n";
  return 0;
}
