// In-band control plane tracker: convergence time and control overhead of
// the 2PA-Dctrl protocol on the paper's two evaluation topologies
// (scenario 1 / scenario 2 — the Table I–III networks), recorded to
// BENCH_ctrl.json and *guarded* against regression.
//
// Both figures are simulation-deterministic (fixed seed, no wall clock):
//
//   convergence_s   the last simulated instant any TagScheduler lane share
//                   changed (kCtrlRate trace records) — after it, the
//                   in-band allocation is the steady state, which must
//                   match the distributed_allocate() oracle within 5%.
//   overhead_ratio  control wire bytes (dedicated kCtrl frames) divided by
//                   the data payload bytes the network delivered per hop.
//   reconv_s        (churn case only) seconds after the flow-arrival epoch
//                   boundary until every active lane is back within 10% of
//                   the new oracle target (RunResult::reconv_s).
//
// Three cases run: the two static topologies, plus "scenario1-churn" —
// scenario1 with F2 arriving at t = 3 s, which exercises the hardened
// control plane (admission round + generation-stamped re-solve) and guards
// the re-convergence time after the arrival. For the churn case the
// end-of-run share check compares against the *final* epoch via the
// per-epoch re-convergence sampler instead of the first-epoch targets.
//
// The guard fails (exit 1) when any figure regresses more than
// --tolerance (default 10%) above the recorded baseline. Baselines were
// captured at the default horizon/seed; running with a different --seconds
// records the figures but skips the guard.
#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"

using namespace e2efa;

namespace {

constexpr double kDefaultSeconds = 12.0;

struct Options {
  double seconds = kDefaultSeconds;
  double tolerance = 0.10;
  std::string out = "BENCH_ctrl.json";
};

[[noreturn]] void usage(const char* prog, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--seconds T] [--tolerance F] [--out PATH]\n"
               "  --seconds T    simulated seconds per run (default %.0f;\n"
               "                 non-default skips the baseline guard)\n"
               "  --tolerance F  max allowed regression vs baseline (default 0.10)\n"
               "  --out PATH     JSON output (default BENCH_ctrl.json)\n",
               prog, kDefaultSeconds);
  std::exit(2);
}

double parse_positive_double(const char* prog, const std::string& key,
                             const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0' || v <= 0.0)
    usage(prog, key + ": expected a positive number, got '" + text + "'");
  return v;
}

Options parse_options(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "micro_ctrl";
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") usage(prog, "");
    if (i + 1 >= argc) usage(prog, key + ": missing value");
    const char* val = argv[++i];
    if (key == "--seconds") {
      o.seconds = parse_positive_double(prog, key, val);
    } else if (key == "--tolerance") {
      o.tolerance = parse_positive_double(prog, key, val);
    } else if (key == "--out") {
      o.out = val;
    } else {
      usage(prog, "unknown flag '" + key + "'");
    }
  }
  return o;
}

struct Baseline {
  const char* name;
  double convergence_s;
  double overhead_ratio;
  /// Arrival-epoch re-convergence baseline; 0 for the static cases (no
  /// epoch boundary to re-converge from, so the reconv guard is skipped).
  double reconv_s;
};

// Captured at --seconds 12, seed 1 (deterministic; see guard note above).
constexpr Baseline kBaselines[] = {
    {"scenario1", 0.82, 0.0024, 0.0},
    {"scenario2", 1.42, 0.0028, 0.0},
    {"scenario1-churn", 3.82, 0.0024, 0.90},
};
constexpr std::size_t kCases = sizeof(kBaselines) / sizeof(kBaselines[0]);

struct Figures {
  double convergence_s = 0.0;
  std::uint64_t ctrl_bytes = 0;
  std::uint64_t ctrl_frames = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t solves = 0;
  double overhead_ratio = 0.0;
  bool converged = true;
  double worst_share_error = 0.0;  ///< max relative |applied - oracle|.
  /// Worst re-convergence time over post-arrival epochs (churn case only;
  /// -1 when the run had a single epoch).
  double reconv_s = -1.0;
};

Figures measure(const Scenario& sc, double seconds) {
  SimConfig cfg;
  cfg.sim_seconds = seconds;
  cfg.seed = 1;
  TraceSink sink;  // in-memory
  sink.set_filter(trace_bit(TraceCat::kCtrl));
  cfg.trace = &sink;
  const RunResult r = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);

  Figures fig;
  for (const TraceRecord& rec : sink.records())
    if (rec.event() == TraceEvent::kCtrlRate)
      fig.convergence_s = std::max(fig.convergence_s, to_seconds(rec.t));
  fig.ctrl_bytes = r.ctrl.ctrl_bytes;
  fig.ctrl_frames = r.ctrl.ctrl_frames;
  fig.solves = r.ctrl.solves;
  std::int64_t delivered = 0;
  for (std::int64_t d : r.delivered_per_subflow) delivered += d;
  fig.data_bytes = static_cast<std::uint64_t>(delivered) *
                   static_cast<std::uint64_t>(cfg.payload_bytes);
  fig.overhead_ratio = fig.data_bytes > 0
                           ? static_cast<double>(fig.ctrl_bytes) /
                                 static_cast<double>(fig.data_bytes)
                           : 0.0;
  if (r.reconv_s.empty()) {
    for (std::size_t s = 0; s < r.target_subflow_share.size(); ++s) {
      const double err = std::abs(r.ctrl.applied_subflow_share[s] -
                                  r.target_subflow_share[s]) /
                         r.target_subflow_share[s];
      fig.worst_share_error = std::max(fig.worst_share_error, err);
      if (err > 0.05) fig.converged = false;
    }
  } else {
    // Multi-epoch (churn) run: the first-epoch targets no longer describe
    // the final state, but the in-run sampler checked every epoch against
    // its own oracle. Converged = every epoch re-converged before it ended;
    // the guarded figure is the worst post-arrival re-convergence time.
    for (std::size_t e = 0; e < r.reconv_s.size(); ++e) {
      if (r.reconv_s[e] < 0.0) fig.converged = false;
      if (e > 0) fig.reconv_s = std::max(fig.reconv_s, r.reconv_s[e]);
    }
  }
  return fig;
}

/// scenario1 with F2 (D -> E -> F) arriving at t = 3 s through the
/// admission gate — the smallest topology where an arrival forces the
/// hardened control plane to re-solve and re-converge mid-run.
Scenario scenario1_churn() {
  Scenario sc = scenario1();
  sc.name = "scenario1-churn";
  sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
  sc.activity[1].start_s = 3.0;
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const bool guard = opt.seconds == kDefaultSeconds;
  const Scenario scenarios[] = {scenario1(), scenario2(), scenario1_churn()};
  static_assert(sizeof(scenarios) / sizeof(scenarios[0]) == kCases);

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", opt.out.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "[\n");

  bool failed = false;
  for (std::size_t i = 0; i < kCases; ++i) {
    const Baseline& base = kBaselines[i];
    const Figures fig = measure(scenarios[i], opt.seconds);
    std::printf(
        "%-15s  converged in %5.2f s  (worst share error %.2f%%)  "
        "overhead %.4f  (%llu ctrl bytes in %llu frames / %llu data bytes, "
        "%llu solves)",
        base.name, fig.convergence_s, fig.worst_share_error * 1e2,
        fig.overhead_ratio, static_cast<unsigned long long>(fig.ctrl_bytes),
        static_cast<unsigned long long>(fig.ctrl_frames),
        static_cast<unsigned long long>(fig.data_bytes),
        static_cast<unsigned long long>(fig.solves));
    if (fig.reconv_s >= 0.0)
      std::printf("  re-converged %5.2f s after arrival", fig.reconv_s);
    std::printf("\n");
    std::fprintf(
        f,
        "  {\"name\": \"ctrl_%s\", \"seconds\": %.2f, "
        "\"convergence_s\": %.6f, \"overhead_ratio\": %.6f, "
        "\"ctrl_bytes\": %llu, \"ctrl_frames\": %llu, \"data_bytes\": %llu, "
        "\"solves\": %llu, \"worst_share_error\": %.6f, \"reconv_s\": %.6f, "
        "\"converged\": %s}%s\n",
        base.name, opt.seconds, fig.convergence_s, fig.overhead_ratio,
        static_cast<unsigned long long>(fig.ctrl_bytes),
        static_cast<unsigned long long>(fig.ctrl_frames),
        static_cast<unsigned long long>(fig.data_bytes),
        static_cast<unsigned long long>(fig.solves), fig.worst_share_error,
        fig.reconv_s, fig.converged ? "true" : "false",
        i + 1 < kCases ? "," : "");

    if (!fig.converged) {
      std::fprintf(stderr,
                   "FAIL: %s did not converge to the oracle "
                   "(worst share error %.2f%%)\n",
                   base.name, fig.worst_share_error * 1e2);
      failed = true;
    }
    if (guard) {
      if (fig.overhead_ratio > base.overhead_ratio * (1.0 + opt.tolerance)) {
        std::fprintf(stderr,
                     "FAIL: %s overhead ratio %.4f exceeds baseline %.4f by "
                     "more than %.0f%%\n",
                     base.name, fig.overhead_ratio, base.overhead_ratio,
                     opt.tolerance * 1e2);
        failed = true;
      }
      if (fig.convergence_s > base.convergence_s * (1.0 + opt.tolerance)) {
        std::fprintf(stderr,
                     "FAIL: %s convergence %.2f s exceeds baseline %.2f s by "
                     "more than %.0f%%\n",
                     base.name, fig.convergence_s, base.convergence_s,
                     opt.tolerance * 1e2);
        failed = true;
      }
      if (base.reconv_s > 0.0 &&
          fig.reconv_s > base.reconv_s * (1.0 + opt.tolerance)) {
        std::fprintf(stderr,
                     "FAIL: %s re-convergence %.2f s exceeds baseline %.2f s "
                     "by more than %.0f%%\n",
                     base.name, fig.reconv_s, base.reconv_s,
                     opt.tolerance * 1e2);
        failed = true;
      }
    }
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s%s\n", opt.out.c_str(),
              guard ? "" : " (non-default horizon: baseline guard skipped)");
  return failed ? 1 : 0;
}
