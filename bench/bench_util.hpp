// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "net/runner.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace e2efa::benchutil {

/// Shared bench flags. Benches default to the paper's T = 1000 s, which
/// takes a few seconds per protocol — pass a smaller --seconds for quick
/// runs. --jobs > 1 fans independent runs across a BatchRunner thread pool
/// (0 = one per hardware thread); results are identical to --jobs 1.
struct BenchArgs {
  double seconds = 1000.0;
  std::uint64_t seed = 1;
  double alpha = 1e-4;
  int jobs = 1;
};

[[noreturn]] inline void usage(const char* prog, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--seconds T] [--seed N] [--alpha A] [--jobs J]\n"
               "  --seconds T  simulated seconds per run (T > 0; default 1000)\n"
               "  --seed N     RNG seed (default 1)\n"
               "  --alpha A    tag-feedback step size (A > 0; default 1e-4)\n"
               "  --jobs J     parallel runs; 0 = hardware threads (default 1)\n",
               prog);
  std::exit(2);
}

inline double parse_double(const char* prog, const std::string& key,
                           const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0')
    usage(prog, key + ": malformed number '" + text + "'");
  return v;
}

inline long long parse_int(const char* prog, const std::string& key,
                           const char* text) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0')
    usage(prog, key + ": malformed integer '" + text + "'");
  return v;
}

/// Strict flag parsing: every flag takes exactly one value; unknown keys,
/// malformed numbers, missing values, and out-of-range settings all abort
/// with a usage message instead of being silently ignored.
inline BenchArgs parse_args(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "bench";
  BenchArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") usage(prog, "");
    if (i + 1 >= argc) usage(prog, key + ": missing value");
    const char* val = argv[++i];
    if (key == "--seconds") {
      a.seconds = parse_double(prog, key, val);
      if (a.seconds <= 0.0) usage(prog, "--seconds must be > 0");
    } else if (key == "--seed") {
      const long long s = parse_int(prog, key, val);
      if (s < 0) usage(prog, "--seed must be >= 0");
      a.seed = static_cast<std::uint64_t>(s);
    } else if (key == "--alpha") {
      a.alpha = parse_double(prog, key, val);
      if (a.alpha <= 0.0) usage(prog, "--alpha must be > 0");
    } else if (key == "--jobs") {
      const long long j = parse_int(prog, key, val);
      if (j < 0 || j > 1024) usage(prog, "--jobs must be in [0, 1024]");
      a.jobs = static_cast<int>(j);
    } else {
      usage(prog, "unknown flag '" + key + "'");
    }
  }
  return a;
}

inline std::string fmt_count(std::int64_t v) { return strformat("%lld", static_cast<long long>(v)); }

inline std::string fmt_ratio(double v) { return strformat("%.3f", v); }

}  // namespace e2efa::benchutil
