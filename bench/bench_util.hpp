// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/runner.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace e2efa::benchutil {

/// Parses "--seconds N" and "--seed N" style overrides; benches default to
/// the paper's T = 1000 s, which takes a few seconds per protocol — pass a
/// smaller value for quick runs.
struct BenchArgs {
  double seconds = 1000.0;
  std::uint64_t seed = 1;
  double alpha = 1e-4;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs a;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const double val = std::atof(argv[i + 1]);
    if (key == "--seconds") a.seconds = val;
    if (key == "--seed") a.seed = static_cast<std::uint64_t>(val);
    if (key == "--alpha") a.alpha = val;
  }
  return a;
}

inline std::string fmt_count(std::int64_t v) { return strformat("%lld", static_cast<long long>(v)); }

inline std::string fmt_ratio(double v) { return strformat("%.3f", v); }

}  // namespace e2efa::benchutil
