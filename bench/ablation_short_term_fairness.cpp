// Ablation: short-term fairness vs α (Sec. IV-C: "α is a tunable parameter
// to decide the strictness of short-term fairness").
//
// We sample per-flow end-to-end deliveries in 2-second windows and compute,
// per window, Jain's index over the share-normalized rates u_f / r̂_f
// (1.0 = every flow exactly on its allocated share in that window). The
// mean and worst window indices quantify short-term fairness; larger α
// tightens them at some throughput cost.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "net/scenarios.hpp"
#include "util/stats.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 120.0;
  const Scenario sc = scenario1();

  std::cout << "Ablation — short-term fairness vs alpha (scenario 1, 2-s windows, T = "
            << args.seconds << " s)\n\n";
  TextTable t({"alpha", "mean window Jain", "worst window Jain", "total e2e"});
  for (double alpha : {0.0, 1e-5, 1e-4, 1e-3, 1e-2}) {
    SimConfig cfg;
    cfg.sim_seconds = args.seconds;
    cfg.seed = args.seed;
    cfg.alpha = alpha;
    cfg.warmup_seconds = 10.0;
    cfg.sample_interval_seconds = 2.0;
    const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);

    RunningStat jain;
    double worst = 1.0;
    for (double j : jain_trajectory(r.window_end_to_end, r.target_flow_share)) {
      jain.add(j);
      worst = std::min(worst, j);
    }
    t.add_row({strformat("%g", alpha), strformat("%.4f", jain.mean()),
               strformat("%.4f", worst), benchutil::fmt_count(r.total_end_to_end)});
  }
  t.print(std::cout);
  std::cout << "\nExpected: window-level fairness improves monotonically with alpha;\n"
               "alpha = 0 (no tag backoff) is visibly unfair even at 2-s scale.\n";
  return 0;
}
