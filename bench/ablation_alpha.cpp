// Ablation: the short-term fairness knob α (Sec. IV-C, paper uses 1e-4).
//
// α scales how strongly a node's tag lead over its neighbors stretches its
// contention window. α = 0 disables the inter-node tag mechanism entirely
// (only intra-node weighted selection remains), which degrades share
// tracking and inflates relay loss; very large α over-throttles and costs
// throughput.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 200.0;  // ablation default
  const Scenario sc = scenario1();

  std::cout << "Ablation — tag-backoff strictness alpha (scenario 1, 2PA, T = "
            << args.seconds << " s)\n\n";
  std::cout << "Target subflow shares: 1/2, 1/2, 1/4, 1/4. Tracking error is the\n"
               "max relative deviation of measured share ratios from target ratios.\n\n";

  TextTable t({"alpha", "r1.1", "r1.2", "r2.1", "r2.2", "total e2e", "lost",
               "loss ratio", "ratio error"});
  for (double alpha : {0.0, 1e-5, 1e-4, 1e-3, 1e-2}) {
    SimConfig cfg;
    cfg.sim_seconds = args.seconds;
    cfg.seed = args.seed;
    cfg.alpha = alpha;
    const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);

    // Max deviation of measured/target ratio (normalized to subflow 2).
    double err = 0.0;
    const double base = static_cast<double>(r.delivered_per_subflow[2]);
    const double targets[4] = {2.0, 2.0, 1.0, 1.0};
    for (int s = 0; s < 4; ++s) {
      const double measured = static_cast<double>(r.delivered_per_subflow[s]) / base;
      err = std::max(err, std::abs(measured - targets[s]) / targets[s]);
    }
    t.add_row({strformat("%g", alpha), benchutil::fmt_count(r.delivered_per_subflow[0]),
               benchutil::fmt_count(r.delivered_per_subflow[1]),
               benchutil::fmt_count(r.delivered_per_subflow[2]),
               benchutil::fmt_count(r.delivered_per_subflow[3]),
               benchutil::fmt_count(r.total_end_to_end),
               benchutil::fmt_count(r.lost_packets), benchutil::fmt_ratio(r.loss_ratio),
               strformat("%.3f", err)});
  }
  t.print(std::cout);
  std::cout << "\nExpected: alpha ~ 1e-4 (paper's value) balances tracking and loss.\n";
  return 0;
}
