// Transport-layer overhead tracker: event-engine throughput (processed
// events per wall-clock second) on scenario 1 under 2PA-C, measured with
// the open-loop CBR source and with each elastic transport:
//
//   cbr    the golden path — no AckPlane is constructed, no transport
//          listeners are installed; this is the baseline the elastic
//          modes are guarded against.
//   aimd   closed-loop Reno-style source + cumulative-ACK return path.
//   bbr    closed-loop BBR-style source (paced sends) + ACK return path.
//
// The elastic modes schedule *more* events (pacing timers, RTOs, delayed
// ACKs, ACK control frames) and drive a heavier event mix (saturated
// queues, broadcast ACK receptions at every neighbor), so wall-clock per
// run is not comparable; events per second through the engine is — and
// even that sits below the CBR rate by design. What must not move is the
// *ratio*: modes alternate within every round, the best round per mode is
// kept (unrelated machine load hits all modes alike), and each elastic
// mode's events/sec-vs-CBR ratio is guarded against the baseline recorded
// below. A drop of more than --tolerance (default 10%) under the baseline
// fails the run. Absolute rates land in JSON (default
// BENCH_transport.json) for the historical record.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "transport/transport.hpp"

using namespace e2efa;

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  double seconds = 30.0;
  int rounds = 8;  // best-of-8: rides out bursty machine load
  double tolerance = 0.10;
  std::string out = "BENCH_transport.json";
};

[[noreturn]] void usage(const char* prog, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--seconds T] [--rounds N] [--tolerance F] [--out PATH]\n"
               "  --seconds T    simulated seconds per run (default 30)\n"
               "  --rounds N     A/B rounds, best kept per mode (default 8)\n"
               "  --tolerance F  max allowed events/sec drop vs cbr (default 0.1)\n"
               "  --out PATH     JSON output (default BENCH_transport.json)\n",
               prog);
  std::exit(2);
}

double parse_positive_double(const char* prog, const std::string& key,
                             const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0' || v <= 0.0)
    usage(prog, key + ": expected a positive number, got '" + text + "'");
  return v;
}

Options parse_options(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "micro_transport";
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") usage(prog, "");
    if (i + 1 >= argc) usage(prog, key + ": missing value");
    const char* val = argv[++i];
    if (key == "--seconds") {
      o.seconds = parse_positive_double(prog, key, val);
    } else if (key == "--rounds") {
      o.rounds = static_cast<int>(parse_positive_double(prog, key, val));
    } else if (key == "--tolerance") {
      o.tolerance = parse_positive_double(prog, key, val);
    } else if (key == "--out") {
      o.out = val;
    } else {
      usage(prog, "unknown flag '" + key + "'");
    }
  }
  return o;
}

struct ModeResult {
  double best_eps = 0.0;  ///< Best events/sec over the rounds.
  std::uint64_t events = 0;
};

/// Events/sec relative to the same-process CBR run, recorded at the
/// default 30 s horizon. Machine-independent (both sides scale with the
/// host): a future change that slows elastic event processing relative to
/// the open-loop path drags the measured ratio under these.
constexpr double kBaselineRatio[] = {1.0, 0.78, 0.75};  // cbr, aimd, bbr

/// One timed run; returns events/sec and the event count.
std::pair<double, std::uint64_t> timed_run(TransportKind kind, double seconds) {
  Scenario sc = scenario1();
  sc.transport = kind;
  SimConfig cfg;
  cfg.sim_seconds = seconds;
  cfg.seed = 1;
  const auto t0 = Clock::now();
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  return {static_cast<double>(r.events_processed) / dt, r.events_processed};
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const std::vector<TransportKind> kinds{
      TransportKind::kCbr, TransportKind::kAimd, TransportKind::kBbr};

  // Warm-up run (page-in, allocator steady state) before any timing.
  timed_run(TransportKind::kCbr, std::min(opt.seconds, 2.0));

  std::vector<ModeResult> results(kinds.size());
  for (int r = 0; r < opt.rounds; ++r) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto [eps, events] = timed_run(kinds[k], opt.seconds);
      results[k].best_eps = std::max(results[k].best_eps, eps);
      results[k].events = events;
    }
  }

  const double cbr_eps = results[0].best_eps;
  bool failed = false;
  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", opt.out.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const double ratio = results[k].best_eps / cbr_eps;
    std::printf("%-5s %10.0f events/s  (%llu events, %.2fx vs cbr)\n",
                to_string(kinds[k]), results[k].best_eps,
                static_cast<unsigned long long>(results[k].events), ratio);
    std::fprintf(f,
                 "  {\"name\": \"transport_%s\", \"events_per_sec\": %.1f, "
                 "\"events\": %llu, \"ratio_vs_cbr\": %.4f}%s\n",
                 to_string(kinds[k]), results[k].best_eps,
                 static_cast<unsigned long long>(results[k].events), ratio,
                 k + 1 < kinds.size() ? "," : "");
    if (k > 0 && ratio < kBaselineRatio[k] * (1.0 - opt.tolerance)) {
      std::fprintf(stderr,
                   "FAIL: %s events/sec ratio %.3fx vs cbr regressed more "
                   "than %.0f%% under the recorded baseline %.2fx\n",
                   to_string(kinds[k]), ratio, opt.tolerance * 1e2,
                   kBaselineRatio[k]);
      failed = true;
    }
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", opt.out.c_str());
  return failed ? 1 : 0;
}
