// Ablation: the minimum contention window CW_min (paper uses 31).
// Smaller windows raise collision rates in contended cliques; larger
// windows waste idle slots. Run on scenario 2 with 2PA-C.
#include <iostream>

#include "bench_util.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 120.0;
  const Scenario sc = scenario2();

  std::cout << "Ablation — CW_min (scenario 2, 2PA-C, T = " << args.seconds << " s)\n\n";
  TextTable t({"CW_min", "total e2e", "lost", "loss ratio", "frames tx",
               "frames corrupted"});
  for (int cw : {7, 15, 31, 63, 127, 255}) {
    SimConfig cfg;
    cfg.sim_seconds = args.seconds;
    cfg.seed = args.seed;
    cfg.alpha = args.alpha;
    cfg.cw_min = cw;
    const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
    t.add_row({std::to_string(cw), benchutil::fmt_count(r.total_end_to_end),
               benchutil::fmt_count(r.lost_packets), benchutil::fmt_ratio(r.loss_ratio),
               benchutil::fmt_count(static_cast<std::int64_t>(r.channel.frames_transmitted)),
               benchutil::fmt_count(static_cast<std::int64_t>(r.channel.frames_corrupted))});
  }
  t.print(std::cout);
  return 0;
}
