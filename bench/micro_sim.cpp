// Microbenchmarks: discrete-event engine throughput and packet-level
// simulation speed (simulated seconds per wall second).
#include <benchmark/benchmark.h>

#include <functional>

#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "sim/simulator.hpp"

namespace e2efa {
namespace {

void BM_EventEngineSchedule(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 10'000; ++i) sim.schedule_at(i, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventEngineSchedule);

void BM_EventEngineCascade(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10'000) sim.schedule_in(1, chain);
    };
    sim.schedule_in(1, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventEngineCascade);

void BM_Scenario1SimulatedSecond(benchmark::State& state) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 1.0;
  for (auto _ : state) {
    cfg.seed++;
    benchmark::DoNotOptimize(run_scenario(sc, Protocol::k2paCentralized, cfg));
  }
}
BENCHMARK(BM_Scenario1SimulatedSecond);

void BM_Scenario2SimulatedSecond(benchmark::State& state) {
  const Scenario sc = scenario2();
  SimConfig cfg;
  cfg.sim_seconds = 1.0;
  for (auto _ : state) {
    cfg.seed++;
    benchmark::DoNotOptimize(run_scenario(sc, Protocol::k2paDistributed, cfg));
  }
}
BENCHMARK(BM_Scenario2SimulatedSecond);

}  // namespace
}  // namespace e2efa
