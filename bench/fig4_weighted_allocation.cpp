// Reproduces the Fig.-4 weighted-contention-graph example (Sec. IV-C):
// flows F1..F4 with weights (1, 2, 3, 2), subflows
// (F1.1, F2.1, F2.2, F3.1, F4.1) and cliques {F1.1,F2.1,F2.2,F3.1},
// {F3.1,F4.1}.
//
// Paper reference: basic shares (B/10, B/5, 3B/10, B/5); optimal allocated
// shares (r1.1, r2.1, r2.2, r3.1, r4.1) = (3B/10, B/5, B/5, 3B/10, 7B/10);
// node shares in the scheduling example: node A = B/2 (F1.1 + F2.1).
#include <iostream>

#include "alloc/centralized.hpp"
#include "contention/cliques.hpp"
#include "net/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  const AbstractExample ex = fig4_example();
  FlowSet flows(ex.scenario.topo, ex.scenario.flow_specs);
  ContentionGraph graph(flows, ex.edges);

  std::cout << "Fig. 4 — weighted subflow contention graph\n\n";
  std::cout << "Weighted clique number omega = " << weighted_clique_number(graph)
            << " (clique {F1.1, F2.1, F2.2, F3.1}, weights 1+2+2+3)\n\n";

  const auto basic = basic_shares(flows);
  const auto r = centralized_allocate(graph);

  TextTable t({"Flow", "weight", "hops", "basic share", "allocated share r^"});
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    t.add_row({flows.flow(f).name(), strformat("%g", flows.flow(f).weight),
               std::to_string(flows.flow(f).length()), format_share_of_b(basic[f]),
               format_share_of_b(r.allocation.flow_share[f])});
  }
  t.print(std::cout);

  std::cout << "\nSubflow allocated shares (paper: 3B/10, B/5, B/5, 3B/10, 7B/10):\n  ";
  std::vector<std::string> shares;
  for (int s = 0; s < flows.subflow_count(); ++s)
    shares.push_back(flows.subflow(s).name() + "=" +
                     format_share_of_b(r.allocation.subflow_share[s]));
  std::cout << join(shares, ", ") << "\n";

  // The scheduling example: node A originates F1.1 and F2.1.
  const double node_a = r.allocation.subflow_share[0] + r.allocation.subflow_share[1];
  std::cout << "\nNode A's node share c_A = F1.1 + F2.1 = " << format_share_of_b(node_a)
            << " (paper: B/2); intra-node transmission ratio F1.1:F2.1 = "
            << format_share_of_b(r.allocation.subflow_share[0]) << " : "
            << format_share_of_b(r.allocation.subflow_share[1]) << " (paper: 3/10 : 1/5)\n";
  std::cout << "Total effective throughput = "
            << format_share_of_b(r.allocation.total_effective) << " (paper: 3B/2)\n";
  return 0;
}
