// Ablation: interference / carrier-sense range vs transmission range.
//
// The paper states both ranges are 250 m, but ns-2's TwoRayGround default
// carrier-senses out to ~550 m — one suspected cause of the differences
// between our 802.11 equilibrium and the paper's (EXPERIMENTS.md). This
// ablation rebuilds the Fig.-1 geometry with progressively wider
// interference ranges. Wider sensing suppresses the hidden terminal (F1.2's
// relay stops colliding with F2) but also changes the *contention graph*
// itself once F1.1's endpoints start hearing F2 — the allocation adapts.
#include <iostream>

#include "bench_util.hpp"
#include "contention/cliques.hpp"
#include "net/scenarios.hpp"
#include "util/strings.hpp"

using namespace e2efa;

namespace {

Scenario scenario1_with_irange(double irange) {
  std::vector<Point> pos{
      {0, 0}, {200, 0}, {400, 0}, {800, 0}, {600, 0}, {600, -200},
  };
  Topology topo(std::move(pos), 250.0, irange);
  topo.set_labels({"A", "B", "C", "D", "E", "F"});
  Scenario sc{strformat("fig1-irange-%.0f", irange), std::move(topo), {}};
  Flow f1;
  f1.path = {0, 1, 2};
  Flow f2;
  f2.path = {3, 4, 5};
  sc.flow_specs = {f1, f2};
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 150.0;

  std::cout << "Ablation — carrier-sense/interference range (Fig. 1 geometry, T = "
            << args.seconds << " s)\n\n";
  TextTable t({"irange m", "cliques", "802.11 F1 e2e", "802.11 F2 e2e",
               "802.11 loss", "2PA targets", "2PA F1 e2e", "2PA F2 e2e", "2PA loss"});
  for (double irange : {250.0, 350.0, 450.0, 550.0}) {
    const Scenario sc = scenario1_with_irange(irange);
    FlowSet flows(sc.topo, sc.flow_specs);
    ContentionGraph graph(sc.topo, flows);

    SimConfig cfg;
    cfg.sim_seconds = args.seconds;
    cfg.seed = args.seed;
    cfg.alpha = args.alpha;
    const RunResult dcf = run_scenario(sc, Protocol::k80211, cfg);
    const RunResult tpa = run_scenario(sc, Protocol::k2paCentralized, cfg);

    std::vector<std::string> targets;
    for (double s : tpa.target_flow_share) targets.push_back(format_share_of_b(s));
    t.add_row({strformat("%.0f", irange), std::to_string(maximal_cliques(graph).size()),
               benchutil::fmt_count(dcf.end_to_end_per_flow[0]),
               benchutil::fmt_count(dcf.end_to_end_per_flow[1]),
               benchutil::fmt_ratio(dcf.loss_ratio), join(targets, ","),
               benchutil::fmt_count(tpa.end_to_end_per_flow[0]),
               benchutil::fmt_count(tpa.end_to_end_per_flow[1]),
               benchutil::fmt_ratio(tpa.loss_ratio)});
  }
  t.print(std::cout);
  std::cout << "\nWider sensing tames the hidden terminal for 802.11 (F1 recovers)\n"
               "but shrinks everyone's spatial reuse; 2PA adapts its allocation to\n"
               "the denser contention graph and keeps loss negligible throughout.\n";
  return 0;
}
