// Ablation: which "two-tier" are we comparing against?
//
// The paper describes two-tier analytically as "guarantee subflow basic
// shares, then maximize single-hop throughput" — the LP whose Fig.-1
// solution is (3B/4, B/4, 3B/8, 3B/8). But the services the paper's ns-2
// runs *measured* for two-tier (Table II: 66658/60992/65507/65507) are
// nearly equal across subflows, i.e. close to subflow-level max-min. We
// implement both interpretations; this bench shows that 2PA beats either
// one on end-to-end totals and loss, so the headline comparison does not
// hinge on the reading.
#include <iostream>

#include "bench_util.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 200.0;
  const Scenario sc = scenario1();

  SimConfig cfg;
  cfg.sim_seconds = args.seconds;
  cfg.seed = args.seed;
  cfg.alpha = args.alpha;

  std::cout << "Ablation — two-tier interpretations (scenario 1, T = " << args.seconds
            << " s)\n\n";

  TextTable t({"protocol", "r1.1", "r1.2", "r2.1", "r2.2", "total e2e", "lost",
               "loss ratio"});
  for (Protocol p : {Protocol::kTwoTier, Protocol::kTwoTierBalanced,
                     Protocol::k2paCentralized}) {
    const RunResult r = run_scenario(sc, p, cfg);
    t.add_row({to_string(p), benchutil::fmt_count(r.delivered_per_subflow[0]),
               benchutil::fmt_count(r.delivered_per_subflow[1]),
               benchutil::fmt_count(r.delivered_per_subflow[2]),
               benchutil::fmt_count(r.delivered_per_subflow[3]),
               benchutil::fmt_count(r.total_end_to_end),
               benchutil::fmt_count(r.lost_packets), benchutil::fmt_ratio(r.loss_ratio)});
  }
  t.print(std::cout);
  std::cout << "\nTarget shares: two-tier LP (3/4, 1/4, 3/8, 3/8); two-tier-mm\n"
               "(2/3, 1/3, 1/3, 1/3); 2PA (1/2, 1/2, 1/4, 1/4).\n";
  return 0;
}
