// Reproduces the Fig.-2 fairness-definition examples (Sec. II-C).
//
// (a) Two single-hop flows, weights (2, 1): weighted fair allocation is
//     (2B/3, B/3).
// (b) F2 becomes a 3-hop flow. Naively applying the same per-flow channel
//     split gives F2 r=B/3 shared across 3 subflows: u2 = B/9, so
//     u2/u1 = 1/6 — inconsistent with w2/w1 = 1/2 (long flows penalized).
// (c) End-to-end fair allocation: channel split (2B/5, 3B/5) so that
//     (u1, u2) = (2B/5, B/5), restoring u2/u1 = 1/2.
#include <iostream>

#include "alloc/allocation.hpp"
#include "net/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  std::cout << "Fig. 2 — fairness: the single-hop and multi-hop case\n\n";

  // (a) Single-hop, weights (2, 1).
  {
    const double w1 = 2, w2 = 1;
    const double r1 = w1 / (w1 + w2), r2 = w2 / (w1 + w2);
    std::cout << "(a) single-hop flows, w = (2, 1): (r1, r2) = ("
              << format_share_of_b(r1) << ", " << format_share_of_b(r2)
              << ")   [paper: (2B/3, B/3)]\n";
  }

  // (b)+(c) on an actual flow set: F1 = 1 hop (w=2), F2 = 3 hops (w=1).
  Scenario sc = make_abstract_scenario({1, 3}, {2.0, 1.0}, "fig2");
  FlowSet flows(sc.topo, sc.flow_specs);
  // All subflows mutually contend (single local channel).
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < flows.subflow_count(); ++a)
    for (int b = a + 1; b < flows.subflow_count(); ++b) edges.emplace_back(a, b);
  ContentionGraph graph(flows, edges);

  TextTable t({"Strategy", "channel r1", "channel r2", "u1", "u2", "u2/u1",
               "fair? (w2/w1 = 1/2)"});
  {
    // (b) naive per-flow equal-weighted split of the channel.
    const double r1 = 2.0 / 3.0, r2 = 1.0 / 3.0;
    const double u1 = r1, u2 = r2 / 3.0;  // r2 shared by 3 subflows
    t.add_row({"(b) naive multi-hop split", format_share_of_b(r1), format_share_of_b(r2),
               format_share_of_b(u1), format_share_of_b(u2),
               strformat("%.3f", u2 / u1), u2 / u1 == 0.5 ? "yes" : "no"});
  }
  {
    // (c) end-to-end fair: the basic-share formula w_i B / Σ w_j v_j.
    const auto u = basic_shares(flows);
    const double r1 = u[0] * 1, r2 = u[1] * 3;  // channel time per flow
    t.add_row({"(c) end-to-end fair", format_share_of_b(r1), format_share_of_b(r2),
               format_share_of_b(u[0]), format_share_of_b(u[1]),
               strformat("%.3f", u[1] / u[0]),
               std::abs(u[1] / u[0] - 0.5) < 1e-9 ? "yes" : "no"});
  }
  t.print(std::cout);

  std::cout << "\nFairness residuals |u_i/w_i - u_j/w_j|:\n";
  std::cout << "  naive: " << strformat("%.4f", std::abs(2.0 / 3.0 / 2 - 1.0 / 9.0 / 1)) << "B\n";
  const auto u = basic_shares(flows);
  std::cout << "  end-to-end fair: " << strformat("%.4f", fairness_residual(flows, u)) << "B\n";
  return 0;
}
