// Reproduces Table III: simulation results on the Fig.-6 topology for
// IEEE 802.11, two-tier, 2PA-C (centralized phase 1), and 2PA-D
// (distributed phase 1).
//
// Paper reference values (ns-2, T = 1000 s):
//   parameter        802.11   two-tier   2PA-C    2PA-D
//   r1.1 T           72150    49551      53992    67381
//   r1.2 T           53590    41731      53745    67189
//   r1.3 T           53127    39574      52955    67189
//   r1.4 T (r̂1 T)    53127    39574      52955    67189
//   r2.1 T (r̂2 T)    8345     14802      54694    42457
//   r3.1 T (r̂3 T)    197911   163809     112520   57321
//   r4.1 T           49966    18865      29365    62036
//   r4.2 T (r̂4 T)    24495    18053      28022    60855
//   r5.1 T (r̂5 T)    159326   157887     173971   124520
//   Σ r̂i T           443204   394125     422162   352341
//   lost packets     44494    10789      2380     1374
//   loss ratio       0.100    0.027      0.006    0.004
//
// Phase-1 targets: 2PA-C = (1/3, 1/3, 2/3, 1/8, 3/4)·B,
//                  2PA-D = (1/3, 1/5, 1/4, 1/4, 1/2)·B.
#include <iostream>

#include "bench_util.hpp"
#include "net/batch.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  const auto args = benchutil::parse_args(argc, argv);
  const Scenario sc = scenario2();

  SimConfig cfg;
  cfg.sim_seconds = args.seconds;
  cfg.seed = args.seed;
  cfg.alpha = args.alpha;

  std::cout << "Table III — simulation results, topology as in Fig. 6 (T = "
            << args.seconds << " s)\n\n";

  const std::vector<Protocol> protos = {
      Protocol::k80211, Protocol::kTwoTier, Protocol::k2paCentralized,
      Protocol::k2paDistributed};
  const std::vector<RunResult> results =
      BatchRunner(args.jobs).run_protocols(sc, protos, cfg);

  TextTable t({"Parameters", "802.11", "two-tier", "2PA-C", "2PA-D"});
  const char* labels[] = {"r1.1 T", "r1.2 T", "r1.3 T", "r1.4 T (r1^ T)",
                          "r2.1 T (r2^ T)", "r3.1 T (r3^ T)", "r4.1 T",
                          "r4.2 T (r4^ T)", "r5.1 T (r5^ T)"};
  for (int s = 0; s < 9; ++s) {
    std::vector<std::string> cells{labels[s]};
    for (const RunResult& r : results)
      cells.push_back(benchutil::fmt_count(r.delivered_per_subflow[s]));
    t.add_row(cells);
  }
  {
    std::vector<std::string> cells{"sum ri^ T"};
    for (const RunResult& r : results) cells.push_back(benchutil::fmt_count(r.total_end_to_end));
    t.add_row(cells);
    cells = {"lost packets"};
    for (const RunResult& r : results) cells.push_back(benchutil::fmt_count(r.lost_packets));
    t.add_row(cells);
    cells = {"loss ratio"};
    for (const RunResult& r : results) cells.push_back(benchutil::fmt_ratio(r.loss_ratio));
    t.add_row(cells);
  }
  t.print(std::cout);

  std::cout << "\nPhase-1 target flow shares (units of B):\n";
  for (std::size_t i = 1; i < results.size(); ++i) {
    std::cout << "  " << to_string(results[i].protocol) << ": ";
    std::vector<std::string> shares;
    for (double s : results[i].target_flow_share) shares.push_back(format_share_of_b(s));
    std::cout << join(shares, ", ") << "\n";
  }
  std::cout << "\nPaper shapes: 802.11 starves F2.1, F3/F5 dominate; 2PA-C "
               "restores F2's share and surpasses two-tier's total; 2PA-D is "
               "more conservative (lower total, lowest loss); loss ordering "
               "802.11 >> two-tier >> 2PA-C >= 2PA-D.\n";
  return 0;
}
