// Ablation: what does the tag/backoff feedback loop buy over a naive
// share-proportional contention window?
//
// Both variants use the same phase-1 shares and the same intra-node
// weighted queueing; "2PA-staticCW" merely sets each node's CW to
// CW_min / node_share with no feedback, while full 2PA stretches the
// window by the measured tag lag max(Q, R, 0). The static window gets the
// long-run node ratios roughly right but cannot couple upstream and
// downstream service, so relay imbalance (and loss) creeps back in.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 200.0;

  SimConfig cfg;
  cfg.sim_seconds = args.seconds;
  cfg.seed = args.seed;
  cfg.alpha = args.alpha;

  std::cout << "Ablation — tag feedback vs static weighted CW (T = " << args.seconds
            << " s)\n\n";
  for (const Scenario& sc : {scenario1(), scenario2()}) {
    std::cout << sc.name << ":\n";
    TextTable t({"variant", "total e2e", "lost", "loss ratio", "max share err"});
    for (Protocol p : {Protocol::k2paCentralized, Protocol::k2paStaticCw}) {
      const RunResult r = run_scenario(sc, p, cfg);
      // Max relative deviation of measured end-to-end ratios from targets.
      double err = 0.0;
      const double base_m = static_cast<double>(r.end_to_end_per_flow[0]);
      const double base_t = r.target_flow_share[0];
      for (std::size_t f = 1; f < r.end_to_end_per_flow.size(); ++f) {
        const double m = static_cast<double>(r.end_to_end_per_flow[f]) / base_m;
        const double tt = r.target_flow_share[f] / base_t;
        err = std::max(err, std::abs(m - tt) / tt);
      }
      t.add_row({to_string(p), benchutil::fmt_count(r.total_end_to_end),
                 benchutil::fmt_count(r.lost_packets), benchutil::fmt_ratio(r.loss_ratio),
                 strformat("%.3f", err)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: the static window loses far more at relays and tracks\n"
               "the allocated ratios worse — the feedback loop is what makes the\n"
               "second phase work.\n";
  return 0;
}
