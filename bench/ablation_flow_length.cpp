// Ablation: end-to-end throughput vs path length for a single flow — the
// virtual-length claim (Sec. II-D): beyond three hops, intra-flow spatial
// reuse keeps the end-to-end allocation flat at B/3; without it, a
// 1/l falloff would be expected.
#include <iostream>

#include "alloc/centralized.hpp"
#include "bench_util.hpp"
#include "net/runner.hpp"
#include "topology/builders.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 120.0;

  std::cout << "Ablation — single-flow chain length (T = " << args.seconds << " s)\n\n";
  TextTable t({"hops", "allocated r^", "2PA e2e pkts", "802.11 e2e pkts",
               "2PA e2e / 1-hop"});
  std::int64_t one_hop_e2e = 0;
  for (int hops : {1, 2, 3, 4, 5, 6, 8}) {
    Topology topo = make_chain(hops + 1);
    Flow f;
    for (int i = 0; i <= hops; ++i) f.path.push_back(i);
    Scenario sc{strformat("chain-%d", hops), std::move(topo), {f}};

    SimConfig cfg;
    cfg.sim_seconds = args.seconds;
    cfg.seed = args.seed;
    cfg.alpha = args.alpha;
    const RunResult tpa = run_scenario(sc, Protocol::k2paCentralized, cfg);
    const RunResult dcf = run_scenario(sc, Protocol::k80211, cfg);
    if (hops == 1) one_hop_e2e = tpa.end_to_end_per_flow[0];

    t.add_row({std::to_string(hops), format_share_of_b(tpa.target_flow_share[0]),
               benchutil::fmt_count(tpa.end_to_end_per_flow[0]),
               benchutil::fmt_count(dcf.end_to_end_per_flow[0]),
               strformat("%.3f", static_cast<double>(tpa.end_to_end_per_flow[0]) /
                                     static_cast<double>(one_hop_e2e))});
  }
  t.print(std::cout);
  std::cout << "\nExpected: the allocated share (and measured throughput) plateaus\n"
               "once l >= 3 (virtual length v = min(l, 3)).\n";
  return 0;
}
