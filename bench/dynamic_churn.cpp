// Flow-churn study (extension): 2PA re-runs its first phase whenever the
// backlogged flow set changes and pushes the new shares into the running
// schedulers. On the Fig.-1 topology, F2 joins at T/3 and leaves at 2T/3;
// the windowed rates show F1 absorbing and releasing the bottleneck
// capacity at each epoch.
#include <iostream>

#include "bench_util.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 180.0;
  const Scenario sc = scenario1();

  SimConfig cfg;
  cfg.sim_seconds = args.seconds;
  cfg.seed = args.seed;
  cfg.alpha = args.alpha;
  cfg.sample_interval_seconds = args.seconds / 18.0;

  const double t1 = args.seconds / 3.0, t2 = 2.0 * args.seconds / 3.0;
  const std::vector<FlowActivity> act{{0.0, 1e300}, {t1, t2}};

  std::cout << "Dynamic churn — scenario 1, F2 active only in [" << t1 << ", " << t2
            << ") s of " << args.seconds << " s\n\n";

  for (Protocol p : {Protocol::k2paCentralized, Protocol::k80211}) {
    const RunResult r = run_scenario(sc, p, cfg, act);
    std::cout << to_string(p) << ":\n";
    if (r.has_target || !r.epoch_starts_s.empty()) {
      std::cout << "  epochs:";
      for (std::size_t e = 0; e < r.epoch_starts_s.size(); ++e) {
        std::cout << "  t=" << r.epoch_starts_s[e] << "s -> (";
        for (std::size_t f = 0; f < r.epoch_flow_share[e].size(); ++f)
          std::cout << (f ? ", " : "") << format_share_of_b(r.epoch_flow_share[e][f]);
        std::cout << ")";
      }
      std::cout << "\n";
    }
    TextTable t({"window", "F1 pkts", "F2 pkts"});
    for (std::size_t w = 0; w < r.window_end_to_end.size(); ++w) {
      t.add_row({strformat("%2zu", w), benchutil::fmt_count(r.window_end_to_end[w][0]),
                 benchutil::fmt_count(r.window_end_to_end[w][1])});
    }
    t.print(std::cout);
    std::cout << "  totals: F1 " << r.end_to_end_per_flow[0] << ", F2 "
              << r.end_to_end_per_flow[1] << ", lost " << r.lost_packets << "\n\n";
  }
  std::cout << "Expected: under 2PA, F1's windowed rate steps down when F2 joins\n"
               "(B/2 of the bottleneck) and back up when it leaves; loss stays tiny\n"
               "across both re-allocations.\n";
  return 0;
}
