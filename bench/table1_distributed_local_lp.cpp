// Reproduces Table I: the per-source local optimization problems of the
// distributed first phase on the Fig.-6 topology — local cliques, LP
// constraints, basic-share lower bounds, and each local solution (the bold
// entry is the share the flow's source adopts).
//
// Paper reference: locals solve to
//   F1 @ A: (r̂1, r̂2)       = (B/3, B/3)           mins B/3
//   F2 @ F: (r̂1, r̂2, r̂3)  = (2B/5, B/5, 4B/5)    mins B/5
//   F3 @ H: (r̂2, r̂3, r̂4)  = (3B/4, B/4, 3B/4)    mins B/4
//   F4 @ J: (r̂3, r̂4, r̂5)  = (3B/4, B/4, B/2)     mins B/4
//   F5 @ M: same LP as F4's row
// giving the distributed vector (1/3, 1/5, 1/4, 1/4, 1/2).
#include <algorithm>
#include <iostream>
#include <map>

#include "alloc/distributed.hpp"
#include "contention/cliques.hpp"
#include "net/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  const Scenario sc = scenario2();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);
  const auto result = distributed_allocate(sc.topo, flows, graph);

  // Name the global maximal cliques Ω1..Ω6 for display.
  const auto global = maximal_cliques(graph);
  std::map<std::vector<int>, int> omega;
  for (std::size_t k = 0; k < global.size(); ++k) omega[global[k]] = static_cast<int>(k) + 1;

  std::cout << "Table I — local optimization in the distributed algorithm (Fig. 6)\n\n";
  TextTable t({"Flow@source", "Local cliques", "Constraint rows", "Mins",
               "Local solution", "Adopted share"});
  for (const LocalProblem& lp : result.locals) {
    std::vector<std::string> cliques;
    for (const auto& c : lp.cliques) {
      const auto it = omega.find(c);
      if (it != omega.end()) {
        cliques.push_back(strformat("O%d", it->second));
      } else {
        std::vector<std::string> names;
        for (int s : c) names.push_back(flows.subflow(s).name());
        cliques.push_back("{" + join(names, ",") + "}");
      }
    }
    std::vector<std::string> rows;
    for (const auto& row : lp.rows) {
      std::vector<std::string> terms;
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i] == 0) continue;
        const std::string var = strformat("r%d", lp.vars[i] + 1);
        terms.push_back(row[i] == 1 ? var : strformat("%d%s", row[i], var.c_str()));
      }
      rows.push_back(join(terms, "+") + "<=B");
    }
    std::vector<std::string> sol;
    for (std::size_t i = 0; i < lp.solution.size(); ++i)
      sol.push_back(strformat("r%d=%s", lp.vars[i] + 1,
                              format_share_of_b(lp.solution[i]).c_str()));
    t.add_row({flows.flow(lp.flow).name() + "@" + sc.topo.label(flows.flow(lp.flow).source()),
               join(cliques, ","), join(rows, "; "),
               format_share_of_b(lp.unit_basic), join(sol, ", "),
               format_share_of_b(lp.flow_share)});
  }
  t.print(std::cout);

  std::cout << "\nDistributed allocation vector (paper: B/3, B/5, B/4, B/4, B/2): ";
  std::vector<std::string> v;
  for (double s : result.allocation.flow_share) v.push_back(format_share_of_b(s));
  std::cout << join(v, ", ") << "\n";

  std::cout << "\nPer-node local cliques (knowledge diagnostics):\n";
  for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
    const auto& cs = result.node_cliques[static_cast<std::size_t>(n)];
    if (cs.empty()) continue;
    std::vector<std::string> names;
    for (const auto& c : cs) {
      const auto it = omega.find(c);
      names.push_back(it != omega.end() ? strformat("O%d", it->second) : std::string("-"));
    }
    std::cout << "  node " << sc.topo.label(n) << ": " << join(names, ", ") << "\n";
  }
  return 0;
}
