// Ablation: RTS/CTS handshake vs basic access.
//
// The paper's scheduler builds on the RTS/CTS floor-acquisition handshake.
// This ablation shows why: with basic access, hidden terminals collide on
// whole 512-byte DATA frames instead of 20-byte RTS probes, so the
// hidden-terminal topology of Fig. 1 wastes far more airtime and the
// starved subflow collapses further.
#include <iostream>

#include "bench_util.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 150.0;
  const Scenario sc = scenario1();

  std::cout << "Ablation — RTS/CTS vs basic access (scenario 1, T = " << args.seconds
            << " s)\n\n";
  TextTable t({"protocol", "access", "F1 e2e", "F2 e2e", "total e2e",
               "corrupted KB", "loss ratio"});
  for (Protocol p : {Protocol::k80211, Protocol::k2paCentralized}) {
    for (bool rts : {true, false}) {
      SimConfig cfg;
      cfg.sim_seconds = args.seconds;
      cfg.seed = args.seed;
      cfg.alpha = args.alpha;
      cfg.use_rts_cts = rts;
      const RunResult r = run_scenario(sc, p, cfg);
      t.add_row({to_string(p), rts ? "RTS/CTS" : "basic",
                 benchutil::fmt_count(r.end_to_end_per_flow[0]),
                 benchutil::fmt_count(r.end_to_end_per_flow[1]),
                 benchutil::fmt_count(r.total_end_to_end),
                 benchutil::fmt_count(static_cast<std::int64_t>(r.channel.bytes_corrupted / 1024)),
                 benchutil::fmt_ratio(r.loss_ratio)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected: basic access corrupts far more airtime at the hidden\n"
               "terminal (whole DATA frames), hurting the multi-hop flow most.\n";
  return 0;
}
