// Ablation: relay queue capacity vs in-network loss. 2PA keeps upstream
// and downstream rates matched, so it tolerates tiny buffers; two-tier's
// upstream surplus overflows any finite buffer (the overflow rate is set
// by the allocation imbalance, not the buffer size).
#include <iostream>

#include "bench_util.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  auto args = benchutil::parse_args(argc, argv);
  if (args.seconds == 1000.0) args.seconds = 120.0;
  const Scenario sc = scenario1();

  std::cout << "Ablation — relay queue capacity (scenario 1, T = " << args.seconds
            << " s)\n\n";
  TextTable t({"capacity", "2PA lost", "2PA loss ratio", "two-tier lost",
               "two-tier loss ratio"});
  for (int cap : {5, 10, 25, 50, 100, 200}) {
    SimConfig cfg;
    cfg.sim_seconds = args.seconds;
    cfg.seed = args.seed;
    cfg.alpha = args.alpha;
    cfg.queue_capacity = cap;
    const RunResult a = run_scenario(sc, Protocol::k2paCentralized, cfg);
    const RunResult b = run_scenario(sc, Protocol::kTwoTier, cfg);
    t.add_row({std::to_string(cap), benchutil::fmt_count(a.lost_packets),
               benchutil::fmt_ratio(a.loss_ratio), benchutil::fmt_count(b.lost_packets),
               benchutil::fmt_ratio(b.loss_ratio)});
  }
  t.print(std::cout);
  std::cout << "\nExpected: 2PA's loss stays small at any capacity; two-tier's loss\n"
               "is dominated by the allocation imbalance regardless of buffering.\n";
  return 0;
}
