// Reproduces Table II: simulation results on the Fig.-1 topology for
// IEEE 802.11, two-tier fair scheduling, and 2PA.
//
// Paper reference values (ns-2, T = 1000 s):
//   parameter        802.11   two-tier   2PA
//   r1.1 T           16079    66658      111773
//   r1.2 T (r̂1 T)     952     60992      111084
//   r2.1 T           156517   65507      56404
//   r2.2 T (r̂2 T)    151533   65507      56404
//   Σ r̂i T           152485   126499     167488
//   lost packets     20111    5666       689
//   loss ratio       0.132    0.045      0.004
//
// Absolute counts depend on the substrate; the shapes to check are:
// 802.11 starves F1.2 and loses the most; two-tier serves F1.1 > F1.2 and
// overflows the relay; 2PA tracks 1/2:1/2:1/4:1/4 with the highest total
// effective throughput and minimal loss.
#include <iostream>

#include "bench_util.hpp"
#include "net/batch.hpp"
#include "net/scenarios.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  const auto args = benchutil::parse_args(argc, argv);
  const Scenario sc = scenario1();

  SimConfig cfg;
  cfg.sim_seconds = args.seconds;
  cfg.seed = args.seed;
  cfg.alpha = args.alpha;

  std::cout << "Table II — simulation results, topology as in Fig. 1 (T = "
            << args.seconds << " s)\n\n";

  const std::vector<Protocol> protos = {Protocol::k80211, Protocol::kTwoTier,
                                        Protocol::k2paCentralized};
  const std::vector<RunResult> results =
      BatchRunner(args.jobs).run_protocols(sc, protos, cfg);

  TextTable t({"Parameters", "802.11", "two-tier", "2PA"});
  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const RunResult& r : results) cells.push_back(getter(r));
    t.add_row(cells);
  };
  row("r1.1 T", [](const RunResult& r) { return benchutil::fmt_count(r.delivered_per_subflow[0]); });
  row("r1.2 T (r1^ T)", [](const RunResult& r) { return benchutil::fmt_count(r.delivered_per_subflow[1]); });
  row("r2.1 T", [](const RunResult& r) { return benchutil::fmt_count(r.delivered_per_subflow[2]); });
  row("r2.2 T (r2^ T)", [](const RunResult& r) { return benchutil::fmt_count(r.delivered_per_subflow[3]); });
  row("sum ri^ T", [](const RunResult& r) { return benchutil::fmt_count(r.total_end_to_end); });
  row("lost packets", [](const RunResult& r) { return benchutil::fmt_count(r.lost_packets); });
  row("loss ratio", [](const RunResult& r) { return benchutil::fmt_ratio(r.loss_ratio); });
  t.print(std::cout);

  std::cout << "\nPhase-1 target shares (units of B):\n";
  for (std::size_t i = 1; i < results.size(); ++i) {
    std::cout << "  " << to_string(results[i].protocol) << ": ";
    std::vector<std::string> shares;
    for (double s : results[i].target_subflow_share)
      shares.push_back(format_share_of_b(s));
    std::cout << join(shares, ", ") << "\n";
  }
  std::cout << "\nPaper shapes: 802.11 starves F1.2; two-tier r1.1 > r1.2 "
               "(relay overflow); 2PA ~ 1/2:1/2:1/4:1/4, highest total, "
               "lowest loss.\n";
  return 0;
}
