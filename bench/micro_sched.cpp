// Microbenchmarks: the tag scheduler's per-packet operations (selection,
// tag assignment, Q/R estimation) — these sit on the simulated fast path.
#include <benchmark/benchmark.h>

#include "sched/fifo_queue.hpp"
#include "sched/tag_scheduler.hpp"

namespace e2efa {
namespace {

Packet make_packet(std::int32_t subflow, std::int64_t seq) {
  Packet p;
  p.subflow = subflow;
  p.seq = seq;
  p.payload_bytes = 512;
  return p;
}

void BM_TagSchedulerEnqueuePop(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  std::vector<TagScheduler::SubflowConfig> cfg;
  for (int i = 0; i < lanes; ++i) cfg.push_back({i, 1.0 / lanes});
  TagScheduler s(cfg, 64, 2'000'000, 1e-4);
  std::int64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < lanes; ++i) s.enqueue(make_packet(i, seq++), 0);
    for (int i = 0; i < lanes; ++i) benchmark::DoNotOptimize(s.pop_success(0));
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_TagSchedulerEnqueuePop)->Arg(1)->Arg(4)->Arg(16);

void BM_TagSchedulerQ(benchmark::State& state) {
  TagScheduler s({{0, 0.5}}, 64, 2'000'000, 1e-4);
  for (int n = 0; n < static_cast<int>(state.range(0)); ++n)
    s.observe_tag(100 + n, 1000.0 * n, 0);
  s.enqueue(make_packet(0, 1), 0);
  for (auto _ : state) benchmark::DoNotOptimize(s.q_slots(0));
}
BENCHMARK(BM_TagSchedulerQ)->Arg(2)->Arg(8)->Arg(32);

void BM_FifoEnqueuePop(benchmark::State& state) {
  FifoQueue q(64);
  std::int64_t seq = 0;
  for (auto _ : state) {
    q.enqueue(make_packet(0, seq++), 0);
    benchmark::DoNotOptimize(q.pop_success(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoEnqueuePop);

}  // namespace
}  // namespace e2efa
