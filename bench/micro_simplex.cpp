// Microbenchmarks: the Simplex solver and the full phase-1 allocators.
#include <benchmark/benchmark.h>

#include "alloc/centralized.hpp"
#include "alloc/distributed.hpp"
#include "alloc/two_tier.hpp"
#include "lp/simplex.hpp"
#include "net/scenarios.hpp"
#include "util/rng.hpp"

namespace e2efa {
namespace {

/// Allocation-shaped LP: n vars, sliding-window capacity rows, lower bounds.
LpProblem window_lp(int n, Rng& rng) {
  LpProblem p(n);
  for (int i = 0; i < n; ++i) {
    p.set_objective(i, 1.0);
    p.set_lower_bound(i, 0.01 + 0.02 * rng.uniform01());
  }
  for (int i = 0; i + 2 < n; ++i) {
    std::vector<double> row(static_cast<std::size_t>(n), 0.0);
    row[static_cast<std::size_t>(i)] = 1.0;
    row[static_cast<std::size_t>(i) + 1] = 1.0 + rng.uniform01();
    row[static_cast<std::size_t>(i) + 2] = 1.0;
    p.add_constraint(std::move(row), Relation::kLessEq, 1.0);
  }
  return p;
}

void BM_SimplexWindowLp(benchmark::State& state) {
  Rng rng(11);
  const LpProblem p = window_lp(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) benchmark::DoNotOptimize(solve_lp(p));
}
BENCHMARK(BM_SimplexWindowLp)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_CentralizedAllocateScenario2(benchmark::State& state) {
  const Scenario sc = scenario2();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, flows);
  for (auto _ : state) benchmark::DoNotOptimize(centralized_allocate(g));
}
BENCHMARK(BM_CentralizedAllocateScenario2);

void BM_TwoTierAllocateScenario2(benchmark::State& state) {
  const Scenario sc = scenario2();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, flows);
  for (auto _ : state) benchmark::DoNotOptimize(two_tier_allocate(g));
}
BENCHMARK(BM_TwoTierAllocateScenario2);

void BM_DistributedAllocateScenario2(benchmark::State& state) {
  const Scenario sc = scenario2();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, flows);
  for (auto _ : state) benchmark::DoNotOptimize(distributed_allocate(sc.topo, flows, g));
}
BENCHMARK(BM_DistributedAllocateScenario2);

}  // namespace
}  // namespace e2efa
