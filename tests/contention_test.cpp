#include <gtest/gtest.h>

#include <algorithm>

#include "contention/cliques.hpp"
#include "contention/coloring.hpp"
#include "contention/contention_graph.hpp"
#include "net/scenarios.hpp"
#include "topology/builders.hpp"

namespace e2efa {
namespace {

// Helper: single chain flow of `hops` hops.
struct ChainFixture {
  explicit ChainFixture(int hops)
      : topo(make_chain(hops + 1)), flows(topo, make_specs(hops)), graph(topo, flows) {}
  static std::vector<Flow> make_specs(int hops) {
    Flow f;
    for (int i = 0; i <= hops; ++i) f.path.push_back(i);
    return {f};
  }
  Topology topo;
  FlowSet flows;
  ContentionGraph graph;
};

TEST(ContentionGraph, ChainContendsWithinTwoHops) {
  // In a shortcut-free chain, subflows j and k contend iff |j-k| <= 2
  // (endpoints of j and j+2 are adjacent nodes, hence in range). This is
  // what makes the virtual length 3.
  ChainFixture c(6);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      if (a == b) continue;
      EXPECT_EQ(c.graph.contend(a, b), std::abs(a - b) <= 2)
          << "subflows " << a << "," << b;
    }
  }
}

TEST(ContentionGraph, SingleHopFlowHasNoEdges) {
  ChainFixture c(1);
  EXPECT_EQ(c.graph.vertex_count(), 1);
  EXPECT_EQ(c.graph.degree(0), 0);
}

TEST(ContentionGraph, ExplicitEdgesAddIntraFlowAutomatically) {
  Scenario sc = make_abstract_scenario({2, 1}, {1, 1});
  FlowSet fs(sc.topo, sc.flow_specs);
  // Only an explicit edge between F1.2 (idx 1) and F2.1 (idx 2).
  ContentionGraph g(fs, {{1, 2}});
  EXPECT_TRUE(g.contend(0, 1));  // intra-flow, shared node: automatic
  EXPECT_TRUE(g.contend(1, 2));  // explicit
  EXPECT_FALSE(g.contend(0, 2));
}

TEST(ContentionGraph, RejectsSelfEdgeAndBadVertex) {
  Scenario sc = make_abstract_scenario({1, 1}, {1, 1});
  FlowSet fs(sc.topo, sc.flow_specs);
  EXPECT_THROW(ContentionGraph(fs, {{0, 0}}), ContractViolation);
  EXPECT_THROW(ContentionGraph(fs, {{0, 9}}), ContractViolation);
}

TEST(ContentionGraph, Scenario1MatchesFig1b) {
  Scenario sc = scenario1();
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  // Vertices: F1.1=0 F1.2=1 F2.1=2 F2.2=3.
  ASSERT_EQ(g.vertex_count(), 4);
  EXPECT_TRUE(g.contend(0, 1));
  EXPECT_TRUE(g.contend(1, 2));
  EXPECT_TRUE(g.contend(1, 3));
  EXPECT_TRUE(g.contend(2, 3));
  EXPECT_FALSE(g.contend(0, 2));
  EXPECT_FALSE(g.contend(0, 3));
}

TEST(ContentionGraph, ComponentsAndFlowGroups) {
  // Two far-apart chains with no explicit edges: two components, two groups.
  Scenario sc = make_abstract_scenario({2, 2}, {1, 1});
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  EXPECT_EQ(g.components().size(), 2u);
  const auto groups = g.flow_groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<FlowId>{0}));
  EXPECT_EQ(groups[1], (std::vector<FlowId>{1}));
}

TEST(ContentionGraph, TransitiveFlowGrouping) {
  // F1~F2 and F2~F3 but F1 !~ F3: all three in one group (paper Sec. II-A).
  Scenario sc = make_abstract_scenario({1, 1, 1}, {1, 1, 1});
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(fs, {{0, 1}, {1, 2}});
  EXPECT_FALSE(g.contend(0, 2));
  const auto groups = g.flow_groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<FlowId>{0, 1, 2}));
}

TEST(ContentionGraph, Scenario1SingleGroup) {
  Scenario sc = scenario1();
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  EXPECT_EQ(g.flow_groups().size(), 1u);
}

// ---------- maximal cliques ----------

TEST(Cliques, Scenario1Cliques) {
  Scenario sc = scenario1();
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  const auto cliques = maximal_cliques(g);
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], (std::vector<int>{0, 1}));     // {F1.1, F1.2}
  EXPECT_EQ(cliques[1], (std::vector<int>{1, 2, 3}));  // {F1.2, F2.1, F2.2}
}

TEST(Cliques, Scenario2CliquesAreOmega1to6) {
  Scenario sc = scenario2();
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  // Subflow ids: F1.1..F1.4 = 0..3, F2.1 = 4, F3.1 = 5, F4.1 = 6, F4.2 = 7,
  // F5.1 = 8.
  const auto cliques = maximal_cliques(g);
  const std::vector<std::vector<int>> expected = {
      {0, 1, 2},  // Ω1
      {1, 2, 3},  // Ω2
      {2, 3, 4},  // Ω3
      {4, 5},     // Ω4
      {5, 6},     // Ω5
      {6, 7, 8},  // Ω6
  };
  EXPECT_EQ(cliques, expected);
}

TEST(Cliques, ChainCliquesAreTriples) {
  ChainFixture c(6);
  const auto cliques = maximal_cliques(c.graph);
  ASSERT_EQ(cliques.size(), 4u);
  for (std::size_t i = 0; i < cliques.size(); ++i) {
    EXPECT_EQ(cliques[i],
              (std::vector<int>{static_cast<int>(i), static_cast<int>(i) + 1,
                                static_cast<int>(i) + 2}));
  }
}

TEST(Cliques, WeightedCliqueNumberScenario1) {
  Scenario sc = scenario1();
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  EXPECT_DOUBLE_EQ(weighted_clique_number(g), 3.0);
}

TEST(Cliques, WeightedCliqueNumberRespectsWeights) {
  AbstractExample ex = fig4_example();
  FlowSet fs(ex.scenario.topo, ex.scenario.flow_specs);
  ContentionGraph g(fs, ex.edges);
  // Clique {F1.1, F2.1, F2.2, F3.1} has weight 1+2+2+3 = 8.
  EXPECT_DOUBLE_EQ(weighted_clique_number(g), 8.0);
}

TEST(Cliques, PentagonCliqueNumberIsTwo) {
  AbstractExample ex = pentagon_example();
  FlowSet fs(ex.scenario.topo, ex.scenario.flow_specs);
  ContentionGraph g(fs, ex.edges);
  const auto cliques = maximal_cliques(g);
  EXPECT_EQ(cliques.size(), 5u);  // the five ring edges
  EXPECT_DOUBLE_EQ(weighted_clique_number(g), 2.0);
}

TEST(Cliques, FlowMembershipCounts) {
  Scenario sc = scenario2();
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  const auto cliques = maximal_cliques(g);
  // Ω3 = {F1.3, F1.4, F2.1} -> n = (2,1,0,0,0).
  EXPECT_EQ(flow_membership_counts(g, cliques[2]), (std::vector<int>{2, 1, 0, 0, 0}));
  // Ω6 = {F4.1, F4.2, F5.1} -> n = (0,0,0,2,1).
  EXPECT_EQ(flow_membership_counts(g, cliques[5]), (std::vector<int>{0, 0, 0, 2, 1}));
}

TEST(Cliques, ConstraintRowsDeduplicated) {
  // An l=7 chain has 5 maximal cliques but all give the same row (3).
  ChainFixture c(7);
  const auto rows = clique_constraint_rows(c.graph);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<int>{3}));
}

TEST(Cliques, SubsetCliques) {
  Scenario sc = scenario2();
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  // Restrict to {F1.3, F1.4, F2.1, F3.1} = {2, 3, 4, 5}.
  const auto cliques = maximal_cliques_in_subset(g, {2, 3, 4, 5});
  const std::vector<std::vector<int>> expected = {{2, 3, 4}, {4, 5}};
  EXPECT_EQ(cliques, expected);
}

TEST(Cliques, SubsetMustBeAscending) {
  ChainFixture c(3);
  EXPECT_THROW(maximal_cliques_in_subset(c.graph, {2, 1}), ContractViolation);
}

// ---------- independent sets ----------

TEST(IndependentSets, ChainSets) {
  ChainFixture c(3);
  // Subflows 0,1,2 mutually contend: independent sets are singletons.
  const auto sets = maximal_independent_sets(c.graph);
  ASSERT_EQ(sets.size(), 3u);
  for (const auto& s : sets) EXPECT_EQ(s.size(), 1u);
}

TEST(IndependentSets, SixHopChain) {
  ChainFixture c(6);
  const auto sets = maximal_independent_sets(c.graph);
  // {0,3}, {0,4}, {0,5}, {1,4}, {1,5}, {2,5} — pairs at distance >= 3.
  EXPECT_EQ(sets.size(), 6u);
  for (const auto& s : sets) {
    ASSERT_EQ(s.size(), 2u);
    EXPECT_GE(s[1] - s[0], 3);
  }
}

TEST(IndependentSets, PentagonMaxIndependentPairs) {
  AbstractExample ex = pentagon_example();
  FlowSet fs(ex.scenario.topo, ex.scenario.flow_specs);
  ContentionGraph g(fs, ex.edges);
  const auto sets = maximal_independent_sets(g);
  EXPECT_EQ(sets.size(), 5u);  // C5: five maximal independent pairs
  for (const auto& s : sets) EXPECT_EQ(s.size(), 2u);
}

// ---------- coloring ----------

TEST(Coloring, ChainColoringPattern) {
  EXPECT_EQ(chain_coloring(6), (std::vector<int>{0, 1, 2, 0, 1, 2}));
  EXPECT_EQ(chain_coloring(2), (std::vector<int>{0, 1}));
  EXPECT_EQ(chain_coloring(1), (std::vector<int>{0}));
  EXPECT_EQ(chain_coloring(4), (std::vector<int>{0, 1, 2, 0}));
}

TEST(Coloring, ChainColoringIsProper) {
  for (int hops : {1, 2, 3, 4, 5, 6, 9, 12}) {
    ChainFixture c(hops);
    const auto coloring = chain_coloring(hops);
    EXPECT_TRUE(is_proper_coloring(c.graph, coloring)) << "hops=" << hops;
    EXPECT_EQ(color_count(coloring), virtual_length(hops)) << "hops=" << hops;
  }
}

TEST(Coloring, GreedyIsProperOnChains) {
  for (int hops : {3, 5, 8, 11}) {
    ChainFixture c(hops);
    const auto coloring = greedy_coloring(c.graph);
    EXPECT_TRUE(is_proper_coloring(c.graph, coloring));
    // Greedy achieves the optimum (= 3) on shortcut-free chains >= 3 hops.
    EXPECT_EQ(color_count(coloring), 3) << "hops=" << hops;
  }
}

TEST(Coloring, GreedyProperOnScenario2) {
  Scenario sc = scenario2();
  FlowSet fs(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, fs);
  EXPECT_TRUE(is_proper_coloring(g, greedy_coloring(g)));
}

TEST(Coloring, DetectsImproperColoring) {
  ChainFixture c(2);
  EXPECT_FALSE(is_proper_coloring(c.graph, {0, 0}));
}

}  // namespace
}  // namespace e2efa
