#include <gtest/gtest.h>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

constexpr double kTol = 1e-7;

TEST(Simplex, SimpleTwoVar) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12? No:
  // vertices: (4,0)->12, (3,1)->11, (0,2)->4. Optimum (4,0) = 12.
  LpProblem p(2);
  p.set_objective({3, 2});
  p.add_constraint({1, 1}, Relation::kLessEq, 4);
  p.add_constraint({1, 3}, Relation::kLessEq, 6);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, kTol);
  EXPECT_NEAR(s.x[0], 4.0, kTol);
  EXPECT_NEAR(s.x[1], 0.0, kTol);
}

TEST(Simplex, InteriorOptimumVertex) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> (4/3, 4/3), obj 8/3.
  LpProblem p(2);
  p.set_objective({1, 1});
  p.add_constraint({2, 1}, Relation::kLessEq, 4);
  p.add_constraint({1, 2}, Relation::kLessEq, 4);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0 / 3.0, kTol);
  EXPECT_NEAR(s.x[0], 4.0 / 3.0, kTol);
  EXPECT_NEAR(s.x[1], 4.0 / 3.0, kTol);
}

TEST(Simplex, GreaterEqualConstraints) {
  // max -x s.t. x >= 3  -> x = 3.
  LpProblem p(1);
  p.set_objective({-1});
  p.add_constraint({1}, Relation::kGreaterEq, 3);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, kTol);
  EXPECT_NEAR(s.objective, -3.0, kTol);
}

TEST(Simplex, EqualityConstraint) {
  // max x + 2y s.t. x + y == 5, x <= 3 -> x=0? max: y=5, x=0 -> 10.
  LpProblem p(2);
  p.set_objective({1, 2});
  p.add_constraint({1, 1}, Relation::kEqual, 5);
  p.add_constraint({1, 0}, Relation::kLessEq, 3);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, kTol);
  EXPECT_NEAR(s.x[1], 5.0, kTol);
}

TEST(Simplex, Infeasible) {
  LpProblem p(1);
  p.set_objective({1});
  p.add_constraint({1}, Relation::kLessEq, 1);
  p.add_constraint({1}, Relation::kGreaterEq, 2);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, InfeasibleEquality) {
  LpProblem p(2);
  p.add_constraint({1, 1}, Relation::kEqual, 2);
  p.add_constraint({1, 1}, Relation::kEqual, 3);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, Unbounded) {
  LpProblem p(1);
  p.set_objective({1});
  p.add_constraint({-1}, Relation::kLessEq, 1);  // -x <= 1, x unbounded above
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, LowerBoundsShift) {
  // max -x - y s.t. x + y >= 4, x >= 1.5, y >= 1 -> touches x+y = 4.
  LpProblem p(2);
  p.set_objective({-1, -1});
  p.set_lower_bound(0, 1.5);
  p.set_lower_bound(1, 1.0);
  p.add_constraint({1, 1}, Relation::kGreaterEq, 4);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0] + s.x[1], 4.0, kTol);
  EXPECT_GE(s.x[0], 1.5 - kTol);
  EXPECT_GE(s.x[1], 1.0 - kTol);
}

TEST(Simplex, LowerBoundsMakeInfeasible) {
  LpProblem p(2);
  p.set_lower_bound(0, 2.0);
  p.set_lower_bound(1, 2.0);
  p.add_constraint({1, 1}, Relation::kLessEq, 3.0);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, NegativeRhsNormalization) {
  // max x s.t. -x <= -2 (i.e. x >= 2), x <= 5.
  LpProblem p(1);
  p.set_objective({1});
  p.add_constraint({-1}, Relation::kLessEq, -2);
  p.add_constraint({1}, Relation::kLessEq, 5);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, kTol);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate cycling candidate (Beale); Bland's rule must finish.
  LpProblem p(4);
  p.set_objective({0.75, -150, 0.02, -6});
  p.add_constraint({0.25, -60, -0.04, 9}, Relation::kLessEq, 0);
  p.add_constraint({0.5, -90, -0.02, 3}, Relation::kLessEq, 0);
  p.add_constraint({0, 0, 1, 0}, Relation::kLessEq, 1);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.05, 1e-6);
}

TEST(Simplex, PaperFig1Lp) {
  // maximize r1 + r2 s.t. 2r1 <= 1, r1 + 2r2 <= 1, r1 >= 1/4, r2 >= 1/4
  // -> (1/2, 1/4), objective 3/4 (Sec. III-B worked example).
  LpProblem p(2);
  p.set_objective({1, 1});
  p.set_lower_bound(0, 0.25);
  p.set_lower_bound(1, 0.25);
  p.add_constraint({2, 0}, Relation::kLessEq, 1);
  p.add_constraint({1, 2}, Relation::kLessEq, 1);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 0.5, kTol);
  EXPECT_NEAR(s.x[1], 0.25, kTol);
  EXPECT_NEAR(s.objective, 0.75, kTol);
}

TEST(Simplex, RedundantEqualityRows) {
  // Duplicate equality rows leave a redundant artificial; solver must cope.
  LpProblem p(2);
  p.set_objective({1, 0});
  p.add_constraint({1, 1}, Relation::kEqual, 2);
  p.add_constraint({1, 1}, Relation::kEqual, 2);
  p.add_constraint({1, 0}, Relation::kLessEq, 1.5);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 1.5, kTol);
  EXPECT_NEAR(s.x[1], 0.5, kTol);
}

TEST(Simplex, IterationLimitReported) {
  LpProblem p(2);
  p.set_objective({1, 1});
  p.add_constraint({1, 1}, Relation::kLessEq, 1);
  SimplexOptions opt;
  opt.max_iterations = 0;
  EXPECT_EQ(solve_lp(p, opt).status, LpStatus::kIterationLimit);
}

TEST(Simplex, ObjectiveWithLowerBoundShiftAccounted) {
  // max 2x s.t. x <= 5, x >= 3 -> obj 10 (not 4): shift must be undone.
  LpProblem p(1);
  p.set_objective({2});
  p.set_lower_bound(0, 3);
  p.add_constraint({1}, Relation::kLessEq, 5);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, kTol);
  EXPECT_NEAR(s.x[0], 5.0, kTol);
}

TEST(LpProblem, ValidatesInput) {
  EXPECT_THROW(LpProblem(0), ContractViolation);
  LpProblem p(2);
  EXPECT_THROW(p.set_objective(2, 1.0), ContractViolation);
  EXPECT_THROW(p.add_constraint({1.0}, Relation::kLessEq, 0), ContractViolation);
  EXPECT_THROW(p.set_lower_bound(-1, 0.0), ContractViolation);
}

TEST(LpProblem, AddWeightedLe) {
  LpProblem p(3);
  p.add_weighted_le({{0, 2.0}, {2, 1.0}, {0, 1.0}}, 5.0, "row");
  ASSERT_EQ(p.constraints().size(), 1u);
  EXPECT_EQ(p.constraints()[0].coeffs, (std::vector<double>{3, 0, 1}));
  EXPECT_EQ(p.constraints()[0].name, "row");
}

TEST(Simplex, LargerRandomishProblemSolves) {
  // 10 variables, chain-style overlapping rows (allocation-LP shaped).
  const int n = 10;
  LpProblem p(n);
  for (int i = 0; i < n; ++i) {
    p.set_objective(i, 1.0);
    p.set_lower_bound(i, 0.02);
  }
  for (int i = 0; i + 2 < n; ++i) {
    std::vector<double> row(n, 0.0);
    row[i] = row[i + 1] = row[i + 2] = 1.0;
    p.add_constraint(std::move(row), Relation::kLessEq, 1.0);
  }
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Feasibility of the returned point.
  for (int i = 0; i + 2 < n; ++i)
    EXPECT_LE(s.x[i] + s.x[i + 1] + s.x[i + 2], 1.0 + kTol);
  for (int i = 0; i < n; ++i) EXPECT_GE(s.x[i], 0.02 - kTol);
  // Optimal total for triple-window rows is ceil(n/3) windows -> 4·1? The
  // exact optimum: place mass on vars 0,3,6,9 -> 4 minus epsilon for mins.
  EXPECT_NEAR(s.objective, 4.0 - 0.0, 0.2);
}

}  // namespace
}  // namespace e2efa
