// Integration tests: full phase-1 + phase-2 runs on the paper topologies
// (shortened horizons) asserting the qualitative results of Tables II/III.
#include <gtest/gtest.h>

#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {
namespace {

SimConfig quick_cfg(double seconds = 60.0, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.sim_seconds = seconds;
  cfg.seed = seed;
  return cfg;
}

// Cache results: the fixture topologies are static, runs are deterministic.
const RunResult& s1(Protocol p) {
  static const Scenario sc = scenario1();
  static std::map<Protocol, RunResult> cache;
  auto it = cache.find(p);
  if (it == cache.end()) it = cache.emplace(p, run_scenario(sc, p, quick_cfg())).first;
  return it->second;
}

const RunResult& s2(Protocol p) {
  static const Scenario sc = scenario2();
  static std::map<Protocol, RunResult> cache;
  auto it = cache.find(p);
  if (it == cache.end()) it = cache.emplace(p, run_scenario(sc, p, quick_cfg())).first;
  return it->second;
}

double ratio(std::int64_t a, std::int64_t b) {
  return static_cast<double>(a) / static_cast<double>(b);
}

// ---------- Scenario 1 (Table II shapes) ----------

TEST(Scenario1, TargetsMatchPaper) {
  const RunResult& r = s1(Protocol::k2paCentralized);
  ASSERT_TRUE(r.has_target);
  EXPECT_NEAR(r.target_flow_share[0], 0.5, 1e-6);
  EXPECT_NEAR(r.target_flow_share[1], 0.25, 1e-6);
  const RunResult& tt = s1(Protocol::kTwoTier);
  EXPECT_NEAR(tt.target_subflow_share[0], 0.75, 1e-6);
  EXPECT_NEAR(tt.target_subflow_share[1], 0.25, 1e-6);
  EXPECT_NEAR(tt.target_subflow_share[2], 0.375, 1e-6);
  EXPECT_NEAR(tt.target_subflow_share[3], 0.375, 1e-6);
}

TEST(Scenario1, TwoPaTracksAllocatedShares) {
  const RunResult& r = s1(Protocol::k2paCentralized);
  // Paper: throughput ratios approximate 1/2 : 1/2 : 1/4 : 1/4.
  EXPECT_NEAR(ratio(r.delivered_per_subflow[0], r.delivered_per_subflow[2]), 2.0, 0.3);
  EXPECT_NEAR(ratio(r.delivered_per_subflow[1], r.delivered_per_subflow[3]), 2.0, 0.3);
  // Upstream and downstream of F1 nearly equal (no relay pile-up).
  EXPECT_NEAR(ratio(r.delivered_per_subflow[0], r.delivered_per_subflow[1]), 1.0, 0.1);
  // F2's two hops equal.
  EXPECT_NEAR(ratio(r.delivered_per_subflow[2], r.delivered_per_subflow[3]), 1.0, 0.05);
}

TEST(Scenario1, TwoPaLowLoss) {
  const RunResult& r = s1(Protocol::k2paCentralized);
  EXPECT_LT(r.loss_ratio, 0.05);
}

TEST(Scenario1, TwoTierRelayImbalance) {
  // The paper's central criticism: two-tier allocates 3x more to F1.1 than
  // F1.2, so the relay overflows.
  const RunResult& r = s1(Protocol::kTwoTier);
  EXPECT_GT(ratio(r.delivered_per_subflow[0], r.delivered_per_subflow[1]), 2.0);
  EXPECT_GT(r.lost_packets, 10 * s1(Protocol::k2paCentralized).lost_packets);
}

TEST(Scenario1, Dcf80211StarvesMultihopFlow) {
  const RunResult& r = s1(Protocol::k80211);
  // F1's end-to-end throughput collapses; F2 dominates.
  EXPECT_LT(ratio(r.end_to_end_per_flow[0], r.end_to_end_per_flow[1]), 0.25);
  EXPECT_GT(r.loss_ratio, s1(Protocol::kTwoTier).loss_ratio);
}

TEST(Scenario1, TwoPaBeatsTwoTierTotalEffective) {
  EXPECT_GT(s1(Protocol::k2paCentralized).total_end_to_end,
            s1(Protocol::kTwoTier).total_end_to_end);
}

TEST(Scenario1, LossOrderingMatchesPaper) {
  EXPECT_LT(s1(Protocol::k2paCentralized).loss_ratio, s1(Protocol::kTwoTier).loss_ratio);
  EXPECT_LT(s1(Protocol::kTwoTier).loss_ratio, s1(Protocol::k80211).loss_ratio);
}

TEST(Scenario1, EndToEndEqualsLastSubflow) {
  for (Protocol p : {Protocol::k80211, Protocol::kTwoTier, Protocol::k2paCentralized}) {
    const RunResult& r = s1(p);
    EXPECT_EQ(r.end_to_end_per_flow[0], r.delivered_per_subflow[1]);
    EXPECT_EQ(r.end_to_end_per_flow[1], r.delivered_per_subflow[3]);
    EXPECT_EQ(r.total_end_to_end, r.end_to_end_per_flow[0] + r.end_to_end_per_flow[1]);
  }
}

TEST(Scenario1, SubflowMonotoneAlongPath) {
  // A downstream hop can never deliver more than its upstream hop.
  for (Protocol p : {Protocol::k80211, Protocol::kTwoTier, Protocol::k2paCentralized}) {
    const RunResult& r = s1(p);
    EXPECT_LE(r.delivered_per_subflow[1], r.delivered_per_subflow[0]);
    EXPECT_LE(r.delivered_per_subflow[3], r.delivered_per_subflow[2]);
  }
}

TEST(Scenario1, LostPacketsIdentity) {
  // lost = Σ_i (first-hop delivered − end-to-end delivered) — the identity
  // Table II's numbers satisfy.
  for (Protocol p : {Protocol::k80211, Protocol::kTwoTier, Protocol::k2paCentralized}) {
    const RunResult& r = s1(p);
    const std::int64_t expect = (r.delivered_per_subflow[0] - r.end_to_end_per_flow[0]) +
                                (r.delivered_per_subflow[2] - r.end_to_end_per_flow[1]);
    EXPECT_EQ(r.lost_packets, expect);
  }
}

TEST(Scenario1, DeterministicAcrossRuns) {
  const Scenario sc = scenario1();
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, quick_cfg(20.0, 99));
  const RunResult b = run_scenario(sc, Protocol::k2paCentralized, quick_cfg(20.0, 99));
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  const RunResult c = run_scenario(sc, Protocol::k2paCentralized, quick_cfg(20.0, 100));
  EXPECT_NE(a.delivered_per_subflow, c.delivered_per_subflow);
}

// ---------- Scenario 2 (Table III shapes) ----------

TEST(Scenario2, TargetsMatchPaper) {
  const RunResult& c = s2(Protocol::k2paCentralized);
  const std::vector<double> expect_c = {1.0 / 3, 1.0 / 3, 2.0 / 3, 1.0 / 8, 3.0 / 4};
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(c.target_flow_share[i], expect_c[i], 1e-6);
  const RunResult& d = s2(Protocol::k2paDistributed);
  const std::vector<double> expect_d = {1.0 / 3, 1.0 / 5, 1.0 / 4, 1.0 / 4, 1.0 / 2};
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(d.target_flow_share[i], expect_d[i], 1e-6);
}

TEST(Scenario2, CentralizedTracksShares) {
  const RunResult& r = s2(Protocol::k2paCentralized);
  // r̂3 : r̂1 = 2 : 1 and r̂2 : r̂1 = 1 : 1 (targets 2/3, 1/3, 1/3).
  EXPECT_NEAR(ratio(r.end_to_end_per_flow[2], r.end_to_end_per_flow[0]), 2.0, 0.35);
  EXPECT_NEAR(ratio(r.end_to_end_per_flow[1], r.end_to_end_per_flow[0]), 1.0, 0.2);
  // F4 is pinned to its basic share 1/8 — by far the smallest.
  for (FlowId f : {0, 1, 2, 4})
    EXPECT_GT(r.end_to_end_per_flow[f], 2 * r.end_to_end_per_flow[3]);
}

TEST(Scenario2, DistributedTracksShares) {
  const RunResult& r = s2(Protocol::k2paDistributed);
  // Targets (1/3, 1/5, 1/4, 1/4, 1/2): check the salient ratios.
  EXPECT_NEAR(ratio(r.end_to_end_per_flow[0], r.end_to_end_per_flow[1]), 5.0 / 3.0, 0.3);
  EXPECT_NEAR(ratio(r.end_to_end_per_flow[4], r.end_to_end_per_flow[2]), 2.0, 0.4);
  EXPECT_NEAR(ratio(r.end_to_end_per_flow[2], r.end_to_end_per_flow[3]), 1.0, 0.2);
}

TEST(Scenario2, MultihopSubflowsBalancedUnder2pa) {
  const RunResult& r = s2(Protocol::k2paCentralized);
  // F1's four hops should deliver nearly equal counts (equalized shares).
  for (int s = 1; s < 4; ++s)
    EXPECT_NEAR(ratio(r.delivered_per_subflow[s], r.delivered_per_subflow[0]), 1.0, 0.1);
}

TEST(Scenario2, CentralizedBeatsTwoTierAndDistributed) {
  // Paper: 2PA-C total > two-tier total; 2PA-D (partial knowledge) lower
  // than 2PA-C.
  EXPECT_GT(s2(Protocol::k2paCentralized).total_end_to_end,
            s2(Protocol::kTwoTier).total_end_to_end);
  EXPECT_GT(s2(Protocol::k2paCentralized).total_end_to_end,
            s2(Protocol::k2paDistributed).total_end_to_end);
}

TEST(Scenario2, LossOrdering) {
  EXPECT_LE(s2(Protocol::k2paDistributed).loss_ratio,
            s2(Protocol::k2paCentralized).loss_ratio + 0.01);
  EXPECT_LT(s2(Protocol::k2paCentralized).loss_ratio, s2(Protocol::kTwoTier).loss_ratio);
  EXPECT_LT(s2(Protocol::k2paCentralized).loss_ratio, s2(Protocol::k80211).loss_ratio);
}

TEST(Scenario2, TwoPaLossTiny) {
  EXPECT_LT(s2(Protocol::k2paCentralized).loss_ratio, 0.02);
  EXPECT_LT(s2(Protocol::k2paDistributed).loss_ratio, 0.02);
}

TEST(Scenario2, FlowCountsConsistent) {
  for (Protocol p : {Protocol::k80211, Protocol::kTwoTier, Protocol::k2paCentralized,
                     Protocol::k2paDistributed}) {
    const RunResult& r = s2(p);
    ASSERT_EQ(r.delivered_per_subflow.size(), 9u);
    ASSERT_EQ(r.end_to_end_per_flow.size(), 5u);
    // Every flow should move at least some packets in 60 s.
    for (std::int64_t v : r.end_to_end_per_flow) EXPECT_GT(v, 0);
    // Chain monotonicity for F1 and F4.
    EXPECT_LE(r.delivered_per_subflow[1], r.delivered_per_subflow[0]);
    EXPECT_LE(r.delivered_per_subflow[2], r.delivered_per_subflow[1]);
    EXPECT_LE(r.delivered_per_subflow[3], r.delivered_per_subflow[2]);
    EXPECT_LE(r.delivered_per_subflow[7], r.delivered_per_subflow[6]);
  }
}

TEST(Scenario2, MeasuredShareHelperConsistent) {
  const RunResult& r = s2(Protocol::k2paCentralized);
  const SimConfig cfg = quick_cfg();
  const double share = r.measured_subflow_share(5, cfg.channel_bps, cfg.payload_bytes);
  // F3's measured share should be positive and below its 2/3 target.
  EXPECT_GT(share, 0.1);
  EXPECT_LT(share, 0.67);
}

// ---------- CBR sanity through the runner ----------

TEST(Runner, OfferedLoadBoundsDeliveries) {
  const RunResult& r = s1(Protocol::k2paCentralized);
  // No subflow can deliver more than the offered load (200 pkt/s * 60 s).
  for (std::int64_t v : r.delivered_per_subflow) EXPECT_LE(v, 12000);
}

TEST(Runner, ChannelStatsPopulated) {
  const RunResult& r = s1(Protocol::k2paCentralized);
  EXPECT_GT(r.channel.frames_transmitted, 0u);
  EXPECT_GT(r.channel.frames_delivered, 0u);
}

}  // namespace
}  // namespace e2efa
