// Unit and stress coverage for the pooled event engine: FIFO ordering at
// equal timestamps, generation-tagged handle safety across slot reuse,
// exact pending() under lazy cancellation, and the Callback small-buffer
// machinery (inline vs heap storage, move-only semantics).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/callback.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

TEST(EventEngine, FifoAtEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) sim.schedule_at(42, [&order, i] { order.push_back(i); });
  sim.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.now(), 42);
}

TEST(EventEngine, InterleavedScheduleCancelRescheduleSameTime) {
  Simulator sim;
  std::vector<int> order;
  // Schedule ten events at t=10, cancel the odd ones, then schedule five
  // more at the same time: survivors fire in scheduling order 0,2,4,6,8,
  // then 10..14.
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(sim.schedule_at(10, [&order, i] { order.push_back(i); }));
  for (int i = 1; i < 10; i += 2) EXPECT_TRUE(sim.cancel(ids[i]));
  for (int i = 10; i < 15; ++i)
    sim.schedule_at(10, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8, 10, 11, 12, 13, 14}));
}

TEST(EventEngine, CancelSemantics) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(5, [&fired] { fired = true; });
  EXPECT_FALSE(sim.cancel(Simulator::kInvalidEvent));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);

  const auto id2 = sim.schedule_at(sim.now() + 1, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id2));  // already fired
}

TEST(EventEngine, StaleHandleDoesNotCancelRecycledSlot) {
  Simulator sim;
  // Arrange for slot reuse: cancel an event, then schedule another — the
  // freed slot is recycled only after the dead heap entry surfaces, so
  // drive the clock past it first.
  const auto stale = sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.cancel(stale));
  sim.run_until(2);  // dead entry popped; slot back on the free list

  bool fired = false;
  const auto fresh = sim.schedule_at(3, [&fired] { fired = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(sim.cancel(stale));  // stale generation must not match
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(EventEngine, HandleReuseAcrossManyGenerations) {
  Simulator sim;
  // Repeatedly schedule+cancel; with a single slot cycling through
  // generations, every stale id must stay dead.
  std::vector<Simulator::EventId> history;
  for (int i = 0; i < 50; ++i) {
    const auto id = sim.schedule_at(sim.now() + 1, [] {});
    for (const auto old : history) EXPECT_FALSE(sim.cancel(old));
    EXPECT_TRUE(sim.cancel(id));
    history.push_back(id);
    sim.run_until(sim.now() + 1);
  }
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(EventEngine, PendingIsExactUnderLazyCancellation) {
  Simulator sim;
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(sim.schedule_at(100 + i, [] {}));
  EXPECT_EQ(sim.pending(), 20u);
  for (int i = 0; i < 20; i += 2) sim.cancel(ids[i]);
  // The ten dead heap entries still exist internally; pending() must not
  // count them.
  EXPECT_EQ(sim.pending(), 10u);
  sim.run_until(104);
  EXPECT_EQ(sim.pending(), 8u);  // 101 and 103 fired
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(EventEngine, CallbacksMayScheduleAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] {
    order.push_back(0);
    sim.schedule_at(5, [&] { order.push_back(2); });
    sim.schedule_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), 5);
}

TEST(EventEngine, RunUntilAdvancesClockRunStopsAtLastEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&fired] { ++fired; });
  EXPECT_EQ(sim.run_until(3), 0u);
  EXPECT_EQ(sim.now(), 3);
  EXPECT_EQ(sim.run_until(100), 1u);
  EXPECT_EQ(sim.now(), 100);

  sim.schedule_at(150, [&fired] { ++fired; });
  sim.schedule_at(120, [&fired] { ++fired; });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(sim.now(), 150);  // run() ends at the last executed event
  EXPECT_EQ(fired, 3);
}

TEST(EventEngine, SchedulingInThePastIsRejected) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), ContractViolation);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), ContractViolation);
}

// Deterministic stress: a pseudo-random interleaving of schedules, cancels
// and reschedules (many at equal timestamps) checked against engine
// invariants — non-decreasing firing time, FIFO among same-time events,
// exact bookkeeping of fired vs cancelled.
TEST(EventEngine, StressInterleavedScheduleCancelReschedule) {
  Simulator sim;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  struct Live {
    Simulator::EventId id;
    std::uint64_t seq;
  };
  std::vector<Live> live;
  std::uint64_t seq = 0, scheduled = 0, cancelled = 0, fired = 0;
  TimeNs last_time = 0;
  std::uint64_t last_seq = 0;

  // Fired events check global (time, seq) order; same-time events must
  // come out FIFO.
  auto on_fire = [&](TimeNs t, std::uint64_t s) {
    EXPECT_GE(t, last_time);
    if (t == last_time) {
      EXPECT_GT(s, last_seq);
    }
    last_time = t;
    last_seq = s;
    ++fired;
  };

  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t r = next();
    const int op = static_cast<int>(r % 100);
    if (op < 55 || live.empty()) {
      // Schedule at now + one of only 8 distinct offsets, forcing heavy
      // same-time pileups.
      const TimeNs t = sim.now() + static_cast<TimeNs>((r >> 8) % 8);
      const std::uint64_t s = seq++;
      const auto id = sim.schedule_at(t, [&, t, s] { on_fire(t, s); });
      live.push_back({id, s});
      ++scheduled;
    } else if (op < 80) {
      const std::size_t i = static_cast<std::size_t>((r >> 8) % live.size());
      if (sim.cancel(live[i].id)) ++cancelled;
      live[i] = live.back();
      live.pop_back();
    } else {
      // Drain a little, letting events fire and slots recycle.
      sim.run_until(sim.now() + static_cast<TimeNs>((r >> 8) % 4));
      live.clear();  // ids may have fired; drop tracking (cancels above
                     // tolerate stale ids by checking cancel()'s result)
    }
    ASSERT_EQ(sim.pending(), scheduled - cancelled - fired);
  }
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(fired, scheduled - cancelled);
}

// ---- Callback (SBO) unit coverage ----

TEST(CallbackSbo, InlineAndHeapStorageBothInvoke) {
  int hits = 0;
  Callback small([&hits] { ++hits; });  // 8 bytes: inline
  small();
  EXPECT_EQ(hits, 1);

  struct Big {
    int* hits;
    char pad[120];  // > kInlineCapacity: heap fallback
    void operator()() const { ++*hits; }
  };
  Callback big(Big{&hits, {}});
  big();
  EXPECT_EQ(hits, 2);
}

TEST(CallbackSbo, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  Callback a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  Callback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
  b.reset();
  EXPECT_EQ(counter.use_count(), 1);  // capture destroyed exactly once
}

TEST(CallbackSbo, MoveOnlyCapturesWork) {
  auto value = std::make_unique<int>(41);
  Callback cb([v = std::move(value)] { ++*v; });
  Callback moved(std::move(cb));
  moved();
  EXPECT_TRUE(static_cast<bool>(moved));
}

TEST(CallbackSbo, SchedulingACallbackObjectWorks) {
  // The engine accepts a pre-built Callback (moved in as-is, not wrapped).
  Simulator sim;
  int hits = 0;
  Callback cb([&hits] { ++hits; });
  sim.schedule_at(1, std::move(cb));
  sim.run();
  EXPECT_EQ(hits, 1);
}

TEST(CallbackSbo, LargeCapturesSurviveSlotRecycling) {
  // Heap-fallback callbacks must stay valid while the slab slot cycles.
  Simulator sim;
  std::string out;
  struct Big {
    std::string text;
    std::string* out;
    char pad[64];
    void operator()() const { *out += text; }
  };
  sim.schedule_at(1, Big{"a", &out, {}});
  sim.schedule_at(1, Big{"b", &out, {}});
  const auto dead = sim.schedule_at(2, Big{"X", &out, {}});
  sim.cancel(dead);
  sim.schedule_at(3, Big{"c", &out, {}});
  sim.run();
  EXPECT_EQ(out, "abc");
}

}  // namespace
}  // namespace e2efa
