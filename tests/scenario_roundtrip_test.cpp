// Round-trip property of the scenario serializer: generate random
// scenarios (topology + weighted explicit-path flows + fault plan + loss
// model), serialize to the text format, parse back, and require (a) the
// parsed scenario is structurally identical and (b) a simulation of the
// parsed scenario reproduces the original RunResult bit for bit — the
// guarantee the fuzzer's repro files depend on.
#include <gtest/gtest.h>

#include "net/runner.hpp"
#include "net/scenario_file.hpp"
#include "net/scenario_gen.hpp"

namespace e2efa {
namespace {

class ScenarioRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

GenConfig eventful() {
  GenConfig gen;
  gen.p_faults = 1.0;    // Every scenario carries faults and loss, so the
  gen.p_loss = 1.0;      // serializer's rarest directives are always covered.
  gen.p_churn = 1.0;     // Likewise churn windows and mobility walks: the
  gen.p_mobility = 1.0;  // round trip must carry the dynamic directives too.
  return gen;
}

TEST_P(ScenarioRoundTrip, StructurallyIdenticalAfterParse) {
  const Scenario sc = generate_scenario(GetParam(), eventful());
  const std::string text = serialize_scenario_text(sc);
  const Scenario back = parse_scenario_text(text, sc.name);

  ASSERT_EQ(back.topo.node_count(), sc.topo.node_count());
  EXPECT_EQ(back.topo.tx_range(), sc.topo.tx_range());
  EXPECT_EQ(back.topo.interference_range(), sc.topo.interference_range());
  for (NodeId n = 0; n < sc.topo.node_count(); ++n) {
    EXPECT_EQ(back.topo.position(n).x, sc.topo.position(n).x);
    EXPECT_EQ(back.topo.position(n).y, sc.topo.position(n).y);
    EXPECT_EQ(back.topo.label(n), sc.topo.label(n));
  }

  ASSERT_EQ(back.flow_specs.size(), sc.flow_specs.size());
  for (std::size_t i = 0; i < sc.flow_specs.size(); ++i) {
    EXPECT_EQ(back.flow_specs[i].path, sc.flow_specs[i].path) << "flow " << i;
    EXPECT_EQ(back.flow_specs[i].weight, sc.flow_specs[i].weight) << "flow " << i;
  }

  ASSERT_EQ(back.faults.events().size(), sc.faults.events().size());
  for (std::size_t i = 0; i < sc.faults.events().size(); ++i) {
    const FaultEvent& a = sc.faults.events()[i];
    const FaultEvent& b = back.faults.events()[i];
    EXPECT_EQ(b.kind, a.kind) << "event " << i;
    EXPECT_EQ(b.at_s, a.at_s) << "event " << i;
    EXPECT_EQ(b.node, a.node) << "event " << i;
    EXPECT_EQ(b.peer, a.peer) << "event " << i;
  }
  ASSERT_EQ(back.faults.loss_rules().size(), sc.faults.loss_rules().size());
  for (std::size_t i = 0; i < sc.faults.loss_rules().size(); ++i) {
    EXPECT_EQ(back.faults.loss_rules()[i].a, sc.faults.loss_rules()[i].a);
    EXPECT_EQ(back.faults.loss_rules()[i].b, sc.faults.loss_rules()[i].b);
    EXPECT_EQ(back.faults.loss_rules()[i].per, sc.faults.loss_rules()[i].per);
  }
  EXPECT_EQ(back.faults.default_loss(), sc.faults.default_loss());

  // Churn windows and mobility walks survive bit for bit (the serializer
  // writes %.17g times and full mobility forms for exactly this reason).
  EXPECT_EQ(back.activity, sc.activity);
  EXPECT_EQ(back.mobility, sc.mobility);

  // A second round trip must be byte-stable (fixed point).
  EXPECT_EQ(serialize_scenario_text(back), text);
}

TEST_P(ScenarioRoundTrip, SimulationOfParsedScenarioIsBitIdentical) {
  const Scenario sc = generate_scenario(GetParam(), eventful());
  const Scenario back =
      parse_scenario_text(serialize_scenario_text(sc), sc.name);

  SimConfig cfg;
  cfg.sim_seconds = 1.0;
  cfg.warmup_seconds = 0.5;
  for (Protocol proto :
       {Protocol::k2paDistributed, Protocol::k2paDistributedCtrl}) {
    const RunResult a = run_scenario(sc, proto, cfg);
    const RunResult b = run_scenario(back, proto, cfg);
    EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
    EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
    EXPECT_EQ(a.total_end_to_end, b.total_end_to_end);
    EXPECT_EQ(a.lost_packets, b.lost_packets);
    EXPECT_EQ(a.dropped_queue, b.dropped_queue);
    EXPECT_EQ(a.dropped_mac, b.dropped_mac);
    EXPECT_EQ(a.target_subflow_share, b.target_subflow_share);
    EXPECT_EQ(a.target_flow_share, b.target_flow_share);
    EXPECT_EQ(a.suspended_per_flow, b.suspended_per_flow);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.ctrl, b.ctrl);
    EXPECT_EQ(a.admissions, b.admissions);
    EXPECT_EQ(a.reconv_s, b.reconv_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioRoundTrip,
                         ::testing::Values(3, 11, 25, 117, 168, 1009));

}  // namespace
}  // namespace e2efa
