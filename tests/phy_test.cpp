#include <gtest/gtest.h>

#include <vector>

#include "phy/channel.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

/// Records everything the channel reports.
class RecordingListener : public PhyListener {
 public:
  void on_frame_received(const Frame& f) override { received.push_back(f); }
  void on_frame_corrupted(TimeNs end) override { corrupted.push_back(end); }
  void on_medium_busy() override { ++busy_events; }
  void on_medium_idle() override { ++idle_events; }

  std::vector<Frame> received;
  std::vector<TimeNs> corrupted;
  int busy_events = 0;
  int idle_events = 0;
};

Frame make_frame(FrameType t, NodeId rx, int bytes) {
  Frame f;
  f.type = t;
  f.rx = rx;
  f.bytes = bytes;
  return f;
}

struct ChannelFixture {
  // Chain 0-1-2-3: adjacent nodes in range, two-apart out of range.
  ChannelFixture() : topo(make_chain(4)), ch(sim, topo, 2'000'000) {
    for (NodeId n = 0; n < 4; ++n) ch.attach(n, &listeners[static_cast<std::size_t>(n)]);
  }
  Simulator sim;
  Topology topo;
  Channel ch;
  RecordingListener listeners[4];
};

TEST(Channel, FrameDurationAtTwoMbps) {
  ChannelFixture f;
  // 512 bytes = 4096 bits at 2 Mbps = 2.048 ms.
  EXPECT_EQ(f.ch.frame_duration(512), 2'048'000);
  EXPECT_EQ(f.ch.frame_duration(20), 80'000);
}

TEST(Channel, CleanDeliveryToNeighbors) {
  ChannelFixture f;
  const TimeNs end = f.ch.transmit(1, make_frame(FrameType::kRts, 2, 20));
  EXPECT_EQ(end, 80'000);
  f.sim.run();
  // Nodes 0 and 2 hear it; node 3 is out of range.
  ASSERT_EQ(f.listeners[0].received.size(), 1u);
  ASSERT_EQ(f.listeners[2].received.size(), 1u);
  EXPECT_TRUE(f.listeners[3].received.empty());
  EXPECT_EQ(f.listeners[2].received[0].tx, 1);
  EXPECT_EQ(f.listeners[2].received[0].rx, 2);
  EXPECT_EQ(f.ch.stats().frames_delivered, 2u);
}

TEST(Channel, SenderDoesNotHearItself) {
  ChannelFixture f;
  f.ch.transmit(1, make_frame(FrameType::kRts, 2, 20));
  f.sim.run();
  EXPECT_TRUE(f.listeners[1].received.empty());
}

TEST(Channel, OverlappingTransmissionsCollideAtCommonReceiver) {
  ChannelFixture f;
  // 0 and 2 are hidden from each other; both reach 1.
  f.ch.transmit(0, make_frame(FrameType::kData, 1, 500));
  f.sim.run_until(100'000);  // mid-flight
  f.ch.transmit(2, make_frame(FrameType::kData, 1, 500));
  f.sim.run();
  EXPECT_TRUE(f.listeners[1].received.empty());
  EXPECT_GE(f.listeners[1].corrupted.size(), 1u);
  EXPECT_GE(f.ch.stats().frames_corrupted, 1u);
}

TEST(Channel, SameInstantTransmissionsCollide) {
  ChannelFixture f;
  f.ch.transmit(0, make_frame(FrameType::kData, 1, 500));
  f.ch.transmit(2, make_frame(FrameType::kData, 1, 500));
  f.sim.run();
  EXPECT_TRUE(f.listeners[1].received.empty());
}

TEST(Channel, NonOverlappingBothDelivered) {
  ChannelFixture f;
  f.ch.transmit(0, make_frame(FrameType::kData, 1, 100));
  f.sim.run();  // first finishes
  f.ch.transmit(2, make_frame(FrameType::kData, 1, 100));
  f.sim.run();
  EXPECT_EQ(f.listeners[1].received.size(), 2u);
  EXPECT_TRUE(f.listeners[1].corrupted.empty());
}

TEST(Channel, HiddenTransmitterUnaffected) {
  ChannelFixture f;
  // 0 -> 1 while 3 -> 2: 3's frame is clean at 2? Node 2 hears both 1 (no,
  // 1 is receiving) and 3. Only 3 transmits toward 2 besides 0's frame,
  // which does not reach 2... 0-2 distance is 400 m: out of range. So 2
  // decodes 3's frame cleanly.
  f.ch.transmit(0, make_frame(FrameType::kData, 1, 500));
  f.ch.transmit(3, make_frame(FrameType::kData, 2, 500));
  f.sim.run();
  ASSERT_EQ(f.listeners[1].received.size(), 1u);  // 0's frame at 1? 1 also hears...
  ASSERT_EQ(f.listeners[2].received.size(), 1u);
  EXPECT_EQ(f.listeners[2].received[0].tx, 3);
}

TEST(Channel, ReceiverTransmittingLosesIncomingFrame) {
  ChannelFixture f;
  f.ch.transmit(1, make_frame(FrameType::kData, 2, 500));
  f.sim.run_until(10'000);
  // 0 transmits toward 1 while 1 is mid-transmission: 1 cannot decode.
  f.ch.transmit(0, make_frame(FrameType::kData, 1, 100));
  f.sim.run();
  for (const Frame& fr : f.listeners[1].received) EXPECT_NE(fr.tx, 0);
}

TEST(Channel, DoubleTransmitAsserts) {
  ChannelFixture f;
  f.ch.transmit(1, make_frame(FrameType::kData, 2, 500));
  EXPECT_THROW(f.ch.transmit(1, make_frame(FrameType::kRts, 0, 20)), ContractViolation);
}

TEST(Channel, MediumBusyDuringTransmission) {
  ChannelFixture f;
  EXPECT_FALSE(f.ch.medium_busy(0));
  f.ch.transmit(1, make_frame(FrameType::kData, 2, 500));
  EXPECT_TRUE(f.ch.medium_busy(0));  // 0 hears 1
  EXPECT_TRUE(f.ch.medium_busy(1));  // own transmission
  EXPECT_TRUE(f.ch.medium_busy(2));
  EXPECT_FALSE(f.ch.medium_busy(3));  // out of range
  f.sim.run();
  for (NodeId n = 0; n < 4; ++n) EXPECT_FALSE(f.ch.medium_busy(n));
}

TEST(Channel, BusyIdleCallbacksBalanced) {
  ChannelFixture f;
  f.ch.transmit(1, make_frame(FrameType::kData, 2, 500));
  f.sim.run();
  f.ch.transmit(2, make_frame(FrameType::kData, 1, 200));
  f.sim.run();
  EXPECT_EQ(f.listeners[0].busy_events, 1);  // hears only node 1
  EXPECT_EQ(f.listeners[0].idle_events, 1);
  EXPECT_EQ(f.listeners[1].busy_events, 2);
  EXPECT_EQ(f.listeners[1].idle_events, 2);
}

TEST(Channel, IdleDuringSemantics) {
  ChannelFixture f;
  f.ch.transmit(1, make_frame(FrameType::kData, 2, 500));  // 2ms + header
  const TimeNs end = f.ch.frame_duration(500);
  f.sim.run();
  EXPECT_EQ(f.sim.now(), end);
  // At exactly the end instant, [end - X, end) overlapped the transmission.
  EXPECT_FALSE(f.ch.idle_during(0, end - 1000));
  f.sim.schedule_at(end + 50'000, [] {});
  f.sim.run();
  // Window starting at the busy period's end is idle.
  EXPECT_TRUE(f.ch.idle_during(0, end));
  EXPECT_TRUE(f.ch.idle_during(0, end + 1000));
}

TEST(Channel, IdleDuringSameInstantStart) {
  ChannelFixture f;
  f.sim.schedule_at(100'000, [&] {
    f.ch.transmit(0, make_frame(FrameType::kData, 1, 100));
    // From node 2's perspective nothing is audible (0 out of range), but
    // node 1 sees a busy period starting exactly now: a same-instant
    // idle_during query over a window ending now must still pass.
    EXPECT_TRUE(f.ch.idle_during(1, 100'000 - 20'000));
  });
  f.sim.run();
}

TEST(Channel, InterferenceOnlyNodeSensesButCannotDecode) {
  // tx 250 m / interference 450 m: node 2 at 400 m from node 0 senses
  // energy but never receives.
  Simulator sim;
  Topology topo({{0, 0}, {200, 0}, {400, 0}}, 250.0, 450.0);
  Channel ch(sim, topo, 2'000'000);
  RecordingListener l[3];
  for (NodeId n = 0; n < 3; ++n) ch.attach(n, &l[n]);
  ch.transmit(0, make_frame(FrameType::kData, 1, 500));
  EXPECT_TRUE(ch.medium_busy(2));
  sim.run();
  EXPECT_TRUE(l[2].received.empty());
  EXPECT_TRUE(l[2].corrupted.empty());  // nothing was being decoded
  ASSERT_EQ(l[1].received.size(), 1u);
}

TEST(Channel, InterferenceOnlyEnergyCorruptsDecode) {
  // Node 1 decodes node 0; node 2 (interference range of 1, out of tx
  // range) transmits mid-flight and ruins it.
  Simulator sim;
  Topology topo({{0, 0}, {200, 0}, {600, 0}, {800, 0}}, 250.0, 450.0);
  Channel ch(sim, topo, 2'000'000);
  RecordingListener l[4];
  for (NodeId n = 0; n < 4; ++n) ch.attach(n, &l[n]);
  ch.transmit(0, make_frame(FrameType::kData, 1, 500));
  sim.run_until(100'000);
  ch.transmit(2, make_frame(FrameType::kData, 3, 100));
  sim.run();
  EXPECT_TRUE(l[1].received.empty());
  EXPECT_EQ(l[1].corrupted.size(), 1u);
  // Node 3 decodes node 2 cleanly (node 0 is far away).
  ASSERT_EQ(l[3].received.size(), 1u);
}

}  // namespace
}  // namespace e2efa
