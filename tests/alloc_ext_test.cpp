// Tests for the allocation extensions: weighted max-min with rate caps
// (footnote 3), the strict-fairness allocator (Prop. 1), and group-aware
// basic shares.
#include <gtest/gtest.h>

#include "alloc/centralized.hpp"
#include "alloc/maxmin.hpp"
#include "alloc/strict_fair.hpp"
#include "alloc/two_tier.hpp"
#include "net/scenarios.hpp"
#include "topology/builders.hpp"

namespace e2efa {
namespace {

constexpr double kTol = 1e-6;

struct Built {
  explicit Built(Scenario s)
      : sc(std::move(s)), flows(sc.topo, sc.flow_specs), graph(sc.topo, flows) {}
  Built(Scenario s, const std::vector<std::pair<int, int>>& edges)
      : sc(std::move(s)), flows(sc.topo, sc.flow_specs), graph(flows, edges) {}
  Scenario sc;
  FlowSet flows;
  ContentionGraph graph;
};

// ---------- weighted max-min (flow level) ----------

TEST(MaxMin, Scenario1GreedySources) {
  Built b(scenario1());
  const auto r = maxmin_allocate(b.graph);
  // Water-filling: common level t; constraints 2r1 <= 1, r1 + 2r2 <= 1.
  // Uniform t: 2t <= 1 and 3t <= 1 -> t = 1/3 freezes F2 (and F1 via
  // r1 <= 1 - 2/3 = 1/3 and 2r1 <= 1... F1 can rise to min(1/2, 1-2/3)=1/3).
  EXPECT_NEAR(r.allocation.flow_share[0], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 1.0 / 3.0, kTol);
  EXPECT_FALSE(r.capped[0]);
  EXPECT_FALSE(r.capped[1]);
}

TEST(MaxMin, PentagonUniformHalf) {
  AbstractExample ex = pentagon_example();
  Built b(std::move(ex.scenario), ex.edges);
  const auto r = maxmin_allocate(b.graph);
  for (double s : r.allocation.flow_share) EXPECT_NEAR(s, 0.5, kTol);
}

TEST(MaxMin, RespectsRateCaps) {
  Built b(scenario1());
  // Cap F2 below its uncapped level: surplus flows to F1.
  const auto r = maxmin_allocate(b.graph, {1.0, 0.2});
  EXPECT_NEAR(r.allocation.flow_share[1], 0.2, kTol);
  EXPECT_TRUE(r.capped[1]);
  // F1 then rises to min(1/2 (its clique), 1 - 2*0.2 = 0.6) = 1/2.
  EXPECT_NEAR(r.allocation.flow_share[0], 0.5, kTol);
  EXPECT_FALSE(r.capped[0]);
}

TEST(MaxMin, ZeroCapYieldsZero) {
  Built b(scenario1());
  const auto r = maxmin_allocate(b.graph, {0.0, 1.0});
  EXPECT_NEAR(r.allocation.flow_share[0], 0.0, kTol);
  // F2 alone: r1 + 2r2 <= 1 with r1 = 0 -> 1/2.
  EXPECT_NEAR(r.allocation.flow_share[1], 0.5, kTol);
}

TEST(MaxMin, WeightsScaleLevels) {
  // Single clique, two 1-hop flows with weights 2 and 1: shares 2/3 and 1/3.
  Scenario sc = make_abstract_scenario({1, 1}, {2.0, 1.0});
  Built b(std::move(sc), {{0, 1}});
  const auto r = maxmin_allocate(b.graph);
  EXPECT_NEAR(r.allocation.flow_share[0], 2.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.level[0], r.level[1], kTol);  // same freeze level
}

TEST(MaxMin, SatisfiesCliqueCapacity) {
  for (Scenario sc : {scenario1(), scenario2()}) {
    Built b(std::move(sc));
    const auto r = maxmin_allocate(b.graph);
    EXPECT_TRUE(satisfies_clique_capacity(b.graph, r.allocation.subflow_share, 1e-5));
  }
}

TEST(MaxMin, LexicographicallyAboveBasic) {
  // Max-min dominates the basic share per unit weight (basic is a uniform
  // feasible level; max-min's first level is the maximal uniform level).
  Built b(scenario2());
  const auto r = maxmin_allocate(b.graph);
  const auto basic = basic_shares(b.graph);
  for (FlowId f = 0; f < b.flows.flow_count(); ++f)
    EXPECT_GE(r.allocation.flow_share[f], basic[f] - kTol);
}

TEST(MaxMin, RejectsNegativeCap) {
  Built b(scenario1());
  EXPECT_THROW(maxmin_allocate(b.graph, {-0.1, 0.5}), ContractViolation);
}

// ---------- weighted max-min (subflow level) ----------

TEST(MaxMinSubflows, Scenario1EqualSplit) {
  Built b(scenario1());
  const auto r = maxmin_allocate_subflows(b.graph);
  // Bottleneck clique {F1.2, F2.1, F2.2} caps the common level at 1/3;
  // F1.1 can then rise to 1 - 1/3 = 2/3.
  EXPECT_NEAR(r.allocation.subflow_share[0], 2.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[1], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[2], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[3], 1.0 / 3.0, kTol);
  // End-to-end mins: (1/3, 1/3) — kinder to F1 than the max-total two-tier
  // LP (1/4), matching the near-equal subflow services the paper *measured*
  // for two-tier in Table II.
  EXPECT_NEAR(r.allocation.end_to_end[0], 1.0 / 3.0, kTol);
}

TEST(MaxMinSubflows, LessImbalancedThanTwoTierLp) {
  Built b(scenario1());
  const auto mm = maxmin_allocate_subflows(b.graph);
  const auto tt = two_tier_allocate(b.graph);
  const double mm_imb = mm.allocation.subflow_share[0] / mm.allocation.subflow_share[1];
  const double tt_imb = tt.allocation.subflow_share[0] / tt.allocation.subflow_share[1];
  EXPECT_LT(mm_imb, tt_imb);
}

// ---------- strict fairness (Prop. 1) ----------

TEST(StrictFair, Scenario1) {
  Built b(scenario1());
  const auto r = strict_fair_allocate(b.graph);
  EXPECT_NEAR(r.per_unit_share, 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[0], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 1.0 / 3.0, kTol);
  EXPECT_TRUE(r.schedulable);
  EXPECT_NEAR(r.schedulable_fraction, 1.0, kTol);
}

TEST(StrictFair, PentagonUnachievable) {
  AbstractExample ex = pentagon_example();
  Built b(std::move(ex.scenario), ex.edges);
  const auto r = strict_fair_allocate(b.graph);
  EXPECT_NEAR(r.per_unit_share, 0.5, kTol);
  EXPECT_FALSE(r.schedulable);
  // κ·B/2 schedulable up to κ = 4/5 (i.e. 2B/5 per flow).
  EXPECT_NEAR(r.schedulable_fraction, 0.8, kTol);
}

TEST(StrictFair, WeightedSharesProportional) {
  AbstractExample ex = fig4_example();
  Built b(std::move(ex.scenario), ex.edges);
  const auto r = strict_fair_allocate(b.graph);
  // ω_Ω = 8: shares w_i/8.
  EXPECT_NEAR(r.allocation.flow_share[0], 1.0 / 8.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 2.0 / 8.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[2], 3.0 / 8.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[3], 2.0 / 8.0, kTol);
  EXPECT_NEAR(fairness_residual(b.flows, r.allocation.flow_share), 0.0, kTol);
}

TEST(StrictFair, TotalBelowBasicFairnessOptimum) {
  // The strict constraint can only reduce total effective throughput
  // relative to basic fairness (paper: 2B/3 vs 3B/4 on Fig. 1).
  Built b(scenario1());
  const auto strict = strict_fair_allocate(b.graph);
  const auto basic_opt = centralized_allocate(b.graph);
  EXPECT_LE(strict.allocation.total_effective,
            basic_opt.allocation.total_effective + kTol);
}

// ---------- group-aware basic shares ----------

/// Two copies of the Fig.-1 situation, 100 km apart: two contending groups.
Built two_group_case() {
  // Flows: two 2-hop chains close together (group 1), and the same again
  // far away (group 2), with explicit contention edges inside each copy
  // mirroring Fig. 1(b).
  Scenario sc = make_abstract_scenario({2, 2, 2, 2}, {1, 1, 1, 1}, "two-groups");
  // Subflows: F1.1=0 F1.2=1 F2.1=2 F2.2=3 | F3.1=4 F3.2=5 F4.1=6 F4.2=7.
  return Built(std::move(sc), {{1, 2}, {1, 3}, {5, 6}, {5, 7}});
}

TEST(GroupAware, TwoGroupsDetected) {
  Built b = two_group_case();
  EXPECT_EQ(b.graph.flow_groups().size(), 2u);
}

TEST(GroupAware, BasicSharesPerGroup) {
  Built b = two_group_case();
  // Whole-set denominator would be Σ w v = 8 -> B/8; group-aware is B/4.
  const auto whole = basic_shares(b.flows);
  const auto grouped = basic_shares(b.graph);
  for (double s : whole) EXPECT_NEAR(s, 0.125, kTol);
  for (double s : grouped) EXPECT_NEAR(s, 0.25, kTol);
}

TEST(GroupAware, CentralizedMatchesSingleGroupSolution) {
  // Solving both groups jointly must reproduce the Fig.-1 solution (B/2,
  // B/4) in each copy — no dilution across groups.
  Built b = two_group_case();
  const auto r = centralized_allocate(b.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.allocation.flow_share[0], 0.5, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 0.25, kTol);
  EXPECT_NEAR(r.allocation.flow_share[2], 0.5, kTol);
  EXPECT_NEAR(r.allocation.flow_share[3], 0.25, kTol);
}

TEST(GroupAware, TwoTierMatchesSingleGroupSolution) {
  Built b = two_group_case();
  const auto r = two_tier_allocate(b.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.allocation.subflow_share[0], 0.75, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[1], 0.25, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[4], 0.75, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[5], 0.25, kTol);
}

TEST(GroupAware, SubflowBasicSharesPerGroup) {
  Built b = two_group_case();
  const auto grouped = subflow_basic_shares(b.graph);
  for (double s : grouped) EXPECT_NEAR(s, 0.25, kTol);  // 4 subflows per group
}

TEST(GroupAware, GroupedFairnessCheckStronger) {
  Built b = two_group_case();
  // A vector at the whole-set floor (B/8) passes the weak check but fails
  // the group-aware one.
  const std::vector<double> weak(4, 0.125 + 1e-9);
  EXPECT_TRUE(satisfies_basic_fairness(b.flows, weak));
  EXPECT_FALSE(satisfies_basic_fairness(b.graph, weak));
}

TEST(GroupAware, SingleGroupOverloadsAgree) {
  Built b(scenario2());
  const auto a = basic_shares(b.flows);
  const auto g = basic_shares(b.graph);
  for (FlowId f = 0; f < b.flows.flow_count(); ++f) EXPECT_NEAR(a[f], g[f], kTol);
}

}  // namespace
}  // namespace e2efa
