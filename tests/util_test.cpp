#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace e2efa {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, Uniform01InRange) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(11);
  RunningStat s;
  for (int i = 0; i < 100'000; ++i) s.add(r.uniform01());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng r(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 31ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(r.uniform_u64(bound), bound);
  }
}

TEST(Rng, UniformU64HitsAllResidues) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformI64Inclusive) {
  Rng r(17);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_i64(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(23);
  RunningStat s;
  for (int i = 0; i < 200'000; ++i) s.add(r.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng r(29);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng child = a.split();
  // The child must differ from a fresh copy of the parent stream.
  Rng b(99);
  (void)b.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child() == b()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformBoundZeroThrows) {
  Rng r(1);
  EXPECT_THROW(r.uniform_u64(0), ContractViolation);
}

TEST(Rng, ExponentialNonPositiveMeanThrows) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), ContractViolation);
  EXPECT_THROW(r.exponential(-1.0), ContractViolation);
}

// ---------- RunningStat ----------

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

// ---------- fairness metrics ----------

TEST(Fairness, JainIndexPerfect) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({5, 5, 5, 5}), 1.0);
}

TEST(Fairness, JainIndexWorstCase) {
  // One user hogs everything: index -> 1/n.
  EXPECT_NEAR(jain_fairness_index({1, 0, 0, 0}), 0.25, 1e-12);
}

TEST(Fairness, JainIndexEmptyAndZero) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0, 0}), 1.0);
}

TEST(Fairness, MaxMinRatio) {
  EXPECT_DOUBLE_EQ(max_min_ratio({2, 4, 8}), 4.0);
  EXPECT_DOUBLE_EQ(max_min_ratio({3, 3}), 1.0);
  EXPECT_TRUE(std::isinf(max_min_ratio({0, 1})));
  EXPECT_DOUBLE_EQ(max_min_ratio({}), 1.0);
}

TEST(Fairness, NormalizedByDividesElementwise) {
  const std::vector<double> u = normalized_by({4.0, 9.0}, {2.0, 3.0});
  ASSERT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0], 2.0);
  EXPECT_DOUBLE_EQ(u[1], 3.0);
}

TEST(Fairness, NormalizedByDropsNonPositiveWeights) {
  // A zero target (suspended flow) must not poison the index with an inf.
  const std::vector<double> u = normalized_by({4.0, 7.0, 9.0}, {2.0, 0.0, 3.0});
  ASSERT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0], 2.0);
  EXPECT_DOUBLE_EQ(u[1], 3.0);
}

TEST(Fairness, NormalizedByTruncatesToShorterInput) {
  EXPECT_EQ(normalized_by({1.0, 2.0, 3.0}, {1.0}).size(), 1u);
  EXPECT_TRUE(normalized_by({1.0, 2.0}, {}).empty());
}

TEST(Fairness, WindowedRates) {
  const auto rates = windowed_rates({{10, 20}, {30, 0}}, 2.0);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0][0], 5.0);
  EXPECT_DOUBLE_EQ(rates[0][1], 10.0);
  EXPECT_DOUBLE_EQ(rates[1][0], 15.0);
  EXPECT_DOUBLE_EQ(rates[1][1], 0.0);
}

TEST(Fairness, JainTrajectoryNormalizesByTargets) {
  // Window 0 matches the 2:1 target split exactly -> 1.0; window 1 inverts
  // it -> jain({1, 4}) = 25/34.
  const std::vector<std::vector<std::int64_t>> windows = {{20, 10}, {10, 20}};
  const auto traj = jain_trajectory(windows, {2.0, 1.0});
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj[0], 1.0);
  EXPECT_NEAR(traj[1], 25.0 / 34.0, 1e-12);
}

TEST(Fairness, JainTrajectoryEmptyTargetsUsesRawValues) {
  const std::vector<std::vector<double>> windows = {{5.0, 5.0}, {1.0, 0.0}};
  const auto traj = jain_trajectory(windows, {});
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj[0], 1.0);
  EXPECT_NEAR(traj[1], 0.5, 1e-12);
}

TEST(Fairness, JainTrajectoryScaleInvariant) {
  const std::vector<std::vector<std::int64_t>> counts = {{12, 34}, {56, 7}};
  const auto from_counts = jain_trajectory(counts, {0.5, 0.25});
  const auto from_rates = jain_trajectory(windowed_rates(counts, 2.0), {0.5, 0.25});
  ASSERT_EQ(from_counts.size(), from_rates.size());
  for (std::size_t w = 0; w < from_counts.size(); ++w)
    EXPECT_NEAR(from_counts[w], from_rates[w], 1e-12);
}

TEST(Fairness, PercentileNearestRank) {
  const std::vector<double> xs = {15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 30), 20.0);   // rank ceil(1.5) = 2
  EXPECT_DOUBLE_EQ(percentile(xs, 40), 20.0);   // rank 2 exactly
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 35.0);   // rank ceil(2.5) = 3
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
}

TEST(Fairness, PercentileUnsortedAndEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 50), 5.0);  // sorts internally
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({42}, 95), 42.0);
}

// ---------- strings ----------

TEST(Strings, StrFormat) {
  EXPECT_EQ(strformat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(strformat("%s", ""), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Strings, FormatShareOfB) {
  EXPECT_EQ(format_share_of_b(0.5), "B/2");
  EXPECT_EQ(format_share_of_b(0.75), "3B/4");
  EXPECT_EQ(format_share_of_b(1.0), "B");
  EXPECT_EQ(format_share_of_b(1.0 / 3.0), "B/3");
  EXPECT_EQ(format_share_of_b(0.7), "7B/10");
  EXPECT_EQ(format_share_of_b(0.0), "0");
  EXPECT_EQ(format_share_of_b(2.5), "5B/2");
}

TEST(Strings, FormatShareFallsBackToDecimal) {
  const std::string s = format_share_of_b(0.123456789, 8);
  EXPECT_NE(s.find("0.1235"), std::string::npos);
}

// ---------- TextTable ----------

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| x |"), std::string::npos);
}

// ---------- time ----------

TEST(Time, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(kMillisecond * 1000, kSecond);
  EXPECT_EQ(kMicrosecond * 1000, kMillisecond);
}

TEST(Time, TxDurationExact) {
  // 512-byte frame at 2 Mbps = 4096 bits / 2e6 bps = 2.048 ms.
  EXPECT_EQ(tx_duration(4096, 2'000'000), 2'048'000);
}

TEST(Time, TxDurationRoundsUp) {
  // 1 bit at 3 bps = 333333333.33.. ns -> rounded up.
  EXPECT_EQ(tx_duration(1, 3), 333'333'334);
}

// ---------- contract checks ----------

TEST(Assert, ThrowsWithMessage) {
  try {
    E2EFA_ASSERT_MSG(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"), std::string::npos);
  }
}

TEST(Assert, PassesSilently) {
  EXPECT_NO_THROW(E2EFA_ASSERT(1 + 1 == 2));
}

}  // namespace
}  // namespace e2efa
