// Tests for MAC extensions and edge cases: basic access (no RTS/CTS),
// backoff policies, EIFS/NAV behavior, and forwarding-plane duplicate
// suppression.
#include <gtest/gtest.h>

#include <memory>

#include "mac/backoff.hpp"
#include "mac/dcf_mac.hpp"
#include "net/node_stack.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "sched/fifo_queue.hpp"
#include "sched/tag_scheduler.hpp"
#include "topology/builders.hpp"

namespace e2efa {
namespace {

// ---------- backoff policies ----------

TEST(BebBackoff, WithinWindow) {
  Rng rng(1);
  BebBackoff b(31, 1023);
  for (int retries = 0; retries < 10; ++retries) {
    for (int i = 0; i < 200; ++i) {
      const int v = b.draw_slots(rng, retries, 0);
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 1023);
      if (retries == 0) {
        EXPECT_LE(v, 31);
      }
    }
  }
}

TEST(BebBackoff, WindowDoubles) {
  // Empirically the mean of draws at retries=2 is ~4x the retries=0 mean.
  Rng rng(2);
  BebBackoff b(31, 1023);
  double m0 = 0, m2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) m0 += b.draw_slots(rng, 0, 0);
  for (int i = 0; i < n; ++i) m2 += b.draw_slots(rng, 2, 0);
  EXPECT_NEAR(m2 / m0, (127.0 / 2) / (31.0 / 2), 0.35);
}

TEST(BebBackoff, CapsAtCwMax) {
  Rng rng(3);
  BebBackoff b(31, 255);
  for (int i = 0; i < 500; ++i) EXPECT_LE(b.draw_slots(rng, 12, 0), 255);
}

TEST(BebBackoff, RejectsBadConfig) {
  EXPECT_THROW(BebBackoff(0, 1023), ContractViolation);
  EXPECT_THROW(BebBackoff(31, 15), ContractViolation);
  Rng rng(1);
  BebBackoff b(31, 1023);
  EXPECT_THROW(b.draw_slots(rng, -1, 0), ContractViolation);
}

TEST(TagBackoff, StretchesWithLag) {
  // Scheduler far ahead of its neighbor => Q large => draws reach past
  // CWmin.
  TagScheduler sched({{0, 0.5}}, 10, 2'000'000, /*alpha=*/0.01);
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.subflow = 0;
    p.payload_bytes = 512;
    p.seq = i;
    sched.enqueue(p, 0);
    sched.pop_success(0);
  }
  sched.observe_tag(9, 0.0, 0);  // neighbor stuck at tag 0
  Packet p;
  p.subflow = 0;
  p.payload_bytes = 512;
  sched.enqueue(p, 0);
  ASSERT_GT(sched.q_slots(0), 100.0);

  Rng rng(4);
  TagBackoff b(31, 1023, sched);
  int above_cwmin = 0;
  for (int i = 0; i < 200; ++i) above_cwmin += b.draw_slots(rng, 0, 0) > 31 ? 1 : 0;
  EXPECT_GT(above_cwmin, 100);  // most draws exceed the base window
}

TEST(TagBackoff, NoLagBehavesLikeCwMin) {
  TagScheduler sched({{0, 0.5}}, 10, 2'000'000, 0.01);
  Rng rng(5);
  TagBackoff b(31, 1023, sched);
  for (int i = 0; i < 300; ++i) EXPECT_LE(b.draw_slots(rng, 0, 0), 31);
}

// ---------- basic access (no RTS/CTS) ----------

TEST(BasicAccess, DeliversWithoutRtsCts) {
  Simulator sim;
  Topology topo = make_chain(2);
  Channel channel(sim, topo, 2'000'000);
  Rng master(7);
  FifoQueue q0(50), q1(50);
  BebBackoff b0(31, 1023), b1(31, 1023);
  class Cb : public MacCallbacks {
   public:
    void on_packet_delivered(const Packet& p) override { delivered.push_back(p); }
    void on_packet_sent(const Packet&) override {}
    void on_packet_dropped(const Packet&) override {}
    std::vector<Packet> delivered;
  } cb0, cb1;
  MacConfig cfg;
  cfg.use_rts_cts = false;
  DcfMac m0(sim, channel, 0, cfg, q0, b0, cb0, master.split());
  DcfMac m1(sim, channel, 1, cfg, q1, b1, cb1, master.split());

  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.src = 0;
    p.dst = 1;
    p.seq = i;
    p.payload_bytes = 512;
    q0.enqueue(p, 0);
  }
  m0.notify_queue_nonempty();
  sim.run();
  EXPECT_EQ(cb1.delivered.size(), 10u);
  EXPECT_EQ(m0.stats().rts_sent, 0u);   // no handshake frames at all
  EXPECT_EQ(m1.stats().cts_sent, 0u);
  EXPECT_EQ(m0.stats().data_sent, 10u);
  EXPECT_EQ(m1.stats().ack_sent, 10u);
}

TEST(BasicAccess, RunnerOptionWorks) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  cfg.use_rts_cts = false;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  EXPECT_GT(r.total_end_to_end, 0);
}

TEST(BasicAccess, HiddenTerminalWastesMoreAirtime) {
  const Scenario sc = scenario1();
  SimConfig rts, basic;
  rts.sim_seconds = basic.sim_seconds = 20.0;
  basic.use_rts_cts = false;
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, rts);
  const RunResult b = run_scenario(sc, Protocol::k2paCentralized, basic);
  EXPECT_GT(b.channel.bytes_corrupted, a.channel.bytes_corrupted);
}

// ---------- channel corrupted-bytes accounting ----------

TEST(ChannelStats, BytesCorruptedTracked) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  const RunResult r = run_scenario(sc, Protocol::k80211, cfg);
  EXPECT_GT(r.channel.frames_corrupted, 0u);
  EXPECT_GT(r.channel.bytes_corrupted, r.channel.frames_corrupted);  // > 1 B/frame
}

// ---------- forwarding-plane duplicate suppression ----------

struct StackFixture {
  StackFixture()
      : topo(make_chain(3)),
        flows(topo, make_specs()),
        sim(),
        channel(sim, topo, 2'000'000),
        stats(flows) {
    Rng master(1);
    // Node 1 is the relay under test.
    stack = std::make_unique<NodeStack>(
        sim, channel, 1, flows, stats, MacConfig{}, std::make_unique<FifoQueue>(50),
        std::make_unique<BebBackoff>(31, 1023), master.split(), nullptr);
  }
  static std::vector<Flow> make_specs() {
    Flow f;
    f.path = {0, 1, 2};
    return {f};
  }
  Topology topo;
  FlowSet flows;
  Simulator sim;
  Channel channel;
  TrafficStats stats;
  std::unique_ptr<NodeStack> stack;
};

TEST(NodeStack, DuplicateDeliveriesSuppressed) {
  StackFixture fx;
  Packet p;
  p.flow = 0;
  p.hop = 0;
  p.subflow = 0;
  p.seq = 5;
  p.src = 0;
  p.dst = 1;
  p.payload_bytes = 512;
  fx.stack->on_packet_delivered(p);
  fx.stack->on_packet_delivered(p);  // retry duplicate (lost ACK)
  EXPECT_EQ(fx.stats.subflow(0).delivered, 1);
  EXPECT_EQ(fx.stats.subflow(1).enqueued, 1);  // forwarded exactly once
}

TEST(NodeStack, OutOfOrderOldSequenceIgnored) {
  StackFixture fx;
  Packet p;
  p.flow = 0;
  p.hop = 0;
  p.subflow = 0;
  p.src = 0;
  p.dst = 1;
  p.payload_bytes = 512;
  p.seq = 7;
  fx.stack->on_packet_delivered(p);
  p.seq = 3;  // stale
  fx.stack->on_packet_delivered(p);
  EXPECT_EQ(fx.stats.subflow(0).delivered, 1);
}

TEST(NodeStack, WrongDestinationAsserts) {
  StackFixture fx;
  Packet p;
  p.flow = 0;
  p.hop = 0;
  p.subflow = 0;
  p.src = 0;
  p.dst = 2;  // not this stack's node
  EXPECT_THROW(fx.stack->on_packet_delivered(p), ContractViolation);
}

// ---------- window sampling ----------

TEST(WindowSampling, ProducesWindows) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  cfg.sample_interval_seconds = 2.0;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  ASSERT_EQ(r.window_end_to_end.size(), 10u);
  std::int64_t sum = 0;
  for (const auto& w : r.window_end_to_end) {
    ASSERT_EQ(w.size(), 2u);
    sum += w[0] + w[1];
  }
  // Window deltas add up to (nearly) the final totals; the last window
  // boundary coincides with the horizon.
  EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(r.total_end_to_end),
              static_cast<double>(r.total_end_to_end) * 0.02 + 20);
}

TEST(WindowSampling, DisabledByDefault) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 5.0;
  const RunResult r = run_scenario(sc, Protocol::k80211, cfg);
  EXPECT_TRUE(r.window_end_to_end.empty());
}

}  // namespace
}  // namespace e2efa
