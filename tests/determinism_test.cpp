// Determinism regression: the event-engine rewrite (pooled slab + 4-ary
// heap + SBO callbacks + single-event channel completion) must reproduce
// the seed engine's trajectories bit-for-bit. The golden values below were
// captured from the pre-rewrite engine (scenario 1, T = 5 s, seed = 1) for
// all seven protocols; any divergence in event ordering shows up as a
// different packet count somewhere in this table.
//
// Also covers: same-seed reruns are identical in every RunResult field,
// and BatchRunner produces exactly the sequential results regardless of
// thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/batch.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {
namespace {

const Protocol kAllProtocols[] = {
    Protocol::k80211,          Protocol::kTwoTier,
    Protocol::kTwoTierBalanced, Protocol::k2paCentralized,
    Protocol::k2paDistributed,  Protocol::kMaxMin,
    Protocol::k2paStaticCw,     Protocol::k2paDistributedCtrl};

SimConfig golden_config() {
  SimConfig cfg;
  cfg.sim_seconds = 5.0;
  cfg.seed = 1;
  return cfg;
}

struct Golden {
  Protocol protocol;
  std::vector<std::int64_t> delivered_per_subflow;
  std::vector<std::int64_t> end_to_end_per_flow;
  std::int64_t total_end_to_end;
  std::int64_t lost_packets;
  std::int64_t dropped_queue;
  std::int64_t dropped_mac;
  std::uint64_t frames_transmitted;
  std::uint64_t frames_delivered;
  std::uint64_t frames_corrupted;
  std::uint64_t bytes_corrupted;
};

// Captured from the seed engine at commit 877a039 (scenario1, 5 s, seed 1).
const Golden kGolden[] = {
    {Protocol::k80211,
      {1000, 50, 881, 879},
      {50, 879},
      929, 952, 926, 44,
      11925, 19245, 1112, 475664},
    {Protocol::kTwoTier,
      {995, 269, 667, 667},
      {269, 667},
      936, 726, 942, 22,
      11127, 18027, 856, 359706},
    {Protocol::kTwoTierBalanced,
      {933, 354, 600, 599},
      {354, 599},
      953, 580, 910, 24,
      10705, 17474, 790, 334510},
    {Protocol::k2paCentralized,
      {814, 528, 503, 501},
      {528, 501},
      1029, 288, 817, 23,
      10258, 16863, 707, 277362},
    {Protocol::k2paDistributed,
      {737, 450, 545, 544},
      {450, 544},
      994, 288, 888, 19,
      9996, 16546, 715, 297142},
    {Protocol::kMaxMin,
      {763, 434, 610, 605},
      {434, 605},
      1039, 334, 778, 31,
      10482, 17349, 787, 316970},
    {Protocol::k2paStaticCw,
      {1000, 215, 654, 652},
      {215, 652},
      867, 787, 1017, 15,
      10659, 17348, 791, 342654},
};

TEST(Determinism, MatchesSeedEngineGoldens) {
  const Scenario sc = scenario1();
  const SimConfig cfg = golden_config();
  for (const Golden& g : kGolden) {
    SCOPED_TRACE(to_string(g.protocol));
    const RunResult r = run_scenario(sc, g.protocol, cfg);
    EXPECT_EQ(r.delivered_per_subflow, g.delivered_per_subflow);
    EXPECT_EQ(r.end_to_end_per_flow, g.end_to_end_per_flow);
    EXPECT_EQ(r.total_end_to_end, g.total_end_to_end);
    EXPECT_EQ(r.lost_packets, g.lost_packets);
    EXPECT_EQ(r.dropped_queue, g.dropped_queue);
    EXPECT_EQ(r.dropped_mac, g.dropped_mac);
    EXPECT_EQ(r.channel.frames_transmitted, g.frames_transmitted);
    EXPECT_EQ(r.channel.frames_delivered, g.frames_delivered);
    EXPECT_EQ(r.channel.frames_corrupted, g.frames_corrupted);
    EXPECT_EQ(r.channel.bytes_corrupted, g.bytes_corrupted);
  }
}

// Full-field equality, including bitwise-compared doubles: determinism
// means *identical*, not merely close.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
  EXPECT_EQ(a.total_end_to_end, b.total_end_to_end);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_mac, b.dropped_mac);
  EXPECT_EQ(a.loss_ratio, b.loss_ratio);
  EXPECT_EQ(a.has_target, b.has_target);
  EXPECT_EQ(a.target_subflow_share, b.target_subflow_share);
  EXPECT_EQ(a.target_flow_share, b.target_flow_share);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
  EXPECT_EQ(a.channel.frames_delivered, b.channel.frames_delivered);
  EXPECT_EQ(a.channel.frames_corrupted, b.channel.frames_corrupted);
  EXPECT_EQ(a.channel.bytes_corrupted, b.channel.bytes_corrupted);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
  EXPECT_EQ(a.max_delay_s, b.max_delay_s);
  EXPECT_EQ(a.window_end_to_end, b.window_end_to_end);
  EXPECT_EQ(a.epoch_starts_s, b.epoch_starts_s);
  EXPECT_EQ(a.epoch_flow_share, b.epoch_flow_share);
  EXPECT_EQ(a.epoch_lp_status, b.epoch_lp_status);
  EXPECT_EQ(a.suspended_per_flow, b.suspended_per_flow);
  EXPECT_EQ(a.suspended_packets, b.suspended_packets);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.epoch_end_to_end, b.epoch_end_to_end);
  EXPECT_EQ(a.channel.frames_faulted, b.channel.frames_faulted);
  EXPECT_EQ(a.channel.faulted_dead, b.channel.faulted_dead);
  EXPECT_EQ(a.channel.faulted_loss, b.channel.faulted_loss);
  EXPECT_EQ(a.channel.airtime_ns, b.channel.airtime_ns);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.metrics, b.metrics);
  // In-band control plane: counters, wire bytes, and the final applied lane
  // shares (bitwise) must all reproduce.
  EXPECT_EQ(a.ctrl, b.ctrl);
  EXPECT_EQ(a.admissions, b.admissions);
  EXPECT_EQ(a.reconv_s, b.reconv_s);
}

TEST(Determinism, SameSeedSameResultAllProtocols) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 2.0;
  cfg.seed = 7;
  cfg.sample_interval_seconds = 0.5;
  cfg.metrics_period_seconds = 0.5;
  for (Protocol p : kAllProtocols) {
    SCOPED_TRACE(to_string(p));
    const RunResult a = run_scenario(sc, p, cfg);
    const RunResult b = run_scenario(sc, p, cfg);
    expect_identical(a, b);
  }
}

TEST(Determinism, BatchRunnerMatchesSequential) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 2.0;
  cfg.metrics_period_seconds = 0.5;
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};

  std::vector<RunResult> sequential;
  for (std::uint64_t s : seeds) {
    SimConfig c = cfg;
    c.seed = s;
    sequential.push_back(run_scenario(sc, Protocol::k2paCentralized, c));
  }

  for (int jobs : {1, 2, 4}) {
    SCOPED_TRACE(jobs);
    const std::vector<RunResult> batch =
        BatchRunner(jobs).run_seeds(sc, Protocol::k2paCentralized, cfg, seeds);
    ASSERT_EQ(batch.size(), sequential.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      expect_identical(batch[i], sequential[i]);
  }
}

// Fault plans (node crashes, link cuts, lossy channels) draw from a
// dedicated RNG stream derived from the run seed, so a faulted run must be
// just as reproducible as a clean one — sequentially and under BatchRunner
// at any thread count.
TEST(Determinism, FaultPlanRunsAreReproducible) {
  Scenario sc = scenario1();
  sc.faults.node_down(2, 0.6);
  sc.faults.node_up(2, 1.2);
  sc.faults.link_down(0, 1, 0.9);
  sc.faults.link_up(0, 1, 1.4);
  sc.faults.set_default_loss(0.05);

  SimConfig cfg;
  cfg.sim_seconds = 2.0;
  cfg.sample_interval_seconds = 0.5;
  cfg.metrics_period_seconds = 0.5;
  const std::vector<std::uint64_t> seeds = {7, 8, 9};

  for (Protocol p : kAllProtocols) {
    SCOPED_TRACE(to_string(p));
    const RunResult a = run_scenario(sc, p, cfg);
    const RunResult b = run_scenario(sc, p, cfg);
    EXPECT_GT(a.channel.frames_faulted, 0u);
    expect_identical(a, b);
  }

  std::vector<RunResult> sequential;
  for (std::uint64_t s : seeds) {
    SimConfig c = cfg;
    c.seed = s;
    sequential.push_back(run_scenario(sc, Protocol::k2paCentralized, c));
  }
  for (int jobs : {1, 2, 4}) {
    SCOPED_TRACE(jobs);
    const std::vector<RunResult> batch =
        BatchRunner(jobs).run_seeds(sc, Protocol::k2paCentralized, cfg, seeds);
    ASSERT_EQ(batch.size(), sequential.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      expect_identical(batch[i], sequential[i]);
  }
}

TEST(Determinism, BatchRunnerProtocolFanout) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 1.0;
  const std::vector<Protocol> protos(std::begin(kAllProtocols),
                                     std::end(kAllProtocols));
  const std::vector<RunResult> batch =
      BatchRunner(0).run_protocols(sc, protos, cfg);  // 0 = hardware threads
  ASSERT_EQ(batch.size(), protos.size());
  for (std::size_t i = 0; i < protos.size(); ++i) {
    SCOPED_TRACE(to_string(protos[i]));
    expect_identical(batch[i], run_scenario(sc, protos[i], cfg));
  }
}

}  // namespace
}  // namespace e2efa
