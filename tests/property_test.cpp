// Property-based (parameterized) suites: invariants that must hold on
// randomized topologies, flow sets, LPs, and schedules — not just on the
// paper's worked examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "alloc/centralized.hpp"
#include "alloc/distributed.hpp"
#include "alloc/schedulability.hpp"
#include "alloc/two_tier.hpp"
#include "contention/cliques.hpp"
#include "contention/coloring.hpp"
#include "lp/simplex.hpp"
#include "net/runner.hpp"
#include "route/routing.hpp"
#include "sched/tag_scheduler.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace e2efa {
namespace {

constexpr double kTol = 1e-6;

/// Deterministic random network: topology + min-hop flows + contention.
struct RandomCase {
  explicit RandomCase(std::uint64_t seed) {
    Rng rng(seed);
    const int nodes = 10 + static_cast<int>(rng.uniform_u64(8));
    const double side = 200.0 * std::sqrt(static_cast<double>(nodes));
    topo = std::make_unique<Topology>(make_random(nodes, side, side, rng));
    const int nf = 2 + static_cast<int>(rng.uniform_u64(4));
    std::vector<Flow> specs;
    for (int i = 0; i < nf; ++i) {
      NodeId a, b;
      do {
        a = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)));
        b = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)));
      } while (a == b);
      specs.push_back(make_routed_flow(*topo, a, b, 0.5 + 2.0 * rng.uniform01()));
    }
    flows = std::make_unique<FlowSet>(*topo, specs);
    graph = std::make_unique<ContentionGraph>(*topo, *flows);
  }
  std::unique_ptr<Topology> topo;
  std::unique_ptr<FlowSet> flows;
  std::unique_ptr<ContentionGraph> graph;
};

// ---------- allocation invariants on random networks ----------

class RandomNetworkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetworkProperty, MinHopRoutesShortcutFree) {
  RandomCase c(GetParam());
  EXPECT_TRUE(c.flows->all_shortcut_free());
}

TEST_P(RandomNetworkProperty, CentralizedSatisfiesAllConstraints) {
  RandomCase c(GetParam());
  const auto r = centralized_allocate(*c.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_TRUE(satisfies_clique_capacity(*c.graph, r.allocation.subflow_share, 1e-5));
  EXPECT_TRUE(satisfies_basic_fairness(*c.flows, r.allocation.flow_share, 1e-5));
}

TEST_P(RandomNetworkProperty, CentralizedAtLeastBasicTotal) {
  RandomCase c(GetParam());
  const auto r = centralized_allocate(*c.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  double basic_total = 0.0;
  for (double b : basic_shares(*c.flows)) basic_total += b;
  EXPECT_GE(r.allocation.total_effective, basic_total - kTol);
}

TEST_P(RandomNetworkProperty, CentralizedBelowFairnessBoundPerWeight) {
  // Per-unit-weight shares cannot exceed... note: with only *basic*
  // fairness, individual flows may exceed w_i·B/ω_Ω, but no flow can exceed
  // the whole channel, and the equalized allocation respects every clique.
  RandomCase c(GetParam());
  const auto r = centralized_allocate(*c.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  for (double s : r.allocation.flow_share) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0 + kTol);
  }
}

TEST_P(RandomNetworkProperty, TwoTierDominatesCentralizedSingleHop) {
  // Two-tier maximizes total single-hop throughput, so it must be at least
  // the single-hop total of any other feasible allocation — including 2PA's.
  RandomCase c(GetParam());
  const auto tt = two_tier_allocate(*c.graph);
  const auto ce = centralized_allocate(*c.graph);
  ASSERT_EQ(tt.status, LpStatus::kOptimal);
  ASSERT_EQ(ce.status, LpStatus::kOptimal);
  double ce_single = 0.0;
  for (double s : ce.allocation.subflow_share) ce_single += s;
  EXPECT_GE(tt.total_single_hop, ce_single - 1e-5);
}

TEST_P(RandomNetworkProperty, CentralizedDominatesTwoTierEndToEnd) {
  // Conversely 2PA maximizes end-to-end total among equalized allocations;
  // two-tier's end-to-end total can never exceed it. (Two-tier's min-rule
  // end-to-end vector is clique-feasible when equalized downward, so its
  // total is a lower bound for the 2PA LP.)
  RandomCase c(GetParam());
  const auto tt = two_tier_allocate(*c.graph);
  const auto ce = centralized_allocate(*c.graph);
  EXPECT_GE(ce.allocation.total_effective, tt.allocation.total_effective - 1e-5);
}

TEST_P(RandomNetworkProperty, DistributedGuaranteesGlobalBasicShares) {
  RandomCase c(GetParam());
  const auto d = distributed_allocate(*c.topo, *c.flows, *c.graph);
  EXPECT_TRUE(satisfies_basic_fairness(*c.flows, d.allocation.flow_share, 1e-5));
}

TEST_P(RandomNetworkProperty, DistributedLocalSolutionsFeasible) {
  RandomCase c(GetParam());
  const auto d = distributed_allocate(*c.topo, *c.flows, *c.graph);
  for (const LocalProblem& lp : d.locals) {
    if (lp.status != LpStatus::kOptimal) continue;
    for (std::size_t k = 0; k < lp.rows.size(); ++k) {
      double load = 0.0;
      for (std::size_t i = 0; i < lp.vars.size(); ++i)
        load += lp.rows[k][i] * lp.solution[i];
      EXPECT_LE(load, 1.0 + 1e-5);
    }
  }
}

TEST_P(RandomNetworkProperty, DistributedLocalBasicAtLeastGlobal) {
  RandomCase c(GetParam());
  const auto d = distributed_allocate(*c.topo, *c.flows, *c.graph);
  const auto basic = basic_shares(*c.flows);
  for (const LocalProblem& lp : d.locals) {
    const double w = c.flows->flow(lp.flow).weight;
    EXPECT_GE(w * lp.unit_basic, basic[lp.flow] - kTol);
  }
}

TEST_P(RandomNetworkProperty, CliqueLoadLowerBoundsScheduleTime) {
  // Any demand needs at least its maximum clique load of schedule time
  // (clique members are mutually exclusive) — check on the centralized
  // allocation's demand.
  RandomCase c(GetParam());
  const auto ce = centralized_allocate(*c.graph);
  ASSERT_EQ(ce.status, LpStatus::kOptimal);
  const auto sched = check_schedulable(*c.graph, ce.allocation.subflow_share);
  EXPECT_GE(sched.time_needed, max_clique_load(*c.graph, ce.allocation.subflow_share) - 1e-5);
}

TEST_P(RandomNetworkProperty, ScheduleWitnessServesDemand) {
  RandomCase c(GetParam());
  const auto ce = centralized_allocate(*c.graph);
  const auto sched = check_schedulable(*c.graph, ce.allocation.subflow_share);
  std::vector<double> served(static_cast<std::size_t>(c.flows->subflow_count()), 0.0);
  for (const auto& e : sched.schedule)
    for (int v : e.independent_set) served[static_cast<std::size_t>(v)] += e.fraction;
  for (int v = 0; v < c.flows->subflow_count(); ++v)
    EXPECT_GE(served[static_cast<std::size_t>(v)],
              ce.allocation.subflow_share[static_cast<std::size_t>(v)] - 1e-5);
}

TEST_P(RandomNetworkProperty, GreedyColoringProper) {
  RandomCase c(GetParam());
  EXPECT_TRUE(is_proper_coloring(*c.graph, greedy_coloring(*c.graph)));
}

TEST_P(RandomNetworkProperty, CliquesAreCliquesAndMaximal) {
  RandomCase c(GetParam());
  const auto cliques = maximal_cliques(*c.graph);
  for (const auto& q : cliques) {
    for (std::size_t i = 0; i < q.size(); ++i)
      for (std::size_t j = i + 1; j < q.size(); ++j)
        EXPECT_TRUE(c.graph->contend(q[i], q[j]));
    // Maximality: no vertex outside q is adjacent to all of q.
    for (int v = 0; v < c.graph->vertex_count(); ++v) {
      if (std::find(q.begin(), q.end(), v) != q.end()) continue;
      const bool adjacent_to_all = std::all_of(
          q.begin(), q.end(), [&](int u) { return c.graph->contend(u, v); });
      EXPECT_FALSE(adjacent_to_all);
    }
  }
}

TEST_P(RandomNetworkProperty, EveryVertexCoveredBySomeClique) {
  RandomCase c(GetParam());
  const auto cliques = maximal_cliques(*c.graph);
  for (int v = 0; v < c.graph->vertex_count(); ++v) {
    const bool covered = std::any_of(cliques.begin(), cliques.end(), [&](const auto& q) {
      return std::find(q.begin(), q.end(), v) != q.end();
    });
    EXPECT_TRUE(covered);
  }
}

TEST_P(RandomNetworkProperty, FlowGroupsPartitionFlows) {
  RandomCase c(GetParam());
  const auto groups = c.graph->flow_groups();
  std::vector<int> seen(static_cast<std::size_t>(c.flows->flow_count()), 0);
  for (const auto& g : groups)
    for (FlowId f : g) ++seen[static_cast<std::size_t>(f)];
  for (int s : seen) EXPECT_EQ(s, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------- simplex properties on random LPs ----------

class SimplexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexProperty, OptimumFeasibleAndDominatesRandomFeasiblePoints) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.uniform_u64(6));
  const int m = 2 + static_cast<int>(rng.uniform_u64(5));
  LpProblem p(n);
  for (int i = 0; i < n; ++i) p.set_objective(i, rng.uniform(0.1, 2.0));
  std::vector<std::vector<double>> rows;
  for (int k = 0; k < m; ++k) {
    std::vector<double> row(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i < n; ++i)
      if (rng.bernoulli(0.6)) row[static_cast<std::size_t>(i)] = rng.uniform(0.2, 2.0);
    rows.push_back(row);
    p.add_constraint(rows.back(), Relation::kLessEq, rng.uniform(0.5, 3.0));
  }
  // Cap each variable so the LP is bounded.
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<std::size_t>(n), 0.0);
    row[static_cast<std::size_t>(i)] = 1.0;
    p.add_constraint(row, Relation::kLessEq, 5.0);
  }

  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Feasibility of the returned point.
  for (const auto& c : p.constraints()) {
    double lhs = 0.0;
    for (int i = 0; i < n; ++i) lhs += c.coeffs[static_cast<std::size_t>(i)] * s.x[static_cast<std::size_t>(i)];
    EXPECT_LE(lhs, c.rhs + 1e-6);
  }
  for (double x : s.x) EXPECT_GE(x, -1e-9);

  // Optimality vs random feasible points: sample a direction and scale it
  // onto the feasible region (all rhs are positive, so scaled points are
  // always feasible).
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (double& v : x) v = rng.uniform(0.0, 1.0);
    double scale = 1.0;
    for (const auto& c : p.constraints()) {
      double lhs = 0.0;
      for (int i = 0; i < n; ++i) lhs += c.coeffs[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
      if (lhs > 0.0) scale = std::min(scale, c.rhs / lhs);
    }
    double obj = 0.0;
    for (int i = 0; i < n; ++i)
      obj += p.objective()[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)] * scale;
    EXPECT_LE(obj, s.objective + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------- tag scheduler share tracking across share splits ----------

class TagShareProperty
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(TagShareProperty, ServiceProportionalToShares) {
  const auto [c0, c1] = GetParam();
  TagScheduler s({{0, c0}, {1, c1}}, 600, 2'000'000, 1e-4);
  for (int i = 0; i < 600; ++i) {
    Packet p;
    p.payload_bytes = 512;
    p.seq = i;
    p.subflow = 0;
    s.enqueue(p, 0);
    p.subflow = 1;
    s.enqueue(p, 0);
  }
  int n0 = 0, n1 = 0;
  for (int i = 0; i < 400; ++i) (s.pop_success(0).subflow == 0 ? n0 : n1)++;
  const double measured = static_cast<double>(n0) / static_cast<double>(n1);
  EXPECT_NEAR(measured, c0 / c1, 0.12 * c0 / c1);
}

INSTANTIATE_TEST_SUITE_P(Splits, TagShareProperty,
                         ::testing::Values(std::pair{0.5, 0.5}, std::pair{0.5, 0.25},
                                           std::pair{0.6, 0.2}, std::pair{0.7, 0.1},
                                           std::pair{0.4, 0.3}, std::pair{0.25, 0.125}));

// ---------- end-to-end simulation invariants across seeds ----------

class SimSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimSeedProperty, TwoPaShapesHoldAcrossSeeds) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 40.0;
  cfg.seed = GetParam();
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  // Loss stays small and share ratios stay in the right ballpark for any
  // seed, not just the one used in the headline table.
  EXPECT_LT(r.loss_ratio, 0.08);
  const double ratio = static_cast<double>(r.delivered_per_subflow[0]) /
                       static_cast<double>(r.delivered_per_subflow[2]);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.6);
  // Conservation: F2's two hops deliver within queue-capacity of each other.
  EXPECT_LE(std::llabs(r.delivered_per_subflow[2] - r.delivered_per_subflow[3]), 50);
}

TEST_P(SimSeedProperty, PacketConservationHolds) {
  const Scenario sc = scenario2();
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  cfg.seed = GetParam();
  for (Protocol p : {Protocol::k80211, Protocol::k2paDistributed}) {
    const RunResult r = run_scenario(sc, p, cfg);
    FlowSet flows(sc.topo, sc.flow_specs);
    // Along every flow, deliveries are non-increasing per hop, and adjacent
    // hops differ by at most drops + in-flight queue backlog.
    for (FlowId f = 0; f < flows.flow_count(); ++f) {
      for (int h = 1; h < flows.flow(f).length(); ++h) {
        const auto up = r.delivered_per_subflow[static_cast<std::size_t>(flows.subflow_index(f, h - 1))];
        const auto down = r.delivered_per_subflow[static_cast<std::size_t>(flows.subflow_index(f, h))];
        EXPECT_LE(down, up);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSeedProperty, ::testing::Values(3, 7, 31, 127, 8191));

}  // namespace
}  // namespace e2efa
