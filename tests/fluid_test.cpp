#include <gtest/gtest.h>

#include "alloc/centralized.hpp"
#include "net/fluid.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {
namespace {

constexpr std::int64_t kBps = 2'000'000;
constexpr int kCwMin = 31;
constexpr int kPayload = 512;

TEST(Fluid, PerPacketAirtimeRtsCts) {
  MacConfig mac;
  // DIFS 50 + mean backoff 310 + RTS 80 + SIFS 10 + CTS 56 + SIFS 10 +
  // DATA (564 B = 2256) + SIFS 10 + ACK 56 = 2838 µs.
  EXPECT_EQ(per_packet_airtime(kPayload, mac, kBps, kCwMin), 2838 * kMicrosecond);
}

TEST(Fluid, PerPacketAirtimeBasicAccess) {
  MacConfig mac;
  mac.use_rts_cts = false;
  // Drops RTS + CTS + 2 SIFS = 156 µs.
  EXPECT_EQ(per_packet_airtime(kPayload, mac, kBps, kCwMin), 2682 * kMicrosecond);
}

TEST(Fluid, EffectiveRateInverse) {
  MacConfig mac;
  EXPECT_NEAR(effective_packet_rate(kPayload, mac, kBps, kCwMin), 1e6 / 2838.0, 0.1);
}

TEST(Fluid, BottleneckPropagatesDownstream) {
  const Scenario sc = scenario1();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);
  const auto alloc = centralized_allocate(graph).allocation;
  MacConfig mac;
  const auto p = fluid_predict(flows, alloc, /*pps=*/200.0, kPayload, mac, kBps, kCwMin);
  // Both hops of each flow have equal shares: no internal loss at all.
  EXPECT_NEAR(p.loss_rate, 0.0, 1e-9);
  // F1 at share 1/2: 176 pkt/s < 200 offered.
  EXPECT_NEAR(p.flow_rate[0], 0.5 * 1e6 / 2838.0, 0.1);
  EXPECT_NEAR(p.flow_rate[1], 0.25 * 1e6 / 2838.0, 0.1);
}

TEST(Fluid, SourceLimitedFlowServesOfferedLoad) {
  const Scenario sc = scenario1();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);
  const auto alloc = centralized_allocate(graph).allocation;
  MacConfig mac;
  // Offered 100 pkt/s < both capacities: everything delivered.
  const auto p = fluid_predict(flows, alloc, 100.0, kPayload, mac, kBps, kCwMin);
  EXPECT_NEAR(p.flow_rate[0], 100.0, 1e-9);
  EXPECT_NEAR(p.loss_rate, 0.0, 1e-9);
}

TEST(Fluid, ImbalancedSharesPredictRelayLoss) {
  const Scenario sc = scenario1();
  FlowSet flows(sc.topo, sc.flow_specs);
  // Two-tier style imbalance: upstream 3/4, downstream 1/4.
  const Allocation alloc =
      make_subflow_allocation(flows, {0.75, 0.25, 0.375, 0.375});
  MacConfig mac;
  const auto p = fluid_predict(flows, alloc, 200.0, kPayload, mac, kBps, kCwMin);
  // First hop serves min(200, 264) = 200; second min(200, 88) = 88.
  EXPECT_NEAR(p.subflow_rate[0], 200.0, 0.5);
  EXPECT_NEAR(p.subflow_rate[1], 0.25 * 1e6 / 2838.0, 0.1);
  EXPECT_GT(p.loss_rate, 100.0);
}

TEST(Fluid, PacketSimTracksPredictionRatios) {
  // The packet simulator's flow-rate *ratios* match the fluid oracle's
  // within 15% on scenario 2; absolute levels sit at 65-105% of ideal.
  const Scenario sc = scenario2();
  FlowSet flows(sc.topo, sc.flow_specs);
  SimConfig cfg;
  cfg.sim_seconds = 60.0;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const Allocation alloc = make_subflow_allocation(flows, r.target_subflow_share);
  MacConfig mac;
  const auto p = fluid_predict(flows, alloc, cfg.cbr_pps, cfg.payload_bytes, mac,
                               cfg.channel_bps, cfg.cw_min);
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    const double measured = static_cast<double>(r.end_to_end_per_flow[f]) / 60.0;
    const double frac = measured / p.flow_rate[f];
    EXPECT_GT(frac, 0.6) << "flow " << f;
    EXPECT_LT(frac, 1.07) << "flow " << f;
  }
  const double m0 = static_cast<double>(r.end_to_end_per_flow[0]);
  const double m1 = static_cast<double>(r.end_to_end_per_flow[1]);
  EXPECT_NEAR(m0 / m1, p.flow_rate[0] / p.flow_rate[1], 0.15);
}

TEST(Fluid, BasicAccessRaisesIdealRate) {
  MacConfig rts, basic;
  basic.use_rts_cts = false;
  EXPECT_GT(effective_packet_rate(kPayload, basic, kBps, kCwMin),
            effective_packet_rate(kPayload, rts, kBps, kCwMin));
}

TEST(Fluid, RejectsBadInputs) {
  MacConfig mac;
  EXPECT_THROW(per_packet_airtime(0, mac, kBps, kCwMin), ContractViolation);
  EXPECT_THROW(per_packet_airtime(512, mac, 0, kCwMin), ContractViolation);
  const Scenario sc = scenario1();
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);
  const auto alloc = centralized_allocate(graph).allocation;
  EXPECT_THROW(fluid_predict(flows, alloc, 0.0, 512, mac, kBps, kCwMin),
               ContractViolation);
}

}  // namespace
}  // namespace e2efa
