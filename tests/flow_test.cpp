#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "net/scenarios.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

TEST(VirtualLength, PaperDefinition) {
  EXPECT_EQ(virtual_length(1), 1);
  EXPECT_EQ(virtual_length(2), 2);
  EXPECT_EQ(virtual_length(3), 3);
  EXPECT_EQ(virtual_length(4), 3);
  EXPECT_EQ(virtual_length(10), 3);
}

TEST(VirtualLength, RejectsNonPositive) {
  EXPECT_THROW(virtual_length(0), ContractViolation);
}

class FlowSetTest : public ::testing::Test {
 protected:
  Topology topo_ = make_chain(6);  // 0-1-2-3-4-5
};

TEST_F(FlowSetTest, BuildsSubflowsInOrder) {
  Flow f;
  f.path = {0, 1, 2, 3};
  f.weight = 2.0;
  FlowSet fs(topo_, {f});
  ASSERT_EQ(fs.flow_count(), 1);
  ASSERT_EQ(fs.subflow_count(), 3);
  for (int h = 0; h < 3; ++h) {
    const Subflow& s = fs.subflow(fs.subflow_index(0, h));
    EXPECT_EQ(s.flow, 0);
    EXPECT_EQ(s.hop, h);
    EXPECT_EQ(s.src, h);
    EXPECT_EQ(s.dst, h + 1);
    EXPECT_EQ(s.weight, 2.0);
  }
}

TEST_F(FlowSetTest, NamesAreOneBased) {
  Flow f;
  f.path = {0, 1, 2};
  FlowSet fs(topo_, {f});
  EXPECT_EQ(fs.flow(0).name(), "F1");
  EXPECT_EQ(fs.subflow(0).name(), "F1.1");
  EXPECT_EQ(fs.subflow(1).name(), "F1.2");
}

TEST_F(FlowSetTest, AssignsIdsInInsertionOrder) {
  Flow a, b;
  a.path = {0, 1};
  b.path = {3, 4};
  FlowSet fs(topo_, {a, b});
  EXPECT_EQ(fs.flow(0).path.front(), 0);
  EXPECT_EQ(fs.flow(1).path.front(), 3);
  EXPECT_EQ(fs.flow(1).id, 1);
}

TEST_F(FlowSetTest, SourceDestinationLength) {
  Flow f;
  f.path = {1, 2, 3, 4, 5};
  FlowSet fs(topo_, {f});
  EXPECT_EQ(fs.flow(0).source(), 1);
  EXPECT_EQ(fs.flow(0).destination(), 5);
  EXPECT_EQ(fs.flow(0).length(), 4);
  EXPECT_EQ(fs.virtual_length_of(0), 3);
}

TEST_F(FlowSetTest, WeightedVirtualLengthSum) {
  Flow a, b;
  a.path = {0, 1, 2, 3, 4};  // l=4, v=3
  a.weight = 2.0;
  b.path = {5, 4};  // l=1, v=1
  b.weight = 3.0;
  FlowSet fs(topo_, {a, b});
  EXPECT_DOUBLE_EQ(fs.weighted_virtual_length_sum(), 2.0 * 3 + 3.0 * 1);
}

TEST_F(FlowSetTest, RejectsBrokenLink) {
  Flow f;
  f.path = {0, 2};  // not in range
  EXPECT_THROW(FlowSet(topo_, {f}), ContractViolation);
}

TEST_F(FlowSetTest, RejectsSingleNodePath) {
  Flow f;
  f.path = {0};
  EXPECT_THROW(FlowSet(topo_, {f}), ContractViolation);
}

TEST_F(FlowSetTest, RejectsRepeatedNode) {
  Flow f;
  f.path = {0, 1, 0};
  EXPECT_THROW(FlowSet(topo_, {f}), ContractViolation);
}

TEST_F(FlowSetTest, RejectsNonPositiveWeight) {
  Flow f;
  f.path = {0, 1};
  f.weight = 0.0;
  EXPECT_THROW(FlowSet(topo_, {f}), ContractViolation);
}

TEST_F(FlowSetTest, RejectsEmptyFlowSet) {
  EXPECT_THROW(FlowSet(topo_, {}), ContractViolation);
}

TEST(FlowShortcut, DetectsShortcut) {
  // Triangle topology: 0-1-2 with 0-2 also in range.
  Topology t({{0, 0}, {200, 0}, {200, 200}}, 300.0);
  Flow f;
  f.path = {0, 1, 2};
  FlowSet fs(t, {f});
  EXPECT_TRUE(fs.has_shortcut(0));
  EXPECT_FALSE(fs.all_shortcut_free());
}

TEST(FlowShortcut, ChainIsShortcutFree) {
  Topology t = make_chain(8);
  Flow f;
  f.path = {0, 1, 2, 3, 4, 5, 6, 7};
  FlowSet fs(t, {f});
  EXPECT_FALSE(fs.has_shortcut(0));
  EXPECT_TRUE(fs.all_shortcut_free());
}

TEST(FlowShortcut, PaperScenariosAreShortcutFree) {
  for (Scenario sc : {scenario1(), scenario2()}) {
    FlowSet fs(sc.topo, sc.flow_specs);
    EXPECT_TRUE(fs.all_shortcut_free()) << sc.name;
  }
}

TEST(FlowSetScenario, Scenario2FlowShapes) {
  Scenario sc = scenario2();
  FlowSet fs(sc.topo, sc.flow_specs);
  ASSERT_EQ(fs.flow_count(), 5);
  EXPECT_EQ(fs.flow(0).length(), 4);
  EXPECT_EQ(fs.flow(1).length(), 1);
  EXPECT_EQ(fs.flow(2).length(), 1);
  EXPECT_EQ(fs.flow(3).length(), 2);
  EXPECT_EQ(fs.flow(4).length(), 1);
  EXPECT_EQ(fs.subflow_count(), 9);
  // Σ w_j v_j = 3+1+1+2+1 = 8 (paper's B/8 basic share).
  EXPECT_DOUBLE_EQ(fs.weighted_virtual_length_sum(), 8.0);
}

}  // namespace
}  // namespace e2efa
