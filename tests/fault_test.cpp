// Fault injection & self-healing: node crashes partition flows (which must
// suspend, not crash the run), scheduled recoveries re-discover routes and
// re-converge the phase-1 allocation, link faults trigger route repair over
// the surviving topology, lossy channels degrade-but-deliver, and an
// over-constrained clique makes phase 1 throw instead of silently relaxing.
// Every faulted run must also be byte-identical across reruns and across
// BatchRunner thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lp/simplex.hpp"
#include "net/batch.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

// Full-field equality, bitwise on doubles: faulted runs must be identical,
// not merely close.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
  EXPECT_EQ(a.total_end_to_end, b.total_end_to_end);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_mac, b.dropped_mac);
  EXPECT_EQ(a.loss_ratio, b.loss_ratio);
  EXPECT_EQ(a.has_target, b.has_target);
  EXPECT_EQ(a.target_subflow_share, b.target_subflow_share);
  EXPECT_EQ(a.target_flow_share, b.target_flow_share);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
  EXPECT_EQ(a.channel.frames_delivered, b.channel.frames_delivered);
  EXPECT_EQ(a.channel.frames_corrupted, b.channel.frames_corrupted);
  EXPECT_EQ(a.channel.bytes_corrupted, b.channel.bytes_corrupted);
  EXPECT_EQ(a.channel.frames_faulted, b.channel.frames_faulted);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
  EXPECT_EQ(a.max_delay_s, b.max_delay_s);
  EXPECT_EQ(a.window_end_to_end, b.window_end_to_end);
  EXPECT_EQ(a.epoch_starts_s, b.epoch_starts_s);
  EXPECT_EQ(a.epoch_flow_share, b.epoch_flow_share);
  EXPECT_EQ(a.epoch_lp_status, b.epoch_lp_status);
  EXPECT_EQ(a.suspended_per_flow, b.suspended_per_flow);
  EXPECT_EQ(a.suspended_packets, b.suspended_packets);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.epoch_end_to_end, b.epoch_end_to_end);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.ctrl, b.ctrl);
}

/// 3-node chain A-B-C with one flow A->B->C. Crashing B partitions the flow
/// outright: there is no repair route.
Scenario chain_scenario() {
  Scenario sc{"chain3", make_chain(3), {}, {}};
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, 2));
  return sc;
}

/// Diamond A-B-D / A-C-D (no A-D, no B-C link): the provisioned route runs
/// through B and C is a physically redundant relay for route repair.
Scenario diamond_scenario() {
  Scenario sc{"diamond",
              Topology({{0, 0}, {200, 150}, {200, -150}, {400, 0}}, 250.0),
              {},
              {}};
  sc.topo.set_labels({"A", "B", "C", "D"});
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, 3));
  return sc;
}

// The acceptance scenario: a mid-run relay crash partitions the flow, which
// suspends (no simulator crash, sources suppressed and counted); after the
// scheduled recovery the route is re-discovered and the re-converged
// allocation is back within 5% of the fault-free share.
TEST(Fault, NodeCrashSuspendsThenHeals) {
  Scenario sc = chain_scenario();
  sc.faults.node_down(1, 10.0);
  sc.faults.node_up(1, 30.0);

  SimConfig cfg;
  cfg.sim_seconds = 50.0;
  cfg.seed = 5;

  Scenario clean = chain_scenario();
  const RunResult base = run_scenario(clean, Protocol::k2paCentralized, cfg);
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);

  // Epochs at t = 0, crash, recovery; phase 1 re-solved at each.
  ASSERT_EQ(r.epoch_starts_s, (std::vector<double>{0.0, 10.0, 30.0}));
  ASSERT_EQ(r.epoch_flow_share.size(), 3u);
  ASSERT_EQ(r.epoch_lp_status.size(), 3u);
  for (LpStatus s : r.epoch_lp_status) EXPECT_EQ(s, LpStatus::kOptimal);

  // Partitioned epoch: zero share, source suppressed (~200 pps x 20 s).
  EXPECT_EQ(r.epoch_flow_share[1][0], 0.0);
  EXPECT_GT(r.suspended_per_flow[0], 3500);
  EXPECT_EQ(r.suspended_packets, r.suspended_per_flow[0]);
  // At most a handful of in-flight packets can land after the crash.
  EXPECT_LE(r.epoch_end_to_end[1][0], 5);

  // Re-converged allocation within 5% of the fault-free share (and the
  // pre-fault epoch gets exactly the fault-free allocation).
  ASSERT_TRUE(r.has_target && base.has_target);
  EXPECT_DOUBLE_EQ(r.epoch_flow_share[0][0], base.target_flow_share[0]);
  EXPECT_NEAR(r.epoch_flow_share[2][0], base.target_flow_share[0],
              0.05 * base.target_flow_share[0]);

  // The disruption is healed by the first delivery after the recovery.
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.recoveries[0].flow, 0);
  EXPECT_DOUBLE_EQ(r.recoveries[0].fault_s, 10.0);
  EXPECT_GT(r.recoveries[0].recovered_s, 30.0);
  EXPECT_LT(r.recoveries[0].recovered_s, 31.0);

  // Post-recovery goodput back to the fault-free per-second rate (the last
  // epoch spans 20 of the 50 fault-free seconds).
  const double clean_rate =
      static_cast<double>(base.total_end_to_end) / cfg.sim_seconds;
  EXPECT_NEAR(static_cast<double>(r.epoch_end_to_end[2][0]), clean_rate * 20.0,
              0.10 * clean_rate * 20.0);

  // Byte-identical rerun.
  expect_identical(r, run_scenario(sc, Protocol::k2paCentralized, cfg));
}

// The acceptance determinism clause: a faulted run is bit-identical across
// BatchRunner thread counts.
TEST(Fault, BatchRunnerMatchesSequentialUnderFaults) {
  Scenario sc = chain_scenario();
  sc.faults.node_down(1, 3.0);
  sc.faults.node_up(1, 6.0);
  sc.faults.set_default_loss(0.02);

  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  const std::vector<std::uint64_t> seeds = {5, 6, 7};

  std::vector<RunResult> sequential;
  for (std::uint64_t s : seeds) {
    SimConfig c = cfg;
    c.seed = s;
    sequential.push_back(run_scenario(sc, Protocol::k2paCentralized, c));
  }
  for (int jobs : {1, 2, 4}) {
    SCOPED_TRACE(jobs);
    const std::vector<RunResult> batch =
        BatchRunner(jobs).run_seeds(sc, Protocol::k2paCentralized, cfg, seeds);
    ASSERT_EQ(batch.size(), sequential.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      expect_identical(batch[i], sequential[i]);
  }
}

// Crashing the provisioned relay of the diamond re-routes the flow over the
// surviving path through C instead of suspending it.
TEST(Fault, RouteRepairUsesSurvivingPath) {
  Scenario sc = diamond_scenario();
  ASSERT_EQ(sc.flow_specs[0].path, (std::vector<NodeId>{0, 1, 3}));
  sc.faults.node_down(1, 10.0);

  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  cfg.seed = 11;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);

  // Never suspended: the repair route keeps the flow in service.
  EXPECT_EQ(r.suspended_packets, 0);
  ASSERT_EQ(r.epoch_end_to_end.size(), 2u);
  EXPECT_GT(r.epoch_end_to_end[1][0], 500);

  // Sim flow set = provisioned A-B-D (subflows 0,1) + repair A-C-D (2,3);
  // the repair variant carried real traffic.
  ASSERT_EQ(r.delivered_per_subflow.size(), 4u);
  EXPECT_GT(r.delivered_per_subflow[2], 0);
  EXPECT_GT(r.delivered_per_subflow[3], 0);

  // Route repair is fast: well under a second from fault to first delivery.
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_DOUBLE_EQ(r.recoveries[0].fault_s, 10.0);
  EXPECT_LT(r.recoveries[0].recovered_s, 11.0);
}

// Tentpole acceptance: crash the diamond's provisioned relay under the
// in-band protocol. For 2pa-dctrl the runner never pushes oracle shares
// into the schedulers — at the fault epoch it only tells the agents which
// subflows are now (in)active. The agents must drop the dead neighbor via
// HELLO staleness, re-exchange knowledge over the surviving topology,
// re-solve at the source, and RATE-update the schedulers, settling the
// applied shares onto the surviving-topology oracle (the runner's masked
// solve, recorded as the last epoch's target) with no out-of-band re-solve.
TEST(Fault, InBandReconvergenceAfterRelayCrash) {
  Scenario sc = diamond_scenario();
  sc.faults.node_down(1, 10.0);

  SimConfig cfg;
  cfg.sim_seconds = 30.0;
  cfg.seed = 11;
  const RunResult r = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);

  // The flow re-routed over C and kept delivering.
  EXPECT_EQ(r.suspended_packets, 0);
  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_DOUBLE_EQ(r.recoveries[0].fault_s, 10.0);
  EXPECT_GT(r.epoch_end_to_end[1][0], 500);

  // Surviving-topology oracle: the masked solve of the post-crash epoch.
  ASSERT_EQ(r.epoch_flow_share.size(), 2u);
  const double target = r.epoch_flow_share[1][0];
  ASSERT_GT(target, 0.0);

  // Sim subflows: provisioned A-B-D (0, 1) + repair A-C-D (2, 3). The live
  // repair lanes re-converged in-band to within 5% of the masked oracle,
  // while the dead provisioned lanes sit at the inactive floor.
  ASSERT_EQ(r.ctrl.applied_subflow_share.size(), 4u);
  EXPECT_NEAR(r.ctrl.applied_subflow_share[2], target, 0.05 * target);
  EXPECT_NEAR(r.ctrl.applied_subflow_share[3], target, 0.05 * target);
  EXPECT_LT(r.ctrl.applied_subflow_share[0], 1e-3);
  EXPECT_LT(r.ctrl.applied_subflow_share[1], 1e-3);

  // Converging twice (provisioned route, then repair route) takes at least
  // two source solves and real control traffic both before and after.
  EXPECT_GE(r.ctrl.solves, 2u);
  EXPECT_GT(r.ctrl.ctrl_frames, 0u);

  // Byte-identical rerun, control plane included.
  expect_identical(r, run_scenario(sc, Protocol::k2paDistributedCtrl, cfg));
}

// A link cut (both nodes stay alive) also triggers route repair, and the
// recovery switches the flow back to the provisioned route — each switch is
// a disruption with its own recovery record.
TEST(Fault, LinkCutAndRecovery) {
  Scenario sc = diamond_scenario();
  sc.faults.link_down(0, 1, 8.0);
  sc.faults.link_up(0, 1, 16.0);

  SimConfig cfg;
  cfg.sim_seconds = 24.0;
  cfg.seed = 2;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);

  EXPECT_EQ(r.suspended_packets, 0);
  ASSERT_EQ(r.epoch_starts_s, (std::vector<double>{0.0, 8.0, 16.0}));
  for (const auto& per_flow : r.epoch_end_to_end)
    EXPECT_GT(per_flow[0], 500);

  ASSERT_EQ(r.recoveries.size(), 2u);
  EXPECT_DOUBLE_EQ(r.recoveries[0].fault_s, 8.0);
  EXPECT_LT(r.recoveries[0].recovered_s, 9.0);
  EXPECT_DOUBLE_EQ(r.recoveries[1].fault_s, 16.0);
  EXPECT_LT(r.recoveries[1].recovered_s, 18.0);
}

// Lossy channels corrupt frames per the configured packet-error rate; DCF
// retries absorb moderate loss (degraded goodput, traffic still flows).
TEST(Fault, LossyChannelDegradesButDelivers) {
  Scenario clean = chain_scenario();
  Scenario sc = chain_scenario();
  sc.faults.set_default_loss(0.05);
  sc.faults.set_loss(1, 2, 0.25);  // second hop markedly worse

  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  cfg.seed = 3;
  const RunResult base = run_scenario(clean, Protocol::k80211, cfg);
  const RunResult r = run_scenario(sc, Protocol::k80211, cfg);

  EXPECT_GT(r.channel.frames_faulted, 0u);
  EXPECT_GT(r.total_end_to_end, 0);
  EXPECT_LT(r.total_end_to_end, base.total_end_to_end);
  expect_identical(r, run_scenario(sc, Protocol::k80211, cfg));
}

// Under severe loss the MAC exhausts its retry limit: the drop feeds the
// existing MAC-drop path and the stack reports the link-layer failure.
TEST(Fault, RetryExhaustionReportsLinkFailure) {
  Scenario sc = chain_scenario();
  sc.faults.set_default_loss(0.7);

  SimConfig cfg;
  cfg.sim_seconds = 5.0;
  cfg.seed = 4;
  const RunResult r = run_scenario(sc, Protocol::k80211, cfg);

  EXPECT_GT(r.dropped_mac, 0);
  EXPECT_GT(r.link_failures, 0);
  EXPECT_EQ(r.link_failures, r.dropped_mac);
}

// An over-constrained clique makes the phase-1 LP infeasible (the basic
// shares alone exceed the clique capacity). run_scenario must throw rather
// than silently scale the shares down: 6 mutually-in-range nodes with one
// 5-hop flow through all of them put 5 subflows of basic share B/3 into one
// clique (5 x B/3 > B).
TEST(Fault, InfeasibleCliqueThrows) {
  Scenario sc{"clique6",
              Topology({{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}, {50, 0}},
                       250.0),
              {},
              {}};
  Flow f;
  f.path = {0, 1, 2, 3, 4, 5};
  sc.flow_specs.push_back(f);

  SimConfig cfg;
  cfg.sim_seconds = 1.0;
  EXPECT_THROW(run_scenario(sc, Protocol::k2paCentralized, cfg),
               ContractViolation);
}

// Malformed fault plans are rejected up front, with the run never started.
TEST(Fault, PlanValidationRejectsBadPlans) {
  SimConfig cfg;
  cfg.sim_seconds = 1.0;
  {
    Scenario sc = chain_scenario();
    sc.faults.node_down(7, 1.0);  // unknown node
    EXPECT_THROW(run_scenario(sc, Protocol::k80211, cfg), ContractViolation);
  }
  {
    Scenario sc = chain_scenario();
    sc.faults.node_down(1, -2.0);  // negative time
    EXPECT_THROW(run_scenario(sc, Protocol::k80211, cfg), ContractViolation);
  }
  {
    Scenario sc = chain_scenario();
    sc.faults.set_loss(0, 1, 1.5);  // rate outside [0, 1]
    EXPECT_THROW(run_scenario(sc, Protocol::k80211, cfg), ContractViolation);
  }
  {
    Scenario sc = chain_scenario();
    sc.faults.link_down(1, 1, 0.5);  // degenerate link
    EXPECT_THROW(run_scenario(sc, Protocol::k80211, cfg), ContractViolation);
  }
}

}  // namespace
}  // namespace e2efa
