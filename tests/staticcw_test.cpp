// Tests for the static weighted-CW ablation protocol and ScaledCwBackoff.
#include <gtest/gtest.h>

#include "mac/backoff.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

TEST(ScaledCwBackoff, WindowScalesInverselyWithShare) {
  Rng rng(1);
  ScaledCwBackoff half(31, 1023, 0.5);   // window ~62
  ScaledCwBackoff full(31, 1023, 1.0);   // window 31
  double m_half = 0, m_full = 0;
  for (int i = 0; i < 20000; ++i) {
    m_half += half.draw_slots(rng, 0, 0);
    m_full += full.draw_slots(rng, 0, 0);
  }
  EXPECT_NEAR(m_half / m_full, 2.0, 0.2);
}

TEST(ScaledCwBackoff, CapsAtCwMax) {
  Rng rng(2);
  ScaledCwBackoff tiny(31, 255, 0.01);  // 31/0.01 = 3100 -> capped at 255
  for (int i = 0; i < 500; ++i) EXPECT_LE(tiny.draw_slots(rng, 5, 0), 255);
}

TEST(ScaledCwBackoff, RejectsBadShare) {
  EXPECT_THROW(ScaledCwBackoff(31, 1023, 0.0), ContractViolation);
  EXPECT_THROW(ScaledCwBackoff(31, 1023, 1.5), ContractViolation);
}

TEST(StaticCwProtocol, RunsWithSameTargetsAs2pa) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const RunResult b = run_scenario(sc, Protocol::k2paStaticCw, cfg);
  ASSERT_TRUE(b.has_target);
  EXPECT_EQ(a.target_flow_share, b.target_flow_share);
  EXPECT_GT(b.total_end_to_end, 0);
}

TEST(StaticCwProtocol, TagFeedbackBeatsStaticWindowOnRelayLoss) {
  // The ablation's headline: without the tag feedback loop, upstream and
  // downstream service decouple and the relay overflows.
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 60.0;
  const RunResult tag = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const RunResult fix = run_scenario(sc, Protocol::k2paStaticCw, cfg);
  EXPECT_GT(fix.lost_packets, 10 * tag.lost_packets);
}

}  // namespace
}  // namespace e2efa
