// Tests for dynamic flow churn with per-epoch re-allocation.
#include <gtest/gtest.h>

#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {
namespace {

constexpr double kTol = 1e-6;

TEST(Dynamic, AlwaysOnActivityMatchesStaticRun) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const RunResult b = run_scenario(sc, Protocol::k2paCentralized, cfg,
                                   {FlowActivity{}, FlowActivity{}});
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
}

TEST(Dynamic, EpochSharesRecomputed) {
  // F2 joins at t = 30: F1 alone gets B/2 (its 2-hop chain), then the
  // Fig.-1 allocation (1/2, 1/4) once F2 contends.
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 60.0;
  const std::vector<FlowActivity> act{{0.0, 1e300}, {30.0, 1e300}};
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg, act);
  ASSERT_EQ(r.epoch_starts_s.size(), 2u);
  EXPECT_DOUBLE_EQ(r.epoch_starts_s[0], 0.0);
  EXPECT_DOUBLE_EQ(r.epoch_starts_s[1], 30.0);
  EXPECT_NEAR(r.epoch_flow_share[0][0], 0.5, kTol);
  EXPECT_NEAR(r.epoch_flow_share[0][1], 0.0, kTol);  // inactive
  EXPECT_NEAR(r.epoch_flow_share[1][0], 0.5, kTol);
  EXPECT_NEAR(r.epoch_flow_share[1][1], 0.25, kTol);
}

TEST(Dynamic, LateFlowDeliversOnlyAfterStart) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 60.0;
  cfg.sample_interval_seconds = 5.0;
  const std::vector<FlowActivity> act{{0.0, 1e300}, {30.0, 1e300}};
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg, act);
  ASSERT_EQ(r.window_end_to_end.size(), 12u);
  // Windows before t = 30: F2 silent; after: flowing.
  for (std::size_t w = 0; w < 5; ++w) EXPECT_EQ(r.window_end_to_end[w][1], 0);
  for (std::size_t w = 7; w < 12; ++w) EXPECT_GT(r.window_end_to_end[w][1], 0);
}

TEST(Dynamic, DepartedFlowFreesBandwidth) {
  // F2 leaves at t = 30: F1's windowed rate should rise afterwards (it
  // re-gains the whole bottleneck clique).
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 60.0;
  cfg.sample_interval_seconds = 5.0;
  const std::vector<FlowActivity> act{{0.0, 1e300}, {0.0, 30.0}};
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg, act);
  // Mean F1 window rate in [5, 30) vs [35, 60).
  double before = 0, after = 0;
  for (std::size_t w = 1; w < 6; ++w) before += static_cast<double>(r.window_end_to_end[w][0]);
  for (std::size_t w = 7; w < 12; ++w) after += static_cast<double>(r.window_end_to_end[w][0]);
  EXPECT_GT(after, before * 1.15);
  // F2 sources nothing after it stops; only its queued backlog (at most
  // two 50-deep queues plus in-flight) drains out, slowly, under the
  // epsilon share.
  std::int64_t tail_f2 = 0;
  for (std::size_t w = 7; w < 12; ++w) tail_f2 += r.window_end_to_end[w][1];
  EXPECT_LE(tail_f2, 105);
}

TEST(Dynamic, WorksFor80211) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  const std::vector<FlowActivity> act{{0.0, 10.0}, {5.0, 1e300}};
  const RunResult r = run_scenario(sc, Protocol::k80211, cfg, act);
  EXPECT_FALSE(r.has_target);
  EXPECT_GT(r.end_to_end_per_flow[0], 0);
  EXPECT_GT(r.end_to_end_per_flow[1], 0);
  // F1 sourced ~10 s * 200 pkt/s at most.
  EXPECT_LE(r.delivered_per_subflow[0], 2000);
}

TEST(Dynamic, DistributedReallocates) {
  const Scenario sc = scenario2();
  SimConfig cfg;
  cfg.sim_seconds = 30.0;
  std::vector<FlowActivity> act(5);
  act[2] = {10.0, 20.0};  // F3 active only in the middle
  const RunResult r = run_scenario(sc, Protocol::k2paDistributed, cfg, act);
  ASSERT_EQ(r.epoch_starts_s.size(), 3u);
  // Without F3, F2 and F4 gain (F3 was their main contender).
  EXPECT_GT(r.epoch_flow_share[0][1], r.epoch_flow_share[1][1] - kTol);
  EXPECT_NEAR(r.epoch_flow_share[1][2], 0.25, kTol);  // Table-I value mid-run
  EXPECT_NEAR(r.epoch_flow_share[0][2], 0.0, kTol);
}

TEST(Dynamic, RejectsBadActivity) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  EXPECT_THROW(run_scenario(sc, Protocol::k80211, cfg, {FlowActivity{}}),
               ContractViolation);
  EXPECT_THROW(run_scenario(sc, Protocol::k80211, cfg,
                            {FlowActivity{5.0, 2.0}, FlowActivity{}}),
               ContractViolation);
}

TEST(Dynamic, AllFlowsInactiveEpochIsSafe) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 30.0;
  // Nobody active until t = 10.
  const std::vector<FlowActivity> act{{10.0, 1e300}, {20.0, 1e300}};
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg, act);
  EXPECT_GT(r.total_end_to_end, 0);
  EXPECT_NEAR(r.epoch_flow_share[0][0], 0.0, kTol);
  EXPECT_NEAR(r.epoch_flow_share[0][1], 0.0, kTol);
}

}  // namespace
}  // namespace e2efa
