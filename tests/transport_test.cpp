// Elastic transport layer: closed-loop AIMD / BBR sources atop the fair MAC.
//
// Covers the promises the subsystem makes:
//  - the transport oracle accepts a conforming source and flags
//    non-monotone sink ACKs, inflight past cwnd, and retransmissions
//    without loss evidence,
//  - scenario files and the CLI round-trip the transport kind with typed
//    errors for malformed directives,
//  - staggered-start AIMD and BBR flows on the paper's Fig. 1 topology
//    converge to a windowed Jain index >= 0.9 under both allocating
//    protocols (the fairness claim the subsystem exists to demonstrate),
//  - elastic runs are bit-identical across reruns and BatchRunner thread
//    counts, including under churn plus 15% random loss, and a checked
//    run's oracle stream stays clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "net/batch.hpp"
#include "net/cli.hpp"
#include "net/runner.hpp"
#include "net/scenario_file.hpp"
#include "net/scenarios.hpp"
#include "obs/trace_analysis.hpp"
#include "transport/transport.hpp"
#include "util/stats.hpp"

namespace e2efa {
namespace {

// ---------- transport oracle, driven directly ----------

TEST(TransportOracle, ConformingSourcePassesClean) {
  CheckContext check;
  const TimeNs t = kMillisecond;
  check.on_transport_send(0, 0, 1, /*retransmit=*/false, 2.0, t);
  check.on_transport_send(0, 0, 2, /*retransmit=*/false, 2.0, t);
  check.on_transport_cumack(2, 0, 1, 2 * t);
  check.on_transport_ack(0, 0, 1, 3 * t);
  check.on_transport_send(0, 0, 3, /*retransmit=*/false, 2.0, 3 * t);
  EXPECT_TRUE(check.ok()) << check.report();
}

TEST(TransportOracle, SinkCumackMovingBackwardsFlagged) {
  CheckContext check;
  check.on_transport_cumack(2, 0, 5, kMillisecond);
  check.on_transport_cumack(2, 0, 3, 2 * kMillisecond);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations().front().category,
            CheckViolation::Category::kTransport);
}

TEST(TransportOracle, InflightBeyondCwndFlagged) {
  CheckContext check;
  check.on_transport_send(0, 0, 1, false, 2.0, kMillisecond);
  check.on_transport_send(0, 0, 2, false, 2.0, kMillisecond);
  EXPECT_TRUE(check.ok()) << check.report();
  check.on_transport_send(0, 0, 3, false, 2.0, kMillisecond);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations().front().category,
            CheckViolation::Category::kTransport);
}

TEST(TransportOracle, NewSendMustExtendSequenceSpace) {
  CheckContext check;
  check.on_transport_send(0, 0, 4, false, 10.0, kMillisecond);
  check.on_transport_send(0, 0, 4, false, 10.0, 2 * kMillisecond);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations().front().category,
            CheckViolation::Category::kTransport);
}

TEST(TransportOracle, RetransmitWithoutEvidenceFlagged) {
  CheckContext check;
  check.on_transport_send(0, 0, 1, false, 10.0, kMillisecond);
  check.on_transport_send(0, 0, 1, /*retransmit=*/true, 10.0, 2 * kMillisecond);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations().front().category,
            CheckViolation::Category::kTransport);
}

TEST(TransportOracle, DupackEvidenceAdmitsFastRetransmit) {
  CheckContext check;
  const TimeNs t = kMillisecond;
  for (std::int64_t seq = 1; seq <= 4; ++seq)
    check.on_transport_send(0, 0, seq, false, 10.0, t);
  check.on_transport_ack(0, 0, 1, 2 * t);  // advances: resets dupacks
  for (int i = 0; i < 3; ++i) check.on_transport_ack(0, 0, 1, 3 * t);
  check.on_transport_send(0, 0, 2, /*retransmit=*/true, 10.0, 4 * t);
  EXPECT_TRUE(check.ok()) << check.report();
  // The retransmit consumed the evidence; the same hole needs fresh proof.
  check.on_transport_send(0, 0, 2, /*retransmit=*/true, 10.0, 5 * t);
  EXPECT_FALSE(check.ok());
}

TEST(TransportOracle, TimeoutEvidenceAdmitsRetransmit) {
  CheckContext check;
  check.on_transport_send(0, 0, 1, false, 10.0, kMillisecond);
  check.on_transport_timeout(0, 0, 2 * kMillisecond);
  check.on_transport_send(0, 0, 1, /*retransmit=*/true, 10.0,
                          2 * kMillisecond);
  EXPECT_TRUE(check.ok()) << check.report();
}

TEST(TransportOracle, RetransmitOfAckedSequenceFlagged) {
  CheckContext check;
  check.on_transport_send(0, 0, 1, false, 10.0, kMillisecond);
  check.on_transport_ack(0, 0, 1, 2 * kMillisecond);
  check.on_transport_timeout(0, 0, 3 * kMillisecond);
  check.on_transport_send(0, 0, 1, /*retransmit=*/true, 10.0,
                          3 * kMillisecond);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations().front().category,
            CheckViolation::Category::kTransport);
}

// ---------- scenario file + CLI plumbing ----------

constexpr const char* kElasticText = R"(
range 250
node A 0 0
node B 200 0
node C 400 0
transport aimd
flow A B C
)";

TEST(TransportScenarioFile, DirectiveParsesAndRoundTrips) {
  const Scenario sc = parse_scenario_text(kElasticText, "elastic");
  EXPECT_EQ(sc.transport, TransportKind::kAimd);
  const std::string text = serialize_scenario_text(sc);
  EXPECT_NE(text.find("transport aimd"), std::string::npos);
  const Scenario back = parse_scenario_text(text, "back");
  EXPECT_EQ(back.transport, TransportKind::kAimd);
}

TEST(TransportScenarioFile, DefaultCbrOmittedFromSerialization) {
  const std::string text = serialize_scenario_text(scenario1());
  EXPECT_EQ(text.find("transport"), std::string::npos);
}

TEST(TransportScenarioFile, MalformedDirectivesRejected) {
  const std::string base = "range 250\nnode A 0 0\nnode B 200 0\n";
  EXPECT_THROW(parse_scenario_text(base + "transport\nflow A B\n"),
               ContractViolation);
  EXPECT_THROW(parse_scenario_text(base + "transport xtp\nflow A B\n"),
               ContractViolation);
  EXPECT_THROW(
      parse_scenario_text(base + "transport aimd extra\nflow A B\n"),
      ContractViolation);
  EXPECT_THROW(parse_scenario_text(
                   base + "transport aimd\ntransport bbr\nflow A B\n"),
               ContractViolation);
}

TEST(TransportKindNames, RoundTripAndCtrlKindInSync) {
  for (TransportKind k :
       {TransportKind::kCbr, TransportKind::kAimd, TransportKind::kBbr})
    EXPECT_EQ(parse_transport_kind(to_string(k)), k);
  EXPECT_FALSE(parse_transport_kind("reno").has_value());
  // The trace tool must label the new control-frame kind.
  EXPECT_EQ(std::string(ctrl_kind_name(6)), "TRANS_ACK");
}

TEST(TransportCli, FlagParsesAndOverridesScenario) {
  std::string err;
  std::vector<const char*> args{"sim", "--scenario", "1", "--transport", "bbr"};
  const auto opt =
      parse_cli(static_cast<int>(args.size()), args.data(), &err);
  ASSERT_TRUE(opt.has_value()) << err;
  EXPECT_EQ(opt->transport, "bbr");
  Scenario sc = scenario1();
  apply_cli_dynamics(sc, *opt);
  EXPECT_EQ(sc.transport, TransportKind::kBbr);
}

TEST(TransportCli, UnknownKindRejected) {
  std::string err;
  std::vector<const char*> args{"sim", "--transport", "cubic"};
  EXPECT_FALSE(
      parse_cli(static_cast<int>(args.size()), args.data(), &err).has_value());
  EXPECT_NE(err.find("transport"), std::string::npos);
}

// ---------- end-to-end fairness: the subsystem's reason to exist ----------

// Staggered arrivals: F2 joins 10 s after F1, so the controllers must
// surrender bandwidth a greedy start already claimed. Jain is computed
// over *target-normalized* window rates (scenario 1's weighted-fair
// allocation is deliberately 2:1, so raw rates are never equal), averaged
// over the converged tail (the last third of a 90 s run); individual 2 s
// windows may still dip during probe cycles, so the mean is the claim.
double tail_windowed_jain(const Scenario& sc, Protocol proto) {
  SimConfig cfg;
  cfg.sim_seconds = 90.0;
  cfg.sample_interval_seconds = 2.0;
  const RunResult r = run_scenario(sc, proto, cfg);
  const std::size_t n = r.window_end_to_end.size();
  if (n == 0) return 0.0;
  // Staggered runs are multi-epoch: normalize by the final epoch's solve,
  // which is the allocation in force over the tail.
  std::vector<double> targets = r.target_flow_share;
  if (!r.epoch_flow_share.empty()) targets = r.epoch_flow_share.back();
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t w = 2 * n / 3; w < n; ++w) {
    std::vector<double> rates;
    for (std::size_t f = 0; f < r.window_end_to_end[w].size(); ++f)
      rates.push_back(static_cast<double>(r.window_end_to_end[w][f]) /
                      targets[f]);
    sum += jain_fairness_index(rates);
    ++count;
  }
  return sum / static_cast<double>(count);
}

Scenario staggered_scenario1(TransportKind kind) {
  Scenario sc = scenario1();
  sc.transport = kind;
  sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
  sc.activity[1].start_s = 10.0;
  return sc;
}

TEST(TransportFairness, StaggeredAimdConvergesUnderAllocatingProtocols) {
  for (Protocol proto :
       {Protocol::k2paCentralized, Protocol::k2paDistributedCtrl}) {
    SCOPED_TRACE(to_string(proto));
    const double jain =
        tail_windowed_jain(staggered_scenario1(TransportKind::kAimd), proto);
    EXPECT_GE(jain, 0.9);
  }
}

TEST(TransportFairness, StaggeredBbrConvergesUnderAllocatingProtocols) {
  for (Protocol proto :
       {Protocol::k2paCentralized, Protocol::k2paDistributedCtrl}) {
    SCOPED_TRACE(to_string(proto));
    const double jain =
        tail_windowed_jain(staggered_scenario1(TransportKind::kBbr), proto);
    EXPECT_GE(jain, 0.9);
  }
}

// ---------- determinism ----------

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
  EXPECT_EQ(a.total_end_to_end, b.total_end_to_end);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_mac, b.dropped_mac);
  EXPECT_EQ(a.window_end_to_end, b.window_end_to_end);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.transport.acks_sent, b.transport.acks_sent);
  EXPECT_EQ(a.transport.acks_relayed, b.transport.acks_relayed);
  EXPECT_EQ(a.transport.acks_delivered, b.transport.acks_delivered);
  ASSERT_EQ(a.transport.flows.size(), b.transport.flows.size());
  for (std::size_t f = 0; f < a.transport.flows.size(); ++f) {
    EXPECT_EQ(a.transport.flows[f].cwnd, b.transport.flows[f].cwnd);
    EXPECT_EQ(a.transport.flows[f].srtt_s, b.transport.flows[f].srtt_s);
    EXPECT_EQ(a.transport.flows[f].delivery_rate_pps,
              b.transport.flows[f].delivery_rate_pps);
    EXPECT_EQ(a.transport.flows[f].retransmits,
              b.transport.flows[f].retransmits);
    EXPECT_EQ(a.transport.flows[f].timeouts, b.transport.flows[f].timeouts);
  }
}

// Churn plus 15% random loss on every link: the harshest deterministic
// envelope the ACK plane has to survive (lost ACKs, RTOs, backoff).
Scenario hostile_scenario2(TransportKind kind) {
  Scenario sc = scenario2();
  sc.transport = kind;
  sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
  sc.activity[2] = {2.0, 6.0};              // F3 mid-run only
  sc.activity[4] = {3.0, kFlowNeverStops};  // F5 arrives late
  sc.faults.set_default_loss(0.15);
  return sc;
}

TEST(TransportDeterminism, RerunsBitIdenticalUnderChurnAndLoss) {
  for (TransportKind kind : {TransportKind::kAimd, TransportKind::kBbr}) {
    SCOPED_TRACE(to_string(kind));
    const Scenario sc = hostile_scenario2(kind);
    SimConfig cfg;
    cfg.sim_seconds = 8.0;
    cfg.sample_interval_seconds = 1.0;
    cfg.seed = 3;
    const RunResult a = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
    const RunResult b = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
    expect_identical(a, b);
  }
}

TEST(TransportDeterminism, BatchRunnerThreadCountInvariant) {
  const Scenario sc = hostile_scenario2(TransportKind::kAimd);
  SimConfig cfg;
  cfg.sim_seconds = 8.0;
  cfg.sample_interval_seconds = 1.0;
  cfg.seed = 3;
  const std::vector<Protocol> protos{Protocol::k2paCentralized,
                                     Protocol::k2paDistributed,
                                     Protocol::k2paDistributedCtrl};
  const std::vector<RunResult> seq =
      BatchRunner(1).run_protocols(sc, protos, cfg);
  const std::vector<RunResult> par =
      BatchRunner(4).run_protocols(sc, protos, cfg);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE(to_string(protos[i]));
    expect_identical(seq[i], par[i]);
  }
}

TEST(TransportDeterminism, CheckedRunCleanAndTrajectoryUnchanged) {
  for (TransportKind kind : {TransportKind::kAimd, TransportKind::kBbr}) {
    SCOPED_TRACE(to_string(kind));
    Scenario sc = scenario1();
    sc.transport = kind;
    SimConfig cfg;
    cfg.sim_seconds = 15.0;
    const RunResult plain = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
    CheckContext check;
    cfg.check = &check;
    const RunResult checked =
        run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
    EXPECT_TRUE(check.ok()) << check.report();
    expect_identical(plain, checked);
  }
}

// The elastic sources actually close the loop: retransmissions happen under
// loss, and ACKs flow back against the data direction.
TEST(TransportPlumbing, AckPlaneCarriesAcksAndRecoversLoss) {
  Scenario sc = scenario1();
  sc.transport = TransportKind::kAimd;
  sc.faults.set_default_loss(0.1);
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  EXPECT_GT(r.transport.acks_sent, 0u);
  EXPECT_GT(r.transport.acks_relayed, 0u);
  EXPECT_GT(r.transport.acks_delivered, 0u);
  ASSERT_EQ(r.transport.flows.size(), 2u);
  std::int64_t retx = 0;
  for (const TransportTelemetry& t : r.transport.flows) {
    EXPECT_GT(t.cwnd, 0.0);
    EXPECT_GT(t.srtt_s, 0.0);
    retx += t.retransmits;
  }
  EXPECT_GT(retx, 0);
  EXPECT_GT(r.total_end_to_end, 0);
}

}  // namespace
}  // namespace e2efa
