#include <gtest/gtest.h>

#include "sched/fifo_queue.hpp"
#include "sched/tag_scheduler.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

Packet make_packet(std::int32_t subflow, std::int64_t seq, int bytes = 512) {
  Packet p;
  p.subflow = subflow;
  p.seq = seq;
  p.payload_bytes = bytes;
  return p;
}

// ---------- FifoQueue ----------

TEST(FifoQueue, FifoOrder) {
  FifoQueue q(10);
  EXPECT_FALSE(q.has_packet());
  q.enqueue(make_packet(0, 1), 0);
  q.enqueue(make_packet(0, 2), 0);
  EXPECT_EQ(q.head().seq, 1);
  EXPECT_EQ(q.pop_success(0).seq, 1);
  EXPECT_EQ(q.pop_success(0).seq, 2);
  EXPECT_FALSE(q.has_packet());
}

TEST(FifoQueue, DropTailWhenFull) {
  FifoQueue q(2);
  EXPECT_TRUE(q.enqueue(make_packet(0, 1), 0));
  EXPECT_TRUE(q.enqueue(make_packet(0, 2), 0));
  EXPECT_FALSE(q.enqueue(make_packet(0, 3), 0));
  EXPECT_EQ(q.backlog(), 2);
}

TEST(FifoQueue, PopEmptyThrows) {
  FifoQueue q(2);
  EXPECT_THROW(q.pop_success(0), ContractViolation);
  EXPECT_THROW((void)q.head(), ContractViolation);
}

// ---------- TagScheduler ----------

constexpr std::int64_t kBps = 2'000'000;

TEST(TagScheduler, RejectsBadConfig) {
  EXPECT_THROW(TagScheduler({{0, 0.0}}, 10, kBps, 1e-4), ContractViolation);
  EXPECT_THROW(TagScheduler({{0, 0.5}, {0, 0.25}}, 10, kBps, 1e-4), ContractViolation);
  EXPECT_THROW(TagScheduler({{0, 0.5}}, 0, kBps, 1e-4), ContractViolation);
}

TEST(TagScheduler, NodeShareIsSum) {
  TagScheduler s({{0, 0.3}, {1, 0.2}}, 10, kBps, 1e-4);
  EXPECT_DOUBLE_EQ(s.node_share(), 0.5);
}

TEST(TagScheduler, RejectsForeignSubflow) {
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-4);
  EXPECT_THROW(s.enqueue(make_packet(7, 1), 0), ContractViolation);
}

TEST(TagScheduler, PerLaneCapacity) {
  TagScheduler s({{0, 0.5}, {1, 0.5}}, 2, kBps, 1e-4);
  EXPECT_TRUE(s.enqueue(make_packet(0, 1), 0));
  EXPECT_TRUE(s.enqueue(make_packet(0, 2), 0));
  EXPECT_FALSE(s.enqueue(make_packet(0, 3), 0));
  EXPECT_TRUE(s.enqueue(make_packet(1, 1), 0));  // other lane unaffected
  EXPECT_EQ(s.backlog(), 3);
}

TEST(TagScheduler, SelectsSmallestInternalFinishTag) {
  // Shares 0.5 vs 0.25: lane 0's internal finish tag is half of lane 1's,
  // so with equal backlogs lane 0 sends ~2 packets per lane-1 packet.
  TagScheduler s({{0, 0.5}, {1, 0.25}}, 50, kBps, 1e-4);
  for (int i = 0; i < 12; ++i) {
    s.enqueue(make_packet(0, i), 0);
    s.enqueue(make_packet(1, i), 0);
  }
  int lane0 = 0, lane1 = 0;
  for (int i = 0; i < 9; ++i) {
    const Packet p = s.pop_success(0);
    (p.subflow == 0 ? lane0 : lane1)++;
  }
  EXPECT_EQ(lane0, 6);
  EXPECT_EQ(lane1, 3);
}

TEST(TagScheduler, WeightedServiceRatioLongRun) {
  // Shares 3:1 over many packets -> service counts within 5% of 3:1.
  TagScheduler s({{0, 0.6}, {1, 0.2}}, 400, kBps, 1e-4);
  for (int i = 0; i < 400; ++i) {
    s.enqueue(make_packet(0, i), 0);
    s.enqueue(make_packet(1, i), 0);
  }
  int lane0 = 0, lane1 = 0;
  for (int i = 0; i < 200; ++i) (s.pop_success(0).subflow == 0 ? lane0 : lane1)++;
  EXPECT_NEAR(static_cast<double>(lane0) / lane1, 3.0, 0.15);
}

TEST(TagScheduler, HeadStableAcrossEnqueues) {
  // An arrival with a smaller tag must not displace the latched head.
  TagScheduler s({{0, 0.1}, {1, 0.9}}, 10, kBps, 1e-4);
  s.enqueue(make_packet(0, 1), 0);
  const Packet head = s.head();
  EXPECT_EQ(head.subflow, 0);
  s.enqueue(make_packet(1, 1), 0);  // much larger share => smaller I-tag
  EXPECT_EQ(s.head().subflow, 0);  // still the latched head
  s.pop_success(0);
  EXPECT_EQ(s.head().subflow, 1);  // re-selection after pop
}

TEST(TagScheduler, VirtualClockAdvancesByExternalFinishTag) {
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-4);
  s.enqueue(make_packet(0, 1), 0);
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 0.0);
  s.pop_success(0);
  // 512 B = 2048 µs of airtime; node share 0.5 -> E = 4096 µs.
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 4096.0);
  s.enqueue(make_packet(0, 2), 0);
  EXPECT_DOUBLE_EQ(s.head_tag(), 4096.0);  // S = v at head arrival
}

TEST(TagScheduler, DropDoesNotAdvanceClock) {
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-4);
  s.enqueue(make_packet(0, 1), 0);
  s.pop_drop(0);
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 0.0);
}

TEST(TagScheduler, InternalVsExternalTags) {
  // Two lanes 0.25 each -> node share 0.5. For lane 0's head:
  // I = S + 2048/0.25 = 8192, E = S + 2048/0.5 = 4096.
  TagScheduler s({{0, 0.25}, {1, 0.25}}, 10, kBps, 1e-4);
  s.enqueue(make_packet(0, 1), 0);
  s.pop_success(0);
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 4096.0);
}

TEST(TagScheduler, ObserveTagIgnoresOwnSubflows) {
  TagScheduler s({{3, 0.5}}, 10, kBps, 1e-4);
  s.observe_tag(3, 100.0, 0);  // own subflow: not a neighbor entry
  EXPECT_EQ(s.tag_table_size(), 0);
  s.observe_tag(7, 100.0, 0);
  EXPECT_EQ(s.tag_table_size(), 1);
  s.observe_tag(7, 200.0, 0);  // update, not insert
  EXPECT_EQ(s.tag_table_size(), 1);
}

TEST(TagScheduler, QSlotsFollowsPaperFormula) {
  const double alpha = 1e-3;
  TagScheduler s({{0, 0.5}}, 10, kBps, alpha);
  // Enqueue first (empty table => no join synchronization), then learn the
  // neighbors' tags after the grace window: our head keeps S = 0.
  s.enqueue(make_packet(0, 1), 0);
  const TimeNs t = kSecond;  // past the join grace
  s.observe_tag(5, 1000.0, t);
  s.observe_tag(6, 3000.0, t);
  // Q = α · ((0-1000) + (0-3000)) = -4.0 (we are far behind -> negative).
  EXPECT_NEAR(s.q_slots(t), -4.0, 1e-9);
}

TEST(TagScheduler, JoinSynchronizationAdoptsFreshTags) {
  // A node that starts sending after overhearing established neighbors
  // fast-forwards its virtual clock instead of entering with tag 0 (which
  // would throttle the incumbents via their Q estimates).
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-3);
  s.observe_tag(5, 50'000.0, 0);
  s.observe_tag(6, 80'000.0, 0);
  s.enqueue(make_packet(0, 1), kSecond);
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 80'000.0);
  EXPECT_DOUBLE_EQ(s.head_tag(), 80'000.0);
}

TEST(TagScheduler, JoinSynchronizationIgnoresStaleTags) {
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-3, /*tag_horizon=*/kSecond);
  s.observe_tag(5, 50'000.0, 0);
  // Entry is 3 s old at enqueue time: too stale to adopt.
  s.enqueue(make_packet(0, 1), 3 * kSecond);
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 0.0);
}

TEST(TagScheduler, NoResyncWhileContinuouslyBusy) {
  // Past its join grace, a backlogged node must NOT keep jumping its clock
  // to neighbors' tags — that would erase the relative-lag signal fairness
  // relies on.
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-3);
  s.enqueue(make_packet(0, 1), 0);
  const TimeNs t = kSecond;  // past the grace window
  s.observe_tag(5, 99'000.0, t);
  s.enqueue(make_packet(0, 2), t + 100);  // still busy: no sync
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 0.0);
  s.pop_success(t + 300);
  s.pop_success(t + 400);
  // Brief emptiness below the horizon: still no sync.
  s.enqueue(make_packet(0, 3), t + 500);
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 2.0 * 4096.0);
}

TEST(TagScheduler, GraceWindowSyncsEmptyTableJoiner) {
  // A joiner whose table was empty at its first enqueue adopts the first
  // (much larger) overheard clock during the short grace window.
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-3, /*tag_horizon=*/2 * kSecond);
  s.enqueue(make_packet(0, 1), 0);  // join with empty table; grace 250 ms
  s.observe_tag(5, 5'000'000.0, 100 * kMillisecond);
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 5'000'000.0);
  EXPECT_DOUBLE_EQ(s.head_tag(), 5'000'000.0);  // head re-tagged
  // After the grace, larger tags no longer move the clock.
  s.observe_tag(6, 9'000'000.0, kSecond);
  EXPECT_DOUBLE_EQ(s.virtual_clock(), 5'000'000.0);
}

TEST(TagScheduler, StaleEntriesLeaveQ) {
  const double alpha = 1e-3;
  TagScheduler s({{0, 0.5}}, 10, kBps, alpha, /*tag_horizon=*/kSecond);
  s.enqueue(make_packet(0, 1), 0);
  const TimeNs t = kSecond / 2;  // past the grace (125 ms), entry fresh
  s.observe_tag(5, 1000.0, t);
  // Fresh: counted.
  EXPECT_NEAR(s.q_slots(t + kSecond / 2), alpha * (0.0 - 1000.0), 1e-9);
  // Stale: dropped from Q (and from R).
  EXPECT_DOUBLE_EQ(s.q_slots(t + 3 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(s.r_slots_for(5, t + 3 * kSecond), 0.0);
}

TEST(TagScheduler, QSlotsPositiveWhenAhead) {
  const double alpha = 1e-3;
  TagScheduler s({{0, 0.5}}, 10, kBps, alpha);
  // Drain a few packets to advance our clock.
  for (int i = 0; i < 3; ++i) {
    s.enqueue(make_packet(0, i), 0);
    s.pop_success(0);
  }
  // v = 3 * 4096 = 12288.
  s.observe_tag(5, 1000.0, 0);
  s.enqueue(make_packet(0, 9), 0);  // S = 12288
  EXPECT_NEAR(s.q_slots(0), 1e-3 * (12288.0 - 1000.0), 1e-9);
}

TEST(TagScheduler, QZeroWithEmptyTableOrQueue) {
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-3);
  EXPECT_DOUBLE_EQ(s.q_slots(0), 0.0);  // empty queue
  s.enqueue(make_packet(0, 1), 0);
  EXPECT_DOUBLE_EQ(s.q_slots(0), 0.0);  // empty table
}

TEST(TagScheduler, RSlotsFollowsPaperFormula) {
  const double alpha = 1e-3;
  TagScheduler s({{0, 0.5}}, 10, kBps, alpha);
  s.observe_tag(5, 5000.0, 0);  // the data sender's subflow
  s.observe_tag(6, 1000.0, 0);
  s.observe_tag(7, 2000.0, 0);
  // R = α · ((5000-1000) + (5000-2000)) = 7.0.
  EXPECT_NEAR(s.r_slots_for(5, 0), 7.0, 1e-9);
}

TEST(TagScheduler, RUnknownSubflowZero) {
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-3);
  EXPECT_DOUBLE_EQ(s.r_slots_for(42, 0), 0.0);
}

TEST(TagScheduler, StoresAckR) {
  TagScheduler s({{0, 0.5}, {1, 0.5}}, 10, kBps, 1e-3);
  s.enqueue(make_packet(0, 1), 0);
  EXPECT_DOUBLE_EQ(s.head_last_r(), 0.0);
  s.store_ack_r(0, 2.5);
  EXPECT_DOUBLE_EQ(s.head_last_r(), 2.5);
  s.store_ack_r(1, 9.0);  // other subflow's R does not leak to this head
  EXPECT_DOUBLE_EQ(s.head_last_r(), 2.5);
}

TEST(TagScheduler, HeadTagMatchesStartTag) {
  TagScheduler s({{0, 0.5}}, 10, kBps, 1e-4);
  s.enqueue(make_packet(0, 1), 0);
  EXPECT_DOUBLE_EQ(s.head_tag(), 0.0);
  EXPECT_EQ(s.head_subflow(), 0);
}

}  // namespace
}  // namespace e2efa
