// Stress and configuration-sweep tests: larger topologies, alternative
// payloads and offered loads, and engine-level invariants under load.
#include <gtest/gtest.h>

#include "alloc/centralized.hpp"
#include "net/cli.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "phy/channel.hpp"
#include "route/routing.hpp"
#include "sim/simulator.hpp"
#include "topology/builders.hpp"

namespace e2efa {
namespace {

TEST(Stress, EventEngineHundredThousandEvents) {
  Simulator sim;
  std::uint64_t fired = 0;
  Rng rng(9);
  for (int i = 0; i < 100'000; ++i) {
    sim.schedule_at(static_cast<TimeNs>(rng.uniform_u64(1'000'000'000)), [&] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 100'000u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Stress, EventEngineCancellationStorm) {
  Simulator sim;
  Rng rng(10);
  std::vector<Simulator::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 10'000; ++i)
    ids.push_back(sim.schedule_at(i + 1, [&] { ++fired; }));
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) cancelled += sim.cancel(ids[i]) ? 1 : 0;
  sim.run();
  EXPECT_EQ(cancelled, 5000);
  EXPECT_EQ(fired, 5000);
}

TEST(Stress, LongChainEndToEnd) {
  // A 10-hop flow: the allocation stays B/3 and packets actually traverse
  // all ten hops of pipelined MAC exchanges.
  Topology topo = make_chain(11);
  Flow f;
  for (int i = 0; i < 11; ++i) f.path.push_back(i);
  Scenario sc{"chain-10", std::move(topo), {f}, {}};
  SimConfig cfg;
  cfg.sim_seconds = 30.0;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  EXPECT_NEAR(r.target_flow_share[0], 1.0 / 3.0, 1e-6);
  EXPECT_GT(r.end_to_end_per_flow[0], 500);
  // Pipelining: deliveries decrease monotonically along the chain but the
  // last hop still gets most of the first hop's packets.
  EXPECT_GT(r.delivered_per_subflow[9], r.delivered_per_subflow[0] / 2);
}

TEST(Stress, GridWithCrossTraffic) {
  Rng rng(1);
  const Scenario sc = make_named_scenario("grid:4x4", rng);
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  cfg.cbr_pps = 80.0;
  for (Protocol p : {Protocol::k80211, Protocol::k2paDistributed}) {
    const RunResult r = run_scenario(sc, p, cfg);
    EXPECT_GT(r.total_end_to_end, 100) << to_string(p);
    for (std::int64_t v : r.end_to_end_per_flow) EXPECT_GE(v, 0);
  }
}

class PayloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(PayloadSweep, RunnerHandlesPayloadSizes) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 15.0;
  cfg.payload_bytes = GetParam();
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  EXPECT_GT(r.total_end_to_end, 0);
  EXPECT_LT(r.loss_ratio, 0.2);
  // Throughput in bytes should be higher for larger payloads (less
  // per-packet overhead), measured at the bottleneck subflow F1.2.
  // (Only sanity-checked: positive measured share below the target.)
  const double share = r.measured_subflow_share(1, cfg.channel_bps, cfg.payload_bytes);
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.55);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSweep, ::testing::Values(64, 256, 512, 1024, 1500));

class LoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweep, LossStaysLowUnder2paAtAnyOfferedLoad) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  cfg.warmup_seconds = 10.0;  // measure steady state, not the tag transient
  cfg.cbr_pps = GetParam();
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  // 2PA's equalized shares keep in-network loss small whether the sources
  // are far below, at, or far above their allocated rates.
  EXPECT_LT(r.loss_ratio, 0.06) << "pps=" << GetParam();
  // Deliveries never exceed offered load.
  EXPECT_LE(r.end_to_end_per_flow[0],
            static_cast<std::int64_t>(GetParam() * cfg.sim_seconds) + 1);
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweep, ::testing::Values(20.0, 100.0, 200.0, 400.0));

TEST(Stress, ChannelAccountingConsistent) {
  const Scenario sc = scenario2();
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  for (Protocol p : {Protocol::k80211, Protocol::k2paCentralized}) {
    const RunResult r = run_scenario(sc, p, cfg);
    // Every transmitted frame is heard by at most node_count-1 receivers.
    EXPECT_LE(r.channel.frames_delivered + r.channel.frames_corrupted,
              r.channel.frames_transmitted * 13);
    EXPECT_GT(r.channel.frames_delivered, r.channel.frames_corrupted);
  }
}

TEST(Stress, ManyFlowsOneBottleneck) {
  // Six single-hop flows into one shared neighborhood: everyone gets a
  // positive, roughly equal share under 2PA.
  Scenario sc = make_abstract_scenario({1, 1, 1, 1, 1, 1}, {1, 1, 1, 1, 1, 1},
                                       "six-flows");
  // All mutually contending (single clique) — via explicit edges.
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < 6; ++a)
    for (int b = a + 1; b < 6; ++b) edges.emplace_back(a, b);
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(flows, edges);
  const auto cliques = maximal_cliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  // NOTE: the packet simulator derives contention from geometry, so we only
  // check the analytic layer here (the abstract scenario's chains are far
  // apart by construction).
  const auto alloc = centralized_allocate(g);
  ASSERT_EQ(alloc.status, LpStatus::kOptimal);
  for (double s : alloc.allocation.flow_share) EXPECT_NEAR(s, 1.0 / 6.0, 1e-6);
}

TEST(Stress, RandomScenarioAllProtocolsSmoke) {
  Rng rng(33);
  const Scenario sc = make_named_scenario("random:12", rng);
  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  for (Protocol p :
       {Protocol::k80211, Protocol::kTwoTier, Protocol::kTwoTierBalanced,
        Protocol::k2paCentralized, Protocol::k2paDistributed, Protocol::kMaxMin,
        Protocol::k2paStaticCw}) {
    const RunResult r = run_scenario(sc, p, cfg);
    EXPECT_GT(r.total_end_to_end, 0) << to_string(p);
  }
}

}  // namespace
}  // namespace e2efa
