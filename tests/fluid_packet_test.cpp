// Differential test: the packet-level simulator against the fluid-model
// oracle (src/net/fluid.hpp) — the promoted, asserting form of
// bench/fluid_vs_packet. The fluid model documents its accuracy envelope:
// measured goodput lands within a few percent of the prediction on lightly
// loaded networks and at ~65-80% of it on saturated cliques (collisions
// and tag throttling are not in the fluid model); it never legitimately
// *exceeds* the prediction by more than quantization noise.
#include <gtest/gtest.h>

#include "net/fluid.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {
namespace {

FluidPrediction predict(const Scenario& sc, const RunResult& r,
                        const SimConfig& cfg) {
  const FlowSet flows(sc.topo, sc.flow_specs);
  const Allocation alloc = make_subflow_allocation(flows, r.target_subflow_share);
  MacConfig mac;
  mac.retry_limit = cfg.retry_limit;
  mac.use_rts_cts = cfg.use_rts_cts;
  return fluid_predict(flows, alloc, cfg.cbr_pps, cfg.payload_bytes, mac,
                       cfg.channel_bps, cfg.cw_min);
}

TEST(FluidVsPacket, SaturatedPaperScenariosLandInsideTheEnvelope) {
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  cfg.warmup_seconds = 1.0;
  for (const Scenario& sc : {scenario1(), scenario2()}) {
    const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
    const FluidPrediction p = predict(sc, r, cfg);
    const FlowSet flows(sc.topo, sc.flow_specs);
    double measured_total = 0.0;
    for (FlowId f = 0; f < flows.flow_count(); ++f) {
      const double measured =
          static_cast<double>(r.end_to_end_per_flow[f]) / cfg.sim_seconds;
      measured_total += measured;
      ASSERT_GT(p.flow_rate[static_cast<std::size_t>(f)], 0.0);
      const double ratio = measured / p.flow_rate[static_cast<std::size_t>(f)];
      EXPECT_GE(ratio, 0.60) << sc.name << " flow " << f;
      EXPECT_LE(ratio, 1.10) << sc.name << " flow " << f;
    }
    const double total_ratio = measured_total / p.total_flow_rate;
    EXPECT_GE(total_ratio, 0.70) << sc.name;
    EXPECT_LE(total_ratio, 1.05) << sc.name;
  }
}

TEST(FluidVsPacket, LightlyLoadedSingleHopTracksThePredictionClosely) {
  // One 1-hop flow offered well below capacity: the fluid prediction is the
  // offered rate itself and the simulator must deliver essentially all of it.
  Scenario sc{"light", Topology({{0.0, 0.0}, {200.0, 0.0}}, 250.0), {}, {}};
  Flow f;
  f.path = {0, 1};
  sc.flow_specs.push_back(f);

  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  cfg.warmup_seconds = 1.0;
  cfg.cbr_pps = 50.0;  // Far below the ~350 pkt/s single-hop capacity.
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const FluidPrediction p = predict(sc, r, cfg);
  EXPECT_NEAR(p.flow_rate[0], cfg.cbr_pps, 1e-6);
  const double measured =
      static_cast<double>(r.end_to_end_per_flow[0]) / cfg.sim_seconds;
  EXPECT_NEAR(measured, p.flow_rate[0], 0.05 * p.flow_rate[0]);
}

TEST(FluidVsPacket, InterFlowRatiosTrackThePrediction) {
  // The headline claim of the fluid model: even when absolute levels sag
  // under saturation, the *ratios* between flows follow the allocation.
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  cfg.warmup_seconds = 1.0;
  const Scenario sc = scenario1();
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const FluidPrediction p = predict(sc, r, cfg);
  const double measured_ratio =
      static_cast<double>(r.end_to_end_per_flow[0]) /
      static_cast<double>(r.end_to_end_per_flow[1]);
  const double fluid_ratio = p.flow_rate[0] / p.flow_rate[1];
  // scenario1: F1 gets twice F2's share (measured sags to ~0.8 of the
  // predicted 2.0 under saturation but must stay well away from parity).
  EXPECT_GT(measured_ratio, 0.6 * fluid_ratio);
  EXPECT_LT(measured_ratio, 1.4 * fluid_ratio);
}

}  // namespace
}  // namespace e2efa
