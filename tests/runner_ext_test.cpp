// Tests for runner extensions: warm-up windows, delay metrics, and the
// additional protocols (two-tier-mm, maxmin).
#include <gtest/gtest.h>

#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {
namespace {

TEST(Warmup, ExcludesTransient) {
  const Scenario sc = scenario1();
  SimConfig with;
  with.sim_seconds = 20.0;
  with.warmup_seconds = 20.0;
  SimConfig without;
  without.sim_seconds = 40.0;
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, with);
  const RunResult b = run_scenario(sc, Protocol::k2paCentralized, without);
  // Same total horizon; the warmed-up run counts roughly half the packets.
  EXPECT_LT(a.total_end_to_end, b.total_end_to_end);
  EXPECT_GT(a.total_end_to_end, b.total_end_to_end / 3);
  // Steady state is cleaner than the transient: lower loss ratio.
  EXPECT_LE(a.loss_ratio, b.loss_ratio + 1e-9);
}

TEST(Warmup, ZeroWarmupIsDefaultBehavior) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  SimConfig explicit_zero = cfg;
  explicit_zero.warmup_seconds = 0.0;
  const RunResult a = run_scenario(sc, Protocol::k80211, cfg);
  const RunResult b = run_scenario(sc, Protocol::k80211, explicit_zero);
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
}

TEST(Delay, PopulatedAndPositive) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  ASSERT_EQ(r.mean_delay_s.size(), 2u);
  for (FlowId f = 0; f < 2; ++f) {
    EXPECT_GT(r.mean_delay_s[f], 0.0);
    EXPECT_GE(r.max_delay_s[f], r.mean_delay_s[f]);
    // A packet needs at least its per-hop airtime: > 2 ms for 2 hops.
    EXPECT_GT(r.mean_delay_s[f], 0.002);
    // And queues are bounded, so delay is bounded by ~capacity / service.
    EXPECT_LT(r.max_delay_s[f], 30.0);
  }
}

TEST(Delay, StarvedFlowHasLargeDelayUnder80211) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 30.0;
  const RunResult dcf = run_scenario(sc, Protocol::k80211, cfg);
  const RunResult tpa = run_scenario(sc, Protocol::k2paCentralized, cfg);
  // F1 is starved under 802.11: its delivered packets waited far longer
  // than under 2PA.
  EXPECT_GT(dcf.mean_delay_s[0], 2.0 * tpa.mean_delay_s[0]);
}

TEST(TwoTierBalanced, TargetsAreSubflowMaxMin) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  const RunResult r = run_scenario(sc, Protocol::kTwoTierBalanced, cfg);
  ASSERT_TRUE(r.has_target);
  EXPECT_NEAR(r.target_subflow_share[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(r.target_subflow_share[1], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(r.target_subflow_share[2], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(r.target_subflow_share[3], 1.0 / 3.0, 1e-6);
}

TEST(TwoTierBalanced, LosesLessThanLpTwoTier) {
  // The balanced variant's upstream/downstream gap (2/3 vs 1/3) is smaller
  // than the LP variant's (3/4 vs 1/4), so it overflows the relay less —
  // but still an order of magnitude more than 2PA's equalized shares.
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 40.0;
  const RunResult lp = run_scenario(sc, Protocol::kTwoTier, cfg);
  const RunResult mm = run_scenario(sc, Protocol::kTwoTierBalanced, cfg);
  const RunResult tpa = run_scenario(sc, Protocol::k2paCentralized, cfg);
  EXPECT_LT(mm.lost_packets, lp.lost_packets);
  EXPECT_GT(mm.lost_packets, 3 * tpa.lost_packets);
}

TEST(MaxMinProtocol, RunsAndIsFair) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 30.0;
  const RunResult r = run_scenario(sc, Protocol::kMaxMin, cfg);
  ASSERT_TRUE(r.has_target);
  // Max-min on Fig. 1: both flows at B/3 — equal end-to-end service.
  EXPECT_NEAR(r.target_flow_share[0], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(r.target_flow_share[1], 1.0 / 3.0, 1e-6);
  const double ratio = static_cast<double>(r.end_to_end_per_flow[0]) /
                       static_cast<double>(r.end_to_end_per_flow[1]);
  EXPECT_NEAR(ratio, 1.0, 0.25);
  EXPECT_LT(r.loss_ratio, 0.12);
}

TEST(MaxMinProtocol, LowerAnalyticTotalThan2paOnFig1) {
  // Strict equality costs total effective throughput vs basic fairness
  // (2B/3 vs 3B/4 analytically). The *measured* totals are dominated by
  // MAC efficiency and land within a few percent of each other, so the
  // ordering claim is checked on the phase-1 targets.
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 40.0;
  const RunResult mm = run_scenario(sc, Protocol::kMaxMin, cfg);
  const RunResult tpa = run_scenario(sc, Protocol::k2paCentralized, cfg);
  auto total = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
  };
  EXPECT_NEAR(total(mm.target_flow_share), 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(total(tpa.target_flow_share), 3.0 / 4.0, 1e-6);
  // Measured totals stay in the same ballpark.
  const double rel = static_cast<double>(mm.total_end_to_end) /
                     static_cast<double>(tpa.total_end_to_end);
  EXPECT_GT(rel, 0.7);
  EXPECT_LT(rel, 1.3);
}

}  // namespace
}  // namespace e2efa
