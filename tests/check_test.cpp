// Invariant-checking harness (src/check): a correct stack passes every
// oracle on the paper scenarios under all protocols, an installed observer
// never perturbs the trajectory (bit-identical RunResults), and a
// deliberately wrong expectation (queue_capacity_override) is caught —
// proving the oracles actually look at the run.
#include <gtest/gtest.h>

#include <vector>

#include "check/check.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {
namespace {

const Protocol kAllProtocols[] = {
    Protocol::k80211,          Protocol::kTwoTier,
    Protocol::kTwoTierBalanced, Protocol::k2paCentralized,
    Protocol::k2paDistributed,  Protocol::kMaxMin,
    Protocol::k2paStaticCw,     Protocol::k2paDistributedCtrl};

SimConfig short_config() {
  SimConfig cfg;
  cfg.sim_seconds = 5.0;
  cfg.seed = 7;
  return cfg;
}

TEST(CheckTest, CleanOnPaperScenariosAllProtocols) {
  for (const Scenario& sc : {scenario1(), scenario2()}) {
    for (Protocol proto : kAllProtocols) {
      CheckContext check;
      SimConfig cfg = short_config();
      cfg.check = &check;
      run_scenario(sc, proto, cfg);
      EXPECT_TRUE(check.ok()) << sc.name << " / " << to_string(proto) << "\n"
                              << check.report();
    }
  }
}

TEST(CheckTest, CleanUnderFaultsAndLoss) {
  Scenario sc = scenario2();
  sc.faults.node_down(2, 2.0);
  sc.faults.node_up(2, 3.5);
  sc.faults.set_default_loss(0.05);
  for (Protocol proto :
       {Protocol::k80211, Protocol::k2paDistributed, Protocol::k2paDistributedCtrl}) {
    CheckContext check;
    SimConfig cfg = short_config();
    cfg.check = &check;
    run_scenario(sc, proto, cfg);
    EXPECT_TRUE(check.ok()) << to_string(proto) << "\n" << check.report();
  }
}

TEST(CheckTest, CleanInBasicAccessMode) {
  CheckContext check;
  SimConfig cfg = short_config();
  cfg.use_rts_cts = false;
  cfg.check = &check;
  run_scenario(scenario1(), Protocol::k2paDistributed, cfg);
  EXPECT_TRUE(check.ok()) << check.report();
}

TEST(CheckTest, ObserverDoesNotPerturbTheRun) {
  for (Protocol proto : kAllProtocols) {
    const RunResult plain = run_scenario(scenario1(), proto, short_config());
    CheckContext check;
    SimConfig cfg = short_config();
    cfg.check = &check;
    const RunResult checked = run_scenario(scenario1(), proto, cfg);
    EXPECT_EQ(plain.delivered_per_subflow, checked.delivered_per_subflow)
        << to_string(proto);
    EXPECT_EQ(plain.end_to_end_per_flow, checked.end_to_end_per_flow)
        << to_string(proto);
    EXPECT_EQ(plain.total_end_to_end, checked.total_end_to_end) << to_string(proto);
    EXPECT_EQ(plain.dropped_queue, checked.dropped_queue) << to_string(proto);
    EXPECT_EQ(plain.dropped_mac, checked.dropped_mac) << to_string(proto);
    EXPECT_EQ(plain.channel.frames_transmitted, checked.channel.frames_transmitted)
        << to_string(proto);
    EXPECT_EQ(plain.channel.frames_corrupted, checked.channel.frames_corrupted)
        << to_string(proto);
  }
}

// The fuzzer's self-test: expecting a capacity one below the configured one
// makes a *correct* run trip the queue oracle, so a silently broken oracle
// cannot pass the suite.
TEST(CheckTest, CapacityOverrideTripsTheQueueOracle) {
  CheckConfig cc;
  cc.queue_capacity_override = 4;
  CheckContext check(cc);
  SimConfig cfg = short_config();
  cfg.queue_capacity = 5;  // small queues saturate within 5 s at 200 pps
  cfg.check = &check;
  run_scenario(scenario1(), Protocol::k2paDistributed, cfg);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations().front().category,
            CheckViolation::Category::kQueue);
  EXPECT_NE(check.report().find("exceeds capacity 4"), std::string::npos)
      << check.report();
}

TEST(CheckTest, ViolationRecordingIsCapped) {
  CheckConfig cc;
  cc.queue_capacity_override = 1;
  cc.max_violations = 3;
  CheckContext check(cc);
  SimConfig cfg = short_config();
  cfg.check = &check;
  run_scenario(scenario1(), Protocol::k2paDistributed, cfg);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations().size(), 3u);
  EXPECT_GT(check.total_violations(), 3);
  check.clear();
  EXPECT_TRUE(check.ok());
}

TEST(CheckTest, ReusableAcrossRuns) {
  CheckContext check;
  SimConfig cfg = short_config();
  cfg.check = &check;
  run_scenario(scenario1(), Protocol::k2paCentralized, cfg);
  run_scenario(scenario2(), Protocol::k2paDistributed, cfg);
  EXPECT_TRUE(check.ok()) << check.report();
}

}  // namespace
}  // namespace e2efa
