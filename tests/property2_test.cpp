// Second property-test batch: max-min invariants under random rate caps,
// dynamic-run determinism, fluid-model consistency, and strict-fairness
// relations on random networks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "alloc/centralized.hpp"
#include "alloc/distributed.hpp"
#include "alloc/maxmin.hpp"
#include "alloc/strict_fair.hpp"
#include "check/check.hpp"
#include "net/fluid.hpp"
#include "net/runner.hpp"
#include "net/scenario_gen.hpp"
#include "net/scenarios.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"

namespace e2efa {
namespace {

constexpr double kTol = 1e-6;

struct RandomCase {
  explicit RandomCase(std::uint64_t seed) : rng(seed) {
    const int nodes = 9 + static_cast<int>(rng.uniform_u64(6));
    const double side = 200.0 * std::sqrt(static_cast<double>(nodes));
    topo = std::make_unique<Topology>(make_random(nodes, side, side, rng));
    const int nf = 2 + static_cast<int>(rng.uniform_u64(3));
    std::vector<Flow> specs;
    for (int i = 0; i < nf; ++i) {
      NodeId a, b;
      do {
        a = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)));
        b = static_cast<NodeId>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)));
      } while (a == b);
      specs.push_back(make_routed_flow(*topo, a, b, 0.5 + rng.uniform01()));
    }
    flows = std::make_unique<FlowSet>(*topo, specs);
    graph = std::make_unique<ContentionGraph>(*topo, *flows);
  }
  Rng rng;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<FlowSet> flows;
  std::unique_ptr<ContentionGraph> graph;
};

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, CapsAreRespectedAndFeasible) {
  RandomCase c(GetParam());
  std::vector<double> caps;
  for (FlowId f = 0; f < c.flows->flow_count(); ++f)
    caps.push_back(c.rng.uniform(0.05, 0.6));
  const auto r = maxmin_allocate(*c.graph, caps);
  for (FlowId f = 0; f < c.flows->flow_count(); ++f) {
    EXPECT_LE(r.allocation.flow_share[f], caps[static_cast<std::size_t>(f)] + kTol);
    EXPECT_GE(r.allocation.flow_share[f], -kTol);
  }
  EXPECT_TRUE(satisfies_clique_capacity(*c.graph, r.allocation.subflow_share, 1e-5));
}

TEST_P(MaxMinProperty, SlackCapsAreNoOps) {
  // Caps above the whole channel cannot bind: the allocation must match
  // the uncapped one exactly. (Note: *binding* caps can raise other flows'
  // shares — capping a clique hog frees capacity — so no pointwise
  // monotonicity is asserted for tight caps.)
  RandomCase c(GetParam());
  const auto uncapped = maxmin_allocate(*c.graph);
  const std::vector<double> slack(static_cast<std::size_t>(c.flows->flow_count()), 2.0);
  const auto capped = maxmin_allocate(*c.graph, slack);
  for (FlowId f = 0; f < c.flows->flow_count(); ++f) {
    EXPECT_NEAR(capped.allocation.flow_share[f], uncapped.allocation.flow_share[f],
                1e-5);
    EXPECT_FALSE(capped.capped[static_cast<std::size_t>(f)]);
  }
}

TEST_P(MaxMinProperty, UncappedLexicographicallyDominatesBasic) {
  RandomCase c(GetParam());
  const auto r = maxmin_allocate(*c.graph);
  const auto basic = basic_shares(*c.graph);
  for (FlowId f = 0; f < c.flows->flow_count(); ++f)
    EXPECT_GE(r.allocation.flow_share[f], basic[f] - kTol);
}

TEST_P(MaxMinProperty, FrozenLevelsAreNonDecreasingInWeightOrder) {
  // All flows frozen at the same water level or above the first one: the
  // minimum normalized level equals the first freeze level.
  RandomCase c(GetParam());
  const auto r = maxmin_allocate(*c.graph);
  double min_level = 1e300;
  for (double l : r.level) min_level = std::min(min_level, l);
  for (FlowId f = 0; f < c.flows->flow_count(); ++f) {
    const double norm =
        r.allocation.flow_share[f] / c.flows->flow(f).weight;
    EXPECT_GE(norm, min_level - kTol);
  }
}

TEST_P(MaxMinProperty, StrictFairMatchesPropOneOnRandomNets) {
  RandomCase c(GetParam());
  const auto r = strict_fair_allocate(*c.graph);
  EXPECT_NEAR(r.per_unit_share, 1.0 / weighted_clique_number(*c.graph), kTol);
  // Strict-fair total <= centralized basic-fair total.
  const auto ce = centralized_allocate(*c.graph);
  ASSERT_EQ(ce.status, LpStatus::kOptimal);
  EXPECT_LE(r.allocation.total_effective, ce.allocation.total_effective + 1e-5);
  // κ scaling is always in (0, 1].
  EXPECT_GT(r.schedulable_fraction, 0.0);
  EXPECT_LE(r.schedulable_fraction, 1.0 + kTol);
}

TEST_P(MaxMinProperty, FluidPredictionInternallyConsistent) {
  RandomCase c(GetParam());
  const auto ce = centralized_allocate(*c.graph);
  ASSERT_EQ(ce.status, LpStatus::kOptimal);
  MacConfig mac;
  const auto p = fluid_predict(*c.flows, ce.allocation, 150.0, 512, mac, 2'000'000, 31);
  double total = 0.0;
  for (FlowId f = 0; f < c.flows->flow_count(); ++f) {
    // Flow rate equals its last subflow's rate and is the min over hops.
    const int last = c.flows->subflow_index(f, c.flows->flow(f).length() - 1);
    EXPECT_NEAR(p.flow_rate[f], p.subflow_rate[static_cast<std::size_t>(last)], 1e-9);
    for (int h = 0; h < c.flows->flow(f).length(); ++h)
      EXPECT_LE(p.flow_rate[f],
                p.subflow_rate[static_cast<std::size_t>(c.flows->subflow_index(f, h))] + 1e-9);
    EXPECT_LE(p.flow_rate[f], 150.0 + 1e-9);
    total += p.flow_rate[f];
  }
  EXPECT_NEAR(p.total_flow_rate, total, 1e-9);
  // Equalized 2PA shares produce zero predicted in-network loss.
  EXPECT_NEAR(p.loss_rate, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));


// ---------- distributed phase-1 sweep (random weighted topologies) ----------

// What the Sec. IV-B distributed solve *does* guarantee on arbitrary
// topologies, asserted over a 50-seed sweep: every flow keeps the floor its
// own local LP promised (w_i times the local basic unit share, scaled by the
// local relaxation), the global basic floor holds whenever no local
// relaxation was needed (the local unit share can only exceed the global
// one), and the combined shares stay inside the documented clique-load
// envelope. The companion test runs the same sweep through the packet
// simulator under the full invariant oracle for both distributed variants.
class DistributedAllocProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedAllocProperty, FloorAndCliqueEnvelopeHoldOnRandomNets) {
  GenConfig gen;
  gen.p_faults = 0.0;
  gen.p_loss = 0.0;
  const Scenario sc = generate_scenario(GetParam(), gen);
  const FlowSet flows(sc.topo, sc.flow_specs);
  const ContentionGraph graph(sc.topo, flows);
  const DistributedResult r = distributed_allocate(sc.topo, flows, graph);

  EXPECT_LE(max_clique_load(graph, r.allocation.subflow_share),
            kDistributedCliqueEnvelope + kTol);

  const std::vector<double> global_floor = basic_shares(graph);
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    const LocalProblem& lp = r.locals[static_cast<std::size_t>(f)];
    const double local_floor =
        flows.flow(f).weight * lp.unit_basic * lp.min_relaxation;
    EXPECT_GE(r.allocation.flow_share[static_cast<std::size_t>(f)],
              local_floor - kTol)
        << "seed " << GetParam() << " flow " << f;
    if (lp.min_relaxation >= 1.0 - kTol)
      EXPECT_GE(r.allocation.flow_share[static_cast<std::size_t>(f)],
                global_floor[static_cast<std::size_t>(f)] - kTol)
        << "seed " << GetParam() << " flow " << f;
  }
}

TEST_P(DistributedAllocProperty, PacketSimVariantsPassThePhase1Oracle) {
  GenConfig gen;
  gen.p_faults = 0.0;
  gen.p_loss = 0.0;
  const Scenario sc = generate_scenario(GetParam() + 5000, gen);
  for (Protocol proto :
       {Protocol::k2paDistributed, Protocol::k2paDistributedCtrl}) {
    CheckContext check;
    SimConfig cfg;
    cfg.sim_seconds = 0.3;
    cfg.warmup_seconds = 0.2;
    cfg.check = &check;
    const RunResult r = run_scenario(sc, proto, cfg);
    EXPECT_TRUE(r.has_target);
    EXPECT_TRUE(check.ok()) << to_string(proto) << " seed " << GetParam()
                            << "\n" << check.report();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedAllocProperty,
                         ::testing::Range<std::uint64_t>(1, 51));

// ---------- dynamic-run determinism ----------

class DynamicDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicDeterminism, IdenticalConfigsIdenticalResults) {
  const Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 15.0;
  cfg.seed = GetParam();
  const std::vector<FlowActivity> act{{0.0, 1e300}, {5.0, 12.0}};
  const RunResult a = run_scenario(sc, Protocol::k2paDistributed, cfg, act);
  const RunResult b = run_scenario(sc, Protocol::k2paDistributed, cfg, act);
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.epoch_flow_share, b.epoch_flow_share);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicDeterminism, ::testing::Values(1, 42, 777));

}  // namespace
}  // namespace e2efa
