// Observability layer: trace sink (filtering, binary/JSONL round-trips,
// byte-determinism), metrics registry + time series, the offline
// convergence analysis, and the no-perturbation guarantee (tracing must not
// change the simulated trajectory).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "ctrl/messages.hpp"
#include "net/batch.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "route/routing.hpp"
#include "util/time.hpp"

namespace e2efa {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "e2efa_obs_" + name;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------- trace sink ----------

TEST(Trace, RecordsInMemory) {
  TraceSink sink;
  sink.record<TraceCat::kPhy>(from_seconds(1.5), TraceEvent::kFrameTx, 3, 1, 2,
                              512.0, 0.0);
  ASSERT_EQ(sink.records().size(), 1u);
  const TraceRecord& r = sink.records()[0];
  EXPECT_EQ(r.t, from_seconds(1.5));
  EXPECT_EQ(r.event(), TraceEvent::kFrameTx);
  EXPECT_EQ(r.node, 3);
  EXPECT_EQ(r.a, 1);
  EXPECT_EQ(r.b, 2);
  EXPECT_DOUBLE_EQ(r.v0, 512.0);
  EXPECT_EQ(sink.recorded(), 1u);
}

TEST(Trace, RuntimeFilterDropsExcludedCategories) {
  TraceSink sink;
  sink.set_filter(trace_bit(TraceCat::kQueue));
  sink.record<TraceCat::kPhy>(0, TraceEvent::kFrameTx, 0, 0, 0);
  sink.record<TraceCat::kQueue>(0, TraceEvent::kQueueEnqueue, 0, 0, 1);
  // kMeta is always kept: structural records are cheap and every tool
  // needs them.
  sink.record<TraceCat::kMeta>(0, TraceEvent::kRunMeta, -1, 2, 2);
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].event(), TraceEvent::kQueueEnqueue);
  EXPECT_EQ(sink.records()[1].event(), TraceEvent::kRunMeta);
}

TEST(Trace, EveryEventHasACategoryAndName) {
  for (std::uint16_t t = 0; t < kTraceEventCount; ++t) {
    const TraceEvent e = static_cast<TraceEvent>(t);
    EXPECT_NE(std::string(to_string(e)), "");
    EXPECT_NE(trace_bit(trace_category(e)) & kTraceAllCategories, 0u);
  }
}

TEST(Trace, ParseFilter) {
  std::uint32_t mask = 0;
  std::string err;
  ASSERT_TRUE(parse_trace_filter("phy, backoff,queue", &mask, &err)) << err;
  EXPECT_EQ(mask, trace_bit(TraceCat::kMeta) | trace_bit(TraceCat::kPhy) |
                      trace_bit(TraceCat::kBackoff) | trace_bit(TraceCat::kQueue));
  ASSERT_TRUE(parse_trace_filter("all", &mask, &err));
  EXPECT_EQ(mask, kTraceAllCategories);
  // kMeta rides along even when not asked for.
  ASSERT_TRUE(parse_trace_filter("lp", &mask, &err));
  EXPECT_NE(mask & trace_bit(TraceCat::kMeta), 0u);
  EXPECT_FALSE(parse_trace_filter("phy,bogus", &mask, &err));
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(Trace, BinaryRoundTrip) {
  const std::string path = tmp_path("roundtrip.trace");
  std::vector<TraceRecord> written;
  {
    TraceSink sink(/*buffer_records=*/4);  // force mid-run flushes
    std::string err;
    ASSERT_TRUE(sink.open(path, TraceSink::Format::kBinary, &err)) << err;
    for (int i = 0; i < 11; ++i) {
      sink.record<TraceCat::kPhy>(1000 * i, TraceEvent::kFrameRx,
                                  static_cast<std::int16_t>(i), i, i + 1,
                                  0.5 * i, -1.25 * i);
      written.push_back(TraceRecord{1000 * i, static_cast<std::uint16_t>(TraceEvent::kFrameRx),
                                    static_cast<std::int16_t>(i), i, i + 1, 0, 0,
                                    0, 0.5 * i, -1.25 * i});
    }
    sink.close();
  }
  std::vector<TraceRecord> read;
  std::string err;
  ASSERT_TRUE(read_trace(path, &read, &err)) << err;
  EXPECT_EQ(read, written);
  std::remove(path.c_str());
}

TEST(Trace, ReadRejectsGarbageAndTruncation) {
  const std::string path = tmp_path("bad.trace");
  std::vector<TraceRecord> out;
  std::string err;
  EXPECT_FALSE(read_trace(tmp_path("does_not_exist"), &out, &err));

  {
    std::ofstream f(path, std::ios::binary);
    f << "not a trace file at all";
  }
  EXPECT_FALSE(read_trace(path, &out, &err));

  {
    TraceSink sink;
    ASSERT_TRUE(sink.open(path, TraceSink::Format::kBinary, &err)) << err;
    sink.record<TraceCat::kPhy>(1, TraceEvent::kFrameTx, 0, 0, 0);
    sink.close();
    // Chop mid-record.
    std::string bytes = file_bytes(path);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 7));
  }
  EXPECT_FALSE(read_trace(path, &out, &err));
  std::remove(path.c_str());
}

TEST(Trace, JsonlRendering) {
  TraceRecord r{from_seconds(2.0), static_cast<std::uint16_t>(TraceEvent::kBackoffDraw),
                4, 17, 3, 5, 2, 0, 12.0, 7.5};
  const std::string line = trace_record_jsonl(r);
  EXPECT_NE(line.find("\"ev\":\"backoff_draw\""), std::string::npos);
  EXPECT_NE(line.find("\"node\":4"), std::string::npos);
  EXPECT_NE(line.find("\"a\":17"), std::string::npos);
  EXPECT_NE(line.find("\"span\":5"), std::string::npos);
  EXPECT_NE(line.find("\"parent\":2"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

// ---------- metrics registry ----------

TEST(Metrics, RegistryReadsLiveCounters) {
  std::uint64_t u = 5;
  std::int64_t i = -3;
  MetricsRegistry reg;
  reg.add_counter("u", 0, -1, &u);
  reg.add_counter("i", 1, -1, &i);
  reg.add_gauge("g", 2, -1, [] { return 2.5; });
  EXPECT_DOUBLE_EQ(reg.find("u", 0)->value(), 5.0);
  u = 9;  // registry must see the update without re-registration
  EXPECT_DOUBLE_EQ(reg.find("u", 0)->value(), 9.0);
  EXPECT_DOUBLE_EQ(reg.find("i", 1)->value(), -3.0);
  EXPECT_DOUBLE_EQ(reg.find("g", 2)->value(), 2.5);
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(reg.sum("u"), 9.0);
  EXPECT_EQ(reg.values("g"), std::vector<double>{2.5});
}

TEST(Metrics, JsonlWriteIsByteDeterministic) {
  MetricsTimeSeries ts;
  ts.period_s = 0.5;
  MetricsSample s;
  s.t_s = 0.5;
  s.flow_goodput_pps = {100.0, 51.0 / 7.0};
  s.jain = 0.987654321;
  s.queue_depth_p95 = 12.0;
  ts.samples.push_back(s);

  const std::string p1 = tmp_path("m1.jsonl"), p2 = tmp_path("m2.jsonl");
  std::string err;
  ASSERT_TRUE(write_metrics_jsonl(ts, p1, &err)) << err;
  ASSERT_TRUE(write_metrics_jsonl(ts, p2, &err)) << err;
  EXPECT_EQ(file_bytes(p1), file_bytes(p2));
  EXPECT_NE(file_bytes(p1).find("\"jain\":"), std::string::npos);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Metrics, SeedPathInsertsTagBeforeExtension) {
  EXPECT_EQ(metrics_seed_path("out/m.jsonl", 7), "out/m.seed7.jsonl");
  EXPECT_EQ(metrics_seed_path("m.jsonl", 12), "m.seed12.jsonl");
  EXPECT_EQ(metrics_seed_path("metrics", 3), "metrics.seed3");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(metrics_seed_path("out.d/metrics", 3), "out.d/metrics.seed3");
}

// ---------- end-to-end: tracing a real run ----------

SimConfig obs_config(double seconds) {
  SimConfig cfg;
  cfg.sim_seconds = seconds;
  cfg.seed = 7;
  return cfg;
}

TEST(ObsIntegration, TracingDoesNotPerturbTheRun) {
  const Scenario sc = scenario1();
  const SimConfig plain = obs_config(2.0);
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, plain);

  SimConfig traced = plain;
  TraceSink sink;
  traced.trace = &sink;
  traced.metrics_period_seconds = 0.5;
  const RunResult b = run_scenario(sc, Protocol::k2paCentralized, traced);

  EXPECT_GT(sink.recorded(), 0u);
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_mac, b.dropped_mac);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
  EXPECT_EQ(a.channel.frames_corrupted, b.channel.frames_corrupted);
  EXPECT_EQ(a.channel.airtime_ns, b.channel.airtime_ns);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
}

TEST(ObsIntegration, SameSeedWritesByteIdenticalTraceFiles) {
  const Scenario sc = scenario1();
  const std::string p1 = tmp_path("det1.trace"), p2 = tmp_path("det2.trace");
  for (const std::string& path : {p1, p2}) {
    TraceSink sink;
    std::string err;
    ASSERT_TRUE(sink.open(path, TraceSink::Format::kBinary, &err)) << err;
    SimConfig cfg = obs_config(1.0);
    cfg.trace = &sink;
    run_scenario(sc, Protocol::k2paCentralized, cfg);
    sink.close();
  }
  const std::string b1 = file_bytes(p1);
  EXPECT_GT(b1.size(), 16u);
  EXPECT_EQ(b1, file_bytes(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(ObsIntegration, FilterKeepsOnlyRequestedCategories) {
  const Scenario sc = scenario1();
  TraceSink all, phy_only;
  std::uint32_t mask = 0;
  std::string err;
  ASSERT_TRUE(parse_trace_filter("phy", &mask, &err));
  phy_only.set_filter(mask);
  for (TraceSink* sink : {&all, &phy_only}) {
    SimConfig cfg = obs_config(1.0);
    cfg.trace = sink;
    run_scenario(sc, Protocol::k2paCentralized, cfg);
  }
  EXPECT_LT(phy_only.recorded(), all.recorded());
  for (const TraceRecord& r : phy_only.records()) {
    const TraceCat c = trace_category(r.event());
    EXPECT_TRUE(c == TraceCat::kPhy || c == TraceCat::kMeta)
        << to_string(r.event());
  }
}

TEST(ObsIntegration, MetricsSamplesCoverTheRunDeterministically) {
  const Scenario sc = scenario1();
  SimConfig cfg = obs_config(2.0);
  cfg.metrics_period_seconds = 0.5;
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const RunResult b = run_scenario(sc, Protocol::k2paCentralized, cfg);
  ASSERT_EQ(a.metrics.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(a.metrics.period_s, 0.5);
  EXPECT_TRUE(a.metrics == b.metrics);
  for (const MetricsSample& s : a.metrics.samples) {
    ASSERT_EQ(s.flow_goodput_pps.size(), 2u);
    EXPECT_GT(s.jain, 0.0);
    EXPECT_LE(s.jain, 1.0 + 1e-12);
    EXPECT_GE(s.queue_depth_p95, s.queue_depth_p50);
    EXPECT_GE(s.queue_depth_max, s.queue_depth_p95);
    EXPECT_GT(s.channel_utilization, 0.0);
  }
}

TEST(ObsIntegration, BatchRunnerWritesOneMetricsFilePerSeed) {
  const Scenario sc = scenario1();
  SimConfig cfg = obs_config(1.0);
  cfg.metrics_period_seconds = 0.5;
  const std::vector<std::uint64_t> seeds = {1, 2};

  // write_metrics_jsonl does not create directories; use flat paths.
  const std::string flat1 = tmp_path("batch_j1_m.jsonl");
  const std::string flat2 = tmp_path("batch_j2_m.jsonl");

  std::vector<RunResult> r1, r2;
  std::string err;
  ASSERT_TRUE(BatchRunner(1).run_seeds_with_metrics(
      sc, Protocol::k2paCentralized, cfg, seeds, flat1, &r1, &err))
      << err;
  ASSERT_TRUE(BatchRunner(2).run_seeds_with_metrics(
      sc, Protocol::k2paCentralized, cfg, seeds, flat2, &r2, &err))
      << err;

  for (std::uint64_t s : seeds) {
    const std::string f1 = metrics_seed_path(flat1, s);
    const std::string f2 = metrics_seed_path(flat2, s);
    // Thread count must not change a single byte of any seed's series.
    EXPECT_EQ(file_bytes(f1), file_bytes(f2)) << "seed " << s;
    std::remove(f1.c_str());
    std::remove(f2.c_str());
  }
}

// ---------- convergence analysis ----------

TEST(Convergence, SyntheticTraceConvergesWhenProportionsMatch) {
  // 1 Mbps channel, 125-byte payload: one packet = 1000 bits, so with 1-s
  // windows share = count / 1000.
  std::vector<TraceRecord> rec;
  auto push = [&rec](double t_s, TraceEvent e, int node, int a, int b,
                     double v0, double v1) {
    rec.push_back(TraceRecord{from_seconds(t_s), static_cast<std::uint16_t>(e),
                              static_cast<std::int16_t>(node), a, b, 0, 0, 0, v0,
                              v1});
  };
  push(0, TraceEvent::kRunMeta, -1, 2, 2, 1e6, 125);
  push(0, TraceEvent::kLpResolve, -1, 0, 0, 0, 0);
  push(0, TraceEvent::kFlowTarget, -1, 0, 0, 0.5, 0);
  push(0, TraceEvent::kFlowTarget, -1, 1, 0, 0.25, 0);
  // Window 0 inverts the 2:1 target split; windows 1..3 match it.
  auto deliveries = [&push](double t0, int flow, int count) {
    for (int i = 0; i < count; ++i)
      push(t0 + 1e-4 * i, TraceEvent::kDelivery, 1, flow, 0, 0.01, 0);
  };
  deliveries(0.0, 0, 100);
  deliveries(0.0, 1, 400);
  for (int w = 1; w <= 3; ++w) {
    deliveries(w * 1.0, 0, 400);
    deliveries(w * 1.0, 1, 200);
  }

  const ConvergenceReport rep = analyze_convergence(rec, 1.0, 0.1);
  EXPECT_EQ(rep.flow_count, 2);
  ASSERT_EQ(rep.epochs.size(), 1u);
  EXPECT_EQ(rep.epochs[0].target_share, (std::vector<double>{0.5, 0.25}));
  ASSERT_EQ(rep.window_share.size(), 4u);
  EXPECT_NEAR(rep.window_share[1][0], 0.4, 1e-9);
  EXPECT_NEAR(rep.window_share[1][1], 0.2, 1e-9);
  EXPECT_LT(rep.jain[0], 0.8);
  EXPECT_NEAR(rep.jain[1], 1.0, 1e-9);
  ASSERT_EQ(rep.convergence.size(), 1u);
  ASSERT_TRUE(rep.convergence[0].converged);
  EXPECT_DOUBLE_EQ(rep.convergence[0].converged_s, 2.0);
  EXPECT_GT(rep.steady_jain(0), 0.99);
}

TEST(Convergence, RealRunConvergesAndJainReachesSteadyState) {
  const Scenario sc = scenario1();
  TraceSink sink;
  SimConfig cfg = obs_config(10.0);
  cfg.trace = &sink;
  run_scenario(sc, Protocol::k2paCentralized, cfg);

  const ConvergenceReport rep = analyze_convergence(sink.records(), 2.0, 0.25);
  ASSERT_EQ(rep.epochs.size(), 1u);
  ASSERT_EQ(rep.convergence.size(), 1u);
  EXPECT_TRUE(rep.convergence[0].converged);
  EXPECT_GT(rep.convergence[0].time_to_converge_s, 0.0);
  EXPECT_LT(rep.convergence[0].time_to_converge_s, 10.0);

  const double steady = rep.steady_jain(0);
  EXPECT_GT(steady, 0.9);
  // The trajectory must actually reach (not just approach) the steady band.
  bool reached = false;
  for (double j : rep.jain) reached = reached || j >= 0.95 * steady;
  EXPECT_TRUE(reached);
}

TEST(Convergence, ReconvergesAfterFaultEpochs) {
  // The partition_heal diamond (examples/partition_heal.cpp): A→B→D with C
  // as the redundant relay. B crashes at 4 s (reroute via C), C crashes at
  // 8 s (partition, flow suspended), B recovers at 12 s (heal). Every
  // re-solved epoch with a positive target must re-converge; the partition
  // epoch must not.
  Scenario sc{"partition-heal",
              Topology({{0, 0}, {200, 150}, {200, -150}, {400, 0}}, 250.0),
              {},
              {}};
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, 3));
  sc.faults.node_down(1, 4.0);
  sc.faults.node_down(2, 8.0);
  sc.faults.node_up(1, 12.0);

  TraceSink sink;
  SimConfig cfg = obs_config(18.0);
  cfg.trace = &sink;
  run_scenario(sc, Protocol::k2paCentralized, cfg);

  const ConvergenceReport rep = analyze_convergence(sink.records(), 2.0, 0.3);
  ASSERT_EQ(rep.epochs.size(), 4u);
  EXPECT_GT(rep.epochs[1].target_share[0], 0.0);   // rerouted via C
  EXPECT_DOUBLE_EQ(rep.epochs[2].target_share[0], 0.0);  // partitioned
  EXPECT_GT(rep.epochs[3].target_share[0], 0.0);   // healed
  ASSERT_EQ(rep.convergence.size(), 4u);
  EXPECT_TRUE(rep.convergence[0].converged);
  EXPECT_TRUE(rep.convergence[1].converged);
  EXPECT_FALSE(rep.convergence[2].converged);  // nothing to converge to
  EXPECT_TRUE(rep.convergence[3].converged);
  EXPECT_GE(rep.convergence[3].converged_s, 12.0);
  EXPECT_GT(rep.convergence[3].time_to_converge_s, 0.0);
}

// ---------- causal spans (observability v2) ----------

TEST(Span, RoundTripsThroughBinaryFiles) {
  const std::string path = tmp_path("span.trace");
  std::vector<TraceRecord> written;
  written.push_back(TraceRecord{10, static_cast<std::uint16_t>(TraceEvent::kCtrlSend),
                                0, 2, -1, 7, 0, 0, 64.0, 1.0});
  written.push_back(TraceRecord{20, static_cast<std::uint16_t>(TraceEvent::kFrameTx),
                                0, 4, -1, 8, 7, 0, 64.0, 0.0});
  written.push_back(TraceRecord{30, static_cast<std::uint16_t>(TraceEvent::kFrameRx),
                                1, 4, 0, 0, 8, 0, 64.0, 0.0});
  std::string err;
  ASSERT_TRUE(write_trace_file(written, path, TraceSink::Format::kBinary, &err))
      << err;
  std::vector<TraceRecord> read;
  ASSERT_TRUE(read_trace(path, &read, &err)) << err;
  EXPECT_EQ(read, written);  // TraceRecord == covers span/parent fields
  std::remove(path.c_str());
}

TEST(Span, NewSpanIsMonotonicAndNeverZero) {
  TraceSink sink;
  EXPECT_EQ(sink.new_span(), 1u);
  EXPECT_EQ(sink.new_span(), 2u);
  EXPECT_EQ(sink.new_span(), 3u);
}

TEST(Span, GraphRebuildsParentChildEdges) {
  std::vector<TraceRecord> rec;
  // Root span 1 -> child span 2 -> leaf (no own span); unrelated record.
  rec.push_back(TraceRecord{0, static_cast<std::uint16_t>(TraceEvent::kCtrlSend),
                            0, 2, -1, 1, 0, 0, 0, 0});
  rec.push_back(TraceRecord{1, static_cast<std::uint16_t>(TraceEvent::kFrameTx),
                            0, 4, -1, 2, 1, 0, 0, 0});
  rec.push_back(TraceRecord{2, static_cast<std::uint16_t>(TraceEvent::kFrameRx),
                            1, 4, 0, 0, 2, 0, 0, 0});
  rec.push_back(TraceRecord{3, static_cast<std::uint16_t>(TraceEvent::kMacRetry),
                            1, 1, -1, 0, 0, 0, 0, 0});
  const SpanGraph g = build_span_graph(rec);
  ASSERT_EQ(g.roots.size(), 1u);
  EXPECT_EQ(g.roots[0], 0u);
  ASSERT_EQ(g.owner.count(1u), 1u);
  ASSERT_EQ(g.owner.count(2u), 1u);
  EXPECT_EQ(g.children.at(1u), (std::vector<std::size_t>{1}));
  EXPECT_EQ(g.children.at(2u), (std::vector<std::size_t>{2}));
}

TEST(Span, CtrlKindNamesMatchTheProtocolEnum) {
  EXPECT_STREQ(ctrl_kind_name(static_cast<int>(CtrlMsg::Kind::kHello)), "HELLO");
  EXPECT_STREQ(ctrl_kind_name(static_cast<int>(CtrlMsg::Kind::kHelloDelta)),
               "HELLO_DELTA");
  EXPECT_STREQ(ctrl_kind_name(static_cast<int>(CtrlMsg::Kind::kConstraint)),
               "CONSTRAINT");
  EXPECT_STREQ(ctrl_kind_name(static_cast<int>(CtrlMsg::Kind::kRate)), "RATE");
  EXPECT_STREQ(ctrl_kind_name(static_cast<int>(CtrlMsg::Kind::kAdmitReq)),
               "ADMIT_REQ");
  EXPECT_STREQ(ctrl_kind_name(static_cast<int>(CtrlMsg::Kind::kAdmitRsp)),
               "ADMIT_RSP");
}

// ---------- trace read errors ----------

TEST(Trace, ReadErrorsNameTheRecordAndByteOffset) {
  const std::string path = tmp_path("detail.trace");
  std::string err;
  std::vector<TraceRecord> out;

  // Truncated mid-record: the error names the 1-based record and offset.
  {
    std::vector<TraceRecord> rec(2);
    rec[0].type = static_cast<std::uint16_t>(TraceEvent::kFrameTx);
    rec[1].type = static_cast<std::uint16_t>(TraceEvent::kFrameRx);
    ASSERT_TRUE(write_trace_file(rec, path, TraceSink::Format::kBinary, &err));
    std::string bytes = file_bytes(path);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 7));
  }
  ASSERT_FALSE(read_trace(path, &out, &err));
  EXPECT_NE(err.find("truncated trace record 2"), std::string::npos) << err;

  // Unknown event type: a corrupt record, rejected with its position.
  {
    std::vector<TraceRecord> rec(1);
    rec[0].type = kTraceEventCount;  // first undefined value
    ASSERT_TRUE(write_trace_file(rec, path, TraceSink::Format::kBinary, &err));
  }
  ASSERT_FALSE(read_trace(path, &out, &err));
  EXPECT_NE(err.find("unknown event type"), std::string::npos) << err;
  EXPECT_NE(err.find("record 1"), std::string::npos) << err;

  // Header/record-count mismatch (an interrupted writer).
  {
    std::vector<TraceRecord> rec(3);
    rec[0].type = rec[1].type = rec[2].type =
        static_cast<std::uint16_t>(TraceEvent::kFrameTx);
    ASSERT_TRUE(write_trace_file(rec, path, TraceSink::Format::kBinary, &err));
    std::string bytes = file_bytes(path);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() - sizeof(TraceRecord)));
  }
  ASSERT_FALSE(read_trace(path, &out, &err));
  EXPECT_NE(err.find("incomplete"), std::string::npos) << err;
  std::remove(path.c_str());
}

// ---------- flight recorder ----------

TEST(FlightRecorder, RingKeepsTheMostRecentRecords) {
  TraceSink sink;
  sink.set_ring(4);
  EXPECT_TRUE(sink.ring_mode());
  for (int i = 0; i < 10; ++i)
    sink.record<TraceCat::kPhy>(100 * i, TraceEvent::kFrameTx,
                                static_cast<std::int16_t>(i), i, -1);
  EXPECT_EQ(sink.recorded(), 10u);
  const std::vector<TraceRecord> recent = sink.recent_records();
  ASSERT_EQ(recent.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(recent[static_cast<std::size_t>(i)].t, 100 * (6 + i));
    EXPECT_EQ(recent[static_cast<std::size_t>(i)].a, 6 + i);
  }
}

TEST(FlightRecorder, ViolationSnapshotDumpIsByteDeterministic) {
  // The deliberate off-by-one queue oracle (the fuzzer's injected bug): a
  // correct run trips the queue invariant, the armed flight recorder
  // snapshots the ring at the FIRST violation, and the dump is a loadable
  // trace file that is byte-identical across reruns of the same seed.
  const Scenario sc = scenario1();
  auto run_once = [&](const std::string& dump_path) {
    CheckConfig ccfg;
    ccfg.queue_capacity_override = 4;  // real capacity below is 5
    CheckContext check(ccfg);
    TraceSink ring;
    ring.set_ring(1u << 10);
    check.arm_flight_recorder(&ring);
    SimConfig cfg = obs_config(2.0);
    cfg.queue_capacity = 5;
    cfg.trace = &ring;
    cfg.check = &check;
    run_scenario(sc, Protocol::k2paCentralized, cfg);
    EXPECT_FALSE(check.ok());
    EXPECT_FALSE(check.flight_records().empty());
    std::string err;
    ASSERT_TRUE(write_trace_file(check.flight_records(), dump_path,
                                 TraceSink::Format::kBinary, &err))
        << err;
  };
  const std::string p1 = tmp_path("flight1.trace"), p2 = tmp_path("flight2.trace");
  run_once(p1);
  run_once(p2);
  EXPECT_EQ(file_bytes(p1), file_bytes(p2));
  // The dump must load cleanly through the normal reader.
  std::vector<TraceRecord> loaded;
  std::string err;
  ASSERT_TRUE(read_trace(p1, &loaded, &err)) << err;
  EXPECT_FALSE(loaded.empty());
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

// ---------- self-profiler ----------

TEST(Profiler, AccumulatesScopesAndRendersBenchStyleJson) {
  Profiler p;
  { Profiler::Scope s(&p, Profiler::Phase::kSolve); }
  { Profiler::Scope s(&p, Profiler::Phase::kSolve); }
  { Profiler::Scope s(nullptr, Profiler::Phase::kSim); }  // null = no-op
  EXPECT_EQ(p.calls(Profiler::Phase::kSolve), 2);
  EXPECT_EQ(p.calls(Profiler::Phase::kSim), 0);
  const std::string json = p.json("unit");
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"solve_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"solve_calls\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_mb\":"), std::string::npos);
}

TEST(Profiler, PhaseCallCountsAreStableAcrossBatchThreadCounts) {
  // Wall-clock seconds vary run to run, but the *call counts* per phase are
  // pure functions of the trajectory, which is thread-count independent.
  const Scenario sc = scenario1();
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  auto run_with = [&](int jobs) {
    Profiler prof;
    SimConfig cfg = obs_config(1.0);
    cfg.profile = &prof;
    BatchRunner(jobs).run_seeds(sc, Protocol::k2paDistributedCtrl, cfg, seeds);
    std::vector<std::int64_t> calls;
    for (int ph = 0; ph < Profiler::kPhaseCount; ++ph)
      calls.push_back(prof.calls(static_cast<Profiler::Phase>(ph)));
    return calls;
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(serial[static_cast<int>(Profiler::Phase::kSim)], 0);
  EXPECT_GT(serial[static_cast<int>(Profiler::Phase::kPhy)], 0);
  EXPECT_GT(serial[static_cast<int>(Profiler::Phase::kCtrl)], 0);
  EXPECT_GT(serial[static_cast<int>(Profiler::Phase::kSetup)], 0);
}

TEST(Profiler, DoesNotPerturbTheRun) {
  const Scenario sc = scenario1();
  const SimConfig plain = obs_config(1.0);
  const RunResult a = run_scenario(sc, Protocol::k2paDistributedCtrl, plain);
  Profiler prof;
  SimConfig profiled = plain;
  profiled.profile = &prof;
  const RunResult b = run_scenario(sc, Protocol::k2paDistributedCtrl, profiled);
  EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
  EXPECT_GT(prof.calls(Profiler::Phase::kSim), 0);
}

// ---------- causal chains from a real control-plane run ----------

/// Runs the paper's scenario 1 under the in-band control plane with churn
/// (flow 1 arrives mid-run, triggering an in-band ADMIT round) and link
/// loss (forcing hardened-mode retransmits); returns the trace.
std::vector<TraceRecord> ctrl_span_trace() {
  Scenario sc = scenario1();
  sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
  sc.activity[1].start_s = 2.0;
  sc.activity[1].stop_s = 1e9;
  sc.faults.set_default_loss(0.25);
  TraceSink sink;
  SimConfig cfg = obs_config(8.0);
  cfg.trace = &sink;
  run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
  return sink.records();
}

TEST(Follow, ReconstructsAdmitRoundAndSolveChainsWithRetransmits) {
  const std::vector<TraceRecord> rec = ctrl_span_trace();
  const SpanGraph g = build_span_graph(rec);

  // Collect, per causal root, which milestones the subtree contains.
  bool admit_round = false;   // ADMIT_REQ send ... ADMIT_RSP send in one tree
  bool solve_chain = false;   // CONSTRAINT send -> solve -> RATE application
  for (std::size_t root : g.roots) {
    bool req = false, rsp = false, constraint = false, solve = false,
         rate = false;
    std::vector<std::size_t> stack{root};
    while (!stack.empty()) {
      const TraceRecord& r = rec[stack.back()];
      stack.pop_back();
      if (r.event() == TraceEvent::kCtrlSend) {
        if (r.a == static_cast<int>(CtrlMsg::Kind::kAdmitReq)) req = true;
        if (r.a == static_cast<int>(CtrlMsg::Kind::kAdmitRsp)) rsp = true;
        if (r.a == static_cast<int>(CtrlMsg::Kind::kConstraint))
          constraint = true;
      }
      if (r.event() == TraceEvent::kCtrlSolve) solve = true;
      if (r.event() == TraceEvent::kCtrlRate) rate = true;
      if (r.span != 0) {
        const auto it = g.children.find(r.span);
        if (it != g.children.end())
          for (std::size_t c : it->second) stack.push_back(c);
      }
    }
    admit_round = admit_round || (req && rsp);
    solve_chain = solve_chain || (constraint && solve && rate);
  }
  EXPECT_TRUE(admit_round)
      << "no causal tree contains a full ADMIT_REQ -> ADMIT_RSP round";
  EXPECT_TRUE(solve_chain)
      << "no causal tree contains CONSTRAINT -> solve -> RATE";

  // Retransmits chain back to the original send's span.
  std::size_t retx = 0, retx_linked = 0;
  for (const TraceRecord& r : rec) {
    if (r.event() != TraceEvent::kCtrlRetransmit) continue;
    ++retx;
    const auto it = g.owner.find(r.parent);
    if (it != g.owner.end() &&
        rec[it->second].event() == TraceEvent::kCtrlSend)
      ++retx_linked;
  }
  EXPECT_GT(retx, 0u) << "25% loss over 8 s produced no ctrl retransmit";
  EXPECT_EQ(retx, retx_linked);

  // The human-facing report renders the same chains.
  const std::string report = format_follow(rec, -1, 0);
  EXPECT_NE(report.find("ADMIT_REQ"), std::string::npos);
  EXPECT_NE(report.find("retransmits"), std::string::npos);
  EXPECT_NE(report.find("causal chains"), std::string::npos);
}

TEST(Follow, SpanAllocationIsDeterministicPerSeed) {
  const std::vector<TraceRecord> a = ctrl_span_trace();
  const std::vector<TraceRecord> b = ctrl_span_trace();
  EXPECT_EQ(a, b);
}

// ---------- chrome export + ctrl-health summary ----------

TEST(Chrome, ExportCarriesTracksSlicesAndSpanArrows) {
  std::vector<TraceRecord> rec;
  rec.push_back(TraceRecord{0, static_cast<std::uint16_t>(TraceEvent::kRunMeta),
                            -1, 2, 1, 0, 0, 0, 1e6, 125.0});
  rec.push_back(TraceRecord{1000, static_cast<std::uint16_t>(TraceEvent::kFrameTx),
                            0, 2, 1, 3, 0, 0, 125.0, 0.0});
  rec.push_back(TraceRecord{2000, static_cast<std::uint16_t>(TraceEvent::kFrameRx),
                            1, 2, 0, 0, 3, 0, 125.0, 0.0});
  const std::string json = format_chrome_trace(rec);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // tx slice
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // span arrow out
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // span arrow in
  // 125 bytes at 1 Mbps = 1 ms airtime = 1000 µs.
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
}

TEST(Summary, SurfacesCtrlHealthCounters) {
  std::vector<TraceRecord> rec;
  rec.push_back(TraceRecord{0, static_cast<std::uint16_t>(TraceEvent::kCtrlRetransmit),
                            2, static_cast<int>(CtrlMsg::Kind::kConstraint), 0,
                            0, 0, 0, 1.0, 4.0});
  rec.push_back(TraceRecord{1, static_cast<std::uint16_t>(TraceEvent::kCtrlSeqGap),
                            3, 1, 2, 0, 0, 0, 5.0, 7.0});
  rec.push_back(TraceRecord{2, static_cast<std::uint16_t>(TraceEvent::kCtrlReconv),
                            -1, 1, -1, 0, 0, 0, 0.42, 5.0});
  const std::string s = format_trace_summary(rec);
  EXPECT_NE(s.find("ctrl health:"), std::string::npos);
  EXPECT_NE(s.find("retransmits"), std::string::npos);
  EXPECT_NE(s.find("CONSTRAINT 1"), std::string::npos);
  EXPECT_NE(s.find("seq gaps             1 (2 messages missed)"),
            std::string::npos);
  EXPECT_NE(s.find("reconv epoch 1"), std::string::npos);
  EXPECT_NE(s.find("0.420 s"), std::string::npos);
}

TEST(Metrics, JsonlCarriesCtrlHealthAndReconv) {
  MetricsTimeSeries ts;
  ts.period_s = 1.0;
  ts.reconv_s = {0.5, -1.0};
  MetricsSample s;
  s.ctrl_retransmits = 3.0;
  s.ctrl_seq_gaps = 1.0;
  ts.samples.push_back(s);
  const std::string path = tmp_path("ctrl_health.jsonl");
  std::string err;
  ASSERT_TRUE(write_metrics_jsonl(ts, path, &err)) << err;
  const std::string bytes = file_bytes(path);
  EXPECT_NE(bytes.find("\"reconv_s\":[0.5,-1]"), std::string::npos);
  EXPECT_NE(bytes.find("\"ctrl_retransmits\":3"), std::string::npos);
  EXPECT_NE(bytes.find("\"ctrl_seq_gaps\":1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace e2efa
