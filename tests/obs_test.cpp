// Observability layer: trace sink (filtering, binary/JSONL round-trips,
// byte-determinism), metrics registry + time series, the offline
// convergence analysis, and the no-perturbation guarantee (tracing must not
// change the simulated trajectory).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/batch.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "route/routing.hpp"
#include "util/time.hpp"

namespace e2efa {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "e2efa_obs_" + name;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------- trace sink ----------

TEST(Trace, RecordsInMemory) {
  TraceSink sink;
  sink.record<TraceCat::kPhy>(from_seconds(1.5), TraceEvent::kFrameTx, 3, 1, 2,
                              512.0, 0.0);
  ASSERT_EQ(sink.records().size(), 1u);
  const TraceRecord& r = sink.records()[0];
  EXPECT_EQ(r.t, from_seconds(1.5));
  EXPECT_EQ(r.event(), TraceEvent::kFrameTx);
  EXPECT_EQ(r.node, 3);
  EXPECT_EQ(r.a, 1);
  EXPECT_EQ(r.b, 2);
  EXPECT_DOUBLE_EQ(r.v0, 512.0);
  EXPECT_EQ(sink.recorded(), 1u);
}

TEST(Trace, RuntimeFilterDropsExcludedCategories) {
  TraceSink sink;
  sink.set_filter(trace_bit(TraceCat::kQueue));
  sink.record<TraceCat::kPhy>(0, TraceEvent::kFrameTx, 0, 0, 0);
  sink.record<TraceCat::kQueue>(0, TraceEvent::kQueueEnqueue, 0, 0, 1);
  // kMeta is always kept: structural records are cheap and every tool
  // needs them.
  sink.record<TraceCat::kMeta>(0, TraceEvent::kRunMeta, -1, 2, 2);
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].event(), TraceEvent::kQueueEnqueue);
  EXPECT_EQ(sink.records()[1].event(), TraceEvent::kRunMeta);
}

TEST(Trace, EveryEventHasACategoryAndName) {
  for (std::uint16_t t = 0; t <= static_cast<std::uint16_t>(TraceEvent::kDelivery);
       ++t) {
    const TraceEvent e = static_cast<TraceEvent>(t);
    EXPECT_NE(std::string(to_string(e)), "");
    EXPECT_NE(trace_bit(trace_category(e)) & kTraceAllCategories, 0u);
  }
}

TEST(Trace, ParseFilter) {
  std::uint32_t mask = 0;
  std::string err;
  ASSERT_TRUE(parse_trace_filter("phy, backoff,queue", &mask, &err)) << err;
  EXPECT_EQ(mask, trace_bit(TraceCat::kMeta) | trace_bit(TraceCat::kPhy) |
                      trace_bit(TraceCat::kBackoff) | trace_bit(TraceCat::kQueue));
  ASSERT_TRUE(parse_trace_filter("all", &mask, &err));
  EXPECT_EQ(mask, kTraceAllCategories);
  // kMeta rides along even when not asked for.
  ASSERT_TRUE(parse_trace_filter("lp", &mask, &err));
  EXPECT_NE(mask & trace_bit(TraceCat::kMeta), 0u);
  EXPECT_FALSE(parse_trace_filter("phy,bogus", &mask, &err));
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(Trace, BinaryRoundTrip) {
  const std::string path = tmp_path("roundtrip.trace");
  std::vector<TraceRecord> written;
  {
    TraceSink sink(/*buffer_records=*/4);  // force mid-run flushes
    std::string err;
    ASSERT_TRUE(sink.open(path, TraceSink::Format::kBinary, &err)) << err;
    for (int i = 0; i < 11; ++i) {
      sink.record<TraceCat::kPhy>(1000 * i, TraceEvent::kFrameRx,
                                  static_cast<std::int16_t>(i), i, i + 1,
                                  0.5 * i, -1.25 * i);
      written.push_back(TraceRecord{1000 * i, static_cast<std::uint16_t>(TraceEvent::kFrameRx),
                                    static_cast<std::int16_t>(i), i, i + 1, 0,
                                    0.5 * i, -1.25 * i});
    }
    sink.close();
  }
  std::vector<TraceRecord> read;
  std::string err;
  ASSERT_TRUE(read_trace(path, &read, &err)) << err;
  EXPECT_EQ(read, written);
  std::remove(path.c_str());
}

TEST(Trace, ReadRejectsGarbageAndTruncation) {
  const std::string path = tmp_path("bad.trace");
  std::vector<TraceRecord> out;
  std::string err;
  EXPECT_FALSE(read_trace(tmp_path("does_not_exist"), &out, &err));

  {
    std::ofstream f(path, std::ios::binary);
    f << "not a trace file at all";
  }
  EXPECT_FALSE(read_trace(path, &out, &err));

  {
    TraceSink sink;
    ASSERT_TRUE(sink.open(path, TraceSink::Format::kBinary, &err)) << err;
    sink.record<TraceCat::kPhy>(1, TraceEvent::kFrameTx, 0, 0, 0);
    sink.close();
    // Chop mid-record.
    std::string bytes = file_bytes(path);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 7));
  }
  EXPECT_FALSE(read_trace(path, &out, &err));
  std::remove(path.c_str());
}

TEST(Trace, JsonlRendering) {
  TraceRecord r{from_seconds(2.0), static_cast<std::uint16_t>(TraceEvent::kBackoffDraw),
                4, 17, 3, 0, 12.0, 7.5};
  const std::string line = trace_record_jsonl(r);
  EXPECT_NE(line.find("\"ev\":\"backoff_draw\""), std::string::npos);
  EXPECT_NE(line.find("\"node\":4"), std::string::npos);
  EXPECT_NE(line.find("\"a\":17"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

// ---------- metrics registry ----------

TEST(Metrics, RegistryReadsLiveCounters) {
  std::uint64_t u = 5;
  std::int64_t i = -3;
  MetricsRegistry reg;
  reg.add_counter("u", 0, -1, &u);
  reg.add_counter("i", 1, -1, &i);
  reg.add_gauge("g", 2, -1, [] { return 2.5; });
  EXPECT_DOUBLE_EQ(reg.find("u", 0)->value(), 5.0);
  u = 9;  // registry must see the update without re-registration
  EXPECT_DOUBLE_EQ(reg.find("u", 0)->value(), 9.0);
  EXPECT_DOUBLE_EQ(reg.find("i", 1)->value(), -3.0);
  EXPECT_DOUBLE_EQ(reg.find("g", 2)->value(), 2.5);
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(reg.sum("u"), 9.0);
  EXPECT_EQ(reg.values("g"), std::vector<double>{2.5});
}

TEST(Metrics, JsonlWriteIsByteDeterministic) {
  MetricsTimeSeries ts;
  ts.period_s = 0.5;
  MetricsSample s;
  s.t_s = 0.5;
  s.flow_goodput_pps = {100.0, 51.0 / 7.0};
  s.jain = 0.987654321;
  s.queue_depth_p95 = 12.0;
  ts.samples.push_back(s);

  const std::string p1 = tmp_path("m1.jsonl"), p2 = tmp_path("m2.jsonl");
  std::string err;
  ASSERT_TRUE(write_metrics_jsonl(ts, p1, &err)) << err;
  ASSERT_TRUE(write_metrics_jsonl(ts, p2, &err)) << err;
  EXPECT_EQ(file_bytes(p1), file_bytes(p2));
  EXPECT_NE(file_bytes(p1).find("\"jain\":"), std::string::npos);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Metrics, SeedPathInsertsTagBeforeExtension) {
  EXPECT_EQ(metrics_seed_path("out/m.jsonl", 7), "out/m.seed7.jsonl");
  EXPECT_EQ(metrics_seed_path("m.jsonl", 12), "m.seed12.jsonl");
  EXPECT_EQ(metrics_seed_path("metrics", 3), "metrics.seed3");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(metrics_seed_path("out.d/metrics", 3), "out.d/metrics.seed3");
}

// ---------- end-to-end: tracing a real run ----------

SimConfig obs_config(double seconds) {
  SimConfig cfg;
  cfg.sim_seconds = seconds;
  cfg.seed = 7;
  return cfg;
}

TEST(ObsIntegration, TracingDoesNotPerturbTheRun) {
  const Scenario sc = scenario1();
  const SimConfig plain = obs_config(2.0);
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, plain);

  SimConfig traced = plain;
  TraceSink sink;
  traced.trace = &sink;
  traced.metrics_period_seconds = 0.5;
  const RunResult b = run_scenario(sc, Protocol::k2paCentralized, traced);

  EXPECT_GT(sink.recorded(), 0u);
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_mac, b.dropped_mac);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
  EXPECT_EQ(a.channel.frames_corrupted, b.channel.frames_corrupted);
  EXPECT_EQ(a.channel.airtime_ns, b.channel.airtime_ns);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
}

TEST(ObsIntegration, SameSeedWritesByteIdenticalTraceFiles) {
  const Scenario sc = scenario1();
  const std::string p1 = tmp_path("det1.trace"), p2 = tmp_path("det2.trace");
  for (const std::string& path : {p1, p2}) {
    TraceSink sink;
    std::string err;
    ASSERT_TRUE(sink.open(path, TraceSink::Format::kBinary, &err)) << err;
    SimConfig cfg = obs_config(1.0);
    cfg.trace = &sink;
    run_scenario(sc, Protocol::k2paCentralized, cfg);
    sink.close();
  }
  const std::string b1 = file_bytes(p1);
  EXPECT_GT(b1.size(), 16u);
  EXPECT_EQ(b1, file_bytes(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(ObsIntegration, FilterKeepsOnlyRequestedCategories) {
  const Scenario sc = scenario1();
  TraceSink all, phy_only;
  std::uint32_t mask = 0;
  std::string err;
  ASSERT_TRUE(parse_trace_filter("phy", &mask, &err));
  phy_only.set_filter(mask);
  for (TraceSink* sink : {&all, &phy_only}) {
    SimConfig cfg = obs_config(1.0);
    cfg.trace = sink;
    run_scenario(sc, Protocol::k2paCentralized, cfg);
  }
  EXPECT_LT(phy_only.recorded(), all.recorded());
  for (const TraceRecord& r : phy_only.records()) {
    const TraceCat c = trace_category(r.event());
    EXPECT_TRUE(c == TraceCat::kPhy || c == TraceCat::kMeta)
        << to_string(r.event());
  }
}

TEST(ObsIntegration, MetricsSamplesCoverTheRunDeterministically) {
  const Scenario sc = scenario1();
  SimConfig cfg = obs_config(2.0);
  cfg.metrics_period_seconds = 0.5;
  const RunResult a = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const RunResult b = run_scenario(sc, Protocol::k2paCentralized, cfg);
  ASSERT_EQ(a.metrics.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(a.metrics.period_s, 0.5);
  EXPECT_TRUE(a.metrics == b.metrics);
  for (const MetricsSample& s : a.metrics.samples) {
    ASSERT_EQ(s.flow_goodput_pps.size(), 2u);
    EXPECT_GT(s.jain, 0.0);
    EXPECT_LE(s.jain, 1.0 + 1e-12);
    EXPECT_GE(s.queue_depth_p95, s.queue_depth_p50);
    EXPECT_GE(s.queue_depth_max, s.queue_depth_p95);
    EXPECT_GT(s.channel_utilization, 0.0);
  }
}

TEST(ObsIntegration, BatchRunnerWritesOneMetricsFilePerSeed) {
  const Scenario sc = scenario1();
  SimConfig cfg = obs_config(1.0);
  cfg.metrics_period_seconds = 0.5;
  const std::vector<std::uint64_t> seeds = {1, 2};

  // write_metrics_jsonl does not create directories; use flat paths.
  const std::string flat1 = tmp_path("batch_j1_m.jsonl");
  const std::string flat2 = tmp_path("batch_j2_m.jsonl");

  std::vector<RunResult> r1, r2;
  std::string err;
  ASSERT_TRUE(BatchRunner(1).run_seeds_with_metrics(
      sc, Protocol::k2paCentralized, cfg, seeds, flat1, &r1, &err))
      << err;
  ASSERT_TRUE(BatchRunner(2).run_seeds_with_metrics(
      sc, Protocol::k2paCentralized, cfg, seeds, flat2, &r2, &err))
      << err;

  for (std::uint64_t s : seeds) {
    const std::string f1 = metrics_seed_path(flat1, s);
    const std::string f2 = metrics_seed_path(flat2, s);
    // Thread count must not change a single byte of any seed's series.
    EXPECT_EQ(file_bytes(f1), file_bytes(f2)) << "seed " << s;
    std::remove(f1.c_str());
    std::remove(f2.c_str());
  }
}

// ---------- convergence analysis ----------

TEST(Convergence, SyntheticTraceConvergesWhenProportionsMatch) {
  // 1 Mbps channel, 125-byte payload: one packet = 1000 bits, so with 1-s
  // windows share = count / 1000.
  std::vector<TraceRecord> rec;
  auto push = [&rec](double t_s, TraceEvent e, int node, int a, int b,
                     double v0, double v1) {
    rec.push_back(TraceRecord{from_seconds(t_s), static_cast<std::uint16_t>(e),
                              static_cast<std::int16_t>(node), a, b, 0, v0, v1});
  };
  push(0, TraceEvent::kRunMeta, -1, 2, 2, 1e6, 125);
  push(0, TraceEvent::kLpResolve, -1, 0, 0, 0, 0);
  push(0, TraceEvent::kFlowTarget, -1, 0, 0, 0.5, 0);
  push(0, TraceEvent::kFlowTarget, -1, 1, 0, 0.25, 0);
  // Window 0 inverts the 2:1 target split; windows 1..3 match it.
  auto deliveries = [&push](double t0, int flow, int count) {
    for (int i = 0; i < count; ++i)
      push(t0 + 1e-4 * i, TraceEvent::kDelivery, 1, flow, 0, 0.01, 0);
  };
  deliveries(0.0, 0, 100);
  deliveries(0.0, 1, 400);
  for (int w = 1; w <= 3; ++w) {
    deliveries(w * 1.0, 0, 400);
    deliveries(w * 1.0, 1, 200);
  }

  const ConvergenceReport rep = analyze_convergence(rec, 1.0, 0.1);
  EXPECT_EQ(rep.flow_count, 2);
  ASSERT_EQ(rep.epochs.size(), 1u);
  EXPECT_EQ(rep.epochs[0].target_share, (std::vector<double>{0.5, 0.25}));
  ASSERT_EQ(rep.window_share.size(), 4u);
  EXPECT_NEAR(rep.window_share[1][0], 0.4, 1e-9);
  EXPECT_NEAR(rep.window_share[1][1], 0.2, 1e-9);
  EXPECT_LT(rep.jain[0], 0.8);
  EXPECT_NEAR(rep.jain[1], 1.0, 1e-9);
  ASSERT_EQ(rep.convergence.size(), 1u);
  ASSERT_TRUE(rep.convergence[0].converged);
  EXPECT_DOUBLE_EQ(rep.convergence[0].converged_s, 2.0);
  EXPECT_GT(rep.steady_jain(0), 0.99);
}

TEST(Convergence, RealRunConvergesAndJainReachesSteadyState) {
  const Scenario sc = scenario1();
  TraceSink sink;
  SimConfig cfg = obs_config(10.0);
  cfg.trace = &sink;
  run_scenario(sc, Protocol::k2paCentralized, cfg);

  const ConvergenceReport rep = analyze_convergence(sink.records(), 2.0, 0.25);
  ASSERT_EQ(rep.epochs.size(), 1u);
  ASSERT_EQ(rep.convergence.size(), 1u);
  EXPECT_TRUE(rep.convergence[0].converged);
  EXPECT_GT(rep.convergence[0].time_to_converge_s, 0.0);
  EXPECT_LT(rep.convergence[0].time_to_converge_s, 10.0);

  const double steady = rep.steady_jain(0);
  EXPECT_GT(steady, 0.9);
  // The trajectory must actually reach (not just approach) the steady band.
  bool reached = false;
  for (double j : rep.jain) reached = reached || j >= 0.95 * steady;
  EXPECT_TRUE(reached);
}

TEST(Convergence, ReconvergesAfterFaultEpochs) {
  // The partition_heal diamond (examples/partition_heal.cpp): A→B→D with C
  // as the redundant relay. B crashes at 4 s (reroute via C), C crashes at
  // 8 s (partition, flow suspended), B recovers at 12 s (heal). Every
  // re-solved epoch with a positive target must re-converge; the partition
  // epoch must not.
  Scenario sc{"partition-heal",
              Topology({{0, 0}, {200, 150}, {200, -150}, {400, 0}}, 250.0),
              {},
              {}};
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, 3));
  sc.faults.node_down(1, 4.0);
  sc.faults.node_down(2, 8.0);
  sc.faults.node_up(1, 12.0);

  TraceSink sink;
  SimConfig cfg = obs_config(18.0);
  cfg.trace = &sink;
  run_scenario(sc, Protocol::k2paCentralized, cfg);

  const ConvergenceReport rep = analyze_convergence(sink.records(), 2.0, 0.3);
  ASSERT_EQ(rep.epochs.size(), 4u);
  EXPECT_GT(rep.epochs[1].target_share[0], 0.0);   // rerouted via C
  EXPECT_DOUBLE_EQ(rep.epochs[2].target_share[0], 0.0);  // partitioned
  EXPECT_GT(rep.epochs[3].target_share[0], 0.0);   // healed
  ASSERT_EQ(rep.convergence.size(), 4u);
  EXPECT_TRUE(rep.convergence[0].converged);
  EXPECT_TRUE(rep.convergence[1].converged);
  EXPECT_FALSE(rep.convergence[2].converged);  // nothing to converge to
  EXPECT_TRUE(rep.convergence[3].converged);
  EXPECT_GE(rep.convergence[3].converged_s, 12.0);
  EXPECT_GT(rep.convergence[3].time_to_converge_s, 0.0);
}

}  // namespace
}  // namespace e2efa
