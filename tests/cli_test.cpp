#include <gtest/gtest.h>

#include "net/cli.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

std::optional<CliOptions> parse(std::vector<const char*> args, std::string* err) {
  args.insert(args.begin(), "e2efa-sim");
  return parse_cli(static_cast<int>(args.size()), args.data(), err);
}

TEST(Cli, DefaultsWhenNoArgs) {
  std::string err;
  const auto opt = parse({}, &err);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->scenario, "1");
  EXPECT_EQ(opt->protocol, Protocol::k2paCentralized);
  EXPECT_DOUBLE_EQ(opt->config.sim_seconds, 60.0);
  EXPECT_FALSE(opt->list_shares);
  EXPECT_FALSE(opt->check);
}

TEST(Cli, ParsesCheckFlag) {
  std::string err;
  const auto opt = parse({"--check"}, &err);
  ASSERT_TRUE(opt.has_value()) << err;
  EXPECT_TRUE(opt->check);
}

TEST(Cli, ParsesAllOptions) {
  std::string err;
  const auto opt = parse({"--scenario", "chain:4", "--protocol", "2pa-d", "--seconds",
                          "120", "--warmup", "5", "--pps", "50", "--alpha", "0.001",
                          "--seed", "42", "--queue", "10", "--shares"},
                         &err);
  ASSERT_TRUE(opt.has_value()) << err;
  EXPECT_EQ(opt->scenario, "chain:4");
  EXPECT_EQ(opt->protocol, Protocol::k2paDistributed);
  EXPECT_DOUBLE_EQ(opt->config.sim_seconds, 120.0);
  EXPECT_DOUBLE_EQ(opt->config.warmup_seconds, 5.0);
  EXPECT_DOUBLE_EQ(opt->config.cbr_pps, 50.0);
  EXPECT_DOUBLE_EQ(opt->config.alpha, 0.001);
  EXPECT_EQ(opt->config.seed, 42u);
  EXPECT_EQ(opt->config.queue_capacity, 10);
  EXPECT_TRUE(opt->list_shares);
}

TEST(Cli, HelpReturnsEmptyError) {
  std::string err = "sentinel";
  EXPECT_FALSE(parse({"--help"}, &err).has_value());
  EXPECT_TRUE(err.empty());
  EXPECT_NE(cli_usage().find("--scenario"), std::string::npos);
}

TEST(Cli, RejectsUnknownOption) {
  std::string err;
  EXPECT_FALSE(parse({"--bogus", "1"}, &err).has_value());
  EXPECT_NE(err.find("unknown option"), std::string::npos);
}

TEST(Cli, RejectsMissingValue) {
  std::string err;
  EXPECT_FALSE(parse({"--seconds"}, &err).has_value());
  EXPECT_NE(err.find("missing value"), std::string::npos);
}

TEST(Cli, RejectsBadValues) {
  std::string err;
  EXPECT_FALSE(parse({"--seconds", "-5"}, &err).has_value());
  EXPECT_FALSE(parse({"--pps", "0"}, &err).has_value());
  EXPECT_FALSE(parse({"--queue", "0"}, &err).has_value());
  EXPECT_FALSE(parse({"--protocol", "tcp"}, &err).has_value());
}

TEST(Cli, ParsesObservabilityOptions) {
  std::string err;
  const auto opt = parse({"--trace", "run.jsonl", "--trace-filter", "phy,backoff",
                          "--metrics-out", "m.jsonl", "--metrics-period", "0.5"},
                         &err);
  ASSERT_TRUE(opt.has_value()) << err;
  EXPECT_EQ(opt->trace_path, "run.jsonl");
  EXPECT_EQ(opt->trace_filter, "phy,backoff");
  EXPECT_EQ(opt->metrics_out, "m.jsonl");
  EXPECT_DOUBLE_EQ(opt->config.metrics_period_seconds, 0.5);
}

TEST(Cli, ObservabilityDisabledByDefault) {
  std::string err;
  const auto opt = parse({}, &err);
  ASSERT_TRUE(opt.has_value());
  EXPECT_TRUE(opt->trace_path.empty());
  EXPECT_TRUE(opt->metrics_out.empty());
  EXPECT_DOUBLE_EQ(opt->config.metrics_period_seconds, 0.0);
}

TEST(Cli, MetricsOutAloneDefaultsPeriodToOneSecond) {
  std::string err;
  const auto opt = parse({"--metrics-out", "m.jsonl"}, &err);
  ASSERT_TRUE(opt.has_value()) << err;
  EXPECT_DOUBLE_EQ(opt->config.metrics_period_seconds, 1.0);
}

TEST(Cli, RejectsTraceFilterWithoutTrace) {
  std::string err;
  EXPECT_FALSE(parse({"--trace-filter", "phy"}, &err).has_value());
  EXPECT_NE(err.find("--trace-filter requires --trace"), std::string::npos);
}

TEST(Cli, ParsesInBandControlProtocol) {
  std::string err;
  const auto opt = parse({"--protocol", "2pa-dctrl"}, &err);
  ASSERT_TRUE(opt.has_value()) << err;
  EXPECT_EQ(opt->protocol, Protocol::k2paDistributedCtrl);
  EXPECT_NE(cli_usage().find("2pa-dctrl"), std::string::npos);
}

// Naming the ctrl trace category only makes sense when the protocol runs a
// control plane; every other protocol would write a silently-empty stream.
TEST(Cli, RejectsCtrlTraceCategoryWithoutControlPlane) {
  std::string err;
  // Default protocol (2pa-c): no control plane.
  EXPECT_FALSE(
      parse({"--trace", "t.bin", "--trace-filter", "ctrl"}, &err).has_value());
  EXPECT_NE(err.find("no control plane"), std::string::npos);
  // Same in a comma list, with the protocol named explicitly — and option
  // order must not matter.
  EXPECT_FALSE(parse({"--trace", "t.bin", "--trace-filter", "mac,ctrl",
                      "--protocol", "2pa-d"},
                     &err)
                   .has_value());
  EXPECT_NE(err.find("no control plane"), std::string::npos);
  EXPECT_FALSE(parse({"--protocol", "802.11", "--trace", "t.bin",
                      "--trace-filter", "ctrl"},
                     &err)
                   .has_value());

  // Accepted with the in-band protocol, and "all" stays protocol-agnostic.
  EXPECT_TRUE(parse({"--protocol", "2pa-dctrl", "--trace", "t.bin",
                     "--trace-filter", "ctrl,lp"},
                    &err)
                  .has_value())
      << err;
  EXPECT_TRUE(
      parse({"--trace", "t.bin", "--trace-filter", "all"}, &err).has_value())
      << err;
}

TEST(Cli, RejectsMetricsPeriodWithoutMetricsOut) {
  std::string err;
  EXPECT_FALSE(parse({"--metrics-period", "1"}, &err).has_value());
  EXPECT_NE(err.find("--metrics-period requires --metrics-out"),
            std::string::npos);
}

TEST(Cli, RejectsBadObservabilityValues) {
  std::string err;
  EXPECT_FALSE(
      parse({"--trace", "t", "--trace-filter", "nonsense"}, &err).has_value());
  EXPECT_FALSE(
      parse({"--metrics-out", "m", "--metrics-period", "0"}, &err).has_value());
  EXPECT_FALSE(
      parse({"--metrics-out", "m", "--metrics-period", "-2"}, &err).has_value());
  EXPECT_FALSE(parse({"--trace", ""}, &err).has_value());
  EXPECT_FALSE(parse({"--metrics-out", ""}, &err).has_value());
}

TEST(Cli, ProtocolAliases) {
  EXPECT_EQ(parse_protocol("802.11"), Protocol::k80211);
  EXPECT_EQ(parse_protocol("dcf"), Protocol::k80211);
  EXPECT_EQ(parse_protocol("two-tier"), Protocol::kTwoTier);
  EXPECT_EQ(parse_protocol("two-tier-mm"), Protocol::kTwoTierBalanced);
  EXPECT_EQ(parse_protocol("2pa"), Protocol::k2paCentralized);
  EXPECT_EQ(parse_protocol("2pa-d"), Protocol::k2paDistributed);
  EXPECT_EQ(parse_protocol("maxmin"), Protocol::kMaxMin);
  EXPECT_FALSE(parse_protocol("csma").has_value());
}

TEST(NamedScenario, PaperScenarios) {
  Rng rng(1);
  EXPECT_EQ(make_named_scenario("1", rng).topo.node_count(), 6);
  EXPECT_EQ(make_named_scenario("2", rng).topo.node_count(), 14);
}

TEST(NamedScenario, Chain) {
  Rng rng(1);
  const Scenario sc = make_named_scenario("chain:5", rng);
  EXPECT_EQ(sc.topo.node_count(), 6);
  ASSERT_EQ(sc.flow_specs.size(), 1u);
  EXPECT_EQ(sc.flow_specs[0].path.size(), 6u);
}

TEST(NamedScenario, Grid) {
  Rng rng(1);
  const Scenario sc = make_named_scenario("grid:3x4", rng);
  EXPECT_EQ(sc.topo.node_count(), 12);
  EXPECT_EQ(sc.flow_specs.size(), 4u);
  FlowSet flows(sc.topo, sc.flow_specs);  // validates routes
  EXPECT_TRUE(flows.all_shortcut_free());
}

TEST(NamedScenario, RandomDeterministic) {
  Rng a(7), b(7);
  const Scenario s1 = make_named_scenario("random:10", a);
  const Scenario s2 = make_named_scenario("random:10", b);
  ASSERT_EQ(s1.flow_specs.size(), s2.flow_specs.size());
  for (std::size_t i = 0; i < s1.flow_specs.size(); ++i)
    EXPECT_EQ(s1.flow_specs[i].path, s2.flow_specs[i].path);
}

TEST(NamedScenario, RejectsBadSpecs) {
  Rng rng(1);
  EXPECT_THROW(make_named_scenario("chain:0", rng), ContractViolation);
  EXPECT_THROW(make_named_scenario("grid:99x2", rng), ContractViolation);
  EXPECT_THROW(make_named_scenario("grid:4", rng), ContractViolation);
  EXPECT_THROW(make_named_scenario("random:1", rng), ContractViolation);
  EXPECT_THROW(make_named_scenario("torus:3", rng), ContractViolation);
}

TEST(Cli, FormatRunResultContainsEssentials) {
  Rng rng(1);
  const Scenario sc = make_named_scenario("1", rng);
  SimConfig cfg;
  cfg.sim_seconds = 5.0;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  const std::string s = format_run_result(sc, r, cfg, /*list_shares=*/true);
  EXPECT_NE(s.find("2PA-C"), std::string::npos);
  EXPECT_NE(s.find("A-B-C"), std::string::npos);
  EXPECT_NE(s.find("target share"), std::string::npos);
  EXPECT_NE(s.find("F2.2"), std::string::npos);  // share listing present
}

}  // namespace
}  // namespace e2efa
