#include <gtest/gtest.h>

#include <vector>

#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "route/routing.hpp"
#include "sim/simulator.hpp"
#include "topology/builders.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

// ---------- event engine ----------

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(100, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, HandlersMaySchedule) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) sim.schedule_in(5, chain);
  };
  sim.schedule_in(5, chain);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, ScheduleAtCurrentTimeRuns) {
  Simulator sim;
  bool inner = false;
  sim.schedule_at(10, [&] { sim.schedule_at(sim.now(), [&] { inner = true; }); });
  sim.run();
  EXPECT_TRUE(inner);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelTwiceIsNoop) {
  Simulator sim;
  const auto id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(Simulator::kInvalidEvent));
}

TEST(Simulator, CancelFiredIsNoop) {
  Simulator sim;
  const auto id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), ContractViolation);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), ContractViolation);
}

TEST(Simulator, EventCountTracked) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

// ---------- routing ----------

TEST(Routing, ChainPath) {
  Topology t = make_chain(5);
  const auto p = shortest_path(t, 0, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Routing, TrivialPath) {
  Topology t = make_chain(3);
  const auto p = shortest_path(t, 1, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<NodeId>{1}));
}

TEST(Routing, UnreachableReturnsNullopt) {
  Topology t({{0, 0}, {100, 0}, {10'000, 0}}, 250.0);
  EXPECT_FALSE(shortest_path(t, 0, 2).has_value());
  EXPECT_THROW(make_routed_flow(t, 0, 2), ContractViolation);
}

TEST(Routing, PrefersFewestHops) {
  // Grid: 0-1-2 / 3-4-5; direct diagonal absent, min-hop 0->5 is 3 hops.
  Topology t = make_grid(2, 3, 200.0, 250.0);
  const auto p = shortest_path(t, 0, 5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 4u);
}

TEST(Routing, DeterministicTieBreak) {
  Topology t = make_grid(2, 2, 200.0, 250.0);  // square 0-1 / 2-3
  // Two 2-hop routes 0->3 (via 1 or 2); BFS must pick via 1 (smaller id).
  const auto p = shortest_path(t, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<NodeId>{0, 1, 3}));
}

TEST(Routing, MakeRoutedFlowCarriesWeight) {
  Topology t = make_chain(4);
  const Flow f = make_routed_flow(t, 0, 3, 2.5);
  EXPECT_EQ(f.path, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(f.weight, 2.5);
}

TEST(Routing, MinHopRoutesAreShortcutFree) {
  // A min-hop route never has a shortcut: if path[i] and path[j] (j>i+1)
  // were in range, the route would not be minimal.
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    Topology t = make_random(16, 800, 800, rng);
    FlowSet fs(t, {make_routed_flow(t, 0, t.node_count() - 1)});
    EXPECT_TRUE(fs.all_shortcut_free());
  }
}

TEST(Routing, HopDistanceMatrix) {
  Topology t = make_chain(5);
  const auto d = hop_distances(t);
  EXPECT_EQ(d[0][4], 4);
  EXPECT_EQ(d[2][2], 0);
  EXPECT_EQ(d[4][1], 3);
}

TEST(Routing, HopDistanceUnreachable) {
  Topology t({{0, 0}, {10'000, 0}}, 250.0);
  const auto d = hop_distances(t);
  EXPECT_EQ(d[0][1], -1);
}

TEST(Routing, MaskedPathAvoidsDeadNodesAndLinks) {
  // Square 0-1 / 2-3: two 2-hop routes 0->3 (via 1 or 2).
  Topology t = make_grid(2, 2, 200.0, 250.0);

  TopologyMask all_up;
  EXPECT_EQ(*shortest_path(t, 0, 3, all_up), (std::vector<NodeId>{0, 1, 3}));

  // Kill node 1: the route detours via 2.
  TopologyMask dead1;
  dead1.node_up.assign(4, true);
  dead1.node_up[1] = false;
  EXPECT_EQ(*shortest_path(t, 0, 3, dead1), (std::vector<NodeId>{0, 2, 3}));

  // Cut link 0-1 instead: same detour, node 1 still alive.
  TopologyMask cut01;
  cut01.down_links = {{0, 1}};
  EXPECT_EQ(*shortest_path(t, 0, 3, cut01), (std::vector<NodeId>{0, 2, 3}));

  // Kill both relays: unreachable under the mask.
  TopologyMask dead12;
  dead12.node_up.assign(4, true);
  dead12.node_up[1] = dead12.node_up[2] = false;
  EXPECT_FALSE(shortest_path(t, 0, 3, dead12).has_value());

  // A dead endpoint is unreachable too.
  TopologyMask dead0;
  dead0.node_up.assign(4, true);
  dead0.node_up[0] = false;
  EXPECT_FALSE(shortest_path(t, 0, 3, dead0).has_value());
}

TEST(Routing, SelfFlowRejected) {
  Topology t = make_chain(3);
  // shortest_path tolerates src == dst (the trivial path), but a *flow*
  // from a node to itself is meaningless and rejected everywhere.
  EXPECT_THROW(make_routed_flow(t, 2, 2), ContractViolation);

  Scenario sc{"self", make_chain(3), {}, {}};
  Flow f;
  f.path = {1, 0, 1};  // explicit path back to the source
  sc.flow_specs.push_back(f);
  SimConfig cfg;
  cfg.sim_seconds = 1.0;
  EXPECT_THROW(run_scenario(sc, Protocol::k80211, cfg), ContractViolation);
}

TEST(Routing, PaperScenarioRoutesMatchSpecs) {
  // The flow paths hard-coded in the scenarios are exactly the min-hop
  // routes DSR would find.
  for (Scenario sc : {scenario1(), scenario2()}) {
    for (const Flow& f : sc.flow_specs) {
      const auto p = shortest_path(sc.topo, f.path.front(), f.path.back());
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->size(), f.path.size()) << sc.name;
    }
  }
}

}  // namespace
}  // namespace e2efa
