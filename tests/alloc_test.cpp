#include <gtest/gtest.h>

#include <cmath>

#include "alloc/allocation.hpp"
#include "alloc/centralized.hpp"
#include "alloc/distributed.hpp"
#include "alloc/schedulability.hpp"
#include "alloc/two_tier.hpp"
#include "net/scenarios.hpp"
#include "topology/builders.hpp"

namespace e2efa {
namespace {

constexpr double kTol = 1e-6;

struct Built {
  explicit Built(Scenario s) : sc(std::move(s)), flows(sc.topo, sc.flow_specs), graph(sc.topo, flows) {}
  Built(Scenario s, const std::vector<std::pair<int, int>>& edges)
      : sc(std::move(s)), flows(sc.topo, sc.flow_specs), graph(flows, edges) {}
  Scenario sc;
  FlowSet flows;
  ContentionGraph graph;
};

// ---------- basic shares & bounds ----------

TEST(BasicShares, Scenario1) {
  Built b(scenario1());
  // Σ w v = 2 + 2 = 4 -> B/4 each (the paper's Fig.-1 basic share).
  const auto s = basic_shares(b.flows);
  EXPECT_NEAR(s[0], 0.25, kTol);
  EXPECT_NEAR(s[1], 0.25, kTol);
}

TEST(BasicShares, Scenario2) {
  Built b(scenario2());
  // Σ w v = 8 -> B/8 each (paper Sec. IV-A LP lower bounds).
  for (double s : basic_shares(b.flows)) EXPECT_NEAR(s, 0.125, kTol);
}

TEST(BasicShares, WeightsScaleShares) {
  AbstractExample ex = fig4_example();
  Built b(std::move(ex.scenario), ex.edges);
  // Σ w v = 1·1 + 2·2 + 3·1 + 2·1 = 10 -> (B/10, B/5, 3B/10, B/5).
  const auto s = basic_shares(b.flows);
  EXPECT_NEAR(s[0], 0.1, kTol);
  EXPECT_NEAR(s[1], 0.2, kTol);
  EXPECT_NEAR(s[2], 0.3, kTol);
  EXPECT_NEAR(s[3], 0.2, kTol);
}

TEST(BasicShares, SubflowBasicSharesScenario1) {
  Built b(scenario1());
  // 4 unit-weight subflows -> B/4 each (previous work's guarantee).
  for (double s : subflow_basic_shares(b.flows)) EXPECT_NEAR(s, 0.25, kTol);
}

TEST(FairnessBound, Scenario1UpperBound) {
  Built b(scenario1());
  // ω_Ω = 3 -> each flow bounded by B/3, total 2B/3 (Sec. III-B text).
  EXPECT_NEAR(fairness_upper_bound(b.graph), 2.0 / 3.0, kTol);
  const auto r = fairness_bound_shares(b.graph);
  EXPECT_NEAR(r[0], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r[1], 1.0 / 3.0, kTol);
}

TEST(FairnessBound, PentagonUpperBound) {
  AbstractExample ex = pentagon_example();
  Built b(std::move(ex.scenario), ex.edges);
  // ω_Ω = 2 -> bound 5B/2 with B/2 per flow (Fig. 5).
  EXPECT_NEAR(fairness_upper_bound(b.graph), 2.5, kTol);
}

TEST(Allocation, EqualizedComputesEndToEnd) {
  Built b(scenario1());
  const Allocation a = make_equalized_allocation(b.flows, {0.5, 0.25});
  EXPECT_NEAR(a.end_to_end[0], 0.5, kTol);
  EXPECT_NEAR(a.end_to_end[1], 0.25, kTol);
  EXPECT_NEAR(a.total_effective, 0.75, kTol);
  EXPECT_NEAR(a.subflow_share[0], 0.5, kTol);
  EXPECT_NEAR(a.subflow_share[3], 0.25, kTol);
}

TEST(Allocation, SubflowAllocationMinRule) {
  Built b(scenario1());
  // Two-tier style shares: F1 = (3/4, 1/4), F2 = (3/8, 3/8).
  const Allocation a = make_subflow_allocation(b.flows, {0.75, 0.25, 0.375, 0.375});
  EXPECT_NEAR(a.end_to_end[0], 0.25, kTol);   // min(3/4, 1/4)
  EXPECT_NEAR(a.end_to_end[1], 0.375, kTol);  // min(3/8, 3/8)
  EXPECT_NEAR(a.total_effective, 0.625, kTol);  // paper's 5B/8
}

TEST(Allocation, Checkers) {
  Built b(scenario1());
  const Allocation good = make_equalized_allocation(b.flows, {0.5, 0.25});
  EXPECT_TRUE(satisfies_clique_capacity(b.graph, good.subflow_share));
  EXPECT_TRUE(satisfies_basic_fairness(b.flows, good.flow_share));
  EXPECT_NEAR(max_clique_load(b.graph, good.subflow_share), 1.0, kTol);

  const Allocation overload = make_equalized_allocation(b.flows, {0.6, 0.25});
  EXPECT_FALSE(satisfies_clique_capacity(b.graph, overload.subflow_share));
  const Allocation starved = make_equalized_allocation(b.flows, {0.5, 0.2});
  EXPECT_FALSE(satisfies_basic_fairness(b.flows, starved.flow_share));
}

TEST(Allocation, FairnessResidual) {
  Built b(scenario1());
  EXPECT_NEAR(fairness_residual(b.flows, {0.3, 0.3}), 0.0, kTol);
  EXPECT_NEAR(fairness_residual(b.flows, {0.5, 0.25}), 0.25, kTol);
}

// ---------- centralized allocator (Sec. III-B / IV-A worked examples) ----------

TEST(Centralized, Fig1Example) {
  Built b(scenario1());
  const auto r = centralized_allocate(b.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Paper: (r̂1, r̂2) = (B/2, B/4), total effective 3B/4.
  EXPECT_NEAR(r.allocation.flow_share[0], 0.5, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 0.25, kTol);
  EXPECT_NEAR(r.allocation.total_effective, 0.75, kTol);
  EXPECT_EQ(r.min_relaxation, 1.0);
}

TEST(Centralized, Fig6Example) {
  Built b(scenario2());
  const auto r = centralized_allocate(b.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Paper: (B/3, B/3, 2B/3, B/8, 3B/4).
  EXPECT_NEAR(r.allocation.flow_share[0], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[2], 2.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[3], 1.0 / 8.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[4], 3.0 / 4.0, kTol);
}

TEST(Centralized, Fig4Example) {
  AbstractExample ex = fig4_example();
  Built b(std::move(ex.scenario), ex.edges);
  const auto r = centralized_allocate(b.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Paper Sec. IV-C: (3B/10, B/5, 3B/10, 7B/10).
  EXPECT_NEAR(r.allocation.flow_share[0], 0.3, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 0.2, kTol);
  EXPECT_NEAR(r.allocation.flow_share[2], 0.3, kTol);
  EXPECT_NEAR(r.allocation.flow_share[3], 0.7, kTol);
}

TEST(Centralized, ResultSatisfiesInvariants) {
  for (Scenario sc : {scenario1(), scenario2()}) {
    Built b(std::move(sc));
    const auto r = centralized_allocate(b.graph);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_TRUE(satisfies_clique_capacity(b.graph, r.allocation.subflow_share));
    EXPECT_TRUE(satisfies_basic_fairness(b.flows, r.allocation.flow_share));
  }
}

TEST(Centralized, PentagonGetsBasicShareOrBetter) {
  AbstractExample ex = pentagon_example();
  Built b(std::move(ex.scenario), ex.edges);
  const auto r = centralized_allocate(b.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // LP optimum allocates B/2 per flow (total 5B/2) — the Prop.-1 bound.
  for (double s : r.allocation.flow_share) EXPECT_NEAR(s, 0.5, kTol);
}

TEST(Centralized, SingleFlowChainGetsThird) {
  // One 6-hop flow alone: r̂ = B/3 (intra-flow reuse; v = 3).
  Topology topo = make_chain(7);
  Flow f;
  for (int i = 0; i < 7; ++i) f.path.push_back(i);
  FlowSet flows(topo, {f});
  ContentionGraph g(topo, flows);
  const auto r = centralized_allocate(g);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.allocation.flow_share[0], 1.0 / 3.0, kTol);
}

// ---------- two-tier baseline ----------

TEST(TwoTier, Fig1Example) {
  Built b(scenario1());
  const auto r = two_tier_allocate(b.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Paper: (r1.1, r1.2, r2.1, r2.2) = (3B/4, B/4, 3B/8, 3B/8).
  EXPECT_NEAR(r.allocation.subflow_share[0], 0.75, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[1], 0.25, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[2], 0.375, kTol);
  EXPECT_NEAR(r.allocation.subflow_share[3], 0.375, kTol);
  // Total single-hop throughput 7B/4 — the paper's quoted figure.
  EXPECT_NEAR(r.total_single_hop, 1.75, kTol);
  // End-to-end: (B/4, 3B/8), total effective 5B/8 — inferior to 2PA's 3B/4.
  EXPECT_NEAR(r.allocation.end_to_end[0], 0.25, kTol);
  EXPECT_NEAR(r.allocation.end_to_end[1], 0.375, kTol);
  EXPECT_NEAR(r.allocation.total_effective, 0.625, kTol);
}

TEST(TwoTier, UpstreamDownstreamImbalanceExists) {
  // The defect the paper highlights: two-tier gives F1.1 three times the
  // share of F1.2, so packets pile up at the relay.
  Built b(scenario1());
  const auto r = two_tier_allocate(b.graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_GT(r.allocation.subflow_share[0], 2.9 * r.allocation.subflow_share[1]);
}

TEST(TwoTier, RespectsSubflowBasicShares) {
  for (Scenario sc : {scenario1(), scenario2()}) {
    Built b(std::move(sc));
    const auto r = two_tier_allocate(b.graph);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    const auto mins = subflow_basic_shares(b.flows);
    for (int s = 0; s < b.flows.subflow_count(); ++s)
      EXPECT_GE(r.allocation.subflow_share[s], mins[s] - kTol);
    EXPECT_TRUE(satisfies_clique_capacity(b.graph, r.allocation.subflow_share));
  }
}

TEST(TwoTier, TotalSingleHopBeatsEndToEndObjective) {
  // Two-tier maximizes single-hop throughput, so its single-hop total must
  // be >= the 2PA allocation's single-hop total on the same graph.
  Built b(scenario1());
  const auto tt = two_tier_allocate(b.graph);
  const auto c = centralized_allocate(b.graph);
  double c_single_hop = 0.0;
  for (double s : c.allocation.subflow_share) c_single_hop += s;
  EXPECT_GE(tt.total_single_hop, c_single_hop - kTol);
  // ...while 2PA wins end-to-end.
  EXPECT_GT(c.allocation.total_effective, tt.allocation.total_effective + 0.1);
}

// ---------- distributed allocator (Table I) ----------

TEST(Distributed, Scenario2MatchesPaperVector) {
  Built b(scenario2());
  const auto r = distributed_allocate(b.sc.topo, b.flows, b.graph);
  // Paper 2PA-D: (1/3, 1/5, 1/4, 1/4, 1/2).
  EXPECT_NEAR(r.allocation.flow_share[0], 1.0 / 3.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[1], 1.0 / 5.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[2], 1.0 / 4.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[3], 1.0 / 4.0, kTol);
  EXPECT_NEAR(r.allocation.flow_share[4], 1.0 / 2.0, kTol);
}

TEST(Distributed, TableILocalProblems) {
  Built b(scenario2());
  const auto r = distributed_allocate(b.sc.topo, b.flows, b.graph);
  ASSERT_EQ(r.locals.size(), 5u);

  // Row 1 — flow F1 at source A: vars {F1, F2}, mins B/3, solution (B/3, B/3).
  const LocalProblem& p1 = r.locals[0];
  EXPECT_EQ(p1.vars, (std::vector<FlowId>{0, 1}));
  EXPECT_NEAR(p1.unit_basic, 1.0 / 3.0, kTol);
  ASSERT_EQ(p1.status, LpStatus::kOptimal);
  EXPECT_NEAR(p1.solution[0], 1.0 / 3.0, kTol);
  EXPECT_NEAR(p1.solution[1], 1.0 / 3.0, kTol);

  // Row 2 — flow F2 at source F: vars {F1, F2, F3}, mins B/5,
  // solution (2B/5, B/5, 4B/5).
  const LocalProblem& p2 = r.locals[1];
  EXPECT_EQ(p2.vars, (std::vector<FlowId>{0, 1, 2}));
  EXPECT_NEAR(p2.unit_basic, 0.2, kTol);
  ASSERT_EQ(p2.status, LpStatus::kOptimal);
  EXPECT_NEAR(p2.solution[0], 0.4, kTol);
  EXPECT_NEAR(p2.solution[1], 0.2, kTol);
  EXPECT_NEAR(p2.solution[2], 0.8, kTol);

  // Row 3 — flow F3 at source H: vars {F2, F3, F4}, mins B/4,
  // solution (3B/4, B/4, 3B/4).
  const LocalProblem& p3 = r.locals[2];
  EXPECT_EQ(p3.vars, (std::vector<FlowId>{1, 2, 3}));
  EXPECT_NEAR(p3.unit_basic, 0.25, kTol);
  ASSERT_EQ(p3.status, LpStatus::kOptimal);
  EXPECT_NEAR(p3.solution[0], 0.75, kTol);
  EXPECT_NEAR(p3.solution[1], 0.25, kTol);
  EXPECT_NEAR(p3.solution[2], 0.75, kTol);

  // Row 4 — flow F4 at source J: vars {F3, F4, F5}, mins B/4,
  // solution (3B/4, B/4, B/2).
  const LocalProblem& p4 = r.locals[3];
  EXPECT_EQ(p4.vars, (std::vector<FlowId>{2, 3, 4}));
  EXPECT_NEAR(p4.unit_basic, 0.25, kTol);
  ASSERT_EQ(p4.status, LpStatus::kOptimal);
  EXPECT_NEAR(p4.solution[0], 0.75, kTol);
  EXPECT_NEAR(p4.solution[1], 0.25, kTol);
  EXPECT_NEAR(p4.solution[2], 0.5, kTol);

  // Row 5 — flow F5 at source M: vars {F3, F4, F5}, same LP as row 4.
  const LocalProblem& p5 = r.locals[4];
  EXPECT_EQ(p5.vars, (std::vector<FlowId>{2, 3, 4}));
  EXPECT_NEAR(p5.unit_basic, 0.25, kTol);
  EXPECT_NEAR(p5.flow_share, 0.5, kTol);
}

TEST(Distributed, Scenario1IsConservative) {
  // On the Fig.-1 topology F2's source has full knowledge (gets the
  // centralized B/4), while F1's source A only sees F1 locally: its local
  // basic share of B/2 for everything is jointly infeasible with the clique
  // rows propagated from B, so it is proportionally relaxed (factor 2/3),
  // giving the conservative r̂1 = B/3 < B/2.
  Built b(scenario1());
  const auto d = distributed_allocate(b.sc.topo, b.flows, b.graph);
  EXPECT_NEAR(d.allocation.flow_share[0], 1.0 / 3.0, kTol);
  EXPECT_NEAR(d.allocation.flow_share[1], 1.0 / 4.0, kTol);
  EXPECT_NEAR(d.locals[0].min_relaxation, 2.0 / 3.0, 1e-4);
  EXPECT_NEAR(d.locals[1].min_relaxation, 1.0, kTol);
  // Still globally feasible and basic-fair.
  EXPECT_TRUE(satisfies_clique_capacity(b.graph, d.allocation.subflow_share));
  EXPECT_TRUE(satisfies_basic_fairness(b.flows, d.allocation.flow_share));
}

TEST(Distributed, LocalBasicSharesAtLeastCentralized) {
  // Paper: local optimization generates a slightly higher basic share.
  Built b(scenario2());
  const auto r = distributed_allocate(b.sc.topo, b.flows, b.graph);
  const auto central_basic = basic_shares(b.flows);
  for (const LocalProblem& lp : r.locals) {
    const double w = b.flows.flow(lp.flow).weight;
    EXPECT_GE(w * lp.unit_basic, central_basic[lp.flow] - kTol);
  }
}

TEST(Distributed, SatisfiesGlobalCliqueCapacity) {
  // The distributed allocation (min over conservative local LPs) must still
  // be globally feasible on the paper topologies.
  for (Scenario sc : {scenario1(), scenario2()}) {
    Built b(std::move(sc));
    const auto r = distributed_allocate(b.sc.topo, b.flows, b.graph);
    EXPECT_TRUE(satisfies_clique_capacity(b.graph, r.allocation.subflow_share));
  }
}

TEST(Distributed, TotalEffectiveAtMostCentralized) {
  Built b(scenario2());
  const auto d = distributed_allocate(b.sc.topo, b.flows, b.graph);
  const auto c = centralized_allocate(b.graph);
  EXPECT_LE(d.allocation.total_effective, c.allocation.total_effective + kTol);
}

// ---------- schedulability ----------

TEST(Schedulability, PentagonBoundUnachievable) {
  AbstractExample ex = pentagon_example();
  Built b(std::move(ex.scenario), ex.edges);
  // Demand B/2 on every subflow: needs 5/4 of the period -> unschedulable.
  const auto r = check_schedulable(b.graph, std::vector<double>(5, 0.5));
  EXPECT_FALSE(r.schedulable);
  EXPECT_NEAR(r.time_needed, 1.25, kTol);
}

TEST(Schedulability, PentagonTwoFifthsAchievable) {
  AbstractExample ex = pentagon_example();
  Built b(std::move(ex.scenario), ex.edges);
  // The fractional limit for C5 is 2/5 per vertex (independence ratio).
  const auto r = check_schedulable(b.graph, std::vector<double>(5, 0.4));
  EXPECT_TRUE(r.schedulable);
  EXPECT_NEAR(r.time_needed, 1.0, kTol);
}

TEST(Schedulability, Fig1OptimalAllocationSchedulable) {
  Built b(scenario1());
  const auto c = centralized_allocate(b.graph);
  const auto r = check_schedulable(b.graph, c.allocation.subflow_share);
  EXPECT_TRUE(r.schedulable);
}

TEST(Schedulability, Scenario2CentralizedSchedulable) {
  Built b(scenario2());
  const auto c = centralized_allocate(b.graph);
  const auto r = check_schedulable(b.graph, c.allocation.subflow_share);
  EXPECT_TRUE(r.schedulable);
}

TEST(Schedulability, WitnessScheduleCoversDemand) {
  Built b(scenario1());
  const auto c = centralized_allocate(b.graph);
  const auto r = check_schedulable(b.graph, c.allocation.subflow_share);
  std::vector<double> served(static_cast<std::size_t>(b.flows.subflow_count()), 0.0);
  double total_time = 0.0;
  for (const auto& e : r.schedule) {
    total_time += e.fraction;
    for (int v : e.independent_set) served[static_cast<std::size_t>(v)] += e.fraction;
  }
  EXPECT_NEAR(total_time, r.time_needed, kTol);
  for (int v = 0; v < b.flows.subflow_count(); ++v)
    EXPECT_GE(served[v], c.allocation.subflow_share[v] - kTol);
}

TEST(Schedulability, ZeroDemandTrivially) {
  Built b(scenario1());
  const auto r = check_schedulable(b.graph, std::vector<double>(4, 0.0));
  EXPECT_TRUE(r.schedulable);
  EXPECT_NEAR(r.time_needed, 0.0, kTol);
}

TEST(Schedulability, RejectsNegativeDemand) {
  Built b(scenario1());
  EXPECT_THROW(check_schedulable(b.graph, {-0.1, 0, 0, 0}), ContractViolation);
}

}  // namespace
}  // namespace e2efa
