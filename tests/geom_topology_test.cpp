#include <gtest/gtest.h>

#include "geom/geom.hpp"
#include "net/scenarios.hpp"
#include "topology/builders.hpp"
#include "topology/topology.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace e2efa {
namespace {

// ---------- geometry ----------

TEST(Geom, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Geom, WithinRangeBoundaryInclusive) {
  EXPECT_TRUE(within_range({0, 0}, {250, 0}, 250.0));
  EXPECT_FALSE(within_range({0, 0}, {250.001, 0}, 250.0));
  EXPECT_TRUE(within_range({0, 0}, {0, 0}, 0.0));
}

TEST(Geom, NegativeRangeThrows) {
  EXPECT_THROW(within_range({0, 0}, {1, 1}, -1.0), ContractViolation);
}

// ---------- topology ----------

TEST(Topology, ChainLinksOnlyAdjacent) {
  Topology t = make_chain(5, 200.0, 250.0);
  for (NodeId i = 0; i < 4; ++i) EXPECT_TRUE(t.has_link(i, i + 1));
  EXPECT_FALSE(t.has_link(0, 2));
  EXPECT_FALSE(t.has_link(1, 3));
  EXPECT_FALSE(t.has_link(0, 4));
}

TEST(Topology, NoSelfLink) {
  Topology t = make_chain(3);
  EXPECT_FALSE(t.has_link(1, 1));
  EXPECT_FALSE(t.interferes(1, 1));
}

TEST(Topology, NeighborsSortedAndSymmetric) {
  Topology t = make_chain(4);
  EXPECT_EQ(t.neighbors(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(t.neighbors(1), (std::vector<NodeId>{0, 2}));
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b) EXPECT_EQ(t.has_link(a, b), t.has_link(b, a));
}

TEST(Topology, InterferenceRangeWiderThanTx) {
  // 250 m tx / 500 m interference: node 0 and 2 (400 m apart) interfere but
  // cannot exchange frames.
  Topology t({{0, 0}, {200, 0}, {400, 0}}, 250.0, 500.0);
  EXPECT_FALSE(t.has_link(0, 2));
  EXPECT_TRUE(t.interferes(0, 2));
  EXPECT_EQ(t.interference_neighbors(0).size(), 2u);
  EXPECT_EQ(t.neighbors(0).size(), 1u);
}

TEST(Topology, InterferenceSmallerThanTxThrows) {
  EXPECT_THROW(Topology({{0, 0}, {1, 1}}, 250.0, 100.0), ContractViolation);
}

TEST(Topology, Connectivity) {
  EXPECT_TRUE(make_chain(6).connected());
  // Two distant pairs: disconnected.
  Topology t({{0, 0}, {100, 0}, {10000, 0}, {10100, 0}}, 250.0);
  EXPECT_FALSE(t.connected());
  EXPECT_TRUE(Topology({{5, 5}}, 250.0).connected());
}

TEST(Topology, LabelsDefaultAndCustom) {
  Topology t = make_chain(2);
  EXPECT_EQ(t.label(0), "0");
  t.set_labels({"X", "Y"});
  EXPECT_EQ(t.label(1), "Y");
}

TEST(Topology, OutOfRangeNodeThrows) {
  Topology t = make_chain(2);
  EXPECT_THROW(t.position(2), ContractViolation);
  EXPECT_THROW(t.has_link(0, 5), ContractViolation);
  EXPECT_THROW((void)t.neighbors(-1), ContractViolation);
}

TEST(Topology, GridStructure) {
  Topology t = make_grid(3, 3, 200.0, 250.0);
  EXPECT_EQ(t.node_count(), 9);
  // Center node (1,1) = id 4 links to the 4-neighborhood but not diagonals
  // (diagonal distance 283 > 250).
  EXPECT_EQ(t.neighbors(4), (std::vector<NodeId>{1, 3, 5, 7}));
}

TEST(Topology, RandomPlacementConnectedAndDeterministic) {
  Rng r1(12345), r2(12345);
  Topology a = make_random(15, 800, 800, r1);
  Topology b = make_random(15, 800, 800, r2);
  EXPECT_TRUE(a.connected());
  for (NodeId i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.position(i).x, b.position(i).x);
    EXPECT_EQ(a.position(i).y, b.position(i).y);
  }
}

TEST(Topology, RandomPlacementImpossibleThrows) {
  Rng r(1);
  // 2 nodes in a 100 km field with 250 m range will essentially never
  // connect in 3 attempts.
  EXPECT_THROW(make_random(2, 100'000, 100'000, r, 250.0, true, 3),
               ContractViolation);
}

// ---------- paper scenarios: geometric sanity ----------

TEST(Scenarios, Scenario1LinksMatchFig1) {
  Scenario sc = scenario1();
  const auto& t = sc.topo;
  ASSERT_EQ(t.node_count(), 6);
  // Flow paths are live links.
  EXPECT_TRUE(t.has_link(0, 1));  // A-B
  EXPECT_TRUE(t.has_link(1, 2));  // B-C
  EXPECT_TRUE(t.has_link(3, 4));  // D-E
  EXPECT_TRUE(t.has_link(4, 5));  // E-F
  // The crucial contention bridge: C in range of E.
  EXPECT_TRUE(t.has_link(2, 4));
  // F1.1's endpoints are isolated from F2 entirely.
  for (NodeId f2node : {3, 4, 5}) {
    EXPECT_FALSE(t.has_link(0, f2node));
    EXPECT_FALSE(t.has_link(1, f2node));
  }
  // No shortcuts: A-C and D-F out of range.
  EXPECT_FALSE(t.has_link(0, 2));
  EXPECT_FALSE(t.has_link(3, 5));
}

TEST(Scenarios, Scenario2LinksMatchFig6) {
  Scenario sc = scenario2();
  const auto& t = sc.topo;
  ASSERT_EQ(t.node_count(), 14);
  // All flow hops are links.
  for (const Flow& f : sc.flow_specs)
    for (std::size_t h = 0; h + 1 < f.path.size(); ++h)
      EXPECT_TRUE(t.has_link(f.path[h], f.path[h + 1]));
  // G (6) bridges F2 to F1 via D (3).
  EXPECT_TRUE(t.has_link(6, 3));
  // F (5) in range of H (7): F2.1 contends F3.1.
  EXPECT_TRUE(t.has_link(5, 7));
  // I (8) in range of J (9): F3.1 contends F4.1; but I out of range of K.
  EXPECT_TRUE(t.has_link(8, 9));
  EXPECT_FALSE(t.has_link(8, 10));
  // M (12) in range of J and K; N (13) in range of L.
  EXPECT_TRUE(t.has_link(12, 9));
  EXPECT_TRUE(t.has_link(12, 10));
  EXPECT_TRUE(t.has_link(13, 11));
  // F1's chain has no shortcuts.
  for (int i = 0; i < 5; ++i)
    for (int j = i + 2; j < 5; ++j) EXPECT_FALSE(t.has_link(i, j));
}

}  // namespace
}  // namespace e2efa
