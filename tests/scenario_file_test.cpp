#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "alloc/centralized.hpp"
#include "net/scenario_file.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

constexpr const char* kFig1Text = R"(
# Fig. 1 topology
range 250
node A 0 0
node B 200 0
node C 400 0
node D 800 0
node E 600 0
node F 600 -200
flow A C
flow D F
)";

TEST(ScenarioFile, ParsesFig1Equivalent) {
  const Scenario sc = parse_scenario_text(kFig1Text, "fig1");
  EXPECT_EQ(sc.topo.node_count(), 6);
  EXPECT_EQ(sc.topo.label(0), "A");
  ASSERT_EQ(sc.flow_specs.size(), 2u);
  // Routed flows found the 2-hop paths.
  EXPECT_EQ(sc.flow_specs[0].path, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(sc.flow_specs[1].path, (std::vector<NodeId>{3, 4, 5}));

  // And the allocation machinery gives the paper's Fig.-1 answer.
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);
  const auto r = centralized_allocate(graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.allocation.flow_share[0], 0.5, 1e-6);
  EXPECT_NEAR(r.allocation.flow_share[1], 0.25, 1e-6);
}

TEST(ScenarioFile, ExplicitPathAndWeight) {
  const Scenario sc = parse_scenario_text(R"(
node X 0 0
node Y 200 0
node Z 400 0
flow X Y Z weight 2.5
flow Z X weight 0.5
)");
  ASSERT_EQ(sc.flow_specs.size(), 2u);
  EXPECT_EQ(sc.flow_specs[0].path, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(sc.flow_specs[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(sc.flow_specs[1].weight, 0.5);
}

TEST(ScenarioFile, CustomRanges) {
  const Scenario sc = parse_scenario_text(R"(
range 100
irange 300
node A 0 0
node B 90 0
node C 200 0
flow A B
)");
  EXPECT_TRUE(sc.topo.has_link(0, 1));
  EXPECT_FALSE(sc.topo.has_link(1, 2));   // 110 m > 100 m tx range
  EXPECT_TRUE(sc.topo.interferes(1, 2));  // < 300 m interference
}

TEST(ScenarioFile, CommentsAndBlanksIgnored) {
  const Scenario sc = parse_scenario_text(R"(
# header comment

node A 0 0   # inline comment
node B 100 0
flow A B     # routed
)");
  EXPECT_EQ(sc.topo.node_count(), 2);
}

TEST(ScenarioFile, ErrorsCarryLineNumbers) {
  try {
    parse_scenario_text("node A 0 0\nnode A 1 1\n");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(ScenarioFile, RejectsMalformedInput) {
  EXPECT_THROW(parse_scenario_text("bogus A\n"), ContractViolation);
  EXPECT_THROW(parse_scenario_text("node A 0 0\nflow A\n"), ContractViolation);
  EXPECT_THROW(parse_scenario_text("node A 0 0\nnode B 10 0\nflow A Q\n"),
               ContractViolation);
  EXPECT_THROW(parse_scenario_text("range -1\nnode A 0 0\nflow A A\n"),
               ContractViolation);
  EXPECT_THROW(parse_scenario_text("node A 0 0\n"), ContractViolation);  // no flows
  EXPECT_THROW(parse_scenario_text("flow A B\n"), ContractViolation);    // no nodes
  // Unreachable routed flow.
  EXPECT_THROW(parse_scenario_text("node A 0 0\nnode B 9999 0\nflow A B\n"),
               ContractViolation);
  // Explicit path over a non-link.
  EXPECT_THROW(
      parse_scenario_text("node A 0 0\nnode B 100 0\nnode C 9999 0\nflow A B C\n"),
      ContractViolation);
  // Weight without value / extra token.
  EXPECT_THROW(parse_scenario_text("node A 0 0\nnode B 10 0\nflow A B weight\n"),
               ContractViolation);
  EXPECT_THROW(parse_scenario_text("node A 0 0\nnode B 10 0\nflow A B weight 1 x\n"),
               ContractViolation);
}

TEST(ScenarioFile, LoadFromDisk) {
  const std::string path = "/tmp/e2efa_scenario_test.txt";
  {
    std::ofstream out(path);
    out << kFig1Text;
  }
  const Scenario sc = load_scenario_file(path);
  EXPECT_EQ(sc.topo.node_count(), 6);
  EXPECT_EQ(sc.name, path);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario_file(path), ContractViolation);  // now gone
}

}  // namespace
}  // namespace e2efa
