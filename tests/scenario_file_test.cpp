#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "alloc/centralized.hpp"
#include "net/faults.hpp"
#include "net/runner.hpp"
#include "net/scenario_file.hpp"
#include "util/assert.hpp"

namespace e2efa {
namespace {

constexpr const char* kFig1Text = R"(
# Fig. 1 topology
range 250
node A 0 0
node B 200 0
node C 400 0
node D 800 0
node E 600 0
node F 600 -200
flow A C
flow D F
)";

TEST(ScenarioFile, ParsesFig1Equivalent) {
  const Scenario sc = parse_scenario_text(kFig1Text, "fig1");
  EXPECT_EQ(sc.topo.node_count(), 6);
  EXPECT_EQ(sc.topo.label(0), "A");
  ASSERT_EQ(sc.flow_specs.size(), 2u);
  // Routed flows found the 2-hop paths.
  EXPECT_EQ(sc.flow_specs[0].path, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(sc.flow_specs[1].path, (std::vector<NodeId>{3, 4, 5}));

  // And the allocation machinery gives the paper's Fig.-1 answer.
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);
  const auto r = centralized_allocate(graph);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.allocation.flow_share[0], 0.5, 1e-6);
  EXPECT_NEAR(r.allocation.flow_share[1], 0.25, 1e-6);
}

TEST(ScenarioFile, ExplicitPathAndWeight) {
  const Scenario sc = parse_scenario_text(R"(
node X 0 0
node Y 200 0
node Z 400 0
flow X Y Z weight 2.5
flow Z X weight 0.5
)");
  ASSERT_EQ(sc.flow_specs.size(), 2u);
  EXPECT_EQ(sc.flow_specs[0].path, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(sc.flow_specs[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(sc.flow_specs[1].weight, 0.5);
}

TEST(ScenarioFile, CustomRanges) {
  const Scenario sc = parse_scenario_text(R"(
range 100
irange 300
node A 0 0
node B 90 0
node C 200 0
flow A B
)");
  EXPECT_TRUE(sc.topo.has_link(0, 1));
  EXPECT_FALSE(sc.topo.has_link(1, 2));   // 110 m > 100 m tx range
  EXPECT_TRUE(sc.topo.interferes(1, 2));  // < 300 m interference
}

TEST(ScenarioFile, CommentsAndBlanksIgnored) {
  const Scenario sc = parse_scenario_text(R"(
# header comment

node A 0 0   # inline comment
node B 100 0
flow A B     # routed
)");
  EXPECT_EQ(sc.topo.node_count(), 2);
}

TEST(ScenarioFile, ErrorsCarryLineNumbers) {
  try {
    parse_scenario_text("node A 0 0\nnode A 1 1\n");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(ScenarioFile, RejectsMalformedInput) {
  EXPECT_THROW(parse_scenario_text("bogus A\n"), ContractViolation);
  EXPECT_THROW(parse_scenario_text("node A 0 0\nflow A\n"), ContractViolation);
  EXPECT_THROW(parse_scenario_text("node A 0 0\nnode B 10 0\nflow A Q\n"),
               ContractViolation);
  EXPECT_THROW(parse_scenario_text("range -1\nnode A 0 0\nflow A A\n"),
               ContractViolation);
  EXPECT_THROW(parse_scenario_text("node A 0 0\n"), ContractViolation);  // no flows
  EXPECT_THROW(parse_scenario_text("flow A B\n"), ContractViolation);    // no nodes
  // Unreachable routed flow.
  EXPECT_THROW(parse_scenario_text("node A 0 0\nnode B 9999 0\nflow A B\n"),
               ContractViolation);
  // Explicit path over a non-link.
  EXPECT_THROW(
      parse_scenario_text("node A 0 0\nnode B 100 0\nnode C 9999 0\nflow A B C\n"),
      ContractViolation);
  // Weight without value / extra token.
  EXPECT_THROW(parse_scenario_text("node A 0 0\nnode B 10 0\nflow A B weight\n"),
               ContractViolation);
  EXPECT_THROW(parse_scenario_text("node A 0 0\nnode B 10 0\nflow A B weight 1 x\n"),
               ContractViolation);
}

TEST(ScenarioFile, FaultDirectivesRoundTrip) {
  const Scenario sc = parse_scenario_text(R"(
node A 0 0
node B 200 0
node C 400 0
flow A C
fault node B 10
recover node B 30
fault link A B 15
recover link A B 25
loss A B 0.05
loss default 0.01
)");
  ASSERT_EQ(sc.faults.events().size(), 4u);
  const auto& ev = sc.faults.events();
  EXPECT_EQ(ev[0].kind, FaultEvent::Kind::kNodeDown);
  EXPECT_EQ(ev[0].node, 1);
  EXPECT_DOUBLE_EQ(ev[0].at_s, 10.0);
  EXPECT_EQ(ev[1].kind, FaultEvent::Kind::kNodeUp);
  EXPECT_EQ(ev[1].node, 1);
  EXPECT_DOUBLE_EQ(ev[1].at_s, 30.0);
  EXPECT_EQ(ev[2].kind, FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(ev[2].node, 0);
  EXPECT_EQ(ev[2].peer, 1);
  EXPECT_DOUBLE_EQ(ev[2].at_s, 15.0);
  EXPECT_EQ(ev[3].kind, FaultEvent::Kind::kLinkUp);
  EXPECT_DOUBLE_EQ(ev[3].at_s, 25.0);

  ASSERT_EQ(sc.faults.loss_rules().size(), 1u);
  EXPECT_DOUBLE_EQ(sc.faults.loss(0, 1), 0.05);
  EXPECT_DOUBLE_EQ(sc.faults.loss(1, 0), 0.05);  // symmetric
  EXPECT_DOUBLE_EQ(sc.faults.loss(1, 2), 0.01);  // default
  EXPECT_DOUBLE_EQ(sc.faults.default_loss(), 0.01);

  // Epochs come back sorted and deduplicated; validation accepts the plan.
  EXPECT_EQ(sc.faults.event_times(), (std::vector<double>{10, 15, 25, 30}));
  EXPECT_NO_THROW(sc.faults.validate(sc.topo.node_count()));

  // Labels may be used before they are defined: directives resolve after
  // the whole file is read.
  const Scenario fwd = parse_scenario_text(
      "fault node B 5\nnode A 0 0\nnode B 200 0\nflow A B\n");
  ASSERT_EQ(fwd.faults.events().size(), 1u);
  EXPECT_EQ(fwd.faults.events()[0].node, 1);
}

TEST(ScenarioFile, FaultErrorsCarryLineNumbers) {
  const auto expect_fail = [](const std::string& text, int line,
                              const std::string& needle) {
    try {
      parse_scenario_text(text);
      FAIL() << "should have thrown for: " << text;
    } catch (const ContractViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
          << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };
  const std::string base = "node A 0 0\nnode B 200 0\nflow A B\n";  // lines 1-3
  expect_fail(base + "fault node Q 5\n", 4, "unknown node label Q");
  expect_fail(base + "fault node B -1\n", 4, "must not be negative");
  expect_fail(base + "loss A B 1.5\n", 4, "within [0, 1]");
  expect_fail(base + "loss A B -0.1\n", 4, "within [0, 1]");
  expect_fail(base + "loss A Q 0.1\n", 4, "unknown node label Q");
  expect_fail(base + "fault link A A 5\n", 4, "endpoints must differ");
  expect_fail(base + "loss A A 0.1\n", 4, "endpoints must differ");
  expect_fail(base + "fault B 5\n", 4, "node|link");
  expect_fail(base + "fault node B\n", 4, "a node label and a time");
  expect_fail(base + "fault link A B\n", 4, "two node labels and a time");
  expect_fail(base + "recover node B 5 junk\n", 4, "unexpected token");
  expect_fail(base + "loss default\n", 4, "needs a rate");
  expect_fail(base + "loss A\n", 4, "loss needs");
}

TEST(ScenarioFile, ParsedFaultPlanMatchesProgrammatic) {
  const Scenario parsed = parse_scenario_text(R"(
node A 0 0
node B 200 0
node C 400 0
flow A C
fault node B 2
recover node B 4
loss default 0.05
)");
  Scenario programmatic{"twin", Topology({{0, 0}, {200, 0}, {400, 0}}, 250.0),
                        {}, {}, {}, {}};
  Flow f;
  f.path = {0, 1, 2};
  programmatic.flow_specs.push_back(f);
  programmatic.faults.node_down(1, 2.0);
  programmatic.faults.node_up(1, 4.0);
  programmatic.faults.set_default_loss(0.05);

  SimConfig cfg;
  cfg.sim_seconds = 6.0;
  cfg.seed = 9;
  const RunResult a = run_scenario(parsed, Protocol::k2paCentralized, cfg);
  const RunResult b = run_scenario(programmatic, Protocol::k2paCentralized, cfg);
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
  EXPECT_EQ(a.suspended_per_flow, b.suspended_per_flow);
  EXPECT_EQ(a.epoch_end_to_end, b.epoch_end_to_end);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.channel.frames_faulted, b.channel.frames_faulted);
}

TEST(ScenarioFile, ChurnAndMobilityDirectivesRoundTrip) {
  const Scenario sc = parse_scenario_text(R"(
node A 0 0
node B 200 0
node C 400 0
flow A C
flow C A
flow_arrive 1 2.5
flow_depart 1 7
mobility B speed 12 pause 0.5 seed 9
)");
  ASSERT_EQ(sc.activity.size(), 2u);
  EXPECT_DOUBLE_EQ(sc.activity[0].start_s, 0.0);
  EXPECT_EQ(sc.activity[0].stop_s, kFlowNeverStops);
  EXPECT_DOUBLE_EQ(sc.activity[1].start_s, 2.5);
  EXPECT_DOUBLE_EQ(sc.activity[1].stop_s, 7.0);
  ASSERT_EQ(sc.mobility.size(), 1u);
  EXPECT_EQ(sc.mobility[0].node, 1);
  EXPECT_DOUBLE_EQ(sc.mobility[0].speed_mps, 12.0);
  EXPECT_DOUBLE_EQ(sc.mobility[0].pause_s, 0.5);
  EXPECT_EQ(sc.mobility[0].seed, 9u);

  // Serialization carries the directives and is a fixed point.
  const std::string text = serialize_scenario_text(sc);
  EXPECT_NE(text.find("flow_arrive 1 2.5"), std::string::npos) << text;
  EXPECT_NE(text.find("flow_depart 1 7"), std::string::npos) << text;
  EXPECT_NE(text.find("mobility B speed 12"), std::string::npos) << text;
  const Scenario back = parse_scenario_text(text);
  EXPECT_EQ(back.activity, sc.activity);
  EXPECT_EQ(back.mobility, sc.mobility);
  EXPECT_EQ(serialize_scenario_text(back), text);

  // An all-default window set is normalized away: a file whose churn
  // directives cancel out parses as a churn-free scenario.
  const Scenario trivial = parse_scenario_text(
      "node A 0 0\nnode B 200 0\nflow A B\nflow_arrive 0 0\n");
  EXPECT_TRUE(trivial.activity.empty());
}

TEST(ScenarioFile, ChurnAndMobilityErrorsCarryLineNumbers) {
  const auto expect_fail = [](const std::string& text, int line,
                              const std::string& needle) {
    try {
      parse_scenario_text(text);
      FAIL() << "should have thrown for: " << text;
    } catch (const ContractViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
          << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };
  const std::string base = "node A 0 0\nnode B 200 0\nflow A B\n";  // lines 1-3
  expect_fail(base + "flow_arrive 5 1\n", 4, "out of range (1 flows defined)");
  expect_fail(base + "flow_depart -1 1\n", 4, "must not be negative");
  expect_fail(base + "flow_arrive 0 -2\n", 4, "must not be negative");
  expect_fail(base + "flow_arrive 0 1 junk\n", 4, "unexpected token");
  expect_fail(base + "flow_arrive 0 1\nflow_arrive 0 2\n", 5,
              "duplicate flow_arrive for flow 0 (line 4)");
  expect_fail(base + "flow_depart 0 1\nflow_depart 0 2\n", 5,
              "duplicate flow_depart for flow 0 (line 4)");
  expect_fail(base + "flow_arrive 0 5\nflow_depart 0 3\n", 5,
              "at or before flow 0's arrival");
  expect_fail(base + "mobility Q speed 5\n", 4, "unknown node label Q");
  expect_fail(base + "mobility B\n", 4, "positive speed");
  expect_fail(base + "mobility B speed -3\n", 4, "positive speed");
  expect_fail(base + "mobility B pace 5\n", 4, "unknown mobility option");
  expect_fail(base + "mobility B speed 5\nmobility B speed 6\n", 5,
              "duplicate mobility for node B (line 4)");
  // Backwards fault times for one target are rejected at the source.
  expect_fail(base + "fault node B 30\nrecover node B 10\n", 5,
              "out-of-order time 10");
}

TEST(ScenarioFile, LoadFromDisk) {
  const std::string path = "/tmp/e2efa_scenario_test.txt";
  {
    std::ofstream out(path);
    out << kFig1Text;
  }
  const Scenario sc = load_scenario_file(path);
  EXPECT_EQ(sc.topo.node_count(), 6);
  EXPECT_EQ(sc.name, path);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario_file(path), ContractViolation);  // now gone
}

}  // namespace
}  // namespace e2efa
