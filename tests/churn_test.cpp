// Open-loop churn, mobility, and distributed admission control.
//
// Covers the robustness properties the dynamic machinery promises:
//  - the distributed admission gate is sound against the centralized
//    oracle (brute force over every candidate x active-subset of the
//    paper topologies),
//  - a rejected arrival never sources a packet and is reported with a
//    typed reason,
//  - a departed flow's lanes are never resurrected by stale control
//    messages (the no-stale-rate oracle plus the idle-floor bound),
//  - churn + mobility runs are deterministic across reruns and across
//    BatchRunner thread counts, including every new RunResult field.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "contention/contention_graph.hpp"
#include "ctrl/admission.hpp"
#include "net/batch.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"

namespace e2efa {
namespace {

// A single interference cell: five nodes spaced 50 m apart, all mutually
// in range, so every subflow lands in one maximal clique. The 4-hop flow
// 0->1->2->3->4 has virtual length 3 < 4 subflows in that clique, which is
// exactly the shape the clique-bound admission check must reject.
Scenario single_cell() {
  std::vector<Point> pos{{0, 0}, {50, 0}, {100, 0}, {150, 0}, {200, 0}};
  Topology topo(std::move(pos), /*tx_range_m=*/250.0);
  Scenario sc{"single-cell", std::move(topo), {}, {}, {}, {}};
  Flow founding;
  founding.path = {0, 1};
  Flow overload;
  overload.path = {0, 1, 2, 3, 4};
  sc.flow_specs = {founding, overload};
  return sc;
}

TEST(Admission, BruteForceParityPaperTopologies) {
  for (const Scenario& sc : {scenario1(), scenario2()}) {
    SCOPED_TRACE(sc.name);
    const FlowSet flows(sc.topo, sc.flow_specs);
    const ContentionGraph g(sc.topo, flows);
    const int F = flows.flow_count();
    for (FlowId cand = 0; cand < F; ++cand) {
      for (unsigned mask = 0; mask < (1u << F); ++mask) {
        if (mask & (1u << cand)) continue;
        std::vector<char> active(static_cast<std::size_t>(F), 0);
        for (int j = 0; j < F; ++j)
          active[static_cast<std::size_t>(j)] =
              static_cast<char>((mask >> j) & 1u);
        const AdmissionDecision dist =
            admission_check_distributed(sc.topo, flows, g, active, cand);
        const AdmissionDecision cent =
            admission_check_centralized(flows, g, active, cand);
        SCOPED_TRACE(testing::Message()
                     << "candidate " << cand << " mask " << mask);
        // Soundness: local denominators are never larger than the global
        // one, so the distributed gate may only be stricter.
        EXPECT_GE(dist.worst_load, cent.worst_load - 1e-12);
        if (dist.admitted) {
          EXPECT_TRUE(cent.admitted);
        }
        if (!cent.admitted) {
          EXPECT_FALSE(dist.admitted);
        }
      }
    }
  }
}

TEST(Admission, OverloadedCliqueRejectedByBothGates) {
  const Scenario sc = single_cell();
  const FlowSet flows(sc.topo, sc.flow_specs);
  const ContentionGraph g(sc.topo, flows);
  const std::vector<char> active{1, 0};  // founding flow up, candidate new
  const AdmissionDecision cent =
      admission_check_centralized(flows, g, active, 1);
  const AdmissionDecision dist =
      admission_check_distributed(sc.topo, flows, g, active, 1);
  // denominator = 1*1 + 1*3 = 4; the cell clique holds all 5 subflows.
  EXPECT_FALSE(cent.admitted);
  EXPECT_EQ(cent.reason, AdmissionReason::kCliqueOverload);
  EXPECT_NEAR(cent.worst_load, 1.25, 1e-9);
  EXPECT_FALSE(dist.admitted);
  EXPECT_GE(dist.worst_load, cent.worst_load - 1e-12);
}

TEST(Churn, RejectedArrivalNeverSources) {
  Scenario sc = single_cell();
  sc.activity = {{0.0, kFlowNeverStops}, {2.0, kFlowNeverStops}};
  SimConfig cfg;
  cfg.sim_seconds = 6.0;
  for (Protocol proto : {Protocol::k2paCentralized, Protocol::k2paDistributed,
                         Protocol::k2paDistributedCtrl}) {
    SCOPED_TRACE(to_string(proto));
    CheckContext check;
    cfg.check = &check;
    const RunResult r = run_scenario(sc, proto, cfg);
    ASSERT_EQ(r.admissions.size(), 1u);
    EXPECT_EQ(r.admissions[0].flow, 1);
    EXPECT_FALSE(r.admissions[0].admitted);
    EXPECT_EQ(r.admissions[0].reason, 1);  // clique overload
    EXPECT_GT(r.admissions[0].worst_load, 1.0);
    // The rejected flow never sources: nothing delivered on any lane.
    EXPECT_EQ(r.end_to_end_per_flow[1], 0);
    EXPECT_GT(r.end_to_end_per_flow[0], 0);
    EXPECT_TRUE(check.ok()) << check.report();
  }
  // The in-band ADMIT round under 2pa-dctrl must not contradict the
  // offline gate by admitting the overload.
  CheckContext check;
  cfg.check = &check;
  const RunResult r =
      run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
  ASSERT_EQ(r.admissions.size(), 1u);
  EXPECT_NE(r.admissions[0].inband, 1);
  EXPECT_TRUE(check.ok()) << check.report();
}

TEST(Churn, AdmittedArrivalReportedWithInBandAgreement) {
  Scenario sc = scenario1();
  sc.activity = {{0.0, kFlowNeverStops}, {3.0, kFlowNeverStops}};
  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  CheckContext check;
  cfg.check = &check;
  const RunResult r = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
  ASSERT_EQ(r.admissions.size(), 1u);
  EXPECT_EQ(r.admissions[0].flow, 1);
  EXPECT_TRUE(r.admissions[0].admitted);
  EXPECT_EQ(r.admissions[0].reason, 0);
  EXPECT_NEAR(r.admissions[0].at_s, 3.0, 1e-12);
  EXPECT_EQ(r.admissions[0].inband, 1);  // the ADMIT round agrees
  EXPECT_GT(r.ctrl.admit_req_sent, 0u);
  EXPECT_GT(r.ctrl.admit_rsp_sent, 0u);
  // Both flows deliver, and the arrival epoch re-converged in time.
  EXPECT_GT(r.end_to_end_per_flow[0], 0);
  EXPECT_GT(r.end_to_end_per_flow[1], 0);
  ASSERT_EQ(r.reconv_s.size(), 2u);
  EXPECT_GE(r.reconv_s[1], 0.0);
  EXPECT_TRUE(check.ok()) << check.report();
}

TEST(Churn, DepartedFlowLanesNeverResurrect) {
  // F2 departs at t = 8 while the channel drops 15% of frames: stale RATE
  // messages from before the departure are exactly what the
  // generation-stamp hardening must refuse to apply. The no-stale-rate
  // oracle watches every applied share; on top of that the departed lanes
  // must end at the idle floor.
  Scenario sc = scenario1();
  sc.activity = {{0.0, kFlowNeverStops}, {0.0, 8.0}};
  sc.faults.set_default_loss(0.15);
  SimConfig cfg;
  cfg.sim_seconds = 20.0;
  CheckContext check;
  cfg.check = &check;
  const RunResult r = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
  EXPECT_TRUE(check.ok()) << check.report();
  // No faults or mobility: routes never vary, so sim lanes 2 and 3 are
  // F2's two hops. Both must sit at (or below) the idle floor at the end.
  ASSERT_GE(r.ctrl.applied_subflow_share.size(), 4u);
  EXPECT_LE(r.ctrl.applied_subflow_share[2], 2e-6);
  EXPECT_LE(r.ctrl.applied_subflow_share[3], 2e-6);
  // F1 keeps flowing after the departure.
  EXPECT_GT(r.end_to_end_per_flow[0], 0);
}

// Full-field equality including the churn-era additions: determinism
// means *identical*, not merely close.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.delivered_per_subflow, b.delivered_per_subflow);
  EXPECT_EQ(a.end_to_end_per_flow, b.end_to_end_per_flow);
  EXPECT_EQ(a.total_end_to_end, b.total_end_to_end);
  EXPECT_EQ(a.lost_packets, b.lost_packets);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_mac, b.dropped_mac);
  EXPECT_EQ(a.target_subflow_share, b.target_subflow_share);
  EXPECT_EQ(a.target_flow_share, b.target_flow_share);
  EXPECT_EQ(a.epoch_starts_s, b.epoch_starts_s);
  EXPECT_EQ(a.epoch_flow_share, b.epoch_flow_share);
  EXPECT_EQ(a.epoch_end_to_end, b.epoch_end_to_end);
  EXPECT_EQ(a.suspended_per_flow, b.suspended_per_flow);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.ctrl, b.ctrl);
  EXPECT_EQ(a.admissions, b.admissions);
  EXPECT_EQ(a.reconv_s, b.reconv_s);
}

Scenario churny_scenario2() {
  Scenario sc = scenario2();
  sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
  sc.activity[2] = {2.0, 6.0};                // F3 mid-run only
  sc.activity[4] = {3.0, kFlowNeverStops};    // F5 arrives late
  MobilitySpec walk;
  walk.node = 7;  // H, F3's source
  walk.speed_mps = 20.0;
  walk.seed = 5;
  sc.mobility.push_back(walk);
  return sc;
}

TEST(Churn, DeterministicAcrossReruns) {
  const Scenario sc = churny_scenario2();
  SimConfig cfg;
  cfg.sim_seconds = 5.0;
  cfg.seed = 3;
  for (Protocol proto : {Protocol::k2paCentralized, Protocol::k2paDistributed,
                         Protocol::k2paDistributedCtrl}) {
    SCOPED_TRACE(to_string(proto));
    const RunResult a = run_scenario(sc, proto, cfg);
    const RunResult b = run_scenario(sc, proto, cfg);
    expect_identical(a, b);
  }
}

TEST(Churn, BatchRunnerThreadCountInvariant) {
  const Scenario sc = churny_scenario2();
  SimConfig cfg;
  cfg.sim_seconds = 5.0;
  cfg.seed = 3;
  const std::vector<Protocol> protos{Protocol::k2paCentralized,
                                     Protocol::k2paDistributed,
                                     Protocol::k2paDistributedCtrl};
  const std::vector<RunResult> seq =
      BatchRunner(1).run_protocols(sc, protos, cfg);
  const std::vector<RunResult> par =
      BatchRunner(4).run_protocols(sc, protos, cfg);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE(to_string(protos[i]));
    expect_identical(seq[i], par[i]);
  }
}

}  // namespace
}  // namespace e2efa
