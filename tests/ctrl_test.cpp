// In-band control plane (src/ctrl): the shared knowledge helper matches a
// brute-force oracle, and on the paper's static topologies the distributed
// agents — exchanging real HELLO / CONSTRAINT / RATE frames over the
// simulated MAC — converge to the distributed_allocate() oracle allocation
// within the acceptance tolerance, with sensible control-overhead
// accounting along the way.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/knowledge.hpp"
#include "ctrl/messages.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace e2efa {
namespace {

// Brute-force Own(v): rescan every (node, subflow) pair with interferes()
// point queries — the O(nodes x subflows) definition the shared helper
// replaced. Both the oracle and the agents must agree with it exactly.
std::vector<std::vector<int>> brute_force_own(const Topology& topo,
                                              const FlowSet& flows) {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(topo.node_count()));
  for (NodeId v = 0; v < topo.node_count(); ++v)
    for (int s = 0; s < flows.subflow_count(); ++s) {
      const Subflow& sf = flows.subflow(s);
      if (sf.src == v || sf.dst == v || topo.interferes(v, sf.src) ||
          topo.interferes(v, sf.dst))
        out[static_cast<std::size_t>(v)].push_back(s);
    }
  return out;
}

TEST(CtrlKnowledge, OverheardSetsMatchBruteForce) {
  for (Scenario sc : {scenario1(), scenario2()}) {
    SCOPED_TRACE(sc.name);
    FlowSet flows(sc.topo, sc.flow_specs);
    EXPECT_EQ(overheard_subflow_sets(sc.topo, flows),
              brute_force_own(sc.topo, flows));
  }
  // A denser random placement exercises shared hearers and duplicates.
  Rng rng(99);
  Topology topo = make_random(12, 600.0, 600.0, rng);
  Scenario sc{"random12", topo, {}, {}};
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, 11));
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 3, 8));
  FlowSet flows(sc.topo, sc.flow_specs);
  EXPECT_EQ(overheard_subflow_sets(sc.topo, flows),
            brute_force_own(sc.topo, flows));
}

TEST(CtrlMessages, WireBytesCountPayload) {
  CtrlMsg hello;
  hello.kind = CtrlMsg::Kind::kHello;
  const int base = hello.wire_bytes();
  EXPECT_GT(base, 0);
  hello.subflows = {1, 2, 3};
  EXPECT_EQ(hello.wire_bytes(), base + 3 * 2);

  CtrlMsg rate;
  rate.kind = CtrlMsg::Kind::kRate;
  EXPECT_GT(rate.wire_bytes(), base);  // carries the 8-byte share

  CtrlMsg constraint;
  constraint.kind = CtrlMsg::Kind::kConstraint;
  constraint.cliques = {{0, 1}, {2, 3, 4}};
  EXPECT_EQ(constraint.wire_bytes(), base + (1 + 2 * 2) + (1 + 3 * 2));
}

// Runs the in-band protocol and asserts the final applied lane shares are
// within `tol` (relative) of the oracle targets for every subflow.
void expect_converged(const Scenario& sc, double seconds, double tol,
                      std::uint64_t seed) {
  SimConfig cfg;
  cfg.sim_seconds = seconds;
  cfg.seed = seed;
  const RunResult r = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);

  ASSERT_TRUE(r.has_target);
  ASSERT_EQ(r.ctrl.applied_subflow_share.size(), r.target_subflow_share.size());
  for (std::size_t s = 0; s < r.target_subflow_share.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_NEAR(r.ctrl.applied_subflow_share[s], r.target_subflow_share[s],
                tol * r.target_subflow_share[s]);
  }
  // The allocation actually travelled the channel: every source solved at
  // least once, frames went on air, payloads were decoded.
  EXPECT_GE(r.ctrl.solves, static_cast<std::uint64_t>(sc.flow_specs.size()));
  EXPECT_GT(r.ctrl.ctrl_frames, 0u);
  EXPECT_GT(r.ctrl.ctrl_bytes, 0u);
  EXPECT_GT(r.ctrl.msgs_received, 0u);
  EXPECT_GT(r.ctrl.hello_sent, 0u);
  EXPECT_GT(r.ctrl.constraint_sent, 0u);
  EXPECT_GT(r.ctrl.rate_sent, 0u);
}

// Acceptance: table-1 topologies, converged in-band shares within 5% of the
// distributed_allocate() oracle. The converged state must be exact share
// equality in practice (same solve_local_problem code path once knowledge
// quiesces), so 5% is generous headroom for the tolerance clause.
TEST(CtrlInBand, ConvergesToOracleOnScenario1) {
  expect_converged(scenario1(), 10.0, 0.05, 1);
}

TEST(CtrlInBand, ConvergesToOracleOnScenario2) {
  expect_converged(scenario2(), 15.0, 0.05, 1);
}

TEST(CtrlInBand, ConvergenceIsSeedRobust) {
  for (std::uint64_t seed : {2ull, 7ull, 23ull}) {
    SCOPED_TRACE(seed);
    expect_converged(scenario1(), 10.0, 0.05, seed);
  }
}

// The control plane's wire cost is visible in the periodic metrics: the
// ctrl columns fill for 2pa-dctrl and stay zero for protocols without a
// control plane.
TEST(CtrlInBand, ControlOverheadMetrics) {
  Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 10.0;
  cfg.metrics_period_seconds = 1.0;

  const RunResult r = run_scenario(sc, Protocol::k2paDistributedCtrl, cfg);
  ASSERT_FALSE(r.metrics.samples.empty());
  double total_ctrl_bytes = 0.0;
  for (const MetricsSample& s : r.metrics.samples) total_ctrl_bytes += s.ctrl_bytes;
  EXPECT_GT(total_ctrl_bytes, 0.0);
  const MetricsSample& last = r.metrics.samples.back();
  EXPECT_GT(last.ctrl_overhead, 0.0);
  // Control must be a small fraction of the data traffic, not dominate it.
  EXPECT_LT(last.ctrl_overhead, 0.25);

  const RunResult base = run_scenario(sc, Protocol::k2paDistributed, cfg);
  for (const MetricsSample& s : base.metrics.samples) {
    EXPECT_EQ(s.ctrl_bytes, 0.0);
    EXPECT_EQ(s.ctrl_overhead, 0.0);
  }
}

// Protocols without a control plane report an all-zero CtrlSummary — the
// counters only ever move when agents exist.
TEST(CtrlInBand, SummaryEmptyForOtherProtocols) {
  Scenario sc = scenario1();
  SimConfig cfg;
  cfg.sim_seconds = 2.0;
  const RunResult r = run_scenario(sc, Protocol::k2paDistributed, cfg);
  EXPECT_EQ(r.ctrl, RunResult::CtrlSummary{});
}

}  // namespace
}  // namespace e2efa
