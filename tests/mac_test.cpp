#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/dcf_mac.hpp"
#include "sched/fifo_queue.hpp"
#include "sched/tag_scheduler.hpp"
#include "topology/builders.hpp"
#include "topology/topology.hpp"

namespace e2efa {
namespace {

class RecordingCallbacks : public MacCallbacks {
 public:
  void on_packet_delivered(const Packet& p) override { delivered.push_back(p); }
  void on_packet_sent(const Packet& p) override { sent.push_back(p); }
  void on_packet_dropped(const Packet& p) override { dropped.push_back(p); }
  std::vector<Packet> delivered, sent, dropped;
};

/// A small harness: one DcfMac + FifoQueue + BEB per node on a topology.
struct MacNet {
  explicit MacNet(Topology t, std::uint64_t seed = 42, int queue_capacity = 100)
      : topo(std::move(t)), channel(sim, topo, 2'000'000) {
    Rng master(seed);
    for (NodeId n = 0; n < topo.node_count(); ++n) {
      queues.push_back(std::make_unique<FifoQueue>(queue_capacity));
      policies.push_back(std::make_unique<BebBackoff>(31, 1023));
      cbs.push_back(std::make_unique<RecordingCallbacks>());
      macs.push_back(std::make_unique<DcfMac>(sim, channel, n, MacConfig{}, *queues.back(),
                                              *policies.back(), *cbs.back(), master.split()));
    }
  }

  void send(NodeId from, NodeId to, std::int64_t seq, std::int32_t subflow = 0) {
    Packet p;
    p.src = from;
    p.dst = to;
    p.seq = seq;
    p.subflow = subflow;
    p.payload_bytes = 512;
    queues[static_cast<std::size_t>(from)]->enqueue(p, sim.now());
    macs[static_cast<std::size_t>(from)]->notify_queue_nonempty();
  }

  Simulator sim;
  Topology topo;
  Channel channel;
  std::vector<std::unique_ptr<FifoQueue>> queues;
  std::vector<std::unique_ptr<BebBackoff>> policies;
  std::vector<std::unique_ptr<RecordingCallbacks>> cbs;
  std::vector<std::unique_ptr<DcfMac>> macs;
};

TEST(DcfMac, SinglePacketFourWayHandshake) {
  MacNet net(make_chain(2));
  net.send(0, 1, 7);
  net.sim.run();
  ASSERT_EQ(net.cbs[1]->delivered.size(), 1u);
  EXPECT_EQ(net.cbs[1]->delivered[0].seq, 7);
  ASSERT_EQ(net.cbs[0]->sent.size(), 1u);
  EXPECT_TRUE(net.cbs[0]->dropped.empty());
  EXPECT_EQ(net.macs[0]->stats().rts_sent, 1u);
  EXPECT_EQ(net.macs[1]->stats().cts_sent, 1u);
  EXPECT_EQ(net.macs[0]->stats().data_sent, 1u);
  EXPECT_EQ(net.macs[1]->stats().ack_sent, 1u);
  EXPECT_EQ(net.macs[0]->stats().timeouts, 0u);
}

TEST(DcfMac, BackToBackPacketsAllDelivered) {
  MacNet net(make_chain(2));
  for (int i = 0; i < 20; ++i) net.send(0, 1, i);
  net.sim.run();
  ASSERT_EQ(net.cbs[1]->delivered.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(net.cbs[1]->delivered[static_cast<std::size_t>(i)].seq, i);
}

TEST(DcfMac, UnreachableDestinationDropsAfterRetries) {
  // Node 2 is out of range of node 0: RTS never answered.
  MacNet net(make_chain(3));
  net.send(0, 2, 1);
  net.sim.run();
  EXPECT_TRUE(net.cbs[2]->delivered.empty());
  ASSERT_EQ(net.cbs[0]->dropped.size(), 1u);
  EXPECT_EQ(net.macs[0]->stats().timeouts, 8u);  // retry_limit 7 + initial
  EXPECT_EQ(net.macs[0]->stats().retry_drops, 1u);
}

TEST(DcfMac, TwoContendingSendersBothSucceed) {
  // 0 -> 1 and 2 -> 1: hidden terminals (0 and 2 out of range). Collisions
  // happen but retries resolve them; everything is delivered eventually.
  MacNet net(make_chain(3));
  for (int i = 0; i < 10; ++i) {
    net.send(0, 1, i, 0);
    net.send(2, 1, i, 1);
  }
  net.sim.run();
  int from0 = 0, from2 = 0;
  for (const Packet& p : net.cbs[1]->delivered) (p.src == 0 ? from0 : from2)++;
  EXPECT_EQ(from0 + static_cast<int>(net.cbs[0]->dropped.size()), 10);
  EXPECT_EQ(from2 + static_cast<int>(net.cbs[2]->dropped.size()), 10);
  // The medium is lightly loaded; most packets should make it.
  EXPECT_GE(from0, 8);
  EXPECT_GE(from2, 8);
}

TEST(DcfMac, InRangeContendersRarelyCollide) {
  // 0 -> 1 and 1 -> 0 hear each other: carrier sense + NAV should keep
  // collisions near zero.
  MacNet net(make_chain(2));
  for (int i = 0; i < 25; ++i) {
    net.send(0, 1, i, 0);
    net.send(1, 0, i, 1);
  }
  net.sim.run();
  EXPECT_EQ(net.cbs[1]->delivered.size(), 25u);
  EXPECT_EQ(net.cbs[0]->delivered.size(), 25u);
  EXPECT_LE(net.macs[0]->stats().timeouts + net.macs[1]->stats().timeouts, 6u);
}

TEST(DcfMac, SaturatedLinkThroughputSane) {
  // Saturated 0 -> 1 at 2 Mbps with 512-byte payloads: the full exchange
  // (DIFS + avg 15.5 slots + RTS/CTS/DATA/ACK + 3 SIFS) costs ~3.0 ms, so
  // expect roughly 300-340 packets/s.
  MacNet net(make_chain(2), /*seed=*/42, /*queue_capacity=*/2000);
  for (int i = 0; i < 2000; ++i) net.send(0, 1, i);
  net.sim.run_until(from_seconds(2.0));
  const auto n = net.cbs[1]->delivered.size();
  EXPECT_GE(n, 550u);
  EXPECT_LE(n, 750u);
}

TEST(DcfMac, OverhearingNodeDefersViaNav) {
  // 1 -> 2 transfer; node 0 (in range of 1) starts contending mid-exchange
  // and must not collide: all packets delivered with zero timeouts at 1.
  MacNet net(make_chain(3));
  for (int i = 0; i < 10; ++i) net.send(1, 2, i, 0);
  net.sim.run_until(3 * kMillisecond);
  for (int i = 0; i < 10; ++i) net.send(0, 1, i, 1);
  net.sim.run();
  EXPECT_EQ(net.cbs[2]->delivered.size(), 10u);
  EXPECT_EQ(net.cbs[1]->delivered.size(), 10u);
}

TEST(DcfMac, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    MacNet net(make_chain(3), seed);
    for (int i = 0; i < 50; ++i) {
      net.send(0, 1, i, 0);
      net.send(2, 1, i, 1);
    }
    net.sim.run();
    return std::make_tuple(net.cbs[1]->delivered.size(), net.macs[0]->stats().timeouts,
                           net.sim.events_processed());
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(std::get<2>(run(123)), std::get<2>(run(456)));
}

TEST(DcfMac, TagPiggybackRoundTrip) {
  // With a TagScheduler attached, the receiver's tag table learns the
  // sender's subflow tag from the exchange.
  Simulator sim;
  Topology topo = make_chain(2);
  Channel channel(sim, topo, 2'000'000);
  Rng master(7);

  TagScheduler sched0({{5, 0.5}}, 50, 2'000'000, 1e-4);
  TagScheduler sched1({{6, 0.5}}, 50, 2'000'000, 1e-4);
  BebBackoff beb0(31, 1023), beb1(31, 1023);
  RecordingCallbacks cb0, cb1;
  DcfMac mac0(sim, channel, 0, MacConfig{}, sched0, beb0, cb0, master.split(), &sched0);
  DcfMac mac1(sim, channel, 1, MacConfig{}, sched1, beb1, cb1, master.split(), &sched1);

  Packet p;
  p.src = 0;
  p.dst = 1;
  p.subflow = 5;
  p.payload_bytes = 512;
  sched0.enqueue(p, 0);
  mac0.notify_queue_nonempty();
  sim.run();
  ASSERT_EQ(cb1.delivered.size(), 1u);
  EXPECT_EQ(sched1.tag_table_size(), 1);  // learned subflow 5's tag
}

}  // namespace
}  // namespace e2efa
