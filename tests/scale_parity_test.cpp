// Brute-force parity for the scaling fast paths: the spatial grid, the
// sparse contention graph, the sparse Bron–Kerbosch enumerator, and the
// incremental clique store are exact replacements for the quadratic /
// from-scratch code they displaced. Every suite sweeps >= 50 seeds and
// asserts element-wise equality against an independent brute-force or
// from-scratch oracle, including under fault-driven activity deltas.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "alloc/centralized.hpp"
#include "alloc/maxmin.hpp"
#include "alloc/two_tier.hpp"
#include "contention/clique_store.hpp"
#include "contention/cliques.hpp"
#include "contention/contention_graph.hpp"
#include "geom/spatial_index.hpp"
#include "net/scenario_gen.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace e2efa {
namespace {

class ScaleParity : public ::testing::TestWithParam<std::uint64_t> {};

// ---------- spatial grid vs all-pairs ----------

TEST_P(ScaleParity, GridRangeQueriesMatchAllPairs) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.uniform_u64(60));
  const double side = 150.0 * std::sqrt(static_cast<double>(n));
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  // Cell size and query radius drawn independently: queries wider than a
  // cell exercise the multi-ring walk.
  const double cell = rng.uniform(80.0, 400.0);
  SpatialGrid grid(pts, cell);
  for (int q = 0; q < 10; ++q) {
    const double range = rng.uniform(10.0, 600.0);
    const int i = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    std::vector<int> brute;
    for (int j = 0; j < n; ++j)
      if (j != i && distance_sq(pts[static_cast<std::size_t>(i)],
                                pts[static_cast<std::size_t>(j)]) <= range * range)
        brute.push_back(j);
    EXPECT_EQ(grid.in_range_of(i, range), brute) << "seed " << GetParam();
  }
}

TEST_P(ScaleParity, TopologyNeighborListsMatchAllPairs) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.uniform_u64(50));
  const double side = 150.0 * std::sqrt(static_cast<double>(n));
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  const double tx = 250.0;
  const double ifr = tx * rng.uniform(1.0, 2.0);
  Topology topo(pts, tx, ifr);
  for (NodeId i = 0; i < n; ++i) {
    std::vector<NodeId> brute_tx, brute_if;
    for (NodeId j = 0; j < n; ++j) {
      if (j == i) continue;
      if (within_range(pts[static_cast<std::size_t>(i)], pts[static_cast<std::size_t>(j)], tx))
        brute_tx.push_back(j);
      if (within_range(pts[static_cast<std::size_t>(i)], pts[static_cast<std::size_t>(j)], ifr))
        brute_if.push_back(j);
    }
    EXPECT_EQ(topo.neighbors(i), brute_tx) << "seed " << GetParam() << " node " << i;
    EXPECT_EQ(topo.interference_neighbors(i), brute_if)
        << "seed " << GetParam() << " node " << i;
  }
}

// ---------- sparse contention graph vs pairwise rule ----------

/// The paper's endpoint-range contention rule, straight off the definition.
bool brute_contend(const Topology& topo, const Subflow& a, const Subflow& b) {
  const NodeId ea[2] = {a.src, a.dst};
  const NodeId eb[2] = {b.src, b.dst};
  for (NodeId x : ea)
    for (NodeId y : eb)
      if (x == y || topo.interferes(x, y)) return true;
  return false;
}

Scenario random_scenario(std::uint64_t seed) {
  GenConfig gen;
  gen.min_nodes = 8;
  gen.max_nodes = 40;
  gen.min_flows = 2;
  gen.max_flows = 10;
  // Mid-size random geometric graphs disconnect at the paper-scale
  // density; denser placement keeps every seed usable.
  gen.density_m = 150.0;
  gen.p_faults = 0.0;  // faults are injected by hand below
  gen.p_loss = 0.0;
  return generate_scenario(seed, gen);
}

TEST_P(ScaleParity, SparseGraphMatchesPairwiseRule) {
  const Scenario sc = random_scenario(GetParam());
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, flows);
  const int m = flows.subflow_count();
  for (int a = 0; a < m; ++a) {
    std::vector<int> brute;
    for (int b = 0; b < m; ++b)
      if (b != a && brute_contend(sc.topo, flows.subflow(a), flows.subflow(b)))
        brute.push_back(b);
    EXPECT_EQ(g.neighbors_of(a), brute) << "seed " << GetParam() << " subflow " << a;
    for (int b = 0; b < m; ++b)
      EXPECT_EQ(g.contend(a, b),
                b != a && brute_contend(sc.topo, flows.subflow(a), flows.subflow(b)));
  }
  // Incidence index round-trip: every subflow appears exactly at its two
  // endpoints.
  for (NodeId v = 0; v < sc.topo.node_count(); ++v)
    for (int s : g.incident_subflows(v))
      EXPECT_TRUE(flows.subflow(s).src == v || flows.subflow(s).dst == v);
}

// ---------- sparse Bron–Kerbosch vs dense reference ----------

TEST_P(ScaleParity, SparseCliquesMatchDenseReference) {
  const Scenario sc = random_scenario(GetParam());
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, flows);
  EXPECT_EQ(maximal_cliques(g), maximal_cliques_reference(g)) << "seed " << GetParam();
}

// ---------- incremental clique store vs from-scratch ----------

/// From-scratch oracle: maximal cliques of the subgraph induced by the
/// active vertices, via the independent subset enumerator.
std::vector<std::vector<int>> scratch_cliques(const ContentionGraph& g,
                                              const std::vector<char>& active) {
  std::vector<int> verts;
  for (int v = 0; v < g.vertex_count(); ++v)
    if (active[static_cast<std::size_t>(v)]) verts.push_back(v);
  if (verts.empty()) return {};
  return maximal_cliques_in_subset(g, verts);
}

TEST_P(ScaleParity, CliqueStoreMatchesFromScratchUnderRandomDeltas) {
  const Scenario sc = random_scenario(GetParam());
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, flows);
  const int m = flows.subflow_count();
  Rng rng(GetParam() ^ 0x5ca1ab1e);

  std::vector<char> active(static_cast<std::size_t>(m), 1);
  CliqueStore store(g, active);
  EXPECT_EQ(store.cliques(), scratch_cliques(g, active)) << "seed " << GetParam();

  for (int round = 0; round < 8; ++round) {
    // Random batch of subflow-level toggles (flow churn).
    const int toggles = 1 + static_cast<int>(rng.uniform_u64(4));
    for (int t = 0; t < toggles; ++t) {
      const int v = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(m)));
      active[static_cast<std::size_t>(v)] ^= 1;
    }
    store.set_active(active);
    ASSERT_EQ(store.cliques(), scratch_cliques(g, active))
        << "seed " << GetParam() << " round " << round;
  }
}

TEST_P(ScaleParity, CliqueStoreMatchesFromScratchUnderFaultDeltas) {
  const Scenario sc = random_scenario(GetParam());
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, flows);
  const int m = flows.subflow_count();
  Rng rng(GetParam() ^ 0xfa0175u);

  std::vector<char> active(static_cast<std::size_t>(m), 1);
  CliqueStore store(g, active);

  for (int round = 0; round < 6; ++round) {
    // Fault-driven delta: a node or link goes down (or everything heals),
    // mapped to subflow deactivations through the incidence index — the
    // same shape of delta the runner's epoch machinery produces.
    std::fill(active.begin(), active.end(), 1);
    if (round % 3 != 2) {
      TopologyMask mask;
      if (rng.bernoulli(0.5)) {
        const NodeId v = static_cast<NodeId>(
            rng.uniform_u64(static_cast<std::uint64_t>(sc.topo.node_count())));
        mask.node_up.assign(static_cast<std::size_t>(sc.topo.node_count()), true);
        mask.node_up[static_cast<std::size_t>(v)] = false;
      } else {
        const NodeId a = static_cast<NodeId>(
            rng.uniform_u64(static_cast<std::uint64_t>(sc.topo.node_count())));
        const auto& nbrs = sc.topo.neighbors(a);
        if (nbrs.empty()) continue;
        const NodeId b = nbrs[rng.uniform_u64(nbrs.size())];
        mask.down_links.push_back(std::minmax(a, b));
      }
      // A flow whose path loses any node or link suspends: all of its
      // subflows leave the epoch (what route repair / suspension does).
      for (FlowId f = 0; f < flows.flow_count(); ++f) {
        const auto& path = flows.flow(f).path;
        bool alive = true;
        for (std::size_t i = 0; i < path.size() && alive; ++i) {
          if (!mask.node_alive(path[i])) alive = false;
          if (i + 1 < path.size() && !mask.link_alive(path[i], path[i + 1])) alive = false;
        }
        if (!alive)
          for (int h = 0; h < flows.flow(f).length(); ++h)
            active[static_cast<std::size_t>(flows.subflow_index(f, h))] = 0;
      }
    }
    store.set_active(active);
    ASSERT_EQ(store.cliques(), scratch_cliques(g, active))
        << "seed " << GetParam() << " round " << round;
  }
}

// ---------- precomputed-clique allocator overloads are exact ----------

TEST_P(ScaleParity, AllocatorsBitIdenticalWithPrecomputedCliques) {
  const Scenario sc = random_scenario(GetParam());
  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph g(sc.topo, flows);
  const std::vector<std::vector<int>> cliques = maximal_cliques(g);

  const CentralizedResult c0 = centralized_allocate(g);
  const CentralizedResult c1 = centralized_allocate(g, &cliques);
  EXPECT_EQ(c0.status, c1.status);
  EXPECT_EQ(c0.constraint_rows, c1.constraint_rows);
  EXPECT_EQ(c0.allocation.flow_share, c1.allocation.flow_share);
  EXPECT_EQ(c0.allocation.subflow_share, c1.allocation.subflow_share);

  const TwoTierResult t0 = two_tier_allocate(g);
  const TwoTierResult t1 = two_tier_allocate(g, &cliques);
  EXPECT_EQ(t0.status, t1.status);
  EXPECT_EQ(t0.allocation.subflow_share, t1.allocation.subflow_share);

  const MaxMinResult m0 = maxmin_allocate(g);
  const MaxMinResult m1 = maxmin_allocate(g, {}, &cliques);
  EXPECT_EQ(m0.allocation.flow_share, m1.allocation.flow_share);

  const MaxMinResult s0 = maxmin_allocate_subflows(g);
  const MaxMinResult s1 = maxmin_allocate_subflows(g, {}, &cliques);
  EXPECT_EQ(s0.allocation.subflow_share, s1.allocation.subflow_share);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleParity, ::testing::Range<std::uint64_t>(1, 56));

}  // namespace
}  // namespace e2efa
