file(REMOVE_RECURSE
  "CMakeFiles/e2efa_cli.dir/e2efa_sim.cpp.o"
  "CMakeFiles/e2efa_cli.dir/e2efa_sim.cpp.o.d"
  "e2efa-sim"
  "e2efa-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
