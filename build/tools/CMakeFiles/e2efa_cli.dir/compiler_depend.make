# Empty compiler generated dependencies file for e2efa_cli.
# This may be replaced when dependencies are built.
