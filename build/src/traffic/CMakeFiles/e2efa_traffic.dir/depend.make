# Empty dependencies file for e2efa_traffic.
# This may be replaced when dependencies are built.
