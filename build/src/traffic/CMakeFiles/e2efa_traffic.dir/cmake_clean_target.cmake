file(REMOVE_RECURSE
  "libe2efa_traffic.a"
)
