file(REMOVE_RECURSE
  "CMakeFiles/e2efa_traffic.dir/cbr_source.cpp.o"
  "CMakeFiles/e2efa_traffic.dir/cbr_source.cpp.o.d"
  "CMakeFiles/e2efa_traffic.dir/stats.cpp.o"
  "CMakeFiles/e2efa_traffic.dir/stats.cpp.o.d"
  "libe2efa_traffic.a"
  "libe2efa_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
