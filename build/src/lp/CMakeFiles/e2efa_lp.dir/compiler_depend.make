# Empty compiler generated dependencies file for e2efa_lp.
# This may be replaced when dependencies are built.
