file(REMOVE_RECURSE
  "CMakeFiles/e2efa_lp.dir/problem.cpp.o"
  "CMakeFiles/e2efa_lp.dir/problem.cpp.o.d"
  "CMakeFiles/e2efa_lp.dir/simplex.cpp.o"
  "CMakeFiles/e2efa_lp.dir/simplex.cpp.o.d"
  "libe2efa_lp.a"
  "libe2efa_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
