file(REMOVE_RECURSE
  "libe2efa_lp.a"
)
