file(REMOVE_RECURSE
  "libe2efa_sched.a"
)
