file(REMOVE_RECURSE
  "CMakeFiles/e2efa_sched.dir/fifo_queue.cpp.o"
  "CMakeFiles/e2efa_sched.dir/fifo_queue.cpp.o.d"
  "CMakeFiles/e2efa_sched.dir/tag_scheduler.cpp.o"
  "CMakeFiles/e2efa_sched.dir/tag_scheduler.cpp.o.d"
  "libe2efa_sched.a"
  "libe2efa_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
