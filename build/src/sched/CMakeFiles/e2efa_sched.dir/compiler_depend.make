# Empty compiler generated dependencies file for e2efa_sched.
# This may be replaced when dependencies are built.
