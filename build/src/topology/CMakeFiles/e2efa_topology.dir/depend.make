# Empty dependencies file for e2efa_topology.
# This may be replaced when dependencies are built.
