file(REMOVE_RECURSE
  "CMakeFiles/e2efa_topology.dir/builders.cpp.o"
  "CMakeFiles/e2efa_topology.dir/builders.cpp.o.d"
  "CMakeFiles/e2efa_topology.dir/topology.cpp.o"
  "CMakeFiles/e2efa_topology.dir/topology.cpp.o.d"
  "libe2efa_topology.a"
  "libe2efa_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
