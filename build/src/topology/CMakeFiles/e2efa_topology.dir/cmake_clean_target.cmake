file(REMOVE_RECURSE
  "libe2efa_topology.a"
)
