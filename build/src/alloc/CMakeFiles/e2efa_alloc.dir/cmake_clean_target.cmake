file(REMOVE_RECURSE
  "libe2efa_alloc.a"
)
