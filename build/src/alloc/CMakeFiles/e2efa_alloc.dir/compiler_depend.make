# Empty compiler generated dependencies file for e2efa_alloc.
# This may be replaced when dependencies are built.
