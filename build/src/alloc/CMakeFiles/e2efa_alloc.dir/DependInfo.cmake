
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocation.cpp" "src/alloc/CMakeFiles/e2efa_alloc.dir/allocation.cpp.o" "gcc" "src/alloc/CMakeFiles/e2efa_alloc.dir/allocation.cpp.o.d"
  "/root/repo/src/alloc/centralized.cpp" "src/alloc/CMakeFiles/e2efa_alloc.dir/centralized.cpp.o" "gcc" "src/alloc/CMakeFiles/e2efa_alloc.dir/centralized.cpp.o.d"
  "/root/repo/src/alloc/distributed.cpp" "src/alloc/CMakeFiles/e2efa_alloc.dir/distributed.cpp.o" "gcc" "src/alloc/CMakeFiles/e2efa_alloc.dir/distributed.cpp.o.d"
  "/root/repo/src/alloc/maxmin.cpp" "src/alloc/CMakeFiles/e2efa_alloc.dir/maxmin.cpp.o" "gcc" "src/alloc/CMakeFiles/e2efa_alloc.dir/maxmin.cpp.o.d"
  "/root/repo/src/alloc/refine.cpp" "src/alloc/CMakeFiles/e2efa_alloc.dir/refine.cpp.o" "gcc" "src/alloc/CMakeFiles/e2efa_alloc.dir/refine.cpp.o.d"
  "/root/repo/src/alloc/schedulability.cpp" "src/alloc/CMakeFiles/e2efa_alloc.dir/schedulability.cpp.o" "gcc" "src/alloc/CMakeFiles/e2efa_alloc.dir/schedulability.cpp.o.d"
  "/root/repo/src/alloc/strict_fair.cpp" "src/alloc/CMakeFiles/e2efa_alloc.dir/strict_fair.cpp.o" "gcc" "src/alloc/CMakeFiles/e2efa_alloc.dir/strict_fair.cpp.o.d"
  "/root/repo/src/alloc/two_tier.cpp" "src/alloc/CMakeFiles/e2efa_alloc.dir/two_tier.cpp.o" "gcc" "src/alloc/CMakeFiles/e2efa_alloc.dir/two_tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/contention/CMakeFiles/e2efa_contention.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/e2efa_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/e2efa_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/e2efa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/e2efa_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/e2efa_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
