file(REMOVE_RECURSE
  "CMakeFiles/e2efa_alloc.dir/allocation.cpp.o"
  "CMakeFiles/e2efa_alloc.dir/allocation.cpp.o.d"
  "CMakeFiles/e2efa_alloc.dir/centralized.cpp.o"
  "CMakeFiles/e2efa_alloc.dir/centralized.cpp.o.d"
  "CMakeFiles/e2efa_alloc.dir/distributed.cpp.o"
  "CMakeFiles/e2efa_alloc.dir/distributed.cpp.o.d"
  "CMakeFiles/e2efa_alloc.dir/maxmin.cpp.o"
  "CMakeFiles/e2efa_alloc.dir/maxmin.cpp.o.d"
  "CMakeFiles/e2efa_alloc.dir/refine.cpp.o"
  "CMakeFiles/e2efa_alloc.dir/refine.cpp.o.d"
  "CMakeFiles/e2efa_alloc.dir/schedulability.cpp.o"
  "CMakeFiles/e2efa_alloc.dir/schedulability.cpp.o.d"
  "CMakeFiles/e2efa_alloc.dir/strict_fair.cpp.o"
  "CMakeFiles/e2efa_alloc.dir/strict_fair.cpp.o.d"
  "CMakeFiles/e2efa_alloc.dir/two_tier.cpp.o"
  "CMakeFiles/e2efa_alloc.dir/two_tier.cpp.o.d"
  "libe2efa_alloc.a"
  "libe2efa_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
