file(REMOVE_RECURSE
  "libe2efa_net.a"
)
