file(REMOVE_RECURSE
  "CMakeFiles/e2efa_net.dir/cli.cpp.o"
  "CMakeFiles/e2efa_net.dir/cli.cpp.o.d"
  "CMakeFiles/e2efa_net.dir/fluid.cpp.o"
  "CMakeFiles/e2efa_net.dir/fluid.cpp.o.d"
  "CMakeFiles/e2efa_net.dir/node_stack.cpp.o"
  "CMakeFiles/e2efa_net.dir/node_stack.cpp.o.d"
  "CMakeFiles/e2efa_net.dir/runner.cpp.o"
  "CMakeFiles/e2efa_net.dir/runner.cpp.o.d"
  "CMakeFiles/e2efa_net.dir/scenario_file.cpp.o"
  "CMakeFiles/e2efa_net.dir/scenario_file.cpp.o.d"
  "CMakeFiles/e2efa_net.dir/scenarios.cpp.o"
  "CMakeFiles/e2efa_net.dir/scenarios.cpp.o.d"
  "libe2efa_net.a"
  "libe2efa_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
