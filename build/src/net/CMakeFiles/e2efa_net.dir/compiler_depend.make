# Empty compiler generated dependencies file for e2efa_net.
# This may be replaced when dependencies are built.
