file(REMOVE_RECURSE
  "libe2efa_sim.a"
)
