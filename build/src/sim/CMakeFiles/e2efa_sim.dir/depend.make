# Empty dependencies file for e2efa_sim.
# This may be replaced when dependencies are built.
