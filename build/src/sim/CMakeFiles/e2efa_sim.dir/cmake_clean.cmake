file(REMOVE_RECURSE
  "CMakeFiles/e2efa_sim.dir/simulator.cpp.o"
  "CMakeFiles/e2efa_sim.dir/simulator.cpp.o.d"
  "libe2efa_sim.a"
  "libe2efa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
