file(REMOVE_RECURSE
  "libe2efa_util.a"
)
