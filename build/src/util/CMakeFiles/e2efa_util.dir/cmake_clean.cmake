file(REMOVE_RECURSE
  "CMakeFiles/e2efa_util.dir/rng.cpp.o"
  "CMakeFiles/e2efa_util.dir/rng.cpp.o.d"
  "CMakeFiles/e2efa_util.dir/stats.cpp.o"
  "CMakeFiles/e2efa_util.dir/stats.cpp.o.d"
  "CMakeFiles/e2efa_util.dir/strings.cpp.o"
  "CMakeFiles/e2efa_util.dir/strings.cpp.o.d"
  "CMakeFiles/e2efa_util.dir/table.cpp.o"
  "CMakeFiles/e2efa_util.dir/table.cpp.o.d"
  "libe2efa_util.a"
  "libe2efa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
