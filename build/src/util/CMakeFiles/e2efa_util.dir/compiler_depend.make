# Empty compiler generated dependencies file for e2efa_util.
# This may be replaced when dependencies are built.
