file(REMOVE_RECURSE
  "CMakeFiles/e2efa_mac.dir/backoff.cpp.o"
  "CMakeFiles/e2efa_mac.dir/backoff.cpp.o.d"
  "CMakeFiles/e2efa_mac.dir/dcf_mac.cpp.o"
  "CMakeFiles/e2efa_mac.dir/dcf_mac.cpp.o.d"
  "libe2efa_mac.a"
  "libe2efa_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
