# Empty dependencies file for e2efa_mac.
# This may be replaced when dependencies are built.
