
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/backoff.cpp" "src/mac/CMakeFiles/e2efa_mac.dir/backoff.cpp.o" "gcc" "src/mac/CMakeFiles/e2efa_mac.dir/backoff.cpp.o.d"
  "/root/repo/src/mac/dcf_mac.cpp" "src/mac/CMakeFiles/e2efa_mac.dir/dcf_mac.cpp.o" "gcc" "src/mac/CMakeFiles/e2efa_mac.dir/dcf_mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/e2efa_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/e2efa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/e2efa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/e2efa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/e2efa_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/e2efa_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
