file(REMOVE_RECURSE
  "libe2efa_mac.a"
)
