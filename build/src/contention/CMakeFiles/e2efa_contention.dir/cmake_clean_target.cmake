file(REMOVE_RECURSE
  "libe2efa_contention.a"
)
