# Empty compiler generated dependencies file for e2efa_contention.
# This may be replaced when dependencies are built.
