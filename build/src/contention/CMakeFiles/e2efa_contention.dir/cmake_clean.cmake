file(REMOVE_RECURSE
  "CMakeFiles/e2efa_contention.dir/cliques.cpp.o"
  "CMakeFiles/e2efa_contention.dir/cliques.cpp.o.d"
  "CMakeFiles/e2efa_contention.dir/coloring.cpp.o"
  "CMakeFiles/e2efa_contention.dir/coloring.cpp.o.d"
  "CMakeFiles/e2efa_contention.dir/contention_graph.cpp.o"
  "CMakeFiles/e2efa_contention.dir/contention_graph.cpp.o.d"
  "libe2efa_contention.a"
  "libe2efa_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
