
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contention/cliques.cpp" "src/contention/CMakeFiles/e2efa_contention.dir/cliques.cpp.o" "gcc" "src/contention/CMakeFiles/e2efa_contention.dir/cliques.cpp.o.d"
  "/root/repo/src/contention/coloring.cpp" "src/contention/CMakeFiles/e2efa_contention.dir/coloring.cpp.o" "gcc" "src/contention/CMakeFiles/e2efa_contention.dir/coloring.cpp.o.d"
  "/root/repo/src/contention/contention_graph.cpp" "src/contention/CMakeFiles/e2efa_contention.dir/contention_graph.cpp.o" "gcc" "src/contention/CMakeFiles/e2efa_contention.dir/contention_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/e2efa_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/e2efa_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/e2efa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/e2efa_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
