file(REMOVE_RECURSE
  "libe2efa_route.a"
)
