file(REMOVE_RECURSE
  "CMakeFiles/e2efa_route.dir/routing.cpp.o"
  "CMakeFiles/e2efa_route.dir/routing.cpp.o.d"
  "libe2efa_route.a"
  "libe2efa_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
