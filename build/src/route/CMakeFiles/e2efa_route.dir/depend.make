# Empty dependencies file for e2efa_route.
# This may be replaced when dependencies are built.
