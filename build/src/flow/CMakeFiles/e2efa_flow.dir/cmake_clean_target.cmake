file(REMOVE_RECURSE
  "libe2efa_flow.a"
)
