file(REMOVE_RECURSE
  "CMakeFiles/e2efa_flow.dir/flow.cpp.o"
  "CMakeFiles/e2efa_flow.dir/flow.cpp.o.d"
  "libe2efa_flow.a"
  "libe2efa_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
