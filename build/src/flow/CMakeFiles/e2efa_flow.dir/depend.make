# Empty dependencies file for e2efa_flow.
# This may be replaced when dependencies are built.
