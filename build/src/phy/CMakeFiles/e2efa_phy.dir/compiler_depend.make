# Empty compiler generated dependencies file for e2efa_phy.
# This may be replaced when dependencies are built.
