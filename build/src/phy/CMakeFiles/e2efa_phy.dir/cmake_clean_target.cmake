file(REMOVE_RECURSE
  "libe2efa_phy.a"
)
