file(REMOVE_RECURSE
  "CMakeFiles/e2efa_phy.dir/channel.cpp.o"
  "CMakeFiles/e2efa_phy.dir/channel.cpp.o.d"
  "CMakeFiles/e2efa_phy.dir/frame.cpp.o"
  "CMakeFiles/e2efa_phy.dir/frame.cpp.o.d"
  "libe2efa_phy.a"
  "libe2efa_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
