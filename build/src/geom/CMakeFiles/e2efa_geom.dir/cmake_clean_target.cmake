file(REMOVE_RECURSE
  "libe2efa_geom.a"
)
