# Empty dependencies file for e2efa_geom.
# This may be replaced when dependencies are built.
