file(REMOVE_RECURSE
  "CMakeFiles/e2efa_geom.dir/geom.cpp.o"
  "CMakeFiles/e2efa_geom.dir/geom.cpp.o.d"
  "libe2efa_geom.a"
  "libe2efa_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2efa_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
