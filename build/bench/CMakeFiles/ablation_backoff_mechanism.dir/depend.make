# Empty dependencies file for ablation_backoff_mechanism.
# This may be replaced when dependencies are built.
