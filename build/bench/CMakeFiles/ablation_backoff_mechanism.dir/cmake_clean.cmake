file(REMOVE_RECURSE
  "CMakeFiles/ablation_backoff_mechanism.dir/ablation_backoff_mechanism.cpp.o"
  "CMakeFiles/ablation_backoff_mechanism.dir/ablation_backoff_mechanism.cpp.o.d"
  "ablation_backoff_mechanism"
  "ablation_backoff_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backoff_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
