# Empty compiler generated dependencies file for ablation_carrier_sense.
# This may be replaced when dependencies are built.
