file(REMOVE_RECURSE
  "CMakeFiles/ablation_carrier_sense.dir/ablation_carrier_sense.cpp.o"
  "CMakeFiles/ablation_carrier_sense.dir/ablation_carrier_sense.cpp.o.d"
  "ablation_carrier_sense"
  "ablation_carrier_sense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_carrier_sense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
