file(REMOVE_RECURSE
  "CMakeFiles/ablation_short_term_fairness.dir/ablation_short_term_fairness.cpp.o"
  "CMakeFiles/ablation_short_term_fairness.dir/ablation_short_term_fairness.cpp.o.d"
  "ablation_short_term_fairness"
  "ablation_short_term_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_short_term_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
