# Empty dependencies file for ablation_short_term_fairness.
# This may be replaced when dependencies are built.
