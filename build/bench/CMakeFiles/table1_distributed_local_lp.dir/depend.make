# Empty dependencies file for table1_distributed_local_lp.
# This may be replaced when dependencies are built.
