file(REMOVE_RECURSE
  "CMakeFiles/table1_distributed_local_lp.dir/table1_distributed_local_lp.cpp.o"
  "CMakeFiles/table1_distributed_local_lp.dir/table1_distributed_local_lp.cpp.o.d"
  "table1_distributed_local_lp"
  "table1_distributed_local_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_distributed_local_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
