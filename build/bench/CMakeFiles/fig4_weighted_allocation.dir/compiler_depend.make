# Empty compiler generated dependencies file for fig4_weighted_allocation.
# This may be replaced when dependencies are built.
