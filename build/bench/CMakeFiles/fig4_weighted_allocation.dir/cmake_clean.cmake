file(REMOVE_RECURSE
  "CMakeFiles/fig4_weighted_allocation.dir/fig4_weighted_allocation.cpp.o"
  "CMakeFiles/fig4_weighted_allocation.dir/fig4_weighted_allocation.cpp.o.d"
  "fig4_weighted_allocation"
  "fig4_weighted_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_weighted_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
