file(REMOVE_RECURSE
  "CMakeFiles/micro_cliques.dir/micro_cliques.cpp.o"
  "CMakeFiles/micro_cliques.dir/micro_cliques.cpp.o.d"
  "micro_cliques"
  "micro_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
