# Empty compiler generated dependencies file for micro_cliques.
# This may be replaced when dependencies are built.
