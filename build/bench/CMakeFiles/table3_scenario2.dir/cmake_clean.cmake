file(REMOVE_RECURSE
  "CMakeFiles/table3_scenario2.dir/table3_scenario2.cpp.o"
  "CMakeFiles/table3_scenario2.dir/table3_scenario2.cpp.o.d"
  "table3_scenario2"
  "table3_scenario2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_scenario2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
