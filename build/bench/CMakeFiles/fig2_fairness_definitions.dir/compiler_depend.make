# Empty compiler generated dependencies file for fig2_fairness_definitions.
# This may be replaced when dependencies are built.
