file(REMOVE_RECURSE
  "CMakeFiles/fig2_fairness_definitions.dir/fig2_fairness_definitions.cpp.o"
  "CMakeFiles/fig2_fairness_definitions.dir/fig2_fairness_definitions.cpp.o.d"
  "fig2_fairness_definitions"
  "fig2_fairness_definitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fairness_definitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
