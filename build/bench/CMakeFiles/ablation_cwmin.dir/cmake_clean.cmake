file(REMOVE_RECURSE
  "CMakeFiles/ablation_cwmin.dir/ablation_cwmin.cpp.o"
  "CMakeFiles/ablation_cwmin.dir/ablation_cwmin.cpp.o.d"
  "ablation_cwmin"
  "ablation_cwmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cwmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
