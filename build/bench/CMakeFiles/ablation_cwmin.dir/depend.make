# Empty dependencies file for ablation_cwmin.
# This may be replaced when dependencies are built.
