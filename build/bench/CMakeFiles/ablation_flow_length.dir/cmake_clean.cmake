file(REMOVE_RECURSE
  "CMakeFiles/ablation_flow_length.dir/ablation_flow_length.cpp.o"
  "CMakeFiles/ablation_flow_length.dir/ablation_flow_length.cpp.o.d"
  "ablation_flow_length"
  "ablation_flow_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flow_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
