# Empty dependencies file for ablation_flow_length.
# This may be replaced when dependencies are built.
