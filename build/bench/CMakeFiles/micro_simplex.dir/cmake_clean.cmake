file(REMOVE_RECURSE
  "CMakeFiles/micro_simplex.dir/micro_simplex.cpp.o"
  "CMakeFiles/micro_simplex.dir/micro_simplex.cpp.o.d"
  "micro_simplex"
  "micro_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
