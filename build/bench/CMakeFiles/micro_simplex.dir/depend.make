# Empty dependencies file for micro_simplex.
# This may be replaced when dependencies are built.
