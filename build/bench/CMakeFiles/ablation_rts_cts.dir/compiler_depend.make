# Empty compiler generated dependencies file for ablation_rts_cts.
# This may be replaced when dependencies are built.
