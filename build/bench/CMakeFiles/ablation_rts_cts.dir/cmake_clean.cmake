file(REMOVE_RECURSE
  "CMakeFiles/ablation_rts_cts.dir/ablation_rts_cts.cpp.o"
  "CMakeFiles/ablation_rts_cts.dir/ablation_rts_cts.cpp.o.d"
  "ablation_rts_cts"
  "ablation_rts_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rts_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
