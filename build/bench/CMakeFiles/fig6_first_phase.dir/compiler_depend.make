# Empty compiler generated dependencies file for fig6_first_phase.
# This may be replaced when dependencies are built.
