file(REMOVE_RECURSE
  "CMakeFiles/fig6_first_phase.dir/fig6_first_phase.cpp.o"
  "CMakeFiles/fig6_first_phase.dir/fig6_first_phase.cpp.o.d"
  "fig6_first_phase"
  "fig6_first_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_first_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
