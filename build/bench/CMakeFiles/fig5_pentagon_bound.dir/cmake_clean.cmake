file(REMOVE_RECURSE
  "CMakeFiles/fig5_pentagon_bound.dir/fig5_pentagon_bound.cpp.o"
  "CMakeFiles/fig5_pentagon_bound.dir/fig5_pentagon_bound.cpp.o.d"
  "fig5_pentagon_bound"
  "fig5_pentagon_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pentagon_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
