# Empty dependencies file for fig5_pentagon_bound.
# This may be replaced when dependencies are built.
