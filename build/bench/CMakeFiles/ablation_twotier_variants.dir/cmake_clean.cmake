file(REMOVE_RECURSE
  "CMakeFiles/ablation_twotier_variants.dir/ablation_twotier_variants.cpp.o"
  "CMakeFiles/ablation_twotier_variants.dir/ablation_twotier_variants.cpp.o.d"
  "ablation_twotier_variants"
  "ablation_twotier_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_twotier_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
