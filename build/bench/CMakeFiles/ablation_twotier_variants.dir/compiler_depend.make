# Empty compiler generated dependencies file for ablation_twotier_variants.
# This may be replaced when dependencies are built.
