# Empty dependencies file for fig3_virtual_length.
# This may be replaced when dependencies are built.
