file(REMOVE_RECURSE
  "CMakeFiles/fig3_virtual_length.dir/fig3_virtual_length.cpp.o"
  "CMakeFiles/fig3_virtual_length.dir/fig3_virtual_length.cpp.o.d"
  "fig3_virtual_length"
  "fig3_virtual_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_virtual_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
