file(REMOVE_RECURSE
  "CMakeFiles/fluid_vs_packet.dir/fluid_vs_packet.cpp.o"
  "CMakeFiles/fluid_vs_packet.dir/fluid_vs_packet.cpp.o.d"
  "fluid_vs_packet"
  "fluid_vs_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_vs_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
