# Empty dependencies file for fluid_vs_packet.
# This may be replaced when dependencies are built.
