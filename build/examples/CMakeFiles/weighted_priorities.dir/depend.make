# Empty dependencies file for weighted_priorities.
# This may be replaced when dependencies are built.
