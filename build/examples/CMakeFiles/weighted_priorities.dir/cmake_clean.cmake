file(REMOVE_RECURSE
  "CMakeFiles/weighted_priorities.dir/weighted_priorities.cpp.o"
  "CMakeFiles/weighted_priorities.dir/weighted_priorities.cpp.o.d"
  "weighted_priorities"
  "weighted_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
