file(REMOVE_RECURSE
  "CMakeFiles/mesh_gateway.dir/mesh_gateway.cpp.o"
  "CMakeFiles/mesh_gateway.dir/mesh_gateway.cpp.o.d"
  "mesh_gateway"
  "mesh_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
