# Empty dependencies file for dynamic_flows.
# This may be replaced when dependencies are built.
