# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_topology_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/contention_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_ext_test[1]_include.cmake")
include("/root/repo/build/tests/sim_route_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/mac_ext_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/runner_ext_test[1]_include.cmake")
include("/root/repo/build/tests/fluid_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_file_test[1]_include.cmake")
include("/root/repo/build/tests/staticcw_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/property2_test[1]_include.cmake")
