file(REMOVE_RECURSE
  "CMakeFiles/runner_ext_test.dir/runner_ext_test.cpp.o"
  "CMakeFiles/runner_ext_test.dir/runner_ext_test.cpp.o.d"
  "runner_ext_test"
  "runner_ext_test.pdb"
  "runner_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
