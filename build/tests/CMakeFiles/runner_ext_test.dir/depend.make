# Empty dependencies file for runner_ext_test.
# This may be replaced when dependencies are built.
