
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/sched_test.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/e2efa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/e2efa_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/contention/CMakeFiles/e2efa_contention.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/e2efa_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/e2efa_route.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/e2efa_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/e2efa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/e2efa_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/e2efa_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/e2efa_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/e2efa_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/e2efa_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/e2efa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/e2efa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
