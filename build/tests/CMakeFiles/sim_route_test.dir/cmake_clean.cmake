file(REMOVE_RECURSE
  "CMakeFiles/sim_route_test.dir/sim_route_test.cpp.o"
  "CMakeFiles/sim_route_test.dir/sim_route_test.cpp.o.d"
  "sim_route_test"
  "sim_route_test.pdb"
  "sim_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
