# Empty dependencies file for staticcw_test.
# This may be replaced when dependencies are built.
