file(REMOVE_RECURSE
  "CMakeFiles/staticcw_test.dir/staticcw_test.cpp.o"
  "CMakeFiles/staticcw_test.dir/staticcw_test.cpp.o.d"
  "staticcw_test"
  "staticcw_test.pdb"
  "staticcw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staticcw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
