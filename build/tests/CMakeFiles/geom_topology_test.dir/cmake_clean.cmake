file(REMOVE_RECURSE
  "CMakeFiles/geom_topology_test.dir/geom_topology_test.cpp.o"
  "CMakeFiles/geom_topology_test.dir/geom_topology_test.cpp.o.d"
  "geom_topology_test"
  "geom_topology_test.pdb"
  "geom_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
