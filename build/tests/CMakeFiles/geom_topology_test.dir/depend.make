# Empty dependencies file for geom_topology_test.
# This may be replaced when dependencies are built.
