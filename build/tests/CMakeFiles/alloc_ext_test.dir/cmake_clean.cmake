file(REMOVE_RECURSE
  "CMakeFiles/alloc_ext_test.dir/alloc_ext_test.cpp.o"
  "CMakeFiles/alloc_ext_test.dir/alloc_ext_test.cpp.o.d"
  "alloc_ext_test"
  "alloc_ext_test.pdb"
  "alloc_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
