# Empty dependencies file for alloc_ext_test.
# This may be replaced when dependencies are built.
