# Empty compiler generated dependencies file for mac_ext_test.
# This may be replaced when dependencies are built.
