file(REMOVE_RECURSE
  "CMakeFiles/mac_ext_test.dir/mac_ext_test.cpp.o"
  "CMakeFiles/mac_ext_test.dir/mac_ext_test.cpp.o.d"
  "mac_ext_test"
  "mac_ext_test.pdb"
  "mac_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
