// Randomized scenario fuzzer with differential protocol oracles.
//
// Each iteration draws a seeded random scenario (geometric topology,
// weighted multi-hop flows, optional fault plan / loss model), runs it
// under the three 2PA protocol variants with every invariant oracle from
// src/check enabled, and — for fault-free, loss-free scenarios — cross
// checks the runs against each other and against the fluid model:
//
//   invariant:*      any CheckContext violation (MAC, conservation,
//                    scheduler, queue, phase-1 post-solve)
//   differential:fluid      total measured goodput exceeds the fluid-model
//                           prediction of the run's own allocation by more
//                           than the accuracy envelope documented in
//                           src/net/fluid.hpp
//   differential:ctrl       per-flow goodput of the in-band control plane
//                           (2pa-dctrl) diverges from oracle-pushed 2pa-d
//   differential:oracle     per-flow goodput of 2pa-d diverges from the
//                           centralized solve (when it is feasible)
//   crash            any unexpected exception out of run_scenario
//
// A failing scenario is greedily shrunk (drop flows, truncate paths, drop
// faults/loss, strip unused nodes, halve the horizon) while it still
// reproduces the same failure signature, then written as a replayable
// scenario file with a `# fuzz:` header; --repro replays such a file.
//
// --inject-bug arms the deliberate off-by-one queue-capacity oracle
// (CheckConfig::queue_capacity_override = capacity - 1): a *correct* stack
// then trips the queue invariant, proving the find-shrink-replay pipeline
// end to end. Paired with --expect-violation for the self-test.
//
// Exit codes: 0 = clean (or, with --expect-violation, a violation was
// found and shrunk), 1 = violations found (or expected one and found
// none), 2 = usage / IO error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "net/cli.hpp"
#include "net/fluid.hpp"
#include "net/runner.hpp"
#include "net/scenario_file.hpp"
#include "net/scenario_gen.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace e2efa {
namespace {

// Differential tolerances. The fluid model's documented envelope is "within
// ~5% lightly loaded, 65-80% of prediction saturated" — measured goodput
// sits *below* the prediction, so exceeding it by 20% + slack is a bug.
// Cross-protocol flow rates track each other loosely (different phase-1
// relaxations, convergence transients), hence the wide relative band plus
// an absolute floor that keeps tiny flows from tripping on quantization.
constexpr double kFluidHeadroom = 1.20;
constexpr double kFluidSlackPps = 20.0;
constexpr double kCrossRel = 0.45;
constexpr double kCrossSlackPps = 25.0;

const Protocol kProtocols[] = {Protocol::k2paCentralized,
                               Protocol::k2paDistributed,
                               Protocol::k2paDistributedCtrl};

struct Options {
  std::uint64_t seed = 1;
  int iters = 200;
  double seconds = 3.0;
  double warmup = 2.0;
  bool shrink = false;
  bool inject_bug = false;
  bool expect_violation = false;
  bool quiet = false;
  int max_failures = 5;
  /// Synthetic-scale mode: pin the node / flow count instead of the
  /// paper-sized defaults, with bounded-hop routing so 1k+-node scenarios
  /// generate without quadratic setup. 0 = default GenConfig ranges.
  int nodes = 0;
  int flows = 0;
  std::string out_dir = ".";
  std::string repro;  ///< When set, replay this file instead of fuzzing.
};

/// Everything besides the Scenario that a case needs to reproduce.
struct CaseConfig {
  double seconds = 3.0;
  double warmup = 2.0;
  std::uint64_t sim_seed = 1;
  bool inject_bug = false;
  /// 0 = default oracle envelope. Synthetic-scale runs (--nodes) widen the
  /// distributed clique envelope: at city scale many sources tile one
  /// clique with disjoint knowledge horizons, so the protocol's by-design
  /// oversubscription exceeds the paper-scale calibration (worst observed
  /// at 1k-2k nodes: ~2.13 vs 1.46 at paper scale).
  double clique_envelope = 0.0;
};

struct Failure {
  std::string kind;  ///< "invariant:<cat>" | "differential:<id>" | "crash".
  Protocol protocol = Protocol::k2paDistributed;
  std::string message;
};

/// Two failures shrink-match when the same oracle fires for the same
/// protocol; messages (node ids, magnitudes) may legitimately drift.
bool same_signature(const Failure& a, const Failure& b) {
  return a.kind == b.kind && a.protocol == b.protocol;
}

/// First informative line of a failure message (check reports open with a
/// "N invariant violation(s):" banner; skip it).
std::string summary_line(const std::string& message) {
  std::istringstream in(message);
  std::string line, first;
  while (std::getline(in, line)) {
    if (first.empty()) first = line;
    if (line.find("violation(s):") == std::string::npos && !line.empty())
      return line;
  }
  return first;
}

SimConfig make_sim_config(const CaseConfig& cc, CheckContext* check) {
  SimConfig sim;
  sim.sim_seconds = cc.seconds;
  sim.warmup_seconds = cc.warmup;
  sim.seed = cc.sim_seed;
  // The injected bug wants congested queues fast; a small capacity makes
  // any backlogged hop reach it within the shortened horizon.
  if (cc.inject_bug) sim.queue_capacity = 5;
  sim.check = check;
  return sim;
}

CheckConfig make_check_config(const CaseConfig& cc) {
  CheckConfig cfg;
  if (cc.inject_bug) cfg.queue_capacity_override = 5 - 1;
  if (cc.clique_envelope > 0.0) cfg.distributed_clique_envelope = cc.clique_envelope;
  return cfg;
}

double flow_pps(const RunResult& r, int f) {
  return static_cast<double>(r.end_to_end_per_flow[f]) /
         std::max(r.sim_seconds, 1e-9);
}

/// Runs one scenario under all protocols + differential oracles. Returns
/// the first failure, or nullopt when everything holds.
std::optional<Failure> run_case(const Scenario& sc, const CaseConfig& cc) {
  std::map<Protocol, RunResult> results;
  for (Protocol proto : kProtocols) {
    CheckContext check(make_check_config(cc));
    const SimConfig sim = make_sim_config(cc, &check);
    try {
      results.emplace(proto, run_scenario(sc, proto, sim));
    } catch (const ContractViolation& e) {
      // Random weighted topologies can over-constrain the centralized
      // solve (basic shares alone exceed a clique); that family throws by
      // contract, so it is a skip, not a finding. The distributed variants
      // relax floors locally and must never throw for this reason.
      if (proto == Protocol::k2paCentralized &&
          std::string(e.what()).find("infeasible") != std::string::npos)
        continue;
      return Failure{"crash", proto, e.what()};
    } catch (const std::exception& e) {
      return Failure{"crash", proto, e.what()};
    }
    if (!check.ok()) {
      std::string kind = "invariant:";
      kind += check.violations().empty()
                  ? "unknown"
                  : to_string(check.violations().front().category);
      return Failure{std::move(kind), proto, check.report()};
    }
  }

  // Differential oracles only make sense on deterministic-fate scenarios:
  // faults suspend flows and loss erodes goodput in ways the references
  // below do not model. The injected bug is about the invariant pipeline.
  if (!sc.faults.empty() || cc.inject_bug) return std::nullopt;

  const SimConfig defaults;
  MacConfig mac;
  mac.retry_limit = defaults.retry_limit;
  FlowSet flows(sc.topo, sc.flow_specs);

  for (const auto& [proto, r] : results) {
    if (!r.has_target) continue;
    // The fluid upper bound is only sound for the centralized solve: it
    // maximizes total throughput, so its prediction caps what any run can
    // deliver. The distributed family may *under*-subscribe the network
    // (partial knowledge), and the work-conserving tag scheduler then
    // legitimately reclaims the unallocated airtime past the prediction.
    if (proto != Protocol::k2paCentralized) continue;
    const Allocation alloc =
        make_subflow_allocation(flows, r.target_subflow_share);
    const FluidPrediction fluid =
        fluid_predict(flows, alloc, defaults.cbr_pps, defaults.payload_bytes,
                      mac, defaults.channel_bps, defaults.cw_min);
    double measured = 0.0;
    for (int f = 0; f < flows.flow_count(); ++f) measured += flow_pps(r, f);
    const double bound = fluid.total_flow_rate * kFluidHeadroom + kFluidSlackPps;
    if (measured > bound)
      return Failure{
          "differential:fluid", proto,
          strformat("total goodput %.1f pkt/s exceeds fluid prediction "
                    "%.1f pkt/s (bound %.1f)",
                    measured, fluid.total_flow_rate, bound)};
  }

  auto cross = [&](Protocol pa, Protocol pb,
                   const char* id) -> std::optional<Failure> {
    const auto a = results.find(pa);
    const auto b = results.find(pb);
    if (a == results.end() || b == results.end()) return std::nullopt;
    for (int f = 0; f < flows.flow_count(); ++f) {
      const double ra = flow_pps(a->second, f);
      const double rb = flow_pps(b->second, f);
      const double tol = kCrossRel * std::max(ra, rb) + kCrossSlackPps;
      if (std::abs(ra - rb) > tol)
        return Failure{std::string("differential:") + id, pb,
                       strformat("flow %d: %.1f pkt/s under %s vs %.1f pkt/s "
                                 "under %s (tolerance %.1f)",
                                 f, ra, to_string(pa), rb, to_string(pb), tol)};
    }
    return std::nullopt;
  };
  // Only in-band vs oracle-pushed: both run the *same* distributed
  // algorithm, so converged rates must agree. Centralized-vs-distributed is
  // deliberately NOT compared — the partial-knowledge solve can genuinely
  // allocate individual flows multiples more or less than the global LP on
  // random topologies (that gap is a property of Sec. IV-B, not a bug).
  //
  // The rate comparison is gated on the control plane having actually
  // converged by the end of the run (its final applied lane shares match
  // the oracle targets): share distribution along a long congested path can
  // take several simulated seconds, and rates measured mid-transient
  // diverge by design. Convergence itself on fixed topologies is covered
  // by ctrl_test; every invariant oracle still ran on the run above.
  const auto dc = results.find(Protocol::k2paDistributedCtrl);
  bool converged = dc != results.end();
  if (converged) {
    const RunResult& r = dc->second;
    converged = r.ctrl.applied_subflow_share.size() ==
                r.target_subflow_share.size();
    for (std::size_t s = 0; converged && s < r.target_subflow_share.size(); ++s)
      converged = std::abs(r.ctrl.applied_subflow_share[s] -
                           r.target_subflow_share[s]) <=
                  0.1 * r.target_subflow_share[s] + 0.02;
  }
  // Applied shares match the oracle, but *rates* converge only after the
  // transient backlog drains: a flow whose mean end-to-end delay rivals
  // the warmup was still clearing pre-convergence queues during the
  // measurement window, and its neighbors were reclaiming the airtime it
  // wasn't using — both legitimately off their steady-state rates. (A
  // fully starved flow delivers nothing and reads delay 0, so genuine
  // control-plane starvation still fails the comparison below.)
  if (converged) {
    for (Protocol p :
         {Protocol::k2paDistributed, Protocol::k2paDistributedCtrl}) {
      const auto it = results.find(p);
      if (it == results.end()) continue;
      for (double d : it->second.mean_delay_s)
        if (d > 0.5 * cc.warmup) converged = false;
    }
  }
  if (converged) {
    if (auto f = cross(Protocol::k2paDistributed,
                       Protocol::k2paDistributedCtrl, "ctrl"))
      return f;
  }
  return std::nullopt;
}

// ---- Greedy shrinking ----------------------------------------------------

/// Rebuilds the scenario keeping only the nodes some flow, fault event, or
/// loss rule still references. Positions (hence links between kept nodes)
/// and labels are preserved, so explicit flow paths stay valid.
std::optional<Scenario> drop_unused_nodes(const Scenario& sc) {
  std::set<NodeId> used;
  for (const Flow& f : sc.flow_specs) used.insert(f.path.begin(), f.path.end());
  for (const FaultEvent& e : sc.faults.events()) {
    used.insert(e.node);
    if (e.peer != kInvalidNode) used.insert(e.peer);
  }
  for (const LossRule& r : sc.faults.loss_rules()) {
    used.insert(r.a);
    used.insert(r.b);
  }
  if (static_cast<int>(used.size()) >= sc.topo.node_count()) return std::nullopt;

  std::vector<NodeId> remap(sc.topo.node_count(), kInvalidNode);
  std::vector<Point> positions;
  std::vector<std::string> labels;
  for (NodeId n : used) {
    remap[n] = static_cast<NodeId>(positions.size());
    positions.push_back(sc.topo.position(n));
    labels.push_back(sc.topo.label(n));
  }
  Topology topo(std::move(positions), sc.topo.tx_range(),
                sc.topo.interference_range() != sc.topo.tx_range()
                    ? std::optional<double>(sc.topo.interference_range())
                    : std::nullopt);
  topo.set_labels(labels);

  Scenario out{sc.name, std::move(topo), {}, {}};
  for (const Flow& f : sc.flow_specs) {
    Flow g;
    g.weight = f.weight;
    for (NodeId n : f.path) g.path.push_back(remap[n]);
    out.flow_specs.push_back(std::move(g));
  }
  for (const FaultEvent& e : sc.faults.events()) {
    switch (e.kind) {
      case FaultEvent::Kind::kNodeDown:
        out.faults.node_down(remap[e.node], e.at_s);
        break;
      case FaultEvent::Kind::kNodeUp:
        out.faults.node_up(remap[e.node], e.at_s);
        break;
      case FaultEvent::Kind::kLinkDown:
        out.faults.link_down(remap[e.node], remap[e.peer], e.at_s);
        break;
      case FaultEvent::Kind::kLinkUp:
        out.faults.link_up(remap[e.node], remap[e.peer], e.at_s);
        break;
    }
  }
  for (const LossRule& r : sc.faults.loss_rules())
    out.faults.set_loss(remap[r.a], remap[r.b], r.per);
  if (sc.faults.default_loss() > 0.0)
    out.faults.set_default_loss(sc.faults.default_loss());
  return out;
}

FaultPlan copy_without_events(const FaultPlan& plan) {
  FaultPlan out;
  for (const LossRule& r : plan.loss_rules()) out.set_loss(r.a, r.b, r.per);
  if (plan.default_loss() > 0.0) out.set_default_loss(plan.default_loss());
  return out;
}

FaultPlan copy_without_loss(const FaultPlan& plan) {
  FaultPlan out;
  for (const FaultEvent& e : plan.events()) {
    switch (e.kind) {
      case FaultEvent::Kind::kNodeDown: out.node_down(e.node, e.at_s); break;
      case FaultEvent::Kind::kNodeUp: out.node_up(e.node, e.at_s); break;
      case FaultEvent::Kind::kLinkDown: out.link_down(e.node, e.peer, e.at_s); break;
      case FaultEvent::Kind::kLinkUp: out.link_up(e.node, e.peer, e.at_s); break;
    }
  }
  return out;
}

struct ShrinkResult {
  Scenario sc;
  CaseConfig cc;
  int runs_spent = 0;
};

/// Greedily applies size-reducing edits while the same failure signature
/// still reproduces. Each accepted edit restarts the candidate sweep, so
/// the loop terminates at a local minimum (every single edit now loses the
/// failure).
ShrinkResult shrink_case(Scenario sc, CaseConfig cc, const Failure& orig) {
  int runs = 0;
  auto still_fails = [&](const Scenario& s, const CaseConfig& c) {
    ++runs;
    const auto f = run_case(s, c);
    return f.has_value() && same_signature(*f, orig);
  };

  bool progress = true;
  while (progress) {
    progress = false;

    // Drop one flow (keep at least one).
    for (std::size_t i = 0; sc.flow_specs.size() > 1 && i < sc.flow_specs.size();
         ++i) {
      Scenario cand = sc;
      cand.flow_specs.erase(cand.flow_specs.begin() + i);
      if (still_fails(cand, cc)) {
        sc = std::move(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;

    // Truncate one flow to its first hop.
    for (std::size_t i = 0; i < sc.flow_specs.size(); ++i) {
      if (sc.flow_specs[i].path.size() <= 2) continue;
      Scenario cand = sc;
      cand.flow_specs[i].path.resize(2);
      if (still_fails(cand, cc)) {
        sc = std::move(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;

    // Drop the fault schedule / the loss model wholesale.
    if (!sc.faults.events().empty()) {
      Scenario cand = sc;
      cand.faults = copy_without_events(sc.faults);
      if (still_fails(cand, cc)) {
        sc = std::move(cand);
        progress = true;
        continue;
      }
    }
    if (sc.faults.has_loss()) {
      Scenario cand = sc;
      cand.faults = copy_without_loss(sc.faults);
      if (still_fails(cand, cc)) {
        sc = std::move(cand);
        progress = true;
        continue;
      }
    }

    // Strip nodes nothing references any more.
    if (auto cand = drop_unused_nodes(sc)) {
      if (still_fails(*cand, cc)) {
        sc = std::move(*cand);
        progress = true;
        continue;
      }
    }

    // Halve the horizon.
    if (cc.seconds > 1.0) {
      CaseConfig cand = cc;
      cand.seconds = std::max(1.0, cc.seconds / 2.0);
      if (still_fails(sc, cand)) {
        cc = cand;
        progress = true;
        continue;
      }
    }
  }
  return {std::move(sc), cc, runs};
}

// ---- Repro files ---------------------------------------------------------

std::string repro_text(const Scenario& sc, const CaseConfig& cc,
                       const Failure& f) {
  std::string out = strformat(
      "# fuzz: sim-seed=%llu seconds=%.17g warmup=%.17g inject-bug=%d\n",
      static_cast<unsigned long long>(cc.sim_seed), cc.seconds, cc.warmup,
      cc.inject_bug ? 1 : 0);
  out += strformat("# fuzz: failure=%s protocol=%s\n", f.kind.c_str(),
                   to_string(f.protocol));
  // Only one line of the (possibly multi-line) report, for context.
  out += "# fuzz: message=" + summary_line(f.message) + "\n";
  return out + serialize_scenario_text(sc);
}

/// Parses the `# fuzz:` header back out of a repro file (the scenario
/// parser ignores the lines as comments).
CaseConfig parse_repro_header(const std::string& text) {
  CaseConfig cc;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# fuzz:", 0) != 0) continue;
    std::istringstream fields(line.substr(7));
    std::string kv;
    while (fields >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      if (key == "sim-seed") cc.sim_seed = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "seconds") cc.seconds = std::strtod(val.c_str(), nullptr);
      else if (key == "warmup") cc.warmup = std::strtod(val.c_str(), nullptr);
      else if (key == "inject-bug") cc.inject_bug = val != "0";
    }
  }
  return cc;
}

int replay_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "fuzz: cannot open repro file %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const CaseConfig cc = parse_repro_header(text);
  const Scenario sc = parse_scenario_text(text, path);
  const auto f = run_case(sc, cc);
  if (!f) {
    std::printf("repro %s: clean (%d nodes, %zu flows, %.3gs + %.3gs warmup)\n",
                path.c_str(), sc.topo.node_count(), sc.flow_specs.size(),
                cc.seconds, cc.warmup);
    return 0;
  }
  std::printf("repro %s: %s under %s\n%s\n", path.c_str(), f->kind.c_str(),
              to_string(f->protocol), f->message.c_str());
  return 1;
}

// ---- Driver --------------------------------------------------------------

int usage() {
  std::fprintf(
      stderr,
      "usage: fuzz [options]\n"
      "  --seed N         first scenario seed (default 1)\n"
      "  --iters N        scenarios to try (default 200)\n"
      "  --seconds T      measured seconds per run (default 3)\n"
      "  --warmup T       warmup seconds per run (default 2)\n"
      "  --shrink         shrink failures and write repro files\n"
      "  --out DIR        directory for repro files (default .)\n"
      "  --max-failures N stop after N failing scenarios (default 5)\n"
      "  --nodes N        synthetic scale: exactly N nodes per scenario\n"
      "  --flows N        synthetic scale: exactly N flows per scenario\n"
      "  --inject-bug     arm the off-by-one queue-capacity oracle\n"
      "  --expect-violation  exit 0 iff a violation was found (self-test)\n"
      "  --repro FILE     replay one repro file and exit\n"
      "  --quiet          suppress per-iteration progress\n");
  return 2;
}

int run(const Options& opt) {
  if (!opt.repro.empty()) return replay_repro(opt.repro);

  CaseConfig cc;
  cc.seconds = opt.seconds;
  cc.warmup = opt.warmup;
  cc.inject_bug = opt.inject_bug;
  if (opt.nodes > 100) cc.clique_envelope = 3.0;

  GenConfig gen;
  gen.horizon_s = opt.seconds + opt.warmup;
  if (opt.nodes > 0) {
    gen.min_nodes = gen.max_nodes = opt.nodes;
    // Large topologies need bounded-hop routing: destination drawn from
    // the source's 4-hop ball, so setup stays O(nodes), and the incremental
    // clique / distributed paths still see multi-hop contention. They also
    // need denser placement — the paper-scale density gives mean degree ~4,
    // below the ln(n) connectivity threshold of large geometric graphs;
    // 130 m yields degree ~12, connected with high probability at 10k.
    if (opt.nodes > 100) {
      gen.max_hops = 4;
      gen.density_m = 130.0;
    }
  }
  if (opt.flows > 0) gen.min_flows = gen.max_flows = opt.flows;

  int failures = 0, skipped = 0;
  int min_nodes_seen = 0;
  for (int i = 0; i < opt.iters && failures < opt.max_failures; ++i) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(i);
    Scenario sc = [&] {
      try {
        return generate_scenario(seed, gen);
      } catch (const std::exception&) {
        ++skipped;  // Disconnected placement; practically never happens.
        return Scenario{"skip", Topology({{0, 0}, {1, 0}}, 250.0), {}, {}};
      }
    }();
    if (sc.flow_specs.empty()) continue;

    auto fail = run_case(sc, cc);
    if (!opt.quiet && (i + 1) % 50 == 0)
      std::printf("fuzz: %d/%d scenarios, %d failure(s)\n", i + 1, opt.iters,
                  failures);
    if (!fail) continue;

    ++failures;
    std::printf("fuzz: seed %llu FAILED (%s under %s)\n  %s\n",
                static_cast<unsigned long long>(seed), fail->kind.c_str(),
                to_string(fail->protocol),
                summary_line(fail->message).c_str());
    if (!opt.shrink) continue;

    const ShrinkResult s = shrink_case(sc, cc, *fail);
    // Re-derive the (possibly shifted) failure message on the minimal case.
    const auto final_fail = run_case(s.sc, s.cc);
    const Failure& rec = final_fail ? *final_fail : *fail;
    const std::string path =
        opt.out_dir + strformat("/fuzz-%llu.scn",
                                static_cast<unsigned long long>(seed));
    std::error_code ec;  // best effort; the open below reports failures
    std::filesystem::create_directories(opt.out_dir, ec);
    std::ofstream out(path);
    if (!out.good()) {
      std::fprintf(stderr, "fuzz: cannot write %s\n", path.c_str());
      return 2;
    }
    out << repro_text(s.sc, s.cc, rec);
    min_nodes_seen = min_nodes_seen == 0
                         ? s.sc.topo.node_count()
                         : std::min(min_nodes_seen, s.sc.topo.node_count());
    std::printf("  shrunk to %d nodes / %zu flow(s) in %d rerun(s) -> %s\n",
                s.sc.topo.node_count(), s.sc.flow_specs.size(), s.runs_spent,
                path.c_str());
  }

  std::printf("fuzz: done, %d failure(s) in %d scenario(s)%s\n", failures,
              opt.iters,
              skipped > 0 ? strformat(" (%d skipped)", skipped).c_str() : "");
  if (opt.expect_violation) {
    if (failures == 0) {
      std::fprintf(stderr, "fuzz: expected a violation but found none\n");
      return 1;
    }
    if (opt.shrink && min_nodes_seen > 5) {
      std::fprintf(stderr,
                   "fuzz: expected a shrunk repro with <= 5 nodes, smallest "
                   "had %d\n",
                   min_nodes_seen);
      return 1;
    }
    return 0;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace e2efa

int main(int argc, char** argv) {
  using namespace e2efa;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage();
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--iters") {
      const char* v = next();
      if (!v) return usage();
      opt.iters = std::atoi(v);
    } else if (arg == "--seconds") {
      const char* v = next();
      if (!v) return usage();
      opt.seconds = std::atof(v);
    } else if (arg == "--warmup") {
      const char* v = next();
      if (!v) return usage();
      opt.warmup = std::atof(v);
    } else if (arg == "--nodes") {
      const char* v = next();
      if (!v) return usage();
      opt.nodes = std::atoi(v);
    } else if (arg == "--flows") {
      const char* v = next();
      if (!v) return usage();
      opt.flows = std::atoi(v);
    } else if (arg == "--max-failures") {
      const char* v = next();
      if (!v) return usage();
      opt.max_failures = std::atoi(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage();
      opt.out_dir = v;
    } else if (arg == "--repro") {
      const char* v = next();
      if (!v) return usage();
      opt.repro = v;
    } else if (arg == "--shrink") {
      opt.shrink = true;
    } else if (arg == "--inject-bug") {
      opt.inject_bug = true;
    } else if (arg == "--expect-violation") {
      opt.expect_violation = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "fuzz: unknown option %s\n", arg.c_str());
      return usage();
    }
  }
  if (opt.iters <= 0 || opt.seconds <= 0 || opt.warmup < 0 ||
      opt.max_failures <= 0) {
    std::fprintf(stderr, "fuzz: invalid numeric option\n");
    return usage();
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz: fatal: %s\n", e.what());
    return 2;
  }
}
