// trace-tool — offline analysis over binary traces written by e2efa-sim
// (--trace PATH without a .jsonl suffix).
//
//   trace-tool summary run.trace
//   trace-tool jsonl run.trace                # binary -> JSONL on stdout
//   trace-tool timeline run.trace --flow 0 --limit 40
//   trace-tool convergence run.trace --window 1 --eps 0.2
//   trace-tool follow run.trace --flow 0      # causal-chain report
//   trace-tool chrome run.trace > run.json    # Chrome/Perfetto trace JSON
//
// `convergence` reconstructs the runner's fairness metrics from the trace
// alone: per-window end-to-end shares, a share-normalized Jain trajectory,
// and the time each LP epoch's allocation first lands within eps of its
// Phase-1 targets. It needs the lp and flow categories in the trace (the
// default --trace-filter keeps them).
//
// `follow` rebuilds the causal span graph (observability v2) and prints
// every root-to-leaf chain — control message sends, the frames that carried
// them, retransmits, receptions, and the solves/rate applications they
// triggered — optionally restricted to chains touching one logical flow.
//
// `chrome` converts the trace to Chrome trace-event JSON (load in Perfetto
// or chrome://tracing): one track per node, frame airtime as slices, span
// edges as flow arrows.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "util/strings.hpp"

using namespace e2efa;

namespace {

[[noreturn]] void usage(const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "trace-tool: %s\n", error.c_str());
  std::fprintf(stderr,
               "usage: trace-tool COMMAND TRACE [options]\n"
               "commands:\n"
               "  summary      per-event-type record counts\n"
               "  jsonl        dump the binary trace as JSONL on stdout\n"
               "  timeline     per-flow delivery/milestone timeline\n"
               "                 --flow F   only flow F (default: all flows)\n"
               "                 --limit N  at most N rows (default 50)\n"
               "  convergence  windowed shares, Jain trajectory, and per-epoch\n"
               "               convergence times against the Phase-1 targets\n"
               "                 --window W  window seconds (W > 0; default 1)\n"
               "                 --eps E     relative tolerance (default 0.2)\n"
               "  follow       causal-chain report from span/parent ids\n"
               "                 --flow F   only chains touching flow F\n"
               "                 --limit N  at most N chains (default 50)\n"
               "  chrome       Chrome trace-event JSON on stdout (Perfetto /\n"
               "               chrome://tracing; per-node tracks, span arrows)\n");
  std::exit(2);
}

double parse_double(const std::string& key, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0')
    usage(key + ": malformed number '" + std::string(text) + "'");
  return v;
}

long long parse_int(const std::string& key, const char* text) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0')
    usage(key + ": malformed integer '" + std::string(text) + "'");
  return v;
}

void print_convergence(const ConvergenceReport& rep) {
  std::printf("flows %d, channel %.0f bps, payload %.0f bytes, window %g s\n",
              rep.flow_count, rep.channel_bps, rep.payload_bytes, rep.window_s);
  for (const ConvergenceReport::Epoch& e : rep.epochs) {
    std::printf("epoch %d @%.2f s: targets", e.index, e.start_s);
    for (double t : e.target_share) std::printf(" %.4fB", t);
    std::printf("\n");
  }
  std::printf("\nwindow end (s) | jain | per-flow share of B\n");
  for (std::size_t w = 0; w < rep.window_end_s.size(); ++w) {
    std::printf("%14.2f | %.4f |", rep.window_end_s[w], rep.jain[w]);
    for (double s : rep.window_share[w]) std::printf(" %.4f", s);
    std::printf("\n");
  }
  std::printf("\n");
  for (const ConvergenceReport::EpochConvergence& c : rep.convergence) {
    if (c.converged)
      std::printf(
          "epoch %d (start %.2f s): converged at %.2f s "
          "(time to converge %.2f s), steady jain %.4f\n",
          c.epoch, c.epoch_start_s, c.converged_s, c.time_to_converge_s,
          rep.steady_jain(c.epoch));
    else
      std::printf("epoch %d (start %.2f s): did not converge, steady jain %.4f\n",
                  c.epoch, c.epoch_start_s, rep.steady_jain(c.epoch));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0))
    usage("");
  if (argc < 3) usage("need a command and a trace file");
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command != "summary" && command != "jsonl" && command != "timeline" &&
      command != "convergence" && command != "follow" && command != "chrome")
    usage("unknown command: " + command);

  int flow = -1;
  long long limit = 50;
  double window_s = 1.0;
  double eps = 0.2;
  for (int i = 3; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") usage("");
    if (i + 1 >= argc) usage(key + ": missing value");
    const char* val = argv[++i];
    if (key == "--flow") {
      if (command != "timeline" && command != "follow")
        usage("--flow only applies to timeline and follow");
      flow = static_cast<int>(parse_int(key, val));
      if (flow < 0) usage("--flow must be >= 0");
    } else if (key == "--limit") {
      if (command != "timeline" && command != "follow")
        usage("--limit only applies to timeline and follow");
      limit = parse_int(key, val);
      if (limit < 1) usage("--limit must be >= 1");
    } else if (key == "--window") {
      if (command != "convergence") usage("--window only applies to convergence");
      window_s = parse_double(key, val);
      if (window_s <= 0.0) usage("--window must be > 0");
    } else if (key == "--eps") {
      if (command != "convergence") usage("--eps only applies to convergence");
      eps = parse_double(key, val);
      if (eps <= 0.0) usage("--eps must be > 0");
    } else {
      usage("unknown option: " + key);
    }
  }

  std::vector<TraceRecord> records;
  std::string error;
  if (!read_trace(path, &records, &error)) {
    std::fprintf(stderr, "trace-tool: %s\n", error.c_str());
    return 1;
  }

  if (command == "summary") {
    std::printf("%zu records\n%s", records.size(),
                format_trace_summary(records).c_str());
  } else if (command == "jsonl") {
    for (const TraceRecord& r : records)
      std::printf("%s\n", trace_record_jsonl(r).c_str());
  } else if (command == "timeline") {
    std::printf("%s", format_flow_timeline(records, flow,
                                           static_cast<std::size_t>(limit))
                          .c_str());
  } else if (command == "follow") {
    std::printf("%s",
                format_follow(records, flow, static_cast<std::size_t>(limit))
                    .c_str());
  } else if (command == "chrome") {
    std::printf("%s", format_chrome_trace(records).c_str());
  } else {
    print_convergence(analyze_convergence(records, window_s, eps));
  }
  return 0;
}
