// e2efa_sim — run any scenario under any protocol from the command line.
//
//   e2efa_sim --scenario 2 --protocol 2pa-d --seconds 120 --shares
//   e2efa_sim --scenario chain:6 --protocol 802.11
//   e2efa_sim --scenario random:20 --protocol maxmin --seed 7
//   e2efa_sim --scenario 1 --trace run.trace --trace-filter lp,flow
//             --metrics-out metrics.jsonl --metrics-period 0.5  (one line)
#include <cstdint>
#include <iostream>
#include <string>

#include "check/check.hpp"
#include "net/cli.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

using namespace e2efa;

namespace {
bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto opt = parse_cli(argc, argv, &error);
  if (!opt) {
    if (!error.empty()) std::cerr << "error: " << error << "\n\n";
    std::cout << cli_usage();
    return error.empty() ? 0 : 2;
  }
  try {
    Rng rng(opt->config.seed);
    Scenario sc = make_named_scenario(opt->scenario, rng);
    if (opt->default_loss > 0.0) sc.faults.set_default_loss(opt->default_loss);
    apply_cli_dynamics(sc, *opt);

    SimConfig cfg = opt->config;
    TraceSink trace;
    if (!opt->trace_path.empty()) {
      if (!opt->trace_filter.empty()) {
        std::uint32_t mask = 0;
        if (!parse_trace_filter(opt->trace_filter, &mask, &error)) {
          std::cerr << "error: " << error << "\n";
          return 2;
        }
        trace.set_filter(mask);
      }
      const TraceSink::Format format = ends_with(opt->trace_path, ".jsonl")
                                           ? TraceSink::Format::kJsonl
                                           : TraceSink::Format::kBinary;
      if (!trace.open(opt->trace_path, format, &error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      cfg.trace = &trace;
    }

    CheckContext check;
    if (opt->check) cfg.check = &check;

    // Flight recorder: when a dump target is named but no trace is
    // streaming, arm a bounded ring so recent history exists to dump.
    TraceSink flight_ring;
    if (!opt->flight_out.empty()) {
      if (cfg.trace == nullptr) {
        flight_ring.set_ring(1u << 14);
        cfg.trace = &flight_ring;
      }
      check.arm_flight_recorder(cfg.trace);
    }

    Profiler profiler;
    if (!opt->profile_out.empty()) cfg.profile = &profiler;

    const RunResult r = run_scenario(sc, opt->protocol, cfg);

    if (!opt->trace_path.empty()) {
      trace.close();
      std::cerr << "trace: " << trace.recorded() << " records -> "
                << opt->trace_path << "\n";
    }
    if (!opt->profile_out.empty()) {
      if (!write_profile_json(profiler, "e2efa-sim " + opt->scenario,
                              opt->profile_out, &error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      std::cerr << "profile: phase accounting -> " << opt->profile_out << "\n";
    }
    if (!opt->flight_out.empty() && !check.ok()) {
      const auto& dump = check.flight_records();
      if (!write_trace_file(dump, opt->flight_out,
                            TraceSink::Format::kBinary, &error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      std::cerr << "flight recorder: " << dump.size() << " records -> "
                << opt->flight_out << "\n";
    }
    if (!opt->metrics_out.empty()) {
      if (!write_metrics_jsonl(r.metrics, opt->metrics_out, &error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      std::cerr << "metrics: " << r.metrics.samples.size() << " samples -> "
                << opt->metrics_out << "\n";
    }
    std::cout << format_run_result(sc, r, cfg, opt->list_shares);
    if (opt->check) {
      if (!check.ok()) {
        std::cout << "\n" << check.report();
        return 1;
      }
      std::cout << "\ninvariant checks: clean\n";
    }
  } catch (const ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
