// e2efa_sim — run any scenario under any protocol from the command line.
//
//   e2efa_sim --scenario 2 --protocol 2pa-d --seconds 120 --shares
//   e2efa_sim --scenario chain:6 --protocol 802.11
//   e2efa_sim --scenario random:20 --protocol maxmin --seed 7
#include <iostream>

#include "net/cli.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  std::string error;
  const auto opt = parse_cli(argc, argv, &error);
  if (!opt) {
    if (!error.empty()) std::cerr << "error: " << error << "\n\n";
    std::cout << cli_usage();
    return error.empty() ? 0 : 2;
  }
  try {
    Rng rng(opt->config.seed);
    Scenario sc = make_named_scenario(opt->scenario, rng);
    if (opt->default_loss > 0.0) sc.faults.set_default_loss(opt->default_loss);
    const RunResult r = run_scenario(sc, opt->protocol, opt->config);
    std::cout << format_run_result(sc, r, opt->config, opt->list_shares);
  } catch (const ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
