// Study: does two-phase fair allocation survive closed-loop sources?
//
// The paper's evaluation is CBR-only — every source is greedy at a fixed
// rate and the 2PA shares r̂_i are never probed by a congestion
// controller. This study asks ROADMAP's open question directly: sweep
// source model {cbr, aimd, bbr} × protocol {802.11 FIFO, 2PA-C,
// 2PA-Dctrl} on both paper topologies with staggered starts (flow i
// joins at 5·i seconds, so every controller must first surrender
// bandwidth an earlier flow already claimed), and report over the
// converged tail (the last third of the run):
//
//   jain      mean windowed Jain index over target-normalized flow rates
//             (the weighted-fair allocations are deliberately unequal, so
//             raw rates are never comparable). 802.11 rows are normalized
//             by the same topology's 2PA-C targets — that is exactly the
//             paper's unfairness baseline.
//   track     mean per-flow tracking error against r̂_i expressed in
//             packets/s: |rate_i/Σrate − r̂_i/Σr̂|, relative. Ratio-based
//             on purpose: on a saturated clique the MAC delivers a
//             protocol-dependent fraction of the fluid-ideal capacity,
//             and the controller's job is to hold the *proportions*.
//
// The run enforces the acceptance floor for the elastic × allocating
// cells — Jain >= 0.9 and tracking error <= 15% — and exits nonzero on a
// miss. Every cell is also emitted as a JSONL line (default
// elastic_fairness.jsonl) for the CI artifact. Deterministic per seed.
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/fluid.hpp"
#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "transport/transport.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace e2efa;

namespace {

struct Options {
  double seconds = 90.0;
  std::uint64_t seed = 1;
  std::string out = "elastic_fairness.jsonl";
};

[[noreturn]] void usage(const char* prog, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--seconds T] [--seed N] [--out PATH]\n"
               "  --seconds T  simulated seconds per cell (default 90)\n"
               "  --seed N     simulation seed (default 1)\n"
               "  --out PATH   JSONL artifact (default elastic_fairness.jsonl)\n",
               prog);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "elastic_fairness";
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") usage(prog, "");
    if (i + 1 >= argc) usage(prog, key + ": missing value");
    const char* val = argv[++i];
    errno = 0;
    char* end = nullptr;
    if (key == "--seconds") {
      o.seconds = std::strtod(val, &end);
      if (errno != 0 || *end != '\0' || o.seconds <= 0.0)
        usage(prog, "--seconds: expected a positive number");
    } else if (key == "--seed") {
      o.seed = std::strtoull(val, &end, 10);
      if (errno != 0 || *end != '\0') usage(prog, "--seed: expected an integer");
    } else if (key == "--out") {
      o.out = val;
    } else {
      usage(prog, "unknown flag '" + key + "'");
    }
  }
  return o;
}

struct CellResult {
  double jain = 0.0;       ///< Mean target-normalized windowed Jain, tail.
  double track = 0.0;      ///< Mean relative per-flow share tracking error.
  std::vector<double> rate_pps;    ///< Per-flow mean rate over the tail.
  std::vector<double> target_pps;  ///< r̂_i as fluid packets/s.
};

/// r̂ shares → fluid packets/s under the run's MAC parameters.
std::vector<double> shares_to_pps(const std::vector<double>& shares,
                                  const SimConfig& cfg) {
  const MacConfig mac;
  const double eff =
      effective_packet_rate(cfg.payload_bytes, mac, cfg.channel_bps, cfg.cw_min);
  std::vector<double> pps;
  for (double s : shares) pps.push_back(s * eff);
  return pps;
}

CellResult evaluate(const Scenario& base, TransportKind kind, Protocol proto,
                    const Options& opt, const std::vector<double>& fallback_targets) {
  Scenario sc = base;
  sc.transport = kind;
  sc.activity.assign(sc.flow_specs.size(), FlowActivity{});
  for (std::size_t f = 1; f < sc.activity.size(); ++f)
    sc.activity[f].start_s = 5.0 * static_cast<double>(f);

  SimConfig cfg;
  cfg.sim_seconds = opt.seconds;
  cfg.sample_interval_seconds = 2.0;
  cfg.seed = opt.seed;
  const RunResult r = run_scenario(sc, proto, cfg);

  std::vector<double> targets = r.target_flow_share;
  if (!r.epoch_flow_share.empty()) targets = r.epoch_flow_share.back();
  const bool own_solve = r.has_target;
  if (!own_solve) targets = fallback_targets;  // 802.11: 2PA-C's solve

  CellResult cell;
  const std::size_t n = r.window_end_to_end.size();
  const std::size_t tail0 = 2 * n / 3;
  const std::size_t flows = sc.flow_specs.size();
  cell.rate_pps.assign(flows, 0.0);
  std::size_t windows = 0;
  for (std::size_t w = tail0; w < n; ++w, ++windows) {
    std::vector<double> normalized;
    for (std::size_t f = 0; f < flows; ++f) {
      const double pkts = static_cast<double>(r.window_end_to_end[w][f]);
      cell.rate_pps[f] += pkts / cfg.sample_interval_seconds;
      normalized.push_back(pkts / targets[f]);
    }
    cell.jain += jain_fairness_index(normalized);
  }
  cell.jain /= static_cast<double>(windows);
  double total_rate = 0.0, total_target = 0.0;
  for (std::size_t f = 0; f < flows; ++f) {
    cell.rate_pps[f] /= static_cast<double>(windows);
    total_rate += cell.rate_pps[f];
    total_target += targets[f];
  }
  // r̂_i in packets/s for the report. An 802.11 row's fallback targets are
  // already in packets/s (they came from a 2PA-C cell's conversion).
  cell.target_pps = own_solve ? shares_to_pps(targets, cfg) : targets;
  for (std::size_t f = 0; f < flows; ++f) {
    const double want = targets[f] / total_target;
    const double got = cell.rate_pps[f] / total_rate;
    cell.track += std::abs(got - want) / want;
  }
  cell.track /= static_cast<double>(flows);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  std::FILE* out = std::fopen(opt.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", opt.out.c_str(),
                 std::strerror(errno));
    return 1;
  }

  const std::vector<TransportKind> kinds{
      TransportKind::kCbr, TransportKind::kAimd, TransportKind::kBbr};
  // 2PA-C first: its solve doubles as the normalization reference for the
  // target-less 802.11 rows of the same topology.
  const std::vector<Protocol> protos{Protocol::k2paCentralized,
                                     Protocol::k2paDistributedCtrl,
                                     Protocol::k80211};

  bool failed = false;
  for (const Scenario& base : {scenario1(), scenario2()}) {
    std::printf("%s (staggered starts, %.0f s, tail = last third)\n",
                base.name.c_str(), opt.seconds);
    std::printf("  %-6s %-9s %8s %8s   per-flow pps (r̂_i pps)\n", "source",
                "protocol", "jain", "track");
    std::vector<double> ref_targets;  // 2PA-C per-kind solve, for 802.11
    for (TransportKind kind : kinds) {
      for (Protocol proto : protos) {
        const CellResult cell = evaluate(base, kind, proto, opt, ref_targets);
        if (proto == Protocol::k2paCentralized && kind == TransportKind::kCbr) {
          ref_targets.clear();
          for (std::size_t f = 0; f < cell.target_pps.size(); ++f)
            ref_targets.push_back(cell.target_pps[f]);
        }
        const bool allocating = proto != Protocol::k80211;
        const bool elastic = kind != TransportKind::kCbr;
        const bool gate = allocating && elastic;
        const bool miss = gate && (cell.jain < 0.9 || cell.track > 0.15);
        failed = failed || miss;

        std::string rates;
        for (std::size_t f = 0; f < cell.rate_pps.size(); ++f)
          rates += strformat("%s%.0f (%.0f)", f ? ", " : "", cell.rate_pps[f],
                             cell.target_pps[f]);
        std::printf("  %-6s %-9s %8.3f %8.3f   %s%s\n", to_string(kind),
                    to_string(proto), cell.jain, cell.track, rates.c_str(),
                    miss ? "  << FAIL" : "");

        std::string rate_json, target_json;
        for (std::size_t f = 0; f < cell.rate_pps.size(); ++f) {
          rate_json += strformat("%s%.2f", f ? "," : "", cell.rate_pps[f]);
          target_json += strformat("%s%.2f", f ? "," : "", cell.target_pps[f]);
        }
        std::fprintf(out,
                     "{\"topology\":\"%s\",\"transport\":\"%s\","
                     "\"protocol\":\"%s\",\"seed\":%llu,\"seconds\":%.1f,"
                     "\"tail_jain\":%.4f,\"tracking_error\":%.4f,"
                     "\"flow_rate_pps\":[%s],\"target_rate_pps\":[%s],"
                     "\"gated\":%s,\"pass\":%s}\n",
                     base.name.c_str(), to_string(kind), to_string(proto),
                     static_cast<unsigned long long>(opt.seed), opt.seconds,
                     cell.jain, cell.track, rate_json.c_str(),
                     target_json.c_str(), gate ? "true" : "false",
                     miss ? "false" : "true");
      }
    }
    std::printf("\n");
  }
  std::fclose(out);
  std::printf("wrote %s\n", opt.out.c_str());
  if (failed)
    std::fprintf(stderr,
                 "FAIL: an elastic transport missed the fairness floor "
                 "(jain >= 0.9, tracking error <= 15%%) under an allocating "
                 "protocol\n");
  return failed ? 1 : 0;
}
