// Example: flow churn with live re-allocation.
//
// A video backhaul (F1) runs continuously; a bulk transfer (F2) appears for
// the middle third of the run. 2PA re-solves its first phase at each churn
// epoch and pushes the shares into the running schedulers; the windowed
// rates show the video flow yielding exactly its computed share and
// reclaiming it afterwards, with minimal relay loss throughout.
#include <iostream>

#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  const Scenario sc = scenario1();

  SimConfig cfg;
  cfg.sim_seconds = 120.0;
  cfg.sample_interval_seconds = 10.0;

  const std::vector<FlowActivity> activity{
      {0.0, 1e300},   // F1: always on
      {40.0, 80.0},   // F2: joins at 40 s, leaves at 80 s
  };

  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg, activity);

  std::cout << "Dynamic flows on the Fig.-1 topology (F2 active in [40, 80) s)\n\n";
  std::cout << "Re-computed allocations:\n";
  for (std::size_t e = 0; e < r.epoch_starts_s.size(); ++e) {
    std::vector<std::string> shares;
    for (double s : r.epoch_flow_share[e]) shares.push_back(format_share_of_b(s));
    std::cout << "  t >= " << r.epoch_starts_s[e] << " s: (" << join(shares, ", ")
              << ")\n";
  }

  std::cout << "\nWindowed end-to-end deliveries (10-s windows):\n";
  TextTable t({"window start s", "F1 pkts", "F2 pkts"});
  for (std::size_t w = 0; w < r.window_end_to_end.size(); ++w) {
    t.add_row({strformat("%.0f", 10.0 * static_cast<double>(w)),
               std::to_string(r.window_end_to_end[w][0]),
               std::to_string(r.window_end_to_end[w][1])});
  }
  t.print(std::cout);
  std::cout << "\nTotals: F1 " << r.end_to_end_per_flow[0] << ", F2 "
            << r.end_to_end_per_flow[1] << "; in-network loss " << r.lost_packets
            << " packets (ratio " << strformat("%.4f", r.loss_ratio) << ")\n";
  return 0;
}
