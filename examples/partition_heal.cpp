// Example: node failures, route repair, and allocation re-convergence.
//
// A diamond network carries one flow A→B→D, with C as a physically
// redundant relay:
//
//   A (0,0) -- B (200,150)  -- D (400,0)    provisioned route
//   A (0,0) -- C (200,-150) -- D (400,0)    repair route
//
// Range 250 m: the links are exactly A-B, B-D, A-C, C-D (no A-D, no B-C).
//
// The fault schedule exercises the whole self-healing path:
//   t = 10 s  B crashes      → route repair: the flow re-routes via C
//   t = 20 s  C crashes too  → network partition: the flow is suspended
//   t = 30 s  B recovers     → the provisioned route heals; traffic resumes
//   t = 40 s  C recovers     → fully healed (no route change needed)
//
// Phase 1 is re-solved at every epoch; the per-epoch goodput shows service
// through B, then through C, then silence, then service again — and the
// recovery records measure fault-to-first-delivery for each disruption.
//
// Pass `--trace PATH` to also write a structured trace of the run (binary
// unless PATH ends in .jsonl); inspect it with `tools/trace-tool`, e.g.
// `trace-tool convergence PATH --window 2` to see the per-epoch
// re-convergence times.
#include <iostream>
#include <string>

#include "net/runner.hpp"
#include "net/scenarios.hpp"
#include "obs/trace.hpp"
#include "route/routing.hpp"
#include "util/strings.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--trace PATH]\n";
      return 2;
    }
  }
  Scenario sc{"partition-heal",
              Topology({{0, 0}, {200, 150}, {200, -150}, {400, 0}}, 250.0),
              {},
              {}};
  sc.topo.set_labels({"A", "B", "C", "D"});
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, 3));  // A→B→D

  sc.faults.node_down(1, 10.0);  // B crashes
  sc.faults.node_down(2, 20.0);  // C crashes: A and D are partitioned
  sc.faults.node_up(1, 30.0);    // B recovers: the network heals
  sc.faults.node_up(2, 40.0);    // C recovers

  SimConfig cfg;
  cfg.sim_seconds = 50.0;
  cfg.seed = 7;

  TraceSink trace;
  if (!trace_path.empty()) {
    const bool jsonl = trace_path.size() >= 6 &&
                       trace_path.compare(trace_path.size() - 6, 6, ".jsonl") == 0;
    std::string error;
    if (!trace.open(trace_path,
                    jsonl ? TraceSink::Format::kJsonl : TraceSink::Format::kBinary,
                    &error)) {
      std::cerr << "cannot open trace file: " << error << "\n";
      return 1;
    }
    cfg.trace = &trace;
  }

  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  if (!trace_path.empty()) {
    trace.close();
    std::cerr << "trace: " << trace.recorded() << " records -> " << trace_path << "\n";
  }

  std::cout << "Partition & heal on the A/B/C/D diamond (flow A->B->D)\n\n";
  std::cout << "Epoch allocations and goodput:\n";
  for (std::size_t e = 0; e < r.epoch_starts_s.size(); ++e) {
    std::cout << "  t >= " << strformat("%4.0f", r.epoch_starts_s[e])
              << " s: share " << format_share_of_b(r.epoch_flow_share[e][0])
              << ", delivered " << r.epoch_end_to_end[e][0] << " pkts\n";
  }

  std::cout << "\nDisruptions healed:\n";
  for (const RunResult::Recovery& rec : r.recoveries) {
    std::cout << "  fault at " << strformat("%.2f", rec.fault_s)
              << " s -> first delivery on the repaired route at "
              << strformat("%.2f", rec.recovered_s) << " s  (recovery "
              << strformat("%.2f", rec.recovered_s - rec.fault_s) << " s)\n";
  }
  std::cout << "\nSuspended-source packets while partitioned: "
            << r.suspended_packets << "\n";
  std::cout << "Link-layer failures observed: " << r.link_failures << "\n";
  return 0;
}
