// Quickstart: the five-minute tour of the public API.
//
//  1. Build a topology and route two multi-hop flows across it.
//  2. Analyze contention (graph, cliques, basic shares, Prop.-1 bound).
//  3. Run phase 1 (centralized 2PA allocation).
//  4. Check schedulability.
//  5. Run phase 2 (packet-level simulation) and compare measured against
//     allocated shares.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "alloc/centralized.hpp"
#include "alloc/schedulability.hpp"
#include "contention/cliques.hpp"
#include "net/runner.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/strings.hpp"

using namespace e2efa;

int main() {
  // 1. A 6-node chain; F1 spans the whole chain, F2 crosses the tail.
  Scenario sc{"quickstart", make_chain(6), {}};
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, 4, /*weight=*/1.0));
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 5, 3, /*weight=*/1.0));

  FlowSet flows(sc.topo, sc.flow_specs);
  std::cout << "Flows:\n";
  for (const Flow& f : flows.flows()) {
    std::cout << "  " << f.name() << ": " << f.length() << " hops, virtual length "
              << virtual_length(f.length()) << "\n";
  }

  // 2. Contention analysis.
  ContentionGraph graph(sc.topo, flows);
  std::cout << "\nMaximal cliques (" << maximal_cliques(graph).size() << "): ";
  for (const auto& c : maximal_cliques(graph)) {
    std::cout << "{";
    for (std::size_t i = 0; i < c.size(); ++i)
      std::cout << (i ? "," : "") << flows.subflow(c[i]).name();
    std::cout << "} ";
  }
  std::cout << "\nWeighted clique number: " << weighted_clique_number(graph) << "\n";
  const auto basic = basic_shares(flows);
  std::cout << "Basic shares: " << format_share_of_b(basic[0]) << ", "
            << format_share_of_b(basic[1]) << "\n";

  // 3. Phase 1.
  const auto alloc = centralized_allocate(graph);
  std::cout << "\n2PA allocation: ";
  for (double r : alloc.allocation.flow_share) std::cout << format_share_of_b(r) << " ";
  std::cout << "(total effective " << strformat("%.3f", alloc.allocation.total_effective)
            << "B)\n";

  // 4. Schedulability.
  const auto sched = check_schedulable(graph, alloc.allocation.subflow_share);
  std::cout << "Schedulable: " << (sched.schedulable ? "yes" : "no") << "\n";

  // 5. Phase 2: a 60-second packet-level run.
  SimConfig cfg;
  cfg.sim_seconds = 60.0;
  const RunResult r = run_scenario(sc, Protocol::k2paCentralized, cfg);
  std::cout << "\nMeasured after " << cfg.sim_seconds << " s:\n";
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    std::cout << "  " << flows.flow(f).name() << ": " << r.end_to_end_per_flow[f]
              << " packets end-to-end (target share "
              << format_share_of_b(r.target_flow_share[f]) << ")\n";
  }
  std::cout << "  loss ratio " << strformat("%.4f", r.loss_ratio) << "\n";
  return 0;
}
