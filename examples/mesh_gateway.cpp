// Example: community mesh backhaul.
//
// The scenario the paper's introduction motivates: a static wireless mesh
// where several houses route traffic across multiple hops toward a single
// gateway. Plain 802.11 lets the one-hop houses crowd out the far ones;
// 2PA guarantees every house its basic share while still exploiting
// spatial reuse.
#include <iostream>

#include "net/runner.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  // A 3x4 grid; the gateway is node 0 (top-left corner).
  Scenario sc{"mesh-gateway", make_grid(3, 4, 200.0), {}};
  const NodeId gateway = 0;
  // Houses at increasing distance from the gateway.
  for (NodeId house : {3, 7, 11, 9}) {
    sc.flow_specs.push_back(make_routed_flow(sc.topo, house, gateway));
  }

  FlowSet flows(sc.topo, sc.flow_specs);
  std::cout << "Mesh backhaul: " << sc.topo.node_count() << " nodes, "
            << flows.flow_count() << " flows to the gateway\n";
  for (const Flow& f : flows.flows())
    std::cout << "  " << f.name() << ": node " << f.source() << " -> gateway ("
              << f.length() << " hops)\n";

  SimConfig cfg;
  cfg.sim_seconds = 60.0;
  cfg.cbr_pps = 100.0;

  TextTable t({"protocol", "per-flow end-to-end packets", "total", "loss ratio",
               "Jain index"});
  for (Protocol p : {Protocol::k80211, Protocol::k2paCentralized,
                     Protocol::k2paDistributed}) {
    const RunResult r = run_scenario(sc, p, cfg);
    std::vector<std::string> per;
    std::vector<double> xs;
    for (std::int64_t v : r.end_to_end_per_flow) {
      per.push_back(std::to_string(v));
      xs.push_back(static_cast<double>(v));
    }
    t.add_row({to_string(p), join(per, ", "), std::to_string(r.total_end_to_end),
               strformat("%.3f", r.loss_ratio),
               strformat("%.3f", jain_fairness_index(xs))});
  }
  t.print(std::cout);
  std::cout << "\n2PA should show a markedly higher Jain fairness index than "
               "802.11 at a small (or no) cost in total throughput.\n";
  return 0;
}
