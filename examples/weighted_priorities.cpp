// Example: weighted flows (service differentiation).
//
// The paper's model carries a preassigned weight w_i per flow; allocations
// are proportional per unit weight. Here a "video" flow (w = 3) shares a
// chain with a "telemetry" flow (w = 1): phase 1 gives the video flow three
// times the telemetry share, and the measured packet counts follow.
#include <iostream>

#include "alloc/centralized.hpp"
#include "net/runner.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main() {
  // Two parallel 2-hop flows crossing the same middle of a chain.
  Scenario sc{"weighted", make_chain(5), {}};
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 0, 2, /*weight=*/3.0));  // video
  sc.flow_specs.push_back(make_routed_flow(sc.topo, 2, 4, /*weight=*/1.0));  // telemetry

  FlowSet flows(sc.topo, sc.flow_specs);
  ContentionGraph graph(sc.topo, flows);
  const auto alloc = centralized_allocate(graph);

  std::cout << "Weighted service differentiation (video w=3 vs telemetry w=1)\n\n";
  std::cout << "Basic shares: ";
  for (double b : basic_shares(flows)) std::cout << format_share_of_b(b) << " ";
  std::cout << "\nAllocated:    ";
  for (double r : alloc.allocation.flow_share) std::cout << format_share_of_b(r) << " ";
  std::cout << "\nFairness residual |r̂_i/w_i − r̂_j/w_j| = "
            << strformat("%.4f", fairness_residual(flows, alloc.allocation.flow_share))
            << "B\n\n";

  // Note: basic fairness guarantees shares >= w_i-proportional *basic*
  // shares; surplus capacity the video flow cannot use flows to telemetry,
  // so the allocated ratio (here 3/8 : 1/4 = 1.5) is the tracking target,
  // not the raw weight ratio 3.
  const double target_ratio =
      alloc.allocation.flow_share[0] / alloc.allocation.flow_share[1];

  SimConfig cfg;
  cfg.sim_seconds = 60.0;
  cfg.cbr_pps = 300.0;  // both flows saturate their shares
  TextTable t({"protocol", "video e2e pkts", "telemetry e2e pkts",
               strformat("ratio (2PA target %.2f)", target_ratio)});
  for (Protocol p : {Protocol::k80211, Protocol::k2paCentralized}) {
    const RunResult r = run_scenario(sc, p, cfg);
    const double ratio = static_cast<double>(r.end_to_end_per_flow[0]) /
                         static_cast<double>(std::max<std::int64_t>(1, r.end_to_end_per_flow[1]));
    t.add_row({to_string(p), std::to_string(r.end_to_end_per_flow[0]),
               std::to_string(r.end_to_end_per_flow[1]), strformat("%.2f", ratio)});
  }
  t.print(std::cout);
  std::cout << "\n802.11 is weight-blind (it even inverts the priority); 2PA's\n"
               "measured ratio tracks the allocated ratio.\n";
  return 0;
}
