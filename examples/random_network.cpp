// Example: protocol comparison on randomized ad hoc networks.
//
// Generates several random connected topologies with random multi-hop
// flows, runs all four protocols on each, and reports averaged totals,
// loss ratios, and fairness — the kind of study a user of this library
// would run to evaluate 2PA on their own deployment geometry.
#include <iostream>
#include <map>

#include "net/runner.hpp"
#include "route/routing.hpp"
#include "topology/builders.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace e2efa;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 3;
  Rng rng(2026);

  struct Agg {
    RunningStat total, loss, jain;
  };
  std::map<Protocol, Agg> agg;

  for (int trial = 0; trial < trials; ++trial) {
    // 14 nodes in a field sized for ~5 neighbors each; 4 random flows.
    Scenario sc{strformat("random-%d", trial), make_random(14, 750, 750, rng), {}};
    for (int f = 0; f < 4; ++f) {
      NodeId a, b;
      do {
        a = static_cast<NodeId>(rng.uniform_u64(14));
        b = static_cast<NodeId>(rng.uniform_u64(14));
      } while (a == b);
      sc.flow_specs.push_back(make_routed_flow(sc.topo, a, b));
    }

    SimConfig cfg;
    cfg.sim_seconds = 40.0;
    cfg.seed = 1000 + static_cast<std::uint64_t>(trial);
    for (Protocol p : {Protocol::k80211, Protocol::kTwoTier, Protocol::k2paCentralized,
                       Protocol::k2paDistributed}) {
      const RunResult r = run_scenario(sc, p, cfg);
      std::vector<double> xs;
      for (std::int64_t v : r.end_to_end_per_flow) xs.push_back(static_cast<double>(v));
      agg[p].total.add(static_cast<double>(r.total_end_to_end));
      agg[p].loss.add(r.loss_ratio);
      agg[p].jain.add(jain_fairness_index(xs));
    }
  }

  std::cout << "Random ad hoc networks — " << trials
            << " trials, 14 nodes, 4 flows, 40 s each\n\n";
  TextTable t({"protocol", "avg total e2e", "avg loss ratio", "avg Jain index"});
  for (const auto& [p, a] : agg) {
    t.add_row({std::string(to_string(p)), strformat("%.0f", a.total.mean()),
               strformat("%.3f", a.loss.mean()), strformat("%.3f", a.jain.mean())});
  }
  t.print(std::cout);
  std::cout << "\nTypical outcome: 2PA variants pair near-802.11 totals with far\n"
               "better fairness and an order of magnitude less in-network loss.\n";
  return 0;
}
