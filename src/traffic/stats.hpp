// Per-subflow and per-flow traffic accounting (the quantities Tables II and
// III report: delivered packets per subflow, end-to-end totals, losses).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "flow/flow.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace e2efa {

struct SubflowCounters {
  std::int64_t generated = 0;      ///< Source-generated (first hop only).
  std::int64_t enqueued = 0;       ///< Accepted into the transmit queue.
  std::int64_t dropped_queue = 0;  ///< Drop-tail (buffer overflow) losses.
  std::int64_t dropped_mac = 0;    ///< Retry-limit losses.
  std::int64_t delivered = 0;      ///< Clean, deduplicated receptions.
};

class TrafficStats {
 public:
  explicit TrafficStats(const FlowSet& flows);

  /// Measurements before `t` are excluded (transient warm-up). Set once at
  /// scenario start; duplicate suppression is unaffected.
  void set_warmup(TimeNs t) { warmup_ = t; }
  TimeNs warmup() const { return warmup_; }
  /// True when `now` falls inside the measured interval.
  bool measuring(TimeNs now) const { return now >= warmup_; }

  SubflowCounters& subflow(int global_index);
  const SubflowCounters& subflow(int global_index) const;
  int subflow_count() const { return static_cast<int>(counters_.size()); }

  /// Records one end-to-end delivery latency for flow f.
  void record_delay(FlowId f, TimeNs delay);
  /// End-to-end delay statistics of flow f (seconds).
  const RunningStat& delay(FlowId f) const;

  /// Counts one packet of flow f suppressed at the source because the flow
  /// was suspended (destination unreachable under the current fault mask).
  /// Counted regardless of warm-up: suspension is a fault effect, not noise.
  void count_suspended(FlowId f);
  /// Packets of flow f suppressed while suspended.
  std::int64_t suspended(FlowId f) const;
  /// Σ_i suspended(i).
  std::int64_t total_suspended() const;

  /// Observer invoked on every deduplicated end-to-end delivery of flow f
  /// (warm-up included) — the hook recovery-time measurement and delivery
  /// tracing hang off. `delay` is the packet's end-to-end latency.
  using DeliveryListener = std::function<void(FlowId, TimeNs, TimeNs delay)>;
  void set_delivery_listener(DeliveryListener fn) { on_delivery_ = std::move(fn); }
  /// Called by the node stack at the destination; fires the listener.
  void notify_end_to_end(FlowId f, TimeNs now, TimeNs delay);

  /// Delivered packets on the j-th hop of flow f ("r_{i.j} · T").
  std::int64_t delivered(FlowId f, int hop) const;

  /// End-to-end delivered packets of flow f (= delivery count of its last
  /// hop, "r̂_i · T").
  std::int64_t end_to_end(FlowId f) const;

  /// Σ_i end_to_end(i) — the measured total effective throughput × T.
  std::int64_t total_end_to_end() const;

  /// All packets lost anywhere (queue overflow + retry-limit drops),
  /// including source-side drops.
  std::int64_t total_dropped() const;

  /// The paper's "lost packets": in-network losses — packets that consumed
  /// upstream airtime but never reached the destination,
  /// Σ_i (delivered(i, hop 1) − delivered(i, last hop)). (Table II/III's
  /// counts satisfy this identity exactly.) Source-side queue drops are
  /// excluded: they never used the channel.
  std::int64_t total_lost() const;

  /// Paper's loss ratio: total lost / total end-to-end delivered
  /// (0 when nothing was delivered).
  double loss_ratio() const;

 private:
  const FlowSet* flows_;
  std::vector<SubflowCounters> counters_;
  std::vector<RunningStat> delay_;
  std::vector<std::int64_t> suspended_;
  DeliveryListener on_delivery_;
  TimeNs warmup_ = 0;
};

}  // namespace e2efa
