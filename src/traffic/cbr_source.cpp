#include "traffic/cbr_source.hpp"

#include "util/assert.hpp"

namespace e2efa {

std::atomic<std::uint64_t> CbrSource::next_uid_{1};

CbrSource::CbrSource(Simulator& sim, double packets_per_second, int payload_bytes,
                     std::function<void(Packet)> emit, Rng& phase_rng)
    : sim_(sim), payload_bytes_(payload_bytes), emit_(std::move(emit)) {
  E2EFA_ASSERT(packets_per_second > 0.0);
  E2EFA_ASSERT(payload_bytes > 0);
  E2EFA_ASSERT(emit_ != nullptr);
  interval_ = static_cast<TimeNs>(1e9 / packets_per_second);
  E2EFA_ASSERT(interval_ > 0);
  phase_ = static_cast<TimeNs>(phase_rng.uniform_u64(static_cast<std::uint64_t>(interval_)));
}

void CbrSource::start(TimeNs until) {
  until_ = until;
  sim_.schedule_at(sim_.now() + phase_, [this] { tick(); });
}

void CbrSource::tick() {
  if (sim_.now() >= until_) return;
  Packet p;
  p.uid = next_uid_.fetch_add(1, std::memory_order_relaxed);
  p.seq = seq_++;
  p.payload_bytes = payload_bytes_;
  p.created = sim_.now();
  emit_(p);
  sim_.schedule_in(interval_, [this] { tick(); });
}

}  // namespace e2efa
