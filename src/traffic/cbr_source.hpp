// Constant-bit-rate traffic source (the paper's workload: 200 packets per
// second of 512 bytes at every flow source, greedy relative to the
// allocated shares).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "phy/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace e2efa {

class CbrSource {
 public:
  /// `emit` receives each generated packet (flow/hop/subflow/src/dst/seq
  /// fields prefilled by the caller-provided stamper; this class fills seq,
  /// uid, created). A small random phase offset (< one interval) decorrelates
  /// simultaneous sources.
  CbrSource(Simulator& sim, double packets_per_second, int payload_bytes,
            std::function<void(Packet)> emit, Rng& phase_rng);

  /// Starts generation; packets are produced until `until`.
  void start(TimeNs until);

  std::int64_t generated() const { return seq_; }

 private:
  void tick();

  Simulator& sim_;
  TimeNs interval_;
  int payload_bytes_;
  std::function<void(Packet)> emit_;
  TimeNs phase_ = 0;
  TimeNs until_ = 0;
  std::int64_t seq_ = 0;
  /// Atomic so concurrent BatchRunner workers stay race-free; the uid feeds
  /// tracing only, so cross-run numbering does not affect results.
  static std::atomic<std::uint64_t> next_uid_;
};

}  // namespace e2efa
