#include "traffic/stats.hpp"

#include "util/assert.hpp"

namespace e2efa {

TrafficStats::TrafficStats(const FlowSet& flows) : flows_(&flows) {
  counters_.resize(static_cast<std::size_t>(flows.subflow_count()));
  delay_.resize(static_cast<std::size_t>(flows.flow_count()));
  suspended_.resize(static_cast<std::size_t>(flows.flow_count()), 0);
}

void TrafficStats::count_suspended(FlowId f) {
  E2EFA_ASSERT(f >= 0 && f < static_cast<FlowId>(suspended_.size()));
  ++suspended_[static_cast<std::size_t>(f)];
}

std::int64_t TrafficStats::suspended(FlowId f) const {
  E2EFA_ASSERT(f >= 0 && f < static_cast<FlowId>(suspended_.size()));
  return suspended_[static_cast<std::size_t>(f)];
}

std::int64_t TrafficStats::total_suspended() const {
  std::int64_t sum = 0;
  for (std::int64_t s : suspended_) sum += s;
  return sum;
}

void TrafficStats::notify_end_to_end(FlowId f, TimeNs now, TimeNs delay) {
  if (on_delivery_) on_delivery_(f, now, delay);
}

void TrafficStats::record_delay(FlowId f, TimeNs delay) {
  E2EFA_ASSERT(f >= 0 && f < static_cast<FlowId>(delay_.size()));
  E2EFA_ASSERT(delay >= 0);
  delay_[static_cast<std::size_t>(f)].add(to_seconds(delay));
}

const RunningStat& TrafficStats::delay(FlowId f) const {
  E2EFA_ASSERT(f >= 0 && f < static_cast<FlowId>(delay_.size()));
  return delay_[static_cast<std::size_t>(f)];
}

SubflowCounters& TrafficStats::subflow(int global_index) {
  E2EFA_ASSERT(global_index >= 0 && global_index < subflow_count());
  return counters_[static_cast<std::size_t>(global_index)];
}

const SubflowCounters& TrafficStats::subflow(int global_index) const {
  E2EFA_ASSERT(global_index >= 0 && global_index < subflow_count());
  return counters_[static_cast<std::size_t>(global_index)];
}

std::int64_t TrafficStats::delivered(FlowId f, int hop) const {
  return subflow(flows_->subflow_index(f, hop)).delivered;
}

std::int64_t TrafficStats::end_to_end(FlowId f) const {
  return delivered(f, flows_->flow(f).length() - 1);
}

std::int64_t TrafficStats::total_end_to_end() const {
  std::int64_t sum = 0;
  for (FlowId f = 0; f < flows_->flow_count(); ++f) sum += end_to_end(f);
  return sum;
}

std::int64_t TrafficStats::total_dropped() const {
  std::int64_t sum = 0;
  for (const SubflowCounters& c : counters_) sum += c.dropped_queue + c.dropped_mac;
  return sum;
}

std::int64_t TrafficStats::total_lost() const {
  std::int64_t sum = 0;
  for (FlowId f = 0; f < flows_->flow_count(); ++f)
    sum += delivered(f, 0) - end_to_end(f);
  return sum;
}

double TrafficStats::loss_ratio() const {
  const std::int64_t delivered = total_end_to_end();
  if (delivered == 0) return total_lost() > 0 ? 1.0 : 0.0;
  return static_cast<double>(total_lost()) / static_cast<double>(delivered);
}

}  // namespace e2efa
