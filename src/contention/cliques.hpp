// Maximal-clique machinery over the (weighted) subflow contention graph
// (Sec. III-A): Bron–Kerbosch enumeration, weighted clique sizes, the
// weighted clique number ω_Ω, per-flow clique membership counts n_{i,k},
// and maximal independent sets (used by the schedulability check).
#pragma once

#include <vector>

#include "contention/contention_graph.hpp"

namespace e2efa {

/// All maximal cliques of the contention graph (Bron–Kerbosch with
/// pivoting). Each clique is an ascending list of subflow indices; the
/// clique list is sorted lexicographically for determinism.
std::vector<std::vector<int>> maximal_cliques(const ContentionGraph& g);

/// All maximal independent sets (maximal cliques of the complement graph),
/// same ordering guarantees. Independent sets are the sets of subflows that
/// may transmit concurrently.
std::vector<std::vector<int>> maximal_independent_sets(const ContentionGraph& g);

/// Weighted clique size ω_{Ω_k}: sum of subflow weights in the clique.
double weighted_clique_size(const ContentionGraph& g, const std::vector<int>& clique);

/// Weighted clique number ω_Ω = max_k ω_{Ω_k} over all maximal cliques.
/// Requires a non-empty graph.
double weighted_clique_number(const ContentionGraph& g);

/// Per-flow clique membership: n[i] = number of subflows of flow i in
/// `clique` (the n_{i,k} coefficients of constraint (3)/(6)).
std::vector<int> flow_membership_counts(const ContentionGraph& g,
                                        const std::vector<int>& clique);

/// Deduplicated per-flow constraint rows: each row is the n_{i,k} vector of
/// one maximal clique; identical rows (e.g. the two 3-subflow cliques of a
/// long chain) are merged. Rows are sorted for determinism.
std::vector<std::vector<int>> clique_constraint_rows(const ContentionGraph& g);

/// Maximal cliques of the subgraph induced by `subset` (ascending subflow
/// indices, no duplicates). Cliques are reported in *global* vertex ids and
/// are maximal within the subset — the distributed algorithm's "local
/// cliques" (a node can only reason about subflows it knows of).
std::vector<std::vector<int>> maximal_cliques_in_subset(const ContentionGraph& g,
                                                        const std::vector<int>& subset);

}  // namespace e2efa
