// Maximal-clique machinery over the (weighted) subflow contention graph
// (Sec. III-A): Bron–Kerbosch enumeration, weighted clique sizes, the
// weighted clique number ω_Ω, per-flow clique membership counts n_{i,k},
// and maximal independent sets (used by the schedulability check).
//
// Enumeration runs on the graph's sorted adjacency lists (sorted-list
// intersections, no dense matrix), with all recursion scratch pooled per
// depth so repeated runs — per-epoch re-solves, per-node local solves —
// do not reallocate. `maximal_cliques_reference` keeps the original dense
// enumerator as a brute-force oracle for parity tests and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "contention/contention_graph.hpp"

namespace e2efa {

/// Reusable Bron–Kerbosch engine (Tomita pivoting) over a contention
/// graph. Full enumerations are seeded per vertex (each clique derived
/// exactly once, from its smallest member), so every recursive subproblem
/// lives inside one closed neighborhood; the subproblem universe P ∪ X is
/// relabelled into a local bitset adjacency, making the per-level set
/// operations word-parallel — on city-scale contention graphs (hundreds
/// of mutually-contending subflows per interference region) that is the
/// difference between minutes and hours. All scratch (recursion frames,
/// bitset rows, relabel maps) is pooled and reused across runs, so a
/// long-lived enumerator performs no steady-state allocation. Not
/// thread-safe (one engine per thread, like the rest of the simulator).
class CliqueEnumerator {
 public:
  explicit CliqueEnumerator(const ContentionGraph& g) : g_(&g) {}

  /// Appends to `out` every maximal clique of the subgraph induced by `p0`
  /// (strictly ascending vertex ids). Each clique is ascending; the order
  /// of appended cliques is unspecified — callers sort for determinism.
  void enumerate(const std::vector<int>& p0, std::vector<std::vector<int>>& out);

  /// General entry point: enumerates every maximal clique C of the
  /// subgraph induced by r0 ∪ p0 ∪ x0 with r0 ⊆ C ⊆ r0 ∪ p0 and
  /// C ∩ x0 = ∅. All of r0/p0/x0 ascending; every vertex of p0 and x0
  /// must be adjacent to every vertex of r0. Used by the incremental
  /// clique store to re-derive only the cliques through a seed vertex.
  void enumerate_from(const std::vector<int>& r0, const std::vector<int>& p0,
                      const std::vector<int>& x0, std::vector<std::vector<int>>& out);

 private:
  struct Frame {
    std::vector<std::uint64_t> p, x, cand;
  };

  void expand(int depth);

  const ContentionGraph* g_;
  std::vector<Frame> frames_;
  std::vector<int> r_;
  std::vector<int> seed_p_, seed_x_;  ///< Per-seed P/X scratch (enumerate).
  std::vector<int> seed_mark_;        ///< p0-membership stamps (enumerate).
  int seed_epoch_ = 0;

  // Local-universe state of the current enumerate_from call: universe_[i]
  // is the global id of local vertex i, rows_[i * words_ ..] its bitset
  // adjacency row restricted to the universe.
  std::vector<int> universe_;
  std::vector<int> upos_;   ///< Global id -> local index.
  std::vector<int> umark_;  ///< Universe-membership stamps.
  int uepoch_ = 0;
  int words_ = 0;
  std::vector<std::uint64_t> rows_;
  std::vector<std::vector<int>>* out_ = nullptr;
};

/// All maximal cliques of the contention graph (Bron–Kerbosch with
/// pivoting). Each clique is an ascending list of subflow indices; the
/// clique list is sorted lexicographically for determinism.
std::vector<std::vector<int>> maximal_cliques(const ContentionGraph& g);

/// Original dense-matrix Bron–Kerbosch, kept verbatim as the brute-force
/// oracle: same output contract as `maximal_cliques`, O(V^2) setup and
/// per-call allocation. Parity tests assert the sparse path matches it
/// element-wise; `bench/micro_cliques` uses it as the "before" baseline.
std::vector<std::vector<int>> maximal_cliques_reference(const ContentionGraph& g);

/// All maximal independent sets (maximal cliques of the complement graph),
/// same ordering guarantees. Independent sets are the sets of subflows that
/// may transmit concurrently.
std::vector<std::vector<int>> maximal_independent_sets(const ContentionGraph& g);

/// Weighted clique size ω_{Ω_k}: sum of subflow weights in the clique.
double weighted_clique_size(const ContentionGraph& g, const std::vector<int>& clique);

/// Weighted clique number ω_Ω = max_k ω_{Ω_k} over all maximal cliques.
/// Requires a non-empty graph.
double weighted_clique_number(const ContentionGraph& g);

/// Per-flow clique membership: n[i] = number of subflows of flow i in
/// `clique` (the n_{i,k} coefficients of constraint (3)/(6)).
std::vector<int> flow_membership_counts(const ContentionGraph& g,
                                        const std::vector<int>& clique);

/// Deduplicated per-flow constraint rows: each row is the n_{i,k} vector of
/// one maximal clique; identical rows (e.g. the two 3-subflow cliques of a
/// long chain) are merged. Rows are sorted for determinism.
std::vector<std::vector<int>> clique_constraint_rows(const ContentionGraph& g);

/// Same, from an already-enumerated clique list (e.g. the incremental
/// clique store's snapshot) — the rows only depend on the clique *set*, so
/// any source that yields the graph's maximal cliques gives identical rows.
std::vector<std::vector<int>> clique_constraint_rows(
    const ContentionGraph& g, const std::vector<std::vector<int>>& cliques);

/// Maximal cliques of the subgraph induced by `subset` (ascending subflow
/// indices, no duplicates). Cliques are reported in *global* vertex ids and
/// are maximal within the subset — the distributed algorithm's "local
/// cliques" (a node can only reason about subflows it knows of).
std::vector<std::vector<int>> maximal_cliques_in_subset(const ContentionGraph& g,
                                                        const std::vector<int>& subset);

}  // namespace e2efa
