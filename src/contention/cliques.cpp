#include "contention/cliques.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace e2efa {

namespace {

/// Generic Bron–Kerbosch with pivoting over an adjacency predicate.
class BronKerbosch {
 public:
  BronKerbosch(int n, std::vector<std::vector<bool>> adj) : n_(n), adj_(std::move(adj)) {}

  std::vector<std::vector<int>> run() {
    std::vector<int> r, p, x;
    for (int v = 0; v < n_; ++v) p.push_back(v);
    expand(r, p, x);
    for (auto& c : out_) std::sort(c.begin(), c.end());
    std::sort(out_.begin(), out_.end());
    return std::move(out_);
  }

 private:
  void expand(std::vector<int>& r, std::vector<int> p, std::vector<int> x) {
    if (p.empty() && x.empty()) {
      out_.push_back(r);
      return;
    }
    // Pivot: vertex of P ∪ X with most neighbors in P (Tomita et al.).
    int pivot = -1, best = -1;
    auto count_nbrs_in_p = [&](int u) {
      int c = 0;
      for (int w : p) c += adj_[u][w] ? 1 : 0;
      return c;
    };
    for (int u : p) {
      const int c = count_nbrs_in_p(u);
      if (c > best) best = c, pivot = u;
    }
    for (int u : x) {
      const int c = count_nbrs_in_p(u);
      if (c > best) best = c, pivot = u;
    }
    std::vector<int> candidates;
    for (int v : p)
      if (pivot == -1 || !adj_[pivot][v]) candidates.push_back(v);

    for (int v : candidates) {
      std::vector<int> p2, x2;
      for (int w : p)
        if (adj_[v][w]) p2.push_back(w);
      for (int w : x)
        if (adj_[v][w]) x2.push_back(w);
      r.push_back(v);
      expand(r, std::move(p2), std::move(x2));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  int n_;
  std::vector<std::vector<bool>> adj_;
  std::vector<std::vector<int>> out_;
};

std::vector<std::vector<bool>> adjacency_of(const ContentionGraph& g, bool complement) {
  const int n = g.vertex_count();
  std::vector<std::vector<bool>> adj(static_cast<std::size_t>(n),
                                     std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b)
      if (a != b) adj[a][b] = complement ? !g.contend(a, b) : g.contend(a, b);
  return adj;
}

}  // namespace

std::vector<std::vector<int>> maximal_cliques(const ContentionGraph& g) {
  return BronKerbosch(g.vertex_count(), adjacency_of(g, /*complement=*/false)).run();
}

std::vector<std::vector<int>> maximal_independent_sets(const ContentionGraph& g) {
  return BronKerbosch(g.vertex_count(), adjacency_of(g, /*complement=*/true)).run();
}

double weighted_clique_size(const ContentionGraph& g, const std::vector<int>& clique) {
  double sum = 0.0;
  for (int v : clique) sum += g.flows().subflow(v).weight;
  return sum;
}

double weighted_clique_number(const ContentionGraph& g) {
  E2EFA_ASSERT_MSG(g.vertex_count() > 0, "empty contention graph");
  double best = 0.0;
  for (const auto& c : maximal_cliques(g)) best = std::max(best, weighted_clique_size(g, c));
  return best;
}

std::vector<int> flow_membership_counts(const ContentionGraph& g,
                                        const std::vector<int>& clique) {
  std::vector<int> counts(static_cast<std::size_t>(g.flows().flow_count()), 0);
  for (int v : clique) ++counts[static_cast<std::size_t>(g.flows().subflow(v).flow)];
  return counts;
}

std::vector<std::vector<int>> clique_constraint_rows(const ContentionGraph& g) {
  std::set<std::vector<int>> rows;
  for (const auto& c : maximal_cliques(g)) rows.insert(flow_membership_counts(g, c));
  return {rows.begin(), rows.end()};
}

std::vector<std::vector<int>> maximal_cliques_in_subset(const ContentionGraph& g,
                                                        const std::vector<int>& subset) {
  const int k = static_cast<int>(subset.size());
  for (int i = 1; i < k; ++i)
    E2EFA_ASSERT_MSG(subset[static_cast<std::size_t>(i - 1)] < subset[static_cast<std::size_t>(i)],
                     "subset must be strictly ascending");
  std::vector<std::vector<bool>> adj(static_cast<std::size_t>(k),
                                     std::vector<bool>(static_cast<std::size_t>(k), false));
  for (int a = 0; a < k; ++a)
    for (int b = 0; b < k; ++b)
      if (a != b)
        adj[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            g.contend(subset[static_cast<std::size_t>(a)], subset[static_cast<std::size_t>(b)]);
  auto local = BronKerbosch(k, std::move(adj)).run();
  for (auto& clique : local)
    for (int& v : clique) v = subset[static_cast<std::size_t>(v)];
  return local;
}

}  // namespace e2efa
