#include "contention/cliques.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <iterator>
#include <set>

#include "util/assert.hpp"

namespace e2efa {

namespace {

/// Original dense Bron–Kerbosch with pivoting over an adjacency matrix.
/// Retained as the brute-force oracle and for complement-graph enumeration
/// (independent sets), where the complement of a sparse graph is dense.
class DenseBronKerbosch {
 public:
  DenseBronKerbosch(int n, std::vector<std::vector<bool>> adj) : n_(n), adj_(std::move(adj)) {}

  std::vector<std::vector<int>> run() {
    std::vector<int> r, p, x;
    for (int v = 0; v < n_; ++v) p.push_back(v);
    expand(r, p, x);
    for (auto& c : out_) std::sort(c.begin(), c.end());
    std::sort(out_.begin(), out_.end());
    return std::move(out_);
  }

 private:
  void expand(std::vector<int>& r, std::vector<int> p, std::vector<int> x) {
    if (p.empty() && x.empty()) {
      out_.push_back(r);
      return;
    }
    // Pivot: vertex of P ∪ X with most neighbors in P (Tomita et al.).
    int pivot = -1, best = -1;
    auto count_nbrs_in_p = [&](int u) {
      int c = 0;
      for (int w : p) c += adj_[u][w] ? 1 : 0;
      return c;
    };
    for (int u : p) {
      const int c = count_nbrs_in_p(u);
      if (c > best) best = c, pivot = u;
    }
    for (int u : x) {
      const int c = count_nbrs_in_p(u);
      if (c > best) best = c, pivot = u;
    }
    std::vector<int> candidates;
    for (int v : p)
      if (pivot == -1 || !adj_[pivot][v]) candidates.push_back(v);

    for (int v : candidates) {
      std::vector<int> p2, x2;
      for (int w : p)
        if (adj_[v][w]) p2.push_back(w);
      for (int w : x)
        if (adj_[v][w]) x2.push_back(w);
      r.push_back(v);
      expand(r, std::move(p2), std::move(x2));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  int n_;
  std::vector<std::vector<bool>> adj_;
  std::vector<std::vector<int>> out_;
};

std::vector<std::vector<bool>> adjacency_of(const ContentionGraph& g, bool complement) {
  const int n = g.vertex_count();
  std::vector<std::vector<bool>> adj(static_cast<std::size_t>(n),
                                     std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b)
      if (a != b) adj[a][b] = complement ? !g.contend(a, b) : g.contend(a, b);
  return adj;
}

/// popcount(a & b) over two equally-sized word spans.
int and_popcount(const std::uint64_t* a, const std::uint64_t* b, int words) {
  int count = 0;
  for (int w = 0; w < words; ++w) count += std::popcount(a[w] & b[w]);
  return count;
}

bool all_zero(const std::vector<std::uint64_t>& bits) {
  for (std::uint64_t w : bits)
    if (w != 0) return false;
  return true;
}

/// Calls fn(local index) for every set bit, ascending.
template <typename Fn>
void for_each_bit(const std::vector<std::uint64_t>& bits, Fn&& fn) {
  for (std::size_t wi = 0; wi < bits.size(); ++wi) {
    std::uint64_t w = bits[wi];
    while (w != 0) {
      fn(static_cast<int>(wi * 64) + std::countr_zero(w));
      w &= w - 1;
    }
  }
}

}  // namespace

void CliqueEnumerator::enumerate(const std::vector<int>& p0,
                                 std::vector<std::vector<int>>& out) {
  // Vertex-seeded outer loop (Eppstein–Löffler–Strash structure): each
  // clique is derived exactly once, from its smallest member — seeding at
  // v with P = later neighbors and X = earlier neighbors keeps every
  // subproblem inside one closed neighborhood, so the recursion never
  // carries graph-sized P/X sets the way a single global expansion would.
  // The same split CliqueStore::update uses for its dirty seeds, with
  // every vertex dirty.
  if (seed_mark_.size() < static_cast<std::size_t>(g_->vertex_count()))
    seed_mark_.assign(static_cast<std::size_t>(g_->vertex_count()), 0);
  const int epoch = ++seed_epoch_;
  for (int v : p0) seed_mark_[static_cast<std::size_t>(v)] = epoch;
  for (int v : p0) {
    seed_p_.clear();
    seed_x_.clear();
    for (int u : g_->neighbors_of(v))
      if (seed_mark_[static_cast<std::size_t>(u)] == epoch)
        (u < v ? seed_x_ : seed_p_).push_back(u);
    enumerate_from({v}, seed_p_, seed_x_, out);
  }
}

void CliqueEnumerator::enumerate_from(const std::vector<int>& r0,
                                      const std::vector<int>& p0,
                                      const std::vector<int>& x0,
                                      std::vector<std::vector<int>>& out) {
  // Local universe: P ∪ X relabelled to [0, m). r0's members are adjacent
  // to everything in it by contract, so only the universe needs bitset
  // adjacency rows. For seeded calls the universe is one neighborhood, so
  // m is bounded by the graph's maximum degree, not its size.
  universe_.clear();
  std::merge(p0.begin(), p0.end(), x0.begin(), x0.end(),
             std::back_inserter(universe_));
  const int m = static_cast<int>(universe_.size());
  r_.assign(r0.begin(), r0.end());
  out_ = &out;
  if (m == 0) {
    out_->emplace_back(r_);
    std::sort(out_->back().begin(), out_->back().end());
    out_ = nullptr;
    return;
  }
  // Dominator pre-check: if some excluded vertex x is adjacent to all of
  // P, every clique of this subproblem extends by x, so nothing here is
  // maximal — return before paying for the bitset rows. This is the
  // depth-0 pivot early-exit hoisted above row construction; it prunes
  // the (majority of) seeds whose cliques are derived from a smaller
  // member. std::includes aborts at the first P-vertex missing from
  // N(x), so failed probes are cheap.
  for (int x : x0) {
    const auto& nx = g_->neighbors_of(x);
    if (std::includes(nx.begin(), nx.end(), p0.begin(), p0.end())) {
      out_ = nullptr;
      return;
    }
  }

  if (upos_.size() < static_cast<std::size_t>(g_->vertex_count())) {
    upos_.resize(static_cast<std::size_t>(g_->vertex_count()), 0);
    umark_.resize(static_cast<std::size_t>(g_->vertex_count()), 0);
  }
  const int epoch = ++uepoch_;
  for (int i = 0; i < m; ++i) {
    upos_[static_cast<std::size_t>(universe_[i])] = i;
    umark_[static_cast<std::size_t>(universe_[i])] = epoch;
  }
  words_ = (m + 63) / 64;
  rows_.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(words_), 0);
  for (int i = 0; i < m; ++i) {
    std::uint64_t* row = rows_.data() + static_cast<std::size_t>(i) * words_;
    for (int u : g_->neighbors_of(universe_[static_cast<std::size_t>(i)]))
      if (umark_[static_cast<std::size_t>(u)] == epoch) {
        const int j = upos_[static_cast<std::size_t>(u)];
        row[j >> 6] |= std::uint64_t{1} << (j & 63);
      }
  }

  // Depth is bounded by |P|; sizing the frame pool up front keeps
  // references stable across recursion (frames are never grown mid-run).
  const std::size_t max_depth = p0.size() + 2;
  if (frames_.size() < max_depth) frames_.resize(max_depth);
  Frame& f0 = frames_[0];
  f0.p.assign(static_cast<std::size_t>(words_), 0);
  f0.x.assign(static_cast<std::size_t>(words_), 0);
  for (int v : p0) {
    const int j = upos_[static_cast<std::size_t>(v)];
    f0.p[static_cast<std::size_t>(j >> 6)] |= std::uint64_t{1} << (j & 63);
  }
  for (int v : x0) {
    const int j = upos_[static_cast<std::size_t>(v)];
    f0.x[static_cast<std::size_t>(j >> 6)] |= std::uint64_t{1} << (j & 63);
  }
  expand(0);
  out_ = nullptr;
}

void CliqueEnumerator::expand(int depth) {
  Frame& f = frames_[static_cast<std::size_t>(depth)];
  if (all_zero(f.p) && all_zero(f.x)) {
    out_->emplace_back(r_);
    std::sort(out_->back().begin(), out_->back().end());
    return;
  }
  // Pivot: vertex of P ∪ X with most neighbors in P (Tomita et al.),
  // scanned with an early exit. A pivot covering all of P (possible for
  // u ∈ X) leaves no branch at all, and one covering all of P but itself
  // (u ∈ P) leaves exactly one — no later candidate can beat that, so
  // the scan stops at the first such vertex. Contention graphs are
  // locally near-complete, so the exit usually fires within a few probes.
  // X is scanned first: only its members can reach the branch-free bound.
  // The pivot choice only steers the search order — the set of maximal
  // cliques emitted is pivot-invariant, and every caller canonicalizes by
  // sorting, so results are bit-identical regardless.
  int np = 0;
  for (std::uint64_t w : f.p) np += std::popcount(w);
  int pivot = -1, best = -1;
  for_each_bit(f.x, [&](int u) {
    if (best >= np) return;
    const int c = and_popcount(rows_.data() + static_cast<std::size_t>(u) * words_,
                               f.p.data(), words_);
    if (c > best) best = c, pivot = u;
  });
  if (best < np - 1) {
    for_each_bit(f.p, [&](int u) {
      if (best >= np - 1) return;
      const int c = and_popcount(rows_.data() + static_cast<std::size_t>(u) * words_,
                                 f.p.data(), words_);
      if (c > best) best = c, pivot = u;
    });
  }
  // Candidates: P minus the pivot's bitset row.
  f.cand.assign(f.p.begin(), f.p.end());
  if (pivot >= 0) {
    const std::uint64_t* row = rows_.data() + static_cast<std::size_t>(pivot) * words_;
    for (int w = 0; w < words_; ++w) f.cand[static_cast<std::size_t>(w)] &= ~row[w];
  }
  Frame& next = frames_[static_cast<std::size_t>(depth) + 1];
  for_each_bit(f.cand, [&](int v) {
    const std::uint64_t* row = rows_.data() + static_cast<std::size_t>(v) * words_;
    next.p.resize(static_cast<std::size_t>(words_));
    next.x.resize(static_cast<std::size_t>(words_));
    for (int w = 0; w < words_; ++w) {
      next.p[static_cast<std::size_t>(w)] = f.p[static_cast<std::size_t>(w)] & row[w];
      next.x[static_cast<std::size_t>(w)] = f.x[static_cast<std::size_t>(w)] & row[w];
    }
    r_.push_back(universe_[static_cast<std::size_t>(v)]);
    expand(depth + 1);
    r_.pop_back();
    f.p[static_cast<std::size_t>(v >> 6)] &= ~(std::uint64_t{1} << (v & 63));
    f.x[static_cast<std::size_t>(v >> 6)] |= std::uint64_t{1} << (v & 63);
  });
}

std::vector<std::vector<int>> maximal_cliques(const ContentionGraph& g) {
  std::vector<int> all(static_cast<std::size_t>(g.vertex_count()));
  for (int v = 0; v < g.vertex_count(); ++v) all[static_cast<std::size_t>(v)] = v;
  std::vector<std::vector<int>> out;
  CliqueEnumerator(g).enumerate(all, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<int>> maximal_cliques_reference(const ContentionGraph& g) {
  return DenseBronKerbosch(g.vertex_count(), adjacency_of(g, /*complement=*/false)).run();
}

std::vector<std::vector<int>> maximal_independent_sets(const ContentionGraph& g) {
  return DenseBronKerbosch(g.vertex_count(), adjacency_of(g, /*complement=*/true)).run();
}

double weighted_clique_size(const ContentionGraph& g, const std::vector<int>& clique) {
  double sum = 0.0;
  for (int v : clique) sum += g.flows().subflow(v).weight;
  return sum;
}

double weighted_clique_number(const ContentionGraph& g) {
  E2EFA_ASSERT_MSG(g.vertex_count() > 0, "empty contention graph");
  double best = 0.0;
  for (const auto& c : maximal_cliques(g)) best = std::max(best, weighted_clique_size(g, c));
  return best;
}

std::vector<int> flow_membership_counts(const ContentionGraph& g,
                                        const std::vector<int>& clique) {
  std::vector<int> counts(static_cast<std::size_t>(g.flows().flow_count()), 0);
  for (int v : clique) ++counts[static_cast<std::size_t>(g.flows().subflow(v).flow)];
  return counts;
}

std::vector<std::vector<int>> clique_constraint_rows(const ContentionGraph& g) {
  return clique_constraint_rows(g, maximal_cliques(g));
}

std::vector<std::vector<int>> clique_constraint_rows(
    const ContentionGraph& g, const std::vector<std::vector<int>>& cliques) {
  std::set<std::vector<int>> rows;
  for (const auto& c : cliques) rows.insert(flow_membership_counts(g, c));
  return {rows.begin(), rows.end()};
}

std::vector<std::vector<int>> maximal_cliques_in_subset(const ContentionGraph& g,
                                                        const std::vector<int>& subset) {
  const int k = static_cast<int>(subset.size());
  for (int i = 1; i < k; ++i)
    E2EFA_ASSERT_MSG(subset[static_cast<std::size_t>(i - 1)] < subset[static_cast<std::size_t>(i)],
                     "subset must be strictly ascending");
  std::vector<std::vector<int>> out;
  CliqueEnumerator(g).enumerate(subset, out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace e2efa
