#include "contention/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "flow/flow.hpp"
#include "util/assert.hpp"

namespace e2efa {

std::vector<int> greedy_coloring(const ContentionGraph& g) {
  const int n = g.vertex_count();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return g.degree(a) > g.degree(b); });
  std::vector<int> color(static_cast<std::size_t>(n), -1);
  for (int v : order) {
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (int u : g.neighbors_of(v))
      if (color[static_cast<std::size_t>(u)] >= 0)
        used[static_cast<std::size_t>(color[static_cast<std::size_t>(u)])] = true;
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[static_cast<std::size_t>(v)] = c;
  }
  return color;
}

int color_count(const std::vector<int>& coloring) {
  int mx = -1;
  for (int c : coloring) mx = std::max(mx, c);
  return mx + 1;
}

bool is_proper_coloring(const ContentionGraph& g, const std::vector<int>& coloring) {
  E2EFA_ASSERT(static_cast<int>(coloring.size()) == g.vertex_count());
  for (int a = 0; a < g.vertex_count(); ++a)
    for (int b = a + 1; b < g.vertex_count(); ++b)
      if (g.contend(a, b) &&
          coloring[static_cast<std::size_t>(a)] == coloring[static_cast<std::size_t>(b)])
        return false;
  return true;
}

std::vector<int> chain_coloring(int hop_count) {
  const int colors = virtual_length(hop_count);
  std::vector<int> out(static_cast<std::size_t>(hop_count));
  for (int j = 0; j < hop_count; ++j) out[static_cast<std::size_t>(j)] = j % colors;
  return out;
}

}  // namespace e2efa
