#include "contention/clique_store.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace e2efa {

CliqueStore::CliqueStore(const ContentionGraph& g, std::vector<char> active)
    : g_(&g), active_(std::move(active)), enumerator_(g) {
  const std::size_t n = static_cast<std::size_t>(g.vertex_count());
  if (active_.empty()) active_.assign(n, 1);
  E2EFA_ASSERT_MSG(active_.size() == n, "active flags must match vertex count");
  active_count_ = static_cast<int>(std::count(active_.begin(), active_.end(), char{1}));
  vertex_cliques_.resize(n);
  dirty_mark_.assign(n, 0);
  seed_mark_.assign(n, 0);
  rebuild_all();
}

void CliqueStore::rebuild_all() {
  std::vector<int> verts;
  for (int v = 0; v < g_->vertex_count(); ++v)
    if (active_[static_cast<std::size_t>(v)]) verts.push_back(v);
  found_.clear();
  enumerator_.enumerate(verts, found_);
  for (auto& c : found_) add_clique(std::move(c));
  found_.clear();
}

void CliqueStore::add_clique(std::vector<int> clique) {
  int id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    cliques_[static_cast<std::size_t>(id)] = std::move(clique);
  } else {
    id = static_cast<int>(cliques_.size());
    cliques_.push_back(std::move(clique));
    live_.push_back(0);
  }
  live_[static_cast<std::size_t>(id)] = 1;
  ++live_count_;
  for (int v : cliques_[static_cast<std::size_t>(id)])
    vertex_cliques_[static_cast<std::size_t>(v)].push_back(id);
}

void CliqueStore::remove_clique(int id) {
  auto& members = cliques_[static_cast<std::size_t>(id)];
  for (int v : members) {
    auto& ids = vertex_cliques_[static_cast<std::size_t>(v)];
    auto it = std::find(ids.begin(), ids.end(), id);
    E2EFA_ASSERT(it != ids.end());
    *it = ids.back();
    ids.pop_back();
  }
  members.clear();  // keeps capacity for slab reuse
  live_[static_cast<std::size_t>(id)] = 0;
  --live_count_;
  free_ids_.push_back(id);
}

CliqueStore::UpdateStats CliqueStore::update(const std::vector<int>& activate,
                                             const std::vector<int>& deactivate) {
  UpdateStats stats;
  // Apply the toggles first: seeds and candidate sets are read against the
  // *new* active set.
  for (int v : deactivate) {
    E2EFA_ASSERT_MSG(is_active(v), "deactivating an inactive vertex");
    active_[static_cast<std::size_t>(v)] = 0;
    --active_count_;
  }
  for (int v : activate) {
    E2EFA_ASSERT_MSG(!is_active(v), "activating an active vertex");
    active_[static_cast<std::size_t>(v)] = 1;
    ++active_count_;
  }

  // Dirty region N[Δ]: stored cliques touching it are discarded; its
  // active part re-seeds enumeration.
  seeds_.clear();
  auto mark = [&](int v) {
    if (dirty_mark_[static_cast<std::size_t>(v)]) return;
    dirty_mark_[static_cast<std::size_t>(v)] = 1;
    if (active_[static_cast<std::size_t>(v)]) {
      seed_mark_[static_cast<std::size_t>(v)] = 1;
      seeds_.push_back(v);
    }
  };
  for (int delta : activate) {
    mark(delta);
    for (int u : g_->neighbors_of(delta)) mark(u);
  }
  for (int delta : deactivate) {
    mark(delta);
    for (int u : g_->neighbors_of(delta)) mark(u);
  }

  doomed_.clear();
  auto doom_at = [&](int v) {
    for (int id : vertex_cliques_[static_cast<std::size_t>(v)]) doomed_.push_back(id);
  };
  for (int delta : activate) {
    doom_at(delta);
    for (int u : g_->neighbors_of(delta)) doom_at(u);
  }
  for (int delta : deactivate) {
    doom_at(delta);
    for (int u : g_->neighbors_of(delta)) doom_at(u);
  }
  for (int id : doomed_) {
    if (!live_[static_cast<std::size_t>(id)]) continue;  // already removed this round
    remove_clique(id);
    ++stats.removed;
  }

  // Re-derive every maximal clique of the new active subgraph that meets
  // the dirty region: seed Bron–Kerbosch at each dirty vertex v, with the
  // dirty seeds u < v excluded via X so each clique is found exactly once
  // (from its smallest dirty vertex). A clique containing v lies inside
  // N[v], and maximality against all of N(v) ∩ active is enforced by the
  // P/X emptiness check, so the result is globally maximal.
  std::sort(seeds_.begin(), seeds_.end());
  stats.seeds = static_cast<int>(seeds_.size());
  for (int v : seeds_) {
    p0_.clear();
    x0_.clear();
    for (int u : g_->neighbors_of(v)) {
      if (!active_[static_cast<std::size_t>(u)]) continue;
      if (seed_mark_[static_cast<std::size_t>(u)] && u < v)
        x0_.push_back(u);
      else
        p0_.push_back(u);
    }
    found_.clear();
    enumerator_.enumerate_from({v}, p0_, x0_, found_);
    for (auto& c : found_) {
      add_clique(std::move(c));
      ++stats.added;
    }
  }
  found_.clear();

  for (int v : seeds_) seed_mark_[static_cast<std::size_t>(v)] = 0;
  for (int delta : activate) {
    dirty_mark_[static_cast<std::size_t>(delta)] = 0;
    for (int u : g_->neighbors_of(delta)) dirty_mark_[static_cast<std::size_t>(u)] = 0;
  }
  for (int delta : deactivate) {
    dirty_mark_[static_cast<std::size_t>(delta)] = 0;
    for (int u : g_->neighbors_of(delta)) dirty_mark_[static_cast<std::size_t>(u)] = 0;
  }
  return stats;
}

CliqueStore::UpdateStats CliqueStore::set_active(const std::vector<char>& active) {
  E2EFA_ASSERT_MSG(active.size() == active_.size(), "active flags must match vertex count");
  std::vector<int> on, off;
  for (int v = 0; v < g_->vertex_count(); ++v) {
    const bool want = active[static_cast<std::size_t>(v)] != 0;
    if (want && !is_active(v)) on.push_back(v);
    if (!want && is_active(v)) off.push_back(v);
  }
  return update(on, off);
}

std::vector<std::vector<int>> CliqueStore::cliques() const {
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(live_count_));
  for (std::size_t id = 0; id < cliques_.size(); ++id)
    if (live_[id]) out.push_back(cliques_[id]);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace e2efa
