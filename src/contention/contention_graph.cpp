#include "contention/contention_graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/assert.hpp"

namespace e2efa {

void ContentionGraph::build_incidence(int node_count) {
  incident_.assign(static_cast<std::size_t>(node_count), {});
  for (int s = 0; s < n_; ++s) {
    const Subflow& sf = flows_->subflow(s);
    incident_[static_cast<std::size_t>(sf.src)].push_back(s);
    incident_[static_cast<std::size_t>(sf.dst)].push_back(s);
  }
  // Subflows are visited in ascending id order and a subflow's endpoints are
  // distinct, so each per-node list is ascending with no duplicates.
}

ContentionGraph::ContentionGraph(const Topology& topo, const FlowSet& flows)
    : flows_(&flows), n_(flows.subflow_count()) {
  build_incidence(topo.node_count());
  adj_.resize(static_cast<std::size_t>(n_));
  // b contends with a iff some endpoint of b equals, or interferes with,
  // some endpoint of a — i.e. iff b is incident to a node in the closed
  // interference neighborhood of a.src or a.dst. Walking those
  // neighborhoods enumerates exactly the contenders; a stamp array
  // deduplicates subflows reachable through several nodes.
  std::vector<int> stamp(static_cast<std::size_t>(n_), -1);
  for (int a = 0; a < n_; ++a) {
    const Subflow& sa = flows.subflow(a);
    auto& out = adj_[static_cast<std::size_t>(a)];
    auto visit_node = [&](NodeId y) {
      for (int b : incident_[static_cast<std::size_t>(y)]) {
        if (b == a || stamp[static_cast<std::size_t>(b)] == a) continue;
        stamp[static_cast<std::size_t>(b)] = a;
        out.push_back(b);
      }
    };
    auto visit_endpoint = [&](NodeId x) {
      visit_node(x);
      for (NodeId y : topo.interference_neighbors(x)) visit_node(y);
    };
    visit_endpoint(sa.src);
    visit_endpoint(sa.dst);
    std::sort(out.begin(), out.end());
  }
}

ContentionGraph::ContentionGraph(const FlowSet& flows,
                                 const std::vector<std::pair<int, int>>& edges)
    : flows_(&flows), n_(flows.subflow_count()) {
  build_incidence(flows.topology().node_count());
  adj_.resize(static_cast<std::size_t>(n_));
  for (const auto& [a, b] : edges) {
    check_vertex(a);
    check_vertex(b);
    E2EFA_ASSERT_MSG(a != b, "self edge in contention graph");
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
  }
  // Node-sharing subflows contend automatically (for intra-flow pairs this
  // is the paper's trivial-contention rule); the incidence index gives the
  // sharing pairs directly.
  for (const auto& at_node : incident_) {
    for (std::size_t i = 0; i < at_node.size(); ++i)
      for (std::size_t j = i + 1; j < at_node.size(); ++j) {
        adj_[static_cast<std::size_t>(at_node[i])].push_back(at_node[j]);
        adj_[static_cast<std::size_t>(at_node[j])].push_back(at_node[i]);
      }
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
}

void ContentionGraph::check_vertex(int v) const {
  E2EFA_ASSERT_MSG(v >= 0 && v < n_, "contention graph vertex out of range");
}

bool ContentionGraph::contend(int a, int b) const {
  check_vertex(a);
  check_vertex(b);
  const auto& nbrs = adj_[static_cast<std::size_t>(a)];
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

const std::vector<int>& ContentionGraph::neighbors_of(int v) const {
  check_vertex(v);
  return adj_[static_cast<std::size_t>(v)];
}

int ContentionGraph::degree(int v) const {
  check_vertex(v);
  return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
}

const std::vector<int>& ContentionGraph::incident_subflows(NodeId n) const {
  E2EFA_ASSERT_MSG(n >= 0 && n < static_cast<NodeId>(incident_.size()),
                   "node id out of range");
  return incident_[static_cast<std::size_t>(n)];
}

std::vector<std::vector<int>> ContentionGraph::components() const {
  std::vector<int> comp(static_cast<std::size_t>(n_), -1);
  int next = 0;
  for (int start = 0; start < n_; ++start) {
    if (comp[static_cast<std::size_t>(start)] != -1) continue;
    std::queue<int> q;
    q.push(start);
    comp[static_cast<std::size_t>(start)] = next;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v : adj_[static_cast<std::size_t>(u)]) {
        if (comp[static_cast<std::size_t>(v)] == -1) {
          comp[static_cast<std::size_t>(v)] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  std::vector<std::vector<int>> out(static_cast<std::size_t>(next));
  for (int v = 0; v < n_; ++v) out[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])].push_back(v);
  return out;
}

std::vector<std::vector<FlowId>> ContentionGraph::flow_groups() const {
  // Union-find over flows: flows with subflows in the same component merge.
  const int nf = flows_->flow_count();
  std::vector<int> parent(static_cast<std::size_t>(nf));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

  for (const auto& comp : components()) {
    for (std::size_t i = 1; i < comp.size(); ++i) {
      unite(flows_->subflow(comp[0]).flow, flows_->subflow(comp[i]).flow);
    }
  }
  std::vector<std::vector<FlowId>> groups;
  std::vector<int> group_of(static_cast<std::size_t>(nf), -1);
  for (FlowId f = 0; f < nf; ++f) {
    const int root = find(f);
    if (group_of[static_cast<std::size_t>(root)] == -1) {
      group_of[static_cast<std::size_t>(root)] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[static_cast<std::size_t>(root)])].push_back(f);
  }
  return groups;
}

bool ContentionGraph::same_flow(int a, int b) const {
  check_vertex(a);
  check_vertex(b);
  return flows_->subflow(a).flow == flows_->subflow(b).flow;
}

}  // namespace e2efa
