#include "contention/contention_graph.hpp"

#include <numeric>
#include <queue>

#include "util/assert.hpp"

namespace e2efa {

namespace {
/// Endpoint-range contention rule: any endpoint of a within interference
/// range of any endpoint of b (a node is trivially within range of itself).
bool subflows_contend(const Topology& topo, const Subflow& a, const Subflow& b) {
  const NodeId ea[2] = {a.src, a.dst};
  const NodeId eb[2] = {b.src, b.dst};
  for (NodeId x : ea)
    for (NodeId y : eb)
      if (x == y || topo.interferes(x, y)) return true;
  return false;
}
}  // namespace

ContentionGraph::ContentionGraph(const Topology& topo, const FlowSet& flows)
    : flows_(&flows), n_(flows.subflow_count()) {
  adj_.assign(static_cast<std::size_t>(n_), std::vector<bool>(static_cast<std::size_t>(n_), false));
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      if (subflows_contend(topo, flows.subflow(a), flows.subflow(b))) {
        adj_[a][b] = adj_[b][a] = true;
      }
    }
  }
}

ContentionGraph::ContentionGraph(const FlowSet& flows,
                                 const std::vector<std::pair<int, int>>& edges)
    : flows_(&flows), n_(flows.subflow_count()) {
  adj_.assign(static_cast<std::size_t>(n_), std::vector<bool>(static_cast<std::size_t>(n_), false));
  for (const auto& [a, b] : edges) {
    check_vertex(a);
    check_vertex(b);
    E2EFA_ASSERT_MSG(a != b, "self edge in contention graph");
    adj_[a][b] = adj_[b][a] = true;
  }
  add_intra_flow_edges();
}

void ContentionGraph::add_intra_flow_edges() {
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      const Subflow& sa = flows_->subflow(a);
      const Subflow& sb = flows_->subflow(b);
      const bool share_node =
          sa.src == sb.src || sa.src == sb.dst || sa.dst == sb.src || sa.dst == sb.dst;
      if (share_node) adj_[a][b] = adj_[b][a] = true;
    }
  }
}

void ContentionGraph::check_vertex(int v) const {
  E2EFA_ASSERT_MSG(v >= 0 && v < n_, "contention graph vertex out of range");
}

bool ContentionGraph::contend(int a, int b) const {
  check_vertex(a);
  check_vertex(b);
  return adj_[a][b];
}

std::vector<int> ContentionGraph::neighbors_of(int v) const {
  check_vertex(v);
  std::vector<int> out;
  for (int u = 0; u < n_; ++u)
    if (adj_[v][u]) out.push_back(u);
  return out;
}

int ContentionGraph::degree(int v) const {
  check_vertex(v);
  int d = 0;
  for (int u = 0; u < n_; ++u) d += adj_[v][u] ? 1 : 0;
  return d;
}

std::vector<std::vector<int>> ContentionGraph::components() const {
  std::vector<int> comp(static_cast<std::size_t>(n_), -1);
  int next = 0;
  for (int start = 0; start < n_; ++start) {
    if (comp[start] != -1) continue;
    std::queue<int> q;
    q.push(start);
    comp[start] = next;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v = 0; v < n_; ++v) {
        if (adj_[u][v] && comp[v] == -1) {
          comp[v] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  std::vector<std::vector<int>> out(static_cast<std::size_t>(next));
  for (int v = 0; v < n_; ++v) out[static_cast<std::size_t>(comp[v])].push_back(v);
  return out;
}

std::vector<std::vector<FlowId>> ContentionGraph::flow_groups() const {
  // Union-find over flows: flows with subflows in the same component merge.
  const int nf = flows_->flow_count();
  std::vector<int> parent(static_cast<std::size_t>(nf));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

  for (const auto& comp : components()) {
    for (std::size_t i = 1; i < comp.size(); ++i) {
      unite(flows_->subflow(comp[0]).flow, flows_->subflow(comp[i]).flow);
    }
  }
  std::vector<std::vector<FlowId>> groups;
  std::vector<int> group_of(static_cast<std::size_t>(nf), -1);
  for (FlowId f = 0; f < nf; ++f) {
    const int root = find(f);
    if (group_of[static_cast<std::size_t>(root)] == -1) {
      group_of[static_cast<std::size_t>(root)] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[static_cast<std::size_t>(root)])].push_back(f);
  }
  return groups;
}

bool ContentionGraph::same_flow(int a, int b) const {
  check_vertex(a);
  check_vertex(b);
  return flows_->subflow(a).flow == flows_->subflow(b).flow;
}

}  // namespace e2efa
