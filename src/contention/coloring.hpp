// Graph coloring of subflow contention graphs (Sec. II-D, Fig. 3).
//
// A proper coloring partitions subflows into non-contending sets that may
// transmit concurrently; for a shortcut-free chain the chromatic number is
// min(l, 3), which is what motivates the virtual length v_i = min(l_i, 3).
#pragma once

#include <vector>

#include "contention/contention_graph.hpp"

namespace e2efa {

/// Greedy (largest-degree-first) proper coloring. Returns a color per
/// vertex, colors numbered from 0. Not necessarily optimal in general, but
/// exact (== min(l,3)) on shortcut-free chains.
std::vector<int> greedy_coloring(const ContentionGraph& g);

/// Number of colors used by a coloring (max + 1; 0 when empty).
int color_count(const std::vector<int>& coloring);

/// True when `coloring` assigns different colors to every contending pair.
bool is_proper_coloring(const ContentionGraph& g, const std::vector<int>& coloring);

/// The paper's canonical chain coloring: subflow j (zero-based) of an l-hop
/// shortcut-free flow gets color j mod min(l, 3). Returns colors for hops
/// 0..l-1.
std::vector<int> chain_coloring(int hop_count);

}  // namespace e2efa
