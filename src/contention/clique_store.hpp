// Incrementally maintained maximal cliques over a contention graph.
//
// The store fixes the contention graph at construction (vertex set and
// adjacency never change — they are geometry) and tracks an *active*
// subset of vertices: the subflows that exist in the current epoch, after
// fault masks and route repair decide which flows transmit. Maximal
// cliques of the induced active subgraph are kept materialized; toggling
// vertices re-derives only the cliques touching the closed neighborhood
// N[Δ] of the toggled set Δ, so a per-epoch fault delta costs
// O(clique neighborhood of the change), not O(network).
//
// Why N[Δ] suffices: a maximal clique disjoint from N[Δ] cannot gain or
// lose a witness — any vertex adjacent to all of it is adjacent to one of
// its members, hence outside N(δ) for every toggled δ, and no member's
// adjacency or activity changed. Conversely every clique that appears or
// disappears lies entirely inside N[δ] of some toggled δ (it contains δ,
// or was extendable only by δ). Re-running Bron–Kerbosch seeded at each
// dirty vertex v — excluding dirty seeds u < v via the X set so each
// clique is derived exactly once, from its smallest dirty vertex — is
// therefore exact, not approximate. The parity tests in
// tests/scale_parity_test.cpp check this element-wise against from-scratch
// enumeration across randomized fault-driven delta sequences.
#pragma once

#include <vector>

#include "contention/cliques.hpp"
#include "contention/contention_graph.hpp"

namespace e2efa {

class CliqueStore {
 public:
  struct UpdateStats {
    int removed = 0;     ///< Cliques discarded because they touch N[Δ].
    int added = 0;       ///< Cliques re-derived from the dirty seeds.
    int seeds = 0;       ///< Dirty vertices Bron–Kerbosch was re-run from.
  };

  /// Builds the store over `g` with the given initial active set (one flag
  /// per vertex; empty = all vertices active).
  explicit CliqueStore(const ContentionGraph& g, std::vector<char> active = {});

  const ContentionGraph& graph() const { return *g_; }
  bool is_active(int v) const { return active_[static_cast<std::size_t>(v)] != 0; }
  int active_count() const { return active_count_; }
  int clique_count() const { return live_count_; }

  /// Applies a batch of activity toggles: every vertex of `activate` must
  /// currently be inactive and every vertex of `deactivate` active (the
  /// two sets are disjoint). Only the cliques meeting the closed
  /// neighborhood of the toggled vertices are re-derived.
  UpdateStats update(const std::vector<int>& activate, const std::vector<int>& deactivate);

  /// Convenience: diffs `active` (one flag per vertex) against the current
  /// activity and applies the delta.
  UpdateStats set_active(const std::vector<char>& active);

  /// Canonical snapshot of the maintained cliques: each ascending,
  /// lexicographically sorted. The set of maximal cliques is a pure
  /// function of (graph, active set), so the snapshot is independent of
  /// the toggle history that produced it.
  std::vector<std::vector<int>> cliques() const;

  /// Ids of the live cliques containing vertex v (unordered). Ids are
  /// stable until the clique is removed by an update.
  const std::vector<int>& cliques_of(int v) const {
    return vertex_cliques_[static_cast<std::size_t>(v)];
  }
  /// Vertices of a live clique, ascending.
  const std::vector<int>& clique(int id) const { return cliques_[static_cast<std::size_t>(id)]; }

 private:
  void add_clique(std::vector<int> clique);
  void remove_clique(int id);
  void rebuild_all();

  const ContentionGraph* g_;
  std::vector<char> active_;
  int active_count_ = 0;

  // Slab storage: cliques_[id] is the vertex list (empty + on the free
  // list once removed); capacity is recycled so steady-state updates do
  // not allocate.
  std::vector<std::vector<int>> cliques_;
  std::vector<char> live_;
  std::vector<int> free_ids_;
  int live_count_ = 0;
  std::vector<std::vector<int>> vertex_cliques_;

  CliqueEnumerator enumerator_;
  // Update scratch, reused across calls.
  std::vector<char> dirty_mark_, seed_mark_;
  std::vector<int> seeds_, doomed_, p0_, x0_;
  std::vector<std::vector<int>> found_;
};

}  // namespace e2efa
