// The subflow contention graph (Sec. II-A).
//
// Vertices are subflows; an edge joins two subflows that *contend*: the
// source or destination of one is within (interference) range of the source
// or destination of the other. Subflows of the same flow sharing a node
// contend trivially. Partitioned subgraphs correspond to contending flow
// groups.
//
// The graph can be built from (Topology, FlowSet) using the range rule, or
// constructed directly from an explicit edge list for analytic examples
// where the paper gives the graph rather than node positions (Fig. 4,
// Fig. 5 pentagon).
//
// Storage is sparse: sorted adjacency lists plus a node -> incident-subflow
// index. The geometric build walks each endpoint's interference
// neighborhood (via the topology's cached lists) instead of testing all
// subflow pairs, so construction is O(S * local density) rather than O(S^2)
// and stays exact — subflow b contends with a iff b has an endpoint in the
// closed interference neighborhood of one of a's endpoints.
#pragma once

#include <vector>

#include "flow/flow.hpp"

namespace e2efa {

/// Sparse adjacency-list contention graph over the subflows of a FlowSet.
class ContentionGraph {
 public:
  /// Builds from geometry: subflows a and b contend iff any endpoint of a is
  /// within interference range of any endpoint of b.
  ContentionGraph(const Topology& topo, const FlowSet& flows);

  /// Builds from an explicit undirected edge list over subflow indices.
  /// Intra-flow node-sharing edges are added automatically.
  ContentionGraph(const FlowSet& flows, const std::vector<std::pair<int, int>>& edges);

  const FlowSet& flows() const { return *flows_; }
  int vertex_count() const { return n_; }

  bool contend(int a, int b) const;

  /// Neighbor list (contending subflows) of vertex v, ascending.
  const std::vector<int>& neighbors_of(int v) const;

  /// Degree of vertex v.
  int degree(int v) const;

  /// Subflows with an endpoint at node n, ascending. Maps topology-level
  /// deltas (node/link up-down) to the contention-graph vertices they touch.
  const std::vector<int>& incident_subflows(NodeId n) const;

  /// Connected components over subflow vertices; each component is an
  /// ascending list of subflow indices.
  std::vector<std::vector<int>> components() const;

  /// Contending flow groups: flows whose subflows fall in the same
  /// component are grouped (transitively, per the paper's definition).
  /// Each group is an ascending list of FlowIds; groups are disjoint and
  /// cover all flows.
  std::vector<std::vector<FlowId>> flow_groups() const;

  /// True when subflows `a` and `b` belong to the same flow.
  bool same_flow(int a, int b) const;

 private:
  void build_incidence(int node_count);
  void check_vertex(int v) const;

  const FlowSet* flows_;
  int n_ = 0;
  std::vector<std::vector<int>> adj_;       // sorted neighbor lists
  std::vector<std::vector<int>> incident_;  // per topology node, ascending
};

}  // namespace e2efa
