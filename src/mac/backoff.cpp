#include "mac/backoff.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace e2efa {

namespace {
int escalated_window(int cw_min, int cw_max, int retries) {
  // (CWmin+1)·2^k − 1 capped at CWmax; k capped to avoid overflow.
  const int k = std::min(retries, 16);
  const long long w = (static_cast<long long>(cw_min) + 1) * (1LL << k) - 1;
  return static_cast<int>(std::min<long long>(w, cw_max));
}
}  // namespace

BebBackoff::BebBackoff(int cw_min, int cw_max) : cw_min_(cw_min), cw_max_(cw_max) {
  E2EFA_ASSERT(cw_min >= 1 && cw_max >= cw_min);
}

int BebBackoff::draw_slots(Rng& rng, int retries, TimeNs) {
  E2EFA_ASSERT(retries >= 0);
  const int cw = escalated_window(cw_min_, cw_max_, retries);
  return static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(cw) + 1));
}

TagBackoff::TagBackoff(int cw_min, int cw_max, TagAgent& agent)
    : cw_min_(cw_min), cw_max_(cw_max), agent_(agent) {
  E2EFA_ASSERT(cw_min >= 1 && cw_max >= cw_min);
}

ScaledCwBackoff::ScaledCwBackoff(int cw_min, int cw_max, double node_share)
    : cw_max_(cw_max) {
  E2EFA_ASSERT(cw_min >= 1 && cw_max >= cw_min);
  E2EFA_ASSERT(node_share > 0.0 && node_share <= 1.0);
  scaled_min_ = static_cast<int>(
      std::min<double>(cw_max, std::max(1.0, cw_min / node_share)));
}

int ScaledCwBackoff::draw_slots(Rng& rng, int retries, TimeNs) {
  E2EFA_ASSERT(retries >= 0);
  const int cw = escalated_window(scaled_min_, cw_max_, retries);
  return static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(cw) + 1));
}

int TagBackoff::draw_slots(Rng& rng, int retries, TimeNs now) {
  E2EFA_ASSERT(retries >= 0);
  const int base = escalated_window(cw_min_, cw_max_, retries);
  const double lag = std::max({agent_.q_slots(now), agent_.head_last_r(), 0.0});
  // Keep the stretched window finite even under extreme tag imbalance.
  const double cw = std::min(static_cast<double>(base) + lag, 16383.0);
  return static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(std::llround(cw)) + 1));
}

}  // namespace e2efa
