// Contention-backoff policies.
//
// BebBackoff is the plain IEEE 802.11 binary exponential backoff.
// TagBackoff is 2PA's rule: the contention window is CW_min stretched by
// the tag-lag estimate max(Q, R, 0) from the node's TagScheduler, so nodes
// that have received more than their allocated share back off longer
// (Sec. IV-C step (3)). On retries both policies escalate the base window
// to resolve collisions.
#pragma once

#include "sched/tx_queue.hpp"
#include "util/rng.hpp"

namespace e2efa {

class BackoffPolicy {
 public:
  virtual ~BackoffPolicy() = default;
  /// Draws the number of backoff slots for an access attempt that has
  /// already failed `retries` times (0 = first attempt); `now` lets
  /// tag-based policies age out stale neighbor entries.
  virtual int draw_slots(Rng& rng, int retries, TimeNs now) = 0;
};

/// IEEE 802.11: uniform over [0, min((CWmin+1)·2^retries − 1, CWmax)].
class BebBackoff : public BackoffPolicy {
 public:
  BebBackoff(int cw_min, int cw_max);
  int draw_slots(Rng& rng, int retries, TimeNs now) override;

 private:
  int cw_min_;
  int cw_max_;
};

/// 2PA: uniform over [0, base(retries) + max(Q, R, 0)], where base is the
/// (retry-escalated) CWmin and Q/R come from the tag agent.
class TagBackoff : public BackoffPolicy {
 public:
  TagBackoff(int cw_min, int cw_max, TagAgent& agent);
  int draw_slots(Rng& rng, int retries, TimeNs now) override;

 private:
  int cw_min_;
  int cw_max_;
  TagAgent& agent_;
};

/// Naive share-proportional contention window (ablation baseline): the
/// node's window is CW_min scaled by 1/node_share, with BEB escalation on
/// retries. Stateless — no feedback from actual service received — so it
/// approximates long-run node-share ratios but cannot correct deficits the
/// way the tag mechanism does.
class ScaledCwBackoff : public BackoffPolicy {
 public:
  /// `node_share` in (0, 1]: the node's aggregate allocated share.
  ScaledCwBackoff(int cw_min, int cw_max, double node_share);
  int draw_slots(Rng& rng, int retries, TimeNs now) override;

 private:
  int scaled_min_;
  int cw_max_;
};

}  // namespace e2efa
