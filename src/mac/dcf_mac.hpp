// IEEE-802.11-DCF-style MAC with the RTS-CTS-DATA-ACK handshake.
//
// One instance per node. The MAC owns channel access (DIFS + slotted
// backoff with freeze, virtual carrier sense via NAV, EIFS after corrupted
// receptions), runs the sender and receiver sides of the four-way
// handshake with timeouts and a retry limit, and delegates *which* packet
// to send to a TxQueue and *how long* to back off to a BackoffPolicy —
// which is exactly where 2PA's phase-2 scheduler plugs in. Service tags are
// piggybacked on every frame of an exchange when a TagAgent is present.
#pragma once

#include <cstdint>

#include "mac/backoff.hpp"
#include "phy/channel.hpp"
#include "sched/tx_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace e2efa {

struct MacConfig {
  TimeNs slot = 20 * kMicrosecond;
  TimeNs sifs = 10 * kMicrosecond;
  TimeNs difs = 50 * kMicrosecond;
  int retry_limit = 7;  ///< Drops the packet after this many failed attempts.
  /// True (default): four-way RTS/CTS/DATA/ACK. False: basic access —
  /// DATA/ACK only; hidden terminals then collide on full data frames.
  bool use_rts_cts = true;
  FrameSizes sizes;
};

/// Upcalls from the MAC into the node stack.
class MacCallbacks {
 public:
  virtual ~MacCallbacks() = default;
  /// Clean DATA addressed to this node (duplicates possible on ACK loss —
  /// the stack deduplicates by sequence number).
  virtual void on_packet_delivered(const Packet& p) = 0;
  /// ACK received: the packet left this node successfully.
  virtual void on_packet_sent(const Packet& p) = 0;
  /// Retry limit exhausted: the packet was dropped at this node.
  virtual void on_packet_dropped(const Packet& p) = 0;
};

class DcfMac : public PhyListener {
 public:
  DcfMac(Simulator& sim, Channel& channel, NodeId self, const MacConfig& cfg,
         TxQueue& queue, BackoffPolicy& backoff, MacCallbacks& callbacks, Rng rng,
         TagAgent* tags = nullptr);

  /// The stack must call this after enqueueing into a previously empty (or
  /// idle) queue so the MAC starts contending.
  void notify_queue_nonempty();

  // --- PhyListener ---
  void on_frame_received(const Frame& frame) override;
  void on_frame_corrupted(TimeNs end) override;
  void on_medium_busy() override;
  void on_medium_idle() override;

  struct Stats {
    std::uint64_t rts_sent = 0;
    std::uint64_t cts_sent = 0;
    std::uint64_t data_sent = 0;
    std::uint64_t ack_sent = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retry_drops = 0;
  };
  const Stats& stats() const { return stats_; }
  NodeId self() const { return self_; }

  /// Installs the trace sink for MAC-level events (backoff draws with the
  /// Q/R terms, retries, retry-limit drops). Null (default) = disabled.
  void set_trace(TraceSink* trace) { trace_ = trace; }

 private:
  enum class State {
    kIdle,        ///< Nothing to send, no exchange in progress.
    kContend,     ///< Backlogged: DIFS / backoff countdown.
    kWaitCts,     ///< Sent RTS, awaiting CTS.
    kSendData,    ///< CTS received, DATA going out (or queued behind SIFS).
    kWaitAck,     ///< DATA sent, awaiting ACK.
    kRxExchange,  ///< Responding (CTS sent / awaiting DATA / ACK going out).
  };

  // Channel access.
  void start_access(bool redraw);
  void arm_step();
  void on_step();
  bool virtual_busy() const;  ///< NAV or EIFS active.
  void cancel_step();

  // Sender side.
  void send_rts();
  void on_cts(const Frame& f);
  void send_data();
  void on_ack(const Frame& f);
  void on_timeout();
  void finish_attempt(bool success);

  // Receiver side.
  void on_rts(const Frame& f);
  void on_data(const Frame& f);
  void end_rx_exchange();

  TimeNs dur(int bytes) const { return channel_.frame_duration(bytes); }
  TimeNs data_bytes(const Packet& p) const;
  void attach_tag(Frame& f) const;

  Simulator& sim_;
  Channel& channel_;
  NodeId self_;
  MacConfig cfg_;
  TxQueue& queue_;
  BackoffPolicy& backoff_;
  MacCallbacks& callbacks_;
  Rng rng_;
  TagAgent* tags_;
  TraceSink* trace_ = nullptr;

  State state_ = State::kIdle;
  int backoff_remaining_ = 0;
  bool backoff_drawn_ = false;  ///< Counter valid (persists across freezes).
  int retries_ = 0;
  TimeNs nav_until_ = 0;
  TimeNs eifs_until_ = 0;
  Simulator::EventId step_event_ = Simulator::kInvalidEvent;
  TimeNs step_time_ = -1;      ///< Fire time of the pending step.
  bool step_is_first_ = true;  ///< Pending step needs DIFS+slot (vs slot).
  Simulator::EventId timeout_event_ = Simulator::kInvalidEvent;

  // Receiver-exchange context.
  NodeId rx_peer_ = kInvalidNode;
  double rx_tag_ = 0.0;
  std::int32_t rx_tag_subflow_ = -1;
  bool rx_has_tag_ = false;
  TimeNs rx_nav_remaining_ = 0;

  Stats stats_;
};

}  // namespace e2efa
