// IEEE-802.11-DCF-style MAC with the RTS-CTS-DATA-ACK handshake.
//
// One instance per node. The MAC owns channel access (DIFS + slotted
// backoff with freeze, virtual carrier sense via NAV, EIFS after corrupted
// receptions), runs the sender and receiver sides of the four-way
// handshake with timeouts and a retry limit, and delegates *which* packet
// to send to a TxQueue and *how long* to back off to a BackoffPolicy —
// which is exactly where 2PA's phase-2 scheduler plugs in. Service tags are
// piggybacked on every frame of an exchange when a TagAgent is present.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "mac/backoff.hpp"
#include "phy/channel.hpp"
#include "sched/tx_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace e2efa {

struct MacConfig {
  TimeNs slot = 20 * kMicrosecond;
  TimeNs sifs = 10 * kMicrosecond;
  TimeNs difs = 50 * kMicrosecond;
  int retry_limit = 7;  ///< Drops the packet after this many failed attempts.
  /// True (default): four-way RTS/CTS/DATA/ACK. False: basic access —
  /// DATA/ACK only; hidden terminals then collide on full data frames.
  bool use_rts_cts = true;
  /// Contention window for broadcast control frames (src/ctrl): they carry
  /// no tag state, so they draw uniformly from [1, ctrl_cw + 1] instead of
  /// consulting the BackoffPolicy. Unused until send_ctrl is called.
  int ctrl_cw = 31;
  /// Upper bound on the extra bytes a CtrlPiggyback may attach to an
  /// RTS/CTS. The RTS sender cannot know whether the responder will
  /// piggyback, so when a piggyback source is installed its CTS-timeout
  /// budget is widened by this many bytes of airtime.
  int ctrl_piggyback_max = 48;
  FrameSizes sizes;
};

/// Supplies the optional allocation-control payload piggybacked on outgoing
/// RTS/CTS frames (src/ctrl overheard-table deltas). Implemented by the
/// per-node AllocAgent; null (default) disables piggybacking entirely.
class CtrlPiggyback {
 public:
  virtual ~CtrlPiggyback() = default;
  /// Returns the payload to attach (null for none) and adds its wire size
  /// to *extra_bytes. Must be pure: no RNG, no scheduling.
  virtual std::shared_ptr<const CtrlMsg> piggyback_payload(int* extra_bytes) = 0;
};

/// Upcalls from the MAC into the node stack.
class MacCallbacks {
 public:
  virtual ~MacCallbacks() = default;
  /// Clean DATA addressed to this node (duplicates possible on ACK loss —
  /// the stack deduplicates by sequence number).
  virtual void on_packet_delivered(const Packet& p) = 0;
  /// ACK received: the packet left this node successfully.
  virtual void on_packet_sent(const Packet& p) = 0;
  /// Retry limit exhausted: the packet was dropped at this node.
  virtual void on_packet_dropped(const Packet& p) = 0;
};

class DcfMac : public PhyListener {
 public:
  DcfMac(Simulator& sim, Channel& channel, NodeId self, const MacConfig& cfg,
         TxQueue& queue, BackoffPolicy& backoff, MacCallbacks& callbacks, Rng rng,
         TagAgent* tags = nullptr);

  /// The stack must call this after enqueueing into a previously empty (or
  /// idle) queue so the MAC starts contending.
  void notify_queue_nonempty();

  // --- Allocation-control plane (src/ctrl) -------------------------------
  /// Queues a broadcast control frame (rx = -1, no ACK; the control plane
  /// heals losses by periodic resend). Control frames contend like any
  /// access but take priority over the data queue when backoff expires —
  /// they are tiny and rare. `bytes` is the frame's wire size.
  void send_ctrl(std::shared_ptr<const CtrlMsg> msg, int bytes);
  /// Pending unsent control frames (backpressure signal for the agent).
  int ctrl_backlog() const { return static_cast<int>(ctrl_q_.size()); }
  /// Invoked for every cleanly received frame carrying a control payload —
  /// dedicated kCtrl broadcasts and RTS/CTS piggybacks alike.
  using CtrlListener = std::function<void(const Frame&)>;
  void set_ctrl_listener(CtrlListener fn) { ctrl_listener_ = std::move(fn); }
  /// Invoked instead of the ctrl listener for frames carrying a transport
  /// ACK payload (CtrlMsg::Kind::kTransAck) — the elastic transport's
  /// AckPlane; allocation agents never see transport ACKs.
  void set_transport_listener(CtrlListener fn) {
    transport_listener_ = std::move(fn);
  }
  /// Installs the RTS/CTS piggyback source. Null (default) = none.
  void set_ctrl_piggyback(CtrlPiggyback* p) { piggyback_ = p; }

  // --- PhyListener ---
  void on_frame_received(const Frame& frame) override;
  void on_frame_corrupted(TimeNs end) override;
  void on_medium_busy() override;
  void on_medium_idle() override;

  struct Stats {
    std::uint64_t rts_sent = 0;
    std::uint64_t cts_sent = 0;
    std::uint64_t data_sent = 0;
    std::uint64_t ack_sent = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retry_drops = 0;
    std::uint64_t ctrl_sent = 0;  ///< Dedicated kCtrl broadcasts transmitted.
  };
  const Stats& stats() const { return stats_; }
  NodeId self() const { return self_; }

  /// Installs the trace sink for MAC-level events (backoff draws with the
  /// Q/R terms, retries, retry-limit drops). Null (default) = disabled.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Installs the invariant-check observer (backoff-bound oracle). Not
  /// owned; never mutates MAC state or draws randomness.
  void set_check(CheckContext* check) { check_ = check; }

 private:
  enum class State {
    kIdle,        ///< Nothing to send, no exchange in progress.
    kContend,     ///< Backlogged: DIFS / backoff countdown.
    kWaitCts,     ///< Sent RTS, awaiting CTS.
    kSendData,    ///< CTS received, DATA going out (or queued behind SIFS).
    kWaitAck,     ///< DATA sent, awaiting ACK.
    kRxExchange,  ///< Responding (CTS sent / awaiting DATA / ACK going out).
    kTxCtrl,      ///< Broadcast control frame on air (no ACK expected).
  };

  // Channel access.
  void start_access(bool redraw);
  void arm_step();
  void on_step();
  bool virtual_busy() const;  ///< NAV or EIFS active.
  void cancel_step();

  // Sender side.
  void send_rts();
  void on_cts(const Frame& f);
  void send_data();
  void on_ack(const Frame& f);
  void on_timeout();
  void finish_attempt(bool success);

  // Receiver side.
  void on_rts(const Frame& f);
  void on_data(const Frame& f);
  void end_rx_exchange();

  // Control plane.
  void send_ctrl_frame();
  bool has_work() const { return queue_.has_packet() || !ctrl_q_.empty(); }

  TimeNs dur(int bytes) const { return channel_.frame_duration(bytes); }
  TimeNs data_bytes(const Packet& p) const;
  void attach_tag(Frame& f) const;
  void attach_piggyback(Frame& f);

  Simulator& sim_;
  Channel& channel_;
  NodeId self_;
  MacConfig cfg_;
  TxQueue& queue_;
  BackoffPolicy& backoff_;
  MacCallbacks& callbacks_;
  Rng rng_;
  TagAgent* tags_;
  TraceSink* trace_ = nullptr;
  CheckContext* check_ = nullptr;

  struct CtrlEntry {
    std::shared_ptr<const CtrlMsg> msg;
    int bytes = 0;
  };
  std::deque<CtrlEntry> ctrl_q_;
  CtrlListener ctrl_listener_;
  CtrlListener transport_listener_;
  CtrlPiggyback* piggyback_ = nullptr;

  State state_ = State::kIdle;
  int backoff_remaining_ = 0;
  bool backoff_drawn_ = false;  ///< Counter valid (persists across freezes).
  int retries_ = 0;
  TimeNs nav_until_ = 0;
  TimeNs eifs_until_ = 0;
  Simulator::EventId step_event_ = Simulator::kInvalidEvent;
  TimeNs step_time_ = -1;      ///< Fire time of the pending step.
  bool step_is_first_ = true;  ///< Pending step needs DIFS+slot (vs slot).
  Simulator::EventId timeout_event_ = Simulator::kInvalidEvent;

  // Receiver-exchange context.
  NodeId rx_peer_ = kInvalidNode;
  double rx_tag_ = 0.0;
  std::int32_t rx_tag_subflow_ = -1;
  bool rx_has_tag_ = false;
  TimeNs rx_nav_remaining_ = 0;

  Stats stats_;
};

}  // namespace e2efa
