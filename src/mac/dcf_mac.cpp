#include "mac/dcf_mac.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "ctrl/messages.hpp"
#include "util/assert.hpp"

namespace e2efa {

DcfMac::DcfMac(Simulator& sim, Channel& channel, NodeId self, const MacConfig& cfg,
               TxQueue& queue, BackoffPolicy& backoff, MacCallbacks& callbacks, Rng rng,
               TagAgent* tags)
    : sim_(sim),
      channel_(channel),
      self_(self),
      cfg_(cfg),
      queue_(queue),
      backoff_(backoff),
      callbacks_(callbacks),
      rng_(rng),
      tags_(tags) {
  channel_.attach(self_, this);
}

TimeNs DcfMac::data_bytes(const Packet& p) const {
  return cfg_.sizes.data_header + p.payload_bytes;
}

void DcfMac::attach_tag(Frame& f) const {
  if (tags_ == nullptr || !queue_.has_packet()) return;
  f.service_tag = tags_->head_tag();
  f.tag_subflow = tags_->head_subflow();
  f.has_service_tag = true;
}

void DcfMac::attach_piggyback(Frame& f) {
  if (piggyback_ == nullptr) return;
  int extra = 0;
  std::shared_ptr<const CtrlMsg> payload = piggyback_->piggyback_payload(&extra);
  if (payload == nullptr) return;
  E2EFA_ASSERT_MSG(extra > 0 && extra <= cfg_.ctrl_piggyback_max,
                   "piggyback payload exceeds the budgeted allowance");
  f.ctrl = std::move(payload);
  f.bytes += extra;
}

// ---------------------------------------------------------------- access

void DcfMac::notify_queue_nonempty() {
  if (state_ == State::kIdle && queue_.has_packet()) start_access(/*redraw=*/true);
}

void DcfMac::send_ctrl(std::shared_ptr<const CtrlMsg> msg, int bytes) {
  E2EFA_ASSERT(msg != nullptr && bytes > 0);
  ctrl_q_.push_back(CtrlEntry{std::move(msg), bytes});
  if (state_ == State::kIdle) start_access(/*redraw=*/true);
}

void DcfMac::start_access(bool redraw) {
  const bool have_data = queue_.has_packet();
  if (!have_data && ctrl_q_.empty()) {
    state_ = State::kIdle;
    return;
  }
  state_ = State::kContend;
  if (redraw || !backoff_drawn_) {
    if (have_data) {
      backoff_remaining_ = backoff_.draw_slots(rng_, retries_, sim_.now());
      // The Q/R arguments walk the tag table — gate on the category, not
      // just the sink, so a filtered trace costs nothing here.
      if (trace_ != nullptr && trace_->enabled<TraceCat::kBackoff>())
        trace_->record<TraceCat::kBackoff>(
            sim_.now(), TraceEvent::kBackoffDraw,
            static_cast<std::int16_t>(self_), backoff_remaining_, retries_,
            tags_ != nullptr ? tags_->q_slots(sim_.now()) : 0.0,
            tags_ != nullptr ? tags_->head_last_r() : 0.0);
      if (check_ != nullptr) {
        const double lag =
            tags_ != nullptr
                ? std::max({tags_->q_slots(sim_.now()), tags_->head_last_r(), 0.0})
                : 0.0;
        check_->on_backoff_draw(self_, backoff_remaining_, retries_, lag,
                                /*ctrl_only=*/false, sim_.now());
      }
    } else {
      // Control-only backlog: the BackoffPolicy reads the scheduler head
      // (empty here), so draw uniformly from the MAC's own stream instead.
      backoff_remaining_ =
          1 + static_cast<int>(rng_.uniform_u64(static_cast<std::uint64_t>(cfg_.ctrl_cw) + 1));
      if (check_ != nullptr)
        check_->on_backoff_draw(self_, backoff_remaining_, retries_, 0.0,
                                /*ctrl_only=*/true, sim_.now());
    }
    backoff_drawn_ = true;
  }
  step_is_first_ = true;
  arm_step();
}

bool DcfMac::virtual_busy() const {
  return nav_until_ > sim_.now() || eifs_until_ > sim_.now();
}

void DcfMac::cancel_step() {
  if (step_event_ != Simulator::kInvalidEvent) {
    sim_.cancel(step_event_);
    step_event_ = Simulator::kInvalidEvent;
  }
}

void DcfMac::arm_step() {
  if (state_ != State::kContend || step_event_ != Simulator::kInvalidEvent) return;
  // Physical carrier busy: resume via on_medium_idle.
  if (channel_.medium_busy(self_)) {
    step_is_first_ = true;
    return;
  }
  const TimeNs start = std::max({sim_.now(), nav_until_, eifs_until_});
  if (start > sim_.now()) step_is_first_ = true;
  const TimeNs required = step_is_first_ ? cfg_.difs + cfg_.slot : cfg_.slot;
  step_time_ = start + required;
  step_event_ = sim_.schedule_at(step_time_, [this] { on_step(); });
}

void DcfMac::on_step() {
  step_event_ = Simulator::kInvalidEvent;
  if (state_ != State::kContend) return;
  const TimeNs required = step_is_first_ ? cfg_.difs + cfg_.slot : cfg_.slot;
  const TimeNs from = sim_.now() - required;
  const bool clean = channel_.idle_during(self_, from) && nav_until_ <= from &&
                     eifs_until_ <= from;
  if (!clean) {
    step_is_first_ = true;
    arm_step();
    return;
  }
  step_is_first_ = false;
  if (--backoff_remaining_ <= 0) {
    if (!ctrl_q_.empty()) {
      send_ctrl_frame();  // tiny and rare: control wins over the data queue
    } else if (cfg_.use_rts_cts) {
      send_rts();
    } else {
      send_data();  // basic access: straight to DATA after backoff
    }
  } else {
    arm_step();
  }
}

void DcfMac::on_medium_busy() {
  // Keep a step that fires at this very instant: a transmission starting in
  // the same slot boundary must not suppress ours (both collide, as in real
  // slotted CSMA). Later steps are stale; drop them.
  if (step_event_ != Simulator::kInvalidEvent && step_time_ > sim_.now()) {
    cancel_step();
    step_is_first_ = true;
  }
}

void DcfMac::on_medium_idle() {
  if (state_ == State::kContend) {
    step_is_first_ = true;
    arm_step();
  }
}

void DcfMac::on_frame_corrupted(TimeNs) {
  // EIFS: give the (possibly damaged) exchange room to finish its ACK.
  eifs_until_ = std::max(eifs_until_, sim_.now() + cfg_.sifs + dur(cfg_.sizes.ack) + cfg_.difs);
}

// ---------------------------------------------------------------- sender

void DcfMac::send_rts() {
  E2EFA_ASSERT(queue_.has_packet());
  const Packet& p = queue_.head();
  Frame f;
  f.type = FrameType::kRts;
  f.rx = p.dst;
  f.bytes = cfg_.sizes.rts;
  f.nav = cfg_.sifs + dur(cfg_.sizes.cts) + cfg_.sifs + dur(static_cast<int>(data_bytes(p))) +
          cfg_.sifs + dur(cfg_.sizes.ack);
  attach_tag(f);
  attach_piggyback(f);
  const TimeNs end = channel_.transmit(self_, f);
  ++stats_.rts_sent;
  state_ = State::kWaitCts;
  // With a piggyback source installed the responder's CTS may be longer
  // than the base size; widen the wait by the bounded allowance.
  const int cts_budget =
      cfg_.sizes.cts + (piggyback_ != nullptr ? cfg_.ctrl_piggyback_max : 0);
  const TimeNs deadline = end + cfg_.sifs + dur(cts_budget) + 2 * cfg_.slot;
  timeout_event_ = sim_.schedule_at(deadline, [this] { on_timeout(); });
}

void DcfMac::on_cts(const Frame&) {
  sim_.cancel(timeout_event_);
  timeout_event_ = Simulator::kInvalidEvent;
  state_ = State::kSendData;
  sim_.schedule_in(cfg_.sifs, [this] { send_data(); });
}

void DcfMac::send_data() {
  E2EFA_ASSERT(queue_.has_packet());
  const Packet& p = queue_.head();
  Frame f;
  f.type = FrameType::kData;
  f.rx = p.dst;
  f.bytes = static_cast<int>(data_bytes(p));
  f.nav = cfg_.sifs + dur(cfg_.sizes.ack);
  f.packet = p;
  attach_tag(f);
  const TimeNs end = channel_.transmit(self_, f);
  ++stats_.data_sent;
  state_ = State::kWaitAck;
  const TimeNs deadline = end + cfg_.sifs + dur(cfg_.sizes.ack) + 2 * cfg_.slot;
  timeout_event_ = sim_.schedule_at(deadline, [this] { on_timeout(); });
}

void DcfMac::on_ack(const Frame& f) {
  sim_.cancel(timeout_event_);
  timeout_event_ = Simulator::kInvalidEvent;
  const Packet p = queue_.pop_success(sim_.now());
  if (tags_ != nullptr) tags_->store_ack_r(p.subflow, f.ack_backoff_r);
  callbacks_.on_packet_sent(p);
  finish_attempt(/*success=*/true);
}

void DcfMac::on_timeout() {
  timeout_event_ = Simulator::kInvalidEvent;
  ++stats_.timeouts;
  ++retries_;
  if (trace_ != nullptr)
    trace_->record<TraceCat::kMac>(sim_.now(), TraceEvent::kMacRetry,
                                   static_cast<std::int16_t>(self_), retries_, -1);
  if (retries_ > cfg_.retry_limit) {
    const Packet p = queue_.pop_drop(sim_.now());
    ++stats_.retry_drops;
    if (trace_ != nullptr)
      trace_->record<TraceCat::kMac>(sim_.now(), TraceEvent::kMacDrop,
                                     static_cast<std::int16_t>(self_), p.subflow,
                                     retries_);
    callbacks_.on_packet_dropped(p);
    finish_attempt(/*success=*/true);  // fresh packet, fresh attempt
    return;
  }
  finish_attempt(/*success=*/false);
}

void DcfMac::finish_attempt(bool success) {
  if (success) retries_ = 0;
  backoff_drawn_ = false;
  if (has_work()) {
    start_access(/*redraw=*/true);
  } else {
    state_ = State::kIdle;
  }
}

// ---------------------------------------------------------- control plane

void DcfMac::send_ctrl_frame() {
  E2EFA_ASSERT(!ctrl_q_.empty());
  CtrlEntry e = std::move(ctrl_q_.front());
  ctrl_q_.pop_front();
  Frame f;
  f.type = FrameType::kCtrl;
  f.rx = kInvalidNode;  // broadcast: every link neighbor decodes it
  f.bytes = e.bytes;
  f.nav = 0;
  f.ctrl = std::move(e.msg);
  const TimeNs end = channel_.transmit(self_, f);
  ++stats_.ctrl_sent;
  state_ = State::kTxCtrl;
  backoff_drawn_ = false;
  sim_.schedule_at(end, [this] {
    if (state_ != State::kTxCtrl) return;
    state_ = State::kIdle;
    if (has_work()) start_access(/*redraw=*/true);
  });
}

// -------------------------------------------------------------- receiver

void DcfMac::on_rts(const Frame& f) {
  const bool can_respond = (state_ == State::kIdle || state_ == State::kContend) &&
                           nav_until_ <= sim_.now() && !channel_.transmitting(self_);
  if (!can_respond) return;
  cancel_step();
  state_ = State::kRxExchange;
  rx_peer_ = f.tx;
  rx_has_tag_ = f.has_service_tag;
  rx_tag_ = f.service_tag;
  rx_tag_subflow_ = f.tag_subflow;
  rx_nav_remaining_ = f.nav;

  sim_.schedule_in(cfg_.sifs, [this] {
    if (state_ != State::kRxExchange) return;
    Frame cts;
    cts.type = FrameType::kCts;
    cts.rx = rx_peer_;
    cts.bytes = cfg_.sizes.cts;
    cts.nav = rx_nav_remaining_ - cfg_.sifs - dur(cfg_.sizes.cts);
    if (rx_has_tag_) {
      cts.service_tag = rx_tag_;
      cts.tag_subflow = rx_tag_subflow_;
      cts.has_service_tag = true;
    }
    attach_piggyback(cts);
    const TimeNs end = channel_.transmit(self_, cts);
    ++stats_.cts_sent;
    // If the DATA never materializes, abandon the exchange.
    const TimeNs deadline = end + cts.nav + cfg_.slot;
    timeout_event_ = sim_.schedule_at(deadline, [this] {
      timeout_event_ = Simulator::kInvalidEvent;
      end_rx_exchange();
    });
  });
}

void DcfMac::on_data(const Frame& f) {
  E2EFA_ASSERT(f.packet.has_value());
  const bool expected = state_ == State::kRxExchange && f.tx == rx_peer_;
  const bool opportunistic = (state_ == State::kIdle || state_ == State::kContend) &&
                             !channel_.transmitting(self_);
  if (!expected && !opportunistic) return;
  if (expected && timeout_event_ != Simulator::kInvalidEvent) {
    sim_.cancel(timeout_event_);
    timeout_event_ = Simulator::kInvalidEvent;
  }
  if (opportunistic) {
    cancel_step();
    state_ = State::kRxExchange;
    rx_peer_ = f.tx;
  }
  callbacks_.on_packet_delivered(*f.packet);

  Frame ack;
  ack.type = FrameType::kAck;
  ack.rx = f.tx;
  ack.bytes = cfg_.sizes.ack;
  ack.nav = 0;
  if (f.has_service_tag) {
    ack.service_tag = f.service_tag;
    ack.tag_subflow = f.tag_subflow;
    ack.has_service_tag = true;
  }
  if (tags_ != nullptr) ack.ack_backoff_r = tags_->r_slots_for(f.packet->subflow, sim_.now());
  sim_.schedule_in(cfg_.sifs, [this, ack] {
    if (state_ != State::kRxExchange) return;
    const TimeNs end = channel_.transmit(self_, ack);
    ++stats_.ack_sent;
    sim_.schedule_at(end, [this] { end_rx_exchange(); });
  });
}

void DcfMac::end_rx_exchange() {
  if (state_ != State::kRxExchange) return;
  rx_peer_ = kInvalidNode;
  rx_has_tag_ = false;
  state_ = State::kIdle;
  if (has_work()) start_access(/*redraw=*/false);  // keep frozen counter
}

// ------------------------------------------------------------- dispatch

void DcfMac::on_frame_received(const Frame& f) {
  if (f.has_service_tag && tags_ != nullptr) tags_->observe_tag(f.tag_subflow, f.service_tag, sim_.now());

  // Control payloads ride on broadcast kCtrl frames and on overheard
  // RTS/CTS piggybacks alike — surface them before the unicast filter.
  // Transport ACKs go to their own listener; agents never see them.
  if (f.ctrl != nullptr) {
    if (f.ctrl->kind == CtrlMsg::Kind::kTransAck) {
      if (transport_listener_) transport_listener_(f);
    } else if (ctrl_listener_) {
      ctrl_listener_(f);
    }
  }
  if (f.type == FrameType::kCtrl) return;  // no NAV, no handshake role

  if (f.rx != self_) {
    // Overheard: virtual carrier sense.
    nav_until_ = std::max(nav_until_, sim_.now() + f.nav);
    return;
  }
  switch (f.type) {
    case FrameType::kRts:
      on_rts(f);
      break;
    case FrameType::kCts:
      if (state_ == State::kWaitCts && queue_.has_packet() && f.tx == queue_.head().dst)
        on_cts(f);
      break;
    case FrameType::kData:
      on_data(f);
      break;
    case FrameType::kAck:
      if (state_ == State::kWaitAck && queue_.has_packet() && f.tx == queue_.head().dst)
        on_ack(f);
      break;
    case FrameType::kCtrl:
      break;  // handled above
  }
}

}  // namespace e2efa
