#include "topology/topology.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace e2efa {

bool TopologyMask::node_alive(NodeId n) const {
  if (node_up.empty()) return true;
  E2EFA_ASSERT(n >= 0 && n < static_cast<NodeId>(node_up.size()));
  return node_up[static_cast<std::size_t>(n)];
}

bool TopologyMask::link_alive(NodeId a, NodeId b) const {
  if (!node_alive(a) || !node_alive(b)) return false;
  if (down_links.empty()) return true;
  const auto key = std::minmax(a, b);
  for (const auto& l : down_links)
    if (l.first == key.first && l.second == key.second) return false;
  return true;
}

Topology::Topology(std::vector<Point> positions, double tx_range_m,
                   std::optional<double> interference_range_m)
    : positions_(std::move(positions)),
      tx_range_(tx_range_m),
      if_range_(interference_range_m.value_or(tx_range_m)),
      grid_(positions_, if_range_) {
  E2EFA_ASSERT(tx_range_ > 0.0);
  E2EFA_ASSERT_MSG(if_range_ >= tx_range_,
                   "interference range must be at least the transmission range");
  const int n = node_count();
  neighbors_.resize(static_cast<std::size_t>(n));
  if_neighbors_.resize(static_cast<std::size_t>(n));
  // One grid query per node covers both ranges: the interference
  // neighborhood is a superset of the transmission neighborhood (if_range >=
  // tx_range), and the grid reports it in the same ascending order the
  // all-pairs double loop produced, so the cached lists are bit-identical
  // to the quadratic build.
  const double tx2 = tx_range_ * tx_range_;
  for (NodeId i = 0; i < n; ++i) {
    auto& tx = neighbors_[static_cast<std::size_t>(i)];
    auto& ifr = if_neighbors_[static_cast<std::size_t>(i)];
    grid_.for_each_in_range_of(i, if_range_, [&](int j) {
      ifr.push_back(j);
      if (distance_sq(positions_[static_cast<std::size_t>(i)],
                      positions_[static_cast<std::size_t>(j)]) <= tx2)
        tx.push_back(j);
    });
  }
}

void Topology::check_node(NodeId n) const {
  E2EFA_ASSERT_MSG(n >= 0 && n < node_count(), "node id out of range");
}

const Point& Topology::position(NodeId n) const {
  check_node(n);
  return positions_[static_cast<std::size_t>(n)];
}

bool Topology::has_link(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  if (a == b) return false;
  return within_range(positions_[a], positions_[b], tx_range_);
}

bool Topology::interferes(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  if (a == b) return false;
  return within_range(positions_[a], positions_[b], if_range_);
}

const std::vector<NodeId>& Topology::neighbors(NodeId n) const {
  check_node(n);
  return neighbors_[static_cast<std::size_t>(n)];
}

const std::vector<NodeId>& Topology::interference_neighbors(NodeId n) const {
  check_node(n);
  return if_neighbors_[static_cast<std::size_t>(n)];
}

bool Topology::connected() const {
  const int n = node_count();
  if (n <= 1) return true;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  int visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : neighbors_[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == n;
}

void Topology::set_labels(std::vector<std::string> labels) {
  E2EFA_ASSERT(static_cast<int>(labels.size()) == node_count());
  labels_ = std::move(labels);
}

std::string Topology::label(NodeId n) const {
  check_node(n);
  if (!labels_.empty()) return labels_[static_cast<std::size_t>(n)];
  return std::to_string(n);
}

}  // namespace e2efa
