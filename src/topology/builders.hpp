// Convenience topology constructors: chains, grids, and random placements.
// The exact topologies of the paper's two evaluation scenarios live in
// net/scenarios.hpp because they also carry flow definitions.
#pragma once

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace e2efa {

/// A straight-line chain of `n` nodes spaced `spacing_m` apart.
/// With spacing 200 m and range 250 m this yields the paper's canonical
/// shortcut-free multi-hop path (nodes two hops apart are out of range).
Topology make_chain(int n, double spacing_m = 200.0, double tx_range_m = 250.0);

/// A rows x cols grid with the given spacing.
Topology make_grid(int rows, int cols, double spacing_m = 200.0,
                   double tx_range_m = 250.0);

/// `n` nodes placed uniformly at random in a width x height field.
/// If `require_connected`, retries placement (up to `max_attempts`) until the
/// connectivity graph is a single component; throws ContractViolation if it
/// never is.
Topology make_random(int n, double width_m, double height_m, Rng& rng,
                     double tx_range_m = 250.0, bool require_connected = true,
                     int max_attempts = 200);

}  // namespace e2efa
