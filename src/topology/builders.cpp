#include "topology/builders.hpp"

#include "util/assert.hpp"

namespace e2efa {

Topology make_chain(int n, double spacing_m, double tx_range_m) {
  E2EFA_ASSERT(n >= 1);
  E2EFA_ASSERT(spacing_m > 0.0);
  std::vector<Point> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pos.push_back({spacing_m * i, 0.0});
  return Topology(std::move(pos), tx_range_m);
}

Topology make_grid(int rows, int cols, double spacing_m, double tx_range_m) {
  E2EFA_ASSERT(rows >= 1 && cols >= 1);
  E2EFA_ASSERT(spacing_m > 0.0);
  std::vector<Point> pos;
  pos.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) pos.push_back({spacing_m * c, spacing_m * r});
  return Topology(std::move(pos), tx_range_m);
}

Topology make_random(int n, double width_m, double height_m, Rng& rng,
                     double tx_range_m, bool require_connected, int max_attempts) {
  E2EFA_ASSERT(n >= 1);
  E2EFA_ASSERT(width_m > 0.0 && height_m > 0.0);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<Point> pos;
    pos.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      pos.push_back({rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)});
    Topology topo(std::move(pos), tx_range_m);
    if (!require_connected || topo.connected()) return topo;
  }
  throw ContractViolation("make_random: could not place a connected topology");
}

}  // namespace e2efa
