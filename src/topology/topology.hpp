// Static wireless network topology: node positions plus radio ranges.
//
// Connectivity follows the unit-disk model the paper's evaluation reduces
// to: node j can receive node i's transmission iff it lies within the
// transmission range; it is *interfered with* by i iff within the
// interference range (>= transmission range). Both scenarios in the paper
// use 250 m for both ranges.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geom/geom.hpp"
#include "geom/spatial_index.hpp"

namespace e2efa {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

/// A degraded view of a Topology: which nodes are alive and which links are
/// administratively down (fault injection). Empty vectors mean "everything
/// up", so a default-constructed mask is the healthy network. The mask never
/// changes the underlying Topology — geometry, neighbor lists, and
/// interference relations stay those of the full network; the mask only
/// filters which links can carry traffic (routing, frame decoding).
struct TopologyMask {
  std::vector<bool> node_up;  ///< Empty = all nodes up; else one flag per node.
  /// Links forced down, as normalized (min id, max id) pairs. Both endpoints
  /// being alive does not resurrect a downed link.
  std::vector<std::pair<NodeId, NodeId>> down_links;

  bool node_alive(NodeId n) const;
  /// True when both endpoints are alive and the link is not forced down.
  /// Does NOT check geometric range — pair with Topology::has_link.
  bool link_alive(NodeId a, NodeId b) const;
  bool all_up() const { return node_up.empty() && down_links.empty(); }

  bool operator==(const TopologyMask&) const = default;
};

/// Immutable-after-construction set of node positions with range-based
/// connectivity queries and cached neighbor lists.
class Topology {
 public:
  /// `tx_range_m` is the transmission (and default interference) range.
  Topology(std::vector<Point> positions, double tx_range_m,
           std::optional<double> interference_range_m = std::nullopt);

  int node_count() const { return static_cast<int>(positions_.size()); }
  const Point& position(NodeId n) const;
  double tx_range() const { return tx_range_; }
  double interference_range() const { return if_range_; }

  /// True when a and b are distinct nodes within transmission range
  /// (i.e., a bidirectional wireless link exists between them).
  bool has_link(NodeId a, NodeId b) const;

  /// True when b is within a's interference range (a != b).
  bool interferes(NodeId a, NodeId b) const;

  /// Nodes within transmission range of n (excluding n), ascending ids.
  const std::vector<NodeId>& neighbors(NodeId n) const;

  /// Nodes within interference range of n (excluding n), ascending ids.
  const std::vector<NodeId>& interference_neighbors(NodeId n) const;

  /// True when the connectivity graph is a single connected component.
  bool connected() const;

  /// The uniform-grid index over the node positions (cell size =
  /// interference range) that built the neighbor lists; exposed so
  /// scenario generation and other geometric passes can run their own
  /// range queries without an all-pairs scan.
  const SpatialGrid& grid() const { return grid_; }

  /// Optional human-readable labels ("A", "B", ...) used in printed tables.
  void set_labels(std::vector<std::string> labels);
  /// Label for node n; defaults to its numeric id.
  std::string label(NodeId n) const;

 private:
  void check_node(NodeId n) const;

  std::vector<Point> positions_;
  double tx_range_;
  double if_range_;
  SpatialGrid grid_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::vector<NodeId>> if_neighbors_;
  std::vector<std::string> labels_;
};

}  // namespace e2efa
