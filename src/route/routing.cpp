#include "route/routing.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace e2efa {

std::optional<std::vector<NodeId>> shortest_path(const Topology& topo, NodeId src,
                                                 NodeId dst) {
  return shortest_path(topo, src, dst, TopologyMask{});
}

std::optional<std::vector<NodeId>> shortest_path(const Topology& topo, NodeId src,
                                                 NodeId dst, const TopologyMask& mask) {
  E2EFA_ASSERT(src >= 0 && src < topo.node_count());
  E2EFA_ASSERT(dst >= 0 && dst < topo.node_count());
  if (!mask.node_alive(src) || !mask.node_alive(dst)) return std::nullopt;
  if (src == dst) return std::vector<NodeId>{src};

  // BFS; neighbor lists are ascending, so the first parent found is the
  // smallest-id parent at the shortest distance.
  std::vector<NodeId> parent(static_cast<std::size_t>(topo.node_count()), kInvalidNode);
  std::vector<bool> seen(static_cast<std::size_t>(topo.node_count()), false);
  std::queue<NodeId> q;
  q.push(src);
  seen[static_cast<std::size_t>(src)] = true;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : topo.neighbors(u)) {
      if (seen[static_cast<std::size_t>(v)]) continue;
      if (!mask.link_alive(u, v)) continue;
      seen[static_cast<std::size_t>(v)] = true;
      parent[static_cast<std::size_t>(v)] = u;
      if (v == dst) {
        std::vector<NodeId> path{dst};
        for (NodeId w = dst; w != src; w = parent[static_cast<std::size_t>(w)])
          path.push_back(parent[static_cast<std::size_t>(w)]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      q.push(v);
    }
  }
  return std::nullopt;
}

Flow make_routed_flow(const Topology& topo, NodeId src, NodeId dst, double weight) {
  E2EFA_ASSERT(src >= 0 && src < topo.node_count());
  E2EFA_ASSERT(dst >= 0 && dst < topo.node_count());
  E2EFA_ASSERT_MSG(src != dst, "flow source equals destination");
  auto path = shortest_path(topo, src, dst);
  E2EFA_ASSERT_MSG(path.has_value(), "destination unreachable");
  Flow f;
  f.path = std::move(*path);
  f.weight = weight;
  return f;
}

std::vector<std::vector<int>> hop_distances(const Topology& topo) {
  const int n = topo.node_count();
  std::vector<std::vector<int>> dist(static_cast<std::size_t>(n),
                                     std::vector<int>(static_cast<std::size_t>(n), -1));
  for (NodeId s = 0; s < n; ++s) {
    auto& row = dist[static_cast<std::size_t>(s)];
    row[static_cast<std::size_t>(s)] = 0;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (NodeId v : topo.neighbors(u)) {
        if (row[static_cast<std::size_t>(v)] == -1) {
          row[static_cast<std::size_t>(v)] = row[static_cast<std::size_t>(u)] + 1;
          q.push(v);
        }
      }
    }
  }
  return dist;
}

}  // namespace e2efa
