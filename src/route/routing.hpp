// Min-hop source routing (DSR stand-in).
//
// The paper runs Dynamic Source Routing over static topologies; on a static
// connectivity graph DSR converges to min-hop source routes, which is what
// we compute — BFS with deterministic (smallest-id) tie-breaking, so routes
// are reproducible. Routes are attached to flows at scenario setup, exactly
// like DSR's source-route headers.
#pragma once

#include <optional>
#include <vector>

#include "flow/flow.hpp"
#include "topology/topology.hpp"

namespace e2efa {

/// Shortest (min-hop) path from src to dst, inclusive of both endpoints.
/// Ties are broken toward smaller predecessor ids (deterministic).
/// Returns nullopt when dst is unreachable.
std::optional<std::vector<NodeId>> shortest_path(const Topology& topo, NodeId src,
                                                 NodeId dst);

/// Masked variant: routes on the *surviving* topology — links whose
/// endpoints are dead or that the mask forces down are skipped, and a dead
/// src or dst is immediately unreachable. This is the route-repair
/// primitive: at every fault epoch the runner re-runs it against the
/// current TopologyMask and either re-routes or suspends each flow.
/// Deterministic like the unmasked form (smallest-id tie-breaking).
std::optional<std::vector<NodeId>> shortest_path(const Topology& topo, NodeId src,
                                                 NodeId dst, const TopologyMask& mask);

/// Builds a Flow along the min-hop route.
///
/// Throws ContractViolation when the destination is unreachable from the
/// source on the connectivity graph (there is no route at all — callers
/// wanting a soft failure should use shortest_path and test the optional),
/// and when src == dst (a flow must traverse at least one link; a
/// self-addressed flow has no subflows and no meaningful allocation).
Flow make_routed_flow(const Topology& topo, NodeId src, NodeId dst, double weight = 1.0);

/// All-pairs hop distance matrix (-1 for unreachable). O(V·(V+E)).
std::vector<std::vector<int>> hop_distances(const Topology& topo);

}  // namespace e2efa
