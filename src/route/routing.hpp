// Min-hop source routing (DSR stand-in).
//
// The paper runs Dynamic Source Routing over static topologies; on a static
// connectivity graph DSR converges to min-hop source routes, which is what
// we compute — BFS with deterministic (smallest-id) tie-breaking, so routes
// are reproducible. Routes are attached to flows at scenario setup, exactly
// like DSR's source-route headers.
#pragma once

#include <optional>
#include <vector>

#include "flow/flow.hpp"
#include "topology/topology.hpp"

namespace e2efa {

/// Shortest (min-hop) path from src to dst, inclusive of both endpoints.
/// Ties are broken toward smaller predecessor ids (deterministic).
/// Returns nullopt when dst is unreachable.
std::optional<std::vector<NodeId>> shortest_path(const Topology& topo, NodeId src,
                                                 NodeId dst);

/// Builds a Flow along the min-hop route; throws ContractViolation when the
/// destination is unreachable.
Flow make_routed_flow(const Topology& topo, NodeId src, NodeId dst, double weight = 1.0);

/// All-pairs hop distance matrix (-1 for unreachable). O(V·(V+E)).
std::vector<std::vector<int>> hop_distances(const Topology& topo);

}  // namespace e2efa
