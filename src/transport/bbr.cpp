#include "transport/bbr.hpp"

#include <algorithm>

namespace e2efa {

namespace {
constexpr double kProbeGains[8] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr double kMinRttPrior = 0.2;  ///< Before the first RTT sample.
constexpr int kFullBwRounds = 3;      ///< Flat rounds ⇒ pipe is full.
}  // namespace

double BbrTransport::btl_bw_pps() const {
  return bw_max_.empty() ? config().bbr_init_bw_pps : bw_max_.front().v;
}

double BbrTransport::min_rtt_s() const {
  return rtt_min_.empty() ? kMinRttPrior : rtt_min_.front().v;
}

double BbrTransport::cwnd() const {
  const double cap = config().bbr_cwnd_gain * bdp_pkts();
  return std::clamp(cap, 4.0, config().max_cwnd_pkts);
}

double BbrTransport::pacing_gain() const {
  switch (state_) {
    case State::kStartup: return config().bbr_startup_gain;
    case State::kDrain: return 1.0 / config().bbr_startup_gain;
    case State::kProbeBw: return kProbeGains[cycle_idx_];
  }
  return 1.0;
}

double BbrTransport::pacing_interval_s() const {
  const double rate = pacing_gain() * btl_bw_pps();
  if (rate <= 0.0) return config().bbr_min_pacing_interval_s;
  return std::max(1.0 / rate, config().bbr_min_pacing_interval_s);
}

void BbrTransport::on_newly_acked(std::int64_t /*newly*/,
                                  const std::optional<SendRecord>& /*echo*/,
                                  double rtt_s, TimeNs now) {
  if (rtt_s >= 0.0) {
    // Min filter: drop dominated entries from the back, expired from the
    // front. The matching delivery-rate sample is the base's latest.
    const TimeNs rtt_horizon = now - from_seconds(config().bbr_rtt_window_s);
    while (!rtt_min_.empty() && rtt_min_.back().v >= rtt_s) rtt_min_.pop_back();
    rtt_min_.push_back({rtt_s, now});
    while (rtt_min_.front().t < rtt_horizon) rtt_min_.pop_front();

    const double bw = last_delivery_rate_pps();
    const TimeNs bw_horizon = now - from_seconds(config().bbr_bw_window_s);
    while (!bw_max_.empty() && bw_max_.back().v <= bw) bw_max_.pop_back();
    bw_max_.push_back({bw, now});
    while (bw_max_.front().t < bw_horizon) bw_max_.pop_front();
  }
  advance_state(now);
}

void BbrTransport::advance_state(TimeNs now) {
  // Round boundary: everything in flight at the last boundary is now acked.
  const bool round_end = cumack() >= round_end_seq_;
  if (round_end) round_end_seq_ = max_sent() + 1;

  switch (state_) {
    case State::kStartup:
      if (round_end) {
        if (btl_bw_pps() >= full_bw_pps_ * 1.25 || full_bw_pps_ == 0.0) {
          full_bw_pps_ = btl_bw_pps();
          full_bw_rounds_ = 0;
        } else if (++full_bw_rounds_ >= kFullBwRounds) {
          state_ = State::kDrain;
        }
      }
      break;
    case State::kDrain:
      if (inflight() <= bdp_pkts()) {
        state_ = State::kProbeBw;
        // Randomized entry phase (construction draw), skipping the 0.75
        // drain phase like BBRv1.
        const int v = static_cast<int>(phase_draw() % 7);
        cycle_idx_ = v < 1 ? 0 : v + 1;
        cycle_start_ = now;
      }
      break;
    case State::kProbeBw:
      if (now - cycle_start_ >= from_seconds(min_rtt_s())) {
        cycle_idx_ = (cycle_idx_ + 1) % 8;
        cycle_start_ = now;
      }
      break;
  }
}

}  // namespace e2efa
