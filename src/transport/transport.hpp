// Elastic transport layer: closed-loop sources atop the fair MAC.
//
// The paper's evaluation is CBR-only — every source is greedy at a fixed
// packet rate and the 2PA shares r̂_i are never probed by a congestion
// controller. This subsystem adds the first end-to-end feedback path in the
// stack: per-flow cumulative ACKs generated at the sink travel back to the
// source over the simulated MAC (the route machinery in reverse; see
// ack_plane.hpp), and a TransportSource reacts to that ACK clock.
//
// Three implementations share the interface:
//   kCbr   the existing open-loop constant-bit-rate source, adapted behind
//          the interface (CbrTransport wraps CbrSource; byte-identical
//          trajectories — no ACK plane is even constructed for CBR runs).
//   kAimd  a Reno-style controller: slow start, additive increase,
//          multiplicative decrease on triple-dupack loss, RTO with
//          exponential backoff (src/transport/aimd.hpp).
//   kBbr   a BBR-style model-based controller: windowed-max delivery rate
//          and windowed-min RTT drive a pacing-gain cycle and an inflight
//          cap (src/transport/bbr.hpp).
//
// Determinism: every source draws exactly one u64 from the shared master
// RNG at construction (the same draw CbrSource makes for its phase), so
// switching transport kinds never shifts the RNG stream consumed by MACs
// and the control plane.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "phy/packet.hpp"
#include "sim/simulator.hpp"
#include "traffic/cbr_source.hpp"
#include "util/rng.hpp"

namespace e2efa {

/// Which congestion controller drives each flow's source.
enum class TransportKind : std::uint8_t { kCbr = 0, kAimd = 1, kBbr = 2 };

const char* to_string(TransportKind k);
/// Parses "cbr" | "aimd" | "bbr"; nullopt on anything else.
std::optional<TransportKind> parse_transport_kind(const std::string& s);

/// Tunables shared by the elastic controllers (defaults follow RFC 6298 and
/// the BBRv1 draft, scaled to the simulated 2 Mbps channel).
struct TransportConfig {
  TransportKind kind = TransportKind::kCbr;
  // --- shared retransmission machinery (elastic.hpp) ---
  double rto_initial_s = 1.0;  ///< RTO before the first RTT sample.
  double rto_min_s = 0.2;
  double rto_max_s = 4.0;
  int dupack_threshold = 3;    ///< Dupacks before a fast retransmit.
  /// Hard cap on any window. Deliberately just below the 50-packet node
  /// queues: a window that can overflow its own source queue turns every
  /// slow-start round into a mass drop + RTO episode, inflates RTT past
  /// the RTO floor, starves the competing flows' ACK clocks, and locks
  /// the system into a winner-take-all relaxation oscillation the fair
  /// MAC cannot undo (measured at caps >= 64). Too small is as bad: the
  /// paper topologies' contested paths run at ~0.3 s RTT under load, and
  /// a 32-packet window caps a flow at ~100 pkt/s — below some r̂_i, so
  /// long flows go window-limited and undershoot their share.
  double max_cwnd_pkts = 48;
  double initial_cwnd = 2.0;
  /// Sink-side delayed ACKs: every 2nd in-order packet acks immediately,
  /// a straggler acks after this timer; out-of-order and duplicate data
  /// always ack immediately (the dupack clock must not be delayed).
  double delayed_ack_s = 0.01;
  // --- BBR (bbr.hpp) ---
  double bbr_startup_gain = 2.885;  ///< 2/ln 2: doubles delivery per RTT.
  double bbr_cwnd_gain = 2.0;       ///< Inflight cap = gain · BDP.
  double bbr_bw_window_s = 2.0;     ///< Windowed-max delivery-rate horizon.
  double bbr_rtt_window_s = 10.0;   ///< Windowed-min RTT horizon.
  double bbr_init_bw_pps = 50.0;    ///< Bottleneck-rate prior before samples.
  double bbr_min_pacing_interval_s = 0.0005;  ///< Pacing-rate ceiling.
};

/// Per-flow controller state exported for metrics columns and the trace
/// tool's transport summary. CBR reports zeros.
struct TransportTelemetry {
  double cwnd = 0.0;
  double srtt_s = 0.0;
  double delivery_rate_pps = 0.0;
  std::int64_t retransmits = 0;
  std::int64_t timeouts = 0;
};

/// One flow's traffic source. The runner owns one per flow and drives it
/// exactly like it drove CbrSource: `emit` receives each generated packet
/// with seq/uid/created prefilled, the runner's lambda stamps routing and
/// injects into the source NodeStack.
class TransportSource {
 public:
  virtual ~TransportSource() = default;

  /// Starts generation; packets are produced until `until`.
  virtual void start(TimeNs until) = 0;

  /// A cumulative ACK reached the source (AckPlane). `cumack` is the
  /// highest in-order sequence delivered at the sink, `echo_seq` the data
  /// sequence whose arrival triggered the ACK (the RTT / delivery-rate
  /// probe), `cause_span` the kTransAckRx trace span for causal parenting
  /// (0 when tracing is off). Never called for CBR.
  virtual void on_ack(std::int64_t cumack, std::int64_t echo_seq, TimeNs now,
                      std::uint32_t cause_span) = 0;

  /// Sequences generated so far (the next fresh sequence number).
  virtual std::int64_t generated() const = 0;

  virtual TransportTelemetry telemetry() const = 0;
};

/// The open-loop CBR source behind the transport interface. Pure
/// composition: construction, RNG draws, and the event schedule are exactly
/// CbrSource's, so existing goldens stay byte-identical.
class CbrTransport final : public TransportSource {
 public:
  CbrTransport(Simulator& sim, double packets_per_second, int payload_bytes,
               std::function<void(Packet)> emit, Rng& phase_rng)
      : cbr_(sim, packets_per_second, payload_bytes, std::move(emit), phase_rng) {}

  void start(TimeNs until) override { cbr_.start(until); }
  void on_ack(std::int64_t, std::int64_t, TimeNs, std::uint32_t) override {}
  std::int64_t generated() const override { return cbr_.generated(); }
  TransportTelemetry telemetry() const override { return {}; }

 private:
  CbrSource cbr_;
};

}  // namespace e2efa
