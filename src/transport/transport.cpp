#include "transport/transport.hpp"

namespace e2efa {

const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kCbr: return "cbr";
    case TransportKind::kAimd: return "aimd";
    case TransportKind::kBbr: return "bbr";
  }
  return "?";
}

std::optional<TransportKind> parse_transport_kind(const std::string& s) {
  if (s == "cbr") return TransportKind::kCbr;
  if (s == "aimd") return TransportKind::kAimd;
  if (s == "bbr") return TransportKind::kBbr;
  return std::nullopt;
}

}  // namespace e2efa
