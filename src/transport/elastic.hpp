// Shared machinery for the closed-loop (elastic) transport sources.
//
// ElasticTransport owns everything AIMD and BBR have in common — the
// sequence space, the outstanding-packet ledger with per-send delivery
// snapshots (the delivery-rate sample of BBR's model), cumulative-ACK
// processing with duplicate-ACK counting, RFC 6298 RTT estimation with
// Karn's algorithm, fast retransmit, and the RTO timer with exponential
// backoff — and delegates the congestion-control *policy* to virtuals:
//
//   cwnd()               how many packets may be in flight
//   pacing_interval_s()  < 0: window-limited (send whenever the window
//                        opens — AIMD); >= 0: one packet per interval,
//                        window acting as a cap (BBR)
//   on_newly_acked()     the ACK-clock tick (additive increase / model update)
//   on_dupack_loss()     fast-retransmit signal (multiplicative decrease)
//   on_rto_event()       retransmission timeout (window collapse)
//
// Determinism contract: construction draws exactly one u64 from the shared
// master RNG (like CbrSource's phase draw), all later behavior is driven by
// simulator events only, and packet uids come from a dedicated atomic
// counter so BatchRunner workers stay race-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "check/check.hpp"
#include "obs/trace.hpp"
#include "transport/transport.hpp"

namespace e2efa {

class ElasticTransport : public TransportSource {
 public:
  /// `flow` keys the trace records and oracle state (the runner passes the
  /// flow id whose packets this source generates); `source_node` labels
  /// them. `trace` / `check` may be null.
  ElasticTransport(Simulator& sim, const TransportConfig& cfg, int payload_bytes,
                   std::function<void(Packet)> emit, Rng& phase_rng,
                   std::int32_t flow, NodeId source_node, TraceSink* trace,
                   CheckContext* check);

  void start(TimeNs until) override;
  void on_ack(std::int64_t cumack, std::int64_t echo_seq, TimeNs now,
              std::uint32_t cause_span) override;
  std::int64_t generated() const override { return next_seq_; }
  TransportTelemetry telemetry() const override;

 protected:
  /// Ledger entry for one in-flight sequence. `delivered_at_send` snapshots
  /// the cumulative delivered count when the (re)send left, so the ACK that
  /// echoes this sequence yields the delivery-rate sample
  /// (delivered_now − delivered_at_send) / (now − sent).
  struct SendRecord {
    TimeNs sent = 0;
    TimeNs created = 0;  ///< First transmission (end-to-end delay base).
    std::int64_t delivered_at_send = 0;
    bool retransmitted = false;  ///< Karn: no RTT sample from this seq.
  };

  // --- policy hooks ----------------------------------------------------
  virtual double cwnd() const = 0;
  /// `newly` sequences were cumulatively acked; `echo` is the ledger entry
  /// of the echoed probe (nullopt when it was already acked), `rtt_s` the
  /// Karn-filtered RTT sample (< 0 when none).
  virtual void on_newly_acked(std::int64_t newly,
                              const std::optional<SendRecord>& echo,
                              double rtt_s, TimeNs now) = 0;
  virtual void on_dupack_loss(TimeNs now) = 0;
  virtual void on_rto_event(TimeNs now) = 0;
  virtual double pacing_interval_s() const { return -1.0; }

  // --- state the policies read -----------------------------------------
  std::int64_t cumack() const { return cumack_; }
  std::int64_t max_sent() const { return next_seq_ - 1; }
  std::int64_t delivered() const { return delivered_; }
  double inflight() const { return static_cast<double>(outstanding_.size()); }
  bool has_srtt() const { return has_srtt_; }
  double srtt_value_s() const { return srtt_s_; }
  /// Most recent delivery-rate sample (pkts/s; 0 before the first).
  double last_delivery_rate_pps() const { return delivery_rate_pps_; }
  const TransportConfig& config() const { return cfg_; }
  /// Raw phase draw (also seeds BBR's initial gain-cycle offset).
  std::uint64_t phase_draw() const { return phase_draw_; }

  /// Opens the window / pacing pipeline; policies may call it after state
  /// changes that could release sends.
  void pump();

 private:
  void send_new(TimeNs now);
  void retransmit(std::int64_t seq, bool timeout, TimeNs now);
  void on_pace();
  void arm_rto(TimeNs now);
  void on_rto_fire();
  double current_rto_s() const;
  void trace_cwnd(TimeNs now);

  Simulator& sim_;
  TransportConfig cfg_;
  int payload_bytes_;
  std::function<void(Packet)> emit_;
  std::int32_t flow_;
  NodeId node_;
  TraceSink* trace_;
  CheckContext* check_;

  std::uint64_t phase_draw_ = 0;
  TimeNs phase_ = 0;
  TimeNs until_ = 0;
  bool started_ = false;

  std::int64_t next_seq_ = 0;
  std::int64_t cumack_ = -1;
  std::int64_t delivered_ = 0;
  int dupacks_ = 0;
  std::map<std::int64_t, SendRecord> outstanding_;
  std::uint32_t last_ack_span_ = 0;  ///< Parent for the next sends.

  bool has_srtt_ = false;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  double delivery_rate_pps_ = 0.0;
  int rto_backoff_ = 0;
  Simulator::EventId rto_event_ = Simulator::kInvalidEvent;

  Simulator::EventId pace_event_ = Simulator::kInvalidEvent;
  TimeNs next_pace_ = 0;

  std::int64_t retransmits_ = 0;
  std::int64_t timeouts_ = 0;
  double last_traced_cwnd_ = -1.0;

  /// Separate uid stream from CbrSource's: both only feed tracing and
  /// duplicate *identity* (uid equality), never ordering decisions.
  static std::atomic<std::uint64_t> next_uid_;
};

}  // namespace e2efa
