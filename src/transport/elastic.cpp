#include "transport/elastic.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace e2efa {

std::atomic<std::uint64_t> ElasticTransport::next_uid_{1};

namespace {
/// Elastic sources have no fixed interval, so the decorrelating start phase
/// draws from a fixed 5 ms window (one RNG draw, like CbrSource's).
constexpr TimeNs kPhaseWindow = 5 * kMillisecond;
}  // namespace

ElasticTransport::ElasticTransport(Simulator& sim, const TransportConfig& cfg,
                                   int payload_bytes,
                                   std::function<void(Packet)> emit,
                                   Rng& phase_rng, std::int32_t flow,
                                   NodeId source_node, TraceSink* trace,
                                   CheckContext* check)
    : sim_(sim),
      cfg_(cfg),
      payload_bytes_(payload_bytes),
      emit_(std::move(emit)),
      flow_(flow),
      node_(source_node),
      trace_(trace),
      check_(check) {
  E2EFA_ASSERT(payload_bytes > 0);
  E2EFA_ASSERT(emit_ != nullptr);
  phase_draw_ = phase_rng.uniform_u64(static_cast<std::uint64_t>(kPhaseWindow));
  phase_ = static_cast<TimeNs>(phase_draw_);
}

void ElasticTransport::start(TimeNs until) {
  until_ = until;
  started_ = true;
  sim_.schedule_at(sim_.now() + phase_, [this] { pump(); });
}

TransportTelemetry ElasticTransport::telemetry() const {
  TransportTelemetry t;
  t.cwnd = cwnd();
  t.srtt_s = srtt_s_;
  t.delivery_rate_pps = delivery_rate_pps_;
  t.retransmits = retransmits_;
  t.timeouts = timeouts_;
  return t;
}

void ElasticTransport::pump() {
  if (!started_) return;
  const double pace = pacing_interval_s();
  if (pace < 0.0) {
    // Window-limited: release everything the window admits right now.
    while (sim_.now() < until_ && inflight() + 1.0 <= cwnd() + 1e-9)
      send_new(sim_.now());
    return;
  }
  // Paced: one packet per interval, the window acting as a hard cap. A
  // closed window simply leaves no timer armed — the next ACK re-pumps.
  if (pace_event_ != Simulator::kInvalidEvent) return;
  const TimeNs now = sim_.now();
  if (now >= until_) return;
  if (inflight() + 1.0 > cwnd() + 1e-9) return;
  pace_event_ = sim_.schedule_at(std::max(now, next_pace_), [this] {
    pace_event_ = Simulator::kInvalidEvent;
    on_pace();
  });
}

void ElasticTransport::on_pace() {
  const TimeNs now = sim_.now();
  if (now >= until_) return;
  if (inflight() + 1.0 <= cwnd() + 1e-9) {
    send_new(now);
    const double interval =
        std::max(pacing_interval_s(), cfg_.bbr_min_pacing_interval_s);
    next_pace_ = now + from_seconds(interval);
  }
  pump();
}

void ElasticTransport::send_new(TimeNs now) {
  const std::int64_t seq = next_seq_++;
  SendRecord rec;
  rec.sent = now;
  rec.created = now;
  rec.delivered_at_send = delivered_;
  outstanding_.emplace(seq, rec);
  if (check_ != nullptr)
    check_->on_transport_send(node_, flow_, seq, /*retransmit=*/false, cwnd(),
                              now);
  if (trace_ != nullptr && trace_->enabled<TraceCat::kTransport>())
    trace_->record<TraceCat::kTransport>(
        now, TraceEvent::kTransSend, static_cast<std::int16_t>(node_), flow_, 0,
        static_cast<double>(seq), cwnd(), 0, last_ack_span_);
  Packet p;
  p.uid = next_uid_.fetch_add(1, std::memory_order_relaxed);
  p.seq = seq;
  p.payload_bytes = payload_bytes_;
  p.created = now;
  emit_(p);
  if (rto_event_ == Simulator::kInvalidEvent) arm_rto(now);
}

void ElasticTransport::retransmit(std::int64_t seq, bool timeout, TimeNs now) {
  if (now >= until_) return;  // run ending: let the simulation drain
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;
  ++retransmits_;
  it->second.retransmitted = true;
  it->second.sent = now;
  it->second.delivered_at_send = delivered_;
  if (check_ != nullptr)
    check_->on_transport_send(node_, flow_, seq, /*retransmit=*/true, cwnd(),
                              now);
  if (trace_ != nullptr && trace_->enabled<TraceCat::kTransport>())
    trace_->record<TraceCat::kTransport>(
        now, TraceEvent::kTransRetransmit, static_cast<std::int16_t>(node_),
        flow_, timeout ? 1 : 0, static_cast<double>(seq), cwnd(), 0,
        last_ack_span_);
  Packet p;
  p.uid = next_uid_.fetch_add(1, std::memory_order_relaxed);
  p.seq = seq;
  p.payload_bytes = payload_bytes_;
  p.created = it->second.created;
  emit_(p);
  if (rto_event_ == Simulator::kInvalidEvent) arm_rto(now);
}

void ElasticTransport::on_ack(std::int64_t cumack, std::int64_t echo_seq,
                              TimeNs now, std::uint32_t cause_span) {
  if (!started_) return;
  last_ack_span_ = cause_span;
  if (cumack > cumack_) {
    const std::int64_t newly = cumack - cumack_;
    std::optional<SendRecord> echo;  // copy: the erase below invalidates it
    if (auto it = outstanding_.find(echo_seq); it != outstanding_.end())
      echo = it->second;
    double rtt_s = -1.0;
    delivered_ += newly;
    if (echo && !echo->retransmitted && now > echo->sent) {
      // Karn: only never-retransmitted echoes yield RTT / rate samples.
      rtt_s = to_seconds(now - echo->sent);
      if (!has_srtt_) {
        srtt_s_ = rtt_s;
        rttvar_s_ = rtt_s / 2.0;
        has_srtt_ = true;
      } else {
        rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - rtt_s);
        srtt_s_ = 0.875 * srtt_s_ + 0.125 * rtt_s;
      }
      delivery_rate_pps_ = static_cast<double>(delivered_ - echo->delivered_at_send) / rtt_s;
    }
    // Any forward progress clears the exponential backoff (not just a
    // Karn-valid sample: ACKs here ride lossy fire-and-forget control
    // frames, and a backoff that only a pristine RTT probe can clear
    // escalates to rto_max and starves the flow for seconds).
    rto_backoff_ = 0;
    outstanding_.erase(outstanding_.begin(), outstanding_.upper_bound(cumack));
    cumack_ = cumack;
    dupacks_ = 0;
    if (check_ != nullptr) check_->on_transport_ack(node_, flow_, cumack, now);
    on_newly_acked(newly, echo, rtt_s, now);
    arm_rto(now);
  } else if (cumack == cumack_) {
    ++dupacks_;
    if (check_ != nullptr) check_->on_transport_ack(node_, flow_, cumack, now);
    if (cfg_.dupack_threshold > 0 && dupacks_ % cfg_.dupack_threshold == 0) {
      // Every further `threshold` dupacks re-signals the same hole — the
      // fast retransmit itself may have been lost.
      on_dupack_loss(now);
      retransmit(cumack_ + 1, /*timeout=*/false, now);
    }
  }
  // cumack < cumack_: a reordered stale ACK; cumulative state ignores it.
  trace_cwnd(now);
  pump();
}

void ElasticTransport::arm_rto(TimeNs now) {
  if (rto_event_ != Simulator::kInvalidEvent) {
    sim_.cancel(rto_event_);
    rto_event_ = Simulator::kInvalidEvent;
  }
  if (outstanding_.empty()) return;
  rto_event_ = sim_.schedule_at(now + from_seconds(current_rto_s()), [this] {
    rto_event_ = Simulator::kInvalidEvent;
    on_rto_fire();
  });
}

double ElasticTransport::current_rto_s() const {
  double base = has_srtt_ ? srtt_s_ + 4.0 * rttvar_s_ : cfg_.rto_initial_s;
  base = std::clamp(base, cfg_.rto_min_s, cfg_.rto_max_s);
  const double scaled =
      base * static_cast<double>(std::uint64_t{1} << std::min(rto_backoff_, 16));
  return std::min(scaled, cfg_.rto_max_s);
}

void ElasticTransport::on_rto_fire() {
  const TimeNs now = sim_.now();
  if (outstanding_.empty() || now >= until_) return;
  ++timeouts_;
  if (trace_ != nullptr && trace_->enabled<TraceCat::kTransport>())
    trace_->record<TraceCat::kTransport>(
        now, TraceEvent::kTransTimeout, static_cast<std::int16_t>(node_), flow_,
        rto_backoff_, current_rto_s(), srtt_s_);
  if (rto_backoff_ < 16) ++rto_backoff_;
  dupacks_ = 0;
  if (check_ != nullptr) check_->on_transport_timeout(node_, flow_, now);
  on_rto_event(now);
  retransmit(outstanding_.begin()->first, /*timeout=*/true, now);
  arm_rto(now);
  trace_cwnd(now);
  pump();
}

void ElasticTransport::trace_cwnd(TimeNs now) {
  if (trace_ == nullptr || !trace_->enabled<TraceCat::kTransport>()) return;
  const double w = cwnd();
  if (last_traced_cwnd_ >= 0.0 && std::floor(w) == std::floor(last_traced_cwnd_))
    return;
  last_traced_cwnd_ = w;
  trace_->record<TraceCat::kTransport>(now, TraceEvent::kTransCwnd,
                                       static_cast<std::int16_t>(node_), flow_,
                                       0, w, srtt_s_);
}

}  // namespace e2efa
