#include "transport/ack_plane.hpp"

#include "ctrl/messages.hpp"
#include "util/assert.hpp"

namespace e2efa {

void AckPlane::add_flow(std::int32_t flow, std::vector<NodeId> path,
                        TransportSource* source) {
  E2EFA_ASSERT(path.size() >= 2);
  E2EFA_ASSERT(source != nullptr);
  FlowState s;
  s.path = std::move(path);
  s.source = source;
  flows_.emplace(flow, std::move(s));
}

bool AckPlane::on_final_delivery(const Packet& p, TimeNs now) {
  auto it = flows_.find(p.flow);
  if (it == flows_.end()) return true;  // not an elastic flow
  FlowState& s = it->second;
  if (p.seq <= s.cumack || s.ooo.count(p.seq) != 0) {
    // Duplicate data (a spurious retransmission): re-ack immediately so
    // the source's ledger converges.
    emit_ack(s, p.flow, p.seq, now);
    return false;
  }
  if (p.seq == s.cumack + 1) {
    ++s.cumack;
    while (!s.ooo.empty() && *s.ooo.begin() == s.cumack + 1) {
      s.ooo.erase(s.ooo.begin());
      ++s.cumack;
    }
    ++s.pending;
    s.last_echo = p.seq;
    if (s.pending >= 2) {
      emit_ack(s, p.flow, p.seq, now);
    } else if (s.delack == Simulator::kInvalidEvent) {
      const std::int32_t flow = p.flow;
      s.delack = sim_.schedule_in(from_seconds(cfg_.delayed_ack_s),
                                  [this, flow] {
                                    auto fit = flows_.find(flow);
                                    if (fit == flows_.end()) return;
                                    FlowState& fs = fit->second;
                                    fs.delack = Simulator::kInvalidEvent;
                                    if (fs.pending > 0)
                                      emit_ack(fs, flow, fs.last_echo, sim_.now());
                                  });
    }
  } else {
    // A hole opened: ack immediately with the unchanged cumack — this is
    // the duplicate-ACK clock fast retransmit depends on.
    s.ooo.insert(p.seq);
    emit_ack(s, p.flow, p.seq, now);
  }
  return true;
}

void AckPlane::emit_ack(FlowState& s, std::int32_t flow, std::int64_t echo,
                        TimeNs now) {
  s.pending = 0;
  if (s.delack != Simulator::kInvalidEvent) {
    sim_.cancel(s.delack);
    s.delack = Simulator::kInvalidEvent;
  }
  const NodeId sink = s.path.back();
  auto msg = std::make_shared<CtrlMsg>();
  msg->kind = CtrlMsg::Kind::kTransAck;
  msg->origin = sink;
  msg->to = s.path[s.path.size() - 2];
  msg->flow = flow;
  msg->cumack = s.cumack;
  msg->echo_seq = echo;
  if (trace_ != nullptr && trace_->enabled<TraceCat::kTransport>()) {
    msg->span = trace_->new_span();
    trace_->record<TraceCat::kTransport>(
        now, TraceEvent::kTransAckTx, static_cast<std::int16_t>(sink), flow,
        msg->to, static_cast<double>(s.cumack), static_cast<double>(echo),
        msg->span, 0);
  }
  if (check_ != nullptr) check_->on_transport_cumack(sink, flow, s.cumack, now);
  if (DcfMac* mac = mac_of(sink); mac != nullptr) {
    mac->send_ctrl(msg, msg->wire_bytes());
    ++acks_sent_;
  }
}

void AckPlane::on_ctrl_frame(NodeId self, const Frame& f) {
  const CtrlMsg& m = *f.ctrl;
  if (m.kind != CtrlMsg::Kind::kTransAck) return;
  if (m.to != self) return;  // overheard, addressed to another hop
  auto it = flows_.find(m.flow);
  if (it == flows_.end()) return;
  FlowState& s = it->second;
  std::size_t pos = s.path.size();
  for (std::size_t i = 0; i < s.path.size(); ++i)
    if (s.path[i] == self) {
      pos = i;
      break;
    }
  if (pos == s.path.size()) return;  // not on this flow's path
  const TimeNs now = sim_.now();
  if (pos == 0) {
    // Reached the source: hand the ACK clock to the controller.
    std::uint32_t span = 0;
    if (trace_ != nullptr && trace_->enabled<TraceCat::kTransport>()) {
      span = trace_->new_span();
      trace_->record<TraceCat::kTransport>(
          now, TraceEvent::kTransAckRx, static_cast<std::int16_t>(self),
          m.flow, m.origin, static_cast<double>(m.cumack),
          static_cast<double>(m.echo_seq), span, m.span);
    }
    ++acks_delivered_;
    s.source->on_ack(m.cumack, m.echo_seq, now, span);
    return;
  }
  // Relay one hop further upstream.
  auto fwd = std::make_shared<CtrlMsg>(m);
  fwd->to = s.path[pos - 1];
  fwd->span = 0;
  if (trace_ != nullptr && trace_->enabled<TraceCat::kTransport>()) {
    fwd->span = trace_->new_span();
    trace_->record<TraceCat::kTransport>(
        now, TraceEvent::kTransAckTx, static_cast<std::int16_t>(self), m.flow,
        fwd->to, static_cast<double>(m.cumack),
        static_cast<double>(m.echo_seq), fwd->span, m.span);
  }
  if (DcfMac* mac = mac_of(self); mac != nullptr) {
    mac->send_ctrl(fwd, fwd->wire_bytes());
    ++acks_relayed_;
  }
}

}  // namespace e2efa
