// AIMD (Reno-style) congestion control on the elastic base.
//
// Slow start doubles the window per RTT until ssthresh, then congestion
// avoidance adds one packet per window per RTT. A triple duplicate ACK
// halves the window (fast retransmit lives in the base class) — at most
// once per window of data, NewReno-style: further dupack signals inside the
// same recovery window repair the hole without halving again. A
// retransmission timeout collapses the window to one packet and re-enters
// slow start. The source is window-limited (no pacing): packets go out the
// moment the window opens, clocked by returning ACKs.
#pragma once

#include "transport/elastic.hpp"

namespace e2efa {

class AimdTransport final : public ElasticTransport {
 public:
  using ElasticTransport::ElasticTransport;

 protected:
  double cwnd() const override { return cwnd_; }
  void on_newly_acked(std::int64_t newly, const std::optional<SendRecord>& echo,
                      double rtt_s, TimeNs now) override;
  void on_dupack_loss(TimeNs now) override;
  void on_rto_event(TimeNs now) override;

 private:
  // Default member initializers run after the base subobject, so config()
  // is valid here (the inherited constructors leave nothing else to do).
  double cwnd_ = config().initial_cwnd;
  double ssthresh_ = config().max_cwnd_pkts;
  bool in_recovery_ = false;
  std::int64_t recover_seq_ = -1;  ///< Highest seq sent when recovery began.
};

}  // namespace e2efa
