// BBR-style model-based congestion control on the elastic base.
//
// The controller maintains an explicit path model instead of reacting to
// loss: a windowed-max filter over delivery-rate samples estimates the
// bottleneck bandwidth (btl_bw), a windowed-min filter over RTT samples
// estimates the propagation delay (min_rtt), and their product is the BDP.
// Sends are paced at gain · btl_bw with an inflight cap of cwnd_gain · BDP:
//
//   STARTUP   gain 2.885 (doubles the delivery rate per round) until the
//             measured rate stops growing ≥ 25% for three rounds in a row
//             ("full pipe").
//   DRAIN     gain 1/2.885 until inflight falls to the BDP, removing the
//             queue STARTUP built.
//   PROBE_BW  an eight-phase gain cycle [1.25, 0.75, 1, 1, 1, 1, 1, 1],
//             one min_rtt per phase; the entry phase comes from the
//             construction-time RNG draw so concurrent flows probe at
//             different times.
//
// Loss is handled entirely by the base class's retransmit machinery (so
// cumulative ACKs keep advancing); the model itself does not react to it.
#pragma once

#include <deque>

#include "transport/elastic.hpp"

namespace e2efa {

class BbrTransport final : public ElasticTransport {
 public:
  using ElasticTransport::ElasticTransport;

 protected:
  double cwnd() const override;
  double pacing_interval_s() const override;
  void on_newly_acked(std::int64_t newly, const std::optional<SendRecord>& echo,
                      double rtt_s, TimeNs now) override;
  void on_dupack_loss(TimeNs) override {}  // repair only, no window reaction
  void on_rto_event(TimeNs) override {}

 private:
  enum class State { kStartup, kDrain, kProbeBw };

  struct Sample {
    double v = 0.0;
    TimeNs t = 0;
  };

  double btl_bw_pps() const;  ///< Windowed max (prior before any sample).
  double min_rtt_s() const;   ///< Windowed min (0.2 s before any sample).
  double bdp_pkts() const { return btl_bw_pps() * min_rtt_s(); }
  double pacing_gain() const;
  void advance_state(TimeNs now);

  State state_ = State::kStartup;
  std::deque<Sample> bw_max_;   ///< Decreasing values; front = current max.
  std::deque<Sample> rtt_min_;  ///< Increasing values; front = current min.

  // Round accounting (a round ends when cumack passes the highest sequence
  // sent at the round's start) drives full-pipe detection.
  std::int64_t round_end_seq_ = -1;
  double full_bw_pps_ = 0.0;
  int full_bw_rounds_ = 0;

  int cycle_idx_ = 0;
  TimeNs cycle_start_ = 0;
};

}  // namespace e2efa
