#include "transport/aimd.hpp"

#include <algorithm>

namespace e2efa {

void AimdTransport::on_newly_acked(std::int64_t newly,
                                   const std::optional<SendRecord>& /*echo*/,
                                   double /*rtt_s*/, TimeNs /*now*/) {
  if (in_recovery_) {
    // Partial ACKs during recovery keep the clock running but do not grow
    // the window; recovery ends once the loss window is fully acked.
    if (cumack() > recover_seq_) in_recovery_ = false;
    return;
  }
  const double n = static_cast<double>(newly);
  if (cwnd_ < ssthresh_)
    cwnd_ = std::min(cwnd_ + n, config().max_cwnd_pkts);  // slow start
  else
    cwnd_ = std::min(cwnd_ + n / cwnd_, config().max_cwnd_pkts);
}

void AimdTransport::on_dupack_loss(TimeNs /*now*/) {
  if (in_recovery_) return;  // one multiplicative decrease per window
  in_recovery_ = true;
  recover_seq_ = max_sent();
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = ssthresh_;
}

void AimdTransport::on_rto_event(TimeNs /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  // Collapse to 2, not Reno's 1: with the ACK path riding fire-and-forget
  // control frames, a single in-flight packet makes every lost ACK a full
  // RTO stall; two keep an ACK clock ticking at quadratically lower odds
  // of silence.
  cwnd_ = 2.0;
  in_recovery_ = false;
}

}  // namespace e2efa
