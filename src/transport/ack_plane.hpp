// Sink-side ACK generation and hop-by-hop return routing for the elastic
// transport — the stack's first end-to-end feedback path.
//
// Data packets only ever flow source → sink; nothing in the MAC or the
// routing plane carries anything back. The AckPlane closes the loop with
// the existing control-frame machinery: the sink emits a kTransAck CtrlMsg
// (cumulative ack + echoed probe sequence) as a broadcast control frame
// addressed hop-by-hop to the previous node on the flow's path, each relay
// re-emits it one hop further upstream, and the source's MAC hands it to
// the flow's TransportSource. Control frames are fire-and-forget (no MAC
// ACK), so individual ACKs can vanish — cumulative acking makes any later
// ACK carry the same information, exactly like the HELLO/RATE plane heals
// by re-advertisement.
//
// Delayed ACKs bound the overhead: every second in-order delivery acks
// immediately, a straggler acks after delayed_ack_s; out-of-order and
// duplicate deliveries always ack immediately, because they *are* the
// duplicate-ACK loss signal and must not be delayed.
//
// Tracing: every emission owns a kTransAckTx span parented on the record
// that caused it (the sink's on the delivery chain, each relay's on the
// upstream emission), and the source's kTransAckRx span is handed to the
// TransportSource so the sends it clocks out parent onto the ACK — the
// "spans parented per ACK clock" causal chain.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "mac/dcf_mac.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "transport/transport.hpp"

namespace e2efa {

class AckPlane {
 public:
  AckPlane(Simulator& sim, const TransportConfig& cfg, TraceSink* trace,
           CheckContext* check)
      : sim_(sim), cfg_(cfg), trace_(trace), check_(check) {}

  /// Registers the MAC the plane may emit control frames from (every node
  /// on a registered flow's path).
  void register_mac(NodeId n, DcfMac* mac) { macs_[n] = mac; }

  /// Registers one elastic flow: its node path (source first) and the
  /// source to deliver arriving ACKs to.
  void add_flow(std::int32_t flow, std::vector<NodeId> path,
                TransportSource* source);

  /// NodeStack sink hook: a data packet completed its last hop. Returns
  /// true when the sequence is fresh (first arrival at the sink) — the
  /// stack counts end-to-end stats only for fresh deliveries. Emits /
  /// schedules the cumulative ACK as a side effect.
  bool on_final_delivery(const Packet& p, TimeNs now);

  /// MAC transport-listener entry: node `self` cleanly received a control
  /// frame carrying a kTransAck payload. Relays or delivers it.
  void on_ctrl_frame(NodeId self, const Frame& f);

  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t acks_relayed() const { return acks_relayed_; }
  std::uint64_t acks_delivered() const { return acks_delivered_; }

 private:
  struct FlowState {
    std::vector<NodeId> path;
    TransportSource* source = nullptr;
    std::int64_t cumack = -1;
    std::set<std::int64_t> ooo;  ///< Delivered above the cumack hole.
    int pending = 0;             ///< In-order deliveries not yet acked.
    std::int64_t last_echo = -1;
    Simulator::EventId delack = Simulator::kInvalidEvent;
  };

  void emit_ack(FlowState& s, std::int32_t flow, std::int64_t echo, TimeNs now);
  DcfMac* mac_of(NodeId n) const {
    auto it = macs_.find(n);
    return it == macs_.end() ? nullptr : it->second;
  }

  Simulator& sim_;
  TransportConfig cfg_;
  TraceSink* trace_;
  CheckContext* check_;
  std::unordered_map<NodeId, DcfMac*> macs_;
  std::unordered_map<std::int32_t, FlowState> flows_;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t acks_relayed_ = 0;
  std::uint64_t acks_delivered_ = 0;
};

}  // namespace e2efa
