#include "check/check.hpp"

#include <algorithm>
#include <cmath>

#include "contention/contention_graph.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace e2efa {

const char* to_string(CheckViolation::Category c) {
  switch (c) {
    case CheckViolation::Category::kMac: return "mac";
    case CheckViolation::Category::kConservation: return "conservation";
    case CheckViolation::Category::kSched: return "sched";
    case CheckViolation::Category::kQueue: return "queue";
    case CheckViolation::Category::kAlloc: return "alloc";
    case CheckViolation::Category::kAdmission: return "admission";
    case CheckViolation::Category::kTransport: return "transport";
  }
  return "?";
}

CheckContext::CheckContext(CheckConfig cfg) : cfg_(cfg) {
  E2EFA_ASSERT(cfg_.max_violations >= 1);
  E2EFA_ASSERT(cfg_.alloc_eps >= 0.0);
}

void CheckContext::begin_run(const CheckRunInfo& info) {
  E2EFA_ASSERT(info.node_count >= 1);
  info_ = info;
  mac_.assign(static_cast<std::size_t>(info.node_count), NodeMacState{});
  lane_watermark_.clear();
  vclock_floor_.assign(static_cast<std::size_t>(info.node_count), 0.0);
  const std::size_t S = info_.subflows.size();
  offered_.assign(S, 0);
  accepted_.assign(S, 0);
  rejected_.assign(S, 0);
  sent_.assign(S, 0);
  mac_dropped_.assign(S, 0);
  delivered_.assign(S, 0);
  active_flow_.clear();
  transport_.clear();
}

// ------------------------------------------------------- admission oracle

namespace {
// Lanes of inactive flows idle at the runner's / control plane's 1e-6
// floor; anything above this ceiling on an inactive lane is a real rate.
constexpr double kIdleFloorCeiling = 2e-6;
}  // namespace

void CheckContext::on_admission(std::int32_t flow, bool admitted,
                                double worst_load, bool distributed_gate,
                                TimeNs now) {
  if (!cfg_.admission) return;
  const char* gate = distributed_gate ? "distributed" : "centralized";
  if (admitted && worst_load > 1.0 + cfg_.alloc_eps) {
    fail(CheckViolation::Category::kAdmission, kInvalidNode, now,
         "flow " + std::to_string(flow) + " admitted by the " + gate +
             " gate with infeasible clique load " + std::to_string(worst_load));
  } else if (!admitted && worst_load <= 1.0 + cfg_.alloc_eps) {
    fail(CheckViolation::Category::kAdmission, kInvalidNode, now,
         "flow " + std::to_string(flow) + " rejected by the " + gate +
             " gate at feasible clique load " + std::to_string(worst_load));
  }
}

void CheckContext::note_active_flows(const std::vector<char>& flow_active,
                                     TimeNs now) {
  (void)now;
  active_flow_ = flow_active;
}

void CheckContext::on_rate_applied(NodeId n, std::int32_t subflow, double share,
                                   TimeNs now) {
  if (!cfg_.admission) return;
  if (active_flow_.empty()) return;  // static run: every flow is active
  const auto s = static_cast<std::size_t>(subflow);
  if (s >= info_.subflows.size()) return;
  const std::int32_t flow = info_.subflows[s].flow;
  if (flow < 0 || static_cast<std::size_t>(flow) >= active_flow_.size()) return;
  if (!active_flow_[static_cast<std::size_t>(flow)] &&
      share > kIdleFloorCeiling) {
    fail(CheckViolation::Category::kAdmission, n, now,
         "stale rate " + std::to_string(share) + " applied to subflow " +
             std::to_string(subflow) + " of inactive flow " +
             std::to_string(flow));
  }
}

void CheckContext::fail(CheckViolation::Category cat, NodeId node, TimeNs now,
                        std::string message) {
  ++total_violations_;
  // Flight recorder: latch the armed sink's recent records at the *first*
  // violation, while the ring still shows the window leading up to it.
  if (total_violations_ == 1 && flight_sink_ != nullptr)
    flight_records_ = flight_sink_->recent_records();
  if (static_cast<int>(violations_.size()) < cfg_.max_violations)
    violations_.push_back({cat, to_seconds(now), node, std::move(message)});
}

int CheckContext::expected_capacity() const {
  return cfg_.queue_capacity_override >= 0 ? cfg_.queue_capacity_override
                                           : info_.queue_capacity;
}

int CheckContext::escalated_window(int cw_min, int retries) const {
  const int k = std::min(retries, 16);
  const long long w = (static_cast<long long>(cw_min) + 1) * (1LL << k) - 1;
  return static_cast<int>(std::min<long long>(w, info_.cw_max));
}

// ------------------------------------------------------------- PHY / MAC

void CheckContext::on_frame_transmit(const Frame& f, TimeNs now) {
  if (!cfg_.mac) return;
  E2EFA_ASSERT(f.tx >= 0 && f.tx < info_.node_count);
  NodeMacState& s = mac_[static_cast<std::size_t>(f.tx)];

  // Recency window for responder frames: the MAC schedules CTS, DATA, and
  // ACK exactly one SIFS after the frame they answer.
  const TimeNs answer_window = info_.sifs + info_.slot;
  auto answered = [&](const std::unordered_map<NodeId, TimeNs>& from) {
    const auto it = from.find(f.rx);
    return it != from.end() && now - it->second <= answer_window;
  };

  // Contention-initiated frames must respect the virtual carrier sense this
  // context derived from its own overheard-frame model. (The MAC's rule is
  // strictly stronger: NAV expired a full DIFS+slot before transmitting.)
  const bool contention_initiated =
      f.type == FrameType::kRts || f.type == FrameType::kCtrl ||
      (f.type == FrameType::kData && !info_.use_rts_cts);
  if (contention_initiated && s.nav_until > now)
    fail(CheckViolation::Category::kMac, f.tx, now,
         strformat("%s transmitted %.3f us before the NAV reservation expires",
                   f.type == FrameType::kRts    ? "RTS"
                   : f.type == FrameType::kCtrl ? "CTRL"
                                                : "DATA",
                   static_cast<double>(s.nav_until - now) * 1e-3));

  switch (f.type) {
    case FrameType::kRts:
      if (!info_.use_rts_cts)
        fail(CheckViolation::Category::kMac, f.tx, now,
             "RTS transmitted in basic-access mode");
      break;
    case FrameType::kCts:
      if (!info_.use_rts_cts)
        fail(CheckViolation::Category::kMac, f.tx, now,
             "CTS transmitted in basic-access mode");
      else if (!answered(s.rts_from))
        fail(CheckViolation::Category::kMac, f.tx, now,
             strformat("CTS to node %d without an RTS from it within SIFS",
                       f.rx));
      break;
    case FrameType::kData:
      if (info_.use_rts_cts && !answered(s.cts_from))
        fail(CheckViolation::Category::kMac, f.tx, now,
             strformat("DATA to node %d without a prior RTS/CTS handshake "
                       "on that link",
                       f.rx));
      break;
    case FrameType::kAck:
      if (!answered(s.data_from))
        fail(CheckViolation::Category::kMac, f.tx, now,
             strformat("ACK to node %d without a DATA from it within SIFS",
                       f.rx));
      break;
    case FrameType::kCtrl:
      break;  // broadcast, no handshake role
  }
}

void CheckContext::on_frame_receive(NodeId rx_node, const Frame& f, TimeNs end) {
  if (!cfg_.mac) return;
  E2EFA_ASSERT(rx_node >= 0 && rx_node < info_.node_count);
  NodeMacState& s = mac_[static_cast<std::size_t>(rx_node)];
  if (f.type == FrameType::kCtrl) return;  // no NAV, no handshake role
  if (f.rx != rx_node) {
    // Overheard: mirror the MAC's virtual-carrier-sense update.
    s.nav_until = std::max(s.nav_until, end + f.nav);
    return;
  }
  switch (f.type) {
    case FrameType::kRts: s.rts_from[f.tx] = end; break;
    case FrameType::kCts: s.cts_from[f.tx] = end; break;
    case FrameType::kData: s.data_from[f.tx] = end; break;
    default: break;
  }
}

void CheckContext::on_backoff_draw(NodeId n, int slots, int retries, double lag,
                                   bool ctrl_only, TimeNs now) {
  if (!cfg_.mac) return;
  if (ctrl_only) {
    if (slots < 1 || slots > info_.ctrl_cw + 1)
      fail(CheckViolation::Category::kMac, n, now,
           strformat("control backoff draw %d outside [1, %d]", slots,
                     info_.ctrl_cw + 1));
    return;
  }
  // The scaled-CW ablation widens the base window by 1/node-share; only the
  // cw_max envelope is oracle-checkable there. Everything else draws from
  // [0, CW(retries) + max(Q, R, 0)], capped like TagBackoff.
  const double base =
      info_.scaled_cw ? static_cast<double>(info_.cw_max)
                      : static_cast<double>(escalated_window(info_.cw_min, retries));
  const long long max_slots =
      std::llround(std::min(base + std::max(lag, 0.0), 16383.0));
  if (slots < 0 || slots > max_slots)
    fail(CheckViolation::Category::kMac, n, now,
         strformat("backoff draw %d outside [0, %lld] (retries %d, lag %.2f)",
                   slots, max_slots, retries, lag));
}

// ------------------------------------------------------ queue / scheduler

void CheckContext::on_lane_enqueue(NodeId n, std::int32_t subflow, int depth,
                                   TimeNs now) {
  if (!cfg_.queue) return;
  if (depth > expected_capacity())
    fail(CheckViolation::Category::kQueue, n, now,
         strformat("subflow %d lane depth %d exceeds capacity %d", subflow,
                   depth, expected_capacity()));
}

void CheckContext::on_fifo_enqueue(NodeId n, int depth, TimeNs now) {
  if (!cfg_.queue) return;
  if (depth > expected_capacity())
    fail(CheckViolation::Category::kQueue, n, now,
         strformat("FIFO depth %d exceeds capacity %d", depth,
                   expected_capacity()));
}

void CheckContext::on_lane_serve(NodeId n, std::int32_t subflow,
                                 double internal_finish, TimeNs now) {
  if (!cfg_.sched) return;
  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(n))
                             << 32) |
                            static_cast<std::uint32_t>(subflow);
  const auto it = lane_watermark_.find(key);
  if (it != lane_watermark_.end() && internal_finish < it->second - 1e-9)
    fail(CheckViolation::Category::kSched, n, now,
         strformat("subflow %d served with internal finish tag %.6f below "
                   "the previous %.6f (no share update in between)",
                   subflow, internal_finish, it->second));
  lane_watermark_[key] = internal_finish;
}

void CheckContext::on_share_update(NodeId n, std::int32_t subflow) {
  // A share change legitimately re-derives tags from the current virtual
  // clock (they may drop); restart the monotonicity watermark.
  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(n))
                             << 32) |
                            static_cast<std::uint32_t>(subflow);
  lane_watermark_.erase(key);
}

void CheckContext::on_vclock(NodeId n, double prev, double next, TimeNs now) {
  if (!cfg_.sched) return;
  if (next < prev - 1e-9)
    fail(CheckViolation::Category::kSched, n, now,
         strformat("virtual clock moved backwards: %.6f -> %.6f", prev, next));
  double& floor = vclock_floor_[static_cast<std::size_t>(n)];
  if (next < floor - 1e-9)
    fail(CheckViolation::Category::kSched, n, now,
         strformat("virtual clock %.6f below the node's watermark %.6f", next,
                   floor));
  floor = std::max(floor, next);
}

// ---------------------------------------------------------- conservation

void CheckContext::on_offered(std::int32_t subflow) {
  if (cfg_.conservation) ++offered_[static_cast<std::size_t>(subflow)];
}
void CheckContext::on_accepted(std::int32_t subflow) {
  if (cfg_.conservation) ++accepted_[static_cast<std::size_t>(subflow)];
}
void CheckContext::on_rejected(std::int32_t subflow) {
  if (cfg_.conservation) ++rejected_[static_cast<std::size_t>(subflow)];
}
void CheckContext::on_sent(std::int32_t subflow) {
  if (cfg_.conservation) ++sent_[static_cast<std::size_t>(subflow)];
}
void CheckContext::on_mac_dropped(std::int32_t subflow) {
  if (cfg_.conservation) ++mac_dropped_[static_cast<std::size_t>(subflow)];
}
void CheckContext::on_delivered(std::int32_t subflow) {
  if (cfg_.conservation) ++delivered_[static_cast<std::size_t>(subflow)];
}

void CheckContext::finalize(const std::vector<int>& backlog_per_node, TimeNs now) {
  if (!cfg_.conservation) return;
  E2EFA_ASSERT(static_cast<int>(backlog_per_node.size()) == info_.node_count);
  const std::size_t S = info_.subflows.size();

  // Per-subflow ledger: every offer is either accepted or drop-tailed, a
  // forwarded offer exists for exactly every unique upstream delivery, and
  // unique deliveries never exceed accepts (each accepted packet can be
  // delivered in order at most once).
  for (std::size_t s = 0; s < S; ++s) {
    const CheckRunInfo::SubflowInfo& m = info_.subflows[s];
    const std::int32_t id = static_cast<std::int32_t>(s);
    if (offered_[s] != accepted_[s] + rejected_[s])
      fail(CheckViolation::Category::kConservation, m.src, now,
           strformat("subflow %d: offered %lld != accepted %lld + rejected %lld",
                     id, static_cast<long long>(offered_[s]),
                     static_cast<long long>(accepted_[s]),
                     static_cast<long long>(rejected_[s])));
    if (m.prev_subflow >= 0) {
      const std::int64_t up = delivered_[static_cast<std::size_t>(m.prev_subflow)];
      if (offered_[s] != up)
        fail(CheckViolation::Category::kConservation, m.src, now,
             strformat("subflow %d: offered %lld != upstream subflow %d "
                       "deliveries %lld",
                       id, static_cast<long long>(offered_[s]), m.prev_subflow,
                       static_cast<long long>(up)));
    }
    if (delivered_[s] > accepted_[s])
      fail(CheckViolation::Category::kConservation, m.dst, now,
           strformat("subflow %d: %lld unique deliveries exceed %lld accepts",
                     id, static_cast<long long>(delivered_[s]),
                     static_cast<long long>(accepted_[s])));
  }

  // Per-node conservation: everything a node's queues accepted either left
  // via an ACK-confirmed pop, was dropped at the retry limit, or is still
  // buffered when the run ends.
  std::vector<std::int64_t> in(static_cast<std::size_t>(info_.node_count), 0);
  std::vector<std::int64_t> gone(static_cast<std::size_t>(info_.node_count), 0);
  for (std::size_t s = 0; s < S; ++s) {
    const std::size_t n = static_cast<std::size_t>(info_.subflows[s].src);
    in[n] += accepted_[s];
    gone[n] += sent_[s] + mac_dropped_[s];
  }
  for (int n = 0; n < info_.node_count; ++n) {
    const std::int64_t queued = backlog_per_node[static_cast<std::size_t>(n)];
    if (in[static_cast<std::size_t>(n)] != gone[static_cast<std::size_t>(n)] + queued)
      fail(CheckViolation::Category::kConservation, n, now,
           strformat("node %d: accepted %lld != sent+dropped %lld + queued %lld",
                     n, static_cast<long long>(in[static_cast<std::size_t>(n)]),
                     static_cast<long long>(gone[static_cast<std::size_t>(n)]),
                     static_cast<long long>(queued)));
  }
}

// ------------------------------------------------------------- transport

void CheckContext::on_transport_send(NodeId n, std::int32_t flow,
                                     std::int64_t seq, bool retransmit,
                                     double cwnd, TimeNs now) {
  if (!cfg_.transport) return;
  TransportFlowState& s = transport_[flow];
  if (!retransmit) {
    if (seq <= s.max_sent)
      fail(CheckViolation::Category::kTransport, n, now,
           strformat("flow %d: new send seq %lld does not extend the sequence "
                     "space (max sent %lld)",
                     flow, static_cast<long long>(seq),
                     static_cast<long long>(s.max_sent)));
    s.max_sent = std::max(s.max_sent, seq);
    s.outstanding.insert(seq);
    // The oracle re-derives inflight from its own ledger; the packet just
    // sent is already in it, so the bound is cwnd itself (floor semantics:
    // a fractional window admits its floor + the send filling it).
    if (static_cast<double>(s.outstanding.size()) > cwnd + 1e-6)
      fail(CheckViolation::Category::kTransport, n, now,
           strformat("flow %d: %zu packets in flight exceed cwnd %.3f",
                     flow, s.outstanding.size(), cwnd));
    return;
  }
  if (seq <= s.src_cum || s.outstanding.count(seq) == 0) {
    fail(CheckViolation::Category::kTransport, n, now,
         strformat("flow %d: retransmit of seq %lld which is not outstanding "
                   "(cumack %lld)",
                   flow, static_cast<long long>(seq),
                   static_cast<long long>(s.src_cum)));
    return;
  }
  // Loss evidence: a pending timeout, or a full dupack threshold since the
  // last evidence-consuming retransmission.
  if (s.timeout_evidence > 0) {
    --s.timeout_evidence;
  } else if (s.dupacks >= info_.transport_dupack_threshold) {
    s.dupacks = 0;
  } else {
    fail(CheckViolation::Category::kTransport, n, now,
         strformat("flow %d: seq %lld retransmitted without loss evidence "
                   "(%d dupacks, no timeout)",
                   flow, static_cast<long long>(seq), s.dupacks));
  }
}

void CheckContext::on_transport_ack(NodeId n, std::int32_t flow,
                                    std::int64_t cumack, TimeNs now) {
  if (!cfg_.transport) return;
  (void)n;
  (void)now;
  TransportFlowState& s = transport_[flow];
  if (cumack > s.src_cum) {
    s.src_cum = cumack;
    s.dupacks = 0;
    s.outstanding.erase(s.outstanding.begin(),
                        s.outstanding.upper_bound(cumack));
  } else if (cumack == s.src_cum) {
    ++s.dupacks;
  }
}

void CheckContext::on_transport_timeout(NodeId n, std::int32_t flow,
                                        TimeNs now) {
  if (!cfg_.transport) return;
  (void)n;
  (void)now;
  ++transport_[flow].timeout_evidence;
}

void CheckContext::on_transport_cumack(NodeId n, std::int32_t flow,
                                       std::int64_t cumack, TimeNs now) {
  if (!cfg_.transport) return;
  TransportFlowState& s = transport_[flow];
  if (cumack < s.sink_cum)
    fail(CheckViolation::Category::kTransport, n, now,
         strformat("flow %d: sink cumulative ack moved backwards: %lld -> %lld",
                   flow, static_cast<long long>(s.sink_cum),
                   static_cast<long long>(cumack)));
  s.sink_cum = std::max(s.sink_cum, cumack);
}

// --------------------------------------------------------------- phase 1

void CheckContext::check_allocation(const ContentionGraph& g, const Allocation& a,
                                    bool expect_floor, bool strict_clique,
                                    double t_s) {
  if (!cfg_.alloc) return;
  const TimeNs t = from_seconds(t_s);
  // Globally-solved allocations must fit every clique exactly. The
  // distributed family (Sec. IV-B) solves one local LP per source with
  // partial knowledge, and the per-source optima need not agree — mild
  // clique oversubscription is by design, and the MAC absorbs it (tags
  // throttle proportionally). Empirically the worst load over 3000 random
  // weighted topologies is 1.46, so anything past the envelope below is a
  // genuine allocator regression, not local-knowledge slack.
  const double cap =
      strict_clique ? 1.0 + cfg_.alloc_eps : cfg_.distributed_clique_envelope;
  const double load = max_clique_load(g, a.subflow_share);
  if (load > cap)
    fail(CheckViolation::Category::kAlloc, kInvalidNode, t,
         strformat("clique capacity violated: max clique load %.9f > %g",
                   load, cap));
  if (!expect_floor) return;
  if (!satisfies_basic_fairness(g, a.flow_share, cfg_.alloc_eps)) {
    // Name the worst offender for the report.
    const std::vector<double> floor = basic_shares(g);
    double worst = 0.0;
    FlowId worst_flow = -1;
    for (FlowId f = 0; f < g.flows().flow_count(); ++f) {
      const double deficit = floor[static_cast<std::size_t>(f)] -
                             a.flow_share[static_cast<std::size_t>(f)];
      if (deficit > worst) {
        worst = deficit;
        worst_flow = f;
      }
    }
    fail(CheckViolation::Category::kAlloc, kInvalidNode, t,
         strformat("basic fairness floor violated: flow %d is %.9f below its "
                   "basic share",
                   worst_flow, worst));
  }
}

// ---------------------------------------------------------------- report

std::string CheckContext::report() const {
  if (ok()) return "";
  std::string out = strformat("%lld invariant violation(s):\n",
                              static_cast<long long>(total_violations_));
  for (const CheckViolation& v : violations_) {
    out += strformat("  [%s] t=%.6fs", to_string(v.category), v.t_s);
    if (v.node >= 0) out += strformat(" node %d", v.node);
    out += ": " + v.message + "\n";
  }
  if (total_violations_ > static_cast<std::int64_t>(violations_.size()))
    out += strformat("  ... and %lld more (recording capped at %d)\n",
                     static_cast<long long>(total_violations_) -
                         static_cast<long long>(violations_.size()),
                     cfg_.max_violations);
  return out;
}

void CheckContext::clear() {
  total_violations_ = 0;
  violations_.clear();
  flight_records_.clear();
}

}  // namespace e2efa
