// Always-on-compilable invariant oracles for the whole stack.
//
// A CheckContext is an *independent observer*: components report what they
// did (frames transmitted and cleanly received, backoff draws, queue
// depths, tags served, packets moved between layers) and the context
// re-derives the protocol's invariants from its own parallel state — a NAV
// model built only from overheard frames, an RTS/CTS handshake ledger, SFQ
// tag watermarks, warmup-free conservation counters. Any disagreement is
// recorded as a CheckViolation instead of asserting, so a fuzzer can
// collect, shrink, and replay failing scenarios.
//
// Wiring follows the TraceSink idiom (src/obs/trace.hpp): SimConfig carries
// a `CheckContext* check` that defaults to null, every instrumented site
// pays one pointer test, and checks never mutate simulator state or draw
// randomness — a run with checks enabled produces the bit-identical
// RunResult and trajectory of a run without them.
//
// Invariants covered (CheckConfig category toggles):
//   mac          NAV / virtual-carrier-sense consistency (no contention-
//                initiated frame while the checker's own NAV model says the
//                medium is reserved), no DATA without a prior RTS/CTS
//                handshake on that link, responder frames (CTS/ACK) only
//                SIFS after the frame they answer, backoff draws within
//                [0, CW(retries) + max(Q, R, 0)] (capped like TagBackoff).
//   conservation per-node packet conservation: accepted = sent + dropped +
//                still queued; per-hop: offered(hop h+1) = unique
//                deliveries(hop h); unique deliveries never exceed accepts.
//   sched        per-lane internal-finish-tag monotonicity between share
//                updates; per-node virtual-clock monotonicity.
//   queue        per-queue depth never exceeds the configured capacity.
//   alloc        phase-1 post-solve: clique feasibility Σ r̂ <= B and the
//                basic fairness floor r̂_i >= w_i·B / Σ_j w_j·v_j with
//                v_j = min(l_j, 3) (protocols that guarantee it).
//   admission    churn safety: an admitted arrival never carries a clique
//                load past feasibility, a rejection is never issued against
//                a feasible load (false reject), and no lane of a departed
//                (inactive) flow is ever re-raised above the idle floor by
//                a late RATE message (the no-stale-rate invariant).
//   transport    elastic-source sanity: the sink's cumulative ACK stream is
//                monotone per flow, inflight never exceeds the window at a
//                send, and a sequence is only ever retransmitted with loss
//                evidence in hand (a timeout, or a full dupack threshold
//                since the last retransmission).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/allocation.hpp"
#include "obs/trace.hpp"
#include "phy/frame.hpp"
#include "topology/topology.hpp"
#include "util/time.hpp"

namespace e2efa {

/// Clique-load ceiling the alloc oracle grants the *distributed* phase-1
/// family: each source solves its own local LP from partial knowledge, so
/// the combined shares can oversubscribe a clique (worst observed over
/// 3000 random weighted topologies: 1.46; the MAC's tag feedback absorbs
/// the excess at run time). Loads past this envelope mean the allocator
/// itself regressed.
inline constexpr double kDistributedCliqueEnvelope = 1.75;

struct CheckConfig {
  bool mac = true;
  bool conservation = true;
  bool sched = true;
  bool queue = true;
  bool alloc = true;
  bool admission = true;
  bool transport = true;
  /// Violations beyond this are counted but not stored (memory bound under
  /// a genuinely broken invariant firing per packet).
  int max_violations = 32;
  /// Slack for the floating-point phase-1 checks.
  double alloc_eps = 1e-6;
  /// Clique-load ceiling granted to the distributed phase-1 family
  /// (kDistributedCliqueEnvelope was calibrated on paper-sized
  /// topologies). City-scale sweeps see more sources tiling a clique with
  /// disjoint knowledge horizons, so their by-design slack is larger —
  /// the synthetic-scale fuzz mode widens this.
  double distributed_clique_envelope = kDistributedCliqueEnvelope;
  /// When >= 0, the queue-capacity oracle expects this capacity instead of
  /// the SimConfig's. Setting it to capacity − 1 is the fuzzer's deliberate
  /// "injected bug": a correct stack then trips the oracle, proving the
  /// whole find-shrink-replay pipeline end to end.
  int queue_capacity_override = -1;
};

struct CheckViolation {
  enum class Category {
    kMac,
    kConservation,
    kSched,
    kQueue,
    kAlloc,
    kAdmission,
    kTransport,
  };
  Category category = Category::kMac;
  double t_s = 0.0;            ///< Simulation time of the violation.
  NodeId node = kInvalidNode;  ///< Offending node (-1 when not node-local).
  std::string message;
};

const char* to_string(CheckViolation::Category c);

/// Everything the oracles need to know about the run, latched by the
/// runner before the simulation starts (begin_run).
struct CheckRunInfo {
  int node_count = 0;
  int cw_min = 31;
  int cw_max = 1023;
  int ctrl_cw = 31;
  bool use_rts_cts = true;
  /// k2paStaticCw widens the base window by 1/node-share (still <= cw_max);
  /// the backoff oracle then only enforces the cw_max envelope.
  bool scaled_cw = false;
  int queue_capacity = 50;
  TimeNs slot = 20 * kMicrosecond;
  TimeNs sifs = 10 * kMicrosecond;
  /// Dupack threshold the transport oracle holds sources to (the fast-
  /// retransmit evidence bar; TransportConfig::dupack_threshold).
  int transport_dupack_threshold = 3;
  /// Per-subflow forwarding metadata (sim subflow ids) for conservation.
  struct SubflowInfo {
    std::int32_t flow = -1;
    int hop = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    bool last_hop = false;
    std::int32_t prev_subflow = -1;  ///< Upstream subflow id (-1 at hop 0).
  };
  std::vector<SubflowInfo> subflows;
};

class CheckContext {
 public:
  explicit CheckContext(CheckConfig cfg = {});

  /// Latches run parameters and sizes the counters. Must be called before
  /// any hook fires; calling it again resets all oracle state (a context
  /// can be reused across runs, but violations accumulate until clear()).
  void begin_run(const CheckRunInfo& info);

  // --- PHY/MAC hooks (Channel + DcfMac) --------------------------------
  /// Every transmission start, including RF-silent ones from crashed nodes
  /// (their MAC still follows the protocol).
  void on_frame_transmit(const Frame& f, TimeNs now);
  /// Every clean reception delivered to node `rx_node`'s MAC.
  void on_frame_receive(NodeId rx_node, const Frame& f, TimeNs end);
  /// Every backoff draw: `slots` drawn with `retries` prior failures;
  /// `lag` = max(Q, R, 0) from the tag agent (0 without tags); `ctrl_only`
  /// marks the control-frame-backlog draw from [1, ctrl_cw + 1].
  void on_backoff_draw(NodeId n, int slots, int retries, double lag,
                       bool ctrl_only, TimeNs now);

  // --- Queue/scheduler hooks (TagScheduler + FifoQueue) ----------------
  /// Depth of one scheduler lane right after an accepted enqueue.
  void on_lane_enqueue(NodeId n, std::int32_t subflow, int depth, TimeNs now);
  /// Total FIFO depth right after an accepted enqueue.
  void on_fifo_enqueue(NodeId n, int depth, TimeNs now);
  /// A lane's head was popped for service with this internal finish tag.
  void on_lane_serve(NodeId n, std::int32_t subflow, double internal_finish,
                     TimeNs now);
  /// The lane's share changed: tags may legitimately restart lower.
  void on_share_update(NodeId n, std::int32_t subflow);
  /// The node's virtual clock moved from `prev` to `next`.
  void on_vclock(NodeId n, double prev, double next, TimeNs now);

  // --- Conservation hooks (NodeStack) ----------------------------------
  void on_offered(std::int32_t subflow);    ///< Packet offered to a queue.
  void on_accepted(std::int32_t subflow);   ///< ... and accepted.
  void on_rejected(std::int32_t subflow);   ///< ... or drop-tailed.
  void on_sent(std::int32_t subflow);       ///< ACK confirmed, head popped.
  void on_mac_dropped(std::int32_t subflow);  ///< Retry limit exhausted.
  void on_delivered(std::int32_t subflow);  ///< Unique in-order delivery.

  // --- Admission / churn hooks (runner + AllocAgent) -------------------
  /// The runner's authoritative admission decision for one arrival.
  /// Violations: admitted while worst_load exceeds feasibility (+eps), or
  /// rejected while the load was feasible (false reject).
  /// `distributed_gate` only labels the message (which evaluator decided).
  void on_admission(std::int32_t flow, bool admitted, double worst_load,
                    bool distributed_gate, TimeNs now);
  /// Epoch-boundary activity snapshot (sim flow ids). The runner calls this
  /// *before* the control plane reacts to the boundary, so any lane update
  /// the agents make is judged against the current population.
  void note_active_flows(const std::vector<char>& flow_active, TimeNs now);
  /// An AllocAgent applied `share` to node n's lane of `subflow`.
  /// Violation: the subflow's flow is inactive and the share is above the
  /// idle floor — a stale RATE resurrected a departed flow's lane.
  void on_rate_applied(NodeId n, std::int32_t subflow, double share, TimeNs now);

  // --- Transport hooks (ElasticTransport + AckPlane) -------------------
  /// A source put sequence `seq` on the wire. New sends must extend the
  /// sequence space and keep inflight <= cwnd (+1: the packet being sent);
  /// retransmissions must target an un-acked sequence *and* consume loss
  /// evidence — a pending timeout, or `transport_dupack_threshold` dupacks
  /// accumulated since the last evidence-consuming retransmission.
  void on_transport_send(NodeId n, std::int32_t flow, std::int64_t seq,
                         bool retransmit, double cwnd, TimeNs now);
  /// An ACK arrived back at the source (advancing or duplicate).
  void on_transport_ack(NodeId n, std::int32_t flow, std::int64_t cumack,
                        TimeNs now);
  /// The source's RTO fired (evidence for the retransmission that follows).
  void on_transport_timeout(NodeId n, std::int32_t flow, TimeNs now);
  /// The sink emitted a cumulative ACK. Violation: it moved backwards.
  void on_transport_cumack(NodeId n, std::int32_t flow, std::int64_t cumack,
                           TimeNs now);

  // --- Phase-1 post-solve hook (runner) --------------------------------
  /// `expect_floor` asserts the basic-fairness floor in addition to clique
  /// feasibility (protocols whose solve guarantees it). `strict_clique`
  /// demands max clique load <= 1 + eps (globally-solved allocations);
  /// false relaxes it to kDistributedCliqueEnvelope — the Sec. IV-B
  /// distributed solve works from per-source partial knowledge, and the
  /// independent local optima may mildly oversubscribe a clique by design.
  void check_allocation(const ContentionGraph& g, const Allocation& a,
                        bool expect_floor, bool strict_clique, double t_s);

  /// End of run: closes the conservation ledger against the final per-node
  /// backlogs (indexed by node id).
  void finalize(const std::vector<int>& backlog_per_node, TimeNs now);

  // --- Flight recorder -------------------------------------------------
  /// Arms the flight recorder: at the *first* violation, the sink's recent
  /// records (its ring contents — see TraceSink::set_ring) are snapshotted
  /// into flight_records(), preserving the window leading up to the
  /// failure. The sink is borrowed, not owned, and must outlive the run.
  void arm_flight_recorder(const TraceSink* sink) { flight_sink_ = sink; }
  /// Records captured at the first violation (empty when none fired or the
  /// recorder was never armed). Dump with write_trace_file().
  const std::vector<TraceRecord>& flight_records() const {
    return flight_records_;
  }

  // --- Results ---------------------------------------------------------
  bool ok() const { return total_violations_ == 0; }
  std::int64_t total_violations() const { return total_violations_; }
  const std::vector<CheckViolation>& violations() const { return violations_; }
  /// Human-readable multi-line report ("" when clean).
  std::string report() const;
  /// Drops accumulated violations (begin_run already resets oracle state).
  void clear();

  const CheckConfig& config() const { return cfg_; }

 private:
  void fail(CheckViolation::Category cat, NodeId node, TimeNs now,
            std::string message);
  int expected_capacity() const;
  /// Independent copy of the MAC's escalated-window rule (the oracle must
  /// not share code with the implementation it checks):
  /// min((cw_min + 1)·2^min(retries,16) − 1, cw_max).
  int escalated_window(int cw_min, int retries) const;

  struct NodeMacState {
    TimeNs nav_until = 0;  ///< From overheard frames only (like the MAC).
    /// Timestamps of the last frame of each kind cleanly received from a
    /// peer and addressed to this node (handshake recency ledger).
    std::unordered_map<NodeId, TimeNs> rts_from;
    std::unordered_map<NodeId, TimeNs> cts_from;
    std::unordered_map<NodeId, TimeNs> data_from;
  };

  CheckConfig cfg_;
  CheckRunInfo info_;
  std::int64_t total_violations_ = 0;
  std::vector<CheckViolation> violations_;
  const TraceSink* flight_sink_ = nullptr;  ///< Not owned.
  std::vector<TraceRecord> flight_records_;

  std::vector<NodeMacState> mac_;

  // Scheduler oracle state, keyed by (node << 32) | subflow.
  std::unordered_map<std::uint64_t, double> lane_watermark_;
  std::vector<double> vclock_floor_;

  // Conservation counters (warmup-free, per sim subflow).
  std::vector<std::int64_t> offered_, accepted_, rejected_, sent_, mac_dropped_,
      delivered_;

  // Admission oracle state: current per-sim-flow activity (empty until the
  // runner's first note_active_flows — every flow then counts as active).
  std::vector<char> active_flow_;

  // Transport oracle state, keyed by flow id. The oracle re-derives the
  // source's ledger from the hook stream alone: its own outstanding set,
  // its own dupack/timeout evidence counters.
  struct TransportFlowState {
    std::int64_t max_sent = -1;
    std::int64_t src_cum = -1;   ///< Highest cumack seen back at the source.
    std::int64_t sink_cum = -1;  ///< Highest cumack the sink ever emitted.
    int dupacks = 0;             ///< Dupacks since the last evidence consume.
    int timeout_evidence = 0;    ///< Timeouts not yet consumed by a retx.
    std::set<std::int64_t> outstanding;
  };
  std::map<std::int32_t, TransportFlowState> transport_;
};

}  // namespace e2efa
