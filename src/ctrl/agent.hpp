// Per-node in-band allocation agent: distributed phase 1 (Sec. IV-B) run
// as a real protocol inside the simulation.
//
// Each node's AllocAgent reproduces, over lossy broadcast control frames,
// exactly the knowledge pipeline the out-of-band oracle
// (`distributed_allocate`) computes in one shot:
//
//   1. Own(v): the active subflows with an endpoint in interference range —
//      known locally (the shared `overheard_subflow_sets` helper).
//   2. K(v) = Own(v) ∪ ⋃ Own(u): built from neighbors' periodic HELLOs and
//      RTS/CTS piggyback deltas instead of an oracle scan. Entries go stale
//      (and drop out of K) when a neighbor is unheard past a timeout — a
//      crashed neighbor's knowledge disappears the same way the oracle's
//      TopologyMask removes it.
//   3. Local cliques: maximal cliques of the contention graph restricted to
//      K(v) — same `maximal_cliques_in_subset` call the oracle makes.
//   4. Constraint accumulation: every transmitting hop of a flow keeps
//      acc = local cliques ∪ acc(next hop) and sends it upstream in
//      CONSTRAINT messages, so the source converges to the union over the
//      whole path.
//   5. Local LP: when knowledge and constraints have been quiescent for a
//      configurable window, the source calls the *same*
//      `solve_local_problem` the oracle uses, applies the share to its own
//      lane, and pushes a RATE message downstream; each hop applies and
//      forwards it.
//
// Everything is sequence-numbered and periodically re-advertised, so lost
// frames, flow churn, and node/link faults all heal through the same
// mechanism: state re-converges in-band, with no out-of-band epoch re-solve.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "alloc/distributed.hpp"
#include "ctrl/messages.hpp"
#include "mac/dcf_mac.hpp"
#include "obs/profiler.hpp"
#include "sched/tag_scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace e2efa {

class CheckContext;

struct CtrlConfig {
  /// HELLO cadence; also the agent's housekeeping tick. Each agent offsets
  /// its first tick by a random phase within one period so HELLOs from
  /// contending nodes do not synchronize.
  double hello_period_s = 0.25;
  /// CONSTRAINT / RATE re-advertisement cadence, in ticks (loss healing).
  int refresh_ticks = 4;
  /// Knowledge and constraints must be unchanged this long before a source
  /// re-solves its local LP (debounces solve storms during convergence).
  double quiesce_s = 0.6;
  /// A neighbor unheard for this long drops out of K(v) — the in-band
  /// equivalent of the oracle's TopologyMask removing a crashed node.
  double neighbor_timeout_s = 1.0;
  /// Max subflow ids in a piggybacked HELLO_DELTA (bounded so the payload
  /// fits the MAC's ctrl_piggyback_max airtime allowance).
  int piggyback_max_ids = 8;
  /// Skip optional sends while this many control frames are still queued.
  int max_backlog = 16;
  /// Share applied to lanes of flows that went inactive (matches the
  /// runner's kInactiveShare floor; TagScheduler shares must stay > 0).
  double inactive_share = 1e-6;
  /// Loss-hardened mode. Off (default) the control plane is exactly the
  /// PR 4 fire-and-forget protocol (bit-identical goldens); on — the runner
  /// enables it automatically for runs with faults, churn, or mobility —
  /// the agent additionally (a) stamps CONSTRAINT/RATE with per-flow epoch
  /// generations and drops stale ones, (b) retransmits unacknowledged
  /// CONSTRAINT/RATE with exponential backoff (overhearing the peer's
  /// forward acts as the ack), (c) counts HELLO sequence gaps, (d) forces a
  /// degraded solve when quiescence is never reached within
  /// max_staleness_s, and keeps last-known-good rates while every neighbor
  /// is timed out, and (e) answers in-band ADMIT rounds.
  bool hardened = false;
  /// Max CONSTRAINT/RATE/ADMIT_REQ retransmissions per send (hardened).
  int retx_limit = 3;
  /// A dirty solve still blocked by the quiescence gate after this long is
  /// forced through with whatever state is on hand (hardened).
  double max_staleness_s = 2.0;
};

/// Final applied state and traffic counters of one agent (collected into
/// RunResult::ctrl; all counters are queued-send side — the MAC's
/// stats().ctrl_sent counts actual transmissions).
struct CtrlAgentStats {
  std::uint64_t hello_sent = 0;
  std::uint64_t constraint_sent = 0;
  std::uint64_t rate_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t solves = 0;
  std::uint64_t ctrl_bytes_sent = 0;  ///< Dedicated frames only (not piggybacks).
  // Hardened-mode counters (all zero when CtrlConfig::hardened is off).
  std::uint64_t admit_req_sent = 0;
  std::uint64_t admit_rsp_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t seq_gaps = 0;
  std::uint64_t stale_dropped = 0;
  std::uint64_t forced_solves = 0;
};

class AllocAgent : public CtrlPiggyback {
 public:
  /// `graph` must be the contention graph of `flows` over `topo`; `sched`
  /// is this node's scheduler (null for nodes that originate no subflow —
  /// pure receivers still relay knowledge). The agent installs itself as
  /// the MAC's control listener and piggyback source in start().
  AllocAgent(Simulator& sim, DcfMac& mac, const Topology& topo, const FlowSet& flows,
             const ContentionGraph& graph, TagScheduler* sched, const CtrlConfig& cfg,
             Rng rng, TraceSink* trace);

  /// Installs MAC hooks, applies locally-estimated bootstrap shares to this
  /// node's lanes, and schedules the first (phase-jittered) tick. Call once
  /// before the simulation runs.
  void start();

  /// Epoch-boundary notification from the runner: `subflow_active[s]` says
  /// whether global subflow s carries traffic now. Replaces the oracle's
  /// per-epoch re-solve: the agent re-derives Own(v), re-advertises, and the
  /// network re-converges in-band.
  void note_active_set(const std::vector<char>& subflow_active);

  const CtrlAgentStats& stats() const { return stats_; }

  /// Share currently applied to this node's lane of `subflow` (asserts if
  /// the lane is not local). Test/collection helper.
  double applied_share(std::int32_t subflow) const;

  /// Starts an in-band ADMIT round for flow `f` (hardened mode; self must
  /// be f's source). The request walks the candidate's transmitting nodes,
  /// each ANDing its local clique-bound verdict (the shared
  /// admission_local_worst_load kernel) into the message; the last hop's
  /// ADMIT_RSP returns the verdict hop-by-hop. Lost legs are retransmitted
  /// with backoff up to retx_limit, then the round times out.
  void request_admission(FlowId f);

  /// Outcome of the ADMIT round started for `f`: 1 admitted, 0 rejected,
  /// -1 still pending / timed out / never requested.
  int inband_admission(FlowId f) const;

  /// Arms the invariant observer: every lane-share application is reported
  /// through CheckContext::on_rate_applied (no-stale-rate invariant). Pure
  /// observation — an armed agent's trajectory is bit-identical.
  void set_check(CheckContext* check) { check_ = check; }

  /// Arms the self-profiler: tick/message handling accrues to the ctrl
  /// phase and local LP solves to the solve phase. Pure observation.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

  // --- CtrlPiggyback ---
  std::shared_ptr<const CtrlMsg> piggyback_payload(int* extra_bytes) override;

 private:
  struct NeighborTable {
    std::uint32_t seq = 0;
    std::vector<int> subflows;  ///< Ascending advertised Own set.
    TimeNs heard = 0;           ///< Last time *anything* from this origin decoded.
    bool have_hello = false;    ///< Deltas merge only after a full HELLO.
    /// Timed out of K(v). The table itself is kept (sequence baseline and
    /// advertised set survive) so a reappearing neighbor — mobility, healed
    /// link — re-enters the instant anything from it decodes again, instead
    /// of being dropped until its next full HELLO.
    bool stale = false;
    std::uint32_t gap_seq = 0;  ///< Last delta seq counted as a gap.
  };

  /// Per managed flow (self is a transmitting node of an active flow).
  struct FlowCtrl {
    int hop = 0;
    NodeId upstream = kInvalidNode;    ///< Previous transmitter (invalid at source).
    NodeId downstream = kInvalidNode;  ///< Next transmitter (invalid at last hop).
    std::set<std::vector<int>> acc;    ///< local cliques ∪ downstream acc.
    std::vector<std::vector<int>> down_acc;
    TimeNs last_acc_change = 0;
    bool acc_sent = false;         ///< acc advertised upstream since last change.
    bool solve_dirty = true;       ///< Source: state changed since last solve.
    std::uint32_t rate_seq = 0;    ///< Source: last issued; elsewhere: last applied.
    double rate = 0.0;
    bool have_rate = false;
    int ticks_since_constraint = 0;
    int ticks_since_rate = 0;
    /// Hardened-mode retransmit state. A directed send arms the await flag
    /// and an exponentially backed-off tick timer; overhearing the peer
    /// forward the same stream (its own CONSTRAINT upstream / RATE
    /// downstream) clears it. At most retx_limit resends per fresh send.
    bool ctr_await = false;
    int ctr_retx = 0, ctr_wait = 1, ctr_timer = 0;
    bool rate_await = false;
    int rate_retx = 0, rate_wait = 1, rate_timer = 0;
    TimeNs solve_dirty_since = 0;  ///< When solve_dirty last went true.
    /// Causal-span bookkeeping (0 when tracing is off/filtered): the spans
    /// of the last CONSTRAINT/RATE sends (retransmit records chain to
    /// them) and of the event that last dirtied the solve (the solve
    /// record chains to it).
    std::uint32_t ctr_span = 0, rate_span = 0, cause_span = 0;
  };

  /// One pending / completed in-band ADMIT round at the candidate's source.
  struct AdmitState {
    bool done = false;
    bool verdict = false;
    bool timed_out = false;
    int retx = 0, wait = 1, timer = 0;
    std::uint32_t span = 0;  ///< Span of the last ADMIT_REQ send (0 = none).
  };

  void tick();
  void on_ctrl(const Frame& f);
  void reconfigure(TimeNs now);  ///< Re-derives own_/managed flows from active_.
  void rebuild_own(TimeNs now);
  bool flow_active(FlowId f) const;
  void refresh_knowledge(TimeNs now);  ///< Rebuilds K(v) + local cliques if dirty.
  bool rebuild_acc(FlowId f, FlowCtrl& fc, TimeNs now);  ///< True if acc changed.
  void send_hello();
  void send_constraint(FlowId f, FlowCtrl& fc, bool retx = false);
  void send_rate(FlowId f, FlowCtrl& fc, bool retx = false);
  void maybe_solve(FlowId f, FlowCtrl& fc, TimeNs now);
  void set_lane(FlowId f, int hop, double share);
  /// Emits the kCtrlSend record (span = fresh id, parent = cause_), stamps
  /// the span onto the message, and hands it to the MAC. Returns the span.
  std::uint32_t send(std::shared_ptr<CtrlMsg> m);
  void send_admit_req(FlowId f);
  void handle_admit(const CtrlMsg& m, TimeNs now);
  bool local_admit_ok(FlowId f, TimeNs now);
  int candidate_hop(FlowId f) const;  ///< Self's hop on f's path, -1 if none.
  void rebuild_beacon();
  double local_basic_estimate(FlowId f) const;
  /// Emits the kCtrlRecv record (parent = the message's send span) and
  /// returns its fresh span id (0 when the ctrl category is off).
  std::uint32_t trace_recv(const Frame& f, TimeNs now) const;
  /// Emits a kCtrlRetransmit record chained to the original send's span;
  /// returns its span so the resend's kCtrlSend can chain to it.
  std::uint32_t trace_retransmit(TimeNs now, CtrlMsg::Kind kind, FlowId flow,
                                 int retx, int wait_ticks,
                                 std::uint32_t prev_span) const;

  Simulator& sim_;
  DcfMac& mac_;
  const Topology& topo_;
  const FlowSet& flows_;
  const ContentionGraph& graph_;
  TagScheduler* sched_;
  CtrlConfig cfg_;
  Rng rng_;
  TraceSink* trace_;
  NodeId self_;

  std::vector<char> active_;  ///< Per-global-subflow activity bitmap.
  std::vector<int> full_own_;  ///< Own(self) over all subflows (static).
  std::vector<int> own_;       ///< full_own_ ∩ active_, ascending.
  std::uint32_t own_seq_ = 0;

  std::map<NodeId, NeighborTable> tables_;
  bool knowledge_dirty_ = true;
  TimeNs last_knowledge_change_ = 0;
  std::vector<int> knowledge_;  ///< K(self), ascending.
  std::vector<std::vector<int>> local_cliques_;

  std::map<FlowId, FlowCtrl> flows_ctrl_;
  std::map<FlowId, AdmitState> admits_;  ///< Source-side ADMIT rounds.

  /// Per-flow epoch generation: bumped on every activity toggle the runner
  /// announces. Deterministically identical across agents (every agent sees
  /// the same note_active_set sequence), so a hardened receiver can drop a
  /// CONSTRAINT/RATE composed before the flow's last arrival/departure.
  std::vector<std::uint16_t> flow_gen_;
  bool any_fresh_neighbor_ = true;  ///< False when every table is stale.

  std::shared_ptr<const CtrlMsg> beacon_;  ///< Cached piggyback payload.
  int beacon_bytes_ = 0;
  std::vector<int> pending_delta_;  ///< Own ids added at own_seq_.
  std::uint32_t ctrl_seq_ = 0;      ///< Sequence for CONSTRAINT streams.

  bool started_ = false;
  CtrlAgentStats stats_;
  CheckContext* check_ = nullptr;
  Profiler* profiler_ = nullptr;

  /// Span of the event currently being handled — the kCtrlRecv span inside
  /// on_ctrl, a solve/retransmit/admit span around the sends it causes, 0
  /// otherwise. Every kCtrlSend/kCtrlRate record parents to it.
  std::uint32_t cause_ = 0;
  /// Span of the most recent kCtrlAdmit record (local_admit_ok), so the
  /// ADMIT_REQ the verdict triggers can chain to it.
  std::uint32_t admit_span_ = 0;
};

}  // namespace e2efa
