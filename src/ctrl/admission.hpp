// Distributed admission control for flow arrivals (Ganesan-style clique
// bound under the paper's contention model).
//
// Phase 1 assumes the flow set is fixed while it converges; open-loop churn
// breaks that unless arrivals are gated. The gate enforces the same
// condition the centralized allocator's feasibility check does: with the
// candidate admitted, every maximal clique the candidate's subflows touch
// must still accommodate all basic (weighted-floor) shares,
//
//     sum_{s in clique} w_{flow(s)} * r0  <=  1,    r0 = 1 / sum_j w_j*v_j,
//
// where the sums range over the admitted flows plus the candidate. Cliques
// the candidate does not touch only get *lighter* on admission (the
// denominator grows), so the local check is sound.
//
// Two evaluators share that rule:
//  - admission_check_centralized: the oracle twin — global knowledge,
//    global denominator. This is what gates traffic in the runner and what
//    the differential fuzzer compares against.
//  - admission_check_distributed: what a real network can evaluate — each
//    transmitting node of the candidate judges only the cliques visible in
//    its exchanged knowledge K(v) (plus the candidate's own subflows, which
//    arrive with the ADMIT_REQ), using the *local* denominator over flows
//    it can see. Local denominators are never larger than the global one,
//    so local loads are never smaller: the distributed gate is exactly as
//    strict or stricter (it can reject a flow the oracle would admit, never
//    the reverse).
// The per-node kernel (admission_local_worst_load) is also what the in-band
// AllocAgent evaluates when an ADMIT_REQ walks the candidate's path, so the
// offline distributed gate is the oracle for the in-band round.
#pragma once

#include <vector>

#include "contention/contention_graph.hpp"
#include "flow/flow.hpp"
#include "topology/topology.hpp"

namespace e2efa {

/// Feasibility slack: a clique load up to 1 + kAdmissionEps still admits.
inline constexpr double kAdmissionEps = 1e-9;

/// Typed admission outcome. Values are stable (they are persisted in
/// RunResult::Admission::reason as ints).
enum class AdmissionReason : int {
  kAdmitted = 0,        ///< Every checked clique stays feasible.
  kCliqueOverload = 1,  ///< Some clique's basic-share load would exceed 1.
  kTimeout = 2,         ///< In-band round never completed (loss/partition).
};

const char* to_string(AdmissionReason r);

struct AdmissionDecision {
  bool admitted = true;
  AdmissionReason reason = AdmissionReason::kAdmitted;
  /// Load of the worst candidate-touching clique under the evaluator's
  /// denominator (0 when the candidate touches no clique).
  double worst_load = 0.0;
  /// The clique attaining worst_load (global subflow ids, ascending).
  std::vector<int> worst_clique;
};

/// Per-node verdict kernel: the worst load over cliques of the subgraph
/// induced by `knowledge` (ascending global subflow ids — must already
/// include the candidate's subflows) that contain at least one candidate
/// subflow, with the basic-share denominator taken over the flows visible
/// in `knowledge`. Returns 0 when no clique touches the candidate. Used by
/// both the offline distributed gate and the in-band AllocAgent, so the two
/// agree by construction.
double admission_local_worst_load(const FlowSet& flows,
                                  const ContentionGraph& g,
                                  const std::vector<int>& knowledge,
                                  FlowId candidate,
                                  std::vector<int>* worst_clique = nullptr);

/// The centralized twin: judges the candidate against the maximal cliques
/// of the contention graph restricted to active ∪ {candidate} subflows with
/// the global basic-share denominator. `active` has one entry per flow in
/// `flows` (nonzero = currently admitted and active); the candidate's own
/// entry is ignored. `g` must be the contention graph of `flows`.
AdmissionDecision admission_check_centralized(const FlowSet& flows,
                                              const ContentionGraph& g,
                                              const std::vector<char>& active,
                                              FlowId candidate);

/// The distributed gate: evaluates admission_local_worst_load at every
/// transmitting node of the candidate's path over that node's exchanged
/// knowledge K(v) of *active* flows (mask-restricted, like the in-band
/// HELLO exchange) unioned with the candidate's subflows, and ANDs the
/// verdicts — exactly the computation the in-band ADMIT round performs.
AdmissionDecision admission_check_distributed(const Topology& topo,
                                              const FlowSet& flows,
                                              const ContentionGraph& g,
                                              const std::vector<char>& active,
                                              FlowId candidate,
                                              const TopologyMask* mask = nullptr);

}  // namespace e2efa
