#include "ctrl/agent.hpp"

#include <algorithm>

#include "alloc/knowledge.hpp"
#include "check/check.hpp"
#include "contention/cliques.hpp"
#include "ctrl/admission.hpp"
#include "util/assert.hpp"

namespace e2efa {

AllocAgent::AllocAgent(Simulator& sim, DcfMac& mac, const Topology& topo,
                       const FlowSet& flows, const ContentionGraph& graph,
                       TagScheduler* sched, const CtrlConfig& cfg, Rng rng,
                       TraceSink* trace)
    : sim_(sim),
      mac_(mac),
      topo_(topo),
      flows_(flows),
      graph_(graph),
      sched_(sched),
      cfg_(cfg),
      rng_(rng),
      trace_(trace),
      self_(mac.self()) {
  E2EFA_ASSERT(&graph_.flows() == &flows_);
  active_.assign(static_cast<std::size_t>(flows_.subflow_count()), 1);
  flow_gen_.assign(static_cast<std::size_t>(flows_.flow_count()), 0);
  full_own_ = overheard_subflow_sets(topo_, flows_)[static_cast<std::size_t>(self_)];
}

void AllocAgent::start() {
  E2EFA_ASSERT_MSG(!started_, "AllocAgent::start called twice");
  started_ = true;
  mac_.set_ctrl_listener([this](const Frame& f) { on_ctrl(f); });
  mac_.set_ctrl_piggyback(this);
  reconfigure(sim_.now());
  // Random phase within one period desynchronizes contending HELLOs.
  const TimeNs period = from_seconds(cfg_.hello_period_s);
  const TimeNs phase =
      1 + static_cast<TimeNs>(rng_.uniform_u64(static_cast<std::uint64_t>(period)));
  sim_.schedule_in(phase, [this] { tick(); });
}

void AllocAgent::note_active_set(const std::vector<char>& subflow_active) {
  E2EFA_ASSERT(subflow_active.size() == active_.size());
  // Every activity toggle advances the flow's epoch generation. All agents
  // see the same note_active_set sequence, so generations agree everywhere
  // without any messaging — a hardened receiver can therefore drop a
  // CONSTRAINT/RATE composed before the flow's latest arrival/departure.
  for (FlowId f = 0; f < flows_.flow_count(); ++f) {
    const auto s0 = static_cast<std::size_t>(flows_.subflow_index(f, 0));
    if (active_[s0] != subflow_active[s0])
      ++flow_gen_[static_cast<std::size_t>(f)];
  }
  active_ = subflow_active;
  if (!started_) return;  // start() derives everything from active_.
  reconfigure(sim_.now());
  if (mac_.ctrl_backlog() <= cfg_.max_backlog) send_hello();
}

bool AllocAgent::flow_active(FlowId f) const {
  return active_[static_cast<std::size_t>(flows_.subflow_index(f, 0))] != 0;
}

double AllocAgent::applied_share(std::int32_t subflow) const {
  E2EFA_ASSERT(sched_ != nullptr);
  return sched_->share_of(subflow);
}

// ------------------------------------------------------------ (re)derive

void AllocAgent::reconfigure(TimeNs now) {
  rebuild_own(now);

  // Managed flows: active flows where self is a transmitting node.
  std::map<FlowId, FlowCtrl> next;
  for (const Flow& fl : flows_.flows()) {
    if (!flow_active(fl.id)) continue;
    for (int h = 0; h < fl.length(); ++h) {
      if (fl.path[static_cast<std::size_t>(h)] != self_) continue;
      FlowCtrl fc;
      const auto it = flows_ctrl_.find(fl.id);
      if (it != flows_ctrl_.end()) fc = std::move(it->second);
      fc.hop = h;
      fc.upstream = h > 0 ? fl.path[static_cast<std::size_t>(h - 1)] : kInvalidNode;
      fc.downstream =
          h + 1 < fl.length() ? fl.path[static_cast<std::size_t>(h + 1)] : kInvalidNode;
      fc.acc_sent = false;  // re-advertise after any reconfiguration
      fc.solve_dirty = true;
      fc.solve_dirty_since = now;
      next.emplace(fl.id, std::move(fc));
      break;  // paths are simple: self appears at most once
    }
  }

  if (sched_ != nullptr) {
    // Lanes of flows that dropped out idle at the inactive floor; newly
    // managed lanes bootstrap from the local basic estimate until a RATE
    // (or an own solve) arrives.
    for (const auto& [f, fc] : flows_ctrl_)
      if (next.find(f) == next.end()) set_lane(f, fc.hop, cfg_.inactive_share);
    for (const auto& [f, fc] : next)
      if (flows_ctrl_.find(f) == flows_ctrl_.end())
        set_lane(f, fc.hop, local_basic_estimate(f));
  }
  flows_ctrl_ = std::move(next);
}

void AllocAgent::rebuild_own(TimeNs now) {
  std::vector<int> next;
  for (int s : full_own_)
    if (active_[static_cast<std::size_t>(s)]) next.push_back(s);
  if (next == own_ && own_seq_ != 0) return;
  // Piggyback delta: newly appearing ids (bounded — the periodic full HELLO
  // heals anything truncated here).
  pending_delta_.clear();
  for (int s : next)
    if (!std::binary_search(own_.begin(), own_.end(), s)) pending_delta_.push_back(s);
  if (static_cast<int>(pending_delta_.size()) > cfg_.piggyback_max_ids)
    pending_delta_.resize(static_cast<std::size_t>(cfg_.piggyback_max_ids));
  own_ = std::move(next);
  ++own_seq_;
  rebuild_beacon();
  knowledge_dirty_ = true;
  last_knowledge_change_ = now;
}

void AllocAgent::refresh_knowledge(TimeNs now) {
  // A neighbor unheard past the timeout takes its advertised Own set with
  // it — this is how a crashed relay leaves K(v) without any oracle help.
  // The table itself survives, marked stale: a reappearing node (mobility,
  // healed link) re-enters K(v) the moment anything from it decodes again,
  // with its sequence baseline intact so a matching-seq HELLO_DELTA merges
  // immediately instead of being ignored until the next full HELLO.
  const TimeNs timeout = from_seconds(cfg_.neighbor_timeout_s);
  any_fresh_neighbor_ = tables_.empty();
  for (auto& [u, t] : tables_) {
    if (!t.stale && now - t.heard > timeout) {
      t.stale = true;
      knowledge_dirty_ = true;
      last_knowledge_change_ = now;
    }
    if (!t.stale) any_fresh_neighbor_ = true;
  }
  if (!knowledge_dirty_) return;
  knowledge_dirty_ = false;

  std::set<int> k(own_.begin(), own_.end());
  for (const auto& [u, t] : tables_) {
    if (t.stale) continue;
    for (int s : t.subflows)
      if (s >= 0 && s < flows_.subflow_count() && active_[static_cast<std::size_t>(s)])
        k.insert(s);
  }
  std::vector<int> nk(k.begin(), k.end());
  if (nk == knowledge_) return;
  knowledge_ = std::move(nk);
  local_cliques_ = maximal_cliques_in_subset(graph_, knowledge_);
  for (auto& [f, fc] : flows_ctrl_) rebuild_acc(f, fc, now);
}

bool AllocAgent::rebuild_acc(FlowId f, FlowCtrl& fc, TimeNs now) {
  (void)f;
  std::set<std::vector<int>> acc(local_cliques_.begin(), local_cliques_.end());
  for (const std::vector<int>& c : fc.down_acc) acc.insert(c);
  if (acc == fc.acc) return false;
  fc.acc = std::move(acc);
  fc.last_acc_change = now;
  fc.acc_sent = false;
  if (!fc.solve_dirty) fc.solve_dirty_since = now;
  fc.solve_dirty = true;
  // Causal chain: the solve this dirtying eventually triggers parents to
  // the event being handled right now (a CONSTRAINT receipt, usually).
  fc.cause_span = cause_;
  return true;
}

double AllocAgent::local_basic_estimate(FlowId f) const {
  std::set<FlowId> seen;
  for (int s : own_) seen.insert(flows_.subflow(s).flow);
  seen.insert(f);
  double denom = 0.0;
  for (FlowId j : seen)
    denom += flows_.flow(j).weight * virtual_length(flows_.flow(j).length());
  return flows_.flow(f).weight / denom;
}

// ------------------------------------------------------------------ tick

void AllocAgent::tick() {
  Profiler::Scope prof(profiler_, Profiler::Phase::kCtrl);
  const TimeNs now = sim_.now();
  refresh_knowledge(now);
  const bool room = mac_.ctrl_backlog() <= cfg_.max_backlog;
  if (room) send_hello();
  for (auto& [f, fc] : flows_ctrl_) {
    ++fc.ticks_since_constraint;
    ++fc.ticks_since_rate;
    if (fc.upstream != kInvalidNode && room &&
        (!fc.acc_sent || fc.ticks_since_constraint >= cfg_.refresh_ticks))
      send_constraint(f, fc);
    if (fc.upstream == kInvalidNode) {  // source duties
      maybe_solve(f, fc, now);
      if (fc.have_rate && fc.downstream != kInvalidNode && room &&
          fc.ticks_since_rate >= cfg_.refresh_ticks)
        send_rate(f, fc);
    }
    if (cfg_.hardened) {
      // Bounded retransmission with exponential backoff: a directed send
      // still unacknowledged (no overheard forward from the peer) after its
      // backoff window is resent, at most retx_limit times — after that the
      // periodic refresh_ticks cadence is the safety net.
      if (fc.ctr_await && fc.upstream != kInvalidNode &&
          ++fc.ctr_timer >= fc.ctr_wait) {
        if (fc.ctr_retx >= cfg_.retx_limit) {
          fc.ctr_await = false;
        } else if (room) {
          ++fc.ctr_retx;
          fc.ctr_wait = std::min(fc.ctr_wait * 2, cfg_.refresh_ticks);
          ++stats_.retransmits;
          cause_ = trace_retransmit(now, CtrlMsg::Kind::kConstraint, f,
                                    fc.ctr_retx, fc.ctr_wait, fc.ctr_span);
          send_constraint(f, fc, /*retx=*/true);
          cause_ = 0;
        }
      }
      if (fc.rate_await && fc.have_rate && fc.downstream != kInvalidNode &&
          ++fc.rate_timer >= fc.rate_wait) {
        if (fc.rate_retx >= cfg_.retx_limit) {
          fc.rate_await = false;
        } else if (room) {
          ++fc.rate_retx;
          fc.rate_wait = std::min(fc.rate_wait * 2, cfg_.refresh_ticks);
          ++stats_.retransmits;
          cause_ = trace_retransmit(now, CtrlMsg::Kind::kRate, f, fc.rate_retx,
                                    fc.rate_wait, fc.rate_span);
          send_rate(f, fc, /*retx=*/true);
          cause_ = 0;
        }
      }
    }
  }
  if (cfg_.hardened) {
    for (auto& [f, st] : admits_) {
      if (st.done) continue;
      if (++st.timer < st.wait) continue;
      if (st.retx >= cfg_.retx_limit) {
        st.done = true;
        st.timed_out = true;
        continue;
      }
      if (!room) continue;
      ++st.retx;
      st.timer = 0;
      st.wait = std::min(st.wait * 2, cfg_.refresh_ticks);
      ++stats_.retransmits;
      cause_ = trace_retransmit(now, CtrlMsg::Kind::kAdmitReq, f, st.retx,
                                st.wait, st.span);
      send_admit_req(f);
      cause_ = 0;
    }
  }
  sim_.schedule_in(from_seconds(cfg_.hello_period_s), [this] { tick(); });
}

void AllocAgent::maybe_solve(FlowId f, FlowCtrl& fc, TimeNs now) {
  if (!fc.solve_dirty) return;
  // Graceful degradation: when every neighbor has timed out (partition, or
  // the node walked away), a fresh solve would see an almost-empty K(v) and
  // grab far more than its converged share — keep the last-known-good rate
  // until somebody is heard again.
  if (cfg_.hardened && fc.have_rate && !any_fresh_neighbor_) return;
  const TimeNs q = from_seconds(cfg_.quiesce_s);
  if (now - last_knowledge_change_ < q || now - fc.last_acc_change < q) {
    // Degraded solve: churn can keep knowledge from ever quiescing; after
    // max_staleness_s of blocked dirtiness, solve with what is on hand.
    if (!cfg_.hardened ||
        now - fc.solve_dirty_since < from_seconds(cfg_.max_staleness_s))
      return;
    ++stats_.forced_solves;
  }
  fc.solve_dirty = false;
  LocalProblem lp;
  {
    Profiler::Scope prof(profiler_, Profiler::Phase::kSolve);
    lp = solve_local_problem(flows_, f, {fc.acc.begin(), fc.acc.end()},
                             knowledge_);
  }
  ++stats_.solves;
  std::uint32_t solve_span = 0;
  if (trace_ != nullptr && trace_->enabled<TraceCat::kCtrl>()) {
    solve_span = trace_->new_span();
    trace_->record<TraceCat::kCtrl>(now, TraceEvent::kCtrlSolve,
                                    static_cast<std::int16_t>(self_), f,
                                    static_cast<std::int32_t>(lp.status),
                                    lp.flow_share, static_cast<double>(fc.acc.size()),
                                    solve_span, fc.cause_span);
  }
  if (!fc.have_rate || lp.flow_share != fc.rate) {
    fc.rate = lp.flow_share;
    fc.have_rate = true;
    ++fc.rate_seq;
    // The lane update and RATE push are consequences of this solve.
    const std::uint32_t saved_cause = cause_;
    cause_ = solve_span;
    if (fc.rate > 0.0) set_lane(f, fc.hop, fc.rate);
    if (fc.downstream != kInvalidNode && mac_.ctrl_backlog() <= cfg_.max_backlog)
      send_rate(f, fc);
    cause_ = saved_cause;
  }
}

void AllocAgent::set_lane(FlowId f, int hop, double share) {
  if (sched_ == nullptr) return;
  const std::int32_t sf = flows_.subflow_index(f, hop);
  if (sched_->share_of(sf) == share) return;
  sched_->note_time(sim_.now());
  sched_->update_share(sf, share);
  if (check_ != nullptr)
    check_->on_rate_applied(self_, sf, share, sim_.now());
  if (trace_ != nullptr)
    trace_->record<TraceCat::kCtrl>(sim_.now(), TraceEvent::kCtrlRate,
                                    static_cast<std::int16_t>(self_), sf, f, share,
                                    0.0, 0, cause_);
}

// ------------------------------------------------------------------ send

std::uint32_t AllocAgent::send(std::shared_ptr<CtrlMsg> m) {
  const int bytes = m->wire_bytes();
  stats_.ctrl_bytes_sent += static_cast<std::uint64_t>(bytes);
  std::uint32_t span = 0;
  if (trace_ != nullptr && trace_->enabled<TraceCat::kCtrl>()) {
    span = trace_->new_span();
    m->span = span;
    trace_->record<TraceCat::kCtrl>(sim_.now(), TraceEvent::kCtrlSend,
                                    static_cast<std::int16_t>(self_),
                                    static_cast<std::int32_t>(m->kind), m->to,
                                    static_cast<double>(bytes), m->seq, span,
                                    cause_);
  }
  mac_.send_ctrl(std::move(m), bytes);
  return span;
}

void AllocAgent::send_hello() {
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kHello;
  m->origin = self_;
  m->seq = own_seq_;
  m->subflows = own_;
  ++stats_.hello_sent;
  send(std::move(m));
}

void AllocAgent::send_constraint(FlowId f, FlowCtrl& fc, bool retx) {
  E2EFA_ASSERT(fc.upstream != kInvalidNode);
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kConstraint;
  m->origin = self_;
  m->to = fc.upstream;
  m->seq = ++ctrl_seq_;
  m->flow = f;
  m->gen = flow_gen_[static_cast<std::size_t>(f)];
  m->cliques.assign(fc.acc.begin(), fc.acc.end());
  fc.acc_sent = true;
  fc.ticks_since_constraint = 0;
  if (cfg_.hardened && fc.hop >= 2) {
    // The ack is overhearing the upstream hop forward its own CONSTRAINT —
    // only possible when the upstream is not already the source.
    fc.ctr_await = true;
    fc.ctr_timer = 0;
    if (!retx) {
      fc.ctr_retx = 0;
      fc.ctr_wait = 1;
    }
  }
  ++stats_.constraint_sent;
  fc.ctr_span = send(std::move(m));
}

void AllocAgent::send_rate(FlowId f, FlowCtrl& fc, bool retx) {
  E2EFA_ASSERT(fc.downstream != kInvalidNode && fc.have_rate);
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kRate;
  m->origin = self_;
  m->to = fc.downstream;
  m->seq = fc.rate_seq;
  m->flow = f;
  m->gen = flow_gen_[static_cast<std::size_t>(f)];
  m->rate = fc.rate;
  fc.ticks_since_rate = 0;
  if (cfg_.hardened && fc.hop + 2 < flows_.flow(f).length()) {
    // The ack is overhearing the downstream hop forward the RATE — only
    // possible when the downstream is not already the last transmitter.
    fc.rate_await = true;
    fc.rate_timer = 0;
    if (!retx) {
      fc.rate_retx = 0;
      fc.rate_wait = 1;
    }
  }
  ++stats_.rate_sent;
  fc.rate_span = send(std::move(m));
}

// --------------------------------------------------------------- receive

void AllocAgent::on_ctrl(const Frame& fr) {
  E2EFA_ASSERT(fr.ctrl != nullptr);
  Profiler::Scope prof(profiler_, Profiler::Phase::kCtrl);
  const CtrlMsg& m = *fr.ctrl;
  if (m.origin == self_) return;
  const TimeNs now = sim_.now();
  ++stats_.msgs_received;
  // Everything this receipt triggers — forwards, lane updates, solve
  // dirtying — chains to the kCtrlRecv span until the handler returns.
  cause_ = trace_recv(fr, now);

  // Any decoded message is a liveness proof for its origin — including one
  // timed out as stale: it rejoins K(v) immediately, sequence baseline
  // intact (the staleness fix for mobile nodes that wander back).
  NeighborTable& t = tables_[m.origin];
  t.heard = now;
  if (t.stale) {
    t.stale = false;
    knowledge_dirty_ = true;
    last_knowledge_change_ = now;
  }

  switch (m.kind) {
    case CtrlMsg::Kind::kHello:
      if (cfg_.hardened && t.have_hello && m.seq > t.seq + 1 &&
          t.gap_seq != m.seq) {
        // We missed at least one whole advertisement generation.
        ++stats_.seq_gaps;
        t.gap_seq = m.seq;
        if (trace_ != nullptr)
          trace_->record<TraceCat::kCtrl>(
              now, TraceEvent::kCtrlSeqGap, static_cast<std::int16_t>(self_),
              m.origin, static_cast<std::int32_t>(m.seq - t.seq - 1),
              static_cast<double>(t.seq + 1), static_cast<double>(m.seq), 0,
              cause_);
      }
      if (!t.have_hello || t.seq != m.seq || t.subflows != m.subflows) {
        if (t.subflows != m.subflows) {
          knowledge_dirty_ = true;
          last_knowledge_change_ = now;
        }
        t.subflows = m.subflows;
        t.seq = m.seq;
        t.have_hello = true;
      }
      break;

    case CtrlMsg::Kind::kHelloDelta:
      if (cfg_.hardened && t.have_hello && m.seq > t.seq && t.gap_seq != m.seq) {
        // A delta against a table generation we never received: the full
        // HELLO carrying it was lost. The periodic re-advertisement heals
        // the table; the counter records that the gap happened.
        ++stats_.seq_gaps;
        t.gap_seq = m.seq;
        if (trace_ != nullptr)
          trace_->record<TraceCat::kCtrl>(
              now, TraceEvent::kCtrlSeqGap, static_cast<std::int16_t>(self_),
              m.origin, static_cast<std::int32_t>(m.seq - t.seq),
              static_cast<double>(t.seq), static_cast<double>(m.seq), 0,
              cause_);
      }
      // Additive merge, valid only against the matching full table.
      if (t.have_hello && t.seq == m.seq && !m.subflows.empty()) {
        bool changed = false;
        for (int s : m.subflows) {
          const auto it = std::lower_bound(t.subflows.begin(), t.subflows.end(), s);
          if (it == t.subflows.end() || *it != s) {
            t.subflows.insert(it, s);
            changed = true;
          }
        }
        if (changed) {
          knowledge_dirty_ = true;
          last_knowledge_change_ = now;
        }
      }
      break;

    case CtrlMsg::Kind::kConstraint: {
      if (cfg_.hardened && m.flow >= 0 && m.flow < flows_.flow_count() &&
          m.gen != flow_gen_[static_cast<std::size_t>(m.flow)]) {
        ++stats_.stale_dropped;  // composed before the flow's last toggle
        break;
      }
      {
        // Overhearing the upstream hop advertise its own accumulation
        // implicitly acks the CONSTRAINT we sent it.
        const auto ack = flows_ctrl_.find(m.flow);
        if (ack != flows_ctrl_.end() && m.origin == ack->second.upstream)
          ack->second.ctr_await = false;
      }
      if (m.to != self_) break;  // overheard someone else's accumulation
      const auto it = flows_ctrl_.find(m.flow);
      if (it == flows_ctrl_.end()) break;
      FlowCtrl& fc = it->second;
      if (fc.down_acc == m.cliques) break;
      fc.down_acc = m.cliques;
      refresh_knowledge(now);  // local cliques must be current before the union
      if (rebuild_acc(m.flow, fc, now) && fc.upstream != kInvalidNode &&
          mac_.ctrl_backlog() <= cfg_.max_backlog)
        send_constraint(m.flow, fc);  // propagate upstream without a tick of delay
      break;
    }

    case CtrlMsg::Kind::kRate: {
      if (cfg_.hardened && m.flow >= 0 && m.flow < flows_.flow_count() &&
          m.gen != flow_gen_[static_cast<std::size_t>(m.flow)]) {
        // The no-stale-rate guarantee: a RATE composed before the flow's
        // latest departure/arrival can never resurrect its lanes.
        ++stats_.stale_dropped;
        break;
      }
      {
        // Overhearing the downstream hop forward the RATE acks ours.
        const auto ack = flows_ctrl_.find(m.flow);
        if (ack != flows_ctrl_.end() && m.origin == ack->second.downstream)
          ack->second.rate_await = false;
      }
      if (m.to != self_) break;
      const auto it = flows_ctrl_.find(m.flow);
      if (it == flows_ctrl_.end()) break;
      FlowCtrl& fc = it->second;
      fc.rate_seq = m.seq;
      fc.rate = m.rate;
      fc.have_rate = true;
      if (m.rate > 0.0) set_lane(m.flow, fc.hop, m.rate);
      // Forward even unchanged refreshes: the hop after us may have missed
      // an earlier copy, and loss healing relies on this relay chain.
      if (fc.downstream != kInvalidNode && mac_.ctrl_backlog() <= cfg_.max_backlog)
        send_rate(m.flow, fc);
      break;
    }

    case CtrlMsg::Kind::kAdmitReq:
    case CtrlMsg::Kind::kAdmitRsp:
      handle_admit(m, now);
      break;

    case CtrlMsg::Kind::kTransAck:
      break;  // dispatched to the AckPlane listener, never to agents
  }
  cause_ = 0;
}

// ------------------------------------------------------------- admission

int AllocAgent::candidate_hop(FlowId f) const {
  const Flow& fl = flows_.flow(f);
  for (int h = 0; h < fl.length(); ++h)
    if (fl.path[static_cast<std::size_t>(h)] == self_) return h;
  return -1;
}

bool AllocAgent::local_admit_ok(FlowId f, TimeNs now) {
  refresh_knowledge(now);
  // Judge the candidate against what this node can currently see: K(v)
  // plus the candidate's own subflows (they travel with the ADMIT_REQ).
  std::vector<int> kv = knowledge_;
  const Flow& fl = flows_.flow(f);
  for (int h = 0; h < fl.length(); ++h) kv.push_back(flows_.subflow_index(f, h));
  std::sort(kv.begin(), kv.end());
  kv.erase(std::unique(kv.begin(), kv.end()), kv.end());
  const double load = admission_local_worst_load(flows_, graph_, kv, f);
  const bool ok = load <= 1.0 + kAdmissionEps;
  admit_span_ = 0;
  if (trace_ != nullptr && trace_->enabled<TraceCat::kCtrl>()) {
    admit_span_ = trace_->new_span();
    trace_->record<TraceCat::kCtrl>(now, TraceEvent::kCtrlAdmit,
                                    static_cast<std::int16_t>(self_), f,
                                    ok ? 1 : 0, load, 0.0, admit_span_, cause_);
  }
  return ok;
}

void AllocAgent::request_admission(FlowId f) {
  E2EFA_ASSERT_MSG(cfg_.hardened, "ADMIT rounds require hardened mode");
  E2EFA_ASSERT(flows_.flow(f).source() == self_);
  AdmitState st;
  const TimeNs now = sim_.now();
  const bool ok = local_admit_ok(f, now);
  if (!ok || flows_.flow(f).length() < 2) {
    // A local rejection decides the round; so does a single-transmitter
    // flow (the source's verdict is the whole path's).
    st.done = true;
    st.verdict = ok;
    admits_[f] = st;
    return;
  }
  admits_[f] = st;
  // The request is a consequence of the local verdict just recorded.
  cause_ = admit_span_;
  send_admit_req(f);
  cause_ = 0;
}

int AllocAgent::inband_admission(FlowId f) const {
  const auto it = admits_.find(f);
  if (it == admits_.end() || !it->second.done || it->second.timed_out) return -1;
  return it->second.verdict ? 1 : 0;
}

void AllocAgent::send_admit_req(FlowId f) {
  const Flow& fl = flows_.flow(f);
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kAdmitReq;
  m->origin = self_;
  m->to = fl.path[1];
  m->seq = ++ctrl_seq_;
  m->flow = f;
  m->gen = flow_gen_[static_cast<std::size_t>(f)];
  for (int h = 0; h < fl.length(); ++h)
    m->subflows.push_back(flows_.subflow_index(f, h));
  m->admit_ok = true;  // the source's own verdict held, or we wouldn't send
  ++stats_.admit_req_sent;
  const std::uint32_t span = send(std::move(m));
  const auto it = admits_.find(f);
  if (it != admits_.end()) it->second.span = span;
}

void AllocAgent::handle_admit(const CtrlMsg& m, TimeNs now) {
  if (!cfg_.hardened || m.to != self_) return;
  if (m.flow < 0 || m.flow >= flows_.flow_count()) return;
  const FlowId f = m.flow;
  const int h = candidate_hop(f);
  if (h < 0) return;  // not on the candidate's path (stale/corrupt target)
  const Flow& fl = flows_.flow(f);

  if (m.kind == CtrlMsg::Kind::kAdmitReq) {
    bool ok = m.admit_ok;
    if (ok) {
      ok = local_admit_ok(f, now);
      // Chain the forward/response through the local verdict record (which
      // itself chains to the receipt).
      if (admit_span_ != 0) cause_ = admit_span_;
    }
    if (h + 1 < fl.length()) {
      // More transmitters downstream: AND our verdict in and pass it on.
      auto fwd = std::make_shared<CtrlMsg>(m);
      fwd->origin = self_;
      fwd->to = fl.path[static_cast<std::size_t>(h + 1)];
      fwd->seq = ++ctrl_seq_;
      fwd->admit_ok = ok;
      ++stats_.admit_req_sent;
      send(std::move(fwd));
    } else {
      // Last transmitter: the verdict is final — return it upstream.
      auto rsp = std::make_shared<CtrlMsg>();
      rsp->kind = CtrlMsg::Kind::kAdmitRsp;
      rsp->origin = self_;
      rsp->to = fl.path[static_cast<std::size_t>(h - 1)];
      rsp->seq = ++ctrl_seq_;
      rsp->flow = f;
      rsp->gen = m.gen;
      rsp->admit_ok = ok;
      ++stats_.admit_rsp_sent;
      send(std::move(rsp));
    }
    return;
  }

  // kAdmitRsp
  if (h == 0) {
    const auto it = admits_.find(f);
    if (it != admits_.end() && !it->second.done) {
      it->second.done = true;
      it->second.verdict = m.admit_ok;
    }
    return;
  }
  auto rsp = std::make_shared<CtrlMsg>(m);
  rsp->origin = self_;
  rsp->to = fl.path[static_cast<std::size_t>(h - 1)];
  rsp->seq = ++ctrl_seq_;
  ++stats_.admit_rsp_sent;
  send(std::move(rsp));
}

std::uint32_t AllocAgent::trace_recv(const Frame& fr, TimeNs now) const {
  if (trace_ == nullptr || !trace_->enabled<TraceCat::kCtrl>()) return 0;
  const CtrlMsg& m = *fr.ctrl;
  const std::uint32_t span = trace_->new_span();
  trace_->record<TraceCat::kCtrl>(now, TraceEvent::kCtrlRecv,
                                  static_cast<std::int16_t>(self_),
                                  static_cast<std::int32_t>(m.kind), m.origin,
                                  static_cast<double>(m.wire_bytes()),
                                  fr.type == FrameType::kCtrl ? 0.0 : 1.0, span,
                                  m.span);
  return span;
}

std::uint32_t AllocAgent::trace_retransmit(TimeNs now, CtrlMsg::Kind kind,
                                           FlowId flow, int retx,
                                           int wait_ticks,
                                           std::uint32_t prev_span) const {
  if (trace_ == nullptr || !trace_->enabled<TraceCat::kCtrl>()) return 0;
  const std::uint32_t span = trace_->new_span();
  trace_->record<TraceCat::kCtrl>(now, TraceEvent::kCtrlRetransmit,
                                  static_cast<std::int16_t>(self_),
                                  static_cast<std::int32_t>(kind), flow,
                                  static_cast<double>(retx),
                                  static_cast<double>(wait_ticks), span,
                                  prev_span);
  return span;
}

// ------------------------------------------------------------- piggyback

std::shared_ptr<const CtrlMsg> AllocAgent::piggyback_payload(int* extra_bytes) {
  if (beacon_ == nullptr) rebuild_beacon();
  *extra_bytes += beacon_bytes_;
  return beacon_;
}

void AllocAgent::rebuild_beacon() {
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kHelloDelta;
  m->origin = self_;
  m->seq = own_seq_;
  m->subflows = pending_delta_;
  beacon_bytes_ = m->wire_bytes();
  beacon_ = std::move(m);
}

}  // namespace e2efa
