#include "ctrl/agent.hpp"

#include <algorithm>

#include "alloc/knowledge.hpp"
#include "contention/cliques.hpp"
#include "util/assert.hpp"

namespace e2efa {

AllocAgent::AllocAgent(Simulator& sim, DcfMac& mac, const Topology& topo,
                       const FlowSet& flows, const ContentionGraph& graph,
                       TagScheduler* sched, const CtrlConfig& cfg, Rng rng,
                       TraceSink* trace)
    : sim_(sim),
      mac_(mac),
      topo_(topo),
      flows_(flows),
      graph_(graph),
      sched_(sched),
      cfg_(cfg),
      rng_(rng),
      trace_(trace),
      self_(mac.self()) {
  E2EFA_ASSERT(&graph_.flows() == &flows_);
  active_.assign(static_cast<std::size_t>(flows_.subflow_count()), 1);
  full_own_ = overheard_subflow_sets(topo_, flows_)[static_cast<std::size_t>(self_)];
}

void AllocAgent::start() {
  E2EFA_ASSERT_MSG(!started_, "AllocAgent::start called twice");
  started_ = true;
  mac_.set_ctrl_listener([this](const Frame& f) { on_ctrl(f); });
  mac_.set_ctrl_piggyback(this);
  reconfigure(sim_.now());
  // Random phase within one period desynchronizes contending HELLOs.
  const TimeNs period = from_seconds(cfg_.hello_period_s);
  const TimeNs phase =
      1 + static_cast<TimeNs>(rng_.uniform_u64(static_cast<std::uint64_t>(period)));
  sim_.schedule_in(phase, [this] { tick(); });
}

void AllocAgent::note_active_set(const std::vector<char>& subflow_active) {
  E2EFA_ASSERT(subflow_active.size() == active_.size());
  active_ = subflow_active;
  if (!started_) return;  // start() derives everything from active_.
  reconfigure(sim_.now());
  if (mac_.ctrl_backlog() <= cfg_.max_backlog) send_hello();
}

bool AllocAgent::flow_active(FlowId f) const {
  return active_[static_cast<std::size_t>(flows_.subflow_index(f, 0))] != 0;
}

double AllocAgent::applied_share(std::int32_t subflow) const {
  E2EFA_ASSERT(sched_ != nullptr);
  return sched_->share_of(subflow);
}

// ------------------------------------------------------------ (re)derive

void AllocAgent::reconfigure(TimeNs now) {
  rebuild_own(now);

  // Managed flows: active flows where self is a transmitting node.
  std::map<FlowId, FlowCtrl> next;
  for (const Flow& fl : flows_.flows()) {
    if (!flow_active(fl.id)) continue;
    for (int h = 0; h < fl.length(); ++h) {
      if (fl.path[static_cast<std::size_t>(h)] != self_) continue;
      FlowCtrl fc;
      const auto it = flows_ctrl_.find(fl.id);
      if (it != flows_ctrl_.end()) fc = std::move(it->second);
      fc.hop = h;
      fc.upstream = h > 0 ? fl.path[static_cast<std::size_t>(h - 1)] : kInvalidNode;
      fc.downstream =
          h + 1 < fl.length() ? fl.path[static_cast<std::size_t>(h + 1)] : kInvalidNode;
      fc.acc_sent = false;  // re-advertise after any reconfiguration
      fc.solve_dirty = true;
      next.emplace(fl.id, std::move(fc));
      break;  // paths are simple: self appears at most once
    }
  }

  if (sched_ != nullptr) {
    // Lanes of flows that dropped out idle at the inactive floor; newly
    // managed lanes bootstrap from the local basic estimate until a RATE
    // (or an own solve) arrives.
    for (const auto& [f, fc] : flows_ctrl_)
      if (next.find(f) == next.end()) set_lane(f, fc.hop, cfg_.inactive_share);
    for (const auto& [f, fc] : next)
      if (flows_ctrl_.find(f) == flows_ctrl_.end())
        set_lane(f, fc.hop, local_basic_estimate(f));
  }
  flows_ctrl_ = std::move(next);
}

void AllocAgent::rebuild_own(TimeNs now) {
  std::vector<int> next;
  for (int s : full_own_)
    if (active_[static_cast<std::size_t>(s)]) next.push_back(s);
  if (next == own_ && own_seq_ != 0) return;
  // Piggyback delta: newly appearing ids (bounded — the periodic full HELLO
  // heals anything truncated here).
  pending_delta_.clear();
  for (int s : next)
    if (!std::binary_search(own_.begin(), own_.end(), s)) pending_delta_.push_back(s);
  if (static_cast<int>(pending_delta_.size()) > cfg_.piggyback_max_ids)
    pending_delta_.resize(static_cast<std::size_t>(cfg_.piggyback_max_ids));
  own_ = std::move(next);
  ++own_seq_;
  rebuild_beacon();
  knowledge_dirty_ = true;
  last_knowledge_change_ = now;
}

void AllocAgent::refresh_knowledge(TimeNs now) {
  // A neighbor unheard past the timeout takes its advertised Own set with
  // it — this is how a crashed relay leaves K(v) without any oracle help.
  const TimeNs timeout = from_seconds(cfg_.neighbor_timeout_s);
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (now - it->second.heard > timeout) {
      it = tables_.erase(it);
      knowledge_dirty_ = true;
      last_knowledge_change_ = now;
    } else {
      ++it;
    }
  }
  if (!knowledge_dirty_) return;
  knowledge_dirty_ = false;

  std::set<int> k(own_.begin(), own_.end());
  for (const auto& [u, t] : tables_)
    for (int s : t.subflows)
      if (s >= 0 && s < flows_.subflow_count() && active_[static_cast<std::size_t>(s)])
        k.insert(s);
  std::vector<int> nk(k.begin(), k.end());
  if (nk == knowledge_) return;
  knowledge_ = std::move(nk);
  local_cliques_ = maximal_cliques_in_subset(graph_, knowledge_);
  for (auto& [f, fc] : flows_ctrl_) rebuild_acc(f, fc, now);
}

bool AllocAgent::rebuild_acc(FlowId f, FlowCtrl& fc, TimeNs now) {
  (void)f;
  std::set<std::vector<int>> acc(local_cliques_.begin(), local_cliques_.end());
  for (const std::vector<int>& c : fc.down_acc) acc.insert(c);
  if (acc == fc.acc) return false;
  fc.acc = std::move(acc);
  fc.last_acc_change = now;
  fc.acc_sent = false;
  fc.solve_dirty = true;
  return true;
}

double AllocAgent::local_basic_estimate(FlowId f) const {
  std::set<FlowId> seen;
  for (int s : own_) seen.insert(flows_.subflow(s).flow);
  seen.insert(f);
  double denom = 0.0;
  for (FlowId j : seen)
    denom += flows_.flow(j).weight * virtual_length(flows_.flow(j).length());
  return flows_.flow(f).weight / denom;
}

// ------------------------------------------------------------------ tick

void AllocAgent::tick() {
  const TimeNs now = sim_.now();
  refresh_knowledge(now);
  const bool room = mac_.ctrl_backlog() <= cfg_.max_backlog;
  if (room) send_hello();
  for (auto& [f, fc] : flows_ctrl_) {
    ++fc.ticks_since_constraint;
    ++fc.ticks_since_rate;
    if (fc.upstream != kInvalidNode && room &&
        (!fc.acc_sent || fc.ticks_since_constraint >= cfg_.refresh_ticks))
      send_constraint(f, fc);
    if (fc.upstream == kInvalidNode) {  // source duties
      maybe_solve(f, fc, now);
      if (fc.have_rate && fc.downstream != kInvalidNode && room &&
          fc.ticks_since_rate >= cfg_.refresh_ticks)
        send_rate(f, fc);
    }
  }
  sim_.schedule_in(from_seconds(cfg_.hello_period_s), [this] { tick(); });
}

void AllocAgent::maybe_solve(FlowId f, FlowCtrl& fc, TimeNs now) {
  if (!fc.solve_dirty) return;
  const TimeNs q = from_seconds(cfg_.quiesce_s);
  if (now - last_knowledge_change_ < q || now - fc.last_acc_change < q) return;
  fc.solve_dirty = false;
  LocalProblem lp = solve_local_problem(
      flows_, f, {fc.acc.begin(), fc.acc.end()}, knowledge_);
  ++stats_.solves;
  if (trace_ != nullptr)
    trace_->record<TraceCat::kCtrl>(now, TraceEvent::kCtrlSolve,
                                    static_cast<std::int16_t>(self_), f,
                                    static_cast<std::int32_t>(lp.status),
                                    lp.flow_share, static_cast<double>(fc.acc.size()));
  if (!fc.have_rate || lp.flow_share != fc.rate) {
    fc.rate = lp.flow_share;
    fc.have_rate = true;
    ++fc.rate_seq;
    if (fc.rate > 0.0) set_lane(f, fc.hop, fc.rate);
    if (fc.downstream != kInvalidNode && mac_.ctrl_backlog() <= cfg_.max_backlog)
      send_rate(f, fc);
  }
}

void AllocAgent::set_lane(FlowId f, int hop, double share) {
  if (sched_ == nullptr) return;
  const std::int32_t sf = flows_.subflow_index(f, hop);
  if (sched_->share_of(sf) == share) return;
  sched_->note_time(sim_.now());
  sched_->update_share(sf, share);
  if (trace_ != nullptr)
    trace_->record<TraceCat::kCtrl>(sim_.now(), TraceEvent::kCtrlRate,
                                    static_cast<std::int16_t>(self_), sf, f, share);
}

// ------------------------------------------------------------------ send

void AllocAgent::send(std::shared_ptr<const CtrlMsg> m) {
  const int bytes = m->wire_bytes();
  stats_.ctrl_bytes_sent += static_cast<std::uint64_t>(bytes);
  if (trace_ != nullptr)
    trace_->record<TraceCat::kCtrl>(sim_.now(), TraceEvent::kCtrlSend,
                                    static_cast<std::int16_t>(self_),
                                    static_cast<std::int32_t>(m->kind), m->to,
                                    static_cast<double>(bytes), m->seq);
  mac_.send_ctrl(std::move(m), bytes);
}

void AllocAgent::send_hello() {
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kHello;
  m->origin = self_;
  m->seq = own_seq_;
  m->subflows = own_;
  ++stats_.hello_sent;
  send(std::move(m));
}

void AllocAgent::send_constraint(FlowId f, FlowCtrl& fc) {
  E2EFA_ASSERT(fc.upstream != kInvalidNode);
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kConstraint;
  m->origin = self_;
  m->to = fc.upstream;
  m->seq = ++ctrl_seq_;
  m->flow = f;
  m->cliques.assign(fc.acc.begin(), fc.acc.end());
  fc.acc_sent = true;
  fc.ticks_since_constraint = 0;
  ++stats_.constraint_sent;
  send(std::move(m));
}

void AllocAgent::send_rate(FlowId f, FlowCtrl& fc) {
  E2EFA_ASSERT(fc.downstream != kInvalidNode && fc.have_rate);
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kRate;
  m->origin = self_;
  m->to = fc.downstream;
  m->seq = fc.rate_seq;
  m->flow = f;
  m->rate = fc.rate;
  fc.ticks_since_rate = 0;
  ++stats_.rate_sent;
  send(std::move(m));
}

// --------------------------------------------------------------- receive

void AllocAgent::on_ctrl(const Frame& fr) {
  E2EFA_ASSERT(fr.ctrl != nullptr);
  const CtrlMsg& m = *fr.ctrl;
  if (m.origin == self_) return;
  const TimeNs now = sim_.now();
  ++stats_.msgs_received;
  trace_recv(fr, now);

  // Any decoded message is a liveness proof for its origin.
  NeighborTable& t = tables_[m.origin];
  t.heard = now;

  switch (m.kind) {
    case CtrlMsg::Kind::kHello:
      if (!t.have_hello || t.seq != m.seq || t.subflows != m.subflows) {
        if (t.subflows != m.subflows) {
          knowledge_dirty_ = true;
          last_knowledge_change_ = now;
        }
        t.subflows = m.subflows;
        t.seq = m.seq;
        t.have_hello = true;
      }
      break;

    case CtrlMsg::Kind::kHelloDelta:
      // Additive merge, valid only against the matching full table.
      if (t.have_hello && t.seq == m.seq && !m.subflows.empty()) {
        bool changed = false;
        for (int s : m.subflows) {
          const auto it = std::lower_bound(t.subflows.begin(), t.subflows.end(), s);
          if (it == t.subflows.end() || *it != s) {
            t.subflows.insert(it, s);
            changed = true;
          }
        }
        if (changed) {
          knowledge_dirty_ = true;
          last_knowledge_change_ = now;
        }
      }
      break;

    case CtrlMsg::Kind::kConstraint: {
      if (m.to != self_) break;  // overheard someone else's accumulation
      const auto it = flows_ctrl_.find(m.flow);
      if (it == flows_ctrl_.end()) break;
      FlowCtrl& fc = it->second;
      if (fc.down_acc == m.cliques) break;
      fc.down_acc = m.cliques;
      refresh_knowledge(now);  // local cliques must be current before the union
      if (rebuild_acc(m.flow, fc, now) && fc.upstream != kInvalidNode &&
          mac_.ctrl_backlog() <= cfg_.max_backlog)
        send_constraint(m.flow, fc);  // propagate upstream without a tick of delay
      break;
    }

    case CtrlMsg::Kind::kRate: {
      if (m.to != self_) break;
      const auto it = flows_ctrl_.find(m.flow);
      if (it == flows_ctrl_.end()) break;
      FlowCtrl& fc = it->second;
      fc.rate_seq = m.seq;
      fc.rate = m.rate;
      fc.have_rate = true;
      if (m.rate > 0.0) set_lane(m.flow, fc.hop, m.rate);
      // Forward even unchanged refreshes: the hop after us may have missed
      // an earlier copy, and loss healing relies on this relay chain.
      if (fc.downstream != kInvalidNode && mac_.ctrl_backlog() <= cfg_.max_backlog)
        send_rate(m.flow, fc);
      break;
    }
  }
}

void AllocAgent::trace_recv(const Frame& fr, TimeNs now) const {
  if (trace_ == nullptr || !trace_->enabled<TraceCat::kCtrl>()) return;
  const CtrlMsg& m = *fr.ctrl;
  trace_->record<TraceCat::kCtrl>(now, TraceEvent::kCtrlRecv,
                                  static_cast<std::int16_t>(self_),
                                  static_cast<std::int32_t>(m.kind), m.origin,
                                  static_cast<double>(m.wire_bytes()),
                                  fr.type == FrameType::kCtrl ? 0.0 : 1.0);
}

// ------------------------------------------------------------- piggyback

std::shared_ptr<const CtrlMsg> AllocAgent::piggyback_payload(int* extra_bytes) {
  if (beacon_ == nullptr) rebuild_beacon();
  *extra_bytes += beacon_bytes_;
  return beacon_;
}

void AllocAgent::rebuild_beacon() {
  auto m = std::make_shared<CtrlMsg>();
  m->kind = CtrlMsg::Kind::kHelloDelta;
  m->origin = self_;
  m->seq = own_seq_;
  m->subflows = pending_delta_;
  beacon_bytes_ = m->wire_bytes();
  beacon_ = std::move(m);
}

}  // namespace e2efa
