#include "ctrl/admission.hpp"

#include <algorithm>

#include "alloc/knowledge.hpp"
#include "contention/cliques.hpp"
#include "util/assert.hpp"

namespace e2efa {

const char* to_string(AdmissionReason r) {
  switch (r) {
    case AdmissionReason::kAdmitted:
      return "admitted";
    case AdmissionReason::kCliqueOverload:
      return "clique-overload";
    case AdmissionReason::kTimeout:
      return "timeout";
  }
  return "?";
}

namespace {

// Worst candidate-touching clique load over `subset` with the basic-share
// denominator summed over `denom_flows` (deduplicated FlowIds).
double worst_load_impl(const FlowSet& flows, const ContentionGraph& g,
                       const std::vector<int>& subset, FlowId candidate,
                       std::vector<int>* worst_clique) {
  // Denominator: flows visible in the subset.
  std::vector<char> seen(static_cast<std::size_t>(flows.flow_count()), 0);
  double denom = 0.0;
  for (int s : subset) {
    FlowId f = flows.subflow(s).flow;
    if (!seen[static_cast<std::size_t>(f)]) {
      seen[static_cast<std::size_t>(f)] = 1;
      denom += flows.flow(f).weight * flows.virtual_length_of(f);
    }
  }
  if (denom <= 0.0) return 0.0;
  const double r0 = 1.0 / denom;

  double worst = 0.0;
  for (const std::vector<int>& clique : maximal_cliques_in_subset(g, subset)) {
    bool touches = false;
    double load = 0.0;
    for (int s : clique) {
      FlowId f = flows.subflow(s).flow;
      if (f == candidate) touches = true;
      load += flows.flow(f).weight * r0;
    }
    if (touches && load > worst) {
      worst = load;
      if (worst_clique) *worst_clique = clique;
    }
  }
  return worst;
}

AdmissionDecision decide(double worst, std::vector<int> worst_clique) {
  AdmissionDecision d;
  d.worst_load = worst;
  d.worst_clique = std::move(worst_clique);
  if (worst > 1.0 + kAdmissionEps) {
    d.admitted = false;
    d.reason = AdmissionReason::kCliqueOverload;
  }
  return d;
}

}  // namespace

double admission_local_worst_load(const FlowSet& flows,
                                  const ContentionGraph& g,
                                  const std::vector<int>& knowledge,
                                  FlowId candidate,
                                  std::vector<int>* worst_clique) {
  return worst_load_impl(flows, g, knowledge, candidate, worst_clique);
}

AdmissionDecision admission_check_centralized(const FlowSet& flows,
                                              const ContentionGraph& g,
                                              const std::vector<char>& active,
                                              FlowId candidate) {
  E2EFA_ASSERT(candidate >= 0 && candidate < flows.flow_count());
  E2EFA_ASSERT(static_cast<int>(active.size()) == flows.flow_count());
  std::vector<int> subset;
  for (int s = 0; s < flows.subflow_count(); ++s) {
    FlowId f = flows.subflow(s).flow;
    if (f == candidate || active[static_cast<std::size_t>(f)]) subset.push_back(s);
  }
  std::vector<int> worst_clique;
  double worst = worst_load_impl(flows, g, subset, candidate, &worst_clique);
  return decide(worst, std::move(worst_clique));
}

AdmissionDecision admission_check_distributed(const Topology& topo,
                                              const FlowSet& flows,
                                              const ContentionGraph& g,
                                              const std::vector<char>& active,
                                              FlowId candidate,
                                              const TopologyMask* mask) {
  E2EFA_ASSERT(candidate >= 0 && candidate < flows.flow_count());
  E2EFA_ASSERT(static_cast<int>(active.size()) == flows.flow_count());

  // What each node overhears of the *active* population (the candidate has
  // never transmitted, so nobody advertises its subflows)...
  std::vector<std::vector<int>> own = overheard_subflow_sets(topo, flows);
  for (std::vector<int>& o : own) {
    std::erase_if(o, [&](int s) {
      return !active[static_cast<std::size_t>(flows.subflow(s).flow)];
    });
  }
  // ...widened by one mask-respecting HELLO exchange, exactly like the
  // in-band control plane's knowledge model.
  std::vector<std::vector<int>> k = exchanged_knowledge(topo, own, mask);

  const Flow& cand = flows.flow(candidate);
  std::vector<int> cand_subs;
  for (int h = 0; h < cand.length(); ++h) {
    cand_subs.push_back(flows.subflow_index(candidate, h));
  }

  AdmissionDecision out;
  for (int h = 0; h < cand.length(); ++h) {
    const NodeId v = cand.path[static_cast<std::size_t>(h)];
    // K(v) ∪ candidate subflows (the ADMIT_REQ carries the candidate path).
    std::vector<int> kv = k[static_cast<std::size_t>(v)];
    kv.insert(kv.end(), cand_subs.begin(), cand_subs.end());
    std::sort(kv.begin(), kv.end());
    kv.erase(std::unique(kv.begin(), kv.end()), kv.end());

    std::vector<int> worst_clique;
    double load = admission_local_worst_load(flows, g, kv, candidate, &worst_clique);
    if (load > out.worst_load) {
      out.worst_load = load;
      out.worst_clique = std::move(worst_clique);
    }
  }
  if (out.worst_load > 1.0 + kAdmissionEps) {
    out.admitted = false;
    out.reason = AdmissionReason::kCliqueOverload;
  }
  return out;
}

}  // namespace e2efa
