#include "ctrl/messages.hpp"

namespace e2efa {

int CtrlMsg::wire_bytes() const {
  int bytes = 12;
  bytes += 2 * static_cast<int>(subflows.size());
  for (const std::vector<int>& c : cliques)
    bytes += 1 + 2 * static_cast<int>(c.size());
  if (kind == Kind::kRate) bytes += 8;
  if (kind == Kind::kTransAck) bytes += 12;
  return bytes;
}

const char* to_string(CtrlMsg::Kind k) {
  switch (k) {
    case CtrlMsg::Kind::kHello: return "HELLO";
    case CtrlMsg::Kind::kHelloDelta: return "HELLO_DELTA";
    case CtrlMsg::Kind::kConstraint: return "CONSTRAINT";
    case CtrlMsg::Kind::kRate: return "RATE";
    case CtrlMsg::Kind::kAdmitReq: return "ADMIT_REQ";
    case CtrlMsg::Kind::kAdmitRsp: return "ADMIT_RSP";
    case CtrlMsg::Kind::kTransAck: return "TRANS_ACK";
  }
  return "?";
}

}  // namespace e2efa
