// Allocation-control messages (the in-band form of Sec. IV-B's phase 1).
//
// Four message kinds carry the distributed algorithm's state over the
// simulated MAC instead of an out-of-band oracle:
//
//   HELLO       broadcast, periodic: the sender's Own(v) — the active
//               subflows it overhears — with a sequence number so receivers
//               can replace stale tables wholesale.
//   HELLO_DELTA piggybacked on RTS/CTS: a small additive table delta (or an
//               empty liveness beacon). Receivers merge it only when its
//               sequence number matches the full table they already hold.
//   CONSTRAINT  directed upstream along a flow: the accumulated clique set
//               ⋃ local cliques over the flow's transmitting nodes from
//               this hop downstream. The source's accumulation therefore
//               converges to the union over the whole path.
//   RATE        directed downstream along a flow: the source's solved share;
//               every transmitting hop applies it to its TagScheduler lane
//               and forwards it on.
//   ADMIT_REQ   directed downstream along a *candidate* flow's path before
//               it starts: each transmitting hop evaluates the local
//               clique-bound admission check (src/ctrl/admission.hpp) over
//               its current knowledge, ANDs its verdict into the message,
//               and forwards it. Hardened mode only.
//   ADMIT_RSP   the final hop's verdict returned upstream hop-by-hop to the
//               candidate's source. Hardened mode only.
//
// All messages are fire-and-forget (kCtrl broadcast frames carry no ACK);
// robustness comes from periodic re-advertisement — plus, in hardened mode
// (CtrlConfig::hardened, auto-enabled under faults/churn/mobility), bounded
// retransmission with exponential backoff for the directed kinds, with
// forwarding overheard from the next hop standing in for an ack.
//
// Directed flow-state messages additionally carry a *generation* stamp
// (CtrlMsg::gen): every activity toggle of a flow bumps its generation, and
// hardened receivers drop CONSTRAINT/RATE stamped with a stale generation —
// a RATE composed before the flow departed can never resurrect its lanes.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow.hpp"
#include "topology/topology.hpp"

namespace e2efa {

struct CtrlMsg {
  enum class Kind : std::uint8_t {
    kHello = 0,
    kHelloDelta = 1,
    kConstraint = 2,
    kRate = 3,
    kAdmitReq = 4,
    kAdmitRsp = 5,
    /// Transport-layer cumulative ACK (src/transport/ack_plane.hpp):
    /// directed upstream hop-by-hop along an elastic flow's path from sink
    /// to source. Never enters the allocation plane — the MAC dispatches it
    /// to its transport listener instead of the AllocAgent.
    kTransAck = 6,
  };

  Kind kind = Kind::kHello;
  NodeId origin = kInvalidNode;  ///< Node that composed the message.
  NodeId to = kInvalidNode;      ///< Directed target; kInvalidNode = broadcast.
  std::uint32_t seq = 0;         ///< Origin-local sequence per message stream.
  FlowId flow = -1;              ///< kConstraint/kRate/kAdmit*: subject flow.
  /// Epoch generation of `flow` when the message was composed (bumped on
  /// every activity toggle). Hardened receivers drop mismatches.
  std::uint16_t gen = 0;
  /// kHello: the full Own set; kHelloDelta: ids added since `seq` began;
  /// kAdmitReq: the candidate's subflow ids (its path travels with it).
  std::vector<int> subflows;
  /// kConstraint: accumulated cliques (ascending global subflow ids each).
  std::vector<std::vector<int>> cliques;
  double rate = 0.0;  ///< kRate: allocated share in units of B.
  /// kAdmitReq/kAdmitRsp: AND of the verdicts of the hops visited so far.
  bool admit_ok = true;
  /// kTransAck: highest in-order data sequence delivered at the sink.
  std::int64_t cumack = -1;
  /// kTransAck: data sequence whose arrival triggered this ACK (the
  /// source's RTT / delivery-rate probe).
  std::int64_t echo_seq = -1;
  /// Causal span id of the kCtrlSend trace record that emitted this message
  /// (0 when tracing is off/filtered). Observability only: it rides the
  /// simulated message so the receiver's kCtrlRecv record can point at the
  /// send that caused it, and is *not* part of the modeled wire size.
  std::uint32_t span = 0;

  /// Modeled wire size in bytes (drives airtime and the overhead metric):
  /// a 12-byte header (kind, origin, to, seq, flow, generation, verdict
  /// bit), 2 bytes per subflow id, 1 + 2·|members| per clique, 8 bytes for
  /// a rate, 12 bytes for a transport ack (cumack + echo).
  int wire_bytes() const;
};

const char* to_string(CtrlMsg::Kind k);

}  // namespace e2efa
