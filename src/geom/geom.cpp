#include "geom/geom.hpp"

#include "util/assert.hpp"

namespace e2efa {

double distance_sq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double distance(const Point& a, const Point& b) { return std::sqrt(distance_sq(a, b)); }

bool within_range(const Point& a, const Point& b, double range) {
  E2EFA_ASSERT(range >= 0.0);
  return distance_sq(a, b) <= range * range;
}

}  // namespace e2efa
