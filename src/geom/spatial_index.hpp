// Uniform-grid spatial index over a fixed point set.
//
// Cell size equals the largest query radius (for the topology: the
// interference range), so every range query only has to inspect the 3x3
// cell neighborhood of the query point. Range queries are *exact* — every
// candidate from the neighborhood is distance-checked — so callers get the
// same sets an all-pairs scan would produce, in ascending-index order, at
// O(points-in-neighborhood) instead of O(N) per query.
//
// The index is immutable after construction (like Topology) and holds the
// point ids bucketed per cell in one contiguous array (CSR layout), so a
// 10k+-node city topology costs two O(N) passes and ~8 bytes per point.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geom.hpp"

namespace e2efa {

class SpatialGrid {
 public:
  /// Indexes `points` with square cells of side `cell_size` (> 0). Queries
  /// with a radius larger than `cell_size` fall back to scanning more cell
  /// rings and stay exact, just slower — size the cell to the largest
  /// frequent radius.
  SpatialGrid(const std::vector<Point>& points, double cell_size);

  int point_count() const { return static_cast<int>(points_.size()); }
  double cell_size() const { return cell_; }

  /// Calls fn(j) for every point j != i within `range` meters of point i,
  /// in ascending j order (matching what the all-pairs double loop visits).
  template <typename Fn>
  void for_each_in_range_of(int i, double range, Fn&& fn) const {
    gather(points_[static_cast<std::size_t>(i)], range, i);
    for (int j : scratch_) fn(j);
  }

  /// Same, for an arbitrary query point; no index is excluded.
  template <typename Fn>
  void for_each_in_range(const Point& p, double range, Fn&& fn) const {
    gather(p, range, -1);
    for (int j : scratch_) fn(j);
  }

  /// Ascending ids of all points within `range` of point i, excluding i.
  std::vector<int> in_range_of(int i, double range) const;

 private:
  /// Fills scratch_ with the ascending ids of points within `range` of p,
  /// excluding `exclude` (-1 = keep everything).
  void gather(const Point& p, double range, int exclude) const;

  int cell_of(const Point& p) const;

  std::vector<Point> points_;
  double cell_ = 0.0;
  double min_x_ = 0.0, min_y_ = 0.0;
  int cols_ = 0, rows_ = 0;
  // CSR buckets: ids of the points in cell c are
  // cell_points_[cell_start_[c] .. cell_start_[c + 1]), ascending.
  std::vector<std::int32_t> cell_start_;
  std::vector<std::int32_t> cell_points_;
  // Query scratch, reused across calls to avoid per-query allocation. The
  // index is logically immutable; concurrent queries need one grid per
  // thread (same rule as the rest of the simulator's state).
  mutable std::vector<int> scratch_;
};

}  // namespace e2efa
