#include "geom/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace e2efa {

SpatialGrid::SpatialGrid(const std::vector<Point>& points, double cell_size)
    : points_(points), cell_(cell_size) {
  E2EFA_ASSERT(cell_ > 0.0);
  if (points_.empty()) {
    cols_ = rows_ = 1;
    cell_start_.assign(2, 0);
    return;
  }
  double max_x = points_[0].x, max_y = points_[0].y;
  min_x_ = points_[0].x;
  min_y_ = points_[0].y;
  for (const Point& p : points_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  cols_ = static_cast<int>(std::floor((max_x - min_x_) / cell_)) + 1;
  rows_ = static_cast<int>(std::floor((max_y - min_y_) / cell_)) + 1;

  // Counting sort into CSR buckets; point ids within a cell stay ascending
  // because the fill pass visits them in id order.
  const std::size_t cells = static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  cell_start_.assign(cells + 1, 0);
  for (const Point& p : points_) ++cell_start_[static_cast<std::size_t>(cell_of(p)) + 1];
  for (std::size_t c = 1; c <= cells; ++c) cell_start_[c] += cell_start_[c - 1];
  cell_points_.resize(points_.size());
  std::vector<std::int32_t> next(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const int c = cell_of(points_[i]);
    cell_points_[static_cast<std::size_t>(next[static_cast<std::size_t>(c)]++)] =
        static_cast<std::int32_t>(i);
  }
}

int SpatialGrid::cell_of(const Point& p) const {
  int cx = static_cast<int>(std::floor((p.x - min_x_) / cell_));
  int cy = static_cast<int>(std::floor((p.y - min_y_) / cell_));
  cx = std::clamp(cx, 0, cols_ - 1);
  cy = std::clamp(cy, 0, rows_ - 1);
  return cy * cols_ + cx;
}

void SpatialGrid::gather(const Point& p, double range, int exclude) const {
  scratch_.clear();
  E2EFA_ASSERT(range >= 0.0);
  if (points_.empty()) return;
  const double r2 = range * range;
  // Cell ring wide enough for the query radius (1 when range <= cell size).
  const int reach = std::max(1, static_cast<int>(std::ceil(range / cell_)));
  const int cx = std::clamp(static_cast<int>(std::floor((p.x - min_x_) / cell_)), 0, cols_ - 1);
  const int cy = std::clamp(static_cast<int>(std::floor((p.y - min_y_) / cell_)), 0, rows_ - 1);
  const int x0 = std::max(0, cx - reach), x1 = std::min(cols_ - 1, cx + reach);
  const int y0 = std::max(0, cy - reach), y1 = std::min(rows_ - 1, cy + reach);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const std::size_t c = static_cast<std::size_t>(y) * static_cast<std::size_t>(cols_) +
                            static_cast<std::size_t>(x);
      for (std::int32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const int j = cell_points_[static_cast<std::size_t>(k)];
        if (j == exclude) continue;
        if (distance_sq(p, points_[static_cast<std::size_t>(j)]) <= r2)
          scratch_.push_back(j);
      }
    }
  }
  // Cells are visited row-major, so ids arrive grouped by cell; one sort
  // restores the global ascending order the all-pairs loop produces.
  std::sort(scratch_.begin(), scratch_.end());
}

std::vector<int> SpatialGrid::in_range_of(int i, double range) const {
  E2EFA_ASSERT(i >= 0 && i < point_count());
  gather(points_[static_cast<std::size_t>(i)], range, i);
  return scratch_;
}

}  // namespace e2efa
