// 2-D geometry for node placement and radio range tests.
#pragma once

#include <cmath>

namespace e2efa {

/// A point in the plane, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

double distance(const Point& a, const Point& b);
double distance_sq(const Point& a, const Point& b);

/// True when b lies within (or exactly at) `range` meters of a.
/// The comparison is done on squared distances; `range` must be >= 0.
bool within_range(const Point& a, const Point& b, double range);

}  // namespace e2efa
