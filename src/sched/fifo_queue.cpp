#include "sched/fifo_queue.hpp"

#include "check/check.hpp"
#include "util/assert.hpp"

namespace e2efa {

FifoQueue::FifoQueue(int capacity) : capacity_(capacity) {
  E2EFA_ASSERT(capacity >= 1);
}

bool FifoQueue::enqueue(Packet p, TimeNs now) {
  if (static_cast<int>(q_.size()) >= capacity_) return false;
  q_.push_back(p);
  if (check_ != nullptr)
    check_->on_fifo_enqueue(check_node_, static_cast<int>(q_.size()), now);
  return true;
}

const Packet& FifoQueue::head() const {
  E2EFA_ASSERT(!q_.empty());
  return q_.front();
}

Packet FifoQueue::pop_front() {
  E2EFA_ASSERT(!q_.empty());
  Packet p = q_.front();
  q_.pop_front();
  return p;
}

Packet FifoQueue::pop_success(TimeNs) { return pop_front(); }
Packet FifoQueue::pop_drop(TimeNs) { return pop_front(); }

}  // namespace e2efa
