// Bounded drop-tail FIFO — the interface queue of the plain IEEE 802.11
// baseline (all flows share one queue per node, no per-flow state).
#pragma once

#include <deque>

#include "sched/tx_queue.hpp"

namespace e2efa {

class CheckContext;

class FifoQueue : public TxQueue {
 public:
  explicit FifoQueue(int capacity);

  bool enqueue(Packet p, TimeNs now) override;
  bool has_packet() const override { return !q_.empty(); }
  const Packet& head() const override;
  Packet pop_success(TimeNs now) override;
  Packet pop_drop(TimeNs now) override;
  int backlog() const override { return static_cast<int>(q_.size()); }

  /// Installs the invariant-check observer (depth-vs-capacity oracle).
  void set_check(CheckContext* check, std::int32_t node) {
    check_ = check;
    check_node_ = node;
  }

 private:
  Packet pop_front();
  int capacity_;
  std::deque<Packet> q_;
  CheckContext* check_ = nullptr;
  std::int32_t check_node_ = -1;
};

}  // namespace e2efa
