// Transmit-queue abstraction between the node stack and the MAC.
//
// The MAC latches head() when it begins a channel-access attempt; the
// selected head must remain stable until pop_success/pop_drop removes it
// (new arrivals may not displace an in-flight packet).
#pragma once

#include "phy/packet.hpp"
#include "util/time.hpp"

namespace e2efa {

class TxQueue {
 public:
  virtual ~TxQueue() = default;

  /// Offers a packet; returns false when the queue is full (drop-tail).
  virtual bool enqueue(Packet p, TimeNs now) = 0;

  virtual bool has_packet() const = 0;

  /// The packet the MAC should transmit next. Requires has_packet().
  virtual const Packet& head() const = 0;

  /// Removes the current head after a successful (ACKed) transmission.
  virtual Packet pop_success(TimeNs now) = 0;

  /// Removes the current head after a retry-limit drop.
  virtual Packet pop_drop(TimeNs now) = 0;

  /// Total buffered packets.
  virtual int backlog() const = 0;
};

/// Hooks the MAC uses to drive the 2PA tag machinery (Sec. IV-C). Null for
/// protocols without tags (plain 802.11). Time-taking methods age out
/// stale neighbor entries (departed flows must not throttle survivors).
class TagAgent {
 public:
  virtual ~TagAgent() = default;

  /// Start tag S of the current head packet (virtual-time µs).
  virtual double head_tag() const = 0;
  /// Global subflow id of the current head packet.
  virtual std::int32_t head_subflow() const = 0;

  /// Records an overheard (subflow, tag) pair into the local table.
  virtual void observe_tag(std::int32_t subflow, double tag, TimeNs now) = 0;

  /// Sender-side extra backoff Q = α·Σ_m (S − r_m) in slots (may be < 0),
  /// over the non-stale table entries.
  virtual double q_slots(TimeNs now) const = 0;

  /// Receiver-side estimate R = α·Σ_{m≠i} (r_i − r_m) for the subflow whose
  /// DATA was just received; carried back in the ACK.
  virtual double r_slots_for(std::int32_t data_subflow, TimeNs now) const = 0;

  /// Sender stores the R delivered by an ACK for the given subflow.
  virtual void store_ack_r(std::int32_t subflow, double r) = 0;

  /// Last stored R for the current head's subflow (0 if none).
  virtual double head_last_r() const = 0;
};

}  // namespace e2efa
