#include "sched/tag_scheduler.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "util/assert.hpp"

namespace e2efa {

TagScheduler::TagScheduler(std::vector<SubflowConfig> subflows, int per_queue_capacity,
                           std::int64_t bits_per_second, double alpha,
                           TimeNs tag_horizon)
    : capacity_(per_queue_capacity),
      bps_(bits_per_second),
      alpha_(alpha),
      tag_horizon_(tag_horizon) {
  E2EFA_ASSERT(per_queue_capacity >= 1);
  E2EFA_ASSERT(bits_per_second > 0);
  E2EFA_ASSERT(alpha >= 0.0);
  E2EFA_ASSERT(tag_horizon > 0);
  for (const SubflowConfig& cfg : subflows) {
    E2EFA_ASSERT_MSG(cfg.share > 0.0, "subflow share must be positive");
    E2EFA_ASSERT_MSG(!lane_index_.contains(cfg.subflow), "duplicate subflow");
    lane_index_[cfg.subflow] = lanes_.size();
    lanes_.push_back(Lane{cfg, {}, 0.0, 0.0, 0.0, 0.0});
    node_share_ += cfg.share;
  }
}

double TagScheduler::packet_vtime(const Packet& p) const {
  // Payload airtime at full channel rate, in µs.
  return 8.0 * static_cast<double>(p.payload_bytes) / static_cast<double>(bps_) * 1e6;
}

TagScheduler::Lane& TagScheduler::lane_of(std::int32_t subflow) {
  const auto it = lane_index_.find(subflow);
  E2EFA_ASSERT_MSG(it != lane_index_.end(), "packet for a subflow this node does not originate");
  return lanes_[it->second];
}

void TagScheduler::assign_head_tags(Lane& lane) {
  E2EFA_ASSERT(!lane.q.empty());
  const double vt = packet_vtime(lane.q.front());
  lane.start_tag = vclock_;
  lane.internal_finish =
      std::max(lane.start_tag, lane.last_internal_finish) + vt / lane.cfg.share;
  lane.external_finish = lane.start_tag + vt / node_share_;
  if (trace_ != nullptr) {
    trace_->record<TraceCat::kTag>(trace_now_, TraceEvent::kTagStart, trace_node_,
                                   lane.cfg.subflow, -1, lane.start_tag);
    trace_->record<TraceCat::kTag>(trace_now_, TraceEvent::kTagInternalFinish,
                                   trace_node_, lane.cfg.subflow, -1,
                                   lane.internal_finish);
    trace_->record<TraceCat::kTag>(trace_now_, TraceEvent::kTagExternalFinish,
                                   trace_node_, lane.cfg.subflow, -1,
                                   lane.external_finish);
  }
}

void TagScheduler::set_vclock(double v) {
  if (v == vclock_) return;
  if (trace_ != nullptr)
    trace_->record<TraceCat::kVClock>(trace_now_, TraceEvent::kVClockUpdate,
                                      trace_node_, -1, -1, v, vclock_);
  if (check_ != nullptr) check_->on_vclock(check_node_, vclock_, v, trace_now_);
  vclock_ = v;
}

bool TagScheduler::enqueue(Packet p, TimeNs now) {
  Lane& lane = lane_of(p.subflow);
  if (static_cast<int>(lane.q.size()) >= capacity_) return false;

  // Join synchronization: after a long idle gap, fast-forward the virtual
  // clock to the freshest overheard tag so this node re-enters contention
  // without an enormous apparent service deficit (which would otherwise
  // starve its neighbors until the tags converge). A grace window keeps
  // the sync open for nodes whose tables were still empty here.
  trace_now_ = now;
  const bool was_empty = !has_packet();
  if (was_empty && (last_busy_ == kInvalidTime || now - last_busy_ > tag_horizon_)) {
    double synced = vclock_;
    for (const auto& [subflow, e] : tag_table_) {
      if (fresh(e, now)) synced = std::max(synced, e.tag);
    }
    set_vclock(synced);
    // Keep the grace short: long enough for a neighbor to echo our first
    // packets (bootstrapping an empty table), short enough that a node
    // building up a legitimate service deficit stops adopting its
    // neighbors' clocks — that deficit is the fairness signal.
    sync_grace_until_ = now + tag_horizon_ / 8;
  }
  last_busy_ = now;

  lane.q.push_back(p);
  if (check_ != nullptr)
    check_->on_lane_enqueue(check_node_, lane.cfg.subflow,
                            static_cast<int>(lane.q.size()), now);
  // NOTE: an arrival never displaces the currently selected head — the MAC
  // may already be mid-exchange with it; re-selection happens at pop time.
  if (lane.q.size() == 1) assign_head_tags(lane);
  return true;
}

bool TagScheduler::has_packet() const {
  return std::any_of(lanes_.begin(), lanes_.end(),
                     [](const Lane& l) { return !l.q.empty(); });
}

void TagScheduler::select_head() const {
  if (selected_ >= 0 && !lanes_[static_cast<std::size_t>(selected_)].q.empty()) return;
  int best = -1;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const Lane& l = lanes_[i];
    if (l.q.empty()) continue;
    if (best < 0 || l.internal_finish < lanes_[static_cast<std::size_t>(best)].internal_finish)
      best = static_cast<int>(i);
  }
  E2EFA_ASSERT_MSG(best >= 0, "head() on empty scheduler");
  selected_ = best;
}

const Packet& TagScheduler::head() const {
  select_head();
  return lanes_[static_cast<std::size_t>(selected_)].q.front();
}

Packet TagScheduler::pop_selected() {
  select_head();
  Lane& lane = lanes_[static_cast<std::size_t>(selected_)];
  Packet p = lane.q.front();
  if (check_ != nullptr)
    check_->on_lane_serve(check_node_, lane.cfg.subflow, lane.internal_finish,
                          trace_now_);
  lane.q.pop_front();
  lane.last_internal_finish = lane.internal_finish;
  if (!lane.q.empty()) assign_head_tags(lane);
  selected_ = -1;
  return p;
}

Packet TagScheduler::pop_success(TimeNs now) {
  trace_now_ = now;
  select_head();
  // Advance the virtual clock by the external service time of the packet
  // just sent (step (4) of the algorithm): every successful transmission
  // consumes L/c of node-level virtual time.
  Lane& lane = lanes_[static_cast<std::size_t>(selected_)];
  set_vclock(std::max(vclock_ + packet_vtime(lane.q.front()) / node_share_,
                      lane.external_finish));
  last_busy_ = now;
  return pop_selected();
}

Packet TagScheduler::pop_drop(TimeNs now) {
  trace_now_ = now;
  last_busy_ = now;
  return pop_selected();
}

int TagScheduler::backlog() const {
  int n = 0;
  for (const Lane& l : lanes_) n += static_cast<int>(l.q.size());
  return n;
}

void TagScheduler::update_share(std::int32_t subflow, double share) {
  E2EFA_ASSERT_MSG(share > 0.0, "subflow share must be positive");
  if (check_ != nullptr) check_->on_share_update(check_node_, subflow);
  Lane& lane = lane_of(subflow);
  node_share_ += share - lane.cfg.share;
  lane.cfg.share = share;
  // Re-derive tags under the new share; the SFQ continuation restarts from
  // the current virtual clock so a raised share takes effect immediately.
  lane.last_internal_finish = std::min(lane.last_internal_finish, vclock_);
  if (!lane.q.empty()) assign_head_tags(lane);
  // All external finish tags shift with the node share; refresh every head.
  // NOTE: the current selection is intentionally kept — the MAC may be
  // mid-exchange with the latched head; new shares apply from the next
  // selection after pop.
  for (Lane& l : lanes_)
    if (!l.q.empty() && &l != &lane)
      l.external_finish = l.start_tag + packet_vtime(l.q.front()) / node_share_;
}

double TagScheduler::share_of(std::int32_t subflow) const {
  const auto it = lane_index_.find(subflow);
  E2EFA_ASSERT_MSG(it != lane_index_.end(), "share_of: subflow has no lane at this node");
  return lanes_[it->second].cfg.share;
}

double TagScheduler::head_tag() const {
  select_head();
  return lanes_[static_cast<std::size_t>(selected_)].start_tag;
}

std::int32_t TagScheduler::head_subflow() const {
  select_head();
  return lanes_[static_cast<std::size_t>(selected_)].cfg.subflow;
}

void TagScheduler::observe_tag(std::int32_t subflow, double tag, TimeNs now) {
  // Only neighbor subflows belong in the table.
  if (lane_index_.contains(subflow)) return;
  tag_table_[subflow] = TableEntry{tag, now};
  // Inside the join grace window, adopt larger overheard clocks (see the
  // header for why this cannot erase a legitimate fairness advantage).
  if (now <= sync_grace_until_ && tag > vclock_) {
    trace_now_ = now;
    set_vclock(tag);
    for (Lane& l : lanes_)
      if (!l.q.empty()) assign_head_tags(l);
  }
}

double TagScheduler::q_slots(TimeNs now) const {
  if (tag_table_.empty() || !has_packet()) return 0.0;
  const double s = head_tag();
  double sum = 0.0;
  int counted = 0;
  for (const auto& [subflow, e] : tag_table_) {
    if (!fresh(e, now)) continue;
    sum += s - e.tag;
    ++counted;
  }
  return counted > 0 ? alpha_ * sum : 0.0;
}

double TagScheduler::r_slots_for(std::int32_t data_subflow, TimeNs now) const {
  const auto it = tag_table_.find(data_subflow);
  if (it == tag_table_.end() || !fresh(it->second, now)) return 0.0;
  const double r_i = it->second.tag;
  double sum = 0.0;
  for (const auto& [subflow, e] : tag_table_) {
    if (subflow == data_subflow || !fresh(e, now)) continue;
    sum += r_i - e.tag;
  }
  return alpha_ * sum;
}

void TagScheduler::store_ack_r(std::int32_t subflow, double r) { last_r_[subflow] = r; }

double TagScheduler::head_last_r() const {
  if (!has_packet()) return 0.0;
  const auto it = last_r_.find(head_subflow());
  return it == last_r_.end() ? 0.0 : it->second;
}

}  // namespace e2efa
