// The paper's second-phase scheduler (Sec. IV-C).
//
// Per node: one bounded queue per locally-originating subflow j with
// allocated share c^j; node share c = Σ_j c^j. Each head-of-line packet k
// of subflow j carries three tags (virtual time in µs of channel airtime):
//
//   start tag           S = v(t) when the packet reaches its queue head,
//   internal finish tag I = max(S, I_prev^j) + L/c^j — selects the next
//                           packet to send (I_prev^j is the lane's previous
//                           internal finish tag; the max() continuation is
//                           the standard SFQ rule that keeps service of
//                           backlogged lanes proportional to c^j — without
//                           it, lanes with close shares degenerate to 1:1
//                           alternation),
//   external finish tag E = S + L/c    — advances the node virtual clock v
//                                        after a successful transmission.
//
// The node also keeps a table of the most recently overheard service tags
// of one-hop-neighbor subflows (piggybacked on RTS/CTS/DATA/ACK). The
// sender-side backoff component is Q = α·Σ_m (S − r_m); the receiver
// estimates R = α·Σ_{m≠i} (r_i − r_m) and returns it in the ACK. The MAC
// draws its contention backoff from [0, CW_min + max(Q, R, 0)].
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "sched/tx_queue.hpp"

namespace e2efa {

class CheckContext;

class TagScheduler : public TxQueue, public TagAgent {
 public:
  struct SubflowConfig {
    std::int32_t subflow = -1;  ///< Global subflow id.
    double share = 0.0;         ///< Allocated share c^j in units of B (> 0).
  };

  /// `bits_per_second` is the channel rate B (tag units are µs of airtime
  /// at B); `alpha` is the paper's short-term fairness strictness knob;
  /// `tag_horizon` ages neighbor-table entries (a flow-churn extension:
  /// tags not refreshed within the horizon no longer enter Q/R, so departed
  /// flows stop throttling survivors).
  TagScheduler(std::vector<SubflowConfig> subflows, int per_queue_capacity,
               std::int64_t bits_per_second, double alpha,
               TimeNs tag_horizon = 2 * kSecond);

  // --- TxQueue ---
  bool enqueue(Packet p, TimeNs now) override;
  bool has_packet() const override;
  const Packet& head() const override;
  Packet pop_success(TimeNs now) override;
  Packet pop_drop(TimeNs now) override;
  int backlog() const override;

  // --- TagAgent ---
  double head_tag() const override;
  std::int32_t head_subflow() const override;
  void observe_tag(std::int32_t subflow, double tag, TimeNs now) override;
  double q_slots(TimeNs now) const override;
  double r_slots_for(std::int32_t data_subflow, TimeNs now) const override;
  void store_ack_r(std::int32_t subflow, double r) override;
  double head_last_r() const override;

  /// Updates the allocated share of one lane (phase-1 re-allocation after
  /// flow churn). Node share is recomputed and the lane's head tags are
  /// re-derived from the current virtual clock. share must be > 0.
  void update_share(std::int32_t subflow, double share);

  /// Current allocated share c^j of one lane (asserts if the subflow has no
  /// lane here). Lets the in-band control plane skip no-op RATE updates and
  /// tests read back what was applied.
  double share_of(std::int32_t subflow) const;

  /// Installs the trace sink for tag/vclock events at this node. The
  /// scheduler's TxQueue interface carries `now` on every mutating call, so
  /// emissions reuse the caller's timestamp (tracked in trace_now_); for the
  /// runner's out-of-band update_share calls, note_time() refreshes it.
  void set_trace(TraceSink* trace, std::int16_t node) {
    trace_ = trace;
    trace_node_ = node;
  }
  /// Refreshes the emission timestamp before calls that carry no `now`
  /// (runner epoch-boundary update_share).
  void note_time(TimeNs now) { trace_now_ = now; }

  /// Installs the invariant-check observer (lane depth, tag monotonicity,
  /// virtual-clock monotonicity oracles). Not owned; never mutates state.
  void set_check(CheckContext* check, std::int32_t node) {
    check_ = check;
    check_node_ = node;
  }

  /// Node share c = Σ_j c^j.
  double node_share() const { return node_share_; }
  /// Current virtual clock v (µs).
  double virtual_clock() const { return vclock_; }
  /// Number of (neighbor-subflow, tag) entries in the local table.
  int tag_table_size() const { return static_cast<int>(tag_table_.size()); }

 private:
  struct Lane {
    SubflowConfig cfg;
    std::deque<Packet> q;
    // Tags of the head packet (valid when !q.empty()).
    double start_tag = 0.0;
    double internal_finish = 0.0;
    double external_finish = 0.0;
    // Internal finish tag of the lane's previously served packet (SFQ
    // continuation for backlogged proportional service).
    double last_internal_finish = 0.0;
  };

  /// Virtual transmission time of a packet: payload airtime at B, in µs.
  double packet_vtime(const Packet& p) const;
  void assign_head_tags(Lane& lane);
  void set_vclock(double v);  ///< vclock_ = v, tracing the change.
  void select_head() const;
  Lane& lane_of(std::int32_t subflow);
  Packet pop_selected();

  struct TableEntry {
    double tag = 0.0;
    TimeNs updated = 0;
  };
  bool fresh(const TableEntry& e, TimeNs now) const {
    return now - e.updated <= tag_horizon_;
  }

  std::vector<Lane> lanes_;
  std::unordered_map<std::int32_t, std::size_t> lane_index_;
  int capacity_;
  std::int64_t bps_;
  double alpha_;
  TimeNs tag_horizon_;
  double node_share_ = 0.0;
  double vclock_ = 0.0;
  mutable int selected_ = -1;  ///< Lane chosen for the current head; -1 = none.
  std::unordered_map<std::int32_t, TableEntry> tag_table_;  ///< neighbor subflow -> r_m
  std::unordered_map<std::int32_t, double> last_r_;         ///< own subflow -> last ACK R
  /// Join synchronization: after an idle gap longer than the tag horizon,
  /// the virtual clock fast-forwards to the largest recently heard tag so a
  /// (re)joining node does not start with an enormous apparent lag — and
  /// for one further horizon (the *grace window*) it keeps adopting larger
  /// overheard tags, which bootstraps joiners whose tables were empty at
  /// their first enqueue. Incumbents never resync: their tag lag *is* the
  /// fairness signal (and negative lag is floored in the backoff anyway,
  /// so adopting a larger clock never removes a legitimate advantage).
  TimeNs last_busy_ = kInvalidTime;
  TimeNs sync_grace_until_ = kInvalidTime;
  static constexpr TimeNs kInvalidTime = -1;
  TraceSink* trace_ = nullptr;
  std::int16_t trace_node_ = -1;
  TimeNs trace_now_ = 0;  ///< Timestamp of the innermost mutating call.
  CheckContext* check_ = nullptr;
  std::int32_t check_node_ = -1;
};

}  // namespace e2efa
