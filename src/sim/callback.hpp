// Small-buffer-optimized move-only callable for the event engine.
//
// Event handlers are almost always lambdas capturing a `this` pointer plus a
// few scalars (MAC timers, backoff steps, CBR ticks) or, at worst, a Frame
// (~112 bytes, the deferred-ACK path). `std::function` heap-allocates most
// of these; `Callback` stores anything up to kInlineCapacity bytes inline in
// the event record itself, so steady-state simulation schedules zero
// allocations. Larger or over-aligned callables fall back to the heap.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace e2efa {

class Callback {
 public:
  /// Inline storage: sized for the hot-path captures (a `this` pointer plus
  /// a handful of scalars) while keeping the event slab record at exactly
  /// one cache line. Anything bigger — e.g. a closure holding a whole Frame —
  /// takes the heap fallback, which is no worse than `std::function` was.
  static constexpr std::size_t kInlineCapacity = 48;
  static_assert(kInlineCapacity >= 48, "inline storage contract");

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using T = std::decay_t<F>;
    if constexpr (sizeof(T) <= kInlineCapacity && alignof(T) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<T>) {
      ::new (static_cast<void*>(buf_)) T(std::forward<F>(f));
      ops_ = &inline_ops<T>;
    } else {
      ::new (static_cast<void*>(buf_)) T*(new T(std::forward<F>(f)));
      ops_ = &heap_ops<T>;
    }
  }

  Callback(Callback&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  Callback& operator=(Callback&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(o.buf_, buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Constructs the callable directly in this callback's storage (no
  /// intermediate Callback, no relocate).
  template <typename F>
  void emplace(F&& f) {
    using T = std::decay_t<F>;
    reset();
    if constexpr (sizeof(T) <= kInlineCapacity && alignof(T) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<T>) {
      ::new (static_cast<void*>(buf_)) T(std::forward<F>(f));
      ops_ = &inline_ops<T>;
    } else {
      ::new (static_cast<void*>(buf_)) T*(new T(std::forward<F>(f)));
      ops_ = &heap_ops<T>;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Single-indirect-call fire path: moves the callable to the stack,
  /// destroys the stored copy, empties *this, then invokes. Safe against
  /// *this being reused or relocated by the invoked code.
  void consume_invoke() {
    const Ops* o = ops_;
    ops_ = nullptr;
    o->consume(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* src, void* dst) noexcept;  // move into dst, destroy src
    void (*destroy)(void* self) noexcept;
    void (*consume)(void* self);  // move out, destroy stored copy, invoke
  };

  template <typename T>
  static constexpr Ops inline_ops = {
      [](void* self) { (*std::launder(static_cast<T*>(self)))(); },
      [](void* src, void* dst) noexcept {
        T* s = std::launder(static_cast<T*>(src));
        ::new (dst) T(std::move(*s));
        s->~T();
      },
      [](void* self) noexcept { std::launder(static_cast<T*>(self))->~T(); },
      [](void* self) {
        T* s = std::launder(static_cast<T*>(self));
        T local(std::move(*s));
        s->~T();
        local();
      },
  };

  template <typename T>
  static constexpr Ops heap_ops = {
      [](void* self) { (**std::launder(static_cast<T**>(self)))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) T*(*std::launder(static_cast<T**>(src)));
      },
      [](void* self) noexcept { delete *std::launder(static_cast<T**>(self)); },
      [](void* self) {
        std::unique_ptr<T> p(*std::launder(static_cast<T**>(self)));
        (*p)();
      },
  };

  alignas(void*) unsigned char buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace e2efa
