#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace e2efa {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    slab_[slot].next_free = kNilSlot;
    return slot;
  }
  E2EFA_ASSERT_MSG(slab_.size() < kNilSlot, "event slab exhausted");
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  slab_[slot].next_free = free_head_;
  free_head_ = slot;
}

void Simulator::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t p = (i - 1) >> 2;
    if (!earlier(e, heap_[p])) break;
    heap_[i] = heap_[p];
    i = p;
  }
  heap_[i] = e;
}

Simulator::HeapEntry Simulator::heap_pop() {
  const HeapEntry top = heap_.front();
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t c = 4 * i + 1;
      if (c >= n) break;
      std::size_t m = c;
      const std::size_t end = std::min(c + 4, n);
      for (std::size_t k = c + 1; k < end; ++k)
        if (earlier(heap_[k], heap_[m])) m = k;
      if (!earlier(heap_[m], last)) break;
      heap_[i] = heap_[m];
      i = m;
    }
    heap_[i] = last;
  }
  return top;
}

std::uint32_t Simulator::prepare(TimeNs t) {
  E2EFA_ASSERT_MSG(t >= now_, "cannot schedule in the past");
  const std::uint32_t slot = acquire_slot();
  ++slab_[slot].gen;  // even -> odd: armed
  heap_push({t, next_seq_++, slot});
  ++live_;
  return slot;
}

void Simulator::check_delay(TimeNs delay) const {
  E2EFA_ASSERT_MSG(delay >= 0, "negative delay");
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint64_t slot64 = (id & 0xffffffffu) - 1;
  if (slot64 >= slab_.size()) return false;
  Event& ev = slab_[static_cast<std::uint32_t>(slot64)];
  if ((ev.gen & 1u) == 0 || ev.gen != static_cast<std::uint32_t>(id >> 32))
    return false;
  // Lazy cancel: disarm and release the closure now (O(1)); the heap entry
  // is skipped and the slot recycled when it reaches the top.
  ++ev.gen;  // odd -> even: retired; stale handles now mismatch
  ev.fn.reset();
  --live_;
  return true;
}

std::uint64_t Simulator::drain(TimeNs t_end) {
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_.front().time <= t_end) {
    __builtin_prefetch(&slab_[heap_.front().slot]);
    const HeapEntry e = heap_pop();
    Event& ev = slab_[e.slot];
    if ((ev.gen & 1u) == 0) {  // lazily cancelled; recycle and move on
      release_slot(e.slot);
      continue;
    }
    ++ev.gen;  // odd -> even: retire the handle before callbacks reuse it
    release_slot(e.slot);
    --live_;
    now_ = e.time;
    ev.fn.consume_invoke();
    ++count;
    ++processed_;
  }
  return count;
}

std::uint64_t Simulator::run_until(TimeNs t_end) {
  const std::uint64_t count = drain(t_end);
  now_ = std::max(now_, t_end);
  return count;
}

std::uint64_t Simulator::run() {
  return drain(std::numeric_limits<TimeNs>::max());
}

}  // namespace e2efa
