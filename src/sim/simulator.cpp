#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace e2efa {

Simulator::EventId Simulator::schedule_at(TimeNs t, std::function<void()> fn) {
  E2EFA_ASSERT_MSG(t >= now_, "cannot schedule in the past");
  E2EFA_ASSERT(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push({t, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

Simulator::EventId Simulator::schedule_in(TimeNs delay, std::function<void()> fn) {
  E2EFA_ASSERT_MSG(delay >= 0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

std::uint64_t Simulator::run_until(TimeNs t_end) {
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_.top().time <= t_end) {
    const Entry e = heap_.top();
    heap_.pop();
    const auto c = cancelled_.find(e.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    const auto h = handlers_.find(e.id);
    E2EFA_ASSERT(h != handlers_.end());
    auto fn = std::move(h->second);
    handlers_.erase(h);
    now_ = e.time;
    fn();
    ++count;
    ++processed_;
  }
  if (heap_.empty() || now_ < t_end) now_ = std::max(now_, t_end);
  return count;
}

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (!heap_.empty()) {
    // Delegate in chunks; run_until handles cancellation bookkeeping.
    count += run_until(heap_.top().time);
  }
  return count;
}

}  // namespace e2efa
