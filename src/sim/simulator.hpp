// Discrete-event simulation engine (the ns-2 stand-in's core).
//
// A pooled, cache-friendly design: event records live in a slab (vector
// slots recycled through a free list), handles are generation-tagged slot
// references giving O(1) cancel with no hash maps, and the ready queue is a
// 4-ary implicit min-heap over compact (time, seq, slot) entries so sifts
// touch one cache line per level and never dereference the slab. Callbacks
// are small-buffer-optimized (`Callback`), so steady-state MAC/PHY/scheduler
// timers allocate nothing.
//
// Ordering guarantee: events fire in (time, scheduling sequence) order —
// same-time events fire in the order they were scheduled, which makes every
// run fully deterministic and exactly reproduces the pre-pool engine's
// trajectories. Cancellation is lazy (the record is disarmed and its handle
// generation bumped; the heap entry is skipped and recycled when it
// surfaces), but `pending()` is exact. Handlers may schedule further events
// freely, including at the current time.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "util/time.hpp"

namespace e2efa {

class Simulator {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time t (>= now). Returns a cancellable id.
  /// The callable is constructed directly in the event record (no
  /// intermediate Callback); passing a Callback moves it in as-is.
  template <typename F>
  EventId schedule_at(TimeNs t, F&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F>&>,
                  "event handler must be callable as void()");
    const std::uint32_t slot = prepare(t);
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      slab_[slot].fn = std::forward<F>(fn);
    } else {
      slab_[slot].fn.emplace(std::forward<F>(fn));
    }
    return make_id(slot, slab_[slot].gen);
  }

  /// Schedules `fn` after `delay` (>= 0) from now.
  template <typename F>
  EventId schedule_in(TimeNs delay, F&& fn) {
    check_delay(delay);
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event; cancelling an already-fired or invalid id is
  /// a harmless no-op (returns false). O(1): the handle's generation tag
  /// rejects stale ids even after the slot has been recycled.
  bool cancel(EventId id);

  /// Runs events until the queue empties or the next event is after
  /// `t_end`; the clock finishes at min(t_end, last event time). Returns
  /// the number of events processed by this call.
  std::uint64_t run_until(TimeNs t_end);

  /// Runs until the event queue is empty (single drain loop); the clock
  /// finishes at the last *executed* event's time.
  std::uint64_t run();

  /// Total events processed over the simulator's lifetime.
  std::uint64_t events_processed() const { return processed_; }

  /// Pending (non-cancelled) events. Exact even though cancellation is
  /// lazy: disarmed records still occupy heap entries but are not counted.
  std::size_t pending() const { return live_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// Slab record, exactly one cache line. The callback's inline buffer
  /// makes this the only memory an event needs; `gen` tags handles so
  /// recycled slots reject stale ids. Armed state is the generation's
  /// parity: odd = armed, even = free or retired (no separate flag).
  struct Event {
    Callback fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
  };
  static_assert(sizeof(Callback) == 56);

  /// Compact heap entry: comparisons never touch the slab.
  struct HeapEntry {
    TimeNs time;
    std::uint64_t seq;  ///< Scheduling order; breaks same-time ties FIFO.
    std::uint32_t slot;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }

  std::uint32_t prepare(TimeNs t);
  void check_delay(TimeNs delay) const;
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_push(HeapEntry e);
  HeapEntry heap_pop();
  /// Pops entries <= t_end, firing armed ones; shared by run/run_until.
  std::uint64_t drain(TimeNs t_end);

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  std::vector<Event> slab_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNilSlot;
};

}  // namespace e2efa
