// Discrete-event simulation engine (the ns-2 stand-in's core).
//
// A binary heap of (time, sequence) ordered events; same-time events fire
// in scheduling order, which makes every run fully deterministic. Events
// may be cancelled (lazily removed). Handlers may schedule further events
// freely, including at the current time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace e2efa {

class Simulator {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time t (>= now). Returns a cancellable id.
  EventId schedule_at(TimeNs t, std::function<void()> fn);

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventId schedule_in(TimeNs delay, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or invalid id is
  /// a harmless no-op (returns false).
  bool cancel(EventId id);

  /// Runs events until the queue empties or the next event is after
  /// `t_end`; the clock finishes at min(t_end, last event time). Returns
  /// the number of events processed by this call.
  std::uint64_t run_until(TimeNs t_end);

  /// Runs until the event queue is empty.
  std::uint64_t run();

  /// Total events processed over the simulator's lifetime.
  std::uint64_t events_processed() const { return processed_; }

  /// Pending (non-cancelled) events.
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    TimeNs time;
    EventId id;  ///< Doubles as the scheduling sequence number.
    // Min-heap on (time, id).
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : id > o.id;
    }
  };

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace e2efa
