// A data-plane packet traveling hop by hop along a multi-hop flow.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace e2efa {

struct Packet {
  std::uint64_t uid = 0;   ///< Globally unique (for tracing).
  std::int32_t flow = -1;  ///< Owning flow id.
  std::int32_t hop = 0;    ///< Subflow (hop index) the packet is currently on.
  std::int32_t subflow = -1;  ///< Global subflow id of the current hop.
  std::int64_t seq = 0;    ///< Per-flow sequence number at the source.
  std::int32_t payload_bytes = 0;
  std::int32_t src = -1;  ///< Current-hop transmitter node.
  std::int32_t dst = -1;  ///< Current-hop receiver node.
  TimeNs created = 0;     ///< Source generation time.
};

}  // namespace e2efa
