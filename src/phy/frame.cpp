#include "phy/frame.hpp"

namespace e2efa {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kRts: return "RTS";
    case FrameType::kCts: return "CTS";
    case FrameType::kData: return "DATA";
    case FrameType::kAck: return "ACK";
    case FrameType::kCtrl: return "CTRL";
  }
  return "?";
}

}  // namespace e2efa
