// MAC frames exchanged over the wireless channel.
//
// The RTS-CTS-DATA-ACK handshake follows IEEE 802.11 DCF. Frames carry the
// NAV (duration of the remainder of the exchange) for virtual carrier
// sensing, and 2PA piggybacks the transmitting node's current service tag on
// RTS/CTS/ACK so neighbors can maintain their local tag tables (Sec. IV-C).
#pragma once

#include <memory>
#include <optional>

#include "phy/packet.hpp"
#include "util/time.hpp"

namespace e2efa {

/// kCtrl: broadcast allocation-control frame (src/ctrl HELLO / CONSTRAINT /
/// RATE); sent once without ACK, rx = -1, robustness via periodic resend.
enum class FrameType { kRts, kCts, kData, kAck, kCtrl };

const char* to_string(FrameType t);

/// Frame sizes in bytes (MAC header + FCS; DATA adds the payload).
struct FrameSizes {
  int rts = 20;
  int cts = 14;
  int ack = 14;
  int data_header = 52;  ///< MAC + IP/UDP overhead on top of the payload.
};

struct Frame {
  FrameType type = FrameType::kRts;
  std::int32_t tx = -1;  ///< Transmitting node.
  std::int32_t rx = -1;  ///< Intended receiver (frames are overheard by all).
  int bytes = 0;
  /// Virtual-carrier-sense reservation: medium time remaining in this
  /// exchange *after* this frame ends.
  TimeNs nav = 0;
  /// Present on DATA frames.
  std::optional<Packet> packet;
  /// 2PA piggyback: the service tag of the exchange's data packet and the
  /// global subflow id it belongs to (responders echo the initiator's tag).
  double service_tag = 0.0;
  std::int32_t tag_subflow = -1;
  bool has_service_tag = false;
  /// 2PA piggyback on ACK: the receiver-estimated backoff component R for
  /// the sender's future packets.
  double ack_backoff_r = 0.0;
  /// Allocation-control payload (src/ctrl): the whole message of a kCtrl
  /// frame, or a small table delta piggybacked on RTS/CTS. Opaque to the
  /// PHY/MAC; null for protocols without a control plane. Shared so the
  /// channel's pooled frame copies stay cheap.
  std::shared_ptr<const struct CtrlMsg> ctrl;
};

}  // namespace e2efa
