// Shared-medium wireless channel (the PHY of the ns-2 stand-in).
//
// Unit-disk propagation with zero propagation delay: a transmission from s
// is *decodable* by nodes within the transmission range and deposits
// *energy* (busy medium / interference) at nodes within the interference
// range. A node successfully decodes a frame iff it is not transmitting
// itself and no other transmission overlaps the frame's airtime at the
// node — the standard collision model that produces hidden-terminal losses.
//
// Carrier-sense queries are interval-based (`idle_during`) so that two
// nodes whose backoff expires in the same slot both commit to transmitting
// and collide, exactly as in slotted CSMA.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "phy/frame.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"
#include "util/time.hpp"

namespace e2efa {

class CheckContext;

/// Per-node PHY event sink (implemented by the MAC).
class PhyListener {
 public:
  virtual ~PhyListener() = default;
  /// A frame was fully and cleanly received (regardless of addressee).
  virtual void on_frame_received(const Frame& frame) = 0;
  /// A reception was lost to collision; `end` is when the air went quiet
  /// for that frame (hook for EIFS-style deferral).
  virtual void on_frame_corrupted(TimeNs end) = 0;
  /// Medium (energy) transitions at this node.
  virtual void on_medium_busy() = 0;
  virtual void on_medium_idle() = 0;
};

/// Runtime fault model the channel consults per frame (fault injection).
/// Implemented by net-layer FaultRuntime; null means a healthy network and
/// the channel takes the exact pre-fault code path (no queries, no RNG).
class FaultModel {
 public:
  virtual ~FaultModel() = default;
  /// False while node n is crashed: its radio neither transmits (frames from
  /// it deposit no energy anywhere) nor decodes (it receives nothing).
  virtual bool node_up(NodeId n) const = 0;
  /// False while the a<->b link is forced down (fading): frames between the
  /// pair are never decodable, though interference energy still propagates.
  virtual bool link_up(NodeId a, NodeId b) const = 0;
  /// True when the a->b link has a nonzero packet-error rate. Lets the
  /// channel skip the RNG entirely on loss-free links, keeping trajectories
  /// of loss-free fault runs identical to runs without a loss model.
  virtual bool lossy(NodeId a, NodeId b) const = 0;
  /// Draws whether an otherwise-clean a->b reception is lost to channel
  /// errors. Called once per decodable frame on lossy links (mutates the
  /// model's RNG stream — deterministic given the run seed).
  virtual bool draw_loss(NodeId a, NodeId b) = 0;
};

struct ChannelStats {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_delivered = 0;   ///< Clean receptions (all hearers).
  std::uint64_t frames_corrupted = 0;   ///< Collision-lost receptions.
  std::uint64_t bytes_corrupted = 0;    ///< Airtime lost to collisions, bytes.
  /// Fault-injection losses: receptions killed by a dead node, a downed
  /// link, or a loss-model draw (not counted in frames_corrupted).
  /// Always equals faulted_dead + faulted_loss.
  std::uint64_t frames_faulted = 0;
  /// Fault losses from crashed nodes or downed links (RF-silent senders,
  /// deaf receivers, cut links — including mid-frame transitions).
  std::uint64_t faulted_dead = 0;
  /// Fault losses from per-link Bernoulli error draws on lossy channels.
  std::uint64_t faulted_loss = 0;
  /// Total on-air transmission time (non-silent frames), nanoseconds.
  /// Divided by wall time this is the channel utilization.
  std::uint64_t airtime_ns = 0;
};

class Channel {
 public:
  Channel(Simulator& sim, const Topology& topo, std::int64_t bits_per_second);

  /// Registers the MAC of node n. Must be called once per node before any
  /// transmission reaches it.
  void attach(NodeId n, PhyListener* listener);

  /// Installs (or clears, with nullptr) the fault model. Not owned; must
  /// outlive the channel. With no model installed the channel behaves — and
  /// draws randomness — exactly as before fault injection existed.
  void set_faults(FaultModel* faults) { faults_ = faults; }

  /// Installs (or clears) the trace sink. Not owned; null (default) keeps
  /// the pre-observability hot path: a single pointer test per emission.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Installs (or clears) the invariant-check observer. Not owned; the
  /// observer never mutates channel state or draws randomness.
  void set_check(CheckContext* check) { check_ = check; }

  /// Installs (or clears) the self-profiler: end-of-frame receive fan-outs
  /// accrue to its phy phase. Not owned; pure observation.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

  std::int64_t bps() const { return bps_; }

  /// Airtime of a frame of `bytes` bytes at the channel rate.
  TimeNs frame_duration(int bytes) const { return tx_duration(8LL * bytes, bps_); }

  /// Starts transmitting `frame` from `sender` now; returns the end time.
  /// The sender must not already be transmitting. A node that transmits
  /// while decoding loses the reception (half-duplex).
  TimeNs transmit(NodeId sender, Frame frame);

  /// True when node n senses energy (another transmission in interference
  /// range) or is itself transmitting.
  bool medium_busy(NodeId n) const;

  bool transmitting(NodeId n) const;

  /// True when the medium at n was continuously idle over [from, now).
  /// A transmission starting exactly at `now` does not count — both
  /// same-instant transmitters proceed (and collide).
  bool idle_during(NodeId n, TimeNs from) const;

  const ChannelStats& stats() const { return stats_; }

 private:
  struct NodeState {
    PhyListener* listener = nullptr;
    TimeNs tx_end = -1;          ///< End of own transmission (-1: none).
    int interferers = 0;         ///< Active foreign transmissions heard.
    bool busy = false;           ///< Cached (interferers>0 || transmitting).
    TimeNs busy_since = 0;       ///< Start of the current busy period.
    TimeNs last_busy_end = -1;   ///< End of the previous busy period.
    // In-progress decode attempt.
    bool decoding = false;
    bool decode_corrupted = false;
    std::uint64_t decode_tx_id = 0;  ///< Which transmission is being decoded.
  };

  /// An in-flight frame, pooled so the end-of-frame event only captures a
  /// slot index. One event per transmission walks the sender and every
  /// interference neighbor at end-of-frame (instead of one closure per
  /// neighbor), in the exact order the per-neighbor events used to fire.
  struct Transmission {
    Frame frame;
    TimeNs end = 0;
    std::uint64_t tx_id = 0;
    std::uint32_t next_free = 0;
    bool silent = false;  ///< Sender was crashed: no energy was deposited.
    /// Causal span of the kFrameTx record (0 when tracing is off/filtered);
    /// end-of-frame rx/collision/fault records chain to it.
    std::uint32_t span = 0;
  };

  void update_busy(NodeId n);
  NodeState& state(NodeId n);
  const NodeState& state(NodeId n) const;
  std::uint32_t acquire_tx_slot();
  void release_tx_slot(std::uint32_t slot);
  void finish_transmission(std::uint32_t slot);

  Simulator& sim_;
  const Topology& topo_;
  FaultModel* faults_ = nullptr;
  TraceSink* trace_ = nullptr;
  CheckContext* check_ = nullptr;
  Profiler* profiler_ = nullptr;
  std::int64_t bps_;
  std::vector<NodeState> nodes_;
  std::uint64_t next_tx_id_ = 1;
  std::vector<Transmission> tx_pool_;
  std::uint32_t tx_free_ = kNilTxSlot;
  static constexpr std::uint32_t kNilTxSlot = 0xffffffffu;
  ChannelStats stats_;
};

}  // namespace e2efa
