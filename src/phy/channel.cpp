#include "phy/channel.hpp"

#include "check/check.hpp"
#include "ctrl/messages.hpp"
#include "util/assert.hpp"

namespace e2efa {

Channel::Channel(Simulator& sim, const Topology& topo, std::int64_t bits_per_second)
    : sim_(sim), topo_(topo), bps_(bits_per_second) {
  E2EFA_ASSERT(bps_ > 0);
  nodes_.resize(static_cast<std::size_t>(topo.node_count()));
}

void Channel::attach(NodeId n, PhyListener* listener) {
  E2EFA_ASSERT(listener != nullptr);
  E2EFA_ASSERT_MSG(state(n).listener == nullptr, "node already attached");
  state(n).listener = listener;
}

Channel::NodeState& Channel::state(NodeId n) {
  E2EFA_ASSERT(n >= 0 && n < static_cast<NodeId>(nodes_.size()));
  return nodes_[static_cast<std::size_t>(n)];
}

const Channel::NodeState& Channel::state(NodeId n) const {
  E2EFA_ASSERT(n >= 0 && n < static_cast<NodeId>(nodes_.size()));
  return nodes_[static_cast<std::size_t>(n)];
}

bool Channel::transmitting(NodeId n) const { return state(n).tx_end > sim_.now(); }

bool Channel::medium_busy(NodeId n) const {
  const NodeState& s = state(n);
  return s.interferers > 0 || transmitting(n);
}

bool Channel::idle_during(NodeId n, TimeNs from) const {
  const NodeState& s = state(n);
  const TimeNs now = sim_.now();
  if (s.busy) {
    // Busy right now: idle over [from, now) only if the busy period began
    // exactly at `now` (same-instant transmission — intentional collision
    // semantics) and nothing else intruded earlier.
    return s.busy_since >= now && s.last_busy_end <= from;
  }
  return s.last_busy_end <= from;
}

void Channel::update_busy(NodeId n) {
  NodeState& s = state(n);
  const bool now_busy = s.interferers > 0 || transmitting(n);
  if (now_busy == s.busy) return;
  s.busy = now_busy;
  if (now_busy) {
    s.busy_since = sim_.now();
    if (s.listener) s.listener->on_medium_busy();
  } else {
    s.last_busy_end = sim_.now();
    if (s.listener) s.listener->on_medium_idle();
  }
}

std::uint32_t Channel::acquire_tx_slot() {
  if (tx_free_ != kNilTxSlot) {
    const std::uint32_t slot = tx_free_;
    tx_free_ = tx_pool_[slot].next_free;
    return slot;
  }
  tx_pool_.emplace_back();
  return static_cast<std::uint32_t>(tx_pool_.size() - 1);
}

void Channel::release_tx_slot(std::uint32_t slot) {
  tx_pool_[slot].next_free = tx_free_;
  tx_free_ = slot;
}

TimeNs Channel::transmit(NodeId sender, Frame frame) {
  E2EFA_ASSERT_MSG(!transmitting(sender), "node is already transmitting");
  E2EFA_ASSERT(frame.bytes > 0);
  frame.tx = sender;
  const TimeNs now = sim_.now();
  const TimeNs duration = frame_duration(frame.bytes);
  const TimeNs end = now + duration;
  const std::uint64_t tx_id = next_tx_id_++;

  // A crashed sender's radio deposits no energy anywhere: the frame occupies
  // the node's own transmitter (so its MAC state machine runs as usual and
  // the backlog drains through retry-limit drops) but is invisible on air.
  const bool silent = faults_ != nullptr && !faults_->node_up(sender);
  if (silent) {
    ++stats_.frames_faulted;
    ++stats_.faulted_dead;
  } else {
    ++stats_.frames_transmitted;
    stats_.airtime_ns += static_cast<std::uint64_t>(duration);
  }
  // The transmission's causal span: rx/collision/fault records at
  // end-of-frame chain to it, and for control frames it chains onward to
  // the kCtrlSend record riding the message.
  std::uint32_t tx_span = 0;
  if (trace_ != nullptr && trace_->enabled<TraceCat::kPhy>()) {
    tx_span = trace_->new_span();
    trace_->record<TraceCat::kPhy>(
        now, TraceEvent::kFrameTx, static_cast<std::int16_t>(sender),
        static_cast<std::int32_t>(frame.type), frame.rx,
        static_cast<double>(frame.bytes), silent ? 1.0 : 0.0, tx_span,
        frame.ctrl != nullptr ? frame.ctrl->span : 0);
  }
  // Crashed senders still follow the MAC protocol; the oracle sees them too.
  if (check_ != nullptr) check_->on_frame_transmit(frame, now);

  // Half-duplex: transmitting kills any reception in progress at the sender.
  {
    NodeState& s = state(sender);
    if (s.decoding) s.decode_corrupted = true;
    s.tx_end = end;
    update_busy(sender);
  }

  if (!silent) {
    for (NodeId r : topo_.interference_neighbors(sender)) {
      NodeState& s = state(r);
      bool decodable = topo_.has_link(sender, r);
      if (decodable && faults_ != nullptr &&
          (!faults_->node_up(r) || !faults_->link_up(sender, r))) {
        // Dead receiver or downed link: the frame is energy without frame
        // sync — it can interfere but never starts a decode.
        decodable = false;
        ++stats_.frames_faulted;
        ++stats_.faulted_dead;
        if (trace_ != nullptr)
          trace_->record<TraceCat::kPhy>(now, TraceEvent::kFrameFaulted,
                                         static_cast<std::int16_t>(r), 0, sender,
                                         0.0, 0.0, 0, tx_span);
      }
      if (s.interferers == 0 && !transmitting(r) && !s.decoding && decodable) {
        s.decoding = true;
        s.decode_corrupted = false;
        s.decode_tx_id = tx_id;
      } else if (s.decoding) {
        s.decode_corrupted = true;  // overlap ruins the in-progress decode
      }
      ++s.interferers;
      update_busy(r);
    }
  }

  // One end-of-frame event for the whole transmission; it visits the sender
  // and then the neighbors in the same order the per-neighbor events fired.
  const std::uint32_t slot = acquire_tx_slot();
  Transmission& t = tx_pool_[slot];
  t.frame = std::move(frame);
  t.end = end;
  t.tx_id = tx_id;
  t.silent = silent;
  t.span = tx_span;
  sim_.schedule_at(end, [this, slot] { finish_transmission(slot); });
  return end;
}

void Channel::finish_transmission(std::uint32_t slot) {
  Profiler::Scope prof(profiler_, Profiler::Phase::kPhy);
  // Move the record out before any listener runs: a listener could (in
  // principle) transmit, growing the pool and invalidating references.
  const Frame frame = std::move(tx_pool_[slot].frame);
  const std::uint64_t tx_id = tx_pool_[slot].tx_id;
  const TimeNs end = tx_pool_[slot].end;
  const bool silent = tx_pool_[slot].silent;
  const std::uint32_t tx_span = tx_pool_[slot].span;
  release_tx_slot(slot);
  const NodeId sender = frame.tx;

  update_busy(sender);
  if (silent) return;  // no energy was deposited; nothing to undo
  for (NodeId r : topo_.interference_neighbors(sender)) {
    NodeState& s = state(r);
    --s.interferers;
    E2EFA_ASSERT(s.interferers >= 0);
    if (s.decoding && s.decode_tx_id == tx_id) {
      const bool ok = !s.decode_corrupted && !transmitting(r);
      s.decoding = false;
      // Faults may have landed mid-frame (the receiver crashed or the link
      // went down while the frame was in flight), and clean receptions on
      // lossy links are subject to a per-frame error draw.
      if (ok && faults_ != nullptr) {
        if (!faults_->node_up(r) || !faults_->link_up(sender, r)) {
          ++stats_.frames_faulted;
          ++stats_.faulted_dead;
          if (trace_ != nullptr)
            trace_->record<TraceCat::kPhy>(end, TraceEvent::kFrameFaulted,
                                           static_cast<std::int16_t>(r), 0,
                                           sender, 0.0, 0.0, 0, tx_span);
          update_busy(r);
          continue;  // deaf: the crashed/cut receiver sees nothing at all
        }
        if (faults_->lossy(sender, r) && faults_->draw_loss(sender, r)) {
          // Channel-error checksum failure: the receiver reacts exactly as
          // to a collision (EIFS), but the loss is accounted separately.
          ++stats_.frames_faulted;
          ++stats_.faulted_loss;
          if (trace_ != nullptr)
            trace_->record<TraceCat::kPhy>(end, TraceEvent::kFrameFaulted,
                                           static_cast<std::int16_t>(r), 1,
                                           sender, 0.0, 0.0, 0, tx_span);
          if (s.listener) s.listener->on_frame_corrupted(end);
          update_busy(r);
          continue;
        }
      }
      if (ok) {
        ++stats_.frames_delivered;
        if (trace_ != nullptr)
          trace_->record<TraceCat::kPhy>(
              end, TraceEvent::kFrameRx, static_cast<std::int16_t>(r),
              static_cast<std::int32_t>(frame.type), sender,
              static_cast<double>(frame.bytes), 0.0, 0, tx_span);
        if (check_ != nullptr) check_->on_frame_receive(r, frame, end);
        if (s.listener) s.listener->on_frame_received(frame);
      } else {
        ++stats_.frames_corrupted;
        stats_.bytes_corrupted += static_cast<std::uint64_t>(frame.bytes);
        if (trace_ != nullptr)
          trace_->record<TraceCat::kPhy>(end, TraceEvent::kFrameCollision,
                                         static_cast<std::int16_t>(r), -1,
                                         sender, static_cast<double>(frame.bytes),
                                         0.0, 0, tx_span);
        if (s.listener) s.listener->on_frame_corrupted(end);
      }
    }
    update_busy(r);
  }
}

}  // namespace e2efa
