#include "util/table.hpp"

#include <algorithm>

namespace e2efa {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace e2efa
