#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace e2efa {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double jain_fairness_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sumsq);
}

double max_min_ratio(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  if (*mn == 0.0) return *mx == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return *mx / *mn;
}

}  // namespace e2efa
