#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace e2efa {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double jain_fairness_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sumsq);
}

double max_min_ratio(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  if (*mn == 0.0) return *mx == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return *mx / *mn;
}

std::vector<double> normalized_by(const std::vector<double>& xs,
                                  const std::vector<double>& weights) {
  std::vector<double> out;
  const std::size_t n = std::min(xs.size(), weights.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (weights[i] > 0.0) out.push_back(xs[i] / weights[i]);
  return out;
}

std::vector<std::vector<double>> windowed_rates(
    const std::vector<std::vector<std::int64_t>>& counts, double window_s) {
  std::vector<std::vector<double>> out;
  out.reserve(counts.size());
  for (const auto& window : counts) {
    std::vector<double> rates;
    rates.reserve(window.size());
    for (std::int64_t c : window)
      rates.push_back(window_s > 0.0 ? static_cast<double>(c) / window_s : 0.0);
    out.push_back(std::move(rates));
  }
  return out;
}

std::vector<double> jain_trajectory(
    const std::vector<std::vector<double>>& windows,
    const std::vector<double>& targets) {
  std::vector<double> out;
  out.reserve(windows.size());
  for (const auto& w : windows)
    out.push_back(targets.empty() ? jain_fairness_index(w)
                                  : jain_fairness_index(normalized_by(w, targets)));
  return out;
}

std::vector<double> jain_trajectory(
    const std::vector<std::vector<std::int64_t>>& windows,
    const std::vector<double>& targets) {
  std::vector<std::vector<double>> as_double;
  as_double.reserve(windows.size());
  for (const auto& w : windows)
    as_double.emplace_back(w.begin(), w.end());
  return jain_trajectory(as_double, targets);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  // Nearest-rank: smallest value with at least p% of the mass at or below.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

}  // namespace e2efa
