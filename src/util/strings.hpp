// Small string/formatting helpers (GCC 12 lacks <format>).
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace e2efa {

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins items with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& items, const std::string& sep);

/// Formats a bandwidth fraction like 0.333333 as "B/3", 0.75 as "3B/4", etc.,
/// when the value is close to a small rational p/q (q <= max_den); otherwise
/// falls back to fixed-point decimal. Used by benches to print paper-style
/// allocations.
std::string format_share_of_b(double fraction, int max_den = 64);

}  // namespace e2efa
