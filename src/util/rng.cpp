#include "util/rng.hpp"

#include <cmath>

namespace e2efa {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro256** must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  E2EFA_ASSERT(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  E2EFA_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  E2EFA_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  E2EFA_ASSERT(mean > 0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  E2EFA_ASSERT(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

Rng Rng::split() {
  Rng child;
  child.reseed((*this)());
  return child;
}

}  // namespace e2efa
