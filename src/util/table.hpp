// Plain-text table printer used by the bench binaries to render paper-style
// result tables (Table I/II/III and the figure examples).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace e2efa {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header (padded blank).
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace e2efa
