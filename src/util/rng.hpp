// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (backoff draws, jitter, random
// topologies) is driven by an explicitly seeded Rng so that every simulation
// is reproducible bit-for-bit from its seed. The generator is xoshiro256**,
// seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace e2efa {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Splits off an independent generator (for per-node streams).
  Rng split();

 private:
  std::uint64_t s_[4]{};
};

}  // namespace e2efa
