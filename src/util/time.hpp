// Simulation time: 64-bit signed nanoseconds since simulation start.
//
// Nanosecond resolution keeps MAC-layer timing exact (a 512-byte DATA frame
// at 2 Mbps lasts 2,048,000 ns; SIFS/DIFS/slots are all integral ns) while a
// 64-bit count still covers ~292 years of simulated time.
#pragma once

#include <cstdint>

namespace e2efa {

using TimeNs = std::int64_t;

constexpr TimeNs kNanosecond = 1;
constexpr TimeNs kMicrosecond = 1'000;
constexpr TimeNs kMillisecond = 1'000'000;
constexpr TimeNs kSecond = 1'000'000'000;

constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) / 1e9; }
constexpr TimeNs from_seconds(double s) { return static_cast<TimeNs>(s * 1e9); }

/// Duration of transmitting `bits` at `bits_per_second`, rounded up to a
/// whole nanosecond so that back-to-back transmissions never overlap.
constexpr TimeNs tx_duration(std::int64_t bits, std::int64_t bits_per_second) {
  // ceil(bits * 1e9 / rate)
  const std::int64_t num = bits * kSecond;
  return (num + bits_per_second - 1) / bits_per_second;
}

}  // namespace e2efa
