// Streaming statistics helpers used by the simulator and benchmarks.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace e2efa {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Jain's fairness index over per-entity throughputs: (Σx)^2 / (n·Σx²).
/// Returns 1.0 for an empty input (vacuously fair).
double jain_fairness_index(const std::vector<double>& xs);

/// Max/min ratio of the values; +inf when the minimum is zero but the
/// maximum is not, 1.0 for empty input.
double max_min_ratio(const std::vector<double>& xs);

/// Element-wise xs[i] / weights[i]; entries whose weight is <= 0 (e.g.
/// suspended flows with a zero target share) are dropped, as are any xs
/// beyond weights.size(). Used to share-normalize windowed rates before
/// computing a fairness index.
std::vector<double> normalized_by(const std::vector<double>& xs,
                                  const std::vector<double>& weights);

/// Converts per-window delivery counts ([window][entity]) into rates in
/// units per second: counts[w][i] / window_s.
std::vector<std::vector<double>> windowed_rates(
    const std::vector<std::vector<std::int64_t>>& counts, double window_s);

/// Per-window Jain index over share-normalized values:
/// jain(normalized_by(windows[w], targets)). With empty targets the raw
/// values are used. Jain's index is scale-invariant, so counts and rates
/// give identical trajectories.
std::vector<double> jain_trajectory(
    const std::vector<std::vector<double>>& windows,
    const std::vector<double>& targets);
std::vector<double> jain_trajectory(
    const std::vector<std::vector<std::int64_t>>& windows,
    const std::vector<double>& targets);

/// Nearest-rank percentile (p in [0, 100]) of the values; 0 for empty
/// input. p = 0 gives the minimum, p = 100 the maximum.
double percentile(std::vector<double> xs, double p);

}  // namespace e2efa
