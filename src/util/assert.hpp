// Lightweight contract checking.
//
// E2EFA_ASSERT is an always-on precondition/invariant check that throws
// e2efa::ContractViolation (so tests can observe failures and callers can
// unwind cleanly) instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace e2efa {

/// Thrown when a checked precondition or invariant does not hold.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failed(const char* expr, const char* file, int line,
                                         const std::string& msg) {
  std::string s = "contract violated: ";
  s += expr;
  s += " at ";
  s += file;
  s += ":";
  s += std::to_string(line);
  if (!msg.empty()) {
    s += " (";
    s += msg;
    s += ")";
  }
  throw ContractViolation(s);
}
}  // namespace detail

}  // namespace e2efa

#define E2EFA_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr)) ::e2efa::detail::contract_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define E2EFA_ASSERT_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) ::e2efa::detail::contract_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
