#include "util/strings.hpp"

#include <cmath>
#include <cstdio>

namespace e2efa {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& items, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string format_share_of_b(double fraction, int max_den) {
  constexpr double kTol = 1e-6;
  if (std::abs(fraction) < kTol) return "0";
  for (int q = 1; q <= max_den; ++q) {
    const double pf = fraction * q;
    const double p = std::round(pf);
    if (p >= 1.0 && std::abs(pf - p) < kTol * q) {
      const int pi = static_cast<int>(p);
      if (q == 1) return pi == 1 ? "B" : strformat("%dB", pi);
      if (pi == 1) return strformat("B/%d", q);
      return strformat("%dB/%d", pi, q);
    }
  }
  return strformat("%.4fB", fraction);
}

}  // namespace e2efa
