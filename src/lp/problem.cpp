#include "lp/problem.hpp"

#include "util/assert.hpp"

namespace e2efa {

LpProblem::LpProblem(int num_vars) : num_vars_(num_vars) {
  E2EFA_ASSERT(num_vars >= 1);
  objective_.assign(static_cast<std::size_t>(num_vars), 0.0);
  lower_bounds_.assign(static_cast<std::size_t>(num_vars), 0.0);
}

void LpProblem::set_objective(int var, double coeff) {
  E2EFA_ASSERT(var >= 0 && var < num_vars_);
  objective_[static_cast<std::size_t>(var)] = coeff;
}

void LpProblem::set_objective(const std::vector<double>& coeffs) {
  E2EFA_ASSERT(static_cast<int>(coeffs.size()) == num_vars_);
  objective_ = coeffs;
}

void LpProblem::set_lower_bound(int var, double lb) {
  E2EFA_ASSERT(var >= 0 && var < num_vars_);
  lower_bounds_[static_cast<std::size_t>(var)] = lb;
}

void LpProblem::add_constraint(std::vector<double> coeffs, Relation rel, double rhs,
                               std::string name) {
  E2EFA_ASSERT(static_cast<int>(coeffs.size()) == num_vars_);
  constraints_.push_back({std::move(coeffs), rel, rhs, std::move(name)});
}

void LpProblem::add_weighted_le(const std::vector<std::pair<int, double>>& terms,
                                double rhs, std::string name) {
  std::vector<double> coeffs(static_cast<std::size_t>(num_vars_), 0.0);
  for (const auto& [var, mult] : terms) {
    E2EFA_ASSERT(var >= 0 && var < num_vars_);
    coeffs[static_cast<std::size_t>(var)] += mult;
  }
  add_constraint(std::move(coeffs), Relation::kLessEq, rhs, std::move(name));
}

}  // namespace e2efa
