// Dense two-phase primal Simplex solver.
//
// The paper notes that "in most cases it is sufficient to solve the problem
// with the Simplex algorithm"; this is that solver, built from scratch:
// a tableau implementation with Bland's anti-cycling rule, artificial
// variables for >= / == rows (phase 1), and explicit infeasible/unbounded
// detection. Problem sizes here are tiny (tens of variables), so the dense
// O(m·n) pivots are more than fast enough — see bench/micro_simplex.
#pragma once

#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace e2efa {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* to_string(LpStatus s);

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;       ///< c^T x at the returned point (valid if optimal).
  std::vector<double> x;        ///< Primal values in original variable space.
  int iterations = 0;           ///< Total pivots across both phases.
};

struct SimplexOptions {
  int max_iterations = 10'000;
  double epsilon = 1e-9;  ///< Pivot/feasibility tolerance.
};

/// Solves `problem` (maximization). Never throws on infeasible/unbounded —
/// those are reported through the status; throws ContractViolation only on
/// malformed input.
LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace e2efa
