#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace e2efa {

const char* to_string(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

/// Dense tableau with Bland's rule. Columns: [structural | slack/surplus |
/// artificial | rhs]. The objective row stores negated reduced costs; a
/// column enters while its entry is < -eps.
class Tableau {
 public:
  Tableau(const LpProblem& p, const SimplexOptions& opt) : opt_(opt) {
    const int n = p.num_vars();
    const auto& lb = p.lower_bounds();
    for (double b : lb) E2EFA_ASSERT_MSG(std::isfinite(b), "lower bound must be finite");

    // Shift x = lb + y so y >= 0; record the objective constant.
    obj_shift_ = 0.0;
    for (int i = 0; i < n; ++i) obj_shift_ += p.objective()[i] * lb[i];

    struct Row {
      std::vector<double> a;
      Relation rel;
      double b;
    };
    std::vector<Row> rows;
    rows.reserve(p.constraints().size());
    for (const auto& c : p.constraints()) {
      E2EFA_ASSERT_MSG(static_cast<int>(c.coeffs.size()) == n, "constraint arity mismatch");
      Row r{c.coeffs, c.rel, c.rhs};
      for (int i = 0; i < n; ++i) r.b -= c.coeffs[i] * lb[i];
      if (r.b < 0) {  // Normalize to nonnegative rhs.
        for (double& a : r.a) a = -a;
        r.b = -r.b;
        r.rel = r.rel == Relation::kLessEq    ? Relation::kGreaterEq
                : r.rel == Relation::kGreaterEq ? Relation::kLessEq
                                                : Relation::kEqual;
      }
      rows.push_back(std::move(r));
    }

    m_ = static_cast<int>(rows.size());
    n_struct_ = n;
    int n_slack = 0, n_art = 0;
    for (const auto& r : rows) {
      if (r.rel != Relation::kEqual) ++n_slack;
      if (r.rel != Relation::kLessEq) ++n_art;
    }
    n_slack_ = n_slack;
    n_art_ = n_art;
    cols_ = n_struct_ + n_slack_ + n_art_ + 1;  // + rhs
    t_.assign(static_cast<std::size_t>(m_ + 1), std::vector<double>(static_cast<std::size_t>(cols_), 0.0));
    basis_.assign(static_cast<std::size_t>(m_), -1);

    int slack_at = n_struct_;
    int art_at = n_struct_ + n_slack_;
    for (int i = 0; i < m_; ++i) {
      auto& row = t_[static_cast<std::size_t>(i)];
      for (int j = 0; j < n_struct_; ++j) row[static_cast<std::size_t>(j)] = rows[static_cast<std::size_t>(i)].a[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(cols_ - 1)] = rows[static_cast<std::size_t>(i)].b;
      switch (rows[static_cast<std::size_t>(i)].rel) {
        case Relation::kLessEq:
          row[static_cast<std::size_t>(slack_at)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = slack_at++;
          break;
        case Relation::kGreaterEq:
          row[static_cast<std::size_t>(slack_at)] = -1.0;
          ++slack_at;
          row[static_cast<std::size_t>(art_at)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = art_at++;
          break;
        case Relation::kEqual:
          row[static_cast<std::size_t>(art_at)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = art_at++;
          break;
      }
    }
  }

  /// Runs both phases. Returns the status; fills x/objective on optimal.
  LpStatus solve(const LpProblem& p, LpSolution& out) {
    // ---- Phase 1: minimize the sum of artificials. ----
    if (n_art_ > 0) {
      auto& obj = t_[static_cast<std::size_t>(m_)];
      std::fill(obj.begin(), obj.end(), 0.0);
      for (int j = art_begin(); j < art_end(); ++j) obj[static_cast<std::size_t>(j)] = 1.0;
      // Zero out reduced costs of the (artificial) basis.
      for (int i = 0; i < m_; ++i) {
        if (is_artificial(basis_[static_cast<std::size_t>(i)])) subtract_row(m_, i, 1.0);
      }
      const LpStatus s = pivot_loop(out);
      if (s != LpStatus::kOptimal) return s;  // iteration limit (phase 1 can't be unbounded)
      const double art_sum = -t_[static_cast<std::size_t>(m_)][static_cast<std::size_t>(cols_ - 1)];
      if (art_sum > opt_.epsilon) return LpStatus::kInfeasible;
      drive_out_artificials();
    }

    // ---- Phase 2: maximize the real objective. ----
    auto& obj = t_[static_cast<std::size_t>(m_)];
    std::fill(obj.begin(), obj.end(), 0.0);
    for (int j = 0; j < n_struct_; ++j) obj[static_cast<std::size_t>(j)] = -p.objective()[static_cast<std::size_t>(j)];
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b >= 0 && std::abs(obj[static_cast<std::size_t>(b)]) > 0.0) {
        subtract_row(m_, i, obj[static_cast<std::size_t>(b)]);
      }
    }
    const LpStatus s = pivot_loop(out);
    if (s != LpStatus::kOptimal) return s;

    out.x.assign(static_cast<std::size_t>(n_struct_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b >= 0 && b < n_struct_)
        out.x[static_cast<std::size_t>(b)] = t_[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols_ - 1)];
    }
    // Undo the lower-bound shift.
    for (int j = 0; j < n_struct_; ++j) out.x[static_cast<std::size_t>(j)] += p.lower_bounds()[static_cast<std::size_t>(j)];
    out.objective = t_[static_cast<std::size_t>(m_)][static_cast<std::size_t>(cols_ - 1)] + obj_shift_;
    return LpStatus::kOptimal;
  }

 private:
  int art_begin() const { return n_struct_ + n_slack_; }
  int art_end() const { return n_struct_ + n_slack_ + n_art_; }
  bool is_artificial(int col) const { return col >= art_begin() && col < art_end(); }

  /// row[target] -= factor * row[src]
  void subtract_row(int target, int src, double factor) {
    auto& tr = t_[static_cast<std::size_t>(target)];
    const auto& sr = t_[static_cast<std::size_t>(src)];
    for (int j = 0; j < cols_; ++j) tr[static_cast<std::size_t>(j)] -= factor * sr[static_cast<std::size_t>(j)];
  }

  void pivot(int row, int col) {
    auto& pr = t_[static_cast<std::size_t>(row)];
    const double pv = pr[static_cast<std::size_t>(col)];
    for (int j = 0; j < cols_; ++j) pr[static_cast<std::size_t>(j)] /= pv;
    for (int i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const double f = t_[static_cast<std::size_t>(i)][static_cast<std::size_t>(col)];
      if (std::abs(f) > 0.0) subtract_row(i, row, f);
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  /// In phase 2, artificial columns must not re-enter the basis.
  bool column_blocked(int col) const { return phase2_block_artificials_ && is_artificial(col); }

  LpStatus pivot_loop(LpSolution& out) {
    const auto& obj = t_[static_cast<std::size_t>(m_)];
    for (;;) {
      if (out.iterations >= opt_.max_iterations) return LpStatus::kIterationLimit;
      // Bland's rule: entering column = smallest index with negative cost.
      int enter = -1;
      for (int j = 0; j < cols_ - 1; ++j) {
        if (column_blocked(j)) continue;
        if (obj[static_cast<std::size_t>(j)] < -opt_.epsilon) {
          enter = j;
          break;
        }
      }
      if (enter == -1) return LpStatus::kOptimal;

      // Ratio test; ties broken by smallest basis index (Bland).
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        const double a = t_[static_cast<std::size_t>(i)][static_cast<std::size_t>(enter)];
        if (a > opt_.epsilon) {
          const double ratio = t_[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols_ - 1)] / a;
          if (ratio < best_ratio - opt_.epsilon ||
              (ratio < best_ratio + opt_.epsilon &&
               (leave == -1 || basis_[static_cast<std::size_t>(i)] < basis_[static_cast<std::size_t>(leave)]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == -1) return LpStatus::kUnbounded;
      pivot(leave, enter);
      ++out.iterations;
    }
  }

  /// After phase 1, swap any artificial still in the basis for a structural
  /// or slack column; rows where no such column exists are redundant (all
  /// zero) and are left with the artificial basic at value zero, but the
  /// artificial columns are blocked from re-entering in phase 2.
  void drive_out_artificials() {
    for (int i = 0; i < m_; ++i) {
      if (!is_artificial(basis_[static_cast<std::size_t>(i)])) continue;
      int col = -1;
      for (int j = 0; j < art_begin(); ++j) {
        if (std::abs(t_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) > opt_.epsilon) {
          col = j;
          break;
        }
      }
      if (col >= 0) pivot(i, col);
    }
    phase2_block_artificials_ = true;
  }

  SimplexOptions opt_;
  int m_ = 0;         ///< Constraint rows.
  int n_struct_ = 0;  ///< Structural (user) variables.
  int n_slack_ = 0;
  int n_art_ = 0;
  int cols_ = 0;  ///< Total columns incl. rhs.
  double obj_shift_ = 0.0;
  std::vector<std::vector<double>> t_;  ///< m_+1 rows (last = objective).
  std::vector<int> basis_;
  bool phase2_block_artificials_ = false;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options) {
  LpSolution out;
  Tableau tab(problem, options);
  out.status = tab.solve(problem, out);
  return out;
}

}  // namespace e2efa
