// Linear program model (Sec. III-B builds its allocation LPs with this).
//
// The canonical shape solved throughout the library is
//     maximize  c^T x
//     s.t.      a_k^T x  (<= | >= | ==)  b_k      for each constraint k
//               x_i >= lb_i                        (lb defaults to 0)
//
// which covers the paper's clique capacity rows (<=) and basic-share rows
// (x_i >= basic_i, expressed as lower bounds) as well as the equality row
// used by the balanced-refinement pass.
#pragma once

#include <string>
#include <vector>

namespace e2efa {

enum class Relation { kLessEq, kGreaterEq, kEqual };

/// One linear constraint: coeffs^T x  rel  rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  Relation rel = Relation::kLessEq;
  double rhs = 0.0;
  std::string name;  ///< Optional, used in diagnostics and printed tables.
};

/// A maximization LP over `num_vars` variables with per-variable lower
/// bounds. Invalid sizes are rejected at solve time.
class LpProblem {
 public:
  explicit LpProblem(int num_vars);

  int num_vars() const { return num_vars_; }

  /// Sets the objective coefficient of variable i (default 0).
  void set_objective(int var, double coeff);
  void set_objective(const std::vector<double>& coeffs);
  const std::vector<double>& objective() const { return objective_; }

  /// Sets the lower bound of variable i (default 0; must be finite).
  void set_lower_bound(int var, double lb);
  const std::vector<double>& lower_bounds() const { return lower_bounds_; }

  /// Appends a constraint; `coeffs` must have num_vars entries.
  void add_constraint(std::vector<double> coeffs, Relation rel, double rhs,
                      std::string name = {});
  const std::vector<LpConstraint>& constraints() const { return constraints_; }

  /// Convenience: adds sum_{i in vars} mult_i * x_i <= rhs.
  void add_weighted_le(const std::vector<std::pair<int, double>>& terms, double rhs,
                       std::string name = {});

 private:
  int num_vars_;
  std::vector<double> objective_;
  std::vector<double> lower_bounds_;
  std::vector<LpConstraint> constraints_;
};

}  // namespace e2efa
