#include "flow/flow.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace e2efa {

std::string Subflow::name() const { return strformat("F%d.%d", flow + 1, hop + 1); }

std::string Flow::name() const { return strformat("F%d", id + 1); }

int virtual_length(int hop_count) {
  E2EFA_ASSERT(hop_count >= 1);
  return std::min(hop_count, 3);
}

FlowSet::FlowSet(const Topology& topo, std::vector<Flow> flows)
    : topo_(&topo), flows_(std::move(flows)) {
  E2EFA_ASSERT_MSG(!flows_.empty(), "FlowSet requires at least one flow");
  subflow_index_.resize(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& f = flows_[i];
    f.id = static_cast<FlowId>(i);
    E2EFA_ASSERT_MSG(f.path.size() >= 2, "flow path needs >= 2 nodes");
    E2EFA_ASSERT_MSG(f.weight > 0.0, "flow weight must be positive");
    std::unordered_set<NodeId> seen;
    for (NodeId n : f.path) {
      E2EFA_ASSERT_MSG(n >= 0 && n < topo.node_count(), "flow path node out of range");
      E2EFA_ASSERT_MSG(seen.insert(n).second, "flow path revisits a node");
    }
    for (std::size_t h = 0; h + 1 < f.path.size(); ++h) {
      E2EFA_ASSERT_MSG(topo.has_link(f.path[h], f.path[h + 1]),
                       "flow path hop is not a live link");
      Subflow s;
      s.flow = f.id;
      s.hop = static_cast<int>(h);
      s.src = f.path[h];
      s.dst = f.path[h + 1];
      s.weight = f.weight;
      subflow_index_[i].push_back(static_cast<int>(subflows_.size()));
      subflows_.push_back(s);
    }
  }
  // Subflows are appended in ascending global order, so per-node lists are
  // ascending without a sort.
  sourced_at_.resize(static_cast<std::size_t>(topo.node_count()));
  for (int s = 0; s < subflow_count(); ++s)
    sourced_at_[static_cast<std::size_t>(subflows_[static_cast<std::size_t>(s)].src)]
        .push_back(s);
}

const std::vector<int>& FlowSet::sourced_at(NodeId n) const {
  E2EFA_ASSERT(n >= 0 && n < static_cast<NodeId>(sourced_at_.size()));
  return sourced_at_[static_cast<std::size_t>(n)];
}

const Flow& FlowSet::flow(FlowId f) const {
  E2EFA_ASSERT(f >= 0 && f < flow_count());
  return flows_[static_cast<std::size_t>(f)];
}

const Subflow& FlowSet::subflow(int global_index) const {
  E2EFA_ASSERT(global_index >= 0 && global_index < subflow_count());
  return subflows_[static_cast<std::size_t>(global_index)];
}

int FlowSet::subflow_index(FlowId f, int hop) const {
  E2EFA_ASSERT(f >= 0 && f < flow_count());
  const auto& idx = subflow_index_[static_cast<std::size_t>(f)];
  E2EFA_ASSERT(hop >= 0 && hop < static_cast<int>(idx.size()));
  return idx[static_cast<std::size_t>(hop)];
}

double FlowSet::weighted_virtual_length_sum() const {
  double sum = 0.0;
  for (const Flow& f : flows_) sum += f.weight * virtual_length(f.length());
  return sum;
}

bool FlowSet::has_shortcut(FlowId f) const {
  const Flow& fl = flow(f);
  const auto& p = fl.path;
  for (std::size_t i = 0; i < p.size(); ++i)
    for (std::size_t j = i + 2; j < p.size(); ++j)
      if (topo_->has_link(p[i], p[j])) return true;
  return false;
}

bool FlowSet::all_shortcut_free() const {
  for (const Flow& f : flows_)
    if (has_shortcut(f.id)) return false;
  return true;
}

}  // namespace e2efa
