// Multi-hop flows and their per-hop subflows (Sec. II of the paper).
//
// A flow F_i is a source-routed end-to-end path with a preassigned weight
// w_i. Its j-th hop is the subflow F_{i.j}; every subflow inherits the
// flow's weight (w_{i.j} = w_i). The *virtual length* v_i = min(l_i, 3)
// captures intra-flow spatial reuse: in a shortcut-free chain, subflows
// three hops apart can transmit concurrently, so a flow longer than three
// hops is entitled to the same end-to-end throughput as a three-hop flow.
#pragma once

#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace e2efa {

using FlowId = std::int32_t;

/// One hop of a multi-hop flow.
struct Subflow {
  FlowId flow = -1;   ///< Owning flow id.
  int hop = 0;        ///< Zero-based hop index within the flow.
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double weight = 1.0;  ///< Inherited flow weight (w_{i.j} = w_i).

  /// Paper-style name like "F1.2" (flow ids and hops printed one-based).
  std::string name() const;
};

/// An end-to-end flow: a node path plus a weight.
struct Flow {
  FlowId id = -1;
  std::vector<NodeId> path;  ///< path.front() is the source; >= 2 nodes.
  double weight = 1.0;

  int length() const { return static_cast<int>(path.size()) - 1; }  ///< l_i
  NodeId source() const { return path.front(); }
  NodeId destination() const { return path.back(); }
  std::string name() const;  ///< "F1", "F2", ... (one-based)
};

/// Virtual length v = min(l, 3) for a flow of hop count l (paper Sec. II-D).
int virtual_length(int hop_count);

/// A validated collection of flows over a topology.
///
/// Construction checks that every consecutive path pair is a live link,
/// that paths are simple (no repeated node), and assigns flow ids 0..n-1
/// in insertion order. Subflows are materialized with global indices
/// 0..m-1, ordered by (flow, hop).
class FlowSet {
 public:
  FlowSet(const Topology& topo, std::vector<Flow> flows);

  const Topology& topology() const { return *topo_; }
  int flow_count() const { return static_cast<int>(flows_.size()); }
  int subflow_count() const { return static_cast<int>(subflows_.size()); }

  const Flow& flow(FlowId f) const;
  const std::vector<Flow>& flows() const { return flows_; }
  const Subflow& subflow(int global_index) const;
  const std::vector<Subflow>& subflows() const { return subflows_; }

  /// Global subflow index of hop `hop` of flow `f`.
  int subflow_index(FlowId f, int hop) const;

  /// Global indices of the subflows transmitted *from* node n (their src),
  /// ascending. Lets per-node loops (scheduler lanes, agents) run in
  /// O(subflows at n) instead of scanning every subflow.
  const std::vector<int>& sourced_at(NodeId n) const;

  /// Virtual length of flow f.
  int virtual_length_of(FlowId f) const { return virtual_length(flow(f).length()); }

  /// Sum over flows of w_i * v_i (denominator of the basic share).
  double weighted_virtual_length_sum() const;

  /// True when flow f has a shortcut: two non-consecutive path nodes within
  /// transmission range. The paper's analysis assumes shortcut-free flows
  /// (min-hop routes never have shortcuts).
  bool has_shortcut(FlowId f) const;

  /// True when no flow in the set has a shortcut.
  bool all_shortcut_free() const;

 private:
  const Topology* topo_;
  std::vector<Flow> flows_;
  std::vector<Subflow> subflows_;
  std::vector<std::vector<int>> subflow_index_;  // [flow][hop] -> global index
  std::vector<std::vector<int>> sourced_at_;     // [node] -> subflows with src == node
};

}  // namespace e2efa
