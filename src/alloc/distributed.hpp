// Phase 1, distributed form (Sec. IV-B): local cliques, intra-flow
// constraint propagation, per-source local LPs.
//
// Knowledge model (reproduces Table I on the Fig.-6 topology verbatim):
//
//  1. Every node v *overhears* the subflows with an endpoint inside its
//     interference range — Own(v) — by listening to RTS/CTS/DATA traffic.
//  2. One round of neighbor exchange widens this to
//     K(v) = Own(v) ∪ ⋃_{u ∈ neighbors(v)} Own(u).
//  3. Local cliques of v are the maximal cliques of the contention graph
//     restricted to K(v) (constructible per Huang & Bensaou [5]).
//  4. Every transmitting node of a flow propagates its local cliques
//     upstream/downstream along the flow (piggybacked (n_{i,k}, i) arrays),
//     so the flow's source accumulates ⋃ local cliques over its path.
//  5. The source's per-unit basic share is r̂₀ = B / Σ_{flows seen in K(v)}
//     w_j·v_j (v_j travels with the flow information), which is >= the
//     centralized basic share because only locally visible flows count.
//  6. The source solves the local LP (maximize local total effective
//     throughput subject to its clique rows and r̂_j >= w_j·r̂₀) with the
//     balanced refinement; the flow's allocated share is the source's
//     solution component for its own flow.
#pragma once

#include <vector>

#include "alloc/allocation.hpp"
#include "alloc/refine.hpp"
#include "topology/topology.hpp"

namespace e2efa {

/// The local optimization problem one flow's source constructed and solved
/// (one Table-I row).
struct LocalProblem {
  FlowId flow = -1;       ///< Flow whose share this LP decides.
  NodeId source = kInvalidNode;
  std::vector<FlowId> vars;                 ///< Flows in the local LP, ascending.
  std::vector<std::vector<int>> cliques;    ///< Local cliques (global subflow ids).
  std::vector<std::vector<int>> rows;       ///< Dedup n_{j,k} rows over `vars` order.
  double unit_basic = 0.0;                  ///< r̂₀ at the source (units of B).
  std::vector<double> mins;                 ///< Per-var lower bound w_j·r̂₀.
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> solution;             ///< Per-var shares (units of B).
  double flow_share = 0.0;                  ///< Solution entry for `flow`.
  double min_relaxation = 1.0;              ///< See ShareLpResult.
};

struct DistributedResult {
  Allocation allocation;              ///< Equalized allocation from flow shares.
  std::vector<LocalProblem> locals;   ///< One per flow, in flow order.
  /// Per-node knowledge K(v) (global subflow ids, ascending) — diagnostics.
  std::vector<std::vector<int>> node_knowledge;
  /// Per-node local cliques — diagnostics (Table I "Local cliques" column).
  std::vector<std::vector<std::vector<int>>> node_cliques;
};

/// Runs the distributed first phase. `g` must be the contention graph of
/// `flows` over `topo`. `mask` (optional) restricts step 2's neighbor
/// exchange to the surviving topology — the oracle for what the in-band
/// control plane (src/ctrl) can still learn after node/link faults: a dead
/// neighbor's Own set is no longer heard. Own(v) itself and the clique /
/// LP machinery are unchanged by the mask.
DistributedResult distributed_allocate(const Topology& topo, const FlowSet& flows,
                                       const ContentionGraph& g,
                                       const TopologyMask* mask = nullptr);

/// Steps 4-6 for one flow, shared verbatim with the in-band control plane:
/// given the accumulated clique set (union of local cliques over the flow's
/// transmitting nodes, possibly with subset-redundant entries) and the
/// source's knowledge K(source), builds and solves the source's local
/// ShareLp. Falls back to the local basic share w·r̂₀ on a non-optimal
/// solve. `cliques` entries are ascending subflow-id lists.
LocalProblem solve_local_problem(const FlowSet& flows, FlowId flow,
                                 const std::vector<std::vector<int>>& cliques,
                                 const std::vector<int>& source_knowledge);

}  // namespace e2efa
