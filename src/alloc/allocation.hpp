// Allocation results and the paper's fairness quantities (Sec. II).
//
// All shares are expressed in units of the effective channel capacity B
// (B == 1.0); the simulator scales to bits/s. For an *equalized* allocation
// (all subflows of a flow get the flow share r̂_i), the end-to-end
// throughput u_i equals r̂_i; for a per-subflow allocation (the two-tier
// baseline), u_i = min_j r_{i.j}.
#pragma once

#include <vector>

#include "contention/cliques.hpp"
#include "contention/contention_graph.hpp"
#include "flow/flow.hpp"

namespace e2efa {

/// The outcome of a phase-1 allocation.
struct Allocation {
  /// r̂_i per flow, in units of B. For equalized allocators this is the
  /// share of every subflow of flow i.
  std::vector<double> flow_share;

  /// r_{i.j} per subflow (global subflow index), in units of B.
  std::vector<double> subflow_share;

  /// End-to-end throughput u_i = min_j r_{i.j} per flow, units of B.
  std::vector<double> end_to_end;

  /// Σ_i u_i — the paper's total effective throughput, units of B.
  double total_effective = 0.0;
};

/// Builds an equalized Allocation (subflow share = flow share) from per-flow
/// shares.
Allocation make_equalized_allocation(const FlowSet& flows,
                                     std::vector<double> flow_share);

/// Builds an Allocation from per-subflow shares (two-tier style); flow_share
/// is filled with the per-flow minimum.
Allocation make_subflow_allocation(const FlowSet& flows,
                                   std::vector<double> subflow_share);

/// Basic share of every flow (Sec. II-D): w_i·B / Σ_j w_j·v_j, where the
/// sum runs over ALL flows in `flows`. Correct when the whole set is one
/// contending flow group; for general sets use the group-aware overload.
std::vector<double> basic_shares(const FlowSet& flows);

/// Group-aware basic shares (the paper's actual definition): the
/// denominator Σ w_j·v_j is taken over the flow's *contending flow group*
/// only — disjoint groups do not dilute each other's floors.
std::vector<double> basic_shares(const ContentionGraph& g);

/// Per-subflow basic share used by the two-tier baseline: w_{i.j}·B /
/// Σ_{subflows in the group} w (previous work treats each subflow as an
/// independent single-hop flow). Whole-set denominator variant.
std::vector<double> subflow_basic_shares(const FlowSet& flows);

/// Group-aware per-subflow basic shares.
std::vector<double> subflow_basic_shares(const ContentionGraph& g);

/// Proposition 1: upper bound of total effective throughput under the
/// (strict) fairness constraint: Σ_i w_i · B / ω_Ω.
double fairness_upper_bound(const ContentionGraph& g);

/// Per-flow shares under the strict fairness constraint at the Prop.-1
/// bound: r̂_i = w_i·B/ω_Ω (may be unachievable, e.g. the pentagon).
std::vector<double> fairness_bound_shares(const ContentionGraph& g);

/// Max over maximal cliques of (Σ subflow shares in clique) — the clique
/// load; the allocation satisfies local capacity iff this is <= B (+eps).
double max_clique_load(const ContentionGraph& g, const std::vector<double>& subflow_share);

/// True when every maximal clique's load is <= B + eps (Eq. (3)/(6)).
bool satisfies_clique_capacity(const ContentionGraph& g,
                               const std::vector<double>& subflow_share,
                               double eps = 1e-9);

/// True when every flow's share is >= its basic share - eps (basic
/// fairness), with the whole-set denominator.
bool satisfies_basic_fairness(const FlowSet& flows,
                              const std::vector<double>& flow_share,
                              double eps = 1e-9);

/// Group-aware basic-fairness check (the stronger, paper-correct floor).
bool satisfies_basic_fairness(const ContentionGraph& g,
                              const std::vector<double>& flow_share,
                              double eps = 1e-9);

/// The fairness-constraint residual: max_{i,j} |r̂_i/w_i − r̂_j/w_j|.
/// Zero for allocations satisfying the strict fairness constraint.
double fairness_residual(const FlowSet& flows, const std::vector<double>& flow_share);

}  // namespace e2efa
