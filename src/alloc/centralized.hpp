// Phase 1, centralized form (Sec. IV-A): the global allocation LP.
//
// A (conceptually) centralized node collects every flow's weight and route,
// builds the weighted subflow contention graph, and solves
//
//   maximize Σ_i r̂_i
//   s.t.     Σ_i n_{i,k} r̂_i <= B           for every maximal clique Ω_k
//            r̂_i >= w_i B / Σ_j w_j v_j      (basic fairness, Eq. (7))
//
// followed by the balanced refinement of refine.hpp so the reported optimum
// matches the paper's worked examples exactly.
#pragma once

#include <vector>

#include "alloc/allocation.hpp"
#include "alloc/refine.hpp"

namespace e2efa {

struct CentralizedResult {
  LpStatus status = LpStatus::kInfeasible;
  Allocation allocation;  ///< Valid when status == kOptimal.
  /// Deduplicated clique constraint rows n_{i,k} actually used.
  std::vector<std::vector<int>> constraint_rows;
  /// Basic shares used as lower bounds (units of B).
  std::vector<double> basic;
  double min_relaxation = 1.0;  ///< See ShareLpResult.
};

/// Runs the centralized first phase on one contending flow group (the whole
/// FlowSet behind `g` is treated as a single group; disjoint groups may
/// simply be solved separately — their LPs do not interact). `cliques`, when
/// given, is the precomputed maximal-clique list of `g` (e.g. from an
/// incremental CliqueStore) and skips from-scratch enumeration; the result
/// is identical.
CentralizedResult centralized_allocate(const ContentionGraph& g,
                                       const std::vector<std::vector<int>>* cliques = nullptr);

}  // namespace e2efa
