#include "alloc/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace e2efa {

namespace {
Allocation finish(const FlowSet& flows, Allocation a) {
  a.end_to_end.assign(static_cast<std::size_t>(flows.flow_count()),
                      std::numeric_limits<double>::infinity());
  for (int s = 0; s < flows.subflow_count(); ++s) {
    const FlowId f = flows.subflow(s).flow;
    auto& u = a.end_to_end[static_cast<std::size_t>(f)];
    u = std::min(u, a.subflow_share[static_cast<std::size_t>(s)]);
  }
  a.total_effective = 0.0;
  for (double u : a.end_to_end) a.total_effective += u;
  return a;
}
}  // namespace

Allocation make_equalized_allocation(const FlowSet& flows, std::vector<double> flow_share) {
  E2EFA_ASSERT(static_cast<int>(flow_share.size()) == flows.flow_count());
  Allocation a;
  a.flow_share = std::move(flow_share);
  a.subflow_share.resize(static_cast<std::size_t>(flows.subflow_count()));
  for (int s = 0; s < flows.subflow_count(); ++s)
    a.subflow_share[static_cast<std::size_t>(s)] =
        a.flow_share[static_cast<std::size_t>(flows.subflow(s).flow)];
  return finish(flows, std::move(a));
}

Allocation make_subflow_allocation(const FlowSet& flows, std::vector<double> subflow_share) {
  E2EFA_ASSERT(static_cast<int>(subflow_share.size()) == flows.subflow_count());
  Allocation a;
  a.subflow_share = std::move(subflow_share);
  a.flow_share.assign(static_cast<std::size_t>(flows.flow_count()),
                      std::numeric_limits<double>::infinity());
  for (int s = 0; s < flows.subflow_count(); ++s) {
    const FlowId f = flows.subflow(s).flow;
    auto& r = a.flow_share[static_cast<std::size_t>(f)];
    r = std::min(r, a.subflow_share[static_cast<std::size_t>(s)]);
  }
  return finish(flows, std::move(a));
}

std::vector<double> basic_shares(const FlowSet& flows) {
  const double denom = flows.weighted_virtual_length_sum();
  E2EFA_ASSERT(denom > 0.0);
  std::vector<double> out(static_cast<std::size_t>(flows.flow_count()));
  for (FlowId f = 0; f < flows.flow_count(); ++f)
    out[static_cast<std::size_t>(f)] = flows.flow(f).weight / denom;
  return out;
}

std::vector<double> subflow_basic_shares(const FlowSet& flows) {
  double denom = 0.0;
  for (const Subflow& s : flows.subflows()) denom += s.weight;
  E2EFA_ASSERT(denom > 0.0);
  std::vector<double> out(static_cast<std::size_t>(flows.subflow_count()));
  for (int s = 0; s < flows.subflow_count(); ++s)
    out[static_cast<std::size_t>(s)] = flows.subflow(s).weight / denom;
  return out;
}

std::vector<double> basic_shares(const ContentionGraph& g) {
  const FlowSet& flows = g.flows();
  std::vector<double> out(static_cast<std::size_t>(flows.flow_count()), 0.0);
  for (const auto& group : g.flow_groups()) {
    double denom = 0.0;
    for (FlowId f : group)
      denom += flows.flow(f).weight * virtual_length(flows.flow(f).length());
    E2EFA_ASSERT(denom > 0.0);
    for (FlowId f : group)
      out[static_cast<std::size_t>(f)] = flows.flow(f).weight / denom;
  }
  return out;
}

std::vector<double> subflow_basic_shares(const ContentionGraph& g) {
  const FlowSet& flows = g.flows();
  std::vector<double> out(static_cast<std::size_t>(flows.subflow_count()), 0.0);
  for (const auto& group : g.flow_groups()) {
    double denom = 0.0;
    for (FlowId f : group)
      denom += flows.flow(f).weight * flows.flow(f).length();
    E2EFA_ASSERT(denom > 0.0);
    for (FlowId f : group)
      for (int h = 0; h < flows.flow(f).length(); ++h)
        out[static_cast<std::size_t>(flows.subflow_index(f, h))] =
            flows.flow(f).weight / denom;
  }
  return out;
}

double fairness_upper_bound(const ContentionGraph& g) {
  const double omega = weighted_clique_number(g);
  double wsum = 0.0;
  for (const Flow& f : g.flows().flows()) wsum += f.weight;
  return wsum / omega;
}

std::vector<double> fairness_bound_shares(const ContentionGraph& g) {
  const double omega = weighted_clique_number(g);
  std::vector<double> out(static_cast<std::size_t>(g.flows().flow_count()));
  for (FlowId f = 0; f < g.flows().flow_count(); ++f)
    out[static_cast<std::size_t>(f)] = g.flows().flow(f).weight / omega;
  return out;
}

double max_clique_load(const ContentionGraph& g, const std::vector<double>& subflow_share) {
  E2EFA_ASSERT(static_cast<int>(subflow_share.size()) == g.flows().subflow_count());
  double worst = 0.0;
  for (const auto& clique : maximal_cliques(g)) {
    double load = 0.0;
    for (int v : clique) load += subflow_share[static_cast<std::size_t>(v)];
    worst = std::max(worst, load);
  }
  return worst;
}

bool satisfies_clique_capacity(const ContentionGraph& g,
                               const std::vector<double>& subflow_share, double eps) {
  return max_clique_load(g, subflow_share) <= 1.0 + eps;
}

namespace {
bool shares_at_least(const std::vector<double>& flow_share,
                     const std::vector<double>& floor, double eps) {
  E2EFA_ASSERT(flow_share.size() == floor.size());
  for (std::size_t f = 0; f < flow_share.size(); ++f)
    if (flow_share[f] < floor[f] - eps) return false;
  return true;
}
}  // namespace

bool satisfies_basic_fairness(const FlowSet& flows, const std::vector<double>& flow_share,
                              double eps) {
  E2EFA_ASSERT(static_cast<int>(flow_share.size()) == flows.flow_count());
  return shares_at_least(flow_share, basic_shares(flows), eps);
}

bool satisfies_basic_fairness(const ContentionGraph& g,
                              const std::vector<double>& flow_share, double eps) {
  E2EFA_ASSERT(static_cast<int>(flow_share.size()) == g.flows().flow_count());
  return shares_at_least(flow_share, basic_shares(g), eps);
}

double fairness_residual(const FlowSet& flows, const std::vector<double>& flow_share) {
  E2EFA_ASSERT(static_cast<int>(flow_share.size()) == flows.flow_count());
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (FlowId f = 0; f < flows.flow_count(); ++f) {
    const double per_weight =
        flow_share[static_cast<std::size_t>(f)] / flows.flow(f).weight;
    lo = std::min(lo, per_weight);
    hi = std::max(hi, per_weight);
  }
  return hi - lo;
}

}  // namespace e2efa
