#include "alloc/refine.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace e2efa {

namespace {

constexpr double kTol = 1e-7;

/// Builds the base problem: n share variables (+1 trailing variable for the
/// max-min passes when with_t). Capacity rows and x_i <= 1 safety rows.
LpProblem base_problem(const ShareLp& lp, double min_scale, bool with_t) {
  const int n = static_cast<int>(lp.weights.size());
  const int nv = n + (with_t ? 1 : 0);
  LpProblem p(nv);
  for (int i = 0; i < n; ++i)
    p.set_lower_bound(i, lp.lower_bounds[static_cast<std::size_t>(i)] * min_scale);
  for (const auto& row : lp.capacity_rows) {
    E2EFA_ASSERT(static_cast<int>(row.size()) == n);
    std::vector<double> coeffs(static_cast<std::size_t>(nv), 0.0);
    std::copy(row.begin(), row.end(), coeffs.begin());
    p.add_constraint(std::move(coeffs), Relation::kLessEq, 1.0);
  }
  // No share can exceed the full channel; keeps every pass bounded.
  for (int i = 0; i < n; ++i) {
    std::vector<double> coeffs(static_cast<std::size_t>(nv), 0.0);
    coeffs[static_cast<std::size_t>(i)] = 1.0;
    p.add_constraint(std::move(coeffs), Relation::kLessEq, 1.0);
  }
  return p;
}

bool feasible_at_scale(const ShareLp& lp, double scale) {
  LpProblem p = base_problem(lp, scale, /*with_t=*/false);
  // Any objective; we only care about feasibility.
  LpSolution s = solve_lp(p);
  return s.status == LpStatus::kOptimal;
}

}  // namespace

ShareLpResult solve_share_lp(const ShareLp& lp) {
  const int n = static_cast<int>(lp.weights.size());
  E2EFA_ASSERT(n >= 1);
  E2EFA_ASSERT(lp.lower_bounds.size() == lp.weights.size());
  for (double w : lp.weights) E2EFA_ASSERT(w > 0.0);

  ShareLpResult out;

  // Relax the lower bounds if they are jointly infeasible (possible in the
  // distributed algorithm where a node over-estimates local basic shares).
  double scale = 1.0;
  if (!feasible_at_scale(lp, 1.0)) {
    double lo = 0.0, hi = 1.0;
    E2EFA_ASSERT_MSG(feasible_at_scale(lp, 0.0), "capacity rows alone infeasible");
    for (int it = 0; it < 50; ++it) {
      const double mid = 0.5 * (lo + hi);
      (feasible_at_scale(lp, mid) ? lo : hi) = mid;
    }
    scale = lo;
  }
  out.min_relaxation = scale;

  // Pass 1: maximize total share.
  LpProblem p = base_problem(lp, scale, /*with_t=*/false);
  for (int i = 0; i < n; ++i) p.set_objective(i, 1.0);
  LpSolution best = solve_lp(p);
  if (best.status != LpStatus::kOptimal) {
    out.status = best.status;
    return out;
  }
  const double total = best.objective;

  // Balanced refinement: lexicographic max-min of x_i / w_i among optima.
  std::vector<bool> fixed(static_cast<std::size_t>(n), false);
  std::vector<double> fixed_value(static_cast<std::size_t>(n), 0.0);

  auto build_refine_problem = [&](bool with_t, double t_floor) {
    LpProblem q = base_problem(lp, scale, with_t);
    const int tvar = n;  // only valid when with_t
    // Stay on the optimal face: Σ x >= total - tol.
    {
      std::vector<double> coeffs(static_cast<std::size_t>(q.num_vars()), 0.0);
      for (int i = 0; i < n; ++i) coeffs[static_cast<std::size_t>(i)] = 1.0;
      q.add_constraint(std::move(coeffs), Relation::kGreaterEq, total - kTol);
    }
    for (int i = 0; i < n; ++i) {
      if (fixed[static_cast<std::size_t>(i)]) {
        std::vector<double> coeffs(static_cast<std::size_t>(q.num_vars()), 0.0);
        coeffs[static_cast<std::size_t>(i)] = 1.0;
        q.add_constraint(std::move(coeffs), Relation::kEqual,
                         fixed_value[static_cast<std::size_t>(i)]);
      } else if (with_t) {
        // x_i - w_i t >= 0
        std::vector<double> coeffs(static_cast<std::size_t>(q.num_vars()), 0.0);
        coeffs[static_cast<std::size_t>(i)] = 1.0;
        coeffs[static_cast<std::size_t>(tvar)] = -lp.weights[static_cast<std::size_t>(i)];
        q.add_constraint(std::move(coeffs), Relation::kGreaterEq, 0.0);
      } else {
        // Free variables keep the established floor t_floor.
        std::vector<double> coeffs(static_cast<std::size_t>(q.num_vars()), 0.0);
        coeffs[static_cast<std::size_t>(i)] = 1.0;
        q.add_constraint(std::move(coeffs), Relation::kGreaterEq,
                         lp.weights[static_cast<std::size_t>(i)] * t_floor - kTol);
      }
    }
    return q;
  };

  int free_count = n;
  std::vector<double> x = best.x;
  while (free_count > 0) {
    // Maximize the minimum weighted share t among free variables.
    LpProblem q = build_refine_problem(/*with_t=*/true, 0.0);
    q.set_objective(n, 1.0);
    LpSolution st = solve_lp(q);
    if (st.status != LpStatus::kOptimal) break;  // keep current x (tolerances)
    const double t_star = st.x[static_cast<std::size_t>(n)];

    // Fix every free variable that cannot rise above w_i * t_star.
    int newly_fixed = 0;
    int argmin = -1;
    double argmin_head = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (fixed[static_cast<std::size_t>(i)]) continue;
      LpProblem qi = build_refine_problem(/*with_t=*/false, t_star);
      qi.set_objective(i, 1.0);
      LpSolution si = solve_lp(qi);
      const double target = lp.weights[static_cast<std::size_t>(i)] * t_star;
      const double headroom =
          si.status == LpStatus::kOptimal ? si.objective - target : 0.0;
      if (headroom <= 10 * kTol) {
        fixed[static_cast<std::size_t>(i)] = true;
        fixed_value[static_cast<std::size_t>(i)] = target;
        ++newly_fixed;
        --free_count;
      } else if (headroom < argmin_head) {
        argmin_head = headroom;
        argmin = i;
      }
    }
    if (newly_fixed == 0) {
      // Numerical guard: force progress by fixing the tightest variable.
      E2EFA_ASSERT(argmin >= 0);
      fixed[static_cast<std::size_t>(argmin)] = true;
      fixed_value[static_cast<std::size_t>(argmin)] =
          lp.weights[static_cast<std::size_t>(argmin)] * t_star;
      --free_count;
    }
    x = st.x;
    x.resize(static_cast<std::size_t>(n));
  }

  // Final re-solve with all fixes applied for a clean vertex.
  {
    LpProblem q = build_refine_problem(/*with_t=*/false, 0.0);
    for (int i = 0; i < n; ++i) q.set_objective(i, 1.0);
    LpSolution sf = solve_lp(q);
    if (sf.status == LpStatus::kOptimal) {
      x = sf.x;
      x.resize(static_cast<std::size_t>(n));
    }
  }

  out.status = LpStatus::kOptimal;
  out.shares = std::move(x);
  out.total = 0.0;
  for (double v : out.shares) out.total += v;
  return out;
}

}  // namespace e2efa
