// Feasible-schedule existence check (Sec. III-B, the pentagon example).
//
// A per-subflow demand vector (units of B) is achievable by some TDMA-style
// schedule iff it can be written as a sub-convex combination of independent
// sets of the contention graph: pick fractions λ_S >= 0 with Σ λ_S <= 1 such
// that every subflow v is covered for at least its demand. We solve the
// fractional-chromatic LP  min Σ λ_S  s.t.  Σ_{S ∋ v} λ_S >= demand_v over
// the enumerated maximal independent sets; the demand is schedulable iff
// the optimum is <= 1. For the pentagon at the Prop.-1 bound (each of the
// five mutually-ringed subflows demanding B/2), the optimum is 5/4 > 1 —
// the paper's unachievability result.
#pragma once

#include <vector>

#include "contention/contention_graph.hpp"

namespace e2efa {

struct ScheduleEntry {
  std::vector<int> independent_set;  ///< Subflow ids transmitting together.
  double fraction = 0.0;             ///< Fraction of time the set is active.
};

struct SchedulabilityResult {
  bool schedulable = false;
  /// Minimal total activation time needed to serve the demand (units of the
  /// scheduling period); schedulable iff <= 1 (+eps).
  double time_needed = 0.0;
  /// A witness schedule serving the demand in `time_needed`.
  std::vector<ScheduleEntry> schedule;
};

/// Checks whether `subflow_demand` (one value per subflow, units of B) has a
/// feasible schedule. Exponential in the worst case (independent-set
/// enumeration) but instant on paper-scale graphs.
SchedulabilityResult check_schedulable(const ContentionGraph& g,
                                       const std::vector<double>& subflow_demand,
                                       double eps = 1e-7);

}  // namespace e2efa
