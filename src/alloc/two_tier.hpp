// The two-tier baseline of Luo et al. [1], reconstructed (Sec. III end).
//
// Previous work treats every subflow as an independent single-hop flow:
// guarantee each subflow its basic share w_{i.j} B / Σ w (over all subflows
// in the group), then maximize the aggregate *single-hop* throughput:
//
//   maximize Σ_{i,j} r_{i.j}
//   s.t.     Σ_{(i,j) in Ω_k} r_{i.j} <= B   for every maximal clique Ω_k
//            r_{i.j} >= w_{i.j} B / Σ w
//
// with the same balanced refinement (the paper's worked Fig.-1 result
// (3B/4, B/4, 3B/8, 3B/8) is the balanced optimum). End-to-end throughput
// of a multi-hop flow is then min_j r_{i.j} — the quantity the paper shows
// suffers under this policy.
#pragma once

#include <vector>

#include "alloc/allocation.hpp"
#include "alloc/refine.hpp"

namespace e2efa {

struct TwoTierResult {
  LpStatus status = LpStatus::kInfeasible;
  Allocation allocation;  ///< Per-subflow shares; flow_share = min over hops.
  std::vector<double> subflow_basic;  ///< Lower bounds used (units of B).
  double min_relaxation = 1.0;
  /// Σ_{i,j} r_{i.j} — total *single-hop* throughput, the objective previous
  /// work maximizes (compare with allocation.total_effective).
  double total_single_hop = 0.0;
};

/// `cliques`, when given, is the precomputed maximal-clique list of `g`
/// (identical result, no from-scratch enumeration).
TwoTierResult two_tier_allocate(const ContentionGraph& g,
                                const std::vector<std::vector<int>>* cliques = nullptr);

}  // namespace e2efa
