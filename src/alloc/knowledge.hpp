// The distributed knowledge model of Sec. IV-B, steps 1-2, shared between
// the offline oracle (distributed_allocate) and the in-band control plane
// (src/ctrl): both must derive identical per-node knowledge sets from one
// code path, or the converged protocol state could never match the oracle.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "topology/topology.hpp"

namespace e2efa {

/// Step 1 — Own(v) for every node at once: the subflows whose source or
/// destination equals v or lies within v's interference range (what v
/// overhears by listening to RTS/CTS/DATA traffic). One pass over the
/// subflows through the interference adjacency lists, O(subflows · degree),
/// replacing the O(nodes · subflows) per-node rescan with interferes()
/// point queries. Each set is ascending and duplicate-free.
std::vector<std::vector<int>> overheard_subflow_sets(const Topology& topo,
                                                     const FlowSet& flows);

/// Step 2 — one round of neighbor exchange:
/// K(v) = Own(v) ∪ ⋃_{u ∈ neighbors(v)} Own(u).
/// `mask` (optional) restricts the exchange to the surviving topology: a
/// crashed neighbor or a cut (v,u) link contributes nothing, exactly like a
/// HELLO that can no longer be heard in-band. Own(v) itself is kept even
/// for dead v (its local listening history), matching the control plane's
/// bootstrap. Each set is ascending and duplicate-free.
std::vector<std::vector<int>> exchanged_knowledge(
    const Topology& topo, const std::vector<std::vector<int>>& own,
    const TopologyMask* mask = nullptr);

}  // namespace e2efa
