#include "alloc/centralized.hpp"

namespace e2efa {

CentralizedResult centralized_allocate(const ContentionGraph& g,
                                       const std::vector<std::vector<int>>* cliques) {
  const FlowSet& flows = g.flows();
  const int n = flows.flow_count();

  CentralizedResult out;
  out.constraint_rows = cliques != nullptr ? clique_constraint_rows(g, *cliques)
                                           : clique_constraint_rows(g);
  out.basic = basic_shares(g);  // group-aware (Sec. II-D defines the basic
                                // share within a contending flow group)

  ShareLp lp;
  lp.lower_bounds = out.basic;
  lp.weights.resize(static_cast<std::size_t>(n));
  for (FlowId f = 0; f < n; ++f)
    lp.weights[static_cast<std::size_t>(f)] = flows.flow(f).weight;
  for (const auto& row : out.constraint_rows) {
    std::vector<double> coeffs(row.begin(), row.end());
    lp.capacity_rows.push_back(std::move(coeffs));
  }

  ShareLpResult r = solve_share_lp(lp);
  out.status = r.status;
  out.min_relaxation = r.min_relaxation;
  if (r.status == LpStatus::kOptimal)
    out.allocation = make_equalized_allocation(flows, std::move(r.shares));
  return out;
}

}  // namespace e2efa
