#include "alloc/strict_fair.hpp"

#include "contention/cliques.hpp"
#include "util/assert.hpp"

namespace e2efa {

StrictFairResult strict_fair_allocate(const ContentionGraph& g) {
  StrictFairResult out;
  out.per_unit_share = 1.0 / weighted_clique_number(g);
  out.allocation = make_equalized_allocation(g.flows(), fairness_bound_shares(g));

  const auto check = check_schedulable(g, out.allocation.subflow_share);
  out.schedulable = check.schedulable;
  // κ·demand needs κ·time: the largest schedulable scale is 1/time_needed.
  out.schedulable_fraction =
      check.time_needed <= 1.0 ? 1.0 : 1.0 / check.time_needed;
  return out;
}

}  // namespace e2efa
