#include "alloc/two_tier.hpp"

#include <set>

namespace e2efa {

TwoTierResult two_tier_allocate(const ContentionGraph& g,
                                const std::vector<std::vector<int>>* cliques) {
  const FlowSet& flows = g.flows();
  const int m = flows.subflow_count();

  TwoTierResult out;
  out.subflow_basic = subflow_basic_shares(g);  // group-aware denominators

  ShareLp lp;
  lp.lower_bounds = out.subflow_basic;
  lp.weights.resize(static_cast<std::size_t>(m));
  for (int s = 0; s < m; ++s)
    lp.weights[static_cast<std::size_t>(s)] = flows.subflow(s).weight;

  std::vector<std::vector<int>> local;
  if (cliques == nullptr) {
    local = maximal_cliques(g);
    cliques = &local;
  }
  // Deduplicated 0/1 rows over subflows, one per maximal clique.
  std::set<std::vector<double>> rows;
  for (const auto& clique : *cliques) {
    std::vector<double> row(static_cast<std::size_t>(m), 0.0);
    for (int v : clique) row[static_cast<std::size_t>(v)] = 1.0;
    rows.insert(std::move(row));
  }
  lp.capacity_rows.assign(rows.begin(), rows.end());

  ShareLpResult r = solve_share_lp(lp);
  out.status = r.status;
  out.min_relaxation = r.min_relaxation;
  if (r.status == LpStatus::kOptimal) {
    out.total_single_hop = r.total;
    out.allocation = make_subflow_allocation(flows, std::move(r.shares));
  }
  return out;
}

}  // namespace e2efa
