#include "alloc/schedulability.hpp"

#include <algorithm>

#include "contention/cliques.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/assert.hpp"

namespace e2efa {

SchedulabilityResult check_schedulable(const ContentionGraph& g,
                                       const std::vector<double>& subflow_demand,
                                       double eps) {
  const int n = g.vertex_count();
  E2EFA_ASSERT(static_cast<int>(subflow_demand.size()) == n);
  for (double d : subflow_demand) E2EFA_ASSERT_MSG(d >= 0.0, "negative demand");

  const auto sets = maximal_independent_sets(g);
  const int k = static_cast<int>(sets.size());
  E2EFA_ASSERT(k >= 1);

  // minimize Σ λ  ==  maximize -Σ λ, coverage rows as >=.
  LpProblem p(k);
  for (int j = 0; j < k; ++j) p.set_objective(j, -1.0);
  for (int v = 0; v < n; ++v) {
    std::vector<double> coeffs(static_cast<std::size_t>(k), 0.0);
    for (int j = 0; j < k; ++j) {
      const auto& s = sets[static_cast<std::size_t>(j)];
      if (std::find(s.begin(), s.end(), v) != s.end())
        coeffs[static_cast<std::size_t>(j)] = 1.0;
    }
    p.add_constraint(std::move(coeffs), Relation::kGreaterEq,
                     subflow_demand[static_cast<std::size_t>(v)]);
  }

  SchedulabilityResult out;
  const LpSolution s = solve_lp(p);
  E2EFA_ASSERT_MSG(s.status == LpStatus::kOptimal,
                   "coverage LP must be solvable (independent sets cover all vertices)");
  out.time_needed = -s.objective;
  out.schedulable = out.time_needed <= 1.0 + eps;
  for (int j = 0; j < k; ++j) {
    if (s.x[static_cast<std::size_t>(j)] > eps) {
      out.schedule.push_back({sets[static_cast<std::size_t>(j)], s.x[static_cast<std::size_t>(j)]});
    }
  }
  return out;
}

}  // namespace e2efa
