// Strict-fairness allocation (Sec. III-A / Proposition 1).
//
// Under the *fairness constraint* |r̂_i/w_i − r̂_j/w_j| < ε every flow gets
// the same per-unit-weight share r̂₀; the largest feasible r̂₀ under the
// clique rows is B/ω_Ω (Proposition 1). The bound is not always attainable
// by a real schedule (Fig. 5's pentagon), so the result carries the
// schedulability verdict and, when unattainable, the largest uniformly
// scaled-down level that a TDMA schedule can serve.
#pragma once

#include "alloc/allocation.hpp"
#include "alloc/schedulability.hpp"

namespace e2efa {

struct StrictFairResult {
  Allocation allocation;  ///< r̂_i = w_i · B/ω_Ω (the Prop.-1 point).
  double per_unit_share = 0.0;  ///< r̂₀ = B/ω_Ω.
  bool schedulable = false;     ///< Whether a feasible schedule attains it.
  /// Largest κ <= 1 such that κ·r̂ is schedulable (1.0 when schedulable;
  /// e.g. 4/5 for the pentagon: κ·B/2 = 2B/5).
  double schedulable_fraction = 1.0;
};

StrictFairResult strict_fair_allocate(const ContentionGraph& g);

}  // namespace e2efa
