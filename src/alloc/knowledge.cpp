#include "alloc/knowledge.hpp"

#include <set>

namespace e2efa {

namespace {

/// Appends s to out[v] unless it is already the last entry. Only s is ever
/// appended while subflow s is being visited, so this check alone dedups
/// (a node can hear both endpoints), and ascending visit order keeps every
/// set sorted.
inline void add_hearer(std::vector<std::vector<int>>& out, NodeId v, int s) {
  auto& set = out[static_cast<std::size_t>(v)];
  if (set.empty() || set.back() != s) set.push_back(s);
}

}  // namespace

std::vector<std::vector<int>> overheard_subflow_sets(const Topology& topo,
                                                     const FlowSet& flows) {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(topo.node_count()));
  for (int s = 0; s < flows.subflow_count(); ++s) {
    const Subflow& sf = flows.subflow(s);
    add_hearer(out, sf.src, s);
    for (NodeId u : topo.interference_neighbors(sf.src)) add_hearer(out, u, s);
    if (sf.dst != sf.src) add_hearer(out, sf.dst, s);
    for (NodeId u : topo.interference_neighbors(sf.dst)) add_hearer(out, u, s);
  }
  return out;
}

std::vector<std::vector<int>> exchanged_knowledge(
    const Topology& topo, const std::vector<std::vector<int>>& own,
    const TopologyMask* mask) {
  const int nn = topo.node_count();
  std::vector<std::vector<int>> out(static_cast<std::size_t>(nn));
  for (NodeId v = 0; v < nn; ++v) {
    std::set<int> k(own[static_cast<std::size_t>(v)].begin(),
                    own[static_cast<std::size_t>(v)].end());
    for (NodeId u : topo.neighbors(v)) {
      if (mask != nullptr && (!mask->node_alive(u) || !mask->link_alive(v, u)))
        continue;
      k.insert(own[static_cast<std::size_t>(u)].begin(),
               own[static_cast<std::size_t>(u)].end());
    }
    out[static_cast<std::size_t>(v)].assign(k.begin(), k.end());
  }
  return out;
}

}  // namespace e2efa
