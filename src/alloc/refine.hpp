// Shared LP construction + balanced (lexicographic max-min) refinement.
//
// The paper's allocation LPs routinely have many optima (e.g. Fig. 6:
// (1/3,1/3,2/3,1/8,3/4) and (1/3,1/8,7/8,1/8,3/4) both maximize total
// effective throughput). The paper always reports the *balanced* optimum, so
// after maximizing the total we refine lexicographically: repeatedly
// maximize the minimum weighted share among still-free variables, fixing the
// variables that cannot rise further. This reproduces every worked example
// in the paper and gives deterministic output.
#pragma once

#include <vector>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace e2efa {

/// A phase-1 allocation LP in normalized form:
///   maximize Σ x_i  s.t.  row_k · x <= 1 (clique capacity, B == 1),
///                          x_i >= lb_i (basic shares).
struct ShareLp {
  /// Capacity rows: coefficient vector per deduplicated maximal clique.
  std::vector<std::vector<double>> capacity_rows;
  /// Per-variable lower bound (basic shares). Same length as weights.
  std::vector<double> lower_bounds;
  /// Per-variable weight (for max-min normalization x_i / w_i).
  std::vector<double> weights;
};

struct ShareLpResult {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> shares;   ///< Valid when status == kOptimal.
  double total = 0.0;           ///< Σ shares.
  /// Multiplicative scale applied to the lower bounds to restore
  /// feasibility (1.0 normally; < 1.0 when the basic shares alone exceed
  /// some clique's capacity and were proportionally relaxed).
  double min_relaxation = 1.0;
};

/// Maximizes total share, then applies the balanced refinement. If the
/// lower bounds are by themselves infeasible, they are scaled down by the
/// largest factor that fits (bisection) before solving, and the factor is
/// reported in `min_relaxation`.
ShareLpResult solve_share_lp(const ShareLp& lp);

}  // namespace e2efa
