#include "alloc/maxmin.hpp"

#include <limits>
#include <set>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/assert.hpp"

namespace e2efa {

namespace {

constexpr double kTol = 1e-7;

/// Generic LP water-filling over `n` variables with weights, capacity rows
/// (row·x <= 1), and optional caps.
MaxMinResult waterfill(int n, const std::vector<double>& weights,
                       const std::vector<std::vector<double>>& rows,
                       const std::vector<double>& caps) {
  E2EFA_ASSERT(static_cast<int>(weights.size()) == n);
  E2EFA_ASSERT(caps.empty() || static_cast<int>(caps.size()) == n);
  for (double w : weights) E2EFA_ASSERT(w > 0.0);
  if (!caps.empty())
    for (double c : caps) E2EFA_ASSERT_MSG(c >= 0.0, "negative rate cap");

  std::vector<bool> frozen(static_cast<std::size_t>(n), false);
  std::vector<bool> capped(static_cast<std::size_t>(n), false);
  std::vector<double> value(static_cast<std::size_t>(n), 0.0);
  std::vector<double> level(static_cast<std::size_t>(n), 0.0);

  auto build = [&](bool with_t, double t_star) {
    const int nv = n + (with_t ? 1 : 0);
    LpProblem p(nv);
    for (const auto& row : rows) {
      std::vector<double> coeffs(static_cast<std::size_t>(nv), 0.0);
      std::copy(row.begin(), row.end(), coeffs.begin());
      p.add_constraint(std::move(coeffs), Relation::kLessEq, 1.0);
    }
    for (int i = 0; i < n; ++i) {
      // Upper bounds: cap (if any) and the trivial x_i <= 1.
      std::vector<double> coeffs(static_cast<std::size_t>(nv), 0.0);
      coeffs[static_cast<std::size_t>(i)] = 1.0;
      const double ub = caps.empty() ? 1.0 : std::min(1.0, caps[static_cast<std::size_t>(i)]);
      p.add_constraint(std::move(coeffs), Relation::kLessEq, ub);
      if (frozen[static_cast<std::size_t>(i)]) {
        std::vector<double> eq(static_cast<std::size_t>(nv), 0.0);
        eq[static_cast<std::size_t>(i)] = 1.0;
        p.add_constraint(std::move(eq), Relation::kEqual, value[static_cast<std::size_t>(i)]);
      } else if (with_t) {
        // x_i - w_i t >= 0: free flows ride the common level.
        std::vector<double> ge(static_cast<std::size_t>(nv), 0.0);
        ge[static_cast<std::size_t>(i)] = 1.0;
        ge[static_cast<std::size_t>(n)] = -weights[static_cast<std::size_t>(i)];
        p.add_constraint(std::move(ge), Relation::kGreaterEq, 0.0);
      } else {
        std::vector<double> ge(static_cast<std::size_t>(nv), 0.0);
        ge[static_cast<std::size_t>(i)] = 1.0;
        p.add_constraint(std::move(ge), Relation::kGreaterEq,
                         weights[static_cast<std::size_t>(i)] * t_star - kTol);
      }
    }
    return p;
  };

  int free_count = n;
  while (free_count > 0) {
    LpProblem p = build(/*with_t=*/true, 0.0);
    p.set_objective(n, 1.0);
    const LpSolution st = solve_lp(p);
    E2EFA_ASSERT_MSG(st.status == LpStatus::kOptimal, "water-filling level LP failed");
    const double t_star = st.x[static_cast<std::size_t>(n)];

    // Freeze every free variable that cannot exceed w_i * t_star.
    int newly = 0;
    for (int i = 0; i < n; ++i) {
      if (frozen[static_cast<std::size_t>(i)]) continue;
      LpProblem q = build(/*with_t=*/false, t_star);
      q.set_objective(i, 1.0);
      const LpSolution si = solve_lp(q);
      const double target = weights[static_cast<std::size_t>(i)] * t_star;
      const double best = si.status == LpStatus::kOptimal ? si.objective : target;
      if (best <= target + 10 * kTol) {
        frozen[static_cast<std::size_t>(i)] = true;
        value[static_cast<std::size_t>(i)] = target;
        level[static_cast<std::size_t>(i)] = t_star;
        capped[static_cast<std::size_t>(i)] =
            !caps.empty() && target >= caps[static_cast<std::size_t>(i)] - 10 * kTol;
        ++newly;
        --free_count;
      }
    }
    if (newly == 0) {
      // Numerical guard: freeze everything at the current level.
      for (int i = 0; i < n; ++i) {
        if (frozen[static_cast<std::size_t>(i)]) continue;
        frozen[static_cast<std::size_t>(i)] = true;
        value[static_cast<std::size_t>(i)] = weights[static_cast<std::size_t>(i)] * t_star;
        level[static_cast<std::size_t>(i)] = t_star;
        --free_count;
      }
    }
  }

  MaxMinResult out;
  out.level = std::move(level);
  out.capped = std::move(capped);
  out.allocation.flow_share = std::move(value);  // caller re-shapes
  return out;
}

std::vector<std::vector<double>> flow_rows(const ContentionGraph& g,
                                           const std::vector<std::vector<int>>* cliques) {
  const auto int_rows = cliques != nullptr ? clique_constraint_rows(g, *cliques)
                                           : clique_constraint_rows(g);
  std::vector<std::vector<double>> rows;
  for (const auto& r : int_rows) rows.emplace_back(r.begin(), r.end());
  return rows;
}

std::vector<std::vector<double>> subflow_rows(const ContentionGraph& g,
                                              const std::vector<std::vector<int>>* cliques) {
  std::vector<std::vector<int>> local;
  if (cliques == nullptr) {
    local = maximal_cliques(g);
    cliques = &local;
  }
  std::set<std::vector<double>> rows;
  for (const auto& clique : *cliques) {
    std::vector<double> row(static_cast<std::size_t>(g.flows().subflow_count()), 0.0);
    for (int v : clique) row[static_cast<std::size_t>(v)] = 1.0;
    rows.insert(std::move(row));
  }
  return {rows.begin(), rows.end()};
}

}  // namespace

MaxMinResult maxmin_allocate(const ContentionGraph& g, const std::vector<double>& caps,
                             const std::vector<std::vector<int>>* cliques) {
  const FlowSet& flows = g.flows();
  const int n = flows.flow_count();
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (FlowId f = 0; f < n; ++f) weights[static_cast<std::size_t>(f)] = flows.flow(f).weight;
  MaxMinResult out = waterfill(n, weights, flow_rows(g, cliques), caps);
  out.allocation = make_equalized_allocation(flows, std::move(out.allocation.flow_share));
  return out;
}

MaxMinResult maxmin_allocate_subflows(const ContentionGraph& g,
                                      const std::vector<double>& caps,
                                      const std::vector<std::vector<int>>* cliques) {
  const FlowSet& flows = g.flows();
  const int m = flows.subflow_count();
  std::vector<double> weights(static_cast<std::size_t>(m));
  for (int s = 0; s < m; ++s) weights[static_cast<std::size_t>(s)] = flows.subflow(s).weight;
  MaxMinResult out = waterfill(m, weights, subflow_rows(g, cliques), caps);
  out.allocation = make_subflow_allocation(flows, std::move(out.allocation.flow_share));
  return out;
}

}  // namespace e2efa
