#include "alloc/distributed.hpp"

#include <algorithm>
#include <set>

#include "alloc/knowledge.hpp"
#include "util/assert.hpp"

namespace e2efa {

namespace {

std::vector<FlowId> flows_in(const FlowSet& flows, const std::vector<int>& subflows) {
  std::set<FlowId> fs;
  for (int s : subflows) fs.insert(flows.subflow(s).flow);
  return {fs.begin(), fs.end()};
}

}  // namespace

LocalProblem solve_local_problem(const FlowSet& flows, FlowId flow,
                                 const std::vector<std::vector<int>>& cliques,
                                 const std::vector<int>& source_knowledge) {
  const Flow& fl = flows.flow(flow);
  LocalProblem lp;
  lp.flow = flow;
  lp.source = fl.source();

  // Drop cliques that are strict subsets of another accumulated clique
  // (a node with narrower knowledge may report a clique another node of
  // the flow sees a superset of; the superset row dominates). Dominance
  // is found by counting shared members through a subflow→clique index —
  // j dominates i exactly when the count reaches |i| with |j| > |i| —
  // instead of all-pairs std::includes: city-scale sources accumulate
  // thousands of local cliques, where the quadratic scan is minutes. The
  // surviving set (the maximal elements under ⊆) is identical.
  const std::set<std::vector<int>> cset(cliques.begin(), cliques.end());
  std::vector<const std::vector<int>*> cs;
  cs.reserve(cset.size());
  for (const auto& c : cset) cs.push_back(&c);
  const int nc = static_cast<int>(cs.size());
  std::vector<std::vector<int>> member_of(
      static_cast<std::size_t>(flows.subflow_count()));
  for (int i = 0; i < nc; ++i)
    for (int s : *cs[i]) member_of[static_cast<std::size_t>(s)].push_back(i);
  std::vector<int> shared(static_cast<std::size_t>(nc), 0);
  for (int i = 0; i < nc; ++i) {
    const int size_i = static_cast<int>(cs[i]->size());
    std::fill(shared.begin(), shared.end(), 0);
    bool dominated = false;
    for (int s : *cs[i]) {
      for (int j : member_of[static_cast<std::size_t>(s)])
        if (j != i && ++shared[static_cast<std::size_t>(j)] == size_i &&
            static_cast<int>(cs[j]->size()) > size_i) {
          dominated = true;
          break;
        }
      if (dominated) break;
    }
    if (!dominated) lp.cliques.push_back(*cs[i]);
  }

  // Variables: flows appearing in any accumulated clique.
  std::set<FlowId> vars;
  vars.insert(flow);
  for (const auto& c : lp.cliques)
    for (int s : c) vars.insert(flows.subflow(s).flow);
  lp.vars.assign(vars.begin(), vars.end());

  // Local per-unit basic share from the source's own two-hop knowledge.
  double denom = 0.0;
  for (FlowId j : flows_in(flows, source_knowledge))
    denom += flows.flow(j).weight * virtual_length(flows.flow(j).length());
  E2EFA_ASSERT(denom > 0.0);
  lp.unit_basic = 1.0 / denom;

  // Build and solve the local ShareLp.
  ShareLp slp;
  const int k = static_cast<int>(lp.vars.size());
  slp.weights.resize(static_cast<std::size_t>(k));
  slp.lower_bounds.resize(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const double w = flows.flow(lp.vars[static_cast<std::size_t>(i)]).weight;
    slp.weights[static_cast<std::size_t>(i)] = w;
    slp.lower_bounds[static_cast<std::size_t>(i)] = w * lp.unit_basic;
  }
  std::set<std::vector<int>> rows;
  for (const auto& c : lp.cliques) {
    std::vector<int> row(static_cast<std::size_t>(k), 0);
    for (int s : c) {
      const FlowId j = flows.subflow(s).flow;
      const auto pos = std::lower_bound(lp.vars.begin(), lp.vars.end(), j) - lp.vars.begin();
      ++row[static_cast<std::size_t>(pos)];
    }
    rows.insert(std::move(row));
  }
  lp.rows.assign(rows.begin(), rows.end());
  for (const auto& row : lp.rows)
    slp.capacity_rows.emplace_back(row.begin(), row.end());

  ShareLpResult r = solve_share_lp(slp);
  lp.status = r.status;
  lp.min_relaxation = r.min_relaxation;
  lp.mins = slp.lower_bounds;
  if (r.status == LpStatus::kOptimal) {
    lp.solution = r.shares;
    const auto pos = std::lower_bound(lp.vars.begin(), lp.vars.end(), flow) - lp.vars.begin();
    lp.flow_share = r.shares[static_cast<std::size_t>(pos)];
  } else {
    // Fall back to the local basic share — always locally safe.
    lp.flow_share = fl.weight * lp.unit_basic;
  }
  return lp;
}

DistributedResult distributed_allocate(const Topology& topo, const FlowSet& flows,
                                       const ContentionGraph& g,
                                       const TopologyMask* mask) {
  E2EFA_ASSERT(&g.flows() == &flows);
  const int nn = topo.node_count();
  const int nf = flows.flow_count();

  DistributedResult out;

  // Steps 1-2: overheard subflows and one round of neighbor exchange —
  // through the helper the in-band control plane also uses, so oracle and
  // agents derive identical knowledge from one code path.
  const std::vector<std::vector<int>> own = overheard_subflow_sets(topo, flows);
  out.node_knowledge = exchanged_knowledge(topo, own, mask);

  // Step 3: local cliques per node.
  out.node_cliques.resize(static_cast<std::size_t>(nn));
  for (NodeId v = 0; v < nn; ++v)
    out.node_cliques[static_cast<std::size_t>(v)] =
        maximal_cliques_in_subset(g, out.node_knowledge[static_cast<std::size_t>(v)]);

  // Steps 4-6: per-flow constraint accumulation and local LP at the source.
  std::vector<double> flow_share(static_cast<std::size_t>(nf), 0.0);
  for (FlowId f = 0; f < nf; ++f) {
    const Flow& fl = flows.flow(f);
    // Union of local cliques over the flow's transmitting nodes.
    std::set<std::vector<int>> cliques;
    for (int h = 0; h < fl.length(); ++h) {
      const NodeId v = fl.path[static_cast<std::size_t>(h)];
      for (const auto& c : out.node_cliques[static_cast<std::size_t>(v)]) cliques.insert(c);
    }
    LocalProblem lp = solve_local_problem(
        flows, f, {cliques.begin(), cliques.end()},
        out.node_knowledge[static_cast<std::size_t>(fl.source())]);
    flow_share[static_cast<std::size_t>(f)] = lp.flow_share;
    out.locals.push_back(std::move(lp));
  }

  out.allocation = make_equalized_allocation(flows, std::move(flow_share));
  return out;
}

}  // namespace e2efa
