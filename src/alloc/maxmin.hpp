// Weighted max-min fair allocation (the paper's footnote-3 extension).
//
// The main analysis assumes greedy sources (r_i < ρ_i never binds). When
// sources are not greedy, the natural generalization is weighted max-min
// fairness with rate caps: lexicographically maximize the minimum r̂_i/w_i,
// subject to the clique capacity rows and optional per-flow demand caps
// r̂_i <= ρ_i. Computed by LP water-filling: repeatedly maximize the common
// per-weight level of the still-free flows, freezing flows that cannot rise
// further (saturated clique or reached cap).
//
// The same engine also runs at subflow granularity, which models what the
// two-tier scheduler of [1] *achieves in practice* (its measured Table-II
// allocation is near max-min across subflows, not the max-total LP optimum).
#pragma once

#include <optional>
#include <vector>

#include "alloc/allocation.hpp"

namespace e2efa {

struct MaxMinResult {
  Allocation allocation;
  /// Water-filling levels: level[i] = r̂_i / w_i at freeze time; flows frozen
  /// in the same iteration share a level.
  std::vector<double> level;
  /// True where the flow froze because it hit its rate cap ρ_i (as opposed
  /// to a saturated clique).
  std::vector<bool> capped;
};

/// Flow-level weighted max-min with optional caps (`caps` empty = greedy
/// sources). Shares are equalized across each flow's subflows. `cliques`,
/// when given, is the precomputed maximal-clique list of `g` (identical
/// result, no from-scratch enumeration).
MaxMinResult maxmin_allocate(const ContentionGraph& g,
                             const std::vector<double>& caps = {},
                             const std::vector<std::vector<int>>* cliques = nullptr);

/// Subflow-level weighted max-min (each subflow an independent single-hop
/// flow, as in previous work); `caps` per subflow, empty = greedy.
MaxMinResult maxmin_allocate_subflows(const ContentionGraph& g,
                                      const std::vector<double>& caps = {},
                                      const std::vector<std::vector<int>>* cliques = nullptr);

}  // namespace e2efa
