#include "obs/profiler.hpp"

#include <cstdio>

#include "util/assert.hpp"
#include "util/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace e2efa {

const char* to_string(Profiler::Phase p) {
  switch (p) {
    case Profiler::Phase::kSetup: return "setup";
    case Profiler::Phase::kClique: return "clique";
    case Profiler::Phase::kSolve: return "solve";
    case Profiler::Phase::kSim: return "sim";
    case Profiler::Phase::kPhy: return "phy";
    case Profiler::Phase::kCtrl: return "ctrl";
  }
  return "unknown";
}

double profiler_peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

std::string Profiler::json(const std::string& name) const {
  std::string row = strformat("{\"name\": \"%s\"", name.c_str());
  for (int i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    row += strformat(", \"%s_s\": %.6f, \"%s_calls\": %lld", to_string(p),
                     seconds(p), to_string(p),
                     static_cast<long long>(calls(p)));
  }
  row += strformat(", \"peak_rss_mb\": %.1f}", profiler_peak_rss_mb());
  return "[\n  " + row + "\n]\n";
}

bool write_profile_json(const Profiler& p, const std::string& name,
                        const std::string& path, std::string* error) {
  E2EFA_ASSERT(error != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    *error = "cannot open profile output: " + path;
    return false;
  }
  const std::string body = p.json(name);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace e2efa
