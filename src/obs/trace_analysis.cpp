#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <sstream>

#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace e2efa {

std::vector<std::size_t> ConvergenceReport::epoch_windows(int epoch) const {
  std::vector<std::size_t> out;
  if (epoch < 0 || static_cast<std::size_t>(epoch) >= epochs.size()) return out;
  const double start = epochs[static_cast<std::size_t>(epoch)].start_s;
  const double end = static_cast<std::size_t>(epoch) + 1 < epochs.size()
                         ? epochs[static_cast<std::size_t>(epoch) + 1].start_s
                         : std::numeric_limits<double>::infinity();
  for (std::size_t w = 0; w < window_end_s.size(); ++w) {
    const double w_start = window_end_s[w] - window_s;
    // Half-window slack on the epoch start absorbs boundaries that fall
    // mid-window; the window must end before the next epoch begins.
    if (w_start >= start - 0.5 * window_s && window_end_s[w] <= end + 1e-9)
      out.push_back(w);
  }
  return out;
}

double ConvergenceReport::steady_jain(int epoch) const {
  const std::vector<std::size_t> ws = epoch_windows(epoch);
  if (ws.empty()) return 0.0;
  const std::size_t half = ws.size() / 2;
  double sum = 0.0;
  for (std::size_t i = half; i < ws.size(); ++i) sum += jain[ws[i]];
  return sum / static_cast<double>(ws.size() - half);
}

ConvergenceReport analyze_convergence(const std::vector<TraceRecord>& records,
                                      double window_s, double eps) {
  ConvergenceReport rep;
  rep.window_s = window_s;

  TimeNs t_max = 0;
  for (const TraceRecord& r : records) {
    t_max = std::max(t_max, r.t);
    switch (r.event()) {
      case TraceEvent::kRunMeta:
        rep.flow_count = r.b;
        rep.channel_bps = r.v0;
        rep.payload_bytes = r.v1;
        break;
      case TraceEvent::kLpResolve: {
        ConvergenceReport::Epoch e;
        e.index = r.a;
        e.start_s = r.v0;
        e.lp_status = r.b;
        rep.epochs.push_back(std::move(e));
        break;
      }
      case TraceEvent::kFlowTarget:
        // Targets follow their epoch's kLpResolve record in emission order.
        if (!rep.epochs.empty()) {
          auto& targets = rep.epochs.back().target_share;
          if (static_cast<std::size_t>(r.a) >= targets.size())
            targets.resize(static_cast<std::size_t>(r.a) + 1, 0.0);
          targets[static_cast<std::size_t>(r.a)] = r.v0;
        }
        break;
      default:
        break;
    }
  }
  if (rep.flow_count <= 0 || window_s <= 0.0) return rep;

  const std::size_t windows =
      static_cast<std::size_t>(std::ceil(to_seconds(t_max) / window_s));
  if (windows == 0) return rep;
  std::vector<std::vector<std::int64_t>> counts(
      windows, std::vector<std::int64_t>(static_cast<std::size_t>(rep.flow_count), 0));
  for (const TraceRecord& r : records) {
    if (r.event() != TraceEvent::kDelivery) continue;
    const std::size_t w = std::min(
        windows - 1,
        static_cast<std::size_t>(to_seconds(r.t) / window_s));
    if (r.a >= 0 && r.a < rep.flow_count)
      counts[w][static_cast<std::size_t>(r.a)]++;
  }

  const double window_bits = window_s * rep.channel_bps;
  for (std::size_t w = 0; w < windows; ++w) {
    rep.window_end_s.push_back(static_cast<double>(w + 1) * window_s);
    std::vector<double> share;
    for (std::int64_t c : counts[w])
      share.push_back(window_bits > 0.0
                          ? static_cast<double>(c) * 8.0 * rep.payload_bytes /
                                window_bits
                          : 0.0);
    rep.window_share.push_back(std::move(share));
  }

  // Per-window Jain: normalize by the targets of the epoch active at the
  // window's end when targets exist; raw rates otherwise.
  for (std::size_t w = 0; w < windows; ++w) {
    const std::vector<double>* targets = nullptr;
    for (const auto& e : rep.epochs)
      if (e.start_s <= rep.window_end_s[w] - 0.5 * window_s + 1e-9 &&
          !e.target_share.empty())
        targets = &e.target_share;
    if (targets != nullptr) {
      rep.jain.push_back(
          jain_fairness_index(normalized_by(rep.window_share[w], *targets)));
    } else {
      rep.jain.push_back(jain_fairness_index(rep.window_share[w]));
    }
  }

  for (std::size_t ei = 0; ei < rep.epochs.size(); ++ei) {
    const auto& e = rep.epochs[ei];
    ConvergenceReport::EpochConvergence c;
    c.epoch = e.index;
    c.epoch_start_s = e.start_s;
    for (std::size_t w : rep.epoch_windows(static_cast<int>(ei))) {
      // Proportional test: MAC/RTS overhead scales every flow's absolute
      // goodput well below its nominal share of B, so compare the
      // *normalized* rates u_f = measured/target against their cross-flow
      // mean — converged when the allocation's proportions match phase 1.
      std::vector<double> u;
      for (std::size_t f = 0; f < e.target_share.size(); ++f) {
        const double target = e.target_share[f];
        if (target <= 0.0) continue;  // suspended/inactive flow
        const double got =
            f < rep.window_share[w].size() ? rep.window_share[w][f] : 0.0;
        u.push_back(got / target);
      }
      bool ok = !u.empty();
      double mean = 0.0;
      for (double x : u) mean += x;
      if (ok) mean /= static_cast<double>(u.size());
      if (mean <= 0.0) ok = false;
      for (std::size_t f = 0; f < u.size() && ok; ++f)
        if (std::abs(u[f] - mean) > eps * mean) ok = false;
      if (ok) {
        c.converged = true;
        c.converged_s = rep.window_end_s[w];
        c.time_to_converge_s = c.converged_s - e.start_s;
        break;
      }
    }
    rep.convergence.push_back(c);
  }
  return rep;
}

std::string format_flow_timeline(const std::vector<TraceRecord>& records,
                                 int flow, std::size_t limit) {
  std::ostringstream os;
  std::size_t shown = 0;
  std::vector<std::int64_t> delivered;
  for (const TraceRecord& r : records) {
    const TraceEvent e = r.event();
    const bool milestone = e == TraceEvent::kLpResolve ||
                           e == TraceEvent::kFaultEpoch ||
                           e == TraceEvent::kFlowTarget ||
                           e == TraceEvent::kMacDrop;
    const bool is_delivery = e == TraceEvent::kDelivery;
    if (!milestone && !is_delivery) continue;
    const int rec_flow = is_delivery || e == TraceEvent::kFlowTarget ? r.a : -1;
    if (flow >= 0 && rec_flow >= 0 && rec_flow != flow) continue;
    if (is_delivery) {
      const std::size_t f = static_cast<std::size_t>(r.a);
      if (f >= delivered.size()) delivered.resize(f + 1, 0);
      ++delivered[f];
    }
    if (limit != 0 && shown >= limit) continue;  // keep counting deliveries
    ++shown;
    os << strformat("%12.6f s  %-20s", to_seconds(r.t), to_string(e));
    switch (e) {
      case TraceEvent::kDelivery:
        os << strformat(" flow %d at node %d, delay %.1f ms", r.a,
                        static_cast<int>(r.node), r.v0 * 1e3);
        break;
      case TraceEvent::kFlowTarget:
        os << strformat(" flow %d target %.4fB", r.a, r.v0);
        break;
      case TraceEvent::kLpResolve:
        os << strformat(" epoch %d (lp status %d)", r.a, r.b);
        break;
      case TraceEvent::kFaultEpoch:
        os << strformat(" epoch %d at %.2f s", r.a, r.v0);
        break;
      case TraceEvent::kMacDrop:
        os << strformat(" node %d subflow %d after %d retries",
                        static_cast<int>(r.node), r.a, r.b);
        break;
      default:
        break;
    }
    os << "\n";
  }
  os << "\ndeliveries:";
  for (std::size_t f = 0; f < delivered.size(); ++f) {
    if (flow >= 0 && static_cast<int>(f) != flow) continue;
    os << strformat(" flow %zu = %lld", f, static_cast<long long>(delivered[f]));
  }
  os << "\n";
  return os.str();
}

std::string format_trace_summary(const std::vector<TraceRecord>& records) {
  std::map<std::uint16_t, std::uint64_t> counts;
  TimeNs t_max = 0;
  for (const TraceRecord& r : records) {
    ++counts[r.type];
    t_max = std::max(t_max, r.t);
  }
  std::ostringstream os;
  os << records.size() << " records, horizon " << strformat("%.6f", to_seconds(t_max))
     << " s\n";
  for (const auto& [type, n] : counts)
    os << strformat("  %-20s %llu\n",
                    to_string(static_cast<TraceEvent>(type)),
                    static_cast<unsigned long long>(n));
  return os.str();
}

}  // namespace e2efa
