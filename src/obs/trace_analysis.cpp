#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <sstream>

#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace e2efa {

std::vector<std::size_t> ConvergenceReport::epoch_windows(int epoch) const {
  std::vector<std::size_t> out;
  if (epoch < 0 || static_cast<std::size_t>(epoch) >= epochs.size()) return out;
  const double start = epochs[static_cast<std::size_t>(epoch)].start_s;
  const double end = static_cast<std::size_t>(epoch) + 1 < epochs.size()
                         ? epochs[static_cast<std::size_t>(epoch) + 1].start_s
                         : std::numeric_limits<double>::infinity();
  for (std::size_t w = 0; w < window_end_s.size(); ++w) {
    const double w_start = window_end_s[w] - window_s;
    // Half-window slack on the epoch start absorbs boundaries that fall
    // mid-window; the window must end before the next epoch begins.
    if (w_start >= start - 0.5 * window_s && window_end_s[w] <= end + 1e-9)
      out.push_back(w);
  }
  return out;
}

double ConvergenceReport::steady_jain(int epoch) const {
  const std::vector<std::size_t> ws = epoch_windows(epoch);
  if (ws.empty()) return 0.0;
  const std::size_t half = ws.size() / 2;
  double sum = 0.0;
  for (std::size_t i = half; i < ws.size(); ++i) sum += jain[ws[i]];
  return sum / static_cast<double>(ws.size() - half);
}

ConvergenceReport analyze_convergence(const std::vector<TraceRecord>& records,
                                      double window_s, double eps) {
  ConvergenceReport rep;
  rep.window_s = window_s;

  TimeNs t_max = 0;
  for (const TraceRecord& r : records) {
    t_max = std::max(t_max, r.t);
    switch (r.event()) {
      case TraceEvent::kRunMeta:
        rep.flow_count = r.b;
        rep.channel_bps = r.v0;
        rep.payload_bytes = r.v1;
        break;
      case TraceEvent::kLpResolve: {
        ConvergenceReport::Epoch e;
        e.index = r.a;
        e.start_s = r.v0;
        e.lp_status = r.b;
        rep.epochs.push_back(std::move(e));
        break;
      }
      case TraceEvent::kFlowTarget:
        // Targets follow their epoch's kLpResolve record in emission order.
        if (!rep.epochs.empty()) {
          auto& targets = rep.epochs.back().target_share;
          if (static_cast<std::size_t>(r.a) >= targets.size())
            targets.resize(static_cast<std::size_t>(r.a) + 1, 0.0);
          targets[static_cast<std::size_t>(r.a)] = r.v0;
        }
        break;
      default:
        break;
    }
  }
  if (rep.flow_count <= 0 || window_s <= 0.0) return rep;

  const std::size_t windows =
      static_cast<std::size_t>(std::ceil(to_seconds(t_max) / window_s));
  if (windows == 0) return rep;
  std::vector<std::vector<std::int64_t>> counts(
      windows, std::vector<std::int64_t>(static_cast<std::size_t>(rep.flow_count), 0));
  for (const TraceRecord& r : records) {
    if (r.event() != TraceEvent::kDelivery) continue;
    const std::size_t w = std::min(
        windows - 1,
        static_cast<std::size_t>(to_seconds(r.t) / window_s));
    if (r.a >= 0 && r.a < rep.flow_count)
      counts[w][static_cast<std::size_t>(r.a)]++;
  }

  const double window_bits = window_s * rep.channel_bps;
  for (std::size_t w = 0; w < windows; ++w) {
    rep.window_end_s.push_back(static_cast<double>(w + 1) * window_s);
    std::vector<double> share;
    for (std::int64_t c : counts[w])
      share.push_back(window_bits > 0.0
                          ? static_cast<double>(c) * 8.0 * rep.payload_bytes /
                                window_bits
                          : 0.0);
    rep.window_share.push_back(std::move(share));
  }

  // Per-window Jain: normalize by the targets of the epoch active at the
  // window's end when targets exist; raw rates otherwise.
  for (std::size_t w = 0; w < windows; ++w) {
    const std::vector<double>* targets = nullptr;
    for (const auto& e : rep.epochs)
      if (e.start_s <= rep.window_end_s[w] - 0.5 * window_s + 1e-9 &&
          !e.target_share.empty())
        targets = &e.target_share;
    if (targets != nullptr) {
      rep.jain.push_back(
          jain_fairness_index(normalized_by(rep.window_share[w], *targets)));
    } else {
      rep.jain.push_back(jain_fairness_index(rep.window_share[w]));
    }
  }

  for (std::size_t ei = 0; ei < rep.epochs.size(); ++ei) {
    const auto& e = rep.epochs[ei];
    ConvergenceReport::EpochConvergence c;
    c.epoch = e.index;
    c.epoch_start_s = e.start_s;
    for (std::size_t w : rep.epoch_windows(static_cast<int>(ei))) {
      // Proportional test: MAC/RTS overhead scales every flow's absolute
      // goodput well below its nominal share of B, so compare the
      // *normalized* rates u_f = measured/target against their cross-flow
      // mean — converged when the allocation's proportions match phase 1.
      std::vector<double> u;
      for (std::size_t f = 0; f < e.target_share.size(); ++f) {
        const double target = e.target_share[f];
        if (target <= 0.0) continue;  // suspended/inactive flow
        const double got =
            f < rep.window_share[w].size() ? rep.window_share[w][f] : 0.0;
        u.push_back(got / target);
      }
      bool ok = !u.empty();
      double mean = 0.0;
      for (double x : u) mean += x;
      if (ok) mean /= static_cast<double>(u.size());
      if (mean <= 0.0) ok = false;
      for (std::size_t f = 0; f < u.size() && ok; ++f)
        if (std::abs(u[f] - mean) > eps * mean) ok = false;
      if (ok) {
        c.converged = true;
        c.converged_s = rep.window_end_s[w];
        c.time_to_converge_s = c.converged_s - e.start_s;
        break;
      }
    }
    rep.convergence.push_back(c);
  }
  return rep;
}

std::string format_flow_timeline(const std::vector<TraceRecord>& records,
                                 int flow, std::size_t limit) {
  std::ostringstream os;
  std::size_t shown = 0;
  std::vector<std::int64_t> delivered;
  for (const TraceRecord& r : records) {
    const TraceEvent e = r.event();
    const bool milestone = e == TraceEvent::kLpResolve ||
                           e == TraceEvent::kFaultEpoch ||
                           e == TraceEvent::kFlowTarget ||
                           e == TraceEvent::kMacDrop;
    const bool is_delivery = e == TraceEvent::kDelivery;
    if (!milestone && !is_delivery) continue;
    const int rec_flow = is_delivery || e == TraceEvent::kFlowTarget ? r.a : -1;
    if (flow >= 0 && rec_flow >= 0 && rec_flow != flow) continue;
    if (is_delivery) {
      const std::size_t f = static_cast<std::size_t>(r.a);
      if (f >= delivered.size()) delivered.resize(f + 1, 0);
      ++delivered[f];
    }
    if (limit != 0 && shown >= limit) continue;  // keep counting deliveries
    ++shown;
    os << strformat("%12.6f s  %-20s", to_seconds(r.t), to_string(e));
    switch (e) {
      case TraceEvent::kDelivery:
        os << strformat(" flow %d at node %d, delay %.1f ms", r.a,
                        static_cast<int>(r.node), r.v0 * 1e3);
        break;
      case TraceEvent::kFlowTarget:
        os << strformat(" flow %d target %.4fB", r.a, r.v0);
        break;
      case TraceEvent::kLpResolve:
        os << strformat(" epoch %d (lp status %d)", r.a, r.b);
        break;
      case TraceEvent::kFaultEpoch:
        os << strformat(" epoch %d at %.2f s", r.a, r.v0);
        break;
      case TraceEvent::kMacDrop:
        os << strformat(" node %d subflow %d after %d retries",
                        static_cast<int>(r.node), r.a, r.b);
        break;
      default:
        break;
    }
    os << "\n";
  }
  os << "\ndeliveries:";
  for (std::size_t f = 0; f < delivered.size(); ++f) {
    if (flow >= 0 && static_cast<int>(f) != flow) continue;
    os << strformat(" flow %zu = %lld", f, static_cast<long long>(delivered[f]));
  }
  os << "\n";
  return os.str();
}

std::string format_trace_summary(const std::vector<TraceRecord>& records) {
  std::map<std::uint16_t, std::uint64_t> counts;
  TimeNs t_max = 0;
  bool any_ctrl = false;
  std::map<int, std::uint64_t> retx_by_kind;
  std::uint64_t seq_gap_events = 0, seq_gap_missed = 0;
  std::vector<const TraceRecord*> reconv;
  // Elastic-transport health, keyed by flow: retransmits split by cause
  // (kTransRetransmit b = 1 timeout / 0 dupack), RTO count, and the last
  // kTransCwnd record's cwnd / srtt (the controller's final state).
  struct TransFlow {
    std::uint64_t retx_timeout = 0, retx_dupack = 0, timeouts = 0;
    double final_cwnd = 0.0, final_srtt_s = 0.0;
    bool saw_cwnd = false;
  };
  std::map<std::int32_t, TransFlow> trans;
  for (const TraceRecord& r : records) {
    ++counts[r.type];
    t_max = std::max(t_max, r.t);
    if (r.type < kTraceEventCount &&
        trace_category(r.event()) == TraceCat::kCtrl)
      any_ctrl = true;
    switch (r.event()) {
      case TraceEvent::kCtrlRetransmit:
        ++retx_by_kind[r.a];
        break;
      case TraceEvent::kCtrlSeqGap:
        ++seq_gap_events;
        seq_gap_missed += r.b > 0 ? static_cast<std::uint64_t>(r.b) : 0;
        break;
      case TraceEvent::kCtrlReconv:
        reconv.push_back(&r);
        break;
      case TraceEvent::kTransRetransmit:
        ++(r.b == 1 ? trans[r.a].retx_timeout : trans[r.a].retx_dupack);
        break;
      case TraceEvent::kTransTimeout:
        ++trans[r.a].timeouts;
        break;
      case TraceEvent::kTransCwnd: {
        TransFlow& tf = trans[r.a];
        tf.final_cwnd = r.v0;
        tf.final_srtt_s = r.v1;
        tf.saw_cwnd = true;
        break;
      }
      default:
        break;
    }
  }
  std::ostringstream os;
  os << records.size() << " records, horizon " << strformat("%.6f", to_seconds(t_max))
     << " s\n";
  for (const auto& [type, n] : counts)
    os << strformat("  %-20s %llu\n",
                    to_string(static_cast<TraceEvent>(type)),
                    static_cast<unsigned long long>(n));
  if (any_ctrl) {
    std::uint64_t retx_total = 0;
    for (const auto& [kind, n] : retx_by_kind) retx_total += n;
    os << "ctrl health:\n";
    os << strformat("  retransmits          %llu",
                    static_cast<unsigned long long>(retx_total));
    if (retx_total > 0) {
      os << " (";
      bool first = true;
      for (const auto& [kind, n] : retx_by_kind) {
        if (!first) os << ", ";
        first = false;
        os << strformat("%s %llu", ctrl_kind_name(kind),
                        static_cast<unsigned long long>(n));
      }
      os << ")";
    }
    os << "\n";
    os << strformat("  seq gaps             %llu (%llu messages missed)\n",
                    static_cast<unsigned long long>(seq_gap_events),
                    static_cast<unsigned long long>(seq_gap_missed));
    for (const TraceRecord* r : reconv)
      os << strformat("  reconv epoch %-7d %.3f s (boundary %.2f s)\n", r->a,
                      r->v0, r->v1);
  }
  if (!trans.empty()) {
    os << "transport:\n";
    for (const auto& [flow, tf] : trans) {
      os << strformat("  flow %-14d %llu retransmits (%llu timeout, %llu "
                      "dupack), %llu RTOs",
                      flow,
                      static_cast<unsigned long long>(tf.retx_timeout +
                                                      tf.retx_dupack),
                      static_cast<unsigned long long>(tf.retx_timeout),
                      static_cast<unsigned long long>(tf.retx_dupack),
                      static_cast<unsigned long long>(tf.timeouts));
      if (tf.saw_cwnd)
        os << strformat(", final cwnd %.1f, srtt %.1f ms", tf.final_cwnd,
                        tf.final_srtt_s * 1e3);
      os << "\n";
    }
  }
  return os.str();
}

// ---- Causal span graph + follow / chrome exports (observability v2). ----

SpanGraph build_span_graph(const std::vector<TraceRecord>& records) {
  SpanGraph g;
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].span != 0) g.owner.emplace(records[i].span, i);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (r.parent != 0) g.children[r.parent].push_back(i);
    if (r.span != 0 && (r.parent == 0 || g.owner.count(r.parent) == 0))
      g.roots.push_back(i);
  }
  return g;
}

namespace {

/// CtrlMsg::Kind names for report text (kept in sync with ctrl/messages.hpp
/// by the obs tests; analysis must not link the control plane).
const char* ctrl_kind_name_impl(int kind) {
  switch (kind) {
    case 0: return "HELLO";
    case 1: return "HELLO_DELTA";
    case 2: return "CONSTRAINT";
    case 3: return "RATE";
    case 4: return "ADMIT_REQ";
    case 5: return "ADMIT_RSP";
    case 6: return "TRANS_ACK";
    default: return "CTRL?";
  }
}

/// Frame-type names (phy/frame.hpp FrameType order; same sync rule).
const char* frame_type_name(int t) {
  switch (t) {
    case 0: return "RTS";
    case 1: return "CTS";
    case 2: return "DATA";
    case 3: return "ACK";
    case 4: return "CTRL";
    default: return "FRAME?";
  }
}

/// One-line human description of a record for the follow report.
std::string describe_record(const TraceRecord& r) {
  switch (r.event()) {
    case TraceEvent::kCtrlSend:
      return r.b < 0 ? strformat("node %d broadcasts %s seq %.0f (%g B)",
                                 static_cast<int>(r.node), ctrl_kind_name_impl(r.a),
                                 r.v1, r.v0)
                     : strformat("node %d sends %s to node %d seq %.0f (%g B)",
                                 static_cast<int>(r.node), ctrl_kind_name_impl(r.a),
                                 r.b, r.v1, r.v0);
    case TraceEvent::kCtrlRecv:
      return strformat("node %d receives %s from node %d%s",
                       static_cast<int>(r.node), ctrl_kind_name_impl(r.a), r.b,
                       r.v1 != 0.0 ? " (piggybacked)" : "");
    case TraceEvent::kCtrlSolve:
      return strformat("node %d solves flow %d -> %.4fB (lp status %d)",
                       static_cast<int>(r.node), r.a, r.v0, r.b);
    case TraceEvent::kCtrlRate:
      return strformat("node %d applies lane %d (flow %d) share %.4fB",
                       static_cast<int>(r.node), r.a, r.b, r.v0);
    case TraceEvent::kCtrlAdmit:
      return strformat("node %d local admit verdict for flow %d: %s (load %.3f)",
                       static_cast<int>(r.node), r.a,
                       r.b != 0 ? "admit" : "reject", r.v0);
    case TraceEvent::kCtrlRetransmit:
      return strformat("node %d retransmits %s (flow %d), attempt %.0f, backoff %.0f ticks",
                       static_cast<int>(r.node), ctrl_kind_name_impl(r.a), r.b,
                       r.v0, r.v1);
    case TraceEvent::kCtrlSeqGap:
      return strformat("node %d sequence gap from node %d: %d missed (expected %.0f, got %.0f)",
                       static_cast<int>(r.node), r.a, r.b, r.v0, r.v1);
    case TraceEvent::kFrameTx:
      return strformat("node %d tx %s -> %s (%g B)%s", static_cast<int>(r.node),
                       frame_type_name(r.a),
                       r.b < 0 ? "bcast" : strformat("node %d", r.b).c_str(),
                       r.v0, r.v1 != 0.0 ? " [RF-silent]" : "");
    case TraceEvent::kFrameRx:
      return strformat("node %d rx %s from node %d", static_cast<int>(r.node),
                       frame_type_name(r.a), r.b);
    case TraceEvent::kFrameCollision:
      return strformat("collision at node %d (sender %d)",
                       static_cast<int>(r.node), r.b);
    case TraceEvent::kFrameFaulted:
      return strformat("fault loss at node %d (sender %d, %s)",
                       static_cast<int>(r.node), r.b,
                       r.a == 0 ? "dead node/link" : "loss draw");
    default:
      return strformat("%s node %d a=%d b=%d v0=%g v1=%g", to_string(r.event()),
                       static_cast<int>(r.node), r.a, r.b, r.v0, r.v1);
  }
}

/// True when the record mentions logical flow `flow` in a causal sense.
bool touches_flow(const TraceRecord& r, int flow) {
  switch (r.event()) {
    case TraceEvent::kCtrlSolve:
    case TraceEvent::kCtrlAdmit: return r.a == flow;
    case TraceEvent::kCtrlRate:
    case TraceEvent::kCtrlRetransmit: return r.b == flow;
    default: return false;
  }
}

}  // namespace

const char* ctrl_kind_name(int kind) { return ctrl_kind_name_impl(kind); }

std::string format_follow(const std::vector<TraceRecord>& records, int flow,
                          std::size_t limit) {
  const SpanGraph g = build_span_graph(records);
  std::ostringstream os;
  std::size_t shown = 0, matched = 0;
  for (std::size_t root : g.roots) {
    // Collect the subtree (spans are emitted parent-first, so a simple
    // stack walk terminates; depth caps runaway data defensively).
    std::vector<std::pair<std::size_t, int>> tree;  // (record index, depth)
    std::vector<std::pair<std::size_t, int>> stack{{root, 0}};
    bool hits_flow = flow < 0;
    while (!stack.empty()) {
      const auto [i, depth] = stack.back();
      stack.pop_back();
      tree.emplace_back(i, depth);
      if (touches_flow(records[i], flow)) hits_flow = true;
      if (records[i].span != 0 && depth < 64) {
        const auto it = g.children.find(records[i].span);
        if (it != g.children.end())
          // Reverse push so children come out of the stack in time order.
          for (auto c = it->second.rbegin(); c != it->second.rend(); ++c)
            stack.emplace_back(*c, depth + 1);
      }
    }
    if (!hits_flow) continue;
    ++matched;
    if (limit != 0 && shown >= limit) continue;  // keep counting matches
    ++shown;
    for (const auto& [i, depth] : tree) {
      const TraceRecord& r = records[i];
      os << strformat("%12.6f s  ", to_seconds(r.t));
      for (int d = 0; d < depth; ++d) os << "  ";
      os << (depth == 0 ? "" : "-> ") << describe_record(r);
      if (r.span != 0) os << strformat("  [span %u]", r.span);
      os << "\n";
    }
    os << "\n";
  }
  os << strformat("%zu causal chains", matched);
  if (flow >= 0) os << strformat(" touching flow %d", flow);
  if (matched > shown) os << strformat(" (%zu shown)", shown);
  os << "\n";
  return os.str();
}

std::string format_chrome_trace(const std::vector<TraceRecord>& records) {
  // Track layout: one pid for the whole run, tid 0 = run-global records,
  // tid n+1 = node n. kFrameTx becomes a duration slice (airtime derived
  // from kRunMeta's channel rate); every other record an instant; span
  // parent->child edges become flow arrows ("s"/"f" pairs sharing an id).
  double channel_bps = 0.0;
  int node_count = 0;
  for (const TraceRecord& r : records) {
    if (r.event() == TraceEvent::kRunMeta) {
      channel_bps = r.v0;
      node_count = r.a;
    }
    node_count = std::max(node_count, static_cast<int>(r.node) + 1);
  }
  const SpanGraph g = build_span_graph(records);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) os << ",";
    first = false;
    os << "\n" << ev;
  };
  emit("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"e2efa-sim\"}}");
  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
       "\"args\":{\"name\":\"run\"}}");
  for (int n = 0; n < node_count; ++n)
    emit(strformat("{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\","
                   "\"args\":{\"name\":\"node %d\"}}",
                   n + 1, n));
  auto tid_of = [](const TraceRecord& r) {
    return r.node < 0 ? 0 : static_cast<int>(r.node) + 1;
  };
  auto ts_of = [](TimeNs t) { return static_cast<double>(t) / 1e3; };  // µs
  for (const TraceRecord& r : records) {
    const std::string args = strformat(
        "{\"a\":%d,\"b\":%d,\"v0\":%.17g,\"v1\":%.17g,\"span\":%u,\"parent\":%u}",
        r.a, r.b, r.v0, r.v1, r.span, r.parent);
    if (r.event() == TraceEvent::kFrameTx && channel_bps > 0.0 && r.v1 == 0.0) {
      const double dur_us = r.v0 * 8.0 / channel_bps * 1e6;
      emit(strformat("{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                     "\"dur\":%.3f,\"name\":\"tx %s\",\"args\":%s}",
                     tid_of(r), ts_of(r.t), dur_us, frame_type_name(r.a),
                     args.c_str()));
    } else {
      emit(strformat("{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\","
                     "\"name\":\"%s\",\"args\":%s}",
                     tid_of(r), ts_of(r.t), to_string(r.event()), args.c_str()));
    }
  }
  // Causal arrows: one flow-event pair per parent->child edge.
  std::uint64_t edge_id = 0;
  for (const auto& [span, kids] : g.children) {
    const auto parent_it = g.owner.find(span);
    if (parent_it == g.owner.end()) continue;
    const TraceRecord& p = records[parent_it->second];
    for (std::size_t ci : kids) {
      const TraceRecord& c = records[ci];
      ++edge_id;
      emit(strformat("{\"ph\":\"s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                     "\"id\":%llu,\"cat\":\"span\",\"name\":\"span\"}",
                     tid_of(p), ts_of(p.t),
                     static_cast<unsigned long long>(edge_id)));
      emit(strformat("{\"ph\":\"f\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                     "\"id\":%llu,\"cat\":\"span\",\"name\":\"span\",\"bp\":\"e\"}",
                     tid_of(c), ts_of(c.t),
                     static_cast<unsigned long long>(edge_id)));
    }
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace e2efa
