// Self-profiler: deterministic wall-clock phase accounting for one run.
//
// Follows the TraceSink/CheckContext wiring idiom: SimConfig carries a
// `Profiler*` that defaults to null, every instrumented site pays one
// pointer test, and the profiler never touches simulator state or
// randomness — arming it cannot perturb the simulated trajectory. Phase
// boundaries are RAII scopes around the runner's setup, the event loop,
// the PHY receive fan-out, clique maintenance, local LP solves, and the
// in-band control protocol.
//
// Two kinds of output per phase:
//   - `<phase>_s`      accumulated wall-clock seconds (machine-dependent);
//   - `<phase>_calls`  how many scopes ran (deterministic per seed, so it
//                      is byte-identical across reruns and BatchRunner
//                      thread counts — the stability tests key on it).
//
// Accumulators are atomic: one Profiler may be shared across a BatchRunner
// fan-out, in which case it aggregates over all runs. json() emits a
// single-row JSON array sharing the BENCH_scale.json row style
// ({"name": ..., "<phase>_s": ..., "peak_rss_mb": ...}).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace e2efa {

class Profiler {
 public:
  enum class Phase : int {
    kSetup = 0,  ///< Scenario expansion, topology, wiring (pre-event-loop).
    kClique,     ///< CliqueStore activity deltas + clique (re-)enumeration.
    kSolve,      ///< Phase-1 LP solves (runner oracle + agent local solves).
    kSim,        ///< The event loop (includes phy/ctrl time below).
    kPhy,        ///< Channel end-of-frame receive fan-out.
    kCtrl,       ///< AllocAgent protocol work (ticks + message handling).
  };
  static constexpr int kPhaseCount = 6;

  /// RAII phase scope; accumulates elapsed wall time on destruction.
  class Scope {
   public:
    /// A null profiler makes the scope a no-op (the one-pointer-test rule).
    Scope(Profiler* p, Phase phase) : p_(p), phase_(phase) {
      if (p_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (p_ == nullptr) return;
      const auto end = std::chrono::steady_clock::now();
      p_->add(phase_,
              std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
                  .count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* p_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Direct accumulation (one scope's worth of time + one call).
  void add(Phase phase, std::int64_t ns) {
    const int i = static_cast<int>(phase);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    calls_[i].fetch_add(1, std::memory_order_relaxed);
  }

  double seconds(Phase phase) const {
    return static_cast<double>(
               ns_[static_cast<int>(phase)].load(std::memory_order_relaxed)) *
           1e-9;
  }
  std::int64_t calls(Phase phase) const {
    return calls_[static_cast<int>(phase)].load(std::memory_order_relaxed);
  }

  void clear() {
    for (int i = 0; i < kPhaseCount; ++i) {
      ns_[i].store(0, std::memory_order_relaxed);
      calls_[i].store(0, std::memory_order_relaxed);
    }
  }

  /// Single-row JSON array in the BENCH_scale.json row style:
  /// [{"name": <name>, "setup_s": ..., "setup_calls": ..., ...,
  ///   "peak_rss_mb": ...}].
  std::string json(const std::string& name) const;

 private:
  std::atomic<std::int64_t> ns_[kPhaseCount] = {};
  std::atomic<std::int64_t> calls_[kPhaseCount] = {};
};

const char* to_string(Profiler::Phase p);

/// Peak resident set size of this process in MiB (0 when unavailable).
double profiler_peak_rss_mb();

/// Writes json(name) to `path`. Returns false and fills *error on failure.
bool write_profile_json(const Profiler& p, const std::string& name,
                        const std::string& path, std::string* error);

}  // namespace e2efa
